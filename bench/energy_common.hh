/**
 * @file
 * Shared driver for the energy figures (9-15): runs the three §4.2
 * configurations over both suites and aggregates issue-queue energy.
 * Grids are declared as runner::SweepSpecs and prefetched across the
 * worker pool before aggregation (docs/ARCHITECTURE.md §7).
 */

#ifndef DIQ_BENCH_ENERGY_COMMON_HH
#define DIQ_BENCH_ENERGY_COMMON_HH

#include <map>
#include <string>
#include <vector>

#include "figures.hh"
#include "power/metrics.hh"
#include "util/stats.hh"

namespace diq::bench
{

/** Suite-aggregated outcome for one scheme. */
struct SuiteEnergy
{
    power::RunEnergy total;                      ///< summed over suite
    std::map<std::string, double> componentPj;   ///< summed breakdown
    std::vector<std::string> componentOrder;     ///< stable legend order
};

/** Prefetch `schemes` over both suites in one parallel batch. */
inline void
prefetchBothSuites(Harness &harness,
                   const std::vector<core::SchemeConfig> &schemes)
{
    runner::SweepSpec spec;
    spec.addGrid(schemes, trace::specIntProfiles());
    spec.addGrid(schemes, trace::specFpProfiles());
    harness.prefetch(spec);
}

/** Sum runs of `scheme` over `profiles`. */
inline SuiteEnergy
aggregateSuite(Harness &harness, const core::SchemeConfig &scheme,
               const std::vector<trace::BenchmarkProfile> &profiles)
{
    SuiteEnergy agg;
    for (const auto &p : profiles) {
        const RunResult &r = harness.run(scheme, p);
        agg.total.iqEnergyPj += r.energy.total();
        agg.total.cycles += r.stats.cycles;
        agg.total.insts += r.stats.committed;
        for (const auto &[name, pj] : r.energy.components) {
            if (!agg.componentPj.count(name))
                agg.componentOrder.push_back(name);
            agg.componentPj[name] += pj;
        }
    }
    return agg;
}

/** Emit a Figure 9/10/11-style percentage breakdown. */
inline void
printBreakdown(FigureOutput &out, const std::string &title,
               const SuiteEnergy &int_suite, const SuiteEnergy &fp_suite)
{
    util::TablePrinter table({"component", "SPECINT", "SPECFP"});
    for (const auto &name : int_suite.componentOrder) {
        double i = int_suite.componentPj.at(name);
        double f = fp_suite.componentPj.count(name)
            ? fp_suite.componentPj.at(name)
            : 0.0;
        table.addRow({name,
                      util::TablePrinter::pct(
                          i / int_suite.total.iqEnergyPj),
                      util::TablePrinter::pct(
                          f / fp_suite.total.iqEnergyPj)});
    }
    table.addRow({"total (uJ)",
                  util::TablePrinter::fmt(
                      int_suite.total.iqEnergyPj / 1e6, 2),
                  util::TablePrinter::fmt(
                      fp_suite.total.iqEnergyPj / 1e6, 2)});
    out.table("breakdown", title, table);
}

} // namespace diq::bench

#endif // DIQ_BENCH_ENERGY_COMMON_HH

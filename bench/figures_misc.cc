/**
 * @file
 * Render functions for Table 1 (machine configuration), the §4.2
 * baseline sizing study and the design-choice ablations.
 */

#include <sstream>

#include "figures.hh"
#include "sim/config.hh"
#include "util/stats.hh"

namespace diq::bench::fig
{

void
table1(Harness &harness, FigureOutput &out)
{
    (void)harness; // configuration only; nothing to simulate
    sim::ProcessorConfig cfg;
    std::ostringstream note;
    note << cfg.table1String() << "\n"
         << "Evaluated issue-queue organizations (paper 4.2):\n";
    for (const auto &s : {core::SchemeConfig::iq6464(),
                          core::SchemeConfig::ifDistr(),
                          core::SchemeConfig::mbDistr()}) {
        note << "  - " << s.name()
             << (s.distributedFus ? "  [distributed FUs]" : "") << "\n";
    }
    out.note(note.str());
}

void
baselineSizing(Harness &harness, FigureOutput &out)
{
    core::SchemeConfig iq6464 = core::SchemeConfig::iq6464();
    core::SchemeConfig iq64128 = core::SchemeConfig::iq6464();
    iq64128.camFpEntries = 128;
    core::SchemeConfig unbounded = core::SchemeConfig::unbounded();
    const std::vector<core::SchemeConfig> schemes{iq6464, iq64128,
                                                  unbounded};

    runner::SweepSpec spec;
    spec.addGrid(schemes, trace::specIntProfiles());
    spec.addGrid(schemes, trace::specFpProfiles());
    harness.prefetch(spec);

    util::TablePrinter table({"suite", "IQ_64_64", "IQ_64_128",
                              "IQ_unbounded(256)"});
    for (bool fp : {false, true}) {
        const auto &profiles =
            fp ? trace::specFpProfiles() : trace::specIntProfiles();
        std::vector<std::string> row{fp ? "SPECFP (HM)" : "SPECINT (HM)"};
        for (const auto &s : schemes) {
            std::vector<double> ipcs;
            for (const auto &p : profiles)
                ipcs.push_back(harness.run(s, p).ipc);
            row.push_back(
                util::TablePrinter::fmt(util::harmonicMean(ipcs), 3));
        }
        table.addRow(row);
    }
    out.table("sizing", "", table);
    out.note("\nPaper: the larger baseline gains only ~1.0% IPC,"
             " which is why IQ_64_64 is the reference.\n");
}

namespace
{

double
suiteHm(Harness &harness, const core::SchemeConfig &scheme,
        const std::vector<trace::BenchmarkProfile> &profiles)
{
    std::vector<double> ipcs;
    for (const auto &p : profiles)
        ipcs.push_back(harness.run(scheme, p).ipc);
    return util::harmonicMean(ipcs);
}

} // namespace

void
ablation(Harness &harness, FigureOutput &out)
{
    const auto &fp = trace::specFpProfiles();
    const auto &ints = trace::specIntProfiles();

    // Declare all three studies' grids up front so one prefetch
    // covers the whole binary.
    std::vector<core::SchemeConfig> chainCfgs;
    for (int chains : {1, 2, 4, 8, 16, 0}) {
        auto cfg = core::SchemeConfig::mbDistr();
        cfg.chainsPerQueue = chains;
        chainCfgs.push_back(cfg);
    }
    std::vector<core::SchemeConfig> clearCfgs;
    for (bool clear : {true, false}) {
        auto cfg = core::SchemeConfig::ifDistr();
        cfg.clearTableOnMispredict = clear;
        clearCfgs.push_back(cfg);
    }
    std::vector<core::SchemeConfig> fuCfgs;
    for (bool distr : {false, true}) {
        auto cfg = core::SchemeConfig::mixBuff(8, 8, 8, 16, 8);
        cfg.distributedFus = distr;
        fuCfgs.push_back(cfg);
    }

    runner::SweepSpec spec;
    spec.addGrid(chainCfgs, fp);
    spec.addGrid(clearCfgs, ints);
    spec.addGrid(fuCfgs, fp);
    harness.prefetch(spec);

    {
        util::TablePrinter t({"chains/queue", "HM IPC"});
        for (size_t i = 0; i < chainCfgs.size(); ++i) {
            int chains = chainCfgs[i].chainsPerQueue;
            t.addRow({chains == 0 ? "unbounded" : std::to_string(chains),
                      util::TablePrinter::fmt(
                          suiteHm(harness, chainCfgs[i], fp), 3)});
        }
        out.table("chains",
                  "1) Chains per FP queue (MB_distr, SPECfp HM IPC):",
                  t);
        out.note("   (8 chains should be within noise of unbounded"
                 " — the paper's §3.3 choice)\n\n");
    }

    {
        util::TablePrinter t({"policy", "HM IPC"});
        for (const auto &cfg : clearCfgs) {
            t.addRow({cfg.clearTableOnMispredict ? "clear (paper)"
                                                 : "keep stale entries",
                      util::TablePrinter::fmt(
                          suiteHm(harness, cfg, ints), 3)});
        }
        out.table("clear",
                  "2) Clear queue-rename table on mispredicts"
                  " (IF_distr, SPECint HM IPC):",
                  t);
        out.note("   (paper §2.2: clearing costs nothing"
                 " measurable)\n\n");
    }

    {
        util::TablePrinter t({"FU binding", "HM IPC"});
        for (const auto &cfg : fuCfgs) {
            t.addRow({cfg.distributedFus ? "distributed (MB_distr)"
                                         : "centralized",
                      util::TablePrinter::fmt(suiteHm(harness, cfg, fp),
                                              3)});
        }
        out.table("fu_binding",
                  "3) Distributed vs centralized functional units"
                  " (MixBUFF_8x8_8x16, SPECfp HM IPC):",
                  t);
        out.note("   (paper §3.3: distribution costs little IPC and"
                 " removes the issue crossbar)\n");
    }
}

} // namespace diq::bench::fig

/**
 * @file
 * Figure 2 — IPC loss of the IssueFIFO organization w.r.t. the
 * unbounded (256-entry) conventional issue queue, SPECint suite.
 * Integer queues sweep {8,10,12} x {8,16}; FP queues fixed at 16x16.
 * Expected shape: small losses (a few percent), shrinking with more
 * queues; queue *depth* nearly irrelevant (8 -> 16 entries buys
 * ~0.1% in the paper).
 */

#include "sweep_common.hh"

int
main(int argc, char **argv)
{
    using namespace diq;
    using namespace diq::bench;

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    printHeader("Figure 2: IPC loss of IssueFIFO vs unbounded baseline"
                " (SPECint)",
                harness.options());

    std::vector<SweepConfig> configs;
    for (int queues : {8, 10, 12}) {
        for (int size : {8, 16}) {
            SweepConfig c;
            c.scheme = core::SchemeConfig::issueFifo(queues, size, 16, 16);
            c.label = c.scheme.name();
            configs.push_back(c);
        }
    }
    runIpcLossSweep(harness, trace::specIntProfiles(), configs);
    return 0;
}

/**
 * @file
 * Figure 2 — IPC loss of the IssueFIFO organization w.r.t. the
 * unbounded (256-entry) conventional issue queue, SPECint suite.
 * Integer queues sweep {8,10,12} x {8,16}; FP queues fixed at 16x16.
 * Expected shape: small losses (a few percent), shrinking with more
 * queues; queue *depth* nearly irrelevant (8 -> 16 entries buys
 * ~0.1% in the paper).
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("fig02", argc, argv);
}

/**
 * @file
 * Figure 10 — issue-queue energy breakdown of IF_distr. Expected
 * shape (paper): Qrename ~25-30%, fifo ~35%, regs_ready ~35%, and
 * negligible Mux* because each queue owns its functional units.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("fig10", argc, argv);
}

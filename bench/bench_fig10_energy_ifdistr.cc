/**
 * @file
 * Figure 10 — issue-queue energy breakdown of IF_distr. Expected
 * shape (paper): Qrename ~25-30%, fifo ~35%, regs_ready ~35%, and
 * negligible Mux* because each queue owns its functional units.
 */

#include "energy_common.hh"

int
main(int argc, char **argv)
{
    using namespace diq;
    using namespace diq::bench;

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    printHeader("Figure 10: energy breakdown, IF_distr",
                harness.options());

    auto scheme = core::SchemeConfig::ifDistr();
    SuiteEnergy ints = aggregateSuite(harness, scheme,
                                      trace::specIntProfiles());
    SuiteEnergy fps = aggregateSuite(harness, scheme,
                                     trace::specFpProfiles());
    printBreakdown("Energy breakdown IF_distr (% of issue-queue energy)",
                   ints, fps);
    return 0;
}

/**
 * @file
 * Ablations of the paper's design choices:
 *
 *  1. Chains per MixBUFF queue (paper §3.2 evaluates unbounded chains,
 *     §3.3 fixes 8): sweep 1..unbounded at the MB_distr configuration.
 *  2. Clearing the queue rename table on branch mispredicts (paper
 *     §2.2 claims "clearing the table does not have significant
 *     impact in performance and simplifies the hardware").
 *  3. Distributing the functional units (paper §3.3 claims "small
 *     impact on performance" in exchange for killing the crossbar).
 */

#include <iostream>

#include "harness.hh"
#include "util/stats.hh"

namespace
{

using namespace diq;
using namespace diq::bench;

double
suiteHm(Harness &harness, const core::SchemeConfig &scheme,
        const std::vector<trace::BenchmarkProfile> &profiles)
{
    std::vector<double> ipcs;
    for (const auto &p : profiles)
        ipcs.push_back(harness.run(scheme, p).ipc);
    return util::harmonicMean(ipcs);
}

} // namespace

int
main(int argc, char **argv)
{
    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    printHeader("Ablation studies of the MixBUFF design choices",
                harness.options());

    const auto &fp = trace::specFpProfiles();
    const auto &ints = trace::specIntProfiles();

    {
        std::cout << "1) Chains per FP queue (MB_distr, SPECfp HM IPC):\n";
        util::TablePrinter t({"chains/queue", "HM IPC"});
        for (int chains : {1, 2, 4, 8, 16, 0}) {
            auto cfg = core::SchemeConfig::mbDistr();
            cfg.chainsPerQueue = chains;
            t.addRow({chains == 0 ? "unbounded" : std::to_string(chains),
                      util::TablePrinter::fmt(suiteHm(harness, cfg, fp),
                                              3)});
        }
        std::cout << t.render()
                  << "   (8 chains should be within noise of unbounded"
                     " — the paper's §3.3 choice)\n\n";
    }

    {
        std::cout << "2) Clear queue-rename table on mispredicts"
                     " (IF_distr, SPECint HM IPC):\n";
        util::TablePrinter t({"policy", "HM IPC"});
        for (bool clear : {true, false}) {
            auto cfg = core::SchemeConfig::ifDistr();
            cfg.clearTableOnMispredict = clear;
            t.addRow({clear ? "clear (paper)" : "keep stale entries",
                      util::TablePrinter::fmt(
                          suiteHm(harness, cfg, ints), 3)});
        }
        std::cout << t.render()
                  << "   (paper §2.2: clearing costs nothing"
                     " measurable)\n\n";
    }

    {
        std::cout << "3) Distributed vs centralized functional units"
                     " (MixBUFF_8x8_8x16, SPECfp HM IPC):\n";
        util::TablePrinter t({"FU binding", "HM IPC"});
        for (bool distr : {false, true}) {
            auto cfg = core::SchemeConfig::mixBuff(8, 8, 8, 16, 8);
            cfg.distributedFus = distr;
            t.addRow({distr ? "distributed (MB_distr)" : "centralized",
                      util::TablePrinter::fmt(suiteHm(harness, cfg, fp),
                                              3)});
        }
        std::cout << t.render()
                  << "   (paper §3.3: distribution costs little IPC and"
                     " removes the issue crossbar)\n";
    }
    return 0;
}

/**
 * @file
 * Ablations of the paper's design choices:
 *
 *  1. Chains per MixBUFF queue (paper §3.2 evaluates unbounded chains,
 *     §3.3 fixes 8): sweep 1..unbounded at the MB_distr configuration.
 *  2. Clearing the queue rename table on branch mispredicts (paper
 *     §2.2 claims "clearing the table does not have significant
 *     impact in performance and simplifies the hardware").
 *  3. Distributing the functional units (paper §3.3 claims "small
 *     impact on performance" in exchange for killing the crossbar).
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("ablation", argc, argv);
}

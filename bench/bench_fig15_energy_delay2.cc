/**
 * @file
 * Figure 15 — whole-processor energy x delay^2, normalized to the
 * baseline (IQ = 23% of chip power). Expected shape (FP): MB_distr
 * practically matches the baseline while IF_distr is far worse
 * (paper: MB_distr ~35% better than IF_distr).
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("fig15", argc, argv);
}

/**
 * @file
 * Figure 15 — whole-processor energy x delay^2, normalized to the
 * baseline (IQ = 23% of chip power). Expected shape (FP): MB_distr
 * practically matches the baseline while IF_distr is far worse
 * (paper: MB_distr ~35% better than IF_distr).
 */

#include "energy_common.hh"

int
main(int argc, char **argv)
{
    using namespace diq;
    using namespace diq::bench;

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    printHeader("Figure 15: normalized chip energy-delay^2 (IQ = 23% of"
                " chip power)",
                harness.options());

    util::TablePrinter table({"scheme", "SPECINT", "SPECFP"});
    auto base = core::SchemeConfig::iq6464();
    SuiteEnergy base_int = aggregateSuite(harness, base,
                                          trace::specIntProfiles());
    SuiteEnergy base_fp = aggregateSuite(harness, base,
                                         trace::specFpProfiles());
    table.addRow({"IQ_64_64", "1.000", "1.000"});
    double ed2_fp[2] = {0, 0};
    int i = 0;
    for (const auto &s : {core::SchemeConfig::ifDistr(),
                          core::SchemeConfig::mbDistr()}) {
        SuiteEnergy si = aggregateSuite(harness, s,
                                        trace::specIntProfiles());
        SuiteEnergy sf = aggregateSuite(harness, s,
                                        trace::specFpProfiles());
        auto ni = power::normalizedEfficiency(si.total, base_int.total);
        auto nf = power::normalizedEfficiency(sf.total, base_fp.total);
        ed2_fp[i++] = nf.chipEd2;
        table.addRow({s.name(), util::TablePrinter::fmt(ni.chipEd2, 3),
                      util::TablePrinter::fmt(nf.chipEd2, 3)});
    }
    std::cout << table.render() << "\n";
    std::cout << "FP summary: MB_distr vs baseline: "
              << util::TablePrinter::fmt(ed2_fp[1], 3)
              << "x (paper: ~1.0x);  MB_distr vs IF_distr: "
              << util::TablePrinter::pct(1.0 - ed2_fp[1] / ed2_fp[0])
              << " better (paper: ~35%)\n\nCSV:\n"
              << table.renderCsv();
    return 0;
}

/**
 * @file
 * Shared driver for the Figure 2/3/4/6 IPC-loss sweeps: a family of
 * FIFO-style configurations against the unbounded conventional issue
 * queue, reported as "% IPC loss w.r.t. baseline" exactly like the
 * paper's bar charts.
 */

#ifndef DIQ_BENCH_SWEEP_COMMON_HH
#define DIQ_BENCH_SWEEP_COMMON_HH

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "harness.hh"
#include "util/stats.hh"

namespace diq::bench
{

/** One bar group of a sweep figure. */
struct SweepConfig
{
    std::string label;
    core::SchemeConfig scheme;
};

/**
 * Run every config over `profiles` and print per-benchmark and average
 * IPC loss versus the unbounded baseline.
 */
inline void
runIpcLossSweep(Harness &harness,
                const std::vector<trace::BenchmarkProfile> &profiles,
                const std::vector<SweepConfig> &configs)
{
    core::SchemeConfig baseline = core::SchemeConfig::unbounded();

    std::vector<std::string> headers{"benchmark"};
    for (const auto &c : configs)
        headers.push_back(c.label);
    util::TablePrinter table(headers);

    std::vector<std::vector<double>> losses(configs.size());
    for (const auto &p : profiles) {
        double base_ipc = harness.run(baseline, p).ipc;
        std::vector<std::string> row{p.name};
        for (size_t i = 0; i < configs.size(); ++i) {
            double ipc = harness.run(configs[i].scheme, p).ipc;
            double loss = base_ipc > 0 ? 1.0 - ipc / base_ipc : 0.0;
            losses[i].push_back(loss);
            row.push_back(util::TablePrinter::pct(loss));
        }
        table.addRow(row);
    }

    std::vector<std::string> avg{"AVG"};
    for (auto &l : losses)
        avg.push_back(util::TablePrinter::pct(util::mean(l)));
    table.addRow(avg);

    std::cout << table.render() << "\nCSV:\n" << table.renderCsv();
}

} // namespace diq::bench

#endif // DIQ_BENCH_SWEEP_COMMON_HH

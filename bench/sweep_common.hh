/**
 * @file
 * Shared driver for the Figure 2/3/4/6 IPC-loss sweeps: a family of
 * FIFO-style configurations against the unbounded conventional issue
 * queue, reported as "% IPC loss w.r.t. baseline" exactly like the
 * paper's bar charts. The whole grid (baseline included) is declared
 * as a runner::SweepSpec and prefetched across the worker pool before
 * any formatting happens (docs/ARCHITECTURE.md §7).
 */

#ifndef DIQ_BENCH_SWEEP_COMMON_HH
#define DIQ_BENCH_SWEEP_COMMON_HH

#include <string>
#include <vector>

#include "figures.hh"
#include "util/stats.hh"

namespace diq::bench
{

/** One bar group of a sweep figure. */
struct SweepConfig
{
    std::string label;
    core::SchemeConfig scheme;
};

/** The {8,10,12}x{8,16} grid every §3 sweep figure uses. */
template <typename MakeScheme>
std::vector<SweepConfig>
fifoFamilyGrid(MakeScheme make)
{
    std::vector<SweepConfig> configs;
    for (int queues : {8, 10, 12}) {
        for (int size : {8, 16}) {
            SweepConfig c;
            c.scheme = make(queues, size);
            c.label = c.scheme.name();
            configs.push_back(c);
        }
    }
    return configs;
}

/**
 * Declare, prefetch and render one IPC-loss sweep: every config (plus
 * the unbounded baseline) over `profiles`, reported per benchmark and
 * as the suite average.
 */
inline void
runIpcLossSweep(Harness &harness, FigureOutput &out,
                const std::vector<trace::BenchmarkProfile> &profiles,
                const std::vector<SweepConfig> &configs)
{
    core::SchemeConfig baseline = core::SchemeConfig::unbounded();

    runner::SweepSpec spec;
    spec.addSuite(baseline, profiles);
    for (const auto &c : configs)
        spec.addSuite(c.scheme, profiles);
    harness.prefetch(spec);

    std::vector<std::string> headers{"benchmark"};
    for (const auto &c : configs)
        headers.push_back(c.label);
    util::TablePrinter table(headers);

    std::vector<std::vector<double>> losses(configs.size());
    for (const auto &p : profiles) {
        double base_ipc = harness.run(baseline, p).ipc;
        std::vector<std::string> row{p.name};
        for (size_t i = 0; i < configs.size(); ++i) {
            double ipc = harness.run(configs[i].scheme, p).ipc;
            double loss = base_ipc > 0 ? 1.0 - ipc / base_ipc : 0.0;
            losses[i].push_back(loss);
            row.push_back(util::TablePrinter::pct(loss));
        }
        table.addRow(row);
    }

    std::vector<std::string> avg{"AVG"};
    for (auto &l : losses)
        avg.push_back(util::TablePrinter::pct(util::mean(l)));
    table.addRow(avg);

    out.table("ipc_loss", "", table);
}

} // namespace diq::bench

#endif // DIQ_BENCH_SWEEP_COMMON_HH

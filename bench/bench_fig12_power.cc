/**
 * @file
 * Figure 12 — issue-queue power (energy/cycle) of IF_distr and
 * MB_distr normalized to IQ_64_64, per suite. Expected shape: both
 * distributed schemes dissipate a small fraction of the baseline's
 * issue-queue power.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("fig12", argc, argv);
}

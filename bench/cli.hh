/**
 * @file
 * The `diq` command-line interface (docs/ARCHITECTURE.md §8).
 *
 * One binary subsumes the one-off entry points, founded on the
 * declarative spec layer (spec/experiment_spec.hh):
 *
 *   diq run    — execute one experiment from a spec string
 *   diq record — execute one experiment while recording the consumed
 *                workload stream to a .diqt file (trace/file_trace.hh)
 *   diq sweep  — execute a textual grid (SweepSpec::fromText) and
 *                emit CSV; with --store the campaign is crash-safe
 *                and `--resume` replays completed points from disk
 *   diq cache  — inspect the persistent result store
 *                (list | verify | gc | stats; store/result_store.hh)
 *   diq serve  — long-running daemon owning one store + worker pool,
 *                serving grid requests over a Unix-domain socket
 *                (serve/server.hh)
 *   diq submit — send a grid to a running server, stream rows back,
 *                render the same CSV `diq sweep` would
 *   diq status — live server/dispatcher/store counters
 *   diq shutdown — ask a running server to stop
 *   diq report — the full figure report (bench/report.hh; the
 *                `diq_report` binary is a thin alias of this)
 *   diq list   — schemes, benchmarks, spec keys and figures, with
 *                doc strings
 *
 * The render helpers are exposed so the CLI golden tests can compute
 * the expected output in-process and compare byte-for-byte.
 */

#ifndef DIQ_BENCH_CLI_HH
#define DIQ_BENCH_CLI_HH

#include <string>
#include <vector>

#include "runner/sim_job.hh"
#include "runner/sweep_runner.hh"
#include "spec/experiment_spec.hh"

namespace diq::bench
{

/**
 * The documented exit-code taxonomy (README "Exit codes"). Scripts
 * and CI branch on these, so they are part of the CLI contract:
 *
 *   0  success
 *   1  runtime failure (I/O error, unexpected exception)
 *   2  fuzz found invariant violations
 *   3  sweep completed partially: >= 1 job quarantined as poison
 *      (the CSV still has one row per point, failed rows marked)
 *   4  usage error (bad flags, unknown subcommand, bad fault plan,
 *      journal/campaign mismatch)
 *   5  spec/grid parse error (spec::ParseError)
 *   6  server busy: `diq submit` was rejected at admission control
 *      (the serve backlog is full) — nothing ran, retry later
 *
 * fault::kCrashExitCode (42) is reserved for injected crashes.
 */
enum ExitCode : int
{
    kExitOk = 0,
    kExitRuntime = 1,
    kExitFuzzViolations = 2,
    kExitPartialSweep = 3,
    kExitUsage = 4,
    kExitBadSpec = 5,
    kExitServerBusy = 6,
};

/** The exact stdout of `diq run` for a spec and its result. */
std::string renderRunOutput(const spec::ExperimentSpec &exp,
                            const runner::SimResult &result);

/**
 * The exact CSV of `diq sweep`: one row per grid point in sweep
 * order — including quarantined points, whose numeric cells render
 * as "-" — with a `status` column (`ok` or `failed: <reason>`) and a
 * final `spec` column carrying the point's effective canonical spec
 * (budgets included), so any ok row reproduces alone via
 * `diq run --spec "<spec column>"`.
 */
std::string
renderSweepCsv(const runner::SweepSpec &grid,
               const runner::RunnerOptions &opts,
               const std::vector<runner::JobOutcome> &outcomes);

/** Entry point behind main(): argv[1] selects the subcommand. */
int cliMain(int argc, char **argv);

} // namespace diq::bench

#endif // DIQ_BENCH_CLI_HH

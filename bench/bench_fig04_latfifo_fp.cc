/**
 * @file
 * Figure 4 — IPC loss of LatFIFO w.r.t. the unbounded baseline,
 * SPECfp suite, same sweep as Figure 3. Expected shape: clearly
 * better than IssueFIFO (paper: ~10 points), still a significant
 * loss; queue depth nearly irrelevant.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("fig04", argc, argv);
}

/**
 * @file
 * Figure 4 — IPC loss of LatFIFO w.r.t. the unbounded baseline,
 * SPECfp suite, same sweep as Figure 3. Expected shape: clearly
 * better than IssueFIFO (paper: ~10 points), still a significant
 * loss; queue depth nearly irrelevant.
 */

#include "sweep_common.hh"

int
main(int argc, char **argv)
{
    using namespace diq;
    using namespace diq::bench;

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    printHeader("Figure 4: IPC loss of LatFIFO vs unbounded baseline"
                " (SPECfp)",
                harness.options());

    std::vector<SweepConfig> configs;
    for (int queues : {8, 10, 12}) {
        for (int size : {8, 16}) {
            SweepConfig c;
            c.scheme = core::SchemeConfig::latFifo(16, 16, queues, size);
            c.label = c.scheme.name();
            configs.push_back(c);
        }
    }
    runIpcLossSweep(harness, trace::specFpProfiles(), configs);
    return 0;
}

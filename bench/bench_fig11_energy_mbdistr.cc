/**
 * @file
 * Figure 11 — issue-queue energy breakdown of MB_distr. Expected
 * shape (paper): integer codes look like IF_distr (Qrename / fifo /
 * regs_ready); FP codes additionally spend energy in the buffers
 * (buff), per-queue selection (select) and the chain latency tables
 * (chains), while the selected-instruction latch (reg) and the Mux*
 * components stay negligible.
 */

#include "energy_common.hh"

int
main(int argc, char **argv)
{
    using namespace diq;
    using namespace diq::bench;

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    printHeader("Figure 11: energy breakdown, MB_distr",
                harness.options());

    auto scheme = core::SchemeConfig::mbDistr();
    SuiteEnergy ints = aggregateSuite(harness, scheme,
                                      trace::specIntProfiles());
    SuiteEnergy fps = aggregateSuite(harness, scheme,
                                     trace::specFpProfiles());
    printBreakdown("Energy breakdown MB_distr (% of issue-queue energy)",
                   ints, fps);
    return 0;
}

/**
 * @file
 * Figure 11 — issue-queue energy breakdown of MB_distr. Expected
 * shape (paper): integer codes look like IF_distr (Qrename / fifo /
 * regs_ready); FP codes additionally spend energy in the buffers
 * (buff), per-queue selection (select) and the chain latency tables
 * (chains), while the selected-instruction latch (reg) and the Mux*
 * components stay negligible.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("fig11", argc, argv);
}

/**
 * @file
 * Figure registry table, commentary, and the shared bench main
 * (docs/ARCHITECTURE.md §6-§7).
 */

#include "figures.hh"

#include <iostream>

namespace diq::bench
{

void
FigureOutput::table(const std::string &id, const std::string &caption,
                    const util::TablePrinter &t)
{
    if (!caption.empty())
        text_ << caption << "\n";
    text_ << t.render();
    tables_.push_back({id, caption, t});
}

void
FigureOutput::note(const std::string &s)
{
    text_ << s;
    notes_ += s;
}

const std::vector<Figure> &
allFigures()
{
    static const std::vector<Figure> figures = {
        {"table1", "bench_table1",
         "Table 1: Processor configuration",
         "Table 1 (§4.1)",
         "The simulated machine matches the paper's Table 1: 8-wide "
         "fetch/commit, 256-entry ROB, two 8-wide issue clusters, and "
         "the three evaluated issue-queue organizations (IQ_64_64, "
         "IF_distr, MB_distr). This table is configuration, not "
         "measurement — it pins down what every other figure ran on.",
         fig::table1},
        {"fig02", "bench_fig02_issuefifo_int",
         "Figure 2: IPC loss of IssueFIFO vs unbounded baseline"
         " (SPECint)",
         "Fig. 2 (§3)",
         "The paper reports small SPECint losses (a few percent) that "
         "shrink as queues are added, with queue depth nearly "
         "irrelevant (8 -> 16 entries buys ~0.1%). The reproduction "
         "shows the same ordering: losses fall monotonically from 8 to "
         "12 queues, and the x8 vs x16 columns differ by well under a "
         "point — dependence-chain steering, not capacity, is the "
         "binding constraint on integer codes.",
         fig::fig02},
        {"fig03", "bench_fig03_issuefifo_fp",
         "Figure 3: IPC loss of IssueFIFO vs unbounded baseline"
         " (SPECfp)",
         "Fig. 3 (§3)",
         "The paper's SPECfp losses are much larger (~15-25%): FP "
         "dependence graphs are too wide for strict FIFO issue. The "
         "reproduction reproduces the jump — average losses sit an "
         "order above Figure 2's and adding queues helps only "
         "modestly, which is the motivation for LatFIFO and MixBUFF.",
         fig::fig03},
        {"fig04", "bench_fig04_latfifo_fp",
         "Figure 4: IPC loss of LatFIFO vs unbounded baseline"
         " (SPECfp)",
         "Fig. 4 (§3.1)",
         "LatFIFO places instructions by estimated issue cycle, so "
         "independent chains can share a queue. The paper sees roughly "
         "a 10-point improvement over IssueFIFO at the same geometry; "
         "the reproduction shows the same clear gap versus Figure 3 "
         "with queue depth still nearly irrelevant.",
         fig::fig04},
        {"fig06", "bench_fig06_mixbuff_fp",
         "Figure 6: IPC loss of MixBUFF vs unbounded baseline"
         " (SPECfp)",
         "Fig. 6 (§3.2)",
         "MixBUFF (unbounded chains, as in the paper's sizing study) "
         "cuts FP losses to ~5% at 8x16 in the paper, with buffer "
         "*size* mattering more than buffer *count*. The reproduction "
         "matches both trends: the x16 columns beat the x8 columns by "
         "more than extra queues do, and overall losses are far below "
         "Figures 3 and 4.",
         fig::fig06},
        {"fig07", "bench_fig07_ipc_int",
         "Figure 7: IPC, SPECint2000-like suite",
         "Fig. 7 (§4.4)",
         "On integer codes the paper's IF_distr and MB_distr are the "
         "same hardware (identical integer cluster) and both lose "
         "~7.7% HM IPC to the IQ_64_64 baseline. The reproduction "
         "shows the two distributed columns tracking each other "
         "benchmark-for-benchmark (eon differs — it carries an FP "
         "component) at a single-digit loss to the baseline.",
         fig::fig07},
        {"fig08", "bench_fig08_ipc_fp",
         "Figure 8: IPC, SPECfp2000-like suite",
         "Fig. 8 (§4.4)",
         "This is the paper's headline IPC result: IF_distr loses "
         "26.0% on FP while MB_distr holds to 7.6%, winning every "
         "benchmark. The reproduction shows the same separation — "
         "MB_distr stays within single digits of the baseline and "
         "beats IF_distr across the suite.",
         fig::fig08},
        {"fig09", "bench_fig09_energy_iq64",
         "Figure 9: energy breakdown, IQ_64_64",
         "Fig. 9 (§4.5)",
         "In the paper the CAM baseline's issue energy is dominated by "
         "wakeup broadcast even with unready-only comparison gating "
         "and 8x8 banking, with selection and payload buffering next. "
         "The reproduction reproduces that ranking: wakeup is the "
         "largest component on both suites, and MuxIntALU is the only "
         "significant FU-drive term.",
         fig::fig09},
        {"fig10", "bench_fig10_energy_ifdistr",
         "Figure 10: energy breakdown, IF_distr",
         "Fig. 10 (§4.5)",
         "Distributing the queue eliminates wakeup broadcast entirely; "
         "the paper's IF_distr spends its (much smaller) issue energy "
         "on the queue rename table (~25-30%), the FIFOs (~35%) and "
         "the regs_ready scoreboard (~35%), with negligible crossbar "
         "terms thanks to distributed FUs. The reproduction shows the "
         "same three-way split.",
         fig::fig10},
        {"fig11", "bench_fig11_energy_mbdistr",
         "Figure 11: energy breakdown, MB_distr",
         "Fig. 11 (§4.5)",
         "MB_distr's integer side matches IF_distr (same cluster); on "
         "FP codes the buffers, per-queue selection and chain latency "
         "tables add visible components while the selected-instruction "
         "latch and Mux* terms stay negligible — exactly the paper's "
         "legend ordering, reproduced here.",
         fig::fig11},
        {"fig12", "bench_fig12_power",
         "Figure 12: normalized issue-queue power",
         "Fig. 12 (§4.5)",
         "Both distributed schemes dissipate a small fraction of the "
         "baseline's issue-queue power in the paper. The reproduction "
         "agrees: IF_distr and MB_distr land far below 1.0 on both "
         "suites, with MB_distr paying slightly more than IF_distr on "
         "FP for its buffers and chain tables.",
         fig::fig12},
        {"fig13", "bench_fig13_energy",
         "Figure 13: normalized issue-queue energy",
         "Fig. 13 (§4.5)",
         "Same story as Figure 12 in energy terms: both schemes far "
         "below the CAM baseline, MB_distr slightly above IF_distr on "
         "FP codes. The reproduction preserves both the magnitude gap "
         "to the baseline and the IF/MB ordering.",
         fig::fig13},
        {"fig14", "bench_fig14_energy_delay",
         "Figure 14: normalized chip energy-delay (IQ = 23% of chip"
         " power)",
         "Fig. 14 (§4.5)",
         "Folding IPC back in at the paper's 23%-of-chip-power "
         "assumption, MB_distr improves whole-chip ED by ~5% over the "
         "baseline and ~18% over IF_distr on FP — IF_distr pays for "
         "its IPC loss. The reproduction shows the same FP ranking: "
         "MB_distr < baseline < IF_distr.",
         fig::fig14},
        {"fig15", "bench_fig15_energy_delay2",
         "Figure 15: normalized chip energy-delay^2 (IQ = 23% of chip"
         " power)",
         "Fig. 15 (§4.5)",
         "Under ED^2, which weights delay harder, the paper has "
         "MB_distr practically matching the baseline while IF_distr "
         "is ~35% worse than MB_distr on FP. The reproduction lands "
         "the same way: MB_distr near 1.0, IF_distr clearly behind.",
         fig::fig15},
        {"baseline_sizing", "bench_baseline_sizing",
         "Baseline sizing study (paper 4.2)",
         "§4.2 sizing claim",
         "The paper justifies IQ_64_64 as the reference by noting a "
         "baseline with as many entries as the distributed schemes "
         "(64 INT + 128 FP) gains only ~1.0% IPC. The reproduction "
         "confirms the flat scaling: IQ_64_128 and even the unbounded "
         "256-entry queue buy only marginal HM IPC on either suite.",
         fig::baselineSizing},
        {"ablation", "bench_ablation",
         "Ablation studies of the MixBUFF design choices",
         "§2.2 / §3.2 / §3.3 claims",
         "Three paper claims, tested directly: (1) 8 chains per "
         "MixBUFF queue is within noise of unbounded chains (§3.3's "
         "sizing); (2) clearing the queue rename table on mispredicts "
         "costs nothing measurable (§2.2); (3) distributing the "
         "functional units costs little IPC while removing the issue "
         "crossbar (§3.3). The reproduction supports all three — each "
         "ablated variant sits within a small margin of its paper "
         "counterpart.",
         fig::ablation},
    };
    return figures;
}

const Figure *
findFigure(const std::string &id)
{
    for (const auto &f : allFigures())
        if (id == f.id)
            return &f;
    return nullptr;
}

int
figureMain(const std::string &id, int argc, char **argv)
{
    const Figure *figure = findFigure(id);
    if (!figure) {
        std::cerr << "error: unknown figure id '" << id << "'\n";
        return 1;
    }

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    printHeader(figure->title, harness.options());

    FigureOutput out(std::cout);
    figure->render(harness, out);

    for (const auto &t : out.tables())
        std::cout << "\nCSV [" << t.id << "]:\n" << t.table.renderCsv();
    return 0;
}

} // namespace diq::bench

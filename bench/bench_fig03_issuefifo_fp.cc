/**
 * @file
 * Figure 3 — IPC loss of IssueFIFO w.r.t. the unbounded baseline,
 * SPECfp suite. FP queues sweep {8,10,12} x {8,16}; integer queues
 * fixed at 16x16. Expected shape: much larger losses than SPECint
 * (paper: ~15-25%) — FP dependence graphs are too wide for FIFOs.
 */

#include "sweep_common.hh"

int
main(int argc, char **argv)
{
    using namespace diq;
    using namespace diq::bench;

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    printHeader("Figure 3: IPC loss of IssueFIFO vs unbounded baseline"
                " (SPECfp)",
                harness.options());

    std::vector<SweepConfig> configs;
    for (int queues : {8, 10, 12}) {
        for (int size : {8, 16}) {
            SweepConfig c;
            c.scheme = core::SchemeConfig::issueFifo(16, 16, queues, size);
            c.label = c.scheme.name();
            configs.push_back(c);
        }
    }
    runIpcLossSweep(harness, trace::specFpProfiles(), configs);
    return 0;
}

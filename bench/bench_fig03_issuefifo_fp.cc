/**
 * @file
 * Figure 3 — IPC loss of IssueFIFO w.r.t. the unbounded baseline,
 * SPECfp suite. FP queues sweep {8,10,12} x {8,16}; integer queues
 * fixed at 16x16. Expected shape: much larger losses than SPECint
 * (paper: ~15-25%) — FP dependence graphs are too wide for FIFOs.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("fig03", argc, argv);
}

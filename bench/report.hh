/**
 * @file
 * One-shot figure report (docs/ARCHITECTURE.md §7).
 *
 * reportMain() reproduces every figure/table of the paper in one
 * invocation: it runs the whole figure registry against one shared
 * parallel harness (so simulations common to several figures execute
 * once) and emits per-figure CSV and JSON files plus a rendered
 * RESULTS.md under --outdir. Output files carry no timestamps and are
 * assembled in registry order from memoized results, so they are
 * byte-identical for every --jobs value.
 *
 * Both entry points are thin wrappers over this function: the
 * `diq report` subcommand and the legacy `diq_report` alias binary —
 * which is why their output is identical by construction.
 */

#ifndef DIQ_BENCH_REPORT_HH
#define DIQ_BENCH_REPORT_HH

#include "util/flags.hh"

namespace diq::bench
{

/**
 * Flags: positional figure ids (none = all), --outdir DIR, --jobs N,
 * --insts N, --warmup N (env fallbacks DIQ_OUTDIR, DIQ_JOBS,
 * DIQ_INSTS, DIQ_WARMUP). Returns a process exit code.
 */
int reportMain(const util::Flags &flags);

} // namespace diq::bench

#endif // DIQ_BENCH_REPORT_HH

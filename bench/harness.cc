#include "harness.hh"

#include <iostream>

namespace diq::bench
{

HarnessOptions
HarnessOptions::fromFlags(const util::Flags &flags)
{
    HarnessOptions o;
    o.warmupInsts = static_cast<uint64_t>(
        flags.getInt("warmup", static_cast<int64_t>(o.warmupInsts),
                     "DIQ_WARMUP"));
    o.measureInsts = static_cast<uint64_t>(
        flags.getInt("insts", static_cast<int64_t>(o.measureInsts),
                     "DIQ_INSTS"));
    return o;
}

power::EnergyBreakdown
energyFor(const core::SchemeConfig &scheme,
          const util::CounterSet &counters)
{
    power::IssueGeometry g;
    g.iqEntries = static_cast<unsigned>(
        std::max(scheme.camIntEntries, scheme.camFpEntries));
    g.numIntQueues = static_cast<unsigned>(scheme.numIntQueues);
    g.intQueueSize = static_cast<unsigned>(scheme.intQueueSize);
    g.numFpQueues = static_cast<unsigned>(scheme.numFpQueues);
    g.fpQueueSize = static_cast<unsigned>(scheme.fpQueueSize);
    g.chainsPerQueue = scheme.chainsPerQueue > 0
        ? static_cast<unsigned>(scheme.chainsPerQueue)
        : 8;
    power::IssueEnergyModel model(g);

    switch (scheme.kind) {
      case core::SchemeConfig::Kind::Cam:
        return model.baseline(counters);
      case core::SchemeConfig::Kind::IssueFifo:
      case core::SchemeConfig::Kind::LatFifo:
        return model.issueFifo(counters);
      case core::SchemeConfig::Kind::MixBuff:
        return model.mixBuff(counters);
    }
    return {};
}

const RunResult &
Harness::run(const core::SchemeConfig &scheme,
             const trace::BenchmarkProfile &profile)
{
    // The display name omits some knobs (chain bound, table-clearing
    // policy), so the memoization key carries them explicitly.
    std::string key = scheme.name() + "/chains=" +
        std::to_string(scheme.chainsPerQueue) + "/clear=" +
        (scheme.clearTableOnMispredict ? "1" : "0") + "/cam=" +
        std::to_string(scheme.camIntEntries) + "x" +
        std::to_string(scheme.camFpEntries) + "/" + profile.name;
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    auto workload = trace::makeSpecWorkload(profile);
    sim::ProcessorConfig cfg;
    cfg.scheme = scheme;
    sim::Cpu cpu(cfg, *workload);

    cpu.run(opts_.warmupInsts);
    cpu.resetStats();
    cpu.run(opts_.measureInsts);

    RunResult r;
    r.benchmark = profile.name;
    r.scheme = scheme.name();
    r.stats = cpu.stats();
    r.ipc = cpu.stats().ipc();
    r.energy = energyFor(scheme, cpu.stats().counters);

    auto [pos, inserted] = cache_.emplace(key, std::move(r));
    (void)inserted;
    return pos->second;
}

std::vector<const RunResult *>
Harness::runSuite(const core::SchemeConfig &scheme,
                  const std::vector<trace::BenchmarkProfile> &profiles)
{
    std::vector<const RunResult *> out;
    out.reserve(profiles.size());
    for (const auto &p : profiles)
        out.push_back(&run(scheme, p));
    return out;
}

void
printHeader(const std::string &title, const HarnessOptions &opts)
{
    std::cout << "==================================================\n"
              << title << "\n"
              << "  (synthetic SPEC2000-like suite; " << opts.measureInsts
              << " measured insts after " << opts.warmupInsts
              << " warm-up; see docs/ARCHITECTURE.md)\n"
              << "==================================================\n";
}

} // namespace diq::bench

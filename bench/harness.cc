/**
 * @file
 * Implementation of bench/harness.hh (docs/ARCHITECTURE.md §7).
 */

#include "harness.hh"

#include <iostream>

namespace diq::bench
{

void
printHeader(const std::string &title, const HarnessOptions &opts)
{
    std::cout << "==================================================\n"
              << title << "\n"
              << "  (synthetic SPEC2000-like suite; " << opts.measureInsts
              << " measured insts after " << opts.warmupInsts
              << " warm-up; see docs/ARCHITECTURE.md)\n"
              << "==================================================\n";
}

} // namespace diq::bench

/**
 * @file
 * Table 1 — processor configuration. Prints the simulated machine's
 * parameters in the paper's format for the three evaluated schemes.
 */

#include <iostream>

#include "harness.hh"
#include "sim/config.hh"

int
main(int argc, char **argv)
{
    (void)argc;
    (void)argv;
    using namespace diq;

    std::cout << "Table 1: Processor configuration\n\n";
    sim::ProcessorConfig cfg;
    std::cout << cfg.table1String() << "\n";

    std::cout << "Evaluated issue-queue organizations (paper 4.2):\n";
    for (const auto &s : {core::SchemeConfig::iq6464(),
                          core::SchemeConfig::ifDistr(),
                          core::SchemeConfig::mbDistr()}) {
        std::cout << "  - " << s.name()
                  << (s.distributedFus ? "  [distributed FUs]" : "")
                  << "\n";
    }
    return 0;
}

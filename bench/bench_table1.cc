/**
 * @file
 * Table 1 — processor configuration. Prints the simulated machine's
 * parameters in the paper's format for the three evaluated schemes.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("table1", argc, argv);
}

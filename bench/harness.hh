/**
 * @file
 * Experiment harness shared by every figure-reproduction binary.
 *
 * Runs (issue-scheme configuration x benchmark) pairs with warm-up,
 * collects IPC and energy, and memoizes results within the process so
 * a figure that shares a baseline across many configurations only
 * simulates it once. Instruction budgets are overridable per binary
 * (--insts/--warmup) or globally (DIQ_INSTS/DIQ_WARMUP environment
 * variables).
 */

#ifndef DIQ_BENCH_HARNESS_HH
#define DIQ_BENCH_HARNESS_HH

#include <map>
#include <string>
#include <vector>

#include "core/issue_scheme.hh"
#include "power/energy_model.hh"
#include "power/metrics.hh"
#include "sim/pipeline.hh"
#include "trace/spec2000.hh"
#include "util/flags.hh"
#include "util/table_printer.hh"

namespace diq::bench
{

/** Instruction budgets for one run. */
struct HarnessOptions
{
    uint64_t warmupInsts = 30000;
    uint64_t measureInsts = 120000;

    /** Apply --warmup/--insts flags and DIQ_WARMUP/DIQ_INSTS env. */
    static HarnessOptions fromFlags(const util::Flags &flags);
};

/** Outcome of one (scheme, benchmark) simulation. */
struct RunResult
{
    std::string benchmark;
    std::string scheme;
    double ipc = 0.0;
    sim::SimStats stats;
    power::EnergyBreakdown energy;

    power::RunEnergy
    runEnergy() const
    {
        return {energy.total(), stats.cycles, stats.committed};
    }
};

/** Memoizing runner. */
class Harness
{
  public:
    explicit Harness(HarnessOptions opts) : opts_(opts) {}

    /** Simulate (or recall) one pair. */
    const RunResult &run(const core::SchemeConfig &scheme,
                         const trace::BenchmarkProfile &profile);

    /** Run a whole suite, in order. */
    std::vector<const RunResult *>
    runSuite(const core::SchemeConfig &scheme,
             const std::vector<trace::BenchmarkProfile> &profiles);

    const HarnessOptions &options() const { return opts_; }

  private:
    HarnessOptions opts_;
    std::map<std::string, RunResult> cache_;
};

/** Convert a run's event counters into the scheme's energy breakdown. */
power::EnergyBreakdown energyFor(const core::SchemeConfig &scheme,
                                 const util::CounterSet &counters);

/** Standard preamble each bench binary prints. */
void printHeader(const std::string &title, const HarnessOptions &opts);

} // namespace diq::bench

#endif // DIQ_BENCH_HARNESS_HH

/**
 * @file
 * Experiment harness shared by every figure-reproduction binary.
 *
 * Since the src/runner subsystem landed (docs/ARCHITECTURE.md §7)
 * this is a thin adapter: the harness owns a runner::SweepRunner,
 * which executes (issue-scheme configuration x benchmark) jobs across
 * worker threads and memoizes them in a thread-safe cache shared by
 * all figures in the process. Budgets come from --insts/--warmup
 * (DIQ_INSTS/DIQ_WARMUP), the worker count from --jobs (DIQ_JOBS).
 * The figure idiom: declare the full grid as a runner::SweepSpec,
 * prefetch() it in parallel, then render serially from cache hits —
 * output is byte-identical for every worker count.
 */

#ifndef DIQ_BENCH_HARNESS_HH
#define DIQ_BENCH_HARNESS_HH

#include <string>
#include <vector>

#include "core/issue_scheme.hh"
#include "power/energy_model.hh"
#include "power/metrics.hh"
#include "runner/sweep_runner.hh"
#include "sim/pipeline.hh"
#include "trace/spec2000.hh"
#include "util/flags.hh"
#include "util/table_printer.hh"

namespace diq::bench
{

/** Budgets + worker count for one bench invocation. */
using HarnessOptions = runner::RunnerOptions;

/** Outcome of one (scheme, benchmark) simulation. */
using RunResult = runner::SimResult;

/** Memoizing parallel runner, bench-facing. */
class Harness
{
  public:
    explicit Harness(HarnessOptions opts) : runner_(opts) {}

    /** Simulate (or recall) one pair. */
    const RunResult &
    run(const core::SchemeConfig &scheme,
        const trace::BenchmarkProfile &profile)
    {
        return runner_.run(scheme, profile);
    }

    /** Fill the cache for a declared grid using the worker pool. */
    void prefetch(const runner::SweepSpec &spec)
    {
        runner_.prefetch(spec);
    }

    /** Run a whole suite, in order. */
    std::vector<const RunResult *>
    runSuite(const core::SchemeConfig &scheme,
             const std::vector<trace::BenchmarkProfile> &profiles)
    {
        runner::SweepSpec spec;
        spec.addSuite(scheme, profiles);
        return runner_.runAll(spec);
    }

    const HarnessOptions &options() const { return runner_.options(); }
    runner::SweepRunner &runner() { return runner_; }

  private:
    runner::SweepRunner runner_;
};

/** Convert a run's event counters into the scheme's energy breakdown. */
inline power::EnergyBreakdown
energyFor(const core::SchemeConfig &scheme,
          const power::EventCounters &counters)
{
    return runner::energyFor(scheme, counters);
}

/** Standard preamble each bench binary prints. */
void printHeader(const std::string &title, const HarnessOptions &opts);

} // namespace diq::bench

#endif // DIQ_BENCH_HARNESS_HH

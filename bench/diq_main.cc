/**
 * @file
 * The `diq` binary: single CLI over the declarative experiment API
 * (bench/cli.hh, docs/ARCHITECTURE.md §8). Run `diq help` for usage.
 */

#include "cli.hh"

int
main(int argc, char **argv)
{
    return diq::bench::cliMain(argc, argv);
}

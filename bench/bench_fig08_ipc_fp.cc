/**
 * @file
 * Figure 8 — IPC of the FP benchmarks for IQ_64_64, IF_distr and
 * MB_distr. Expected shape: IF_distr loses heavily (paper: 26.0%),
 * MB_distr stays close to the baseline (paper: 7.6%) and beats
 * IF_distr on every benchmark.
 */

#include <iostream>

#include "harness.hh"
#include "util/stats.hh"

int
main(int argc, char **argv)
{
    using namespace diq;
    using bench::Harness;
    using bench::HarnessOptions;

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    bench::printHeader("Figure 8: IPC, SPECfp2000-like suite",
                       harness.options());

    const auto schemes = {core::SchemeConfig::iq6464(),
                          core::SchemeConfig::ifDistr(),
                          core::SchemeConfig::mbDistr()};

    util::TablePrinter table({"benchmark", "IQ_64_64", "IF_distr",
                              "MB_distr"});
    std::vector<double> ipc_base, ipc_if, ipc_mb;
    int mb_wins = 0;

    for (const auto &profile : trace::specFpProfiles()) {
        std::vector<std::string> row{profile.name};
        double vals[3] = {0, 0, 0};
        int i = 0;
        for (const auto &s : schemes) {
            const auto &r = harness.run(s, profile);
            row.push_back(util::TablePrinter::fmt(r.ipc, 3));
            vals[i] = r.ipc;
            (i == 0 ? ipc_base : i == 1 ? ipc_if : ipc_mb).push_back(r.ipc);
            ++i;
        }
        if (vals[2] > vals[1])
            ++mb_wins;
        table.addRow(row);
    }

    double hm_base = util::harmonicMean(ipc_base);
    double hm_if = util::harmonicMean(ipc_if);
    double hm_mb = util::harmonicMean(ipc_mb);
    table.addRow({"HARMEAN", util::TablePrinter::fmt(hm_base, 3),
                  util::TablePrinter::fmt(hm_if, 3),
                  util::TablePrinter::fmt(hm_mb, 3)});

    std::cout << table.render() << "\n";
    std::cout << "IPC loss vs baseline (paper: IF_distr 26.0%, MB_distr"
              << " 7.6%):\n"
              << "  IF_distr: "
              << util::TablePrinter::pct(1.0 - hm_if / hm_base) << "\n"
              << "  MB_distr: "
              << util::TablePrinter::pct(1.0 - hm_mb / hm_base) << "\n"
              << "MB_distr outperforms IF_distr on " << mb_wins << "/"
              << trace::specFpProfiles().size() << " FP benchmarks"
              << " (paper: all)\n\n";
    std::cout << "CSV:\n" << table.renderCsv();
    return 0;
}

/**
 * @file
 * Figure 8 — IPC of the FP benchmarks for IQ_64_64, IF_distr and
 * MB_distr. Expected shape: IF_distr loses heavily (paper: 26.0%),
 * MB_distr stays close to the baseline (paper: 7.6%) and beats
 * IF_distr on every benchmark.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("fig08", argc, argv);
}

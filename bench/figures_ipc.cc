/**
 * @file
 * Render functions for the IPC figures: the §3 FIFO-family sweeps
 * (Figures 2/3/4/6) and the §4.4 per-benchmark IPC tables
 * (Figures 7/8). Each declares its grid as a runner::SweepSpec,
 * prefetches in parallel, then formats serially from cache hits.
 */

#include <sstream>

#include "sweep_common.hh"

namespace diq::bench::fig
{

void
fig02(Harness &harness, FigureOutput &out)
{
    // INT queues sweep {8,10,12}x{8,16}; FP queues fixed at 16x16.
    auto configs = fifoFamilyGrid([](int queues, int size) {
        return core::SchemeConfig::issueFifo(queues, size, 16, 16);
    });
    runIpcLossSweep(harness, out, trace::specIntProfiles(), configs);
}

void
fig03(Harness &harness, FigureOutput &out)
{
    // FP queues sweep {8,10,12}x{8,16}; integer queues fixed at 16x16.
    auto configs = fifoFamilyGrid([](int queues, int size) {
        return core::SchemeConfig::issueFifo(16, 16, queues, size);
    });
    runIpcLossSweep(harness, out, trace::specFpProfiles(), configs);
}

void
fig04(Harness &harness, FigureOutput &out)
{
    auto configs = fifoFamilyGrid([](int queues, int size) {
        return core::SchemeConfig::latFifo(16, 16, queues, size);
    });
    runIpcLossSweep(harness, out, trace::specFpProfiles(), configs);
}

void
fig06(Harness &harness, FigureOutput &out)
{
    // Unbounded chains per queue, as in the paper's sizing study.
    auto configs = fifoFamilyGrid([](int queues, int size) {
        return core::SchemeConfig::mixBuff(16, 16, queues, size,
                                           /*chains=*/0);
    });
    runIpcLossSweep(harness, out, trace::specFpProfiles(), configs);
}

namespace
{

/** Shared driver for Figures 7/8: per-benchmark IPC + HARMEAN. */
void
ipcTable(Harness &harness, FigureOutput &out,
         const std::vector<trace::BenchmarkProfile> &profiles,
         bool fpSummary)
{
    const std::vector<core::SchemeConfig> schemes{
        core::SchemeConfig::iq6464(), core::SchemeConfig::ifDistr(),
        core::SchemeConfig::mbDistr()};

    runner::SweepSpec spec;
    spec.addGrid(schemes, profiles);
    harness.prefetch(spec);

    util::TablePrinter table({"benchmark", "IQ_64_64", "IF_distr",
                              "MB_distr"});
    std::vector<double> ipc_base, ipc_if, ipc_mb;
    int mb_wins = 0;

    for (const auto &profile : profiles) {
        std::vector<std::string> row{profile.name};
        double vals[3] = {0, 0, 0};
        int i = 0;
        for (const auto &s : schemes) {
            const auto &r = harness.run(s, profile);
            row.push_back(util::TablePrinter::fmt(r.ipc, 3));
            vals[i] = r.ipc;
            (i == 0 ? ipc_base : i == 1 ? ipc_if : ipc_mb).push_back(r.ipc);
            ++i;
        }
        if (vals[2] > vals[1])
            ++mb_wins;
        table.addRow(row);
    }

    double hm_base = util::harmonicMean(ipc_base);
    double hm_if = util::harmonicMean(ipc_if);
    double hm_mb = util::harmonicMean(ipc_mb);
    table.addRow({"HARMEAN", util::TablePrinter::fmt(hm_base, 3),
                  util::TablePrinter::fmt(hm_if, 3),
                  util::TablePrinter::fmt(hm_mb, 3)});
    out.table("ipc", "", table);

    std::ostringstream note;
    note << "\nIPC loss vs baseline (paper: "
         << (fpSummary ? "IF_distr 26.0%, MB_distr 7.6%"
                       : "~7.7% for both")
         << "):\n"
         << "  IF_distr: "
         << util::TablePrinter::pct(1.0 - hm_if / hm_base) << "\n"
         << "  MB_distr: "
         << util::TablePrinter::pct(1.0 - hm_mb / hm_base) << "\n";
    if (fpSummary)
        note << "MB_distr outperforms IF_distr on " << mb_wins << "/"
             << profiles.size() << " FP benchmarks (paper: all)\n";
    out.note(note.str());
}

} // namespace

void
fig07(Harness &harness, FigureOutput &out)
{
    ipcTable(harness, out, trace::specIntProfiles(),
             /*fpSummary=*/false);
}

void
fig08(Harness &harness, FigureOutput &out)
{
    ipcTable(harness, out, trace::specFpProfiles(), /*fpSummary=*/true);
}

} // namespace diq::bench::fig

/**
 * @file
 * diq_report — thin alias for `diq report` (bench/report.hh), kept so
 * existing scripts and docs keep working. Both entry points call
 * reportMain(), so their output is byte-identical by construction.
 *
 * Usage: diq_report [figure-ids...] [--outdir DIR] [--jobs N]
 *                   [--insts N] [--warmup N]
 *   (env fallbacks: DIQ_JOBS, DIQ_INSTS, DIQ_WARMUP, DIQ_OUTDIR;
 *    default outdir: "report"; no ids = all figures)
 */

#include "report.hh"
#include "util/flags.hh"

int
main(int argc, char **argv)
{
    return diq::bench::reportMain(diq::util::Flags(argc, argv));
}

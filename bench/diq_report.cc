/**
 * @file
 * diq_report — reproduce every figure/table of the paper in one
 * invocation (docs/ARCHITECTURE.md §7).
 *
 * Runs the whole figure registry against one shared parallel harness
 * (so simulations common to several figures execute once), and emits
 * per-figure CSV and JSON files plus a rendered RESULTS.md under
 * --outdir. Output files carry no timestamps and are assembled in
 * registry order from memoized results, so they are byte-identical
 * for every --jobs value.
 *
 * Usage: diq_report [figure-ids...] [--outdir DIR] [--jobs N]
 *                   [--insts N] [--warmup N]
 *   (env fallbacks: DIQ_JOBS, DIQ_INSTS, DIQ_WARMUP, DIQ_OUTDIR;
 *    default outdir: "report"; no ids = all figures)
 */

#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "figures.hh"

namespace
{

using namespace diq;
using namespace diq::bench;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeCsv(const std::filesystem::path &path, const Figure &figure,
         const std::vector<NamedTable> &tables)
{
    std::ofstream os(path);
    for (const auto &t : tables) {
        os << "# " << figure.id << "." << t.id;
        if (!t.caption.empty())
            os << ": " << t.caption;
        os << "\n" << t.table.renderCsv() << "\n";
    }
}

void
writeJson(const std::filesystem::path &path, const Figure &figure,
          const std::vector<NamedTable> &tables)
{
    std::ofstream os(path);
    os << "{\n  \"figure\": \"" << jsonEscape(figure.id) << "\",\n"
       << "  \"title\": \"" << jsonEscape(figure.title) << "\",\n"
       << "  \"paper_ref\": \"" << jsonEscape(figure.paperRef)
       << "\",\n  \"tables\": [";
    for (size_t ti = 0; ti < tables.size(); ++ti) {
        const auto &t = tables[ti];
        os << (ti ? ",\n    {" : "\n    {")
           << "\n      \"id\": \"" << jsonEscape(t.id) << "\",\n"
           << "      \"caption\": \"" << jsonEscape(t.caption)
           << "\",\n      \"headers\": [";
        const auto &headers = t.table.headers();
        for (size_t c = 0; c < headers.size(); ++c)
            os << (c ? ", " : "") << "\"" << jsonEscape(headers[c])
               << "\"";
        os << "],\n      \"rows\": [";
        const auto &rows = t.table.rows();
        for (size_t r = 0; r < rows.size(); ++r) {
            os << (r ? ",\n        [" : "\n        [");
            for (size_t c = 0; c < rows[r].size(); ++c)
                os << (c ? ", " : "") << "\"" << jsonEscape(rows[r][c])
                   << "\"";
            os << "]";
        }
        os << "\n      ]\n    }";
    }
    os << "\n  ]\n}\n";
}

/** Trim trailing newlines for tidy fencing. */
std::string
trimmed(std::string s)
{
    while (!s.empty() && (s.back() == '\n' || s.back() == ' '))
        s.pop_back();
    return s;
}

void
appendMarkdown(std::ostringstream &md, const Figure &figure,
               const FigureOutput &out)
{
    md << "## " << figure.title << "\n\n"
       << "*Paper target: " << figure.paperRef << " — standalone"
       << " binary: `" << figure.binaryName << "`*\n\n";
    for (const auto &t : out.tables()) {
        if (!t.caption.empty())
            md << "**" << t.caption << "**\n\n";
        md << t.table.renderMarkdown() << "\n";
    }
    std::string notes = trimmed(out.notes());
    if (!notes.empty())
        md << "```\n" << notes << "\n```\n\n";
    md << figure.commentary << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    util::Flags flags(argc, argv);
    HarnessOptions opts = HarnessOptions::fromFlags(flags);
    std::filesystem::path outdir =
        flags.getString("outdir", "report", "DIQ_OUTDIR");

    std::vector<const Figure *> selected;
    if (flags.positional().empty()) {
        for (const auto &f : allFigures())
            selected.push_back(&f);
    } else {
        for (const auto &id : flags.positional()) {
            const Figure *f = findFigure(id);
            if (!f) {
                std::cerr << "error: unknown figure id '" << id
                          << "' (known:";
                for (const auto &k : allFigures())
                    std::cerr << " " << k.id;
                std::cerr << ")\n";
                return 1;
            }
            selected.push_back(f);
        }
    }

    std::error_code ec;
    std::filesystem::create_directories(outdir, ec);
    if (ec) {
        std::cerr << "error: cannot create outdir " << outdir << ": "
                  << ec.message() << "\n";
        return 1;
    }

    Harness harness(opts);
    std::cout << "diq_report: " << selected.size() << " figures, "
              << harness.runner().jobCount() << " worker(s), budget "
              << opts.measureInsts << " insts (+" << opts.warmupInsts
              << " warm-up) -> " << outdir.string() << "\n";

    std::ostringstream md;
    md << "# Reproduced results\n\n"
       << "Generated by `diq_report` (budget: " << opts.measureInsts
       << " measured instructions after " << opts.warmupInsts
       << " warm-up per scheme x benchmark job; synthetic"
       << " SPEC2000-like suite, see docs/ARCHITECTURE.md §5)."
       << " Every job is independently seeded, executed across a"
       << " worker pool (docs/ARCHITECTURE.md §7) and assembled in"
       << " registry order, so this file is byte-identical for every"
       << " `--jobs` value.\n\n"
       << "Regenerate with:\n\n"
       << "```sh\n"
       << "./build/diq_report --outdir report"
       << " && cp report/RESULTS.md docs/RESULTS.md\n"
       << "```\n\n";

    md << "| Figure | Paper target | Standalone binary |\n|---|---|---|\n";
    for (const Figure *f : selected)
        md << "| [" << f->id << "](#"
           << [](std::string t) {
                  std::string a;
                  // GitHub's anchor algorithm keeps word chars
                  // (underscore included), drops other punctuation
                  // and maps spaces/hyphens to '-'.
                  for (char c : t) {
                      if (std::isalnum(static_cast<unsigned char>(c)) ||
                          c == '_')
                          a += static_cast<char>(
                              std::tolower(static_cast<unsigned char>(c)));
                      else if (c == ' ' || c == '-')
                          a += '-';
                  }
                  return a;
              }(f->title)
           << ") | " << f->paperRef << " | `" << f->binaryName
           << "` |\n";
    md << "\n";

    auto t0 = std::chrono::steady_clock::now();
    for (const Figure *figure : selected) {
        auto f0 = std::chrono::steady_clock::now();
        std::ostringstream text;
        FigureOutput out(text);
        figure->render(harness, out);

        writeCsv(outdir / (std::string(figure->id) + ".csv"), *figure,
                 out.tables());
        writeJson(outdir / (std::string(figure->id) + ".json"), *figure,
                  out.tables());
        appendMarkdown(md, *figure, out);

        auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - f0)
                      .count();
        std::cout << "  " << figure->id << ": " << out.tables().size()
                  << " table(s), " << ms << " ms\n";
    }

    {
        std::ofstream os(outdir / "RESULTS.md");
        os << md.str();
    }

    auto &r = harness.runner();
    auto total_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::cout << "done: " << r.cacheMisses() << " unique simulations, "
              << r.cacheHits() << " cache hits, " << total_ms
              << " ms total\n"
              << "wrote " << (outdir / "RESULTS.md").string()
              << " + per-figure CSV/JSON\n";
    return 0;
}

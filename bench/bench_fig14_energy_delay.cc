/**
 * @file
 * Figure 14 — whole-processor energy x delay, normalized to the
 * baseline, under the paper's assumption that the issue queue
 * contributes 23% of chip power. Expected shape (FP): MB_distr below
 * the baseline (paper: ~5% better) and well below IF_distr (paper:
 * ~18% better) — IF_distr pays for its IPC loss.
 */

#include "energy_common.hh"

int
main(int argc, char **argv)
{
    using namespace diq;
    using namespace diq::bench;

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    printHeader("Figure 14: normalized chip energy-delay (IQ = 23% of"
                " chip power)",
                harness.options());

    util::TablePrinter table({"scheme", "SPECINT", "SPECFP"});
    auto base = core::SchemeConfig::iq6464();
    SuiteEnergy base_int = aggregateSuite(harness, base,
                                          trace::specIntProfiles());
    SuiteEnergy base_fp = aggregateSuite(harness, base,
                                         trace::specFpProfiles());
    table.addRow({"IQ_64_64", "1.000", "1.000"});
    double ed_fp[2] = {0, 0};
    int i = 0;
    for (const auto &s : {core::SchemeConfig::ifDistr(),
                          core::SchemeConfig::mbDistr()}) {
        SuiteEnergy si = aggregateSuite(harness, s,
                                        trace::specIntProfiles());
        SuiteEnergy sf = aggregateSuite(harness, s,
                                        trace::specFpProfiles());
        auto ni = power::normalizedEfficiency(si.total, base_int.total);
        auto nf = power::normalizedEfficiency(sf.total, base_fp.total);
        ed_fp[i++] = nf.chipEd;
        table.addRow({s.name(), util::TablePrinter::fmt(ni.chipEd, 3),
                      util::TablePrinter::fmt(nf.chipEd, 3)});
    }
    std::cout << table.render() << "\n";
    std::cout << "FP summary: MB_distr vs baseline: "
              << util::TablePrinter::pct(1.0 - ed_fp[1])
              << " (paper: ~5% better);  MB_distr vs IF_distr: "
              << util::TablePrinter::pct(1.0 - ed_fp[1] / ed_fp[0])
              << " (paper: ~18% better)\n\nCSV:\n"
              << table.renderCsv();
    return 0;
}

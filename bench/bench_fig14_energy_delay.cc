/**
 * @file
 * Figure 14 — whole-processor energy x delay, normalized to the
 * baseline, under the paper's assumption that the issue queue
 * contributes 23% of chip power. Expected shape (FP): MB_distr below
 * the baseline (paper: ~5% better) and well below IF_distr (paper:
 * ~18% better) — IF_distr pays for its IPC loss.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("fig14", argc, argv);
}

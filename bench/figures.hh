/**
 * @file
 * Figure registry: every reproduced figure/table as a renderable
 * entry (docs/ARCHITECTURE.md §6-§7).
 *
 * Each paper figure is a function from a Harness (parallel memoizing
 * runner) to tables + commentary, registered here once. The per-figure
 * bench binaries are thin wrappers over figureMain(); the diq_report
 * binary iterates the whole registry against one shared harness, so
 * simulations shared between figures (baselines, the three §4.2
 * configurations) execute exactly once per report.
 */

#ifndef DIQ_BENCH_FIGURES_HH
#define DIQ_BENCH_FIGURES_HH

#include <ostream>
#include <string>
#include <vector>

#include "harness.hh"

namespace diq::bench
{

/** One captured table of a figure. */
struct NamedTable
{
    std::string id;      ///< file-name-safe slug, unique within figure
    std::string caption;
    util::TablePrinter table;
};

/**
 * Sink a figure renders into: tables (captured for CSV/JSON/markdown
 * and echoed to the text stream) and free-form commentary notes.
 */
class FigureOutput
{
  public:
    explicit FigureOutput(std::ostream &text) : text_(text) {}

    /** Print the table (caption first, if any) and capture it. */
    void table(const std::string &id, const std::string &caption,
               const util::TablePrinter &t);

    /** Print `s` verbatim and capture it for the report. */
    void note(const std::string &s);

    const std::vector<NamedTable> &tables() const { return tables_; }
    const std::string &notes() const { return notes_; }

  private:
    std::ostream &text_;
    std::vector<NamedTable> tables_;
    std::string notes_;
};

/** One reproducible figure/table of the paper. */
struct Figure
{
    const char *id;         ///< short slug: "fig02", "table1", ...
    const char *binaryName; ///< standalone bench binary
    const char *title;      ///< header line
    const char *paperRef;   ///< e.g. "Fig. 2 (§3)"
    /** RESULTS.md paragraph comparing trends to the paper's numbers. */
    const char *commentary;
    void (*render)(Harness &, FigureOutput &);
};

/** Every figure, in paper order (the order diq_report emits). */
const std::vector<Figure> &allFigures();

/** Lookup by id; nullptr when unknown. */
const Figure *findFigure(const std::string &id);

/**
 * Shared main() of the per-figure bench binaries: parse flags, build
 * a Harness, print the standard header, render the figure, then print
 * one CSV block per captured table.
 */
int figureMain(const std::string &id, int argc, char **argv);

// Render functions, defined across figures_*.cc ---------------------

namespace fig
{
void table1(Harness &, FigureOutput &);
void fig02(Harness &, FigureOutput &);
void fig03(Harness &, FigureOutput &);
void fig04(Harness &, FigureOutput &);
void fig06(Harness &, FigureOutput &);
void fig07(Harness &, FigureOutput &);
void fig08(Harness &, FigureOutput &);
void fig09(Harness &, FigureOutput &);
void fig10(Harness &, FigureOutput &);
void fig11(Harness &, FigureOutput &);
void fig12(Harness &, FigureOutput &);
void fig13(Harness &, FigureOutput &);
void fig14(Harness &, FigureOutput &);
void fig15(Harness &, FigureOutput &);
void baselineSizing(Harness &, FigureOutput &);
void ablation(Harness &, FigureOutput &);
} // namespace fig

} // namespace diq::bench

#endif // DIQ_BENCH_FIGURES_HH

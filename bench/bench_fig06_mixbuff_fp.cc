/**
 * @file
 * Figure 6 — IPC loss of MixBUFF w.r.t. the unbounded baseline,
 * SPECfp suite, same sweep as Figures 3/4 (unbounded chains per
 * queue, as in the paper's sizing study). Expected shape: ~5% at
 * 8x16; buffer *size* matters more than buffer *count*.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("fig06", argc, argv);
}

/**
 * @file
 * Figure 6 — IPC loss of MixBUFF w.r.t. the unbounded baseline,
 * SPECfp suite, same sweep as Figures 3/4 (unbounded chains per
 * queue, as in the paper's sizing study). Expected shape: ~5% at
 * 8x16; buffer *size* matters more than buffer *count*.
 */

#include "sweep_common.hh"

int
main(int argc, char **argv)
{
    using namespace diq;
    using namespace diq::bench;

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    printHeader("Figure 6: IPC loss of MixBUFF vs unbounded baseline"
                " (SPECfp)",
                harness.options());

    std::vector<SweepConfig> configs;
    for (int queues : {8, 10, 12}) {
        for (int size : {8, 16}) {
            SweepConfig c;
            c.scheme = core::SchemeConfig::mixBuff(16, 16, queues, size,
                                                   /*chains=*/0);
            c.label = c.scheme.name();
            configs.push_back(c);
        }
    }
    runIpcLossSweep(harness, trace::specFpProfiles(), configs);
    return 0;
}

/**
 * @file
 * Figure 9 — issue-queue energy breakdown of the IQ_64_64 baseline
 * over both suites. Expected shape: wakeup dominates (even with
 * unready-only gating and 8x8 banking); buff and select are the next
 * contributors; MuxIntALU is the only significant FU-drive component.
 */

#include "energy_common.hh"

int
main(int argc, char **argv)
{
    using namespace diq;
    using namespace diq::bench;

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    printHeader("Figure 9: energy breakdown, IQ_64_64", harness.options());

    auto scheme = core::SchemeConfig::iq6464();
    SuiteEnergy ints = aggregateSuite(harness, scheme,
                                      trace::specIntProfiles());
    SuiteEnergy fps = aggregateSuite(harness, scheme,
                                     trace::specFpProfiles());
    printBreakdown("Energy breakdown IQ_64_64 (% of issue-queue energy)",
                   ints, fps);
    return 0;
}

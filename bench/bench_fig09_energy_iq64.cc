/**
 * @file
 * Figure 9 — issue-queue energy breakdown of the IQ_64_64 baseline
 * over both suites. Expected shape: wakeup dominates (even with
 * unready-only gating and 8x8 banking); buff and select are the next
 * contributors; MuxIntALU is the only significant FU-drive component.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("fig09", argc, argv);
}

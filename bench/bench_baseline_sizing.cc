/**
 * @file
 * §4.2 sizing claim — the paper justifies the IQ_64_64 baseline by
 * noting that a baseline with as many entries as the distributed
 * schemes (64 INT + 128 FP) gains only ~1.0% IPC. This bench
 * reproduces that comparison, plus the unbounded (256+256) queue used
 * by the §3 sweeps.
 */

#include <iostream>

#include "harness.hh"
#include "util/stats.hh"

int
main(int argc, char **argv)
{
    using namespace diq;
    using namespace diq::bench;

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    printHeader("Baseline sizing study (paper 4.2)", harness.options());

    core::SchemeConfig iq6464 = core::SchemeConfig::iq6464();
    core::SchemeConfig iq64128 = core::SchemeConfig::iq6464();
    iq64128.camFpEntries = 128;
    core::SchemeConfig unbounded = core::SchemeConfig::unbounded();

    util::TablePrinter table({"suite", "IQ_64_64", "IQ_64_128",
                              "IQ_unbounded(256)"});
    for (bool fp : {false, true}) {
        const auto &profiles =
            fp ? trace::specFpProfiles() : trace::specIntProfiles();
        std::vector<double> a, b, c;
        for (const auto &p : profiles) {
            a.push_back(harness.run(iq6464, p).ipc);
            b.push_back(harness.run(iq64128, p).ipc);
            c.push_back(harness.run(unbounded, p).ipc);
        }
        table.addRow({fp ? "SPECFP (HM)" : "SPECINT (HM)",
                      util::TablePrinter::fmt(util::harmonicMean(a), 3),
                      util::TablePrinter::fmt(util::harmonicMean(b), 3),
                      util::TablePrinter::fmt(util::harmonicMean(c), 3)});
    }
    std::cout << table.render()
              << "\nPaper: the larger baseline gains only ~1.0% IPC,"
                 " which is why IQ_64_64 is the reference.\n";
    return 0;
}

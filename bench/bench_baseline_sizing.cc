/**
 * @file
 * §4.2 sizing claim — the paper justifies the IQ_64_64 baseline by
 * noting that a baseline with as many entries as the distributed
 * schemes (64 INT + 128 FP) gains only ~1.0% IPC. This bench
 * reproduces that comparison, plus the unbounded (256+256) queue used
 * by the §3 sweeps.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("baseline_sizing", argc, argv);
}

/**
 * @file
 * Render functions for the §4.5 energy figures: per-scheme breakdowns
 * (Figures 9/10/11) and the normalized power/energy/ED/ED^2
 * comparisons (Figures 12-15).
 */

#include <sstream>

#include "energy_common.hh"

namespace diq::bench::fig
{

namespace
{

/** Shared driver for Figures 9/10/11: one scheme's breakdown. */
void
breakdownFigure(Harness &harness, FigureOutput &out,
                const core::SchemeConfig &scheme,
                const std::string &title)
{
    prefetchBothSuites(harness, {scheme});
    SuiteEnergy ints = aggregateSuite(harness, scheme,
                                      trace::specIntProfiles());
    SuiteEnergy fps = aggregateSuite(harness, scheme,
                                     trace::specFpProfiles());
    printBreakdown(out, title, ints, fps);
}

/**
 * Shared driver for Figures 12-15: the three §4.2 schemes, both
 * suites, one normalized-efficiency metric.
 */
struct NormalizedRow
{
    std::string scheme;
    power::NormalizedEfficiency intSuite;
    power::NormalizedEfficiency fpSuite;
};

std::vector<NormalizedRow>
normalizedRows(Harness &harness)
{
    auto base = core::SchemeConfig::iq6464();
    const std::vector<core::SchemeConfig> others{
        core::SchemeConfig::ifDistr(), core::SchemeConfig::mbDistr()};

    std::vector<core::SchemeConfig> all{base};
    all.insert(all.end(), others.begin(), others.end());
    prefetchBothSuites(harness, all);

    SuiteEnergy base_int = aggregateSuite(harness, base,
                                          trace::specIntProfiles());
    SuiteEnergy base_fp = aggregateSuite(harness, base,
                                         trace::specFpProfiles());
    std::vector<NormalizedRow> rows;
    for (const auto &s : others) {
        SuiteEnergy si = aggregateSuite(harness, s,
                                        trace::specIntProfiles());
        SuiteEnergy sf = aggregateSuite(harness, s,
                                        trace::specFpProfiles());
        rows.push_back(
            {s.name(),
             power::normalizedEfficiency(si.total, base_int.total),
             power::normalizedEfficiency(sf.total, base_fp.total)});
    }
    return rows;
}

util::TablePrinter
normalizedTable(const std::vector<NormalizedRow> &rows,
                double power::NormalizedEfficiency::*metric)
{
    util::TablePrinter table({"scheme", "SPECINT", "SPECFP"});
    table.addRow({"IQ_64_64", "1.000", "1.000"});
    for (const auto &r : rows)
        table.addRow({r.scheme,
                      util::TablePrinter::fmt(r.intSuite.*metric, 3),
                      util::TablePrinter::fmt(r.fpSuite.*metric, 3)});
    return table;
}

} // namespace

void
fig09(Harness &harness, FigureOutput &out)
{
    breakdownFigure(harness, out, core::SchemeConfig::iq6464(),
                    "Energy breakdown IQ_64_64 (% of issue-queue"
                    " energy)");
}

void
fig10(Harness &harness, FigureOutput &out)
{
    breakdownFigure(harness, out, core::SchemeConfig::ifDistr(),
                    "Energy breakdown IF_distr (% of issue-queue"
                    " energy)");
}

void
fig11(Harness &harness, FigureOutput &out)
{
    breakdownFigure(harness, out, core::SchemeConfig::mbDistr(),
                    "Energy breakdown MB_distr (% of issue-queue"
                    " energy)");
}

void
fig12(Harness &harness, FigureOutput &out)
{
    out.table("power", "",
              normalizedTable(normalizedRows(harness),
                              &power::NormalizedEfficiency::iqPower));
}

void
fig13(Harness &harness, FigureOutput &out)
{
    out.table("energy", "",
              normalizedTable(normalizedRows(harness),
                              &power::NormalizedEfficiency::iqEnergy));
}

void
fig14(Harness &harness, FigureOutput &out)
{
    auto rows = normalizedRows(harness);
    out.table("ed", "",
              normalizedTable(rows,
                              &power::NormalizedEfficiency::chipEd));

    double ed_if = rows[0].fpSuite.chipEd;
    double ed_mb = rows[1].fpSuite.chipEd;
    std::ostringstream note;
    note << "\nFP summary: MB_distr vs baseline: "
         << util::TablePrinter::pct(1.0 - ed_mb)
         << " (paper: ~5% better);  MB_distr vs IF_distr: "
         << util::TablePrinter::pct(1.0 - ed_mb / ed_if)
         << " (paper: ~18% better)\n";
    out.note(note.str());
}

void
fig15(Harness &harness, FigureOutput &out)
{
    auto rows = normalizedRows(harness);
    out.table("ed2", "",
              normalizedTable(rows,
                              &power::NormalizedEfficiency::chipEd2));

    double ed2_if = rows[0].fpSuite.chipEd2;
    double ed2_mb = rows[1].fpSuite.chipEd2;
    std::ostringstream note;
    note << "\nFP summary: MB_distr vs baseline: "
         << util::TablePrinter::fmt(ed2_mb, 3)
         << "x (paper: ~1.0x);  MB_distr vs IF_distr: "
         << util::TablePrinter::pct(1.0 - ed2_mb / ed2_if)
         << " better (paper: ~35%)\n";
    out.note(note.str());
}

} // namespace diq::bench::fig

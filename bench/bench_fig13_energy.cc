/**
 * @file
 * Figure 13 — issue-queue energy of IF_distr and MB_distr normalized
 * to IQ_64_64, per suite. Expected shape: both far below the
 * baseline; MB_distr slightly above IF_distr on FP codes (buffers,
 * selection and chain tables cost a little more than plain FIFOs).
 */

#include "energy_common.hh"

int
main(int argc, char **argv)
{
    using namespace diq;
    using namespace diq::bench;

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    printHeader("Figure 13: normalized issue-queue energy",
                harness.options());

    util::TablePrinter table({"scheme", "SPECINT", "SPECFP"});
    auto base = core::SchemeConfig::iq6464();
    SuiteEnergy base_int = aggregateSuite(harness, base,
                                          trace::specIntProfiles());
    SuiteEnergy base_fp = aggregateSuite(harness, base,
                                         trace::specFpProfiles());
    table.addRow({"IQ_64_64", "1.000", "1.000"});
    for (const auto &s : {core::SchemeConfig::ifDistr(),
                          core::SchemeConfig::mbDistr()}) {
        SuiteEnergy si = aggregateSuite(harness, s,
                                        trace::specIntProfiles());
        SuiteEnergy sf = aggregateSuite(harness, s,
                                        trace::specFpProfiles());
        auto ni = power::normalizedEfficiency(si.total, base_int.total);
        auto nf = power::normalizedEfficiency(sf.total, base_fp.total);
        table.addRow({s.name(), util::TablePrinter::fmt(ni.iqEnergy, 3),
                      util::TablePrinter::fmt(nf.iqEnergy, 3)});
    }
    std::cout << table.render() << "\nCSV:\n" << table.renderCsv();
    return 0;
}

/**
 * @file
 * Figure 13 — issue-queue energy of IF_distr and MB_distr normalized
 * to IQ_64_64, per suite. Expected shape: both far below the
 * baseline; MB_distr slightly above IF_distr on FP codes (buffers,
 * selection and chain tables cost a little more than plain FIFOs).
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("fig13", argc, argv);
}

/**
 * @file
 * Google-benchmark microbenchmarks of the issue-scheme hot paths:
 * dispatch+issue throughput of each organization, the MixBUFF chain
 * table sweep, and end-to-end simulator speed. These quantify the
 * *simulator's* cost per modeled instruction, complementing the
 * figure-reproduction harnesses.
 *
 * Machine-readable output: `cmake --build build --target
 * bench_micro_json` (or `--benchmark_format=json` by hand) emits the
 * items_per_second snapshot recorded in the repo-root BENCH_*.json
 * perf trajectory (docs/ARCHITECTURE.md §4, "Simulator performance").
 */

#include <benchmark/benchmark.h>

#include "core/issue_scheme.hh"
#include "sim/pipeline.hh"
#include "trace/spec2000.hh"

namespace
{

using namespace diq;

void
runScheme(benchmark::State &state, const core::SchemeConfig &config,
          const std::string &bench)
{
    auto workload = trace::makeSpecWorkload(bench);
    sim::ProcessorConfig cfg;
    cfg.scheme = config;
    sim::Cpu cpu(cfg, *workload);
    cpu.run(20000); // warm structures once

    for (auto _ : state) {
        cpu.run(2000);
        benchmark::DoNotOptimize(cpu.stats().committed);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            2000);
}

void
BM_SimulateCamBaseline(benchmark::State &state)
{
    runScheme(state, core::SchemeConfig::iq6464(), "swim");
}

void
BM_SimulateIssueFifo(benchmark::State &state)
{
    runScheme(state, core::SchemeConfig::ifDistr(), "swim");
}

void
BM_SimulateLatFifo(benchmark::State &state)
{
    runScheme(state, core::SchemeConfig::latFifo(8, 8, 8, 16), "swim");
}

void
BM_SimulateMixBuff(benchmark::State &state)
{
    runScheme(state, core::SchemeConfig::mbDistr(), "swim");
}

void
BM_SimulateIntWorkload(benchmark::State &state)
{
    runScheme(state, core::SchemeConfig::mbDistr(), "gcc");
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    auto workload = trace::makeSpecWorkload("mgrid");
    trace::MicroOp op;
    for (auto _ : state) {
        workload->next(op);
        benchmark::DoNotOptimize(op.pc);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(BM_SimulateCamBaseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateIssueFifo)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateLatFifo)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateMixBuff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateIntWorkload)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WorkloadGeneration);

} // namespace

BENCHMARK_MAIN();

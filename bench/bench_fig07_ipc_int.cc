/**
 * @file
 * Figure 7 — IPC of the integer benchmarks for the three evaluated
 * organizations: IQ_64_64 (CAM baseline), IF_distr and MB_distr.
 * The HARMEAN row matches the paper's summary column. Expected shape:
 * IF_distr == MB_distr on pure-integer codes (identical integer
 * cluster), both several percent below the baseline; eon differs
 * because of its FP component.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return diq::bench::figureMain("fig07", argc, argv);
}

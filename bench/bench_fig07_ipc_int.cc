/**
 * @file
 * Figure 7 — IPC of the integer benchmarks for the three evaluated
 * organizations: IQ_64_64 (CAM baseline), IF_distr and MB_distr.
 * The HARMEAN row matches the paper's summary column. Expected shape:
 * IF_distr == MB_distr on pure-integer codes (identical integer
 * cluster), both several percent below the baseline; eon differs
 * because of its FP component.
 */

#include <iostream>

#include "harness.hh"
#include "util/stats.hh"

int
main(int argc, char **argv)
{
    using namespace diq;
    using bench::Harness;
    using bench::HarnessOptions;

    util::Flags flags(argc, argv);
    Harness harness(HarnessOptions::fromFlags(flags));
    bench::printHeader("Figure 7: IPC, SPECint2000-like suite",
                       harness.options());

    const auto schemes = {core::SchemeConfig::iq6464(),
                          core::SchemeConfig::ifDistr(),
                          core::SchemeConfig::mbDistr()};

    util::TablePrinter table({"benchmark", "IQ_64_64", "IF_distr",
                              "MB_distr"});
    std::vector<double> ipc_base, ipc_if, ipc_mb;

    for (const auto &profile : trace::specIntProfiles()) {
        std::vector<std::string> row{profile.name};
        int i = 0;
        for (const auto &s : schemes) {
            const auto &r = harness.run(s, profile);
            row.push_back(util::TablePrinter::fmt(r.ipc, 3));
            (i == 0 ? ipc_base : i == 1 ? ipc_if : ipc_mb).push_back(r.ipc);
            ++i;
        }
        table.addRow(row);
    }

    double hm_base = util::harmonicMean(ipc_base);
    double hm_if = util::harmonicMean(ipc_if);
    double hm_mb = util::harmonicMean(ipc_mb);
    table.addRow({"HARMEAN", util::TablePrinter::fmt(hm_base, 3),
                  util::TablePrinter::fmt(hm_if, 3),
                  util::TablePrinter::fmt(hm_mb, 3)});

    std::cout << table.render() << "\n";
    std::cout << "IPC loss vs baseline (paper: ~7.7% for both):\n"
              << "  IF_distr: "
              << util::TablePrinter::pct(1.0 - hm_if / hm_base) << "\n"
              << "  MB_distr: "
              << util::TablePrinter::pct(1.0 - hm_mb / hm_base) << "\n\n";
    std::cout << "CSV:\n" << table.renderCsv();
    return 0;
}

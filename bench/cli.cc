/**
 * @file
 * Implementation of bench/cli.hh: the `diq` CLI
 * (docs/ARCHITECTURE.md §8).
 */

#include "cli.hh"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "ckpt/interval.hh"
#include "ckpt/snapshot.hh"
#include "fault/fault_plan.hh"
#include "figures.hh"
#include "fuzz/fuzz_runner.hh"
#include "report.hh"
#include "runner/supervisor.hh"
#include "runner/sweep_runner.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/pipeline.hh"
#include "spec/presets.hh"
#include "store/result_store.hh"
#include "trace/file_trace.hh"
#include "trace/scenarios.hh"
#include "trace/spec2000.hh"
#include "util/flags.hh"
#include "util/table_printer.hh"

namespace diq::bench
{

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: diq <subcommand> [args]\n"
          "\n"
          "  run [--spec TEXT] [tokens...]   simulate one experiment\n"
          "      A spec is presets and key=value overrides, e.g.\n"
          "        diq run mb_distr chains_per_queue=4 bench=swim\n"
          "        diq run --spec mb_distr --bench swim\n"
          "      bench= accepts a benchmark name, scenario:<name>,\n"
          "      or trace:<path> (replay a recorded .diqt file)\n"
          "      [--bench NAME] [--insts N] [--warmup N]\n"
          "      Interval simulation (docs/CHECKPOINTS.md): shard the\n"
          "      measured region into N chunks and run them on a\n"
          "      worker pool. --interval-mode exact (default) saves a\n"
          "      snapshot set on the first run and replays it in\n"
          "      parallel afterwards, counter-dump byte-identical to\n"
          "      the monolithic run; warmup seeds every interval by\n"
          "      functional fast-forward + `interval_warmup` detailed\n"
          "      instructions — fully parallel at once, small\n"
          "      documented error. --intervals > 1 bypasses --store.\n"
          "      [--intervals N] [--jobs N] [--interval-mode MODE]\n"
          "      [--ckpt-dir DIR]\n"
          "  record --out FILE [tokens...]   run one experiment while\n"
          "      recording the consumed workload stream to FILE\n"
          "      (.diqt); replay it with bench=trace:FILE\n"
          "      [--spec TEXT] [--bench NAME] [--insts N] [--warmup N]\n"
          "  sweep [--grid TEXT] [tokens...] run a grid, emit CSV\n"
          "      Comma lists sweep, cross product in token order:\n"
          "        diq sweep scheme=mb_distr,if_distr bench=swim,gcc\n"
          "      bench= also accepts the aliases int, fp, all and\n"
          "      scenarios (the whole adversarial catalog)\n"
          "      [--jobs N] [--insts N] [--warmup N] [--out FILE]\n"
          "      Crash-safe campaigns: --store DIR persists every\n"
          "      result (checksummed, atomic-rename durable) and\n"
          "      --resume replays completed points from the store\n"
          "      after a crash, recomputing only what is missing —\n"
          "      the final CSV is byte-identical to an uninterrupted\n"
          "      run. Jobs retry with backoff; a job failing\n"
          "      --max-attempts times is quarantined (journaled,\n"
          "      skipped, row marked failed, exit 3).\n"
          "      [--store DIR] [--resume] [--max-attempts N]\n"
          "      [--backoff-ms N] [--deadline-ms N] [--fault-plan TEXT]\n"
          "  cache list|verify|gc|stats      inspect the result store\n"
          "      list: every entry with its validation status;\n"
          "      verify: validate + quarantine corrupt entries (exit 1\n"
          "      if any were found); gc: delete quarantined entries\n"
          "      and orphan temp files; stats: entry/byte/quarantine\n"
          "      counts (with --socket, also a live server's hit/miss/\n"
          "      dedupe/reject counters).  [--store DIR] [--socket PATH]\n"
          "  serve --socket PATH             long-running result server\n"
          "      Owns the store (exclusive LOCK) and a worker pool;\n"
          "      clients submit grids over the Unix-domain socket.\n"
          "      Identical in-flight requests dedupe onto one\n"
          "      computation, warm keys stream from the store without\n"
          "      touching a worker, and a full backlog rejects with\n"
          "      `busy` (client exits 6). Campaigns are journaled:\n"
          "      a killed server resumes open sweeps on restart.\n"
          "      [--store DIR] [--jobs N] [--pending-max N]\n"
          "      [--max-attempts N] [--backoff-ms N] [--deadline-ms N]\n"
          "      [--fault-plan TEXT]\n"
          "  submit --socket PATH [--grid TEXT] [tokens...]\n"
          "      send a grid to a running server, stream per-point\n"
          "      rows back, and render exactly the CSV `diq sweep`\n"
          "      would (byte-identical, including --resume replays)\n"
          "      [--insts N] [--warmup N] [--out FILE]\n"
          "  status --socket PATH            live server counters\n"
          "  shutdown --socket PATH          stop a running server\n"
          "  report [figure-ids...]          reproduce every paper\n"
          "      figure (alias binary: diq_report)\n"
          "      [--outdir DIR] [--jobs N] [--insts N] [--warmup N]\n"
          "  fuzz [--seeds A..B] [--shrink]  generative differential\n"
          "      fuzzing: per seed, run every scheme on the generated\n"
          "      fuzz:<seed> workload and check cross-scheme\n"
          "      invariants; violations are auto-shrunk (--shrink) to\n"
          "      minimal .diqt reproducers. Exit: 0 clean, 2 violations\n"
          "      [--insts N | --budget N] [--warmup N] [--json FILE]\n"
          "      [--time-budget SEC] [--schemes a,b,...] [--ipc-slack X]\n"
          "      [--artifact-dir DIR] [--trace-dir DIR]\n"
          "  ckpt save|info|restore          machine-state snapshots\n"
          "      save --out FILE [tokens...]: run warm-up (and\n"
          "      --at N measured instructions), then write a\n"
          "      versioned, checksummed snapshot of the full machine\n"
          "      state (format: docs/CHECKPOINTS.md)\n"
          "      [--spec TEXT] [--bench NAME] [--insts N] [--warmup N]\n"
          "      info FILE...: validate + print snapshot metadata\n"
          "      restore FILE [--insts N]: rebuild the machine and\n"
          "      run N more instructions (default: the remainder of\n"
          "      the snapshot's measure budget) — counter-dump\n"
          "      byte-identical to the uninterrupted run\n"
          "  list [schemes|benchmarks|scenarios|keys|figures]\n"
          "      show the named vocabulary with doc strings\n"
          "  help                            this text\n"
          "\n"
          "Env fallbacks: DIQ_INSTS, DIQ_WARMUP, DIQ_JOBS, DIQ_OUTDIR,\n"
          "  DIQ_STORE, DIQ_SOCKET, DIQ_CKPT_DIR, DIQ_MAX_ATTEMPTS,\n"
          "  DIQ_DEADLINE_MS, DIQ_FAULT_PLAN\n"
          "Exit codes: 0 ok; 1 runtime failure; 2 fuzz violations;\n"
          "  3 partial sweep (quarantined jobs); 4 usage/plan/journal\n"
          "  error; 5 spec or grid parse error; 6 server busy;\n"
          "  42 injected crash\n";
}

/** Spaces to align a name column at `width`. */
std::string
pad(const std::string &s, size_t width)
{
    return s.size() < width ? std::string(width - s.size(), ' ')
                            : std::string(" ");
}

/** DIQ_WARMUP/DIQ_INSTS through the validated spec setters. */
void
applyEnvBudgets(spec::ExperimentSpec &exp)
{
    if (const char *env = std::getenv("DIQ_WARMUP"))
        exp.set("warmup", env);
    if (const char *env = std::getenv("DIQ_INSTS"))
        exp.set("insts", env);
}

/** --warmup/--insts through the validated spec setters. */
void
applyFlagBudgets(const util::Flags &flags, spec::ExperimentSpec &exp)
{
    if (flags.has("warmup"))
        exp.set("warmup", flags.getString("warmup", ""));
    if (flags.has("insts"))
        exp.set("insts", flags.getString("insts", ""));
}

/** --spec/--grid value plus positional tokens, space-joined. */
std::string
gatherSpecText(const util::Flags &flags, const std::string &flag_name)
{
    std::string text = flags.getString(flag_name, "");
    for (const auto &tok : flags.positional()) {
        if (!text.empty())
            text += ' ';
        text += tok;
    }
    return text;
}

/**
 * The one spec-assembly path behind `diq run` and `diq record` (a
 * recording is exactly the run it archives, by construction).
 *
 * Budget precedence: explicit flag > spec token > environment >
 * default. The env fallbacks seed the spec's defaults *before*
 * parsing so a `measure_insts=` token in the text beats them, and
 * every source goes through the validated setters — --insts -3
 * gets the same out-of-range error a measure_insts=-3 token does.
 */
spec::ExperimentSpec
buildRunExperiment(const util::Flags &flags, const std::string &text)
{
    spec::ExperimentSpec exp;
    applyEnvBudgets(exp);
    exp.applyText(text);
    if (flags.has("bench"))
        exp.set("bench", flags.getString("bench", exp.benchmark));
    applyFlagBudgets(flags, exp);
    return exp;
}

int
runCmd(const util::Flags &flags)
{
    std::string text = gatherSpecText(flags, "spec");
    if (text.empty() && !flags.has("bench")) {
        std::cerr << "error: no spec given (try `diq run mb_distr "
                     "bench=swim` or `diq list schemes`)\n";
        return kExitUsage;
    }

    spec::ExperimentSpec exp = buildRunExperiment(flags, text);
    if (flags.has("intervals"))
        exp.set("intervals", flags.getString("intervals", ""));

    if (exp.intervals > 1) {
        std::string modeName =
            flags.getString("interval-mode", "exact");
        ckpt::IntervalMode mode;
        if (modeName == "exact") {
            mode = ckpt::IntervalMode::Exact;
        } else if (modeName == "warmup") {
            mode = ckpt::IntervalMode::Warmup;
        } else {
            std::cerr << "error: unknown --interval-mode '" << modeName
                      << "' (exact|warmup)\n";
            return kExitUsage;
        }
        int64_t jobsFlag = flags.getInt("jobs", 0, "DIQ_JOBS");
        unsigned jobs = jobsFlag > 0
                            ? static_cast<unsigned>(jobsFlag)
                            : std::thread::hardware_concurrency();
        std::string ckptDir =
            flags.getString("ckpt-dir", ".diq-ckpt", "DIQ_CKPT_DIR");
        // The result store is bypassed here: a warmup-mode result is
        // approximate and must not be cached under the exact key, and
        // in exact mode the snapshot set is itself the reusable
        // artifact.
        ckpt::IntervalOutcome out = ckpt::runIntervals(
            exp, exp.intervals, jobs, mode, ckptDir);
        std::cerr << "intervals: " << out.intervals << " ("
                  << (mode == ckpt::IntervalMode::Exact ? "exact"
                                                        : "warmup")
                  << (out.mode == ckpt::IntervalMode::Exact
                          ? (out.replayed ? ", parallel replay"
                                          : ", serial saving pass")
                          : "")
                  << "), jobs " << jobs << "\n";
        std::cout << renderRunOutput(exp, out.result);
        return kExitOk;
    }

    runner::SimJob job = runner::makeJob(exp);

    std::string storePath = flags.getString("store", "", "DIQ_STORE");
    runner::SimResult result;
    if (!storePath.empty()) {
        // Writers are exclusive: a concurrent server or sweep on the
        // same store holds LOCK and we must not interleave with it.
        store::StoreLock lock(storePath);
        store::ResultStore st(storePath);
        if (auto hit = st.load(job.key())) {
            result = std::move(*hit);
            std::cerr << "store: replayed " << job.key() << "\n";
        } else {
            result = runner::executeJob(job);
            st.save(job.key(), result);
        }
    } else {
        result = runner::executeJob(job);
    }
    std::cout << renderRunOutput(exp, result);
    return kExitOk;
}

/** Result assembly for a restored machine (mirrors executeJob). */
runner::SimResult
resultFor(const spec::ExperimentSpec &exp, const sim::Cpu &cpu)
{
    runner::SimJob job = runner::makeJob(exp);
    runner::SimResult r;
    r.benchmark = job.profile.name;
    r.scheme = exp.processor.scheme.name();
    r.stats = cpu.stats();
    r.ipc = r.stats.ipc();
    r.energy = runner::energyFor(exp.processor.scheme,
                                 r.stats.counters);
    return r;
}

int
ckptCmd(const util::Flags &flags)
{
    const auto &pos = flags.positional();
    std::string verb = pos.empty() ? "" : pos.front();

    if (verb == "save") {
        if (!flags.has("out")) {
            std::cerr << "error: no output path given (--out FILE)\n";
            return kExitUsage;
        }
        // Spec text = --spec plus the positional tokens after the verb.
        std::string text = flags.getString("spec", "");
        for (size_t i = 1; i < pos.size(); ++i) {
            if (!text.empty())
                text += ' ';
            text += pos[i];
        }
        if (text.empty() && !flags.has("bench")) {
            std::cerr << "error: no spec given (try `diq ckpt save "
                         "mb_distr bench=swim --out swim.diqs`)\n";
            return kExitUsage;
        }
        spec::ExperimentSpec exp = buildRunExperiment(flags, text);
        runner::SimJob job = runner::makeJob(exp);
        auto workload = runner::makeJobWorkload(job);
        sim::Cpu cpu(exp.processor, *workload);
        cpu.run(exp.warmupInsts);
        cpu.resetStats();
        int64_t at = flags.getInt("at", 0);
        if (at > 0)
            cpu.run(static_cast<uint64_t>(at));
        std::filesystem::path out = flags.getString("out", "");
        ckpt::saveSnapshot(out, exp.canonicalLine(), cpu);
        ckpt::SnapshotInfo info = ckpt::snapshotInfo(out);
        std::cerr << "snapshot " << out.string() << ": cycle "
                  << info.cycle << ", committed " << info.committed
                  << ", " << info.payloadBytes << " payload byte(s)\n";
        return kExitOk;
    }

    if (verb == "info") {
        if (pos.size() < 2) {
            std::cerr << "error: no snapshot file given "
                         "(diq ckpt info FILE...)\n";
            return kExitUsage;
        }
        util::TablePrinter t({"file", "status", "cycle", "committed",
                              "trace-ops", "payload-bytes", "spec"});
        bool all_valid = true;
        for (size_t i = 1; i < pos.size(); ++i) {
            std::string bytes;
            try {
                bytes = ckpt::readSnapshotFile(pos[i]);
            } catch (const ckpt::SnapshotError &) {
                t.addRow({pos[i], "unreadable", "-", "-", "-", "-",
                          "-"});
                all_valid = false;
                continue;
            }
            ckpt::SnapshotInfo info;
            store::EntryStatus st =
                ckpt::decodeSnapshotInfo(bytes, info);
            if (st != store::EntryStatus::Valid) {
                t.addRow({pos[i], store::entryStatusName(st), "-", "-",
                          "-", "-", "-"});
                all_valid = false;
                continue;
            }
            t.addRow({pos[i], "valid", std::to_string(info.cycle),
                      std::to_string(info.committed),
                      std::to_string(info.opsConsumed),
                      std::to_string(info.payloadBytes),
                      info.specLine});
        }
        std::cout << t.render();
        return all_valid ? kExitOk : kExitRuntime;
    }

    if (verb == "restore") {
        if (pos.size() != 2) {
            std::cerr << "error: exactly one snapshot file expected "
                         "(diq ckpt restore FILE [--insts N])\n";
            return kExitUsage;
        }
        ckpt::RestoredRun run = ckpt::restoreRun(pos[1]);
        uint64_t remaining =
            run.exp.measureInsts > run.info.committed
                ? run.exp.measureInsts - run.info.committed
                : 0;
        int64_t insts = flags.getInt("insts", 0);
        uint64_t n =
            insts > 0 ? static_cast<uint64_t>(insts) : remaining;
        run.cpu->run(n);
        std::cerr << "restored " << pos[1] << " at cycle "
                  << run.info.cycle << ", ran " << n
                  << " instruction(s)\n";
        std::cout << renderRunOutput(run.exp, resultFor(run.exp,
                                                        *run.cpu));
        return kExitOk;
    }

    std::cerr << "error: unknown ckpt verb '" << verb
              << "' (save|info|restore)\n";
    return kExitUsage;
}

int
recordCmd(const util::Flags &flags)
{
    std::string text = gatherSpecText(flags, "spec");
    if (text.empty() && !flags.has("bench")) {
        std::cerr << "error: no spec given (try `diq record iq6464 "
                     "bench=swim --out swim.diqt`)\n";
        return kExitUsage;
    }
    if (!flags.has("out")) {
        std::cerr << "error: no output path given (--out FILE)\n";
        return kExitUsage;
    }
    std::string out_path = flags.getString("out", "");

    spec::ExperimentSpec exp = buildRunExperiment(flags, text);

    // Re-recording a replay is legal, but never onto the file being
    // read: the ios::trunc open would destroy the input mid-replay.
    if (exp.benchmark.starts_with(trace::kTracePrefix)) {
        std::string in_path =
            exp.benchmark.substr(trace::kTracePrefix.size());
        std::error_code ec;
        bool same = in_path == out_path ||
            std::filesystem::equivalent(in_path, out_path, ec);
        if (same) {
            std::cerr << "error: --out '" << out_path << "' is the "
                         "trace being replayed (recording onto it "
                         "would destroy the input)\n";
            return kExitUsage;
        }
    }

    runner::SimJob job = runner::makeJob(exp);
    auto live = runner::makeJobWorkload(job);
    trace::TraceRecorder recorder(*live, out_path);
    runner::SimResult result = runner::simulateJob(job, recorder);
    recorder.finalize();
    std::cerr << "recorded " << recorder.recordedOps()
              << " micro-ops to " << out_path
              << " (replay: diq run bench=trace:" << out_path
              << " ...)\n";
    std::cout << renderRunOutput(exp, result);
    return kExitOk;
}

/**
 * The campaign identity for a grid under its budgets: a hash over the
 * effective canonical line of every point, in sweep order, plus the
 * human-readable shape. `--resume` refuses a journal whose campaign
 * line differs — a different grid is a different campaign.
 */
std::string
campaignFor(const runner::SweepSpec &grid,
            const runner::RunnerOptions &opts)
{
    std::string lines;
    for (const auto &[exp, profile] : grid.points()) {
        spec::ExperimentSpec e = exp;
        e.benchmark = profile.name;
        e.warmupInsts = opts.warmupInsts;
        e.measureInsts = opts.measureInsts;
        lines += e.canonicalLine();
        lines += '\n';
    }
    char h[32];
    std::snprintf(h, sizeof h, "h%016llx",
                  static_cast<unsigned long long>(
                      store::fnv1a64(lines.data(), lines.size())));
    return std::string(h) + " points=" + std::to_string(grid.size()) +
        " insts=" + std::to_string(opts.measureInsts) +
        " warmup=" + std::to_string(opts.warmupInsts);
}

int
sweepCmd(const util::Flags &flags)
{
    std::string text = gatherSpecText(flags, "grid");
    if (text.empty()) {
        std::cerr << "error: no grid given (try `diq sweep "
                     "scheme=iq6464,mb_distr bench=swim,gcc`)\n";
        return kExitUsage;
    }

    runner::SweepSpec grid = runner::SweepSpec::fromText(text);
    if (grid.empty()) {
        std::cerr << "error: empty grid\n";
        return kExitUsage;
    }

    // Budgets through the validated setters, like `diq run` (the
    // grid itself rejects budget axes), so they have exactly one
    // source; only the worker count comes from the flags directly.
    runner::RunnerOptions opts;
    int64_t jobs = flags.getInt("jobs", 0, "DIQ_JOBS");
    opts.jobs = jobs > 0 ? static_cast<unsigned>(jobs) : 0;
    spec::ExperimentSpec budgets;
    applyEnvBudgets(budgets);
    applyFlagBudgets(flags, budgets);
    opts.warmupInsts = budgets.warmupInsts;
    opts.measureInsts = budgets.measureInsts;
    opts.policy = runner::JobPolicy::fromFlags(flags);

    fault::FaultPlan faults = flags.has("fault-plan")
        ? fault::FaultPlan::parse(flags.getString("fault-plan", ""))
        : fault::FaultPlan::fromEnv();
    if (!faults.empty())
        opts.faults = &faults;

    std::string storePath = flags.getString("store", "", "DIQ_STORE");
    bool resume = flags.getBool("resume", false);
    if (resume && storePath.empty()) {
        std::cerr << "error: --resume needs a persistent store "
                     "(--store DIR or DIQ_STORE)\n";
        return kExitUsage;
    }

    std::optional<store::StoreLock> lock;
    std::unique_ptr<store::ResultStore> st;
    std::unique_ptr<runner::SweepJournal> journal;
    if (!storePath.empty()) {
        lock.emplace(storePath); // exclusive writer (see StoreLock)
        st = std::make_unique<store::ResultStore>(storePath,
                                                  opts.faults);
        opts.store = st.get();
        std::string campaign = campaignFor(grid, opts);
        journal = std::make_unique<runner::SweepJournal>(
            st->root() / "journals" /
                runner::SweepJournal::fileNameFor(campaign),
            campaign, resume);
    }

    runner::SweepRunner runner(opts);
    std::cerr << "diq sweep: " << grid.size() << " points over "
              << runner.jobCount() << " worker(s), budget "
              << opts.measureInsts << " insts (+" << opts.warmupInsts
              << " warm-up)";
    if (st) {
        std::cerr << ", store " << st->root().string();
        if (resume)
            std::cerr << " (resume, " << journal->poisoned().size()
                      << " journaled poison job(s))";
    }
    std::cerr << "\n";

    std::vector<runner::JobOutcome> outcomes =
        runner.runAllSupervised(grid, journal.get());
    std::string csv = renderSweepCsv(grid, opts, outcomes);
    std::cout << csv;
    if (flags.has("out")) {
        std::string path = flags.getString("out", "");
        std::ofstream os(path);
        if (!os) {
            std::cerr << "error: cannot write " << path << "\n";
            return kExitRuntime;
        }
        os << csv;
        std::cerr << "wrote " << path << "\n";
    }

    if (st)
        std::cerr << "store: " << st->hits() << " replayed, "
                  << st->misses() << " computed, " << st->corrupt()
                  << " quarantined\n";
    size_t failed = 0;
    for (const auto &o : outcomes)
        failed += o.result == nullptr;
    if (failed > 0) {
        std::cerr << "diq sweep: partial — " << failed << " of "
                  << outcomes.size()
                  << " point(s) quarantined as poison (see the "
                     "status column)\n";
        return kExitPartialSweep;
    }
    return kExitOk;
}

int
cacheCmd(const util::Flags &flags)
{
    std::string verb =
        flags.positional().empty() ? "" : flags.positional().front();
    std::string storePath =
        flags.getString("store", ".diq-store", "DIQ_STORE");

    if (verb == "list") {
        store::ResultStore st(storePath);
        auto entries = st.list();
        util::TablePrinter t({"file", "status", "benchmark", "scheme",
                              "ipc", "bytes"});
        for (const auto &e : entries) {
            bool ok = e.status == store::EntryStatus::Valid;
            t.addRow({e.file, store::entryStatusName(e.status),
                      ok ? e.benchmark : "-", ok ? e.scheme : "-",
                      ok ? util::TablePrinter::fmt(e.ipc, 3) : "-",
                      std::to_string(e.bytes)});
        }
        std::cout << t.render();
        std::cerr << "store " << st.root().string() << ": "
                  << entries.size() << " entry file(s)\n";
        return kExitOk;
    }
    if (verb == "stats") {
        // Lock-free shared read, like `list`: entry files are only
        // ever observed whole (atomic-rename commit), so sizing the
        // store is safe alongside a live server.
        store::ResultStore st(storePath);
        auto s = st.stats();
        std::cout << "store=" << st.root().string() << "\n"
                  << "entries=" << s.entries << "\n"
                  << "entry_bytes=" << s.entryBytes << "\n"
                  << "quarantined=" << s.quarantined << "\n"
                  << "quarantine_bytes=" << s.quarantineBytes << "\n"
                  << "orphan_tmp=" << s.orphanTmp << "\n";
        long holder = store::StoreLock::holderPid(storePath);
        if (holder != 0)
            std::cout << "lock_holder_pid=" << holder << "\n";
        std::string socketPath =
            flags.getString("socket", "", "DIQ_SOCKET");
        if (!socketPath.empty()) {
            // Live counters straight from the server (hits, misses,
            // dedupe attaches, busy rejects, ...).
            serve::ServeClient client(socketPath);
            for (const auto &[k, v] : client.status())
                std::cout << "server." << k << "=" << v << "\n";
        }
        return kExitOk;
    }
    if (verb == "verify") {
        store::StoreLock lock(storePath); // quarantines = writes
        store::ResultStore st(storePath);
        auto report = st.verify();
        for (const auto &e : report.entries)
            if (e.status != store::EntryStatus::Valid)
                std::cout << "corrupt: " << e.file << " ("
                          << store::entryStatusName(e.status)
                          << ") -> quarantined\n";
        std::cout << "verify: " << report.valid << " valid, "
                  << report.corrupt << " corrupt\n";
        return report.corrupt > 0 ? kExitRuntime : kExitOk;
    }
    if (verb == "gc") {
        store::StoreLock lock(storePath); // deletes files
        store::ResultStore st(storePath);
        auto report = st.gc();
        std::cout << "gc: removed " << report.quarantined
                  << " quarantined file(s), " << report.orphanTmp
                  << " orphan temp file(s), " << report.bytes
                  << " byte(s)\n";
        return kExitOk;
    }

    std::cerr << "error: unknown cache verb '" << verb
              << "' (known: list verify gc stats)\n";
    return kExitUsage;
}

/** The server being run by serveCmd, for the signal handlers. */
std::atomic<serve::Server *> gServer{nullptr};

extern "C" void
serveSignalHandler(int)
{
    // requestStop is async-signal-safe: an atomic store plus
    // shutdown(2) on the listen socket.
    if (serve::Server *s = gServer.load(std::memory_order_relaxed))
        s->requestStop();
}

int
serveCmd(const util::Flags &flags)
{
    std::string socketPath =
        flags.getString("socket", "", "DIQ_SOCKET");
    if (socketPath.empty()) {
        std::cerr << "error: no socket path given (--socket PATH or "
                     "DIQ_SOCKET)\n";
        return kExitUsage;
    }

    serve::ServerOptions o;
    o.socketPath = socketPath;
    o.storeDir = flags.getString("store", ".diq-store", "DIQ_STORE");
    int64_t jobs = flags.getInt("jobs", 0, "DIQ_JOBS");
    o.workers = jobs > 0 ? static_cast<unsigned>(jobs) : 0;
    int64_t pendingMax = flags.getInt("pending-max", 64);
    if (pendingMax < 1) {
        std::cerr << "error: --pending-max must be >= 1 (got "
                  << pendingMax << ")\n";
        return kExitUsage;
    }
    o.pendingMax = static_cast<size_t>(pendingMax);
    o.policy = runner::JobPolicy::fromFlags(flags);
    fault::FaultPlan faults = flags.has("fault-plan")
        ? fault::FaultPlan::parse(flags.getString("fault-plan", ""))
        : fault::FaultPlan::fromEnv();
    if (!faults.empty())
        o.faults = &faults;
    o.log = &std::cerr;

    serve::Server server(std::move(o));
    gServer.store(&server, std::memory_order_relaxed);
    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);

    std::cerr << "diq serve: listening on " << socketPath << ", store "
              << server.store().root().string() << ", "
              << server.dispatcher().workerCount()
              << " worker(s), backlog limit "
              << server.options().pendingMax;
    if (server.recoveredCampaigns() > 0)
        std::cerr << " (recovered " << server.recoveredCampaigns()
                  << " journaled campaign(s))";
    std::cerr << "\n";

    server.run();

    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    gServer.store(nullptr, std::memory_order_relaxed);
    std::cerr << "diq serve: stopped\n";
    return kExitOk;
}

int
submitCmd(const util::Flags &flags)
{
    std::string socketPath =
        flags.getString("socket", "", "DIQ_SOCKET");
    if (socketPath.empty()) {
        std::cerr << "error: no socket path given (--socket PATH or "
                     "DIQ_SOCKET)\n";
        return kExitUsage;
    }
    std::string text = gatherSpecText(flags, "grid");
    if (text.empty()) {
        std::cerr << "error: no grid given (try `diq submit --socket "
                  << socketPath << " scheme=iq6464 bench=swim`)\n";
        return kExitUsage;
    }

    // Parse the grid locally too: bad grids fail fast with the usual
    // exit 5, and the parsed points are what the CSV renders from —
    // the same path `diq sweep` takes, which is what makes the output
    // byte-identical.
    runner::SweepSpec grid = runner::SweepSpec::fromText(text);
    if (grid.empty()) {
        std::cerr << "error: empty grid\n";
        return kExitUsage;
    }
    runner::RunnerOptions opts;
    spec::ExperimentSpec budgets;
    applyEnvBudgets(budgets);
    applyFlagBudgets(flags, budgets);
    opts.warmupInsts = budgets.warmupInsts;
    opts.measureInsts = budgets.measureInsts;

    serve::ServeClient client(socketPath);
    std::cerr << "diq submit: " << grid.size()
              << " point(s) to server pid " << client.serverPid()
              << " on " << socketPath << ", budget "
              << opts.measureInsts << " insts (+" << opts.warmupInsts
              << " warm-up)\n";

    // Rows stream back in completion order; reassemble spec order by
    // index. `results` never reallocates, so outcome pointers hold.
    std::vector<runner::SimResult> results(grid.size());
    std::vector<runner::JobOutcome> outcomes(grid.size());
    serve::SubmitSummary summary = client.submit(
        opts.warmupInsts, opts.measureInsts, text,
        [&](const serve::RowOutcome &row) {
            if (row.index >= grid.size())
                throw serve::ClientError(
                    "server sent row " + std::to_string(row.index) +
                    " for a " + std::to_string(grid.size()) +
                    "-point grid");
            runner::JobOutcome &o = outcomes[row.index];
            o.attempts = row.attempts;
            if (row.result) {
                results[row.index] = *row.result;
                o.result = &results[row.index];
            } else {
                o.error = row.error;
            }
        });

    std::string csv = renderSweepCsv(grid, opts, outcomes);
    std::cout << csv;
    if (flags.has("out")) {
        std::string path = flags.getString("out", "");
        std::ofstream os(path);
        if (!os) {
            std::cerr << "error: cannot write " << path << "\n";
            return kExitRuntime;
        }
        os << csv;
        std::cerr << "wrote " << path << "\n";
    }

    std::cerr << "diq submit: " << summary.storeHits
              << " store hit(s), " << summary.attached
              << " attached, " << summary.computed << " computed, "
              << summary.failed << " failed\n";
    return summary.failed > 0 ? kExitPartialSweep : kExitOk;
}

int
statusCmd(const util::Flags &flags)
{
    std::string socketPath =
        flags.getString("socket", "", "DIQ_SOCKET");
    if (socketPath.empty()) {
        std::cerr << "error: no socket path given (--socket PATH or "
                     "DIQ_SOCKET)\n";
        return kExitUsage;
    }
    serve::ServeClient client(socketPath);
    for (const auto &[k, v] : client.status())
        std::cout << k << "=" << v << "\n";
    return kExitOk;
}

int
shutdownCmd(const util::Flags &flags)
{
    std::string socketPath =
        flags.getString("socket", "", "DIQ_SOCKET");
    if (socketPath.empty()) {
        std::cerr << "error: no socket path given (--socket PATH or "
                     "DIQ_SOCKET)\n";
        return kExitUsage;
    }
    serve::ServeClient client(socketPath);
    long pid = client.serverPid();
    client.shutdown();
    std::cerr << "diq shutdown: server pid " << pid << " stopping\n";
    return kExitOk;
}

/**
 * Parse a `--seeds` window: "A..B" (inclusive) or a single "N".
 * @throws std::invalid_argument on malformed input or B < A.
 */
std::pair<uint64_t, uint64_t>
parseSeedWindow(const std::string &text)
{
    auto parseOne = [&text](const std::string &part) {
        if (part.empty() ||
            part.find_first_not_of("0123456789") != std::string::npos)
            throw std::invalid_argument(
                "bad --seeds '" + text +
                "' (want A..B or a single seed, e.g. 0..99)");
        return static_cast<uint64_t>(std::stoull(part));
    };
    auto dots = text.find("..");
    if (dots == std::string::npos) {
        uint64_t s = parseOne(text);
        return {s, s};
    }
    uint64_t begin = parseOne(text.substr(0, dots));
    uint64_t end = parseOne(text.substr(dots + 2));
    if (end < begin)
        throw std::invalid_argument("bad --seeds '" + text +
                                    "': end before begin");
    return {begin, end};
}

int
fuzzCmd(const util::Flags &flags)
{
    fuzz::FuzzOptions opts;
    try {
        auto [begin, end] =
            parseSeedWindow(flags.getString("seeds", "0..99"));
        opts.seedBegin = begin;
        opts.seedEnd = end;
    } catch (const std::invalid_argument &e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitUsage;
    }

    // --budget is the ISSUE's spelling for the per-run instruction
    // budget; --insts matches every other subcommand. Flag > env.
    int64_t insts = flags.has("budget")
        ? flags.getInt("budget", 3000)
        : flags.getInt("insts", 3000, "DIQ_INSTS");
    int64_t warmup = flags.getInt("warmup", 300, "DIQ_WARMUP");
    if (insts <= 0 || warmup < 0) {
        std::cerr << "error: budgets must be positive (--insts "
                  << insts << ", --warmup " << warmup << ")\n";
        return kExitUsage;
    }
    opts.measureInsts = static_cast<uint64_t>(insts);
    opts.warmupInsts = static_cast<uint64_t>(warmup);

    opts.shrink = flags.getBool("shrink", false);
    opts.timeBudgetSec = flags.getDouble("time-budget", 0.0);
    opts.ipcSlack = flags.getDouble("ipc-slack", opts.ipcSlack);
    opts.artifactDir =
        flags.getString("artifact-dir", opts.artifactDir);
    opts.traceDir = flags.getString("trace-dir", opts.traceDir);
    if (flags.has("schemes")) {
        std::string list = flags.getString("schemes", "");
        for (size_t at = 0; at < list.size();) {
            size_t comma = list.find(',', at);
            if (comma == std::string::npos)
                comma = list.size();
            if (comma > at)
                opts.schemes.push_back(
                    list.substr(at, comma - at));
            at = comma + 1;
        }
    }
    opts.progress = &std::cerr;

    std::cerr << "diq fuzz: seeds " << opts.seedBegin << ".."
              << opts.seedEnd << ", budget " << opts.measureInsts
              << " insts (+" << opts.warmupInsts
              << " warm-up) per scheme run"
              << (opts.shrink ? ", shrinking" : "") << "\n";

    fuzz::FuzzSummary summary = fuzz::runFuzz(opts);

    if (flags.has("json")) {
        std::string path = flags.getString("json", "");
        std::ofstream os(path, std::ios::trunc);
        if (!os) {
            std::cerr << "error: cannot write " << path << "\n";
            return kExitRuntime;
        }
        os << summary.toJson();
        std::cerr << "wrote " << path << "\n";
    }

    std::cout << "fuzz: " << summary.seedsRun << " seed(s), "
              << summary.violations.size() << " violation(s), "
              << (summary.timeBudgetHit ? "time budget hit, " : "")
              << "elapsed "
              << util::TablePrinter::fmt(summary.elapsedSec, 2)
              << "s\n";
    for (const auto &v : summary.violations) {
        std::cout << "  seed " << v.seed << " [" << v.invariant
                  << "] scheme " << v.scheme;
        if (!v.shrunkTracePath.empty())
            std::cout << " -> " << v.shrunkTracePath << " ("
                      << v.shrunkOps << " ops)";
        std::cout << "\n";
    }
    return summary.clean() ? kExitOk : kExitFuzzViolations;
}

int
listCmd(const util::Flags &flags)
{
    std::string topic =
        flags.positional().empty() ? "all" : flags.positional().front();
    // Bare-flag spellings (`diq list --scenarios`) select a topic too.
    for (const char *t :
         {"schemes", "benchmarks", "scenarios", "keys", "figures"})
        if (flags.has(t))
            topic = t;
    bool known = false;

    if (topic == "all" || topic == "schemes") {
        known = true;
        std::cout << "schemes (presets; `diq run <preset> "
                     "key=value...` overrides per key):\n";
        for (const auto &p : spec::presets())
            std::cout << "  " << p.name << pad(p.name, 22) << p.doc
                      << "\n";
        std::cout << "\n";
    }
    if (topic == "all" || topic == "benchmarks") {
        known = true;
        std::cout << "benchmarks (SPECint-like):";
        for (const auto &p : trace::specIntProfiles())
            std::cout << " " << p.name;
        std::cout << "\nbenchmarks (SPECfp-like): ";
        for (const auto &p : trace::specFpProfiles())
            std::cout << " " << p.name;
        std::cout << "\n(suite aliases in grids: int, fp, all, "
                     "scenarios)\n\n";
    }
    if (topic == "all" || topic == "scenarios") {
        known = true;
        std::cout << "scenarios (adversarial stress workloads; "
                     "`bench=scenario:<name>`):\n";
        for (const auto &s : trace::scenarioRegistry())
            std::cout << "  " << s.name << pad(s.name, 14) << s.doc
                      << "\n";
        std::cout << "  phased:A+B@N  ad-hoc phase alternation "
                     "between benchmarks/scenarios every N ops\n"
                     "(record any workload with `diq record ... --out "
                     "f.diqt`, replay with `bench=trace:f.diqt`)\n\n";
    }
    if (topic == "all" || topic == "keys") {
        known = true;
        std::cout << "spec keys (defaults reproduce Table 1):\n";
        spec::ExperimentSpec defaults;
        util::TablePrinter t({"key", "default", "doc"});
        for (const auto &k : spec::keyRegistry()) {
            std::string name = k.name;
            for (const auto &a : k.aliases)
                name += " | " + a;
            t.addRow({name, k.get(defaults), k.doc});
        }
        std::cout << t.render() << "\n";
    }
    if (topic == "all" || topic == "figures") {
        known = true;
        std::cout << "figures (`diq report [ids...]`):\n";
        for (const auto &f : allFigures())
            std::cout << "  " << f.id << pad(f.id, 18) << f.title
                      << "\n";
    }

    if (!known) {
        std::cerr << "error: unknown list topic '" << topic
                  << "' (known: schemes benchmarks scenarios keys "
                     "figures)\n";
        return kExitUsage;
    }
    return kExitOk;
}

} // namespace

std::string
renderRunOutput(const spec::ExperimentSpec &exp,
                const runner::SimResult &result)
{
    std::ostringstream os;
    os << "# experiment (canonical spec; `diq run --spec \"...\"` "
          "accepts these lines)\n"
       << exp.toText() << "\n";

    util::TablePrinter t({"scheme", "benchmark", "IPC", "cycles",
                          "committed", "mispred rate",
                          "IQ energy (uJ)", "avg IQ occupancy"});
    t.addRow({result.scheme, result.benchmark,
              util::TablePrinter::fmt(result.ipc, 3),
              std::to_string(result.stats.cycles),
              std::to_string(result.stats.committed),
              util::TablePrinter::pct(result.stats.mispredictRate(), 2),
              util::TablePrinter::fmt(result.energy.total() / 1e6, 3),
              util::TablePrinter::fmt(
                  result.stats.avgSchemeOccupancy(), 1)});
    os << t.render();
    return os.str();
}

std::string
renderSweepCsv(const runner::SweepSpec &grid,
               const runner::RunnerOptions &opts,
               const std::vector<runner::JobOutcome> &outcomes)
{
    util::TablePrinter t({"scheme", "benchmark", "ipc", "cycles",
                          "committed", "energy_pj", "status", "spec"});
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const runner::JobOutcome &o = outcomes[i];
        // The effective experiment: the grid point under the runner's
        // budgets — exactly what executed, so the spec column alone
        // reproduces the row.
        spec::ExperimentSpec exp = grid.points()[i].first;
        exp.benchmark = grid.points()[i].second.name;
        exp.warmupInsts = opts.warmupInsts;
        exp.measureInsts = opts.measureInsts;
        if (const runner::SimResult *r = o.result) {
            t.addRow({r->scheme, r->benchmark,
                      util::TablePrinter::fmt(r->ipc, 6),
                      std::to_string(r->stats.cycles),
                      std::to_string(r->stats.committed),
                      util::TablePrinter::fmt(r->energy.total(), 3),
                      "ok", exp.canonicalLine()});
        } else {
            // Quarantined point: the row stays (one row per grid
            // point, always), numerics blank, reason in `status` —
            // already sanitized, so the CSV shape survives.
            t.addRow({exp.processor.scheme.name(), exp.benchmark, "-",
                      "-", "-", "-", "failed: " + o.error,
                      exp.canonicalLine()});
        }
    }
    return t.renderCsv();
}

int
cliMain(int argc, char **argv)
{
    if (argc < 2) {
        usage(std::cerr);
        return kExitUsage;
    }
    std::string cmd = argv[1];
    // Shift so the subcommand's own flags/positionals parse cleanly.
    util::Flags flags(argc - 1, argv + 1);

    try {
        if (cmd == "run")
            return runCmd(flags);
        if (cmd == "record")
            return recordCmd(flags);
        if (cmd == "ckpt")
            return ckptCmd(flags);
        if (cmd == "sweep")
            return sweepCmd(flags);
        if (cmd == "cache")
            return cacheCmd(flags);
        if (cmd == "serve")
            return serveCmd(flags);
        if (cmd == "submit")
            return submitCmd(flags);
        if (cmd == "status")
            return statusCmd(flags);
        if (cmd == "shutdown")
            return shutdownCmd(flags);
        if (cmd == "report")
            return reportMain(flags);
        if (cmd == "fuzz")
            return fuzzCmd(flags);
        if (cmd == "list")
            return listCmd(flags);
        if (cmd == "help" || cmd == "--help" || cmd == "-h") {
            usage(std::cout);
            return kExitOk;
        }
    } catch (const spec::ParseError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitBadSpec;
    } catch (const std::out_of_range &e) {
        // Unknown benchmark/preset names surface as lookup failures;
        // they are spec errors, not runtime faults.
        std::cerr << "error: " << e.what() << "\n";
        return kExitBadSpec;
    } catch (const serve::ServerBusy &e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitServerBusy;
    } catch (const ckpt::SnapshotError &e) {
        // Damage-classified snapshot failures are runtime faults; the
        // class is already in the message (store taxonomy).
        std::cerr << "error: " << e.what() << "\n";
        return kExitRuntime;
    } catch (const fault::PlanError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitUsage;
    } catch (const runner::JournalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitUsage;
    } catch (const std::invalid_argument &e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitUsage;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitRuntime;
    }

    std::cerr << "error: unknown subcommand '" << cmd << "'\n\n";
    usage(std::cerr);
    return kExitUsage;
}

} // namespace diq::bench

/**
 * @file
 * Implementation of bench/cli.hh: the `diq` CLI
 * (docs/ARCHITECTURE.md §8).
 */

#include "cli.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "figures.hh"
#include "fuzz/fuzz_runner.hh"
#include "report.hh"
#include "runner/sweep_runner.hh"
#include "spec/presets.hh"
#include "trace/file_trace.hh"
#include "trace/scenarios.hh"
#include "trace/spec2000.hh"
#include "util/flags.hh"
#include "util/table_printer.hh"

namespace diq::bench
{

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: diq <subcommand> [args]\n"
          "\n"
          "  run [--spec TEXT] [tokens...]   simulate one experiment\n"
          "      A spec is presets and key=value overrides, e.g.\n"
          "        diq run mb_distr chains_per_queue=4 bench=swim\n"
          "        diq run --spec mb_distr --bench swim\n"
          "      bench= accepts a benchmark name, scenario:<name>,\n"
          "      or trace:<path> (replay a recorded .diqt file)\n"
          "      [--bench NAME] [--insts N] [--warmup N]\n"
          "  record --out FILE [tokens...]   run one experiment while\n"
          "      recording the consumed workload stream to FILE\n"
          "      (.diqt); replay it with bench=trace:FILE\n"
          "      [--spec TEXT] [--bench NAME] [--insts N] [--warmup N]\n"
          "  sweep [--grid TEXT] [tokens...] run a grid, emit CSV\n"
          "      Comma lists sweep, cross product in token order:\n"
          "        diq sweep scheme=mb_distr,if_distr bench=swim,gcc\n"
          "      bench= also accepts the aliases int, fp, all and\n"
          "      scenarios (the whole adversarial catalog)\n"
          "      [--jobs N] [--insts N] [--warmup N] [--out FILE]\n"
          "  report [figure-ids...]          reproduce every paper\n"
          "      figure (alias binary: diq_report)\n"
          "      [--outdir DIR] [--jobs N] [--insts N] [--warmup N]\n"
          "  fuzz [--seeds A..B] [--shrink]  generative differential\n"
          "      fuzzing: per seed, run every scheme on the generated\n"
          "      fuzz:<seed> workload and check cross-scheme\n"
          "      invariants; violations are auto-shrunk (--shrink) to\n"
          "      minimal .diqt reproducers. Exit: 0 clean, 2 violations\n"
          "      [--insts N | --budget N] [--warmup N] [--json FILE]\n"
          "      [--time-budget SEC] [--schemes a,b,...] [--ipc-slack X]\n"
          "      [--artifact-dir DIR] [--trace-dir DIR]\n"
          "  list [schemes|benchmarks|scenarios|keys|figures]\n"
          "      show the named vocabulary with doc strings\n"
          "  help                            this text\n"
          "\n"
          "Env fallbacks: DIQ_INSTS, DIQ_WARMUP, DIQ_JOBS, DIQ_OUTDIR\n";
}

/** Spaces to align a name column at `width`. */
std::string
pad(const std::string &s, size_t width)
{
    return s.size() < width ? std::string(width - s.size(), ' ')
                            : std::string(" ");
}

/** DIQ_WARMUP/DIQ_INSTS through the validated spec setters. */
void
applyEnvBudgets(spec::ExperimentSpec &exp)
{
    if (const char *env = std::getenv("DIQ_WARMUP"))
        exp.set("warmup", env);
    if (const char *env = std::getenv("DIQ_INSTS"))
        exp.set("insts", env);
}

/** --warmup/--insts through the validated spec setters. */
void
applyFlagBudgets(const util::Flags &flags, spec::ExperimentSpec &exp)
{
    if (flags.has("warmup"))
        exp.set("warmup", flags.getString("warmup", ""));
    if (flags.has("insts"))
        exp.set("insts", flags.getString("insts", ""));
}

/** --spec/--grid value plus positional tokens, space-joined. */
std::string
gatherSpecText(const util::Flags &flags, const std::string &flag_name)
{
    std::string text = flags.getString(flag_name, "");
    for (const auto &tok : flags.positional()) {
        if (!text.empty())
            text += ' ';
        text += tok;
    }
    return text;
}

/**
 * The one spec-assembly path behind `diq run` and `diq record` (a
 * recording is exactly the run it archives, by construction).
 *
 * Budget precedence: explicit flag > spec token > environment >
 * default. The env fallbacks seed the spec's defaults *before*
 * parsing so a `measure_insts=` token in the text beats them, and
 * every source goes through the validated setters — --insts -3
 * gets the same out-of-range error a measure_insts=-3 token does.
 */
spec::ExperimentSpec
buildRunExperiment(const util::Flags &flags, const std::string &text)
{
    spec::ExperimentSpec exp;
    applyEnvBudgets(exp);
    exp.applyText(text);
    if (flags.has("bench"))
        exp.set("bench", flags.getString("bench", exp.benchmark));
    applyFlagBudgets(flags, exp);
    return exp;
}

int
runCmd(const util::Flags &flags)
{
    std::string text = gatherSpecText(flags, "spec");
    if (text.empty() && !flags.has("bench")) {
        std::cerr << "error: no spec given (try `diq run mb_distr "
                     "bench=swim` or `diq list schemes`)\n";
        return 1;
    }

    spec::ExperimentSpec exp = buildRunExperiment(flags, text);
    runner::SimResult result = runner::executeJob(runner::makeJob(exp));
    std::cout << renderRunOutput(exp, result);
    return 0;
}

int
recordCmd(const util::Flags &flags)
{
    std::string text = gatherSpecText(flags, "spec");
    if (text.empty() && !flags.has("bench")) {
        std::cerr << "error: no spec given (try `diq record iq6464 "
                     "bench=swim --out swim.diqt`)\n";
        return 1;
    }
    if (!flags.has("out")) {
        std::cerr << "error: no output path given (--out FILE)\n";
        return 1;
    }
    std::string out_path = flags.getString("out", "");

    spec::ExperimentSpec exp = buildRunExperiment(flags, text);

    // Re-recording a replay is legal, but never onto the file being
    // read: the ios::trunc open would destroy the input mid-replay.
    if (exp.benchmark.starts_with(trace::kTracePrefix)) {
        std::string in_path =
            exp.benchmark.substr(trace::kTracePrefix.size());
        std::error_code ec;
        bool same = in_path == out_path ||
            std::filesystem::equivalent(in_path, out_path, ec);
        if (same) {
            std::cerr << "error: --out '" << out_path << "' is the "
                         "trace being replayed (recording onto it "
                         "would destroy the input)\n";
            return 1;
        }
    }

    runner::SimJob job = runner::makeJob(exp);
    auto live = runner::makeJobWorkload(job);
    trace::TraceRecorder recorder(*live, out_path);
    runner::SimResult result = runner::simulateJob(job, recorder);
    recorder.finalize();
    std::cerr << "recorded " << recorder.recordedOps()
              << " micro-ops to " << out_path
              << " (replay: diq run bench=trace:" << out_path
              << " ...)\n";
    std::cout << renderRunOutput(exp, result);
    return 0;
}

int
sweepCmd(const util::Flags &flags)
{
    std::string text = gatherSpecText(flags, "grid");
    if (text.empty()) {
        std::cerr << "error: no grid given (try `diq sweep "
                     "scheme=iq6464,mb_distr bench=swim,gcc`)\n";
        return 1;
    }

    runner::SweepSpec grid = runner::SweepSpec::fromText(text);
    if (grid.empty()) {
        std::cerr << "error: empty grid\n";
        return 1;
    }

    // Budgets through the validated setters, like `diq run` (the
    // grid itself rejects budget axes), so they have exactly one
    // source; only the worker count comes from the flags directly.
    runner::RunnerOptions opts;
    int64_t jobs = flags.getInt("jobs", 0, "DIQ_JOBS");
    opts.jobs = jobs > 0 ? static_cast<unsigned>(jobs) : 0;
    spec::ExperimentSpec budgets;
    applyEnvBudgets(budgets);
    applyFlagBudgets(flags, budgets);
    opts.warmupInsts = budgets.warmupInsts;
    opts.measureInsts = budgets.measureInsts;
    runner::SweepRunner runner(opts);
    std::cerr << "diq sweep: " << grid.size() << " points over "
              << runner.jobCount() << " worker(s), budget "
              << opts.measureInsts << " insts (+" << opts.warmupInsts
              << " warm-up)\n";

    std::string csv = renderSweepCsv(grid, opts, runner.runAll(grid));
    std::cout << csv;
    if (flags.has("out")) {
        std::string path = flags.getString("out", "");
        std::ofstream os(path);
        if (!os) {
            std::cerr << "error: cannot write " << path << "\n";
            return 1;
        }
        os << csv;
        std::cerr << "wrote " << path << "\n";
    }
    return 0;
}

/**
 * Parse a `--seeds` window: "A..B" (inclusive) or a single "N".
 * @throws std::invalid_argument on malformed input or B < A.
 */
std::pair<uint64_t, uint64_t>
parseSeedWindow(const std::string &text)
{
    auto parseOne = [&text](const std::string &part) {
        if (part.empty() ||
            part.find_first_not_of("0123456789") != std::string::npos)
            throw std::invalid_argument(
                "bad --seeds '" + text +
                "' (want A..B or a single seed, e.g. 0..99)");
        return static_cast<uint64_t>(std::stoull(part));
    };
    auto dots = text.find("..");
    if (dots == std::string::npos) {
        uint64_t s = parseOne(text);
        return {s, s};
    }
    uint64_t begin = parseOne(text.substr(0, dots));
    uint64_t end = parseOne(text.substr(dots + 2));
    if (end < begin)
        throw std::invalid_argument("bad --seeds '" + text +
                                    "': end before begin");
    return {begin, end};
}

int
fuzzCmd(const util::Flags &flags)
{
    fuzz::FuzzOptions opts;
    auto [begin, end] =
        parseSeedWindow(flags.getString("seeds", "0..99"));
    opts.seedBegin = begin;
    opts.seedEnd = end;

    // --budget is the ISSUE's spelling for the per-run instruction
    // budget; --insts matches every other subcommand. Flag > env.
    int64_t insts = flags.has("budget")
        ? flags.getInt("budget", 3000)
        : flags.getInt("insts", 3000, "DIQ_INSTS");
    int64_t warmup = flags.getInt("warmup", 300, "DIQ_WARMUP");
    if (insts <= 0 || warmup < 0) {
        std::cerr << "error: budgets must be positive (--insts "
                  << insts << ", --warmup " << warmup << ")\n";
        return 1;
    }
    opts.measureInsts = static_cast<uint64_t>(insts);
    opts.warmupInsts = static_cast<uint64_t>(warmup);

    opts.shrink = flags.getBool("shrink", false);
    opts.timeBudgetSec = flags.getDouble("time-budget", 0.0);
    opts.ipcSlack = flags.getDouble("ipc-slack", opts.ipcSlack);
    opts.artifactDir =
        flags.getString("artifact-dir", opts.artifactDir);
    opts.traceDir = flags.getString("trace-dir", opts.traceDir);
    if (flags.has("schemes")) {
        std::string list = flags.getString("schemes", "");
        for (size_t at = 0; at < list.size();) {
            size_t comma = list.find(',', at);
            if (comma == std::string::npos)
                comma = list.size();
            if (comma > at)
                opts.schemes.push_back(
                    list.substr(at, comma - at));
            at = comma + 1;
        }
    }
    opts.progress = &std::cerr;

    std::cerr << "diq fuzz: seeds " << opts.seedBegin << ".."
              << opts.seedEnd << ", budget " << opts.measureInsts
              << " insts (+" << opts.warmupInsts
              << " warm-up) per scheme run"
              << (opts.shrink ? ", shrinking" : "") << "\n";

    fuzz::FuzzSummary summary = fuzz::runFuzz(opts);

    if (flags.has("json")) {
        std::string path = flags.getString("json", "");
        std::ofstream os(path, std::ios::trunc);
        if (!os) {
            std::cerr << "error: cannot write " << path << "\n";
            return 1;
        }
        os << summary.toJson();
        std::cerr << "wrote " << path << "\n";
    }

    std::cout << "fuzz: " << summary.seedsRun << " seed(s), "
              << summary.violations.size() << " violation(s), "
              << (summary.timeBudgetHit ? "time budget hit, " : "")
              << "elapsed "
              << util::TablePrinter::fmt(summary.elapsedSec, 2)
              << "s\n";
    for (const auto &v : summary.violations) {
        std::cout << "  seed " << v.seed << " [" << v.invariant
                  << "] scheme " << v.scheme;
        if (!v.shrunkTracePath.empty())
            std::cout << " -> " << v.shrunkTracePath << " ("
                      << v.shrunkOps << " ops)";
        std::cout << "\n";
    }
    return summary.clean() ? 0 : 2;
}

int
listCmd(const util::Flags &flags)
{
    std::string topic =
        flags.positional().empty() ? "all" : flags.positional().front();
    // Bare-flag spellings (`diq list --scenarios`) select a topic too.
    for (const char *t :
         {"schemes", "benchmarks", "scenarios", "keys", "figures"})
        if (flags.has(t))
            topic = t;
    bool known = false;

    if (topic == "all" || topic == "schemes") {
        known = true;
        std::cout << "schemes (presets; `diq run <preset> "
                     "key=value...` overrides per key):\n";
        for (const auto &p : spec::presets())
            std::cout << "  " << p.name << pad(p.name, 22) << p.doc
                      << "\n";
        std::cout << "\n";
    }
    if (topic == "all" || topic == "benchmarks") {
        known = true;
        std::cout << "benchmarks (SPECint-like):";
        for (const auto &p : trace::specIntProfiles())
            std::cout << " " << p.name;
        std::cout << "\nbenchmarks (SPECfp-like): ";
        for (const auto &p : trace::specFpProfiles())
            std::cout << " " << p.name;
        std::cout << "\n(suite aliases in grids: int, fp, all, "
                     "scenarios)\n\n";
    }
    if (topic == "all" || topic == "scenarios") {
        known = true;
        std::cout << "scenarios (adversarial stress workloads; "
                     "`bench=scenario:<name>`):\n";
        for (const auto &s : trace::scenarioRegistry())
            std::cout << "  " << s.name << pad(s.name, 14) << s.doc
                      << "\n";
        std::cout << "  phased:A+B@N  ad-hoc phase alternation "
                     "between benchmarks/scenarios every N ops\n"
                     "(record any workload with `diq record ... --out "
                     "f.diqt`, replay with `bench=trace:f.diqt`)\n\n";
    }
    if (topic == "all" || topic == "keys") {
        known = true;
        std::cout << "spec keys (defaults reproduce Table 1):\n";
        spec::ExperimentSpec defaults;
        util::TablePrinter t({"key", "default", "doc"});
        for (const auto &k : spec::keyRegistry()) {
            std::string name = k.name;
            for (const auto &a : k.aliases)
                name += " | " + a;
            t.addRow({name, k.get(defaults), k.doc});
        }
        std::cout << t.render() << "\n";
    }
    if (topic == "all" || topic == "figures") {
        known = true;
        std::cout << "figures (`diq report [ids...]`):\n";
        for (const auto &f : allFigures())
            std::cout << "  " << f.id << pad(f.id, 18) << f.title
                      << "\n";
    }

    if (!known) {
        std::cerr << "error: unknown list topic '" << topic
                  << "' (known: schemes benchmarks scenarios keys "
                     "figures)\n";
        return 1;
    }
    return 0;
}

} // namespace

std::string
renderRunOutput(const spec::ExperimentSpec &exp,
                const runner::SimResult &result)
{
    std::ostringstream os;
    os << "# experiment (canonical spec; `diq run --spec \"...\"` "
          "accepts these lines)\n"
       << exp.toText() << "\n";

    util::TablePrinter t({"scheme", "benchmark", "IPC", "cycles",
                          "committed", "mispred rate",
                          "IQ energy (uJ)", "avg IQ occupancy"});
    t.addRow({result.scheme, result.benchmark,
              util::TablePrinter::fmt(result.ipc, 3),
              std::to_string(result.stats.cycles),
              std::to_string(result.stats.committed),
              util::TablePrinter::pct(result.stats.mispredictRate(), 2),
              util::TablePrinter::fmt(result.energy.total() / 1e6, 3),
              util::TablePrinter::fmt(
                  result.stats.avgSchemeOccupancy(), 1)});
    os << t.render();
    return os.str();
}

std::string
renderSweepCsv(const runner::SweepSpec &grid,
               const runner::RunnerOptions &opts,
               const std::vector<const runner::SimResult *> &results)
{
    util::TablePrinter t({"scheme", "benchmark", "ipc", "cycles",
                          "committed", "energy_pj", "spec"});
    for (size_t i = 0; i < results.size(); ++i) {
        const auto *r = results[i];
        // The effective experiment: the grid point under the runner's
        // budgets — exactly what executed, so the spec column alone
        // reproduces the row.
        spec::ExperimentSpec exp = grid.points()[i].first;
        exp.benchmark = grid.points()[i].second.name;
        exp.warmupInsts = opts.warmupInsts;
        exp.measureInsts = opts.measureInsts;
        t.addRow({r->scheme, r->benchmark,
                  util::TablePrinter::fmt(r->ipc, 6),
                  std::to_string(r->stats.cycles),
                  std::to_string(r->stats.committed),
                  util::TablePrinter::fmt(r->energy.total(), 3),
                  exp.canonicalLine()});
    }
    return t.renderCsv();
}

int
cliMain(int argc, char **argv)
{
    if (argc < 2) {
        usage(std::cerr);
        return 1;
    }
    std::string cmd = argv[1];
    // Shift so the subcommand's own flags/positionals parse cleanly.
    util::Flags flags(argc - 1, argv + 1);

    try {
        if (cmd == "run")
            return runCmd(flags);
        if (cmd == "record")
            return recordCmd(flags);
        if (cmd == "sweep")
            return sweepCmd(flags);
        if (cmd == "report")
            return reportMain(flags);
        if (cmd == "fuzz")
            return fuzzCmd(flags);
        if (cmd == "list")
            return listCmd(flags);
        if (cmd == "help" || cmd == "--help" || cmd == "-h") {
            usage(std::cout);
            return 0;
        }
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }

    std::cerr << "error: unknown subcommand '" << cmd << "'\n\n";
    usage(std::cerr);
    return 1;
}

} // namespace diq::bench

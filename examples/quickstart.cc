/**
 * @file
 * Quickstart: simulate one benchmark on the paper's three issue-queue
 * organizations and print IPC plus the issue-logic energy breakdown.
 *
 * Experiments are built through the declarative spec API
 * (spec/experiment_spec.hh): a spec string names a preset and
 * overrides knobs per key, exactly like `diq run`. Try editing the
 * spec strings below — any `key=value` from `diq list keys` works.
 *
 * Usage: quickstart [benchmark] [--insts N] [--warmup N]
 *   (default: swim; budgets also honor DIQ_INSTS / DIQ_WARMUP)
 */

#include <iostream>

#include "runner/sim_job.hh"
#include "spec/experiment_spec.hh"
#include "util/flags.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace diq;

    util::Flags flags(argc, argv);
    std::string bench =
        flags.positional().empty() ? "swim" : flags.positional().front();
    int64_t warmup = flags.getInt("warmup", 50000, "DIQ_WARMUP");
    int64_t insts = flags.getInt("insts", 200000, "DIQ_INSTS");

    util::TablePrinter table({"scheme", "IPC", "IQ energy (uJ)",
                              "mispred rate", "avg IQ occupancy"});

    bool printed_header = false;
    for (const char *preset : {"iq6464", "if_distr", "mb_distr"}) {
        // One experiment = one parsed spec string; the same text
        // works verbatim as `diq run <text>`.
        spec::ExperimentSpec exp;
        try {
            exp = spec::ExperimentSpec::parse(
                std::string(preset) + " bench=" + bench +
                " warmup_insts=" + std::to_string(warmup) +
                " measure_insts=" + std::to_string(insts));
        } catch (const spec::ParseError &e) {
            std::cerr << "error: " << e.what() << "\n";
            return 1;
        }

        if (!printed_header) {
            std::cout << "Benchmark: " << bench << " ("
                      << (runner::makeJob(exp).profile.isFp ? "SPECfp"
                                                            : "SPECint")
                      << "-like synthetic)\n\n";
            printed_header = true;
        }

        runner::SimResult r = runner::executeJob(runner::makeJob(exp));
        table.addRow({r.scheme, util::TablePrinter::fmt(r.ipc, 3),
                      util::TablePrinter::fmt(r.energy.total() / 1e6, 3),
                      util::TablePrinter::pct(
                          r.stats.mispredictRate(), 2),
                      util::TablePrinter::fmt(
                          r.stats.avgSchemeOccupancy(), 1)});
    }

    std::cout << table.render() << "\n";
    std::cout << "Try: quickstart mcf   (pointer-chasing, memory-bound)\n"
              << "     quickstart gcc   (branchy integer code)\n"
              << "     quickstart mgrid (wide FP dependence graphs)\n"
              << "Same experiments via the CLI: "
                 "diq run if_distr bench=" << bench << "\n";
    return 0;
}

/**
 * @file
 * Quickstart: simulate one benchmark on the paper's three issue-queue
 * organizations and print IPC plus the issue-logic energy breakdown.
 *
 * Usage: quickstart [benchmark] [--insts N] [--warmup N]
 *   (default: swim; budgets also honor DIQ_INSTS / DIQ_WARMUP)
 */

#include <iostream>
#include <stdexcept>

#include "power/energy_model.hh"
#include "power/events.hh"
#include "sim/pipeline.hh"
#include "trace/spec2000.hh"
#include "util/flags.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace diq;

    util::Flags flags(argc, argv);
    std::string bench =
        flags.positional().empty() ? "swim" : flags.positional().front();
    int64_t warmup = flags.getInt("warmup", 50000, "DIQ_WARMUP");
    int64_t insts = flags.getInt("insts", 200000, "DIQ_INSTS");
    if (warmup < 0 || insts <= 0) {
        std::cerr << "error: --warmup must be >= 0 and --insts > 0\n";
        return 1;
    }

    const trace::BenchmarkProfile *profile_ptr = nullptr;
    try {
        profile_ptr = &trace::specProfile(bench);
    } catch (const std::out_of_range &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    const trace::BenchmarkProfile &profile = *profile_ptr;

    std::cout << "Benchmark: " << bench << " ("
              << (profile.isFp ? "SPECfp" : "SPECint")
              << "-like synthetic)\n\n";

    util::TablePrinter table({"scheme", "IPC", "IQ energy (uJ)",
                              "mispred rate", "avg IQ occupancy"});

    for (const auto &scheme : {core::SchemeConfig::iq6464(),
                               core::SchemeConfig::ifDistr(),
                               core::SchemeConfig::mbDistr()}) {
        auto workload = trace::makeSpecWorkload(profile);
        sim::ProcessorConfig cfg;
        cfg.scheme = scheme;
        sim::Cpu cpu(cfg, *workload);

        cpu.run(static_cast<uint64_t>(warmup));  // warm caches, predictors
        cpu.resetStats();
        cpu.run(static_cast<uint64_t>(insts));   // measure

        power::IssueGeometry geom;
        power::IssueEnergyModel model(geom);
        power::EnergyBreakdown energy;
        switch (scheme.kind) {
          case core::SchemeConfig::Kind::Cam:
            energy = model.baseline(cpu.stats().counters);
            break;
          case core::SchemeConfig::Kind::MixBuff:
            energy = model.mixBuff(cpu.stats().counters);
            break;
          default:
            energy = model.issueFifo(cpu.stats().counters);
            break;
        }

        table.addRow({scheme.name(),
                      util::TablePrinter::fmt(cpu.stats().ipc(), 3),
                      util::TablePrinter::fmt(energy.total() / 1e6, 3),
                      util::TablePrinter::pct(
                          cpu.stats().mispredictRate(), 2),
                      util::TablePrinter::fmt(
                          cpu.stats().avgSchemeOccupancy(), 1)});
    }

    std::cout << table.render() << "\n";
    std::cout << "Try: quickstart mcf   (pointer-chasing, memory-bound)\n"
              << "     quickstart gcc   (branchy integer code)\n"
              << "     quickstart mgrid (wide FP dependence graphs)\n";
    return 0;
}

/**
 * @file
 * Quickstart: simulate one benchmark on the paper's three issue-queue
 * organizations and print IPC plus the issue-logic energy breakdown.
 *
 * Usage: quickstart [benchmark] (default: swim)
 */

#include <iostream>

#include "power/energy_model.hh"
#include "power/events.hh"
#include "sim/pipeline.hh"
#include "trace/spec2000.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace diq;

    std::string bench = argc > 1 ? argv[1] : "swim";
    const trace::BenchmarkProfile &profile = trace::specProfile(bench);

    std::cout << "Benchmark: " << bench << " ("
              << (profile.isFp ? "SPECfp" : "SPECint")
              << "-like synthetic)\n\n";

    util::TablePrinter table({"scheme", "IPC", "IQ energy (uJ)",
                              "mispred rate", "avg IQ occupancy"});

    for (const auto &scheme : {core::SchemeConfig::iq6464(),
                               core::SchemeConfig::ifDistr(),
                               core::SchemeConfig::mbDistr()}) {
        auto workload = trace::makeSpecWorkload(profile);
        sim::ProcessorConfig cfg;
        cfg.scheme = scheme;
        sim::Cpu cpu(cfg, *workload);

        cpu.run(50000);   // warm caches and predictors
        cpu.resetStats();
        cpu.run(200000);  // measure

        power::IssueGeometry geom;
        power::IssueEnergyModel model(geom);
        power::EnergyBreakdown energy;
        switch (scheme.kind) {
          case core::SchemeConfig::Kind::Cam:
            energy = model.baseline(cpu.stats().counters);
            break;
          case core::SchemeConfig::Kind::MixBuff:
            energy = model.mixBuff(cpu.stats().counters);
            break;
          default:
            energy = model.issueFifo(cpu.stats().counters);
            break;
        }

        table.addRow({scheme.name(),
                      util::TablePrinter::fmt(cpu.stats().ipc(), 3),
                      util::TablePrinter::fmt(energy.total() / 1e6, 3),
                      util::TablePrinter::pct(
                          cpu.stats().mispredictRate(), 2),
                      util::TablePrinter::fmt(
                          cpu.stats().avgSchemeOccupancy(), 1)});
    }

    std::cout << table.render() << "\n";
    std::cout << "Try: quickstart mcf   (pointer-chasing, memory-bound)\n"
              << "     quickstart gcc   (branchy integer code)\n"
              << "     quickstart mgrid (wide FP dependence graphs)\n";
    return 0;
}

/**
 * @file
 * Figure 5 walkthrough — drives one MixBUFF FP queue through the
 * paper's selection example step by step, printing the chain latency
 * table, the 2-bit codes and the winning (code ++ age) key each cycle.
 *
 * The scenario: two dependence chains share one queue; chain A starts
 * with a long-latency divide, chain B with a 2-cycle add. Selection
 * must pick, every cycle, the oldest instruction among those whose
 * chain predecessor finishes next cycle (code 00) or has finished
 * (code 01) — never one that is >= 2 cycles away (code 11).
 */

#include <iostream>

#include "core/inst_pool.hh"
#include "core/mixbuff_issue_scheme.hh"
#include "core/scoreboard.hh"

using namespace diq;
using namespace diq::core;

namespace
{

const char *
codeName(ChainCode c)
{
    switch (c) {
      case ChainCode::FinishesNextCycle:
        return "00 (finishes next cycle)";
      case ChainCode::Finished:
        return "01 (finished / delayed)";
      default:
        return "11 (>= 2 cycles left)";
    }
}

struct Walkthrough
{
    InstPool pool{64};
    Scoreboard scoreboard{320};
    FuPool fus{FuPoolConfig{}};
    power::EventCounters counters;
    uint64_t cycle = 0;
    MixBuffIssueScheme scheme{SchemeConfig::mixBuff(2, 2, 1, 16, 8)};
    uint64_t nextSeq = 1;

    IssueContext
    ctx()
    {
        IssueContext c;
        c.cycle = cycle;
        c.scoreboard = &scoreboard;
        c.fus = &fus;
        c.counters = &counters;
        c.pool = &pool;
        return c;
    }

    InstIdx
    add(const char *label, trace::OpClass op, int dest, int src)
    {
        trace::MicroOp mop;
        mop.op = op;
        mop.dest = static_cast<int8_t>(dest);
        mop.src1 = static_cast<int8_t>(src);
        InstIdx idx = pool.alloc(mop, nextSeq++);
        DynInst &inst = pool.get(idx);
        inst.pdest = dest;
        inst.psrc1 = src;
        if (dest >= 0)
            scoreboard.markPending(dest);
        auto c = ctx();
        scheme.dispatch(idx, c);
        std::cout << "  dispatch " << label << " (seq " << inst.seq
                  << ", " << trace::opClassName(op) << ") -> queue "
                  << inst.queueId << ", chain " << inst.chainId << "\n";
        return idx;
    }

    void
    step()
    {
        ++cycle;
        scoreboard.syncTo(cycle);
        auto c = ctx();
        std::vector<InstIdx> out;
        scheme.issue(c, out);
        for (InstIdx idx : out) {
            const DynInst &inst = pool.get(idx);
            if (inst.hasDest()) {
                scoreboard.setReadyAt(
                    inst.pdest,
                    cycle + static_cast<uint64_t>(
                                trace::opLatency(inst.op.op)));
            }
        }
        std::cout << "cycle " << cycle << ":";
        if (out.empty())
            std::cout << " (no issue)";
        for (InstIdx idx : out)
            std::cout << " ISSUE seq " << pool.get(idx).seq << " ("
                      << trace::opClassName(pool.get(idx).op.op) << ")";
        std::cout << "\n";
        const auto &fp = scheme.fpCluster();
        for (int chain = 0; chain < 8; ++chain) {
            if (!fp.chainBusy(0, chain))
                continue;
            uint32_t v = fp.chainCounter(0, chain);
            std::cout << "    chain " << chain << ": counter " << v
                      << " -> code " << codeName(MixBuffCluster::codeFor(v))
                      << "\n";
        }
        if (const DynInst *sel = fp.selectedInst(pool, 0)) {
            std::cout << "    selected for next cycle: seq " << sel->seq
                      << " (oldest among highest-priority codes)\n";
        }
    }
};

} // namespace

int
main()
{
    std::cout
        << "MixBUFF selection walkthrough (paper Figure 5)\n"
        << "==============================================\n"
        << "One FP queue, two chains. Priority key = 2-bit chain code\n"
        << "concatenated with the age identifier; minimum wins.\n\n";

    Walkthrough w;
    std::cout << "Dispatching two chains into queue 0:\n";
    w.add("A0 = fdiv (12 cycles)", trace::OpClass::FpDiv, 33, -1);
    w.add("A1 = fadd A0", trace::OpClass::FpAdd, 34, 33);
    w.add("B0 = fadd (2 cycles)", trace::OpClass::FpAdd, 35, -1);
    w.add("B1 = fadd B0", trace::OpClass::FpAdd, 36, 35);
    std::cout << "\n";

    for (int i = 0; i < 8; ++i)
        w.step();

    std::cout
        << "\nNote how B1 issues exactly when B0's 2-cycle result\n"
        << "arrives (its chain code hit 00 one cycle earlier), while\n"
        << "A1 stays parked behind the divide (code 11) without any\n"
        << "CAM wakeup ever being consulted.\n";
    return 0;
}

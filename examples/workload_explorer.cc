/**
 * @file
 * Workload explorer — characterizes the synthetic SPEC2000-like suite:
 * op mix, dependence-graph width, branch behaviour and cache miss
 * rates on the baseline machine. This is the evidence for the
 * substitution argument in docs/ARCHITECTURE.md §5: integer codes are
 * narrow and branchy, FP codes are wide with long-latency chains.
 *
 * Usage: workload_explorer [--insts N]
 */

#include <iostream>
#include <map>

#include "sim/pipeline.hh"
#include "spec/experiment_spec.hh"
#include "trace/spec2000.hh"
#include "util/flags.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace diq;

    util::Flags flags(argc, argv);
    uint64_t insts = static_cast<uint64_t>(
        flags.getInt("insts", 60000, "DIQ_INSTS"));

    util::TablePrinter table({"benchmark", "suite", "DDG width", "%FP",
                              "%load", "%store", "%branch", "mispred",
                              "L1D miss", "L2 miss", "IPC"});

    for (const auto &profile : trace::allSpecProfiles()) {
        // Static stream characterization.
        auto w = trace::makeSpecWorkload(profile);
        std::map<trace::OpClass, uint64_t> mix;
        trace::MicroOp op;
        for (uint64_t i = 0; i < insts; ++i) {
            w->next(op);
            ++mix[op.op];
        }
        auto frac = [&](trace::OpClass c) {
            return static_cast<double>(mix[c]) / insts;
        };
        double fp_frac = frac(trace::OpClass::FpAdd) +
            frac(trace::OpClass::FpMult) + frac(trace::OpClass::FpDiv);

        // Dynamic behaviour on the baseline machine, configured
        // through the declarative spec API (the `iq6464` preset is
        // the paper's baseline; any `diq list keys` override works).
        auto exp = spec::ExperimentSpec::parse(
            "iq6464 bench=" + profile.name);
        auto w2 = trace::makeSpecWorkload(profile);
        sim::Cpu cpu(exp.processor, *w2);
        cpu.run(insts / 4);
        cpu.resetStats();
        cpu.run(insts);

        table.addRow(
            {profile.name, profile.isFp ? "FP" : "INT",
             std::to_string(profile.parChains),
             util::TablePrinter::pct(fp_frac, 0),
             util::TablePrinter::pct(frac(trace::OpClass::Load), 0),
             util::TablePrinter::pct(frac(trace::OpClass::Store), 0),
             util::TablePrinter::pct(frac(trace::OpClass::Branch), 0),
             util::TablePrinter::pct(cpu.stats().mispredictRate(), 1),
             util::TablePrinter::pct(cpu.memory().l1d().missRate(), 1),
             util::TablePrinter::pct(cpu.memory().l2().missRate(), 1),
             util::TablePrinter::fmt(cpu.stats().ipc(), 2)});
    }

    std::cout << "Synthetic SPEC2000-like suite characterization\n\n"
              << table.render()
              << "\n(The FP suite's larger DDG width is exactly why "
                 "plain issue FIFOs fail on it — paper Section 3.)\n";
    return 0;
}

/**
 * @file
 * Parallel sweep runner walkthrough: drive runner::SweepRunner
 * directly (without the bench harness) to sweep MixBUFF chain bounds
 * over the SPECfp-like suite across worker threads, then show the
 * determinism contract — a serial runner reproduces the parallel
 * results bit for bit (docs/ARCHITECTURE.md §7).
 *
 * Usage: parallel_sweep [--jobs N] [--insts N] [--warmup N]
 *   (env fallbacks: DIQ_JOBS, DIQ_INSTS, DIQ_WARMUP)
 */

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "runner/sweep_runner.hh"
#include "trace/spec2000.hh"
#include "util/stats.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace diq;

    util::Flags flags(argc, argv);
    runner::RunnerOptions opts = runner::RunnerOptions::fromFlags(flags);
    // Walkthrough default: small enough to re-run serially below.
    if (!flags.has("insts") && !std::getenv("DIQ_INSTS"))
        opts.measureInsts = 20000;
    if (!flags.has("warmup") && !std::getenv("DIQ_WARMUP"))
        opts.warmupInsts = 2000;

    const auto &profiles = trace::specFpProfiles();
    std::vector<core::SchemeConfig> schemes;
    for (int chains : {1, 2, 4, 8, 0}) {
        auto cfg = core::SchemeConfig::mbDistr();
        cfg.chainsPerQueue = chains;
        schemes.push_back(cfg);
    }

    runner::SweepSpec spec;
    spec.addGrid(schemes, profiles);

    runner::SweepRunner parallel(opts);
    std::cout << "Sweeping " << spec.size() << " jobs over "
              << parallel.jobCount() << " worker(s)...\n";
    auto t0 = std::chrono::steady_clock::now();
    parallel.prefetch(spec);
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();

    util::TablePrinter table({"chains/queue", "SPECfp HM IPC"});
    for (const auto &s : schemes) {
        std::vector<double> ipcs;
        for (const auto &p : profiles)
            ipcs.push_back(parallel.run(s, p).ipc);
        table.addRow({s.chainsPerQueue == 0
                          ? "unbounded"
                          : std::to_string(s.chainsPerQueue),
                      util::TablePrinter::fmt(util::harmonicMean(ipcs),
                                              3)});
    }
    std::cout << table.render() << "\n"
              << parallel.cacheMisses() << " simulations in " << ms
              << " ms (" << parallel.cacheHits() << " cache hits on"
              << " re-read)\n";

    // Determinism check: a fresh serial runner must agree bit for bit.
    runner::RunnerOptions serial_opts = opts;
    serial_opts.jobs = 1;
    runner::SweepRunner serial(serial_opts);
    for (const auto &[exp, profile] : spec.points()) {
        const auto &a = parallel.run(exp, profile);
        const auto &b = serial.run(exp, profile);
        if (a.ipc != b.ipc || a.stats.cycles != b.stats.cycles ||
            a.energy.total() != b.energy.total()) {
            std::cerr << "determinism violation at "
                      << exp.processor.scheme.name() << "/"
                      << profile.name << "\n";
            return 1;
        }
    }
    std::cout << "serial re-run (--jobs=1) matched all " << spec.size()
              << " results bit-for-bit\n";
    return 0;
}

/**
 * @file
 * Pipeline statistics explorer — runs one benchmark on one issue-queue
 * organization and prints the full stall/occupancy breakdown. Useful
 * for understanding *why* a scheme loses IPC (dispatch stalls vs
 * front-end stalls vs window pressure).
 *
 * Usage: debug_stats [benchmark] [scheme]
 *   scheme: iq64 | unbounded | ifdistr | mbdistr | latfifo | all
 */

#include <iostream>
#include <string>

#include "sim/pipeline.hh"
#include "trace/spec2000.hh"

int
main(int argc, char **argv)
{
    using namespace diq;

    std::string bench = argc > 1 ? argv[1] : "swim";
    std::string which = argc > 2 ? argv[2] : "all";

    auto scheme_for = [](const std::string &name) {
        if (name == "iq64")
            return core::SchemeConfig::iq6464();
        if (name == "unbounded")
            return core::SchemeConfig::unbounded();
        if (name == "ifdistr")
            return core::SchemeConfig::ifDistr();
        if (name == "latfifo")
            return core::SchemeConfig::latFifo(16, 16, 8, 16);
        return core::SchemeConfig::mbDistr();
    };

    std::vector<core::SchemeConfig> schemes;
    if (which == "all") {
        schemes = {core::SchemeConfig::iq6464(),
                   core::SchemeConfig::ifDistr(),
                   core::SchemeConfig::mbDistr()};
    } else {
        schemes = {scheme_for(which)};
    }

    for (const auto &scheme : schemes) {
        auto w = trace::makeSpecWorkload(bench);
        sim::ProcessorConfig cfg;
        cfg.scheme = scheme;
        sim::Cpu cpu(cfg, *w);
        cpu.run(50000);
        cpu.resetStats();
        cpu.run(200000);
        const auto &s = cpu.stats();

        std::cout << bench << " on " << scheme.name() << "\n"
                  << "  IPC                  " << s.ipc() << "\n"
                  << "  cycles               " << s.cycles << "\n"
                  << "  branch mispredicts   " << s.mispredicts << " ("
                  << 100.0 * s.mispredictRate() << "% of branches)\n"
                  << "  scheme-stall cycles  " << s.dispatchStallCycles
                  << " (" << 100.0 * s.dispatchStallCycles / s.cycles
                  << "%)\n"
                  << "  window-stall cycles  " << s.windowStallCycles
                  << " (" << 100.0 * s.windowStallCycles / s.cycles
                  << "%)\n"
                  << "  fetch-stall cycles   " << s.fetchStallCycles
                  << " (" << 100.0 * s.fetchStallCycles / s.cycles
                  << "%)\n"
                  << "  avg IQ occupancy     " << s.avgSchemeOccupancy()
                  << "\n"
                  << "  avg ROB occupancy    "
                  << (s.cycles ? static_cast<double>(s.robOccupancySum) /
                             s.cycles
                               : 0.0)
                  << "\n"
                  << "  L1D / L2 miss rate   "
                  << 100.0 * cpu.memory().l1d().missRate() << "% / "
                  << 100.0 * cpu.memory().l2().missRate() << "%\n\n";
    }
    return 0;
}

/**
 * @file
 * Pipeline statistics explorer — runs one benchmark on one issue-queue
 * organization and prints the full stall/occupancy breakdown. Useful
 * for understanding *why* a scheme loses IPC (dispatch stalls vs
 * front-end stalls vs window pressure).
 *
 * Usage: debug_stats [benchmark] [scheme] [--insts N] [--warmup N]
 *   scheme: iq64 | unbounded | ifdistr | mbdistr | latfifo | all
 *   (budgets also honor DIQ_INSTS / DIQ_WARMUP)
 */

#include <iostream>
#include <stdexcept>
#include <string>

#include "sim/pipeline.hh"
#include "trace/spec2000.hh"
#include "util/flags.hh"

int
main(int argc, char **argv)
{
    using namespace diq;

    util::Flags flags(argc, argv);
    const auto &pos = flags.positional();
    std::string bench = pos.size() > 0 ? pos[0] : "swim";
    std::string which = pos.size() > 1 ? pos[1] : "all";
    int64_t warmup = flags.getInt("warmup", 50000, "DIQ_WARMUP");
    int64_t insts = flags.getInt("insts", 200000, "DIQ_INSTS");
    if (warmup < 0 || insts <= 0) {
        std::cerr << "error: --warmup must be >= 0 and --insts > 0\n";
        return 1;
    }

    std::vector<core::SchemeConfig> schemes;
    if (which == "all") {
        schemes = {core::SchemeConfig::iq6464(),
                   core::SchemeConfig::ifDistr(),
                   core::SchemeConfig::mbDistr()};
    } else if (which == "iq64") {
        schemes = {core::SchemeConfig::iq6464()};
    } else if (which == "unbounded") {
        schemes = {core::SchemeConfig::unbounded()};
    } else if (which == "ifdistr") {
        schemes = {core::SchemeConfig::ifDistr()};
    } else if (which == "latfifo") {
        schemes = {core::SchemeConfig::latFifo(16, 16, 8, 16)};
    } else if (which == "mbdistr") {
        schemes = {core::SchemeConfig::mbDistr()};
    } else {
        std::cerr << "error: unknown scheme '" << which
                  << "' (expected iq64 | unbounded | ifdistr | mbdistr"
                  << " | latfifo | all)\n";
        return 1;
    }

    const trace::BenchmarkProfile *profile = nullptr;
    try {
        profile = &trace::specProfile(bench);
    } catch (const std::out_of_range &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }

    for (const auto &scheme : schemes) {
        auto w = trace::makeSpecWorkload(*profile);
        sim::ProcessorConfig cfg;
        cfg.scheme = scheme;
        sim::Cpu cpu(cfg, *w);
        cpu.run(static_cast<uint64_t>(warmup));
        cpu.resetStats();
        cpu.run(static_cast<uint64_t>(insts));
        const auto &s = cpu.stats();

        std::cout << bench << " on " << scheme.name() << "\n"
                  << "  IPC                  " << s.ipc() << "\n"
                  << "  cycles               " << s.cycles << "\n"
                  << "  branch mispredicts   " << s.mispredicts << " ("
                  << 100.0 * s.mispredictRate() << "% of branches)\n"
                  << "  scheme-stall cycles  " << s.dispatchStallCycles
                  << " (" << 100.0 * s.dispatchStallCycles / s.cycles
                  << "%)\n"
                  << "  window-stall cycles  " << s.windowStallCycles
                  << " (" << 100.0 * s.windowStallCycles / s.cycles
                  << "%)\n"
                  << "  fetch-stall cycles   " << s.fetchStallCycles
                  << " (" << 100.0 * s.fetchStallCycles / s.cycles
                  << "%)\n"
                  << "  avg IQ occupancy     " << s.avgSchemeOccupancy()
                  << "\n"
                  << "  avg ROB occupancy    "
                  << (s.cycles ? static_cast<double>(s.robOccupancySum) /
                             s.cycles
                               : 0.0)
                  << "\n"
                  << "  L1D / L2 miss rate   "
                  << 100.0 * cpu.memory().l1d().missRate() << "% / "
                  << 100.0 * cpu.memory().l2().missRate() << "%\n\n";
    }
    return 0;
}

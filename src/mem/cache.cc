/**
 * @file
 * Implementation of mem/cache.hh (docs/ARCHITECTURE.md §3).
 */

#include "mem/cache.hh"

#include <bit>
#include <cassert>

namespace diq::mem
{

namespace
{

uint64_t
floorPow2(uint64_t n)
{
    if (n == 0)
        return 1;
    return uint64_t{1} << (63 - std::countl_zero(n));
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    assert(config_.lineBytes > 0 && config_.assoc > 0);
    uint64_t num_lines = config_.sizeBytes / config_.lineBytes;
    numSets_ = floorPow2(num_lines / config_.assoc);
    lineShift_ = static_cast<unsigned>(
        std::countr_zero(floorPow2(config_.lineBytes)));
    lines_.assign(numSets_ * config_.assoc, Line{});
}

uint64_t
Cache::setIndex(uint64_t addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return addr >> lineShift_;
}

AccessResult
Cache::access(uint64_t addr, bool is_write)
{
    ++accesses_;
    ++lruClock_;

    uint64_t set = setIndex(addr);
    uint64_t tag = tagOf(addr);
    Line *base = &lines_[set * config_.assoc];

    Line *victim = base;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lru = lruClock_;
            l.dirty = l.dirty || is_write;
            return {true, false};
        }
        if (!l.valid) {
            victim = &l;
        } else if (victim->valid && l.lru < victim->lru) {
            victim = &l;
        }
    }

    ++misses_;
    AccessResult r{false, victim->valid && victim->dirty};
    if (r.writebackVictim)
        ++writebacks_;
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lru = lruClock_;
    return r;
}

bool
Cache::probe(uint64_t addr) const
{
    uint64_t set = setIndex(addr);
    uint64_t tag = tagOf(addr);
    const Line *base = &lines_[set * config_.assoc];
    for (unsigned w = 0; w < config_.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::reset()
{
    for (auto &l : lines_)
        l = Line{};
    lruClock_ = 0;
    accesses_ = 0;
    misses_ = 0;
    writebacks_ = 0;
}

MemoryHierarchy::MemoryHierarchy(const Config &config)
    : config_(config), l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2)
{
}

unsigned
MemoryHierarchy::memoryLatency(unsigned bytes) const
{
    const auto &m = config_.memory;
    unsigned chunks = (bytes + m.chunkBytes - 1) / m.chunkBytes;
    if (chunks == 0)
        chunks = 1;
    return m.firstChunkLatency + (chunks - 1) * m.interChunkLatency;
}

unsigned
MemoryHierarchy::dataAccess(uint64_t addr, bool is_write)
{
    unsigned latency = config_.l1d.hitLatency;
    AccessResult l1 = l1d_.access(addr, is_write);
    if (l1.hit)
        return latency;

    latency += config_.l2.hitLatency;
    AccessResult l2r = l2_.access(addr, /*is_write=*/false);
    if (l2r.hit)
        return latency;

    latency += memoryLatency(config_.l2.lineBytes);
    return latency;
}

unsigned
MemoryHierarchy::loadLatency(uint64_t addr)
{
    return dataAccess(addr, false);
}

unsigned
MemoryHierarchy::storeLatency(uint64_t addr)
{
    return dataAccess(addr, true);
}

unsigned
MemoryHierarchy::fetchLatency(uint64_t pc)
{
    unsigned latency = config_.l1i.hitLatency;
    AccessResult l1 = l1i_.access(pc, false);
    if (l1.hit)
        return latency;

    latency += config_.l2.hitLatency;
    AccessResult l2r = l2_.access(pc, false);
    if (l2r.hit)
        return latency;

    latency += memoryLatency(config_.l2.lineBytes);
    return latency;
}

void
MemoryHierarchy::reset()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
}

} // namespace diq::mem

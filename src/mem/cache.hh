/**
 * @file
 * Set-associative cache timing model.
 *
 * A Cache models tags only (no data): it answers "hit or miss, and how
 * long" and maintains LRU state, dirty bits and fill/writeback counts.
 * Misses are non-blocking — the pipeline tracks each access's own
 * completion cycle, so independent misses overlap naturally (MSHR
 * conflicts are not modeled; the paper's evaluation does not depend on
 * them). Port contention for the L1 D-cache is enforced by the
 * pipeline's issue stage, not here.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §3.
 */

#ifndef DIQ_MEM_CACHE_HH
#define DIQ_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace diq::ckpt
{
class Archive;
}

namespace diq::mem
{

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 32;
    unsigned hitLatency = 2;   ///< cycles
    unsigned ports = 4;        ///< R/W ports (enforced by the pipeline)

    bool operator==(const CacheConfig &) const = default;
};

/** Outcome of a cache access. */
struct AccessResult
{
    bool hit = false;
    bool writebackVictim = false; ///< a dirty line was evicted
};

/** LRU set-associative tag array. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access a line; allocates on miss (write-allocate) and updates
     * LRU/dirty state.
     */
    AccessResult access(uint64_t addr, bool is_write);

    /** Probe without modifying any state. */
    bool probe(uint64_t addr) const;

    /** Invalidate everything (used between harness runs). */
    void reset();

    const CacheConfig &config() const { return config_; }
    uint64_t numSets() const { return numSets_; }

    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    uint64_t writebacks() const { return writebacks_; }
    double missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) / accesses_ : 0.0;
    }

    /** Snapshot codec hook (src/ckpt): tag array, LRU clock and
     *  access counters (ckpt/state_serialize.cc). */
    void serialize(ckpt::Archive &ar);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint64_t tag = 0;
        uint64_t lru = 0;
    };

    uint64_t setIndex(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;

    CacheConfig config_;
    uint64_t numSets_;
    unsigned lineShift_;
    std::vector<Line> lines_; // numSets_ x assoc, flattened
    uint64_t lruClock_ = 0;

    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
    uint64_t writebacks_ = 0;
};

/** Main-memory timing: chunked transfer per Table 1. */
struct MemoryConfig
{
    unsigned firstChunkLatency = 100; ///< cycles to the first chunk
    unsigned interChunkLatency = 2;   ///< cycles per additional chunk
    unsigned chunkBytes = 8;          ///< bus transfer granule

    bool operator==(const MemoryConfig &) const = default;
};

/**
 * Two-level hierarchy (split L1I/L1D, unified L2) with Table 1
 * defaults. Returns complete access latencies; fills all levels on the
 * way (inclusive).
 */
class MemoryHierarchy
{
  public:
    struct Config
    {
        CacheConfig l1i{"L1I", 64 * 1024, 2, 32, 1, 1};
        CacheConfig l1d{"L1D", 32 * 1024, 4, 32, 2, 4};
        CacheConfig l2{"L2", 512 * 1024, 4, 64, 10, 1};
        MemoryConfig memory{};

        bool operator==(const Config &) const = default;
    };

    MemoryHierarchy() : MemoryHierarchy(Config{}) {}
    explicit MemoryHierarchy(const Config &config);

    /** Latency in cycles of a data read, with fills. */
    unsigned loadLatency(uint64_t addr);

    /** Latency of a data write (write-allocate, write-back). */
    unsigned storeLatency(uint64_t addr);

    /** Latency of an instruction fetch at `pc`. */
    unsigned fetchLatency(uint64_t pc);

    /** Cycles for main memory to deliver `bytes` (chunked). */
    unsigned memoryLatency(unsigned bytes) const;

    void reset();

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Config &config() const { return config_; }

    /** Snapshot codec hook (src/ckpt): all three cache levels. */
    void serialize(ckpt::Archive &ar);

  private:
    unsigned dataAccess(uint64_t addr, bool is_write);

    Config config_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
};

} // namespace diq::mem

#endif // DIQ_MEM_CACHE_HH

/**
 * @file
 * Deterministic fault injection for the persistence and supervision
 * layers (docs/ARCHITECTURE.md §11).
 *
 * A FaultPlan is a parsed set of probe rules that the result store
 * and the supervised job runner consult at well-defined probe points.
 * Every crash, corruption, delay and failure the robustness tests and
 * CI smokes exercise is spec-driven through this one facility, so a
 * failing scenario is a reproducible command line, never a race.
 *
 * Plan grammar (whitespace-separated clauses; `DIQ_FAULT_PLAN` env or
 * `--fault-plan` flag):
 *
 *   plan   := clause (ws clause)*
 *   clause := probe "=" [match] [":" arg]
 *
 *   fail_job=<match>:<k>            first k attempts of matching jobs
 *                                   throw (retry/quarantine testing)
 *   delay_job=<match>:<ms>          matching jobs sleep ms per attempt
 *                                   (deadline + SIGKILL-window testing)
 *   crash_before_rename=<match>[:n] nth matching store commit exits the
 *                                   process before the atomic rename
 *                                   (torn write: only the temp file
 *                                   survives)
 *   crash_after_rename=<match>[:n]  nth matching commit exits right
 *                                   after the rename (entry durable,
 *                                   everything else lost)
 *   corrupt_entry_byte=<match>:<off> XOR 0x01 into byte <off> of the
 *                                   entry file after commit (negative
 *                                   offsets count from the end)
 *
 * `<match>` is a substring of the job/store key (the canonical spec
 * line); empty matches every key, e.g. `delay_job=:50`.
 */

#ifndef DIQ_FAULT_FAULT_PLAN_HH
#define DIQ_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace diq::fault
{

/**
 * Process exit code of an injected crash — distinct from every exit
 * code in the CLI taxonomy (bench/cli.hh) so harnesses can tell an
 * injected crash from a real failure.
 */
constexpr int kCrashExitCode = 42;

/** Malformed plan text. The message names the offending clause. */
class PlanError : public std::runtime_error
{
  public:
    explicit PlanError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Where in the store's commit sequence a crash probe fires. */
enum class CommitPoint { BeforeRename, AfterRename };

/** Parsed, stateful fault plan. Thread-safe: rule trigger counters
 *  are mutex-guarded, so concurrent workers see each rule fire
 *  exactly its configured number of times. */
class FaultPlan
{
  public:
    /** The empty plan: no probe ever fires. */
    FaultPlan() = default;

    // Movable despite the mutex (a fresh one is default-constructed);
    // moving a plan that other threads are probing is a caller bug.
    FaultPlan(FaultPlan &&other) noexcept
        : text_(std::move(other.text_)),
          rules_(std::move(other.rules_)),
          crashHandler_(std::move(other.crashHandler_))
    {
    }
    FaultPlan &
    operator=(FaultPlan &&other) noexcept
    {
        text_ = std::move(other.text_);
        rules_ = std::move(other.rules_);
        crashHandler_ = std::move(other.crashHandler_);
        return *this;
    }

    /** Parse plan text (see the file comment). @throws PlanError. */
    static FaultPlan parse(const std::string &text);

    /** Parse `DIQ_FAULT_PLAN` if set, else the empty plan. */
    static FaultPlan fromEnv();

    /** True when no clause was given (every probe is a no-op). */
    bool empty() const { return rules_.empty(); }

    /** The plan text this plan was parsed from ("" when empty). */
    const std::string &text() const { return text_; }

    // --- Probe points -----------------------------------------------

    /**
     * Store commit probe: called by ResultStore::save immediately
     * before and after the atomic rename. When a matching crash rule
     * reaches its trigger count, the crash handler runs (default:
     * std::_Exit(kCrashExitCode) — the process dies mid-commit like a
     * SIGKILL would, with no cleanup).
     */
    void atCommit(const std::string &key, CommitPoint point);

    /**
     * Post-commit corruption probe: the byte offset to flip in the
     * just-committed entry file, or nullopt. Negative offsets count
     * back from the file's end.
     */
    std::optional<int64_t> corruptOffset(const std::string &key);

    /** Per-attempt delay in milliseconds for a job (0 = none). */
    uint64_t jobDelayMs(const std::string &key);

    /**
     * True when this attempt of the job must fail (each matching
     * fail_job rule fires at most its first k consultations per key).
     */
    bool shouldFailJob(const std::string &key);

    /**
     * Replace the crash action — unit tests install a throwing
     * handler so an "injected crash" unwinds instead of exiting. The
     * handler receives a description like
     * "crash_before_rename at <key>". A returning handler is treated
     * as "crash suppressed" (the commit continues).
     */
    void setCrashHandler(std::function<void(const std::string &)> fn);

  private:
    enum class Probe
    {
        CrashBeforeRename,
        CrashAfterRename,
        CorruptEntryByte,
        DelayJob,
        FailJob,
    };

    struct Rule
    {
        Probe probe;
        std::string match;  ///< key substring; empty matches all
        int64_t arg = 0;    ///< k / ms / byte offset / trigger ordinal
        uint64_t fired = 0; ///< matching consultations so far
    };

    void crash(const std::string &what);

    std::string text_;
    std::vector<Rule> rules_;
    std::function<void(const std::string &)> crashHandler_;
    std::mutex mu_; ///< guards rules_[i].fired
};

} // namespace diq::fault

#endif // DIQ_FAULT_FAULT_PLAN_HH

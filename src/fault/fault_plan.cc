/**
 * @file
 * Implementation of fault/fault_plan.hh (docs/ARCHITECTURE.md §11).
 */

#include "fault/fault_plan.hh"

#include <cstdlib>
#include <iostream>

namespace diq::fault
{

namespace
{

/** Strict integer parse for a clause argument. @throws PlanError. */
int64_t
parseArg(const std::string &clause, const std::string &text)
{
    size_t digits = text.size();
    if (!text.empty() && text.front() == '-')
        digits -= 1;
    if (digits == 0 ||
        text.find_first_not_of("0123456789", text.front() == '-' ? 1 : 0)
            != std::string::npos)
        throw PlanError("bad fault clause '" + clause +
                        "': argument '" + text + "' is not an integer");
    try {
        return std::stoll(text);
    } catch (const std::exception &) {
        throw PlanError("bad fault clause '" + clause +
                        "': argument '" + text + "' out of range");
    }
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &text)
{
    FaultPlan plan;
    plan.text_ = text;

    size_t at = 0;
    while (at < text.size()) {
        size_t start = text.find_first_not_of(" \t\n", at);
        if (start == std::string::npos)
            break;
        size_t end = text.find_first_of(" \t\n", start);
        if (end == std::string::npos)
            end = text.size();
        std::string clause = text.substr(start, end - start);
        at = end;

        size_t eq = clause.find('=');
        if (eq == std::string::npos)
            throw PlanError("bad fault clause '" + clause +
                            "': want probe=match[:arg]");
        std::string probe = clause.substr(0, eq);
        std::string rest = clause.substr(eq + 1);
        size_t colon = rest.rfind(':');
        std::string match =
            colon == std::string::npos ? rest : rest.substr(0, colon);
        std::string arg =
            colon == std::string::npos ? "" : rest.substr(colon + 1);

        Rule r;
        if (probe == "fail_job") {
            r.probe = Probe::FailJob;
            if (arg.empty())
                throw PlanError("bad fault clause '" + clause +
                                "': fail_job needs a count "
                                "(fail_job=<match>:<k>)");
            r.arg = parseArg(clause, arg);
            if (r.arg < 1)
                throw PlanError("bad fault clause '" + clause +
                                "': count must be >= 1");
        } else if (probe == "delay_job") {
            r.probe = Probe::DelayJob;
            if (arg.empty())
                throw PlanError("bad fault clause '" + clause +
                                "': delay_job needs milliseconds "
                                "(delay_job=<match>:<ms>)");
            r.arg = parseArg(clause, arg);
            if (r.arg < 1)
                throw PlanError("bad fault clause '" + clause +
                                "': delay must be >= 1 ms");
        } else if (probe == "crash_before_rename" ||
                   probe == "crash_after_rename") {
            r.probe = probe == "crash_before_rename"
                ? Probe::CrashBeforeRename
                : Probe::CrashAfterRename;
            r.arg = arg.empty() ? 1 : parseArg(clause, arg);
            if (r.arg < 1)
                throw PlanError("bad fault clause '" + clause +
                                "': crash ordinal must be >= 1");
        } else if (probe == "corrupt_entry_byte") {
            r.probe = Probe::CorruptEntryByte;
            if (arg.empty())
                throw PlanError("bad fault clause '" + clause +
                                "': corrupt_entry_byte needs an offset "
                                "(corrupt_entry_byte=<match>:<off>)");
            r.arg = parseArg(clause, arg);
        } else {
            throw PlanError(
                "unknown fault probe '" + probe +
                "' (known: fail_job delay_job crash_before_rename "
                "crash_after_rename corrupt_entry_byte)");
        }
        r.match = match;
        plan.rules_.push_back(std::move(r));
    }
    return plan;
}

FaultPlan
FaultPlan::fromEnv()
{
    const char *env = std::getenv("DIQ_FAULT_PLAN");
    return env ? parse(env) : FaultPlan{};
}

void
FaultPlan::setCrashHandler(std::function<void(const std::string &)> fn)
{
    crashHandler_ = std::move(fn);
}

void
FaultPlan::crash(const std::string &what)
{
    if (crashHandler_) {
        crashHandler_(what);
        return; // handler returned: crash suppressed
    }
    // Die like a SIGKILL would: no unwinding, no atexit, no flushing
    // of anything except this diagnostic — the whole point is that
    // everything not yet durable is lost.
    std::cerr << "diq: injected crash: " << what << "\n";
    std::cerr.flush();
    std::_Exit(kCrashExitCode);
}

void
FaultPlan::atCommit(const std::string &key, CommitPoint point)
{
    Probe want = point == CommitPoint::BeforeRename
        ? Probe::CrashBeforeRename
        : Probe::CrashAfterRename;
    std::string what;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (Rule &r : rules_) {
            if (r.probe != want ||
                key.find(r.match) == std::string::npos)
                continue;
            // The rule fires on its nth matching commit, once.
            if (++r.fired != static_cast<uint64_t>(r.arg))
                continue;
            what = (point == CommitPoint::BeforeRename
                        ? std::string("crash_before_rename")
                        : std::string("crash_after_rename")) +
                " at " + key;
            break;
        }
    }
    if (!what.empty())
        crash(what); // outside the lock: the handler may throw
}

std::optional<int64_t>
FaultPlan::corruptOffset(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (Rule &r : rules_) {
        if (r.probe != Probe::CorruptEntryByte ||
            key.find(r.match) == std::string::npos)
            continue;
        return r.arg;
    }
    return std::nullopt;
}

uint64_t
FaultPlan::jobDelayMs(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (Rule &r : rules_) {
        if (r.probe != Probe::DelayJob ||
            key.find(r.match) == std::string::npos)
            continue;
        total += static_cast<uint64_t>(r.arg);
    }
    return total;
}

bool
FaultPlan::shouldFailJob(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (Rule &r : rules_) {
        if (r.probe != Probe::FailJob ||
            key.find(r.match) == std::string::npos)
            continue;
        if (r.fired < static_cast<uint64_t>(r.arg)) {
            ++r.fired;
            return true;
        }
    }
    return false;
}

} // namespace diq::fault

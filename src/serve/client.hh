/**
 * @file
 * Client side of the `diq serve` protocol (docs/ARCHITECTURE.md §12).
 *
 * A thin synchronous connection used by the `diq submit`, `diq
 * status` and `diq shutdown` verbs (and by tests): connect to the
 * server's Unix-domain socket, complete the versioned hello
 * handshake, then issue requests. submit() streams per-row results to
 * a callback as the server completes them — the caller re-renders the
 * CSV locally from the decoded entries, which is what makes
 * server-side output byte-identical to serverless `diq sweep`.
 */

#ifndef DIQ_SERVE_CLIENT_HH
#define DIQ_SERVE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runner/sim_job.hh"

namespace diq::serve
{

/** Connection/protocol failure talking to a server: no listener,
 *  handshake reject, torn stream, malformed frame. */
class ClientError : public std::runtime_error
{
  public:
    explicit ClientError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** The server rejected the submit at admission control (backlog
 *  full). Maps to the documented `server_busy` exit code. */
class ServerBusy : public ClientError
{
  public:
    ServerBusy(size_t pending, size_t limit)
        : ClientError("server busy: " + std::to_string(pending) +
                      " job(s) pending (limit " +
                      std::to_string(limit) + "); retry later"),
          pending(pending), limit(limit)
    {
    }

    size_t pending;
    size_t limit;
};

/** One streamed result row. `result` is engaged on success; on
 *  failure `error` carries the server's sanitized reason. */
struct RowOutcome
{
    size_t index = 0; ///< position in the submitted grid (spec order)
    std::string key;  ///< canonical spec line (empty on failure)
    std::optional<runner::SimResult> result;
    unsigned attempts = 0; ///< supervision attempts (failed rows)
    std::string error;
};

/** The server's per-request accounting from its `done` frame. */
struct SubmitSummary
{
    size_t points = 0;
    uint64_t storeHits = 0; ///< rows served from the warm store
    uint64_t attached = 0;  ///< rows deduped onto another client's job
    uint64_t computed = 0;  ///< rows computed for this request
    uint64_t failed = 0;    ///< rows whose job exhausted its policy
};

/**
 * One connected, handshaken client session. Not thread-safe: one
 * request at a time per connection (open more connections to overlap,
 * which is exactly what the concurrency tests do).
 */
class ServeClient
{
  public:
    /** Connect + hello. @throws ClientError when nothing listens on
     *  `socketPath` or the server speaks another version. */
    explicit ServeClient(const std::string &socketPath);
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Called once per grid point, in completion (not spec) order. */
    using RowHandler = std::function<void(const RowOutcome &)>;

    /**
     * Submit one grid and stream its rows into `onRow` until the
     * server's `done` frame.
     * @throws ServerBusy on an admission-control reject, ClientError
     *         on a server-reported error (e.g. grid parse failure) or
     *         a torn connection.
     */
    SubmitSummary submit(uint64_t warmup, uint64_t insts,
                         const std::string &grid,
                         const RowHandler &onRow);

    /** Server+dispatcher+store counters, in the server's key order. */
    std::vector<std::pair<std::string, std::string>> status();

    /** Ask the server to stop (waits for its `bye`). */
    void shutdown();

    /** Pid the server reported in its hello reply. */
    long serverPid() const { return serverPid_; }

    /** True iff a live, version-compatible server answers on the
     *  socket (connect + handshake, then disconnect). */
    static bool ping(const std::string &socketPath);

  private:
    std::string readReply(const char *context);

    int fd_ = -1;
    long serverPid_ = 0;
};

} // namespace diq::serve

#endif // DIQ_SERVE_CLIENT_HH

/**
 * @file
 * The `diq serve` daemon (docs/ARCHITECTURE.md §12).
 *
 * A long-running process that owns one persistent result store
 * (exclusively, via store::StoreLock) and one JIQ Dispatcher, and
 * serves spec/grid requests from any number of concurrent clients
 * over a Unix-domain socket speaking serve/protocol.hh. Each
 * connection is handled on its own thread; per-point results stream
 * back to the client as they complete, identical in-flight requests
 * from different clients attach to one computation, warm keys are
 * served straight from the store, and a full backlog is rejected
 * with a `busy` frame (admission control).
 *
 * Campaign durability: every accepted submit is journaled
 * (`<store>/serve.journal`) before any job is dispatched and marked
 * done after its last row. A server that dies mid-campaign (SIGKILL
 * included) replays the open campaigns through the dispatcher at
 * next startup — completed points are store hits, missing points are
 * recomputed — so a resubmitting client finds a warm store, and the
 * campaign's CSV is byte-identical to an uninterrupted run.
 */

#ifndef DIQ_SERVE_SERVER_HH
#define DIQ_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_plan.hh"
#include "runner/supervisor.hh"
#include "serve/dispatcher.hh"
#include "store/result_store.hh"

namespace diq::serve
{

/** Configuration for one server instance. */
struct ServerOptions
{
    /** Unix-domain socket path to listen on. */
    std::string socketPath;

    /** Persistent store root (locked exclusively for the server's
     *  lifetime). */
    std::string storeDir = ".diq-store";

    /** Dispatcher worker threads; 0 = hardware concurrency. */
    unsigned workers = 0;

    /** Bounded backlog; a submit finding it full is rejected. */
    size_t pendingMax = 64;

    /** Supervision policy for every computed job. */
    runner::JobPolicy policy;

    /** Fault injection (tests/smokes); must outlive the server. */
    fault::FaultPlan *faults = nullptr;

    /** Progress log (stderr in the CLI); nullptr = silent. */
    std::ostream *log = nullptr;
};

/** Server startup failure: socket in use, unbindable path, lock held
 *  by a live process (store::StoreError passes through unchanged). */
class ServeError : public std::runtime_error
{
  public:
    explicit ServeError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * The daemon. Constructing acquires the store lock, binds the
 * socket, and synchronously recovers journaled open campaigns;
 * run() then accepts clients until requestStop().
 */
class Server
{
  public:
    /** @throws ServeError / store::StoreError on an unusable socket
     *  path, a live lock holder, or an unusable store. */
    explicit Server(ServerOptions opts);

    /** Stops and joins everything still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Accept-and-serve loop; returns after requestStop(). */
    void run();

    /**
     * Ask the accept loop to exit and connections to wind down.
     * Callable from any thread and from a signal handler (it only
     * touches an atomic and shuts down the listen socket).
     */
    void requestStop();

    const ServerOptions &options() const { return opts_; }
    Dispatcher &dispatcher() { return *dispatcher_; }
    store::ResultStore &store() { return *store_; }

    /** Campaigns replayed by startup recovery (for logs/tests). */
    size_t recoveredCampaigns() const { return recovered_; }

  private:
    void handleConnection(int fd);
    void handleSubmit(int fd, const std::string &payload);
    void handleStatus(int fd);
    void recoverJournal();
    void journalAppend(const std::string &line);
    std::string campaignId(uint64_t warmup, uint64_t insts,
                           const std::string &grid) const;
    void log(const std::string &line);

    ServerOptions opts_;
    std::optional<store::StoreLock> lock_;
    std::unique_ptr<store::ResultStore> store_;
    std::unique_ptr<Dispatcher> dispatcher_;

    std::filesystem::path journalPath_;
    std::mutex journalMu_;

    int listenFd_ = -1;
    std::atomic<bool> stop_{false};

    std::mutex connMu_;
    std::vector<int> connFds_;
    std::vector<std::thread> connThreads_;

    size_t recovered_ = 0;
};

} // namespace diq::serve

#endif // DIQ_SERVE_SERVER_HH

/**
 * @file
 * Implementation of serve/dispatcher.hh (docs/ARCHITECTURE.md §12).
 *
 * Lock order: the dispatcher lock `mu_` may be held while taking a
 * worker's mailbox lock (assign), never the other way around —
 * workers take `mu_` only after releasing their own.
 */

#include "serve/dispatcher.hh"

#include "store/result_store.hh"

namespace diq::serve
{

namespace
{

/** Collapse an error to one CSV/journal-safe line (the same rule
 *  the supervisor applies to quarantine reasons). */
std::string
sanitizeError(std::string text)
{
    for (char &c : text)
        if (c == '\t' || c == '\n' || c == '\r' || c == ',')
            c = ' ';
    return text;
}

} // namespace

Dispatcher::Dispatcher(DispatcherOptions opts) : opts_(opts)
{
    unsigned n = opts_.workers;
    if (n == 0)
        n = std::thread::hardware_concurrency();
    if (n == 0)
        n = 1;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    for (unsigned i = 0; i < n; ++i)
        workers_[i]->thread = std::thread([this, i] { workerLoop(i); });
}

Dispatcher::~Dispatcher()
{
    shutdown();
}

Admission
Dispatcher::submit(const runner::SimJob &job, Callback cb)
{
    const std::string key = job.key();

    // Dedupe first: a computation already in flight is strictly
    // better than even a store probe (its result is coming, and it
    // will have saved to the store before we are woken).
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_.load(std::memory_order_relaxed)) {
            ++counters_.rejectedBusy;
            return Admission::Busy;
        }
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            it->second->waiters.push_back(std::move(cb));
            ++counters_.dedupeAttached;
            return Admission::Attached;
        }
    }

    // Store-first: warm keys stream back on the submitting thread
    // without touching a worker. (Disk I/O outside the lock.)
    if (opts_.store) {
        if (auto hit = opts_.store->load(key)) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.storeHits;
            }
            JobReply reply;
            reply.key = key;
            reply.fromStore = true;
            reply.result = std::move(*hit);
            if (cb)
                cb(reply);
            return Admission::StoreHit;
        }
    }

    FlightPtr flight = std::make_shared<Flight>();
    flight->job = job;
    flight->waiters.push_back(std::move(cb));

    unsigned target = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_.load(std::memory_order_relaxed)) {
            ++counters_.rejectedBusy;
            return Admission::Busy;
        }
        auto [it, inserted] = inflight_.try_emplace(key, flight);
        if (!inserted) {
            // Raced with an identical submit between the two lock
            // sections: attach to the winner's flight.
            it->second->waiters.push_back(
                std::move(flight->waiters.front()));
            ++counters_.dedupeAttached;
            return Admission::Attached;
        }
        if (!idle_.empty()) {
            target = idle_.back();
            idle_.pop_back();
            ++counters_.dispatchedIdle;
        } else if (pending_.size() < opts_.pendingMax) {
            pending_.push_back(flight);
            ++counters_.queued;
            return Admission::Queued;
        } else {
            inflight_.erase(key);
            ++counters_.rejectedBusy;
            return Admission::Busy;
        }
    }
    assign(target, std::move(flight));
    return Admission::Dispatched;
}

void
Dispatcher::assign(unsigned id, FlightPtr flight)
{
    Worker &w = *workers_[id];
    {
        std::lock_guard<std::mutex> lock(w.mu);
        w.assigned = std::move(flight);
    }
    w.cv.notify_one();
}

void
Dispatcher::runFlight(const FlightPtr &flight)
{
    JobReply reply;
    reply.key = flight->job.key();
    try {
        runner::Supervised s = runner::superviseJob(
            flight->job, opts_.policy, opts_.faults);
        reply.attempts = s.attempts;
        reply.result = std::move(s.result);
    } catch (const runner::JobQuarantined &q) {
        reply.attempts = q.attempts;
        reply.error = q.error;
    } catch (const std::exception &e) {
        reply.attempts = 1;
        reply.error = sanitizeError(e.what());
    }

    // Persist before waking waiters, so any resubmission arriving
    // after the flight leaves the dedupe table finds a warm store.
    // A store that cannot persist (disk full) does not fail the job:
    // the computed result is still delivered.
    if (reply.result && opts_.store) {
        try {
            opts_.store->save(reply.key, *reply.result);
        } catch (const store::StoreError &) {
        }
    }

    std::vector<Callback> waiters;
    {
        std::lock_guard<std::mutex> lock(mu_);
        inflight_.erase(reply.key);
        waiters = std::move(flight->waiters);
        if (reply.result)
            ++counters_.computed;
        else
            ++counters_.quarantined;
    }
    for (Callback &cb : waiters)
        if (cb)
            cb(reply);
}

void
Dispatcher::workerLoop(unsigned id)
{
    Worker &me = *workers_[id];

    while (true) {
        // Drain the backlog (oldest first) before registering idle —
        // the JIQ rule that keeps the pending queue short whenever
        // any worker is free. Checking pending first also covers the
        // startup window: a job queued before this worker ever
        // registered is picked up here, not stranded.
        FlightPtr flight;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (stop_.load(std::memory_order_relaxed))
                return;
            if (!pending_.empty()) {
                flight = pending_.front();
                pending_.pop_front();
            } else {
                idle_.push_back(id);
            }
        }
        if (flight) {
            runFlight(flight);
            continue;
        }

        // Registered idle: wait for a direct hand-off.
        {
            std::unique_lock<std::mutex> lock(me.mu);
            me.cv.wait(lock, [&] {
                return me.assigned != nullptr ||
                    stop_.load(std::memory_order_relaxed);
            });
            flight = std::move(me.assigned);
            me.assigned = nullptr;
        }
        if (!flight)
            return; // stopping, nothing assigned
        runFlight(flight);
    }
}

void
Dispatcher::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_.exchange(true, std::memory_order_relaxed))
            return; // already shut down
        idle_.clear();
    }
    for (auto &w : workers_) {
        std::lock_guard<std::mutex> lock(w->mu);
        w->cv.notify_all();
    }
    for (auto &w : workers_)
        if (w->thread.joinable())
            w->thread.join();

    // Flights the workers never reached (still pending, or assigned
    // in the closing race): fail their waiters explicitly rather
    // than leaving them waiting forever.
    std::map<std::string, FlightPtr> leftover;
    {
        std::lock_guard<std::mutex> lock(mu_);
        leftover.swap(inflight_);
        pending_.clear();
    }
    for (auto &w : workers_) {
        std::lock_guard<std::mutex> lock(w->mu);
        if (w->assigned) {
            leftover.try_emplace(w->assigned->job.key(), w->assigned);
            w->assigned = nullptr;
        }
    }
    for (auto &[key, flight] : leftover) {
        JobReply reply;
        reply.key = key;
        reply.error = "dispatcher shutting down";
        for (Callback &cb : flight->waiters)
            if (cb)
                cb(reply);
    }

    // Deadline-abandoned attempt threads park on the supervisor
    // reaper; join them before our owner tears down the fault plan
    // and store they may still reference.
    runner::drainSupervisor();
}

DispatchCounters
Dispatcher::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

size_t
Dispatcher::pendingCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
}

size_t
Dispatcher::idleCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return idle_.size();
}

size_t
Dispatcher::inFlightCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_.size();
}

} // namespace diq::serve

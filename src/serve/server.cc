/**
 * @file
 * Implementation of serve/server.hh (docs/ARCHITECTURE.md §12).
 */

#include "serve/server.hh"

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "runner/sweep_spec.hh"
#include "serve/protocol.hh"

namespace diq::serve
{

namespace fs = std::filesystem;

namespace
{

constexpr const char *kServeJournalHeader = "diq-serve-journal v1";

std::string
hexId(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "h%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** One submit request's reply funnel: worker threads push, the
 *  connection thread pops and writes frames. Shared-ptr-held so
 *  late callbacks outlive an aborted request harmlessly. */
struct ReplySink
{
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<size_t, JobReply>> ready;

    void
    push(size_t index, const JobReply &reply)
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            ready.emplace_back(index, reply);
        }
        cv.notify_one();
    }

    std::pair<size_t, JobReply>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return !ready.empty(); });
        auto out = std::move(ready.front());
        ready.pop_front();
        return out;
    }
};

/** Parse one u64 protocol field. @throws ServeError on junk. */
uint64_t
parseU64Field(const std::string &text, const char *what)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        throw ServeError(std::string("bad ") + what + " field '" +
                         text + "'");
    return std::stoull(text);
}

} // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts))
{
    if (opts_.socketPath.empty())
        throw ServeError("no socket path given");

    // Writers are exclusive per store: the lock is what lets the
    // dispatcher assume nobody else interleaves entry commits.
    lock_.emplace(opts_.storeDir);
    store_ = std::make_unique<store::ResultStore>(opts_.storeDir,
                                                  opts_.faults);

    DispatcherOptions d;
    d.workers = opts_.workers;
    d.pendingMax = opts_.pendingMax;
    d.policy = opts_.policy;
    d.store = store_.get();
    d.faults = opts_.faults;
    dispatcher_ = std::make_unique<Dispatcher>(d);

    journalPath_ = store_->root() / "serve.journal";
    recoverJournal();

    // Bind the socket. A leftover path from a SIGKILLed server is
    // unlinked once we prove nothing answers on it.
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.socketPath.size() >= sizeof addr.sun_path)
        throw ServeError("socket path too long: '" + opts_.socketPath +
                         "' (" + std::to_string(sizeof addr.sun_path - 1) +
                         " byte max)");
    std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                opts_.socketPath.size() + 1);

    std::error_code ec;
    if (fs::exists(opts_.socketPath, ec)) {
        int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (probe >= 0) {
            bool alive = ::connect(probe,
                                   reinterpret_cast<sockaddr *>(&addr),
                                   sizeof addr) == 0;
            ::close(probe);
            if (alive)
                throw ServeError("a server is already listening on '" +
                                 opts_.socketPath + "'");
        }
        fs::remove(opts_.socketPath, ec);
    }

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        throw ServeError(std::string("cannot create socket: ") +
                         std::strerror(errno));
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        int e = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        throw ServeError("cannot bind '" + opts_.socketPath +
                         "': " + std::strerror(e));
    }
    if (::listen(listenFd_, 64) != 0) {
        int e = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        throw ServeError("cannot listen on '" + opts_.socketPath +
                         "': " + std::strerror(e));
    }
}

Server::~Server()
{
    requestStop();

    {
        std::lock_guard<std::mutex> lock(connMu_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    if (dispatcher_)
        dispatcher_->shutdown();
    for (std::thread &t : connThreads_)
        if (t.joinable())
            t.join();

    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    std::error_code ec;
    fs::remove(opts_.socketPath, ec);
}

void
Server::requestStop()
{
    stop_.store(true, std::memory_order_relaxed);
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR); // async-signal-safe wake-up
}

void
Server::log(const std::string &line)
{
    if (opts_.log)
        *opts_.log << "diq serve: " << line << "\n" << std::flush;
}

void
Server::run()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd p{listenFd_, POLLIN, 0};
        int n = ::poll(&p, 1, 200);
        if (n < 0 && errno != EINTR)
            break;
        if (n <= 0 || !(p.revents & (POLLIN | POLLHUP | POLLERR)))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue; // racing shutdown() or transient error
        std::lock_guard<std::mutex> lock(connMu_);
        connFds_.push_back(fd);
        connThreads_.emplace_back(
            [this, fd] { handleConnection(fd); });
    }
}

void
Server::handleConnection(int fd)
{
    try {
        auto hello = readFrame(fd);
        if (!hello) {
            // Peer connected and left (a liveness probe): fine.
        } else {
            std::string reject = checkHello(*hello);
            if (!reject.empty()) {
                writeFrame(fd, reject);
            } else {
                writeFrame(fd, helloOkLine());
                while (auto frame = readFrame(fd)) {
                    std::string verb =
                        splitFields(*frame, 2).front();
                    if (verb == "submit") {
                        handleSubmit(fd, *frame);
                    } else if (verb == "status") {
                        handleStatus(fd);
                    } else if (verb == "shutdown") {
                        writeFrame(fd, "bye");
                        log("shutdown requested by client");
                        requestStop();
                        break;
                    } else {
                        writeFrame(fd, "error\tunknown verb '" + verb +
                                           "'");
                    }
                }
            }
        }
    } catch (const std::exception &) {
        // Torn connection or write-after-close during shutdown: the
        // peer is gone either way; nothing left to report to it.
    }

    {
        std::lock_guard<std::mutex> lock(connMu_);
        for (size_t i = 0; i < connFds_.size(); ++i)
            if (connFds_[i] == fd) {
                connFds_.erase(connFds_.begin() +
                               static_cast<long>(i));
                break;
            }
    }
    ::close(fd);
}

std::string
Server::campaignId(uint64_t warmup, uint64_t insts,
                   const std::string &grid) const
{
    std::string line = std::to_string(warmup) + "|" +
        std::to_string(insts) + "|" + grid;
    return hexId(store::fnv1a64(line.data(), line.size()));
}

void
Server::journalAppend(const std::string &line)
{
    std::lock_guard<std::mutex> lock(journalMu_);
    std::ofstream out(journalPath_, std::ios::app | std::ios::binary);
    out << line << '\n';
    out.flush();
}

void
Server::handleSubmit(int fd, const std::string &payload)
{
    std::vector<std::string> f = splitFields(payload, 4);
    if (f.size() != 4) {
        writeFrame(fd, "error\tmalformed submit frame");
        return;
    }

    runner::SweepSpec grid;
    uint64_t warmup = 0, insts = 0;
    std::string gridText = f[3];
    try {
        warmup = parseU64Field(f[1], "warmup");
        insts = parseU64Field(f[2], "insts");
        if (insts == 0)
            throw ServeError("insts must be positive");
        grid = runner::SweepSpec::fromText(gridText);
        if (grid.empty())
            throw ServeError("empty grid");
    } catch (const std::exception &e) {
        std::string reason = e.what();
        for (char &c : reason)
            if (c == '\t' || c == '\n' || c == '\r')
                c = ' ';
        writeFrame(fd, "error\t" + reason);
        return;
    }

    // Journal the campaign before the first dispatch: a server killed
    // from here on replays it at next startup.
    const std::string id = campaignId(warmup, insts, gridText);
    journalAppend("begin\t" + id + "\t" + std::to_string(warmup) +
                  "\t" + std::to_string(insts) + "\t" + gridText);
    log("submit " + id + ": " + std::to_string(grid.size()) +
        " point(s), grid \"" + gridText + "\"");

    auto sink = std::make_shared<ReplySink>();
    size_t admitted = 0, storeHits = 0, attached = 0;
    std::vector<Admission> admissions;
    admissions.reserve(grid.size());
    bool rejected = false;
    for (size_t i = 0; i < grid.size() && !rejected; ++i) {
        const auto &[exp, profile] = grid.points()[i];
        runner::SimJob job;
        job.exp = exp;
        job.exp.benchmark = profile.name;
        job.exp.warmupInsts = warmup;
        job.exp.measureInsts = insts;
        job.profile = profile;

        Admission a = dispatcher_->submit(
            job, [sink, i](const JobReply &reply) {
                sink->push(i, reply);
            });
        switch (a) {
          case Admission::Busy:
            // Admission-control reject: report and abandon the
            // request. Points already admitted keep running and land
            // in the store; the open journal entry re-drives the
            // campaign at next startup if we die first.
            writeFrame(fd, "busy\t" +
                               std::to_string(
                                   dispatcher_->pendingCount()) +
                               "\t" +
                               std::to_string(opts_.pendingMax));
            rejected = true;
            continue;
          case Admission::StoreHit:
            ++storeHits;
            break;
          case Admission::Attached:
            ++attached;
            break;
          case Admission::Dispatched:
          case Admission::Queued:
            break;
        }
        admissions.push_back(a);
        ++admitted;
    }
    if (rejected)
        return;

    // Stream rows back in completion order; the client reassembles
    // spec order from the index.
    size_t computed = 0, failed = 0;
    for (size_t received = 0; received < admitted; ++received) {
        auto [index, reply] = sink->pop();
        if (reply.result) {
            if (!reply.fromStore &&
                admissions[index] != Admission::Attached)
                ++computed;
            writeFrame(fd, "row\t" + std::to_string(index) + "\t" +
                               store::encodeEntry(reply.key,
                                                  *reply.result));
        } else {
            ++failed;
            writeFrame(fd, "failrow\t" + std::to_string(index) +
                               "\t" +
                               std::to_string(reply.attempts) + "\t" +
                               reply.error);
        }
    }

    journalAppend("end\t" + id);
    writeFrame(fd, "done\t" + std::to_string(admitted) +
                       "\tstore_hits=" + std::to_string(storeHits) +
                       "\tattached=" + std::to_string(attached) +
                       "\tcomputed=" + std::to_string(computed) +
                       "\tfailed=" + std::to_string(failed));
    log("submit " + id + " done: " + std::to_string(storeHits) +
        " store hit(s), " + std::to_string(attached) +
        " attached, " + std::to_string(computed) + " computed, " +
        std::to_string(failed) + " failed");
}

void
Server::handleStatus(int fd)
{
    DispatchCounters c = dispatcher_->counters();
    store::ResultStore::Stats s = store_->stats();
    std::ostringstream os;
    os << "stats"
       << "\tpid=" << static_cast<long>(::getpid())
       << "\tworkers=" << dispatcher_->workerCount()
       << "\tidle=" << dispatcher_->idleCount()
       << "\tpending=" << dispatcher_->pendingCount()
       << "\tpending_max=" << opts_.pendingMax
       << "\tinflight=" << dispatcher_->inFlightCount()
       << "\tstore_hits=" << c.storeHits
       << "\tcomputed=" << c.computed
       << "\tdedupe_attached=" << c.dedupeAttached
       << "\trejected_busy=" << c.rejectedBusy
       << "\tdispatched_idle=" << c.dispatchedIdle
       << "\tqueued=" << c.queued
       << "\tquarantined=" << c.quarantined
       << "\tstore_entries=" << s.entries
       << "\tstore_bytes=" << s.entryBytes
       << "\tstore_quarantined=" << s.quarantined
       << "\trecovered_campaigns=" << recovered_;
    writeFrame(fd, os.str());
}

void
Server::recoverJournal()
{
    std::ifstream in(journalPath_, std::ios::binary);
    if (!in)
        return; // fresh store: nothing journaled yet

    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();
    // Drop a torn final line (the crash window): its campaign simply
    // stays open and is recovered like any other.
    size_t complete = content.rfind('\n');
    content = complete == std::string::npos
        ? std::string{}
        : content.substr(0, complete + 1);

    struct Campaign
    {
        uint64_t warmup = 0, insts = 0;
        std::string grid;
        long open = 0; ///< begin count minus end count
    };
    std::map<std::string, Campaign> campaigns;
    std::istringstream lines(content);
    std::string line;
    while (std::getline(lines, line)) {
        std::vector<std::string> f = splitFields(line, 5);
        if (f[0] == "begin" && f.size() == 5) {
            try {
                Campaign &c = campaigns[f[1]];
                c.warmup = parseU64Field(f[2], "warmup");
                c.insts = parseU64Field(f[3], "insts");
                c.grid = f[4];
                ++c.open;
            } catch (const std::exception &) {
                // Garbled record: skip (forward compatibility).
            }
        } else if (f[0] == "end" && f.size() >= 2) {
            auto it = campaigns.find(f[1]);
            if (it != campaigns.end())
                --it->second.open;
        }
    }

    for (const auto &[id, c] : campaigns) {
        if (c.open <= 0 || c.insts == 0)
            continue;
        try {
            runner::SweepSpec grid =
                runner::SweepSpec::fromText(c.grid);
            log("recovering campaign " + id + " (" +
                std::to_string(grid.size()) + " point(s), grid \"" +
                c.grid + "\")");
            auto sink = std::make_shared<ReplySink>();
            size_t n = 0;
            for (const auto &[exp, profile] : grid.points()) {
                runner::SimJob job;
                job.exp = exp;
                job.exp.benchmark = profile.name;
                job.exp.warmupInsts = c.warmup;
                job.exp.measureInsts = c.insts;
                job.profile = profile;
                // Recovery bypasses admission control: the backlog
                // bound protects interactive latency, and nobody is
                // waiting on these rows. Submit points one at a time,
                // waiting whenever the pool would reject.
                while (dispatcher_->submit(
                           job,
                           [sink](const JobReply &reply) {
                               sink->push(0, reply);
                           }) == Admission::Busy) {
                    sink->pop();
                    ++n; // consumed one outstanding completion
                }
            }
            for (size_t done = n; done < grid.size(); ++done)
                sink->pop();
            ++recovered_;
        } catch (const std::exception &e) {
            log("cannot recover campaign " + id + ": " + e.what());
        }
    }

    // Every campaign is now closed: compact the journal to its
    // header so it does not grow across restarts.
    std::lock_guard<std::mutex> lock(journalMu_);
    std::ofstream out(journalPath_, std::ios::trunc | std::ios::binary);
    out << kServeJournalHeader << '\n';
    out.flush();
}

} // namespace diq::serve

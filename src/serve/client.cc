/**
 * @file
 * Implementation of serve/client.hh (docs/ARCHITECTURE.md §12).
 */

#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.hh"
#include "store/result_store.hh"

namespace diq::serve
{

namespace
{

/** Parse the numeric value of one `k=v` protocol field; 0 on junk
 *  (counters are best-effort diagnostics, not control flow). */
uint64_t
kvValue(const std::string &field)
{
    size_t eq = field.find('=');
    if (eq == std::string::npos)
        return 0;
    try {
        return std::stoull(field.substr(eq + 1));
    } catch (const std::exception &) {
        return 0;
    }
}

uint64_t
parseCount(const std::string &text)
{
    try {
        return std::stoull(text);
    } catch (const std::exception &) {
        return 0;
    }
}

} // namespace

ServeClient::ServeClient(const std::string &socketPath)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.empty() || socketPath.size() >= sizeof addr.sun_path)
        throw ClientError("bad socket path '" + socketPath + "'");
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        throw ClientError(std::string("cannot create socket: ") +
                          std::strerror(errno));
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        int e = errno;
        ::close(fd_);
        fd_ = -1;
        throw ClientError("cannot connect to '" + socketPath +
                          "': " + std::strerror(e) +
                          " (is `diq serve` running?)");
    }

    try {
        writeFrame(fd_, helloLine());
        std::string reply = readReply("hello");
        std::vector<std::string> f = splitFields(reply, 4);
        if (f[0] != "ok")
            throw ClientError("server rejected handshake: " +
                              (f[0] == "error" && f.size() > 1
                                   ? f[1]
                                   : reply));
        if (f.size() >= 4)
            serverPid_ = static_cast<long>(parseCount(f[3]));
    } catch (...) {
        ::close(fd_);
        fd_ = -1;
        throw;
    }
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
ServeClient::readReply(const char *context)
{
    try {
        auto frame = readFrame(fd_);
        if (!frame)
            throw ClientError(std::string("server closed the "
                                          "connection during ") +
                              context);
        return *frame;
    } catch (const ProtocolError &e) {
        throw ClientError(std::string(e.what()) + " (during " +
                          context + ")");
    }
}

SubmitSummary
ServeClient::submit(uint64_t warmup, uint64_t insts,
                    const std::string &grid, const RowHandler &onRow)
{
    writeFrame(fd_, "submit\t" + std::to_string(warmup) + "\t" +
                        std::to_string(insts) + "\t" + grid);

    while (true) {
        std::string reply = readReply("submit");
        std::vector<std::string> head = splitFields(reply, 2);
        const std::string &verb = head[0];

        if (verb == "row") {
            // Final field is the raw entry image (may contain tabs).
            std::vector<std::string> f = splitFields(reply, 3);
            if (f.size() != 3)
                throw ClientError("malformed row frame");
            RowOutcome row;
            row.index = static_cast<size_t>(parseCount(f[1]));
            runner::SimResult result;
            if (store::decodeEntry(f[2], row.key, result) !=
                store::EntryStatus::Valid)
                throw ClientError(
                    "row " + f[1] +
                    " failed entry validation in transit");
            row.result = std::move(result);
            if (onRow)
                onRow(row);
        } else if (verb == "failrow") {
            std::vector<std::string> f = splitFields(reply, 4);
            if (f.size() != 4)
                throw ClientError("malformed failrow frame");
            RowOutcome row;
            row.index = static_cast<size_t>(parseCount(f[1]));
            row.attempts = static_cast<unsigned>(parseCount(f[2]));
            row.error = f[3];
            if (onRow)
                onRow(row);
        } else if (verb == "done") {
            std::vector<std::string> f = splitFields(reply, 8);
            SubmitSummary s;
            if (f.size() >= 2)
                s.points = static_cast<size_t>(parseCount(f[1]));
            for (size_t i = 2; i < f.size(); ++i) {
                if (f[i].rfind("store_hits=", 0) == 0)
                    s.storeHits = kvValue(f[i]);
                else if (f[i].rfind("attached=", 0) == 0)
                    s.attached = kvValue(f[i]);
                else if (f[i].rfind("computed=", 0) == 0)
                    s.computed = kvValue(f[i]);
                else if (f[i].rfind("failed=", 0) == 0)
                    s.failed = kvValue(f[i]);
            }
            return s;
        } else if (verb == "busy") {
            std::vector<std::string> f = splitFields(reply, 3);
            throw ServerBusy(
                f.size() > 1 ? parseCount(f[1]) : 0,
                f.size() > 2 ? parseCount(f[2]) : 0);
        } else if (verb == "error") {
            throw ClientError("server error: " +
                              (head.size() > 1 ? head[1] : reply));
        } else {
            throw ClientError("unexpected frame '" + verb +
                              "' during submit");
        }
    }
}

std::vector<std::pair<std::string, std::string>>
ServeClient::status()
{
    writeFrame(fd_, "status");
    std::string reply = readReply("status");
    std::vector<std::string> f = splitFields(reply, 64);
    if (f.empty() || f[0] != "stats")
        throw ClientError("unexpected status reply: " + reply);
    std::vector<std::pair<std::string, std::string>> out;
    for (size_t i = 1; i < f.size(); ++i) {
        size_t eq = f[i].find('=');
        if (eq == std::string::npos)
            continue;
        out.emplace_back(f[i].substr(0, eq), f[i].substr(eq + 1));
    }
    return out;
}

void
ServeClient::shutdown()
{
    writeFrame(fd_, "shutdown");
    std::string reply = readReply("shutdown");
    if (reply != "bye")
        throw ClientError("unexpected shutdown reply: " + reply);
}

bool
ServeClient::ping(const std::string &socketPath)
{
    try {
        ServeClient probe(socketPath);
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace diq::serve

/**
 * @file
 * Join-the-idle-queue job dispatcher for `diq serve`
 * (docs/ARCHITECTURE.md §12).
 *
 * The dispatcher owns the server's worker pool and assigns jobs the
 * way "Distributed Join-the-Idle-Queue for Low Latency Cloud
 * Services" (PAPERS.md) assigns requests: workers that finish their
 * work *register on an idle list*, and an arriving job is handed
 * directly to one registered idle worker's private mailbox — never
 * broadcast to a shared queue that every worker polls. Only when no
 * worker is idle does a job wait, on a *bounded* pending backlog; a
 * worker that completes drains the backlog (oldest first) before
 * re-registering idle. A full backlog is an admission-control
 * reject: the caller gets `Admission::Busy` and nothing is queued,
 * so overload sheds load at the door instead of growing latency
 * without bound.
 *
 * Job flow for one submitted spec (key = canonical spec line):
 *
 *             submit(job, cb)
 *                  |
 *         in-flight for key? --yes--> attach cb (dedupe: one
 *                  |                  computation, every waiter
 *                  no                 gets the result)
 *                  |
 *         store has key? ----yes----> cb(result) immediately
 *                  |                  (store-first: warm requests
 *                  no                 never touch a worker)
 *                  |
 *         idle worker? ------yes----> hand to its mailbox (JIQ)
 *                  |
 *         backlog space? ----yes----> append to pending
 *                  |
 *                  no --------------> Admission::Busy
 *
 * Every computed job runs through runner::superviseJob under the
 * configured retry/deadline/poison policy and is saved to the store
 * before its waiters are woken, so a concurrent resubmission of the
 * same key after completion is a store hit, never a recompute.
 */

#ifndef DIQ_SERVE_DISPATCHER_HH
#define DIQ_SERVE_DISPATCHER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runner/sim_job.hh"
#include "runner/supervisor.hh"

namespace diq::store
{
class ResultStore;
}

namespace diq::serve
{

/** Pool shape and job policy for a dispatcher. */
struct DispatcherOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned workers = 0;

    /** Bounded backlog; a submit that finds it full is rejected. */
    size_t pendingMax = 64;

    /** Retry/backoff/deadline bounds for each computed job. */
    runner::JobPolicy policy;

    /** Persistent store consulted before dispatch and updated after
     *  compute; nullptr = compute-only. Must outlive the dispatcher. */
    store::ResultStore *store = nullptr;

    /** Fault injection threaded into supervised attempts; must
     *  outlive the dispatcher. */
    fault::FaultPlan *faults = nullptr;
};

/** How a submit was admitted (the server's per-request accounting). */
enum class Admission
{
    StoreHit,   ///< served from the store, callback already ran
    Attached,   ///< joined an identical in-flight computation
    Dispatched, ///< handed directly to an idle worker (JIQ)
    Queued,     ///< no idle worker; appended to the bounded backlog
    Busy,       ///< backlog full: admission-control reject
};

/** Monotonic dispatcher counters (exposed via `diq cache stats`). */
struct DispatchCounters
{
    uint64_t storeHits = 0;      ///< submits served from the store
    uint64_t computed = 0;       ///< jobs computed by a worker
    uint64_t dedupeAttached = 0; ///< submits that joined a flight
    uint64_t rejectedBusy = 0;   ///< admission-control rejects
    uint64_t dispatchedIdle = 0; ///< jobs handed straight to a worker
    uint64_t queued = 0;         ///< jobs that waited in the backlog
    uint64_t quarantined = 0;    ///< jobs that exhausted their policy
};

/** Terminal outcome of one submitted job, delivered to every waiter.
 *  `result` is engaged exactly when the job succeeded. */
struct JobReply
{
    std::string key;
    std::optional<runner::SimResult> result;
    unsigned attempts = 0; ///< 0 = served from the store
    bool fromStore = false;
    std::string error; ///< sanitized one-liner when !result
};

/**
 * The worker pool + idle list + dedupe table + bounded backlog.
 * Thread-safe: submit() may be called from any number of connection
 * threads concurrently.
 */
class Dispatcher
{
  public:
    /** Invoked exactly once per submit with the job's outcome — on
     *  the submitting thread for store hits, on a worker thread
     *  otherwise. Must not block for long and must not re-enter
     *  submit() (enqueue and return, as the server's sinks do). */
    using Callback = std::function<void(const JobReply &)>;

    explicit Dispatcher(DispatcherOptions opts);

    /** shutdown() if still running. */
    ~Dispatcher();

    Dispatcher(const Dispatcher &) = delete;
    Dispatcher &operator=(const Dispatcher &) = delete;

    /**
     * Admit one job (see the flow diagram above). On Busy the
     * callback is never invoked; on StoreHit it already ran when
     * submit returns; otherwise it runs later on a worker thread.
     */
    Admission submit(const runner::SimJob &job, Callback cb);

    /**
     * Finish the running jobs, fail every queued flight with a
     * "dispatcher shutting down" reply, join the workers, and drain
     * the supervisor reaper. Idempotent.
     */
    void shutdown();

    DispatchCounters counters() const;
    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }
    size_t pendingCount() const;
    size_t idleCount() const;
    size_t inFlightCount() const;

  private:
    /** One deduped computation: the job plus everyone waiting on it. */
    struct Flight
    {
        runner::SimJob job;
        std::vector<Callback> waiters;
    };
    using FlightPtr = std::shared_ptr<Flight>;

    /** A worker's private mailbox: JIQ hands a flight directly here. */
    struct Worker
    {
        std::mutex mu;
        std::condition_variable cv;
        FlightPtr assigned;
        std::thread thread;
    };

    void workerLoop(unsigned id);
    void runFlight(const FlightPtr &flight);
    void assign(unsigned id, FlightPtr flight);

    DispatcherOptions opts_;

    mutable std::mutex mu_; ///< idle_/pending_/inflight_/counters_
    std::vector<unsigned> idle_;   ///< registered idle workers (LIFO)
    std::deque<FlightPtr> pending_;
    std::map<std::string, FlightPtr> inflight_;
    DispatchCounters counters_;
    std::atomic<bool> stop_{false};

    std::vector<std::unique_ptr<Worker>> workers_;
};

} // namespace diq::serve

#endif // DIQ_SERVE_DISPATCHER_HH

/**
 * @file
 * Wire protocol for the `diq serve` service (docs/ARCHITECTURE.md
 * §12).
 *
 * Transport: a Unix-domain stream socket carrying length-prefixed
 * frames. Every frame is
 *
 *   length u32 (little-endian) | payload bytes
 *
 * and every payload is a line of tab-separated fields whose first
 * field is the verb. The final field of a frame may contain arbitrary
 * bytes (the `row` frame carries a binary store-codec entry image),
 * which is why framing is length-prefixed rather than
 * newline-delimited: the length is authoritative, the payload is
 * opaque.
 *
 * Session shape (client side initiates every exchange):
 *
 *   -> hello  diq-serve <version>
 *   <- ok     diq-serve <version> <server-pid>      (or `error ...`)
 *
 *   -> submit <warmup> <insts> <grid text>
 *   <- row    <index> <entry bytes>     } streamed per point, in
 *   <- failrow <index> <attempts> <err> } completion order
 *   <- done   <points> store_hits=N computed=N attached=N failed=N
 *      (or `busy <pending> <limit>` — admission reject, nothing ran
 *       beyond the points already admitted; or `error <message>`)
 *
 *   -> status
 *   <- stats  k=v ...                   (dispatcher + store counters)
 *
 *   -> shutdown
 *   <- bye
 *
 * The version in the hello must equal kProtocolVersion exactly; the
 * server rejects a mismatch with an `error` frame before anything
 * else, so a stale client never half-parses a newer stream.
 */

#ifndef DIQ_SERVE_PROTOCOL_HH
#define DIQ_SERVE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace diq::serve
{

/** Bumped on any incompatible frame-layout or vocabulary change. */
constexpr uint32_t kProtocolVersion = 1;

/** Protocol family name exchanged in the hello. */
constexpr const char *kProtocolName = "diq-serve";

/** Upper bound on one frame; larger lengths are a torn/hostile
 *  stream, not data (a row frame is ~1 KiB). */
constexpr uint32_t kMaxFrameBytes = 16u << 20;

/** Torn frame, oversized length, handshake mismatch, socket error. */
class ProtocolError : public std::runtime_error
{
  public:
    explicit ProtocolError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Write one frame (length prefix + payload) to a connected socket,
 * looping over partial writes; SIGPIPE is suppressed (a vanished
 * peer surfaces as a ProtocolError, not a signal).
 */
void writeFrame(int fd, std::string_view payload);

/**
 * Read one frame. Returns the payload; std::nullopt on a clean EOF
 * at a frame boundary (the peer closed between frames).
 * @throws ProtocolError on mid-frame EOF, oversize length or error.
 */
std::optional<std::string> readFrame(int fd);

/**
 * Split a payload on '\t' into at most `maxFields` fields: the last
 * field receives the unsplit remainder, so binary tails (the row
 * frame's entry image) pass through intact.
 */
std::vector<std::string> splitFields(const std::string &payload,
                                     size_t maxFields);

/** The client-side hello line for this build. */
std::string helloLine();

/** The server's ok-reply to a hello. */
std::string helloOkLine();

/**
 * Validate a hello payload against this build's name + version.
 * Returns an empty string when compatible, else the (complete)
 * `error ...` payload to send back.
 */
std::string checkHello(const std::string &payload);

} // namespace diq::serve

#endif // DIQ_SERVE_PROTOCOL_HH

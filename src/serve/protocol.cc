/**
 * @file
 * Implementation of serve/protocol.hh (docs/ARCHITECTURE.md §12).
 */

#include "serve/protocol.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace diq::serve
{

namespace
{

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

/** send() the whole buffer, retrying on EINTR and partial writes. */
void
sendAll(int fd, const char *data, size_t n)
{
    size_t done = 0;
    while (done < n) {
        ssize_t w = ::send(fd, data + done, n - done, kSendFlags);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(std::string("socket write failed: ") +
                                std::strerror(errno));
        }
        done += static_cast<size_t>(w);
    }
}

/**
 * recv() exactly `n` bytes. Returns false on EOF before the first
 * byte (clean close); throws on EOF mid-buffer or error.
 */
bool
recvAll(int fd, char *data, size_t n)
{
    size_t done = 0;
    while (done < n) {
        ssize_t r = ::recv(fd, data + done, n - done, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(std::string("socket read failed: ") +
                                std::strerror(errno));
        }
        if (r == 0) {
            if (done == 0)
                return false;
            throw ProtocolError("connection closed mid-frame (" +
                                std::to_string(done) + " of " +
                                std::to_string(n) + " bytes)");
        }
        done += static_cast<size_t>(r);
    }
    return true;
}

} // namespace

void
writeFrame(int fd, std::string_view payload)
{
    if (payload.size() > kMaxFrameBytes)
        throw ProtocolError("frame too large to send (" +
                            std::to_string(payload.size()) + " bytes)");
    char prefix[4];
    uint32_t len = static_cast<uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        prefix[i] = static_cast<char>((len >> (8 * i)) & 0xff);
    sendAll(fd, prefix, sizeof prefix);
    sendAll(fd, payload.data(), payload.size());
}

std::optional<std::string>
readFrame(int fd)
{
    char prefix[4];
    if (!recvAll(fd, prefix, sizeof prefix))
        return std::nullopt;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<uint32_t>(
                   static_cast<unsigned char>(prefix[i]))
            << (8 * i);
    if (len > kMaxFrameBytes)
        throw ProtocolError("oversized frame announced (" +
                            std::to_string(len) + " bytes; max " +
                            std::to_string(kMaxFrameBytes) + ")");
    std::string payload(len, '\0');
    if (len > 0 && !recvAll(fd, payload.data(), len))
        throw ProtocolError("connection closed before frame payload");
    return payload;
}

std::vector<std::string>
splitFields(const std::string &payload, size_t maxFields)
{
    std::vector<std::string> out;
    size_t at = 0;
    while (out.size() + 1 < maxFields) {
        size_t tab = payload.find('\t', at);
        if (tab == std::string::npos)
            break;
        out.push_back(payload.substr(at, tab - at));
        at = tab + 1;
    }
    out.push_back(payload.substr(at));
    return out;
}

std::string
helloLine()
{
    return std::string("hello\t") + kProtocolName + "\t" +
        std::to_string(kProtocolVersion);
}

std::string
helloOkLine()
{
    return std::string("ok\t") + kProtocolName + "\t" +
        std::to_string(kProtocolVersion) + "\t" +
        std::to_string(static_cast<long>(::getpid()));
}

std::string
checkHello(const std::string &payload)
{
    std::vector<std::string> f = splitFields(payload, 4);
    if (f.size() < 3 || f[0] != "hello" || f[1] != kProtocolName)
        return "error\tnot a " + std::string(kProtocolName) +
            " hello (is the peer a diq client?)";
    if (f[2] != std::to_string(kProtocolVersion))
        return "error\tprotocol version mismatch: client speaks " +
            f[2] + ", server speaks " +
            std::to_string(kProtocolVersion) +
            " (rebuild the older side)";
    return {};
}

} // namespace diq::serve

/**
 * @file
 * Implementation of runner/supervisor.hh (docs/ARCHITECTURE.md §11).
 */

#include "runner/supervisor.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "store/result_store.hh"

namespace diq::runner
{

namespace
{

/** Collapse an error message to one journal/CSV-safe line. */
std::string
sanitizeError(std::string text)
{
    for (char &c : text)
        if (c == '\t' || c == '\n' || c == '\r' || c == ',')
            c = ' ';
    return text;
}

/**
 * Sleep `ms` in small slices, returning early (false) when `cancel`
 * is raised. This is how injected delays stay responsive to
 * deadline-expired attempts being abandoned.
 */
bool
cancellableSleep(uint64_t ms, const std::atomic<bool> &cancel)
{
    using namespace std::chrono;
    auto until = steady_clock::now() + milliseconds(ms);
    while (steady_clock::now() < until) {
        if (cancel.load(std::memory_order_relaxed))
            return false;
        std::this_thread::sleep_for(milliseconds(1));
    }
    return true;
}

/**
 * One attempt: fault-plan delay, fault-plan failure, then the real
 * job. Runs on the caller's thread; cancellation only interrupts the
 * injected delay (a real simulation is finite and short).
 */
SimResult
runAttempt(const SimJob &job, fault::FaultPlan *faults,
           const std::atomic<bool> &cancel)
{
    if (faults) {
        const std::string key = job.key();
        if (uint64_t delay = faults->jobDelayMs(key))
            if (!cancellableSleep(delay, cancel))
                throw std::runtime_error("attempt abandoned at deadline");
        if (faults->shouldFailJob(key))
            throw std::runtime_error("injected failure (fail_job)");
    }
    return executeJob(job);
}

/**
 * Threads abandoned by deadline-expired attempts, parked here until
 * drainSupervisor() joins them. A function-local static (not a
 * namespace-scope global) so the registry outlives every translation
 * unit that may drain during static teardown.
 */
struct AbandonedThreads
{
    std::mutex mu;
    std::vector<std::thread> threads;

    /** Process exit with threads still parked (nobody called
     *  drainSupervisor): join them here — abandoned attempts hold
     *  their job by value and always terminate, and destroying a
     *  joinable std::thread would terminate() the process. */
    ~AbandonedThreads()
    {
        for (std::thread &t : threads)
            if (t.joinable())
                t.join();
    }
};

AbandonedThreads &
reaper()
{
    static AbandonedThreads r;
    return r;
}

void
abandonThread(std::thread t)
{
    std::lock_guard<std::mutex> lock(reaper().mu);
    reaper().threads.push_back(std::move(t));
}

} // namespace

void
drainSupervisor()
{
    // Joining outside the lock lets an abandoned attempt that itself
    // reaches a deadline park a new thread without deadlocking; loop
    // until a pass finds the registry empty.
    while (true) {
        std::vector<std::thread> victims;
        {
            std::lock_guard<std::mutex> lock(reaper().mu);
            victims.swap(reaper().threads);
        }
        if (victims.empty())
            return;
        for (std::thread &t : victims)
            if (t.joinable())
                t.join();
    }
}

size_t
abandonedThreadCount()
{
    std::lock_guard<std::mutex> lock(reaper().mu);
    return reaper().threads.size();
}

JobPolicy
JobPolicy::fromFlags(const util::Flags &flags)
{
    JobPolicy p;
    int64_t attempts =
        flags.getInt("max-attempts", static_cast<int64_t>(p.maxAttempts),
                     "DIQ_MAX_ATTEMPTS");
    if (attempts < 1)
        throw std::invalid_argument("--max-attempts must be >= 1");
    p.maxAttempts = static_cast<unsigned>(attempts);

    int64_t backoff = flags.getInt(
        "backoff-ms", static_cast<int64_t>(p.backoffBaseMs), "");
    if (backoff < 0)
        throw std::invalid_argument("--backoff-ms must be >= 0");
    p.backoffBaseMs = static_cast<uint64_t>(backoff);

    int64_t deadline = flags.getInt(
        "deadline-ms", static_cast<int64_t>(p.deadlineMs),
        "DIQ_DEADLINE_MS");
    if (deadline < 0)
        throw std::invalid_argument("--deadline-ms must be >= 0");
    p.deadlineMs = static_cast<uint64_t>(deadline);
    return p;
}

JobQuarantined::JobQuarantined(std::string key_, unsigned attempts_,
                               const std::string &error_)
    : std::runtime_error("job quarantined after " +
                         std::to_string(attempts_) + " attempts: " +
                         key_ + ": " + sanitizeError(error_)),
      key(std::move(key_)), attempts(attempts_),
      error(sanitizeError(error_))
{
}

Supervised
superviseJob(const SimJob &job, const JobPolicy &policy,
             fault::FaultPlan *faults)
{
    const unsigned maxAttempts = policy.maxAttempts < 1
        ? 1u
        : policy.maxAttempts;
    std::string lastError = "unknown failure";

    for (unsigned attempt = 1; attempt <= maxAttempts; ++attempt) {
        if (attempt > 1 && policy.backoffBaseMs > 0) {
            double factor = policy.backoffFactor <= 0.0
                ? 1.0
                : policy.backoffFactor;
            double ms = static_cast<double>(policy.backoffBaseMs) *
                std::pow(factor, static_cast<double>(attempt - 2));
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<uint64_t>(ms)));
        }

        auto cancel = std::make_shared<std::atomic<bool>>(false);
        try {
            if (policy.deadlineMs == 0) {
                return {runAttempt(job, faults, *cancel), attempt};
            }
            // Deadline-bounded attempt: run on a worker thread and
            // truly abandon it at the deadline — the thread is parked
            // on the reaper (joined by drainSupervisor()) and the
            // next attempt starts immediately, so the deadline bounds
            // the supervisor's wait, not the overrun. The task copies
            // the job: an abandoned attempt may outlive this call and
            // must not dangle into the caller's descriptor.
            std::packaged_task<SimResult()> task(
                [job, faults, cancel] {
                    return runAttempt(job, faults, *cancel);
                });
            std::future<SimResult> done = task.get_future();
            std::thread worker(std::move(task));
            bool timedOut = done.wait_for(std::chrono::milliseconds(
                                policy.deadlineMs)) !=
                std::future_status::ready;
            if (timedOut) {
                cancel->store(true, std::memory_order_relaxed);
                abandonThread(std::move(worker));
                lastError = "deadline exceeded (" +
                    std::to_string(policy.deadlineMs) + " ms)";
                continue;
            }
            worker.join();
            return {done.get(), attempt};
        } catch (const std::exception &e) {
            lastError = e.what();
        }
    }
    throw JobQuarantined(job.key(), maxAttempts, lastError);
}

// --- SweepJournal ---------------------------------------------------

namespace
{

constexpr const char *kJournalHeader = "diq-sweep-journal v1";

/** Split one journal line on tabs. */
std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> out;
    size_t at = 0;
    while (true) {
        size_t tab = line.find('\t', at);
        if (tab == std::string::npos) {
            out.push_back(line.substr(at));
            return out;
        }
        out.push_back(line.substr(at, tab - at));
        at = tab + 1;
    }
}

/** Append `line` + '\n' to the journal and push it to stable storage. */
void
appendDurably(const std::filesystem::path &path, const std::string &line)
{
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << line << '\n';
    out.flush();
    if (!out)
        throw JournalError("cannot append to journal " + path.string());
}

} // namespace

SweepJournal::SweepJournal(std::filesystem::path path,
                           std::string campaign, bool resume)
    : path_(std::move(path)), campaign_(std::move(campaign))
{
    std::error_code ec;
    if (path_.has_parent_path())
        std::filesystem::create_directories(path_.parent_path(), ec);

    bool exists = std::filesystem::exists(path_, ec);
    if (resume && exists) {
        std::ifstream in(path_, std::ios::binary);
        if (!in)
            throw JournalError("cannot read journal " + path_.string());
        std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
        // A line without its trailing '\n' is a torn append from the
        // crash window: drop it (the job it described will simply be
        // re-supervised and re-recorded).
        size_t complete = content.rfind('\n');
        content = complete == std::string::npos
            ? std::string{}
            : content.substr(0, complete + 1);

        std::istringstream lines(content);
        std::string line;
        size_t lineNo = 0;
        bool sawHeader = false, sawCampaign = false;
        while (std::getline(lines, line)) {
            ++lineNo;
            if (lineNo == 1) {
                if (line != kJournalHeader)
                    throw JournalError(
                        "journal " + path_.string() +
                        " has an unrecognized header: '" + line + "'");
                sawHeader = true;
                continue;
            }
            if (lineNo == 2) {
                if (line.rfind("campaign\t", 0) != 0)
                    throw JournalError("journal " + path_.string() +
                                       " is missing its campaign line");
                std::string recorded = line.substr(9);
                if (recorded != campaign_)
                    throw JournalError(
                        "journal " + path_.string() +
                        " belongs to a different campaign\n  journal: " +
                        recorded + "\n  sweep:   " + campaign_);
                sawCampaign = true;
                continue;
            }
            std::vector<std::string> cells = splitTabs(line);
            if (cells.size() != 4 || cells[0] != "poison")
                continue; // unknown record type: skip, stay forward-compatible
            PoisonRecord rec;
            try {
                rec.attempts = static_cast<unsigned>(
                    std::stoul(cells[1]));
            } catch (const std::exception &) {
                continue;
            }
            rec.error = cells[3];
            poisoned_[cells[2]] = std::move(rec);
        }
        if (sawHeader && !sawCampaign && lineNo >= 1 && content.size())
            throw JournalError("journal " + path_.string() +
                               " is missing its campaign line");
        if (sawHeader)
            return; // resumed onto the existing journal
        // Header itself was torn away: treat as fresh below.
    }

    // Fresh campaign: (re)create with header + campaign line.
    std::ofstream out(path_, std::ios::trunc | std::ios::binary);
    out << kJournalHeader << '\n'
        << "campaign\t" << campaign_ << '\n';
    out.flush();
    if (!out)
        throw JournalError("cannot create journal " + path_.string());
}

void
SweepJournal::recordPoison(const std::string &key, unsigned attempts,
                           const std::string &error)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] =
        poisoned_.try_emplace(key,
                              PoisonRecord{attempts, sanitizeError(error)});
    if (!inserted)
        return; // already journaled (e.g. replayed from a resume)
    appendDurably(path_, "poison\t" + std::to_string(attempts) + '\t' +
                             key + '\t' + it->second.error);
}

std::string
SweepJournal::fileNameFor(const std::string &campaign)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "h%016llx",
                  static_cast<unsigned long long>(
                      store::fnv1a64(campaign.data(), campaign.size())));
    return std::string(buf) + ".journal";
}

} // namespace diq::runner

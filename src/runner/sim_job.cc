/**
 * @file
 * Job execution: the single-thread simulate-and-account path behind
 * the sweep runner (docs/ARCHITECTURE.md §7).
 */

#include "runner/sim_job.hh"

#include <algorithm>

#include "sim/pipeline.hh"
#include "trace/scenarios.hh"
#include "trace/spec2000.hh"

namespace diq::runner
{

power::EnergyBreakdown
energyFor(const core::SchemeConfig &scheme,
          const power::EventCounters &counters)
{
    power::IssueGeometry g;
    g.iqEntries = static_cast<unsigned>(
        std::max(scheme.camIntEntries, scheme.camFpEntries));
    g.numIntQueues = static_cast<unsigned>(scheme.numIntQueues);
    g.intQueueSize = static_cast<unsigned>(scheme.intQueueSize);
    g.numFpQueues = static_cast<unsigned>(scheme.numFpQueues);
    g.fpQueueSize = static_cast<unsigned>(scheme.fpQueueSize);
    g.chainsPerQueue = scheme.chainsPerQueue > 0
        ? static_cast<unsigned>(scheme.chainsPerQueue)
        : 8;
    power::IssueEnergyModel model(g);

    switch (scheme.kind) {
      case core::SchemeConfig::Kind::Cam:
        return model.baseline(counters);
      case core::SchemeConfig::Kind::IssueFifo:
      case core::SchemeConfig::Kind::LatFifo:
        return model.issueFifo(counters);
      case core::SchemeConfig::Kind::MixBuff:
        return model.mixBuff(counters);
    }
    return {};
}

SimJob
makeJob(const spec::ExperimentSpec &exp)
{
    SimJob j;
    j.exp = exp;
    j.profile = trace::workloadProfile(exp.benchmark);
    return j;
}

std::unique_ptr<trace::TraceSource>
makeJobWorkload(const SimJob &job)
{
    // Plain names go through the profile carried by the job (not a
    // second registry lookup) so hand-built jobs with tweaked
    // profiles keep working; tokens resolve through makeWorkload.
    if (trace::isWorkloadToken(job.exp.benchmark))
        return trace::makeWorkload(job.exp.benchmark);
    return trace::makeSpecWorkload(job.profile);
}

SimResult
simulateJob(const SimJob &job, trace::TraceSource &workload)
{
    return simulateJob(job, workload, sim::Cpu::CommitHook{});
}

SimResult
simulateJob(const SimJob &job, trace::TraceSource &workload,
            const sim::Cpu::CommitHook &onCommit)
{
    sim::Cpu cpu(job.exp.processor, workload);
    if (onCommit)
        cpu.setCommitHook(onCommit);

    cpu.run(job.exp.warmupInsts);
    cpu.resetStats();
    cpu.run(job.exp.measureInsts);

    SimResult r;
    r.benchmark = job.profile.name;
    r.scheme = job.exp.processor.scheme.name();
    r.stats = cpu.stats();
    r.ipc = cpu.stats().ipc();
    r.energy = energyFor(job.exp.processor.scheme,
                         cpu.stats().counters);
    return r;
}

SimResult
executeJob(const SimJob &job)
{
    auto workload = makeJobWorkload(job);
    return simulateJob(job, *workload);
}

} // namespace diq::runner

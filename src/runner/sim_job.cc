/**
 * @file
 * Job execution: the single-thread simulate-and-account path behind
 * the sweep runner (docs/ARCHITECTURE.md §7).
 */

#include "runner/sim_job.hh"

#include <algorithm>
#include <sstream>

#include "sim/pipeline.hh"
#include "trace/spec2000.hh"

namespace diq::runner
{

std::string
SimJob::key() const
{
    std::ostringstream os;
    os << scheme.name()
       << "/chains=" << scheme.chainsPerQueue
       << "/clear=" << (scheme.clearTableOnMispredict ? 1 : 0)
       << "/cam=" << scheme.camIntEntries << "x" << scheme.camFpEntries
       << "/distr=" << (scheme.distributedFus ? 1 : 0)
       << "/w=" << warmupInsts << "/n=" << measureInsts
       << "/" << profile.name;
    return os.str();
}

power::EnergyBreakdown
energyFor(const core::SchemeConfig &scheme,
          const power::EventCounters &counters)
{
    power::IssueGeometry g;
    g.iqEntries = static_cast<unsigned>(
        std::max(scheme.camIntEntries, scheme.camFpEntries));
    g.numIntQueues = static_cast<unsigned>(scheme.numIntQueues);
    g.intQueueSize = static_cast<unsigned>(scheme.intQueueSize);
    g.numFpQueues = static_cast<unsigned>(scheme.numFpQueues);
    g.fpQueueSize = static_cast<unsigned>(scheme.fpQueueSize);
    g.chainsPerQueue = scheme.chainsPerQueue > 0
        ? static_cast<unsigned>(scheme.chainsPerQueue)
        : 8;
    power::IssueEnergyModel model(g);

    switch (scheme.kind) {
      case core::SchemeConfig::Kind::Cam:
        return model.baseline(counters);
      case core::SchemeConfig::Kind::IssueFifo:
      case core::SchemeConfig::Kind::LatFifo:
        return model.issueFifo(counters);
      case core::SchemeConfig::Kind::MixBuff:
        return model.mixBuff(counters);
    }
    return {};
}

SimResult
executeJob(const SimJob &job)
{
    auto workload = trace::makeSpecWorkload(job.profile);
    sim::ProcessorConfig cfg;
    cfg.scheme = job.scheme;
    sim::Cpu cpu(cfg, *workload);

    cpu.run(job.warmupInsts);
    cpu.resetStats();
    cpu.run(job.measureInsts);

    SimResult r;
    r.benchmark = job.profile.name;
    r.scheme = job.scheme.name();
    r.stats = cpu.stats();
    r.ipc = cpu.stats().ipc();
    r.energy = energyFor(job.scheme, cpu.stats().counters);
    return r;
}

} // namespace diq::runner

/**
 * @file
 * Implementation of runner/sweep_spec.hh (docs/ARCHITECTURE.md §7).
 */

#include "runner/sweep_spec.hh"

namespace diq::runner
{

void
SweepSpec::add(const core::SchemeConfig &scheme,
               const trace::BenchmarkProfile &profile)
{
    points_.emplace_back(scheme, profile);
}

void
SweepSpec::addSuite(const core::SchemeConfig &scheme,
                    const std::vector<trace::BenchmarkProfile> &profiles)
{
    for (const auto &p : profiles)
        add(scheme, p);
}

void
SweepSpec::addGrid(const std::vector<core::SchemeConfig> &schemes,
                   const std::vector<trace::BenchmarkProfile> &profiles)
{
    for (const auto &s : schemes)
        addSuite(s, profiles);
}

void
SweepSpec::append(const SweepSpec &other)
{
    points_.insert(points_.end(), other.points_.begin(),
                   other.points_.end());
}

} // namespace diq::runner

/**
 * @file
 * Implementation of runner/sweep_spec.hh (docs/ARCHITECTURE.md §7-§8).
 */

#include "runner/sweep_spec.hh"

#include <set>

#include "spec/presets.hh"
#include "trace/scenarios.hh"
#include "trace/spec2000.hh"

namespace diq::runner
{

void
SweepSpec::add(const spec::ExperimentSpec &exp)
{
    points_.emplace_back(exp, trace::workloadProfile(exp.benchmark));
}

void
SweepSpec::add(const core::SchemeConfig &scheme,
               const trace::BenchmarkProfile &profile)
{
    spec::ExperimentSpec exp;
    exp.processor.scheme = scheme;
    exp.benchmark = profile.name;
    points_.emplace_back(exp, profile);
}

void
SweepSpec::addSuite(const core::SchemeConfig &scheme,
                    const std::vector<trace::BenchmarkProfile> &profiles)
{
    for (const auto &p : profiles)
        add(scheme, p);
}

void
SweepSpec::addGrid(const std::vector<core::SchemeConfig> &schemes,
                   const std::vector<trace::BenchmarkProfile> &profiles)
{
    for (const auto &s : schemes)
        addSuite(s, profiles);
}

void
SweepSpec::append(const SweepSpec &other)
{
    points_.insert(points_.end(), other.points_.begin(),
                   other.points_.end());
}

namespace
{

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string::size_type start = 0;
    while (start <= csv.size()) {
        auto comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            out.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/** Expand the bench axis's suite aliases into workload names. */
std::vector<std::string>
expandBenchValues(const std::vector<std::string> &values)
{
    std::vector<std::string> out;
    for (const auto &v : values) {
        if (v == "int" || v == "all")
            for (const auto &p : trace::specIntProfiles())
                out.push_back(p.name);
        if (v == "fp" || v == "all")
            for (const auto &p : trace::specFpProfiles())
                out.push_back(p.name);
        if (v == "scenarios")
            for (const auto &s : trace::scenarioRegistry())
                out.push_back(std::string(trace::kScenarioPrefix) +
                              s.name);
        if (v != "int" && v != "fp" && v != "all" && v != "scenarios")
            out.push_back(v);
    }
    return out;
}

} // namespace

SweepSpec
SweepSpec::fromText(const std::string &text)
{
    // One axis per token: a key and the values it sweeps over.
    struct Axis
    {
        std::string key;
        std::vector<std::string> values;
    };
    std::vector<Axis> axes;
    std::set<std::string> seen_axes;
    bool saw_scheme_knob_axis = false;

    for (const std::string &token : spec::tokenizeSpecText(text)) {
        auto eq = token.find('=');
        // A bare token is a preset list, i.e. a scheme axis.
        std::string key =
            eq == std::string::npos ? "scheme" : token.substr(0, eq);
        if (eq == 0)
            throw spec::ParseError("missing key before '=' in token '" +
                                   token + "'");
        const spec::KeyInfo *k = spec::findKey(key);
        // Budgets belong to the runner (--insts/--warmup), not the
        // grid; accepting them here would sweep an axis that has no
        // effect on the results.
        if (k && (k->name == "warmup_insts" ||
                  k->name == "measure_insts"))
            throw spec::ParseError(
                "key '" + key + "' cannot be swept in a grid (the "
                "runner owns the budgets; use --insts/--warmup)");
        // One axis per knob: with a repeated key, the last value of
        // each combination would silently win and the earlier axis
        // would degenerate into duplicate rows.
        if (!seen_axes.insert(k ? k->name : key).second)
            throw spec::ParseError("duplicate axis '" + key +
                                   "' in grid");
        std::string csv =
            eq == std::string::npos ? token : token.substr(eq + 1);
        std::vector<std::string> values = splitList(csv);
        if (values.empty())
            throw spec::ParseError("empty value list for key '" + key +
                                   "'");
        // A preset value resets every scheme knob, so it must come
        // before any scheme-knob axis or it would clobber their
        // values in every combination (duplicate rows again).
        if (k && k->name == "scheme") {
            for (const auto &v : values)
                if (spec::findPreset(v) && saw_scheme_knob_axis)
                    throw spec::ParseError(
                        "preset '" + v + "' must come before scheme "
                        "knob axes in a grid (a preset resets the "
                        "whole scheme configuration)");
        }
        if (k && k->schemeScope)
            saw_scheme_knob_axis = true;
        if (key == "bench" || key == "benchmark")
            values = expandBenchValues(values);
        // Dedupe values order-preservingly: repeated values (or
        // overlapping suite aliases like `fp,all`) would otherwise
        // degenerate into duplicate grid rows.
        std::set<std::string> seen_values;
        std::vector<std::string> unique;
        for (auto &v : values)
            if (seen_values.insert(v).second)
                unique.push_back(std::move(v));
        axes.push_back({std::move(key), std::move(unique)});
    }

    // Cross product, leftmost axis outermost. Each combination is
    // applied to a fresh default spec in token order, so the spec
    // layer reports unknown keys / bad values / ranges precisely.
    SweepSpec out;
    if (axes.empty())
        return out;
    std::vector<size_t> idx(axes.size(), 0);
    while (true) {
        spec::ExperimentSpec exp;
        for (size_t a = 0; a < axes.size(); ++a)
            exp.set(axes[a].key, axes[a].values[idx[a]]);
        out.add(exp);

        size_t a = axes.size();
        while (a > 0 && ++idx[a - 1] == axes[a - 1].values.size())
            idx[--a] = 0;
        if (a == 0)
            break;
    }
    return out;
}

} // namespace diq::runner

/**
 * @file
 * Implementation of runner/result_cache.hh (docs/ARCHITECTURE.md §7).
 */

#include "runner/result_cache.hh"

#include <chrono>

namespace diq::runner
{

const SimResult &
ResultCache::getOrCompute(const std::string &key,
                          const std::function<SimResult()> &compute)
{
    std::shared_ptr<Entry> entry;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            entry = std::make_shared<Entry>();
            entries_.emplace(key, entry);
            owner = true;
            misses_.fetch_add(1, std::memory_order_relaxed);
        } else {
            entry = it->second;
            hits_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    if (owner) {
        try {
            entry->result = compute();
        } catch (...) {
            entry->done.set_exception(std::current_exception());
            entry->ready.get(); // rethrow to this caller too
        }
        entry->hasValue = true; // ordered before set_value()
        entry->done.set_value();
    } else {
        entry->ready.get(); // waits; rethrows a failed computation
    }
    return entry->result;
}

size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

const SimResult *
ResultCache::peek(const std::string &key) const
{
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end())
            return nullptr;
        entry = it->second;
    }
    auto status = entry->ready.wait_for(std::chrono::seconds(0));
    if (status != std::future_status::ready || !entry->hasValue)
        return nullptr;
    return &entry->result;
}

} // namespace diq::runner

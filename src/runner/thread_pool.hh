/**
 * @file
 * Fixed-size worker pool for the sweep runner
 * (docs/ARCHITECTURE.md §7).
 *
 * Workers pull tasks from one shared FIFO — the join-the-idle-queue
 * shape: an idle worker takes the oldest pending job, so the pool
 * load-balances automatically when job runtimes are skewed (a 256-entry
 * CAM baseline simulates far slower than an 8x8 FIFO sweep point).
 */

#ifndef DIQ_RUNNER_THREAD_POOL_HH
#define DIQ_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace diq::runner
{

/** Fixed pool of worker threads draining a shared task queue. */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (clamped to >= 1). */
    explicit ThreadPool(unsigned threads);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task; runs on some worker in FIFO claim order. An
     * exception escaping the task is swallowed (fire-and-forget
     * pool) — tasks that can fail must capture errors themselves,
     * as the sweep tasks do via the result cache.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished running. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable taskReady_;   ///< workers wait for tasks
    std::condition_variable allDone_;     ///< wait() waits for drain
    std::deque<std::function<void()>> tasks_;
    size_t inFlight_ = 0;                 ///< queued + currently running
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace diq::runner

#endif // DIQ_RUNNER_THREAD_POOL_HH

/**
 * @file
 * Parallel sweep runner (docs/ARCHITECTURE.md §7).
 *
 * Executes sets of independent simulation jobs across a worker pool
 * and memoizes every result in a thread-safe cache, replacing the
 * serial per-binary memoization the bench harness used to carry. The
 * determinism contract: because each job is self-contained and
 * seeded from its own descriptor, the results — and therefore any
 * output rendered from them in spec order — are byte-identical for
 * every worker count, including the serial --jobs=1 path.
 */

#ifndef DIQ_RUNNER_SWEEP_RUNNER_HH
#define DIQ_RUNNER_SWEEP_RUNNER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "runner/result_cache.hh"
#include "runner/sim_job.hh"
#include "runner/supervisor.hh"
#include "runner/sweep_spec.hh"
#include "runner/thread_pool.hh"
#include "util/flags.hh"

namespace diq::store
{
class ResultStore;
}

namespace diq::runner
{

/** Budgets and worker count for a runner. */
struct RunnerOptions
{
    uint64_t warmupInsts = 30000;
    uint64_t measureInsts = 120000;

    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;

    /** Persistent result store consulted/updated by the supervised
     *  path (runAllSupervised); nullptr = in-memory only. Must
     *  outlive the runner. */
    store::ResultStore *store = nullptr;

    /** Fault-injection plan threaded into supervised attempts; must
     *  outlive the runner. */
    fault::FaultPlan *faults = nullptr;

    /** Retry/backoff/deadline bounds for supervised jobs. */
    JobPolicy policy;

    /**
     * Apply --warmup/--insts/--jobs flags with DIQ_WARMUP/DIQ_INSTS/
     * DIQ_JOBS environment fallbacks. (store/faults/policy are wired
     * explicitly by the caller, not from flags.)
     */
    static RunnerOptions fromFlags(const util::Flags &flags);

    /** `jobs` with the 0 default resolved to the hardware. */
    unsigned resolvedJobs() const;
};

/**
 * Per-point outcome of a supervised sweep. `result` is null exactly
 * when the point failed; `error` then carries the sanitized reason
 * (already journal/CSV-safe).
 */
struct JobOutcome
{
    const SimResult *result = nullptr;
    unsigned attempts = 0; ///< 0 = replayed from the persistent store
    bool fromStore = false;
    std::string error;
};

/**
 * Memoizing parallel job scheduler. One instance may serve many
 * figures in sequence (diq_report does); the cache is shared, so a
 * baseline simulated for Figure 2 is a hit when Figure 3 asks again.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(RunnerOptions opts);
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /**
     * Simulate (or recall) one experiment under this runner's budgets
     * (the spec's own budgets are overridden — the runner owns them).
     * Blocks until ready; executes on the calling thread on a miss.
     * The reference stays valid for the runner's lifetime.
     */
    const SimResult &run(const spec::ExperimentSpec &exp,
                         const trace::BenchmarkProfile &profile);

    /** Convenience: default machine + `scheme` on `profile`. */
    const SimResult &run(const core::SchemeConfig &scheme,
                         const trace::BenchmarkProfile &profile);

    /**
     * Fill the cache for every point of `spec` using the worker pool
     * (serially, in spec order, when resolvedJobs() == 1). After this
     * returns, run() on any spec point is a cache hit — the idiom the
     * figure benches use: declare, prefetch in parallel, then render
     * serially in spec order.
     */
    void prefetch(const SweepSpec &spec);

    /** prefetch() + collect results in spec order. */
    std::vector<const SimResult *> runAll(const SweepSpec &spec);

    /**
     * Fault-tolerant runAll: every point executes under the options'
     * supervision policy (store replay → supervised compute → store
     * save), and a point that exhausts its attempts becomes a failed
     * JobOutcome instead of aborting the sweep. With a journal, keys
     * it already records as poison are skipped outright (the
     * `--resume` path) and newly quarantined jobs are appended to it.
     * Outcomes are in spec order and byte-deterministic for any
     * worker count, fresh or resumed.
     */
    std::vector<JobOutcome> runAllSupervised(const SweepSpec &spec,
                                             SweepJournal *journal);

    const RunnerOptions &options() const { return opts_; }

    /** Worker count actually used by prefetch (>= 1). */
    unsigned jobCount() const { return jobsResolved_; }

    uint64_t cacheHits() const { return cache_.hits(); }
    uint64_t cacheMisses() const { return cache_.misses(); }
    size_t cacheSize() const { return cache_.size(); }

  private:
    SimJob makeJob(const spec::ExperimentSpec &exp,
                   const trace::BenchmarkProfile &profile) const;

    /** store load → supervised execute → store save, recording
     *  attempts/provenance for the outcome. @throws JobQuarantined. */
    SimResult computeSupervised(const SimJob &job);

    RunnerOptions opts_;
    unsigned jobsResolved_;
    ResultCache cache_;
    std::unique_ptr<ThreadPool> pool_; ///< created lazily, only if > 1

    /** key → (attempts, fromStore) for supervised outcomes. */
    std::map<std::string, std::pair<unsigned, bool>> meta_;
    std::mutex metaMu_;
};

} // namespace diq::runner

#endif // DIQ_RUNNER_SWEEP_RUNNER_HH

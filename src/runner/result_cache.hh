/**
 * @file
 * Thread-safe memoization cache for simulation results
 * (docs/ARCHITECTURE.md §7).
 *
 * Keyed by the full SimJob descriptor string. Concurrent requests for
 * the same key collapse onto one execution: the first caller claims
 * the slot and computes, later callers block on the slot's future and
 * then read the shared result. Entries are heap-allocated and never
 * evicted, so returned references stay valid for the cache's lifetime
 * — the same contract the serial bench harness memoization offered.
 */

#ifndef DIQ_RUNNER_RESULT_CACHE_HH
#define DIQ_RUNNER_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "runner/sim_job.hh"

namespace diq::runner
{

/** Concurrent compute-once cache: key -> SimResult. */
class ResultCache
{
  public:
    /**
     * Return the result for `key`, invoking `compute` (on the calling
     * thread) only if no other caller has claimed the key yet. Blocks
     * until the result is ready. If the computing caller throws, the
     * exception propagates to every waiter and the entry stays failed.
     */
    const SimResult &getOrCompute(const std::string &key,
                                  const std::function<SimResult()> &compute);

    /** Lookup without computing; nullptr if absent or not ready. */
    const SimResult *peek(const std::string &key) const;

    /** Requests that found an existing entry (ready or in flight). */
    uint64_t hits() const { return hits_.load(); }

    /** Requests that had to execute the job. */
    uint64_t misses() const { return misses_.load(); }

    /** Number of distinct keys ever claimed. */
    size_t size() const;

  private:
    struct Entry
    {
        std::promise<void> done;
        std::shared_future<void> ready;
        SimResult result;
        /** Set (before `done`) only on successful computation, so
         *  peek() can tell a value apart from a stored exception. */
        bool hasValue = false;

        Entry() : ready(done.get_future().share()) {}
    };

    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<Entry>> entries_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

} // namespace diq::runner

#endif // DIQ_RUNNER_RESULT_CACHE_HH

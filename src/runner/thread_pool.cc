/**
 * @file
 * Implementation of runner/thread_pool.hh (docs/ARCHITECTURE.md §7).
 */

#include "runner/thread_pool.hh"

#include <algorithm>

namespace diq::runner
{

ThreadPool::ThreadPool(unsigned threads)
{
    unsigned n = std::max(1u, threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        tasks_.push_back(std::move(task));
        ++inFlight_;
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            taskReady_.wait(lock, [this] {
                return stopping_ || !tasks_.empty();
            });
            // The predicate guarantees tasks_ is non-empty unless
            // we are stopping and the queue has drained.
            if (tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        try {
            task();
        } catch (...) {
            // A throwing task must not escape the thread entry
            // function (std::terminate) or skip the drain accounting
            // below (wait() deadlock). Sweep tasks store their
            // exception in the result cache, where it resurfaces on
            // the thread that reads the result.
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace diq::runner

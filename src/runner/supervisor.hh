/**
 * @file
 * Job supervision: retry, backoff, deadlines, poison quarantine and
 * the sweep campaign journal (docs/ARCHITECTURE.md §11).
 *
 * The supervision layer sits between the sweep runner and
 * executeJob. Every job attempt may be delayed or failed by an
 * injected fault::FaultPlan (and, in principle, by any transient
 * runtime failure); the supervisor retries with exponential backoff
 * up to a policy-bound attempt count, optionally bounding each
 * attempt with a deadline. A job that exhausts its attempts is
 * *poison*: it is reported (thrown as JobQuarantined), recorded in
 * the campaign journal, and skipped — the sweep completes partially
 * instead of dying, with the failure visible in the CSV and the
 * exit code (bench/cli.hh taxonomy).
 *
 * Job state machine (one box per attempt):
 *
 *   PENDING --exec--> OK
 *      |                ^
 *      |  fail/timeout  | success on attempt <= maxAttempts
 *      v                |
 *   BACKOFF (base*factor^(n-1) ms) --retry--> PENDING
 *      |
 *      |  n == maxAttempts
 *      v
 *   QUARANTINED (journaled; skipped on --resume)
 *
 * The journal is the durable campaign memory `diq sweep --resume`
 * reads: completed jobs live in the ResultStore (keyed by canonical
 * spec line), poison jobs live in the journal, so a resumed sweep
 * recomputes exactly the missing points and renders a CSV
 * byte-identical to an uninterrupted run.
 */

#ifndef DIQ_RUNNER_SUPERVISOR_HH
#define DIQ_RUNNER_SUPERVISOR_HH

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

#include "fault/fault_plan.hh"
#include "runner/sim_job.hh"
#include "util/flags.hh"

namespace diq::runner
{

/** Retry/backoff/deadline bounds for supervised job execution. */
struct JobPolicy
{
    /** Attempts before a job is quarantined as poison (>= 1). */
    unsigned maxAttempts = 3;

    /** Backoff before retry n (1-based) is base * factor^(n-1). */
    uint64_t backoffBaseMs = 10;
    double backoffFactor = 2.0;

    /** Per-attempt wall-clock bound in ms; 0 = unbounded. */
    uint64_t deadlineMs = 0;

    /**
     * --max-attempts/--backoff-ms/--deadline-ms with
     * DIQ_MAX_ATTEMPTS/DIQ_DEADLINE_MS env fallbacks.
     * @throws std::invalid_argument on out-of-range values.
     */
    static JobPolicy fromFlags(const util::Flags &flags);
};

/**
 * A poison job: it failed maxAttempts times. `error` is the final
 * attempt's failure, sanitized to one CSV/journal-safe line.
 */
class JobQuarantined : public std::runtime_error
{
  public:
    JobQuarantined(std::string key, unsigned attempts,
                   const std::string &error);

    const std::string key;
    const unsigned attempts;
    const std::string error; ///< sanitized (no tabs/newlines/commas)
};

/**
 * Execute one job under the policy: per-attempt fault-plan delay and
 * failure injection, per-attempt deadline, exponential backoff
 * between attempts. Returns the result and the attempt count that
 * succeeded. @throws JobQuarantined after maxAttempts failures.
 *
 * Deadline semantics: the attempt runs on a worker thread and is
 * abandoned at the deadline — the next attempt (or the quarantine)
 * proceeds immediately, and the overrunning thread is parked on a
 * process-wide reaper. Injected delays honor cancellation so parked
 * threads unwind promptly; a genuinely wedged attempt unwinds when
 * its simulation finishes. Every abandoned thread is joined by
 * drainSupervisor(), which long-lived callers (SweepRunner teardown,
 * the serve dispatcher's shutdown path) invoke so repeated deadline
 * hits never accumulate live threads past the owner's lifetime.
 */
struct Supervised
{
    SimResult result;
    unsigned attempts = 1;
};
Supervised superviseJob(const SimJob &job, const JobPolicy &policy,
                        fault::FaultPlan *faults);

/**
 * Join every worker thread abandoned by a deadline-expired attempt.
 * Blocks until each has unwound (prompt for injected delays, bounded
 * by the simulation for real overruns). Idempotent and thread-safe;
 * callers that supervised jobs with a nonzero deadline must drain
 * before tearing down state those attempts may still reference
 * (fault plans, stores) — SweepRunner's destructor and the serve
 * dispatcher's shutdown do this.
 */
void drainSupervisor();

/** Threads currently parked on the reaper (tests/diagnostics). */
size_t abandonedThreadCount();

/** Journal open/parse failure (campaign mismatch, unwritable path). */
class JournalError : public std::runtime_error
{
  public:
    explicit JournalError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Append-only, crash-tolerant record of one sweep campaign's poison
 * jobs. Plain text: a header naming the campaign (the grid text plus
 * budgets — resume must describe the same sweep), then one
 * tab-separated `poison` line per quarantined job. Records are
 * flushed to stable storage as they are appended; a torn final line
 * (the crash window) is ignored on replay.
 */
class SweepJournal
{
  public:
    struct PoisonRecord
    {
        unsigned attempts = 0;
        std::string error;
    };

    /**
     * Open the journal at `path`. With `resume` false the file is
     * recreated (a fresh campaign). With `resume` true an existing
     * file is parsed — its campaign line must equal `campaign` — and
     * a missing file starts fresh.
     * @throws JournalError on campaign mismatch or unwritable path.
     */
    SweepJournal(std::filesystem::path path, std::string campaign,
                 bool resume);

    /** Poison jobs known to this campaign, keyed by canonical line. */
    const std::map<std::string, PoisonRecord> &poisoned() const
    {
        return poisoned_;
    }

    /** Record one poison job (idempotent per key; thread-safe). */
    void recordPoison(const std::string &key, unsigned attempts,
                      const std::string &error);

    const std::filesystem::path &path() const { return path_; }

    /** Journal file name for a campaign string: h<fnv64>.journal. */
    static std::string fileNameFor(const std::string &campaign);

  private:
    std::filesystem::path path_;
    std::string campaign_;
    std::map<std::string, PoisonRecord> poisoned_;
    std::mutex mu_;
};

} // namespace diq::runner

#endif // DIQ_RUNNER_SUPERVISOR_HH

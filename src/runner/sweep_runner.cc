/**
 * @file
 * Implementation of runner/sweep_runner.hh (docs/ARCHITECTURE.md §7).
 */

#include "runner/sweep_runner.hh"

#include <thread>

namespace diq::runner
{

RunnerOptions
RunnerOptions::fromFlags(const util::Flags &flags)
{
    RunnerOptions o;
    o.warmupInsts = static_cast<uint64_t>(
        flags.getInt("warmup", static_cast<int64_t>(o.warmupInsts),
                     "DIQ_WARMUP"));
    o.measureInsts = static_cast<uint64_t>(
        flags.getInt("insts", static_cast<int64_t>(o.measureInsts),
                     "DIQ_INSTS"));
    int64_t jobs = flags.getInt("jobs", 0, "DIQ_JOBS");
    o.jobs = jobs > 0 ? static_cast<unsigned>(jobs) : 0;
    return o;
}

unsigned
RunnerOptions::resolvedJobs() const
{
    if (jobs > 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(RunnerOptions opts)
    : opts_(opts), jobsResolved_(opts.resolvedJobs())
{
}

SweepRunner::~SweepRunner() = default;

SimJob
SweepRunner::makeJob(const spec::ExperimentSpec &exp,
                     const trace::BenchmarkProfile &profile) const
{
    SimJob j;
    j.exp = exp;
    j.exp.benchmark = profile.name;
    j.exp.warmupInsts = opts_.warmupInsts;
    j.exp.measureInsts = opts_.measureInsts;
    j.profile = profile;
    return j;
}

const SimResult &
SweepRunner::run(const spec::ExperimentSpec &exp,
                 const trace::BenchmarkProfile &profile)
{
    SimJob job = makeJob(exp, profile);
    return cache_.getOrCompute(job.key(), [&job] {
        return executeJob(job);
    });
}

const SimResult &
SweepRunner::run(const core::SchemeConfig &scheme,
                 const trace::BenchmarkProfile &profile)
{
    spec::ExperimentSpec exp;
    exp.processor.scheme = scheme;
    return run(exp, profile);
}

void
SweepRunner::prefetch(const SweepSpec &spec)
{
    if (jobsResolved_ <= 1 || spec.size() <= 1) {
        for (const auto &[exp, profile] : spec.points())
            run(exp, profile);
        return;
    }

    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(jobsResolved_);
    for (const auto &[exp, profile] : spec.points()) {
        SimJob job = makeJob(exp, profile);
        pool_->submit([this, job = std::move(job)] {
            cache_.getOrCompute(job.key(), [&job] {
                return executeJob(job);
            });
        });
    }
    pool_->wait();
}

std::vector<const SimResult *>
SweepRunner::runAll(const SweepSpec &spec)
{
    prefetch(spec);
    std::vector<const SimResult *> out;
    out.reserve(spec.size());
    for (const auto &[exp, profile] : spec.points())
        out.push_back(&run(exp, profile));
    return out;
}

} // namespace diq::runner

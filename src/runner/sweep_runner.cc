/**
 * @file
 * Implementation of runner/sweep_runner.hh (docs/ARCHITECTURE.md §7).
 */

#include "runner/sweep_runner.hh"

#include <thread>

#include "store/result_store.hh"

namespace diq::runner
{

RunnerOptions
RunnerOptions::fromFlags(const util::Flags &flags)
{
    RunnerOptions o;
    o.warmupInsts = static_cast<uint64_t>(
        flags.getInt("warmup", static_cast<int64_t>(o.warmupInsts),
                     "DIQ_WARMUP"));
    o.measureInsts = static_cast<uint64_t>(
        flags.getInt("insts", static_cast<int64_t>(o.measureInsts),
                     "DIQ_INSTS"));
    int64_t jobs = flags.getInt("jobs", 0, "DIQ_JOBS");
    o.jobs = jobs > 0 ? static_cast<unsigned>(jobs) : 0;
    return o;
}

unsigned
RunnerOptions::resolvedJobs() const
{
    if (jobs > 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(RunnerOptions opts)
    : opts_(opts), jobsResolved_(opts.resolvedJobs())
{
}

SweepRunner::~SweepRunner()
{
    // Deadline-expired supervised attempts park their threads on the
    // supervisor reaper; join them before the fault plan / store the
    // attempts may still reference can be torn down by our owner.
    drainSupervisor();
}

SimJob
SweepRunner::makeJob(const spec::ExperimentSpec &exp,
                     const trace::BenchmarkProfile &profile) const
{
    SimJob j;
    j.exp = exp;
    j.exp.benchmark = profile.name;
    j.exp.warmupInsts = opts_.warmupInsts;
    j.exp.measureInsts = opts_.measureInsts;
    j.profile = profile;
    return j;
}

const SimResult &
SweepRunner::run(const spec::ExperimentSpec &exp,
                 const trace::BenchmarkProfile &profile)
{
    SimJob job = makeJob(exp, profile);
    return cache_.getOrCompute(job.key(), [&job] {
        return executeJob(job);
    });
}

const SimResult &
SweepRunner::run(const core::SchemeConfig &scheme,
                 const trace::BenchmarkProfile &profile)
{
    spec::ExperimentSpec exp;
    exp.processor.scheme = scheme;
    return run(exp, profile);
}

void
SweepRunner::prefetch(const SweepSpec &spec)
{
    if (jobsResolved_ <= 1 || spec.size() <= 1) {
        for (const auto &[exp, profile] : spec.points())
            run(exp, profile);
        return;
    }

    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(jobsResolved_);
    for (const auto &[exp, profile] : spec.points()) {
        SimJob job = makeJob(exp, profile);
        pool_->submit([this, job = std::move(job)] {
            cache_.getOrCompute(job.key(), [&job] {
                return executeJob(job);
            });
        });
    }
    pool_->wait();
}

std::vector<const SimResult *>
SweepRunner::runAll(const SweepSpec &spec)
{
    prefetch(spec);
    std::vector<const SimResult *> out;
    out.reserve(spec.size());
    for (const auto &[exp, profile] : spec.points())
        out.push_back(&run(exp, profile));
    return out;
}

SimResult
SweepRunner::computeSupervised(const SimJob &job)
{
    const std::string key = job.key();
    if (opts_.store) {
        if (auto hit = opts_.store->load(key)) {
            std::lock_guard<std::mutex> lock(metaMu_);
            meta_[key] = {0, true};
            return std::move(*hit);
        }
    }
    Supervised s = superviseJob(job, opts_.policy, opts_.faults);
    if (opts_.store)
        opts_.store->save(key, s.result);
    {
        std::lock_guard<std::mutex> lock(metaMu_);
        meta_[key] = {s.attempts, false};
    }
    return std::move(s.result);
}

std::vector<JobOutcome>
SweepRunner::runAllSupervised(const SweepSpec &spec,
                              SweepJournal *journal)
{
    auto isPoison = [journal](const std::string &key) {
        return journal &&
            journal->poisoned().find(key) != journal->poisoned().end();
    };

    // Prefetch across the pool. A quarantined job latches its
    // exception in the cache (the pool swallows it here); the serial
    // collection pass below turns it into a failed outcome.
    if (jobsResolved_ > 1 && spec.size() > 1) {
        if (!pool_)
            pool_ = std::make_unique<ThreadPool>(jobsResolved_);
        for (const auto &[exp, profile] : spec.points()) {
            SimJob job = makeJob(exp, profile);
            if (isPoison(job.key()))
                continue;
            pool_->submit([this, job = std::move(job)] {
                try {
                    cache_.getOrCompute(job.key(), [this, &job] {
                        return computeSupervised(job);
                    });
                } catch (const std::exception &) {
                    // Latched in the cache; reported at collection.
                }
            });
        }
        pool_->wait();
    }

    // Collect serially in spec order — the deterministic pass every
    // worker count funnels through.
    std::vector<JobOutcome> out;
    out.reserve(spec.size());
    for (const auto &[exp, profile] : spec.points()) {
        SimJob job = makeJob(exp, profile);
        const std::string key = job.key();
        JobOutcome o;
        if (journal) {
            auto it = journal->poisoned().find(key);
            if (it != journal->poisoned().end()) {
                o.attempts = it->second.attempts;
                o.error = it->second.error;
                out.push_back(std::move(o));
                continue;
            }
        }
        try {
            o.result = &cache_.getOrCompute(key, [this, &job] {
                return computeSupervised(job);
            });
            std::lock_guard<std::mutex> lock(metaMu_);
            auto it = meta_.find(key);
            if (it != meta_.end()) {
                o.attempts = it->second.first;
                o.fromStore = it->second.second;
            } else {
                o.attempts = 1; // plain cache hit from a prior sweep
            }
        } catch (const JobQuarantined &q) {
            o.attempts = q.attempts;
            o.error = q.error;
            if (journal)
                journal->recordPoison(q.key, q.attempts, q.error);
        } catch (const std::exception &e) {
            std::string reason = e.what();
            for (char &c : reason)
                if (c == '\t' || c == '\n' || c == '\r' || c == ',')
                    c = ' ';
            o.attempts = 1;
            o.error = reason;
            if (journal)
                journal->recordPoison(key, 1, reason);
        }
        out.push_back(std::move(o));
    }
    return out;
}

} // namespace diq::runner

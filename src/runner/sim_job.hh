/**
 * @file
 * Simulation job descriptor and result (docs/ARCHITECTURE.md §7).
 *
 * A SimJob is the unit of work the sweep runner schedules: one
 * spec::ExperimentSpec (machine x benchmark x budgets) plus the
 * resolved benchmark profile. Jobs are self-contained and side-effect
 * free — the workload seed derives from the benchmark name, every
 * simulation component is job-local, and no global state is touched —
 * so any set of jobs may execute in any order on any thread and still
 * produce bit-identical results.
 */

#ifndef DIQ_RUNNER_SIM_JOB_HH
#define DIQ_RUNNER_SIM_JOB_HH

#include <memory>
#include <string>

#include "power/energy_model.hh"
#include "power/metrics.hh"
#include "sim/pipeline.hh"
#include "sim/sim_stats.hh"
#include "spec/experiment_spec.hh"
#include "trace/synthetic.hh"

namespace diq::runner
{

/** One schedulable simulation. */
struct SimJob
{
    /** The experiment; `exp.benchmark` names `profile`. */
    spec::ExperimentSpec exp;

    /**
     * Resolved profile data for a plain benchmark name (profiles are
     * immutable named data). For `scenario:`/`trace:` workload tokens
     * this is a placeholder carrying the token as its name; the
     * workload itself is instantiated by trace::makeWorkload at
     * execution time.
     */
    trace::BenchmarkProfile profile;

    /**
     * Canonical memoization key: the spec's own serialization
     * (spec::ExperimentSpec::canonicalLine), so the key covers every
     * ProcessorConfig/SchemeConfig knob plus benchmark and budgets by
     * construction — there is no second, hand-maintained
     * stringification to drift out of sync.
     */
    std::string key() const { return exp.canonicalLine(); }
};

/** Outcome of one executed job. */
struct SimResult
{
    std::string benchmark;
    std::string scheme;
    double ipc = 0.0;
    sim::SimStats stats;
    power::EnergyBreakdown energy;

    power::RunEnergy
    runEnergy() const
    {
        return {energy.total(), stats.cycles, stats.committed};
    }
};

/** Map a run's event counters onto the scheme's energy breakdown. */
power::EnergyBreakdown energyFor(const core::SchemeConfig &scheme,
                                 const power::EventCounters &counters);

/**
 * Build a job from a spec, resolving the benchmark profile by name.
 * `scenario:` tokens are validated here (so grids fail at build time,
 * not mid-sweep on a worker thread); `trace:` paths are validated
 * when the file is opened at execution time.
 * @throws std::out_of_range for an unknown benchmark,
 *         std::invalid_argument for a bad scenario token.
 */
SimJob makeJob(const spec::ExperimentSpec &exp);

/**
 * Instantiate the job's workload: the seeded synthetic generator for
 * a plain benchmark name, the scenario factory for `scenario:`, the
 * `.diqt` reader for `trace:`. Exposed so callers can interpose on
 * the stream (trace::TraceRecorder tees it for `diq record`).
 * @throws trace::TraceError for an unreadable/malformed trace file,
 *         std::invalid_argument for a bad scenario token.
 */
std::unique_ptr<trace::TraceSource> makeJobWorkload(const SimJob &job);

/**
 * Execute one job to completion on the calling thread: instantiate the
 * workload, warm up, measure, and convert counters to energy.
 * Deterministic — depends only on the job descriptor.
 */
SimResult executeJob(const SimJob &job);

/**
 * The simulate-and-account core of executeJob over a caller-supplied
 * workload stream. Byte-identical results for byte-identical streams:
 * replaying a recorded trace of `workload` reproduces the run.
 */
SimResult simulateJob(const SimJob &job, trace::TraceSource &workload);

/**
 * simulateJob with a retired-stream observer: `onCommit` sees every
 * committed micro-op of the whole run (warm-up and measured region)
 * in commit order. Purely observational — the SimResult is
 * byte-identical to the unobserved run. The differential fuzz harness
 * uses this to compare retired streams across schemes
 * (fuzz/differential.hh).
 */
SimResult simulateJob(const SimJob &job, trace::TraceSource &workload,
                      const sim::Cpu::CommitHook &onCommit);

} // namespace diq::runner

#endif // DIQ_RUNNER_SIM_JOB_HH

/**
 * @file
 * Simulation job descriptor and result (docs/ARCHITECTURE.md §7).
 *
 * A SimJob is the unit of work the sweep runner schedules: one
 * spec::ExperimentSpec (machine x benchmark x budgets) plus the
 * resolved benchmark profile. Jobs are self-contained and side-effect
 * free — the workload seed derives from the benchmark name, every
 * simulation component is job-local, and no global state is touched —
 * so any set of jobs may execute in any order on any thread and still
 * produce bit-identical results.
 */

#ifndef DIQ_RUNNER_SIM_JOB_HH
#define DIQ_RUNNER_SIM_JOB_HH

#include <string>

#include "power/energy_model.hh"
#include "power/metrics.hh"
#include "sim/sim_stats.hh"
#include "spec/experiment_spec.hh"
#include "trace/synthetic.hh"

namespace diq::runner
{

/** One schedulable simulation. */
struct SimJob
{
    /** The experiment; `exp.benchmark` names `profile`. */
    spec::ExperimentSpec exp;

    /** Resolved profile data (profiles are immutable named data). */
    trace::BenchmarkProfile profile;

    /**
     * Canonical memoization key: the spec's own serialization
     * (spec::ExperimentSpec::canonicalLine), so the key covers every
     * ProcessorConfig/SchemeConfig knob plus benchmark and budgets by
     * construction — there is no second, hand-maintained
     * stringification to drift out of sync.
     */
    std::string key() const { return exp.canonicalLine(); }
};

/** Outcome of one executed job. */
struct SimResult
{
    std::string benchmark;
    std::string scheme;
    double ipc = 0.0;
    sim::SimStats stats;
    power::EnergyBreakdown energy;

    power::RunEnergy
    runEnergy() const
    {
        return {energy.total(), stats.cycles, stats.committed};
    }
};

/** Map a run's event counters onto the scheme's energy breakdown. */
power::EnergyBreakdown energyFor(const core::SchemeConfig &scheme,
                                 const power::EventCounters &counters);

/**
 * Build a job from a spec, resolving the benchmark profile by name.
 * @throws std::out_of_range for an unknown benchmark.
 */
SimJob makeJob(const spec::ExperimentSpec &exp);

/**
 * Execute one job to completion on the calling thread: instantiate the
 * workload, warm up, measure, and convert counters to energy.
 * Deterministic — depends only on the job descriptor.
 */
SimResult executeJob(const SimJob &job);

} // namespace diq::runner

#endif // DIQ_RUNNER_SIM_JOB_HH

/**
 * @file
 * Simulation job descriptor and result (docs/ARCHITECTURE.md §7).
 *
 * A SimJob is the unit of work the sweep runner schedules: one
 * (issue-scheme configuration, benchmark profile, instruction budget)
 * triple. Jobs are self-contained and side-effect free — the workload
 * seed derives from the benchmark name, every simulation component is
 * job-local, and no global state is touched — so any set of jobs may
 * execute in any order on any thread and still produce bit-identical
 * results.
 */

#ifndef DIQ_RUNNER_SIM_JOB_HH
#define DIQ_RUNNER_SIM_JOB_HH

#include <cstdint>
#include <string>

#include "core/issue_scheme.hh"
#include "power/energy_model.hh"
#include "power/metrics.hh"
#include "sim/sim_stats.hh"
#include "trace/synthetic.hh"

namespace diq::runner
{

/** One schedulable simulation: scheme x benchmark x budget. */
struct SimJob
{
    core::SchemeConfig scheme;
    trace::BenchmarkProfile profile;
    uint64_t warmupInsts = 30000;
    uint64_t measureInsts = 120000;

    /**
     * Canonical memoization key. Covers every SchemeConfig knob that
     * affects simulation (including those the display name omits:
     * chain bound, table-clearing policy, CAM capacities, FU binding)
     * plus the instruction budgets. Benchmark profiles are identified
     * by name — the suite treats profiles as immutable named data.
     */
    std::string key() const;
};

/** Outcome of one executed job. */
struct SimResult
{
    std::string benchmark;
    std::string scheme;
    double ipc = 0.0;
    sim::SimStats stats;
    power::EnergyBreakdown energy;

    power::RunEnergy
    runEnergy() const
    {
        return {energy.total(), stats.cycles, stats.committed};
    }
};

/** Map a run's event counters onto the scheme's energy breakdown. */
power::EnergyBreakdown energyFor(const core::SchemeConfig &scheme,
                                 const power::EventCounters &counters);

/**
 * Execute one job to completion on the calling thread: instantiate the
 * workload, warm up, measure, and convert counters to energy.
 * Deterministic — depends only on the job descriptor.
 */
SimResult executeJob(const SimJob &job);

} // namespace diq::runner

#endif // DIQ_RUNNER_SIM_JOB_HH

/**
 * @file
 * Declarative sweep grids (docs/ARCHITECTURE.md §7).
 *
 * A SweepSpec names every (scheme, benchmark) point a figure needs,
 * up front and in presentation order. The runner materializes the
 * points into SimJobs (attaching its instruction budgets), executes
 * them in any order across the pool, and hands results back in spec
 * order — so declaring the grid is what makes parallel output
 * deterministic.
 */

#ifndef DIQ_RUNNER_SWEEP_SPEC_HH
#define DIQ_RUNNER_SWEEP_SPEC_HH

#include <utility>
#include <vector>

#include "core/issue_scheme.hh"
#include "trace/synthetic.hh"

namespace diq::runner
{

/** Ordered grid of (scheme, benchmark) simulation points. */
class SweepSpec
{
  public:
    using Point = std::pair<core::SchemeConfig, trace::BenchmarkProfile>;

    /** Append one point. */
    void add(const core::SchemeConfig &scheme,
             const trace::BenchmarkProfile &profile);

    /** Append `scheme` over every profile, in suite order. */
    void addSuite(const core::SchemeConfig &scheme,
                  const std::vector<trace::BenchmarkProfile> &profiles);

    /** Append the full cross product, scheme-major. */
    void addGrid(const std::vector<core::SchemeConfig> &schemes,
                 const std::vector<trace::BenchmarkProfile> &profiles);

    /** Merge another spec's points after this one's. */
    void append(const SweepSpec &other);

    const std::vector<Point> &points() const { return points_; }
    size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

  private:
    std::vector<Point> points_;
};

} // namespace diq::runner

#endif // DIQ_RUNNER_SWEEP_SPEC_HH

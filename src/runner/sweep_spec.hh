/**
 * @file
 * Declarative sweep grids (docs/ARCHITECTURE.md §7-§8).
 *
 * A SweepSpec names every experiment point a figure needs, up front
 * and in presentation order. Each point is a full
 * spec::ExperimentSpec plus its resolved benchmark profile; the
 * runner executes the points in any order across the pool (attaching
 * its instruction budgets) and hands results back in spec order — so
 * declaring the grid is what makes parallel output deterministic.
 *
 * Grids are also expressible as text (`fromText`): every token is a
 * spec-layer key whose value may be a comma-separated list, and the
 * grid is the cross product of all lists, leftmost token outermost:
 *
 *   scheme=mb_distr,if_distr bench=swim,gcc chains=2,4,8
 *
 * The `bench` axis additionally accepts the suite aliases `int`,
 * `fp` and `all`, which expand to the corresponding profile lists,
 * and `scenarios`, which expands to every `scenario:<name>` in the
 * adversarial stress catalog (trace/scenarios.hh).
 */

#ifndef DIQ_RUNNER_SWEEP_SPEC_HH
#define DIQ_RUNNER_SWEEP_SPEC_HH

#include <string>
#include <utility>
#include <vector>

#include "core/issue_scheme.hh"
#include "spec/experiment_spec.hh"
#include "trace/synthetic.hh"

namespace diq::runner
{

/** Ordered grid of experiment points. */
class SweepSpec
{
  public:
    using Point =
        std::pair<spec::ExperimentSpec, trace::BenchmarkProfile>;

    /** Append one fully specified experiment (profile resolved by
     *  `exp.benchmark`). @throws std::out_of_range when unknown. */
    void add(const spec::ExperimentSpec &exp);

    /** Append one point: default machine + `scheme` on `profile`. */
    void add(const core::SchemeConfig &scheme,
             const trace::BenchmarkProfile &profile);

    /** Append `scheme` over every profile, in suite order. */
    void addSuite(const core::SchemeConfig &scheme,
                  const std::vector<trace::BenchmarkProfile> &profiles);

    /** Append the full cross product, scheme-major. */
    void addGrid(const std::vector<core::SchemeConfig> &schemes,
                 const std::vector<trace::BenchmarkProfile> &profiles);

    /** Merge another spec's points after this one's. */
    void append(const SweepSpec &other);

    /**
     * Parse the textual grid form (see the file comment). Grids that
     * would silently degenerate into duplicate rows are rejected:
     * budget keys (the runner owns the budgets), repeated axis keys,
     * and preset values placed after a scheme-knob axis (a preset
     * resets the whole scheme configuration).
     * @throws spec::ParseError with a precise message.
     */
    static SweepSpec fromText(const std::string &text);

    const std::vector<Point> &points() const { return points_; }
    size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

  private:
    std::vector<Point> points_;
};

} // namespace diq::runner

#endif // DIQ_RUNNER_SWEEP_SPEC_HH

/**
 * @file
 * Implementation of branch/predictors.hh (docs/ARCHITECTURE.md §3).
 */

#include "branch/predictors.hh"

#include <bit>

namespace diq::branch
{

namespace
{

/** Round down to a power of two (table sizes must index cleanly). */
size_t
floorPow2(size_t n)
{
    if (n == 0)
        return 1;
    return size_t{1} << (63 - std::countl_zero(static_cast<uint64_t>(n)));
}

} // namespace

// --- BimodalPredictor ------------------------------------------------------

BimodalPredictor::BimodalPredictor(size_t entries)
    : table_(floorPow2(entries),
             util::SaturatingCounter(2, /*initial=*/1))
{
}

size_t
BimodalPredictor::index(uint64_t pc) const
{
    return (pc >> 2) & (table_.size() - 1);
}

bool
BimodalPredictor::predict(uint64_t pc) const
{
    return table_[index(pc)].isSet();
}

void
BimodalPredictor::update(uint64_t pc, bool taken)
{
    table_[index(pc)].update(taken);
}

// --- GsharePredictor ------------------------------------------------------

GsharePredictor::GsharePredictor(size_t entries)
    : table_(floorPow2(entries),
             util::SaturatingCounter(2, /*initial=*/1))
{
    historyBits_ = static_cast<unsigned>(
        std::countr_zero(static_cast<uint64_t>(table_.size())));
}

size_t
GsharePredictor::index(uint64_t pc, uint64_t history) const
{
    uint64_t mask = table_.size() - 1;
    return ((pc >> 2) ^ history) & mask;
}

bool
GsharePredictor::predict(uint64_t pc, uint64_t history) const
{
    return table_[index(pc, history)].isSet();
}

void
GsharePredictor::update(uint64_t pc, uint64_t history, bool taken)
{
    table_[index(pc, history)].update(taken);
}

// --- Btb -------------------------------------------------------------------

Btb::Btb(size_t entries, unsigned assoc)
    : assoc_(assoc == 0 ? 1 : assoc)
{
    size_t num_sets = floorPow2(entries / assoc_);
    sets_.assign(num_sets, std::vector<Entry>(assoc_));
}

bool
Btb::lookup(uint64_t pc, uint64_t &target) const
{
    const auto &set = sets_[(pc >> 2) & (sets_.size() - 1)];
    for (const auto &e : set) {
        if (e.valid && e.tag == pc) {
            target = e.target;
            return true;
        }
    }
    return false;
}

void
Btb::update(uint64_t pc, uint64_t target)
{
    auto &set = sets_[(pc >> 2) & (sets_.size() - 1)];
    ++lruClock_;
    Entry *victim = &set[0];
    for (auto &e : set) {
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.lru = lruClock_;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lru = lruClock_;
}

// --- ReturnAddressStack ----------------------------------------------------

ReturnAddressStack::ReturnAddressStack(size_t entries)
    : stack_(entries == 0 ? 1 : entries)
{
}

void
ReturnAddressStack::push(uint64_t ra)
{
    top_ = (top_ + 1) % stack_.size();
    stack_[top_] = ra;
    if (size_ < stack_.size())
        ++size_;
}

uint64_t
ReturnAddressStack::pop()
{
    if (size_ == 0)
        return 0;
    uint64_t ra = stack_[top_];
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --size_;
    return ra;
}

// --- HybridPredictor -------------------------------------------------------

HybridPredictor::HybridPredictor(size_t gshare_entries,
                                 size_t bimodal_entries,
                                 size_t selector_entries,
                                 size_t btb_entries, unsigned btb_assoc)
    : gshare_(gshare_entries), bimodal_(bimodal_entries),
      selector_(floorPow2(selector_entries),
                util::SaturatingCounter(2, /*initial=*/1)),
      btb_(btb_entries, btb_assoc)
{
}

size_t
HybridPredictor::selIndex(uint64_t pc) const
{
    return (pc >> 2) & (selector_.size() - 1);
}

BranchPrediction
HybridPredictor::predict(uint64_t pc) const
{
    BranchPrediction p;
    bool use_gshare = selector_[selIndex(pc)].isSet();
    p.taken = use_gshare ? gshare_.predict(pc, history_)
                         : bimodal_.predict(pc);
    p.btbHit = btb_.lookup(pc, p.target);
    return p;
}

bool
HybridPredictor::predictAndUpdate(uint64_t pc, bool taken, uint64_t target)
{
    BranchPrediction p = predict(pc);
    bool g = gshare_.predict(pc, history_);
    bool b = bimodal_.predict(pc);

    bool correct = (p.taken == taken) &&
        (!taken || (p.btbHit && p.target == target));

    ++lookups_;
    if (!correct)
        ++mispredicts_;

    // Selector trains toward the component that was right (only when
    // they disagree, the classic tournament update rule).
    if (g != b)
        selector_[selIndex(pc)].update(g == taken);
    gshare_.update(pc, history_, taken);
    bimodal_.update(pc, taken);
    if (taken)
        btb_.update(pc, target);

    uint64_t mask = (uint64_t{1} << gshare_.historyBits()) - 1;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask;

    return correct;
}

} // namespace diq::branch

/**
 * @file
 * Branch direction predictors and target structures matching Table 1 of
 * the paper: a hybrid of a 2K-entry gshare and a 2K-entry bimodal with
 * a 1K-entry selector, a 2048-entry 4-way BTB, and a return address
 * stack (unused by the synthetic traces but part of the front-end).
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §3.
 */

#ifndef DIQ_BRANCH_PREDICTORS_HH
#define DIQ_BRANCH_PREDICTORS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/saturating_counter.hh"

namespace diq::ckpt
{
class Archive;
}

namespace diq::branch
{

/** Result of a front-end branch lookup. */
struct BranchPrediction
{
    bool taken = false;     ///< predicted direction
    bool btbHit = false;    ///< BTB produced a target
    uint64_t target = 0;    ///< predicted target (valid if btbHit)
};

/** Classic per-PC 2-bit bimodal predictor. */
class BimodalPredictor
{
  public:
    explicit BimodalPredictor(size_t entries = 2048);

    bool predict(uint64_t pc) const;
    void update(uint64_t pc, bool taken);

    size_t numEntries() const { return table_.size(); }

    /** Snapshot codec hook (src/ckpt). */
    void serialize(ckpt::Archive &ar);

  private:
    size_t index(uint64_t pc) const;
    std::vector<util::SaturatingCounter> table_;
};

/** Gshare: PC xor global-history indexed 2-bit counters. */
class GsharePredictor
{
  public:
    explicit GsharePredictor(size_t entries = 2048);

    bool predict(uint64_t pc, uint64_t history) const;
    void update(uint64_t pc, uint64_t history, bool taken);

    size_t numEntries() const { return table_.size(); }
    unsigned historyBits() const { return historyBits_; }

    /** Snapshot codec hook (src/ckpt). */
    void serialize(ckpt::Archive &ar);

  private:
    size_t index(uint64_t pc, uint64_t history) const;
    std::vector<util::SaturatingCounter> table_;
    unsigned historyBits_;
};

/**
 * Branch target buffer, set-associative with LRU replacement
 * (2048 entries, 4-way in the paper's configuration).
 */
class Btb
{
  public:
    Btb(size_t entries = 2048, unsigned assoc = 4);

    /** @retval true and fills target on hit. */
    bool lookup(uint64_t pc, uint64_t &target) const;

    /** Install/refresh the target of a taken branch. */
    void update(uint64_t pc, uint64_t target);

    size_t numSets() const { return sets_.size(); }
    unsigned assoc() const { return assoc_; }

    /** Snapshot codec hook (src/ckpt). */
    void serialize(ckpt::Archive &ar);

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t target = 0;
        uint64_t lru = 0;
    };

    std::vector<std::vector<Entry>> sets_;
    unsigned assoc_;
    uint64_t lruClock_ = 0;
};

/** Return address stack (wrap-around, no overflow recovery). */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(size_t entries = 16);

    void push(uint64_t ra);
    uint64_t pop();
    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

  private:
    std::vector<uint64_t> stack_;
    size_t top_ = 0;
    size_t size_ = 0;
};

/**
 * The paper's hybrid predictor: a 1K-entry selector of 2-bit counters
 * chooses between gshare and bimodal per branch PC; the BTB supplies
 * targets. A single speculative global history register is maintained
 * internally (updated with actual outcomes, the standard trace-driven
 * idealization).
 */
class HybridPredictor
{
  public:
    HybridPredictor(size_t gshare_entries = 2048,
                    size_t bimodal_entries = 2048,
                    size_t selector_entries = 1024,
                    size_t btb_entries = 2048, unsigned btb_assoc = 4);

    /** Look up direction and target for a branch at `pc`. */
    BranchPrediction predict(uint64_t pc) const;

    /**
     * Train all components with the resolved outcome and advance the
     * global history.
     * @return true if the prediction made with the pre-update state
     *         was correct (direction, and target when taken).
     */
    bool predictAndUpdate(uint64_t pc, bool taken, uint64_t target);

    uint64_t history() const { return history_; }

    /** Direction-only accuracy counters. */
    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }

    /** Snapshot codec hook (src/ckpt): all component tables, the
     *  history register and the accuracy counters. */
    void serialize(ckpt::Archive &ar);

  private:
    GsharePredictor gshare_;
    BimodalPredictor bimodal_;
    std::vector<util::SaturatingCounter> selector_;
    Btb btb_;
    uint64_t history_ = 0;
    uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;

    size_t selIndex(uint64_t pc) const;
};

} // namespace diq::branch

#endif // DIQ_BRANCH_PREDICTORS_HH

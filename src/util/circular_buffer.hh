/**
 * @file
 * Fixed-capacity circular FIFO buffer.
 *
 * Backs every in-order hardware queue in the model: the fetch queue,
 * the reorder buffer, the load/store queue and the IssueFIFO/LatFIFO
 * queues. Indexed access (0 = head/oldest) is provided because several
 * structures scan their occupants (e.g. the LSQ disambiguation walk).
 *
 * Index arithmetic uses conditional wrap instead of `% capacity_`:
 * capacities are runtime values (rarely powers of two), so the modulo
 * compiles to an integer divide on the hottest accessor of the LSQ and
 * ROB walks; a compare-and-subtract costs one predictable branch.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §2.
 */

#ifndef DIQ_UTIL_CIRCULAR_BUFFER_HH
#define DIQ_UTIL_CIRCULAR_BUFFER_HH

#include <cassert>
#include <cstddef>
#include <vector>

namespace diq::util
{

/** Fixed-capacity FIFO with O(1) push/pop and O(1) random access. */
template <typename T>
class CircularBuffer
{
  public:
    explicit CircularBuffer(size_t capacity)
        : data_(capacity), capacity_(capacity)
    {
        assert(capacity > 0);
    }

    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == capacity_; }
    size_t size() const { return size_; }
    size_t capacity() const { return capacity_; }
    size_t freeSlots() const { return capacity_ - size_; }

    /** Append at the tail. Returns false when full. */
    bool
    pushBack(const T &v)
    {
        if (full())
            return false;
        data_[wrap(head_ + size_)] = v;
        ++size_;
        return true;
    }

    /**
     * Append at the tail in place, returning the slot to fill.
     * The slot holds the stale value of a previous occupant — the
     * caller must assign every field. Returns nullptr when full.
     */
    T *
    emplaceBack()
    {
        if (full())
            return nullptr;
        T *slot = &data_[wrap(head_ + size_)];
        ++size_;
        return slot;
    }

    /** Remove and return the head (oldest) element. */
    T
    popFront()
    {
        assert(!empty());
        T v = data_[head_];
        head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
        --size_;
        return v;
    }

    /** Remove the tail (youngest) element; used for squash-from-tail. */
    T
    popBack()
    {
        assert(!empty());
        --size_;
        return data_[wrap(head_ + size_)];
    }

    const T &front() const { assert(!empty()); return data_[head_]; }
    T &front() { assert(!empty()); return data_[head_]; }

    const T &
    back() const
    {
        assert(!empty());
        return data_[wrap(head_ + size_ - 1)];
    }

    T &
    back()
    {
        assert(!empty());
        return data_[wrap(head_ + size_ - 1)];
    }

    /** Index 0 is the oldest element. */
    const T &
    at(size_t i) const
    {
        assert(i < size_);
        return data_[wrap(head_ + i)];
    }

    T &
    at(size_t i)
    {
        assert(i < size_);
        return data_[wrap(head_ + i)];
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    /** head_ < capacity_ and the offset < capacity_, so one subtract
     *  replaces the modulo. */
    size_t
    wrap(size_t i) const
    {
        return i >= capacity_ ? i - capacity_ : i;
    }

    std::vector<T> data_;
    size_t capacity_;
    size_t head_ = 0;
    size_t size_ = 0;
};

} // namespace diq::util

#endif // DIQ_UTIL_CIRCULAR_BUFFER_HH

/**
 * @file
 * Word-granular bitset for wakeup/select sweeps.
 *
 * The issue-queue rework replaced per-entry container walks with
 * sweeps over uint64_t occupancy/wait masks: a 64-entry cluster is
 * one word, so "find every armed cell" is a handful of AND/CTZ
 * instructions instead of sixty-four pointer chases. std::bitset is
 * not usable here because the widths are runtime parameters (queue
 * geometry is a config knob) and because the sweeps need direct word
 * access to combine masks before scanning.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §10.
 */

#ifndef DIQ_UTIL_BIT_WORDS_HH
#define DIQ_UTIL_BIT_WORDS_HH

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace diq::util
{

/** Dynamic bitset stored as 64-bit words, built for mask sweeps. */
class BitWords
{
  public:
    static constexpr size_t WordBits = 64;
    static constexpr size_t npos = static_cast<size_t>(-1);

    BitWords() = default;
    explicit BitWords(size_t bits) { resize(bits); }

    /** Resize to exactly `bits`, clearing everything. */
    void
    resize(size_t bits)
    {
        bits_ = bits;
        w_.assign((bits + WordBits - 1) / WordBits, 0);
    }

    /** Grow to at least `bits`, preserving existing bits. */
    void
    growTo(size_t bits)
    {
        if (bits <= bits_)
            return;
        bits_ = bits;
        w_.resize((bits + WordBits - 1) / WordBits, 0);
    }

    size_t size() const { return bits_; }
    size_t numWords() const { return w_.size(); }

    void
    set(size_t i)
    {
        assert(i < bits_);
        w_[i / WordBits] |= uint64_t(1) << (i % WordBits);
    }

    void
    clear(size_t i)
    {
        assert(i < bits_);
        w_[i / WordBits] &= ~(uint64_t(1) << (i % WordBits));
    }

    void
    assign(size_t i, bool v)
    {
        v ? set(i) : clear(i);
    }

    bool
    test(size_t i) const
    {
        assert(i < bits_);
        return (w_[i / WordBits] >> (i % WordBits)) & 1;
    }

    /** Clear every bit, keeping the size. */
    void
    clearAll()
    {
        for (auto &w : w_)
            w = 0;
    }

    /** Set every bit < size() (tail bits of the last word stay 0). */
    void
    setAll()
    {
        for (auto &w : w_)
            w = ~uint64_t(0);
        maskTail();
    }

    bool
    any() const
    {
        for (uint64_t w : w_)
            if (w)
                return true;
        return false;
    }

    bool none() const { return !any(); }

    size_t
    count() const
    {
        size_t n = 0;
        for (uint64_t w : w_)
            n += static_cast<size_t>(std::popcount(w));
        return n;
    }

    /** Index of the lowest set bit, or npos when empty. */
    size_t
    findFirst() const
    {
        for (size_t wi = 0; wi < w_.size(); ++wi)
            if (w_[wi])
                return wi * WordBits +
                       static_cast<size_t>(std::countr_zero(w_[wi]));
        return npos;
    }

    /**
     * Index of the lowest *clear* bit in [0, limit), or npos when the
     * range is fully set (free-slot allocation over occupancy masks).
     */
    size_t
    findFirstClear(size_t limit) const
    {
        assert(limit <= bits_);
        for (size_t wi = 0; wi * WordBits < limit; ++wi) {
            uint64_t inv = ~w_[wi];
            if (!inv)
                continue;
            size_t i = wi * WordBits +
                       static_cast<size_t>(std::countr_zero(inv));
            return i < limit ? i : npos;
        }
        return npos;
    }

    /** Raw word access for mask algebra at the call site. */
    uint64_t word(size_t wi) const { return w_[wi]; }
    uint64_t &word(size_t wi) { return w_[wi]; }

    /**
     * Invoke `fn(index)` for every set bit, lowest first. The word is
     * snapshotted before scanning, so `fn` may clear bits of `this`
     * (lazy wait-bit clearing does exactly that).
     */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (size_t wi = 0; wi < w_.size(); ++wi) {
            for (uint64_t w = w_[wi]; w; w &= w - 1) {
                fn(wi * WordBits +
                   static_cast<size_t>(std::countr_zero(w)));
            }
        }
    }

    bool operator==(const BitWords &) const = default;

  private:
    /** Zero the bits of the last word beyond size(). */
    void
    maskTail()
    {
        size_t tail = bits_ % WordBits;
        if (tail && !w_.empty())
            w_.back() &= (uint64_t(1) << tail) - 1;
    }

    std::vector<uint64_t> w_;
    size_t bits_ = 0;
};

} // namespace diq::util

#endif // DIQ_UTIL_BIT_WORDS_HH

/**
 * @file
 * Console table formatting for the benchmark harness.
 *
 * Every figure-reproduction binary prints its series as an aligned
 * text table plus a machine-readable CSV block, so results can be both
 * eyeballed and scraped.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §2.
 */

#ifndef DIQ_UTIL_TABLE_PRINTER_HH
#define DIQ_UTIL_TABLE_PRINTER_HH

#include <string>
#include <vector>

namespace diq::util
{

/** Builds and renders a simple column-aligned table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Add a full row; missing cells render empty, extras are kept. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with fixed precision. */
    static std::string fmt(double v, int precision = 3);

    /** Format as a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render with padding and a header underline. */
    std::string render() const;

    /** Render as CSV (comma-separated, no quoting of commas needed). */
    std::string renderCsv() const;

    /** Render as a GitHub-flavored markdown table. */
    std::string renderMarkdown() const;

    /** Column headers, as constructed. */
    const std::vector<std::string> &headers() const { return headers_; }

    /** Rows, as added; cells may be fewer/more than headers. */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace diq::util

#endif // DIQ_UTIL_TABLE_PRINTER_HH

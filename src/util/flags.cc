/**
 * @file
 * Implementation of util/flags.hh (docs/ARCHITECTURE.md §2).
 */

#include "util/flags.hh"

#include <cstdlib>

namespace diq::util
{

Flags::Flags(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            pos_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            values_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)
                   != 0) {
            values_[body] = argv[++i];
        } else {
            values_[body] = "1";
        }
    }
}

bool
Flags::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::string
Flags::getString(const std::string &name, const std::string &def,
                 const std::string &env) const
{
    auto it = values_.find(name);
    if (it != values_.end())
        return it->second;
    if (!env.empty()) {
        if (const char *v = std::getenv(env.c_str()))
            return v;
    }
    return def;
}

int64_t
Flags::getInt(const std::string &name, int64_t def,
              const std::string &env) const
{
    std::string s = getString(name, "", env);
    if (s.empty())
        return def;
    try {
        return std::stoll(s);
    } catch (...) {
        return def;
    }
}

double
Flags::getDouble(const std::string &name, double def,
                 const std::string &env) const
{
    std::string s = getString(name, "", env);
    if (s.empty())
        return def;
    try {
        return std::stod(s);
    } catch (...) {
        return def;
    }
}

bool
Flags::getBool(const std::string &name, bool def,
               const std::string &env) const
{
    std::string s = getString(name, "", env);
    if (s.empty())
        return def;
    return s != "0" && s != "false" && s != "no";
}

} // namespace diq::util

/**
 * @file
 * Lightweight statistics helpers used across the simulator and the
 * experiment harness: running means, harmonic means (the paper reports
 * HARMEAN of per-benchmark IPC), histograms and simple counters.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §2.
 */

#ifndef DIQ_UTIL_STATS_HH
#define DIQ_UTIL_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace diq::util
{

/** Arithmetic mean of a vector; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/**
 * Harmonic mean of a vector. The paper summarizes per-benchmark IPC
 * with the harmonic mean (HARMEAN columns of Figures 7 and 8).
 * Non-positive entries are rejected with a value of 0.
 */
double harmonicMean(const std::vector<double> &xs);

/** Geometric mean; 0 for empty input or any non-positive entry. */
double geometricMean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &xs);

/**
 * Running scalar statistic: count / sum / min / max / mean without
 * storing samples.
 */
class RunningStat
{
  public:
    void
    add(double x)
    {
        if (n_ == 0) {
            min_ = max_ = x;
        } else {
            min_ = std::min(min_, x);
            max_ = std::max(max_, x);
        }
        sum_ += x;
        ++n_;
    }

    uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    void
    reset()
    {
        n_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

  private:
    uint64_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Integer-bucketed histogram with bounded range; out-of-range samples
 * clamp to the first/last bucket. Used by tests and the workload
 * characterization example to validate generator properties.
 */
class Histogram
{
  public:
    Histogram(int64_t lo, int64_t hi);

    void add(int64_t x, uint64_t weight = 1);

    uint64_t total() const { return total_; }
    uint64_t bucket(int64_t x) const;
    int64_t lo() const { return lo_; }
    int64_t hi() const { return hi_; }

    /** Mean of the recorded (clamped) samples. */
    double sampleMean() const;

    /** Smallest value v such that P(X <= v) >= q, q in [0,1]. */
    int64_t percentile(double q) const;

    std::string toString(int max_rows = 16) const;

  private:
    int64_t lo_;
    int64_t hi_;
    std::vector<uint64_t> buckets_;
    uint64_t total_ = 0;
    double weighted_sum_ = 0.0;
};

/**
 * Named counter set: a tiny string->uint64 map with formatted dumping.
 * General-purpose utility for cold paths and ad-hoc tooling. The
 * simulator's per-instruction event accounting does NOT use this any
 * more: hot-path counters are the dense, enum-indexed
 * power::EventCounters bank (power/event_counters.hh), which recovers
 * names only at the reporting boundary.
 */
class CounterSet
{
  public:
    uint64_t &operator[](const std::string &name) { return counters_[name]; }

    uint64_t get(const std::string &name) const;
    bool has(const std::string &name) const;
    void add(const std::string &name, uint64_t delta);
    void clear() { counters_.clear(); }

    const std::map<std::string, uint64_t> &all() const { return counters_; }

    std::string toString() const;

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace diq::util

#endif // DIQ_UTIL_STATS_HH

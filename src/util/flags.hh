/**
 * @file
 * Minimal command-line / environment flag parsing for the harness
 * binaries. Supports `--name=value`, `--name value` and boolean
 * `--name` forms, with environment-variable fallbacks (e.g. DIQ_INSTS)
 * so the whole bench suite can be scaled globally.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §2.
 */

#ifndef DIQ_UTIL_FLAGS_HH
#define DIQ_UTIL_FLAGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace diq::util
{

/** Parsed command-line flags with typed accessors. */
class Flags
{
  public:
    Flags() = default;
    Flags(int argc, const char *const *argv);

    /** True if the flag was given on the command line. */
    bool has(const std::string &name) const;

    /**
     * String lookup: command line wins, then environment variable
     * `env` (if non-empty), then `def`.
     */
    std::string getString(const std::string &name, const std::string &def,
                          const std::string &env = "") const;

    int64_t getInt(const std::string &name, int64_t def,
                   const std::string &env = "") const;

    double getDouble(const std::string &name, double def,
                     const std::string &env = "") const;

    bool getBool(const std::string &name, bool def,
                 const std::string &env = "") const;

    /** Non-flag positional arguments in order. */
    const std::vector<std::string> &positional() const { return pos_; }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> pos_;
};

} // namespace diq::util

#endif // DIQ_UTIL_FLAGS_HH

/**
 * @file
 * Saturating counters.
 *
 * Two flavours live here:
 *  - SaturatingCounter: the classic n-bit up/down counter used by the
 *    branch predictors (bimodal/gshare PHTs and the hybrid selector).
 *  - SaturatingDownCounter: the chain-latency entry of the MixBUFF
 *    scheme (paper §3.2.1): "all the entries [are decremented] by one
 *    ... using saturated counters", saturating at zero, and reloaded
 *    with an instruction latency when its chain issues.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §2.
 */

#ifndef DIQ_UTIL_SATURATING_COUNTER_HH
#define DIQ_UTIL_SATURATING_COUNTER_HH

#include <cstdint>

namespace diq::util
{

/**
 * An n-bit saturating up/down counter (1 <= bits <= 16).
 *
 * The counter value stays within [0, 2^bits - 1]. For 2-bit branch
 * prediction counters, values >= 2 conventionally mean "taken".
 */
class SaturatingCounter
{
  public:
    explicit SaturatingCounter(unsigned bits = 2, uint16_t initial = 0)
        : max_(static_cast<uint16_t>((1u << (bits < 16 ? bits : 16)) - 1)),
          value_(initial > max_ ? max_ : initial)
    {
    }

    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Move toward taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        taken ? increment() : decrement();
    }

    uint16_t value() const { return value_; }
    uint16_t max() const { return max_; }

    /** MSB set: predict taken / prefer second choice. */
    bool isSet() const { return value_ > max_ / 2; }

    void
    reset(uint16_t v = 0)
    {
        value_ = v > max_ ? max_ : v;
    }

  private:
    uint16_t max_;
    uint16_t value_;
};

/**
 * Saturating down-counter with load, as used by the MixBUFF chain
 * latency table. Decrements toward zero once per cycle; `load()` sets
 * the remaining-latency value (clamped to the encodable maximum, which
 * the paper sizes to the largest functional-unit latency).
 */
class SaturatingDownCounter
{
  public:
    explicit SaturatingDownCounter(uint32_t max_value = 31)
        : max_(max_value), value_(0)
    {
    }

    /** Load a new remaining-latency; values clamp to the counter max. */
    void
    load(uint32_t v)
    {
        value_ = v > max_ ? max_ : v;
    }

    /** One-cycle decrement, saturating at zero. */
    void
    tick()
    {
        if (value_ > 0)
            --value_;
    }

    uint32_t value() const { return value_; }
    uint32_t max() const { return max_; }
    bool zero() const { return value_ == 0; }

  private:
    uint32_t max_;
    uint32_t value_;
};

} // namespace diq::util

#endif // DIQ_UTIL_SATURATING_COUNTER_HH

/**
 * @file
 * Implementation of util/stats.hh (docs/ARCHITECTURE.md §2).
 */

#include "util/stats.hh"

#include <cmath>
#include <sstream>

namespace diq::util
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / xs.size();
}

double
harmonicMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        s += 1.0 / x;
    }
    return xs.size() / s;
}

double
geometricMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        s += std::log(x);
    }
    return std::exp(s / xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / xs.size());
}

Histogram::Histogram(int64_t lo, int64_t hi)
    : lo_(lo), hi_(hi)
{
    if (hi_ < lo_)
        hi_ = lo_;
    buckets_.assign(static_cast<size_t>(hi_ - lo_ + 1), 0);
}

void
Histogram::add(int64_t x, uint64_t weight)
{
    int64_t clamped = std::clamp(x, lo_, hi_);
    buckets_[static_cast<size_t>(clamped - lo_)] += weight;
    total_ += weight;
    weighted_sum_ += static_cast<double>(clamped) * weight;
}

uint64_t
Histogram::bucket(int64_t x) const
{
    if (x < lo_ || x > hi_)
        return 0;
    return buckets_[static_cast<size_t>(x - lo_)];
}

double
Histogram::sampleMean() const
{
    return total_ ? weighted_sum_ / total_ : 0.0;
}

int64_t
Histogram::percentile(double q) const
{
    if (total_ == 0)
        return lo_;
    q = std::clamp(q, 0.0, 1.0);
    uint64_t target = static_cast<uint64_t>(std::ceil(q * total_));
    if (target == 0)
        target = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return lo_ + static_cast<int64_t>(i);
    }
    return hi_;
}

std::string
Histogram::toString(int max_rows) const
{
    std::ostringstream os;
    uint64_t peak = 0;
    for (uint64_t b : buckets_)
        peak = std::max(peak, b);
    int rows = 0;
    for (size_t i = 0; i < buckets_.size() && rows < max_rows; ++i) {
        if (buckets_[i] == 0)
            continue;
        int bar = peak ? static_cast<int>(40 * buckets_[i] / peak) : 0;
        os << (lo_ + static_cast<int64_t>(i)) << "\t" << buckets_[i] << "\t"
           << std::string(static_cast<size_t>(bar), '#') << "\n";
        ++rows;
    }
    return os.str();
}

uint64_t
CounterSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

bool
CounterSet::has(const std::string &name) const
{
    return counters_.count(name) != 0;
}

void
CounterSet::add(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

std::string
CounterSet::toString() const
{
    std::ostringstream os;
    for (const auto &[k, v] : counters_)
        os << k << " = " << v << "\n";
    return os.str();
}

} // namespace diq::util

/**
 * @file
 * Implementation of util/table_printer.hh (docs/ARCHITECTURE.md §2).
 */

#include "util/table_printer.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace diq::util
{

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << (fraction * 100.0)
       << "%";
    return os.str();
}

std::string
TablePrinter::render() const
{
    size_t ncols = headers_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());

    std::vector<size_t> width(ncols, 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < ncols; ++c) {
            std::string cell = c < cells.size() ? cells[c] : "";
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << cell;
        }
        os << "\n";
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < ncols; ++c)
        total += width[c] + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &r : rows_)
        emit_row(r);
    return os.str();
}

std::string
TablePrinter::renderCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
TablePrinter::renderMarkdown() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells, size_t ncols) {
        os << "|";
        for (size_t c = 0; c < ncols; ++c)
            os << " " << (c < cells.size() ? cells[c] : "") << " |";
        os << "\n";
    };
    size_t ncols = headers_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());
    emit(headers_, ncols);
    os << "|";
    for (size_t c = 0; c < ncols; ++c)
        os << "---|";
    os << "\n";
    for (const auto &r : rows_)
        emit(r, ncols);
    return os.str();
}

} // namespace diq::util

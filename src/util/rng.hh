/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All stochastic choices in the simulator and the synthetic workload
 * generators flow through Rng so that every experiment is reproducible
 * bit-for-bit from a seed. The generator is xoshiro256**, which is fast,
 * has a 2^256-1 period and passes BigCrush; quality matters because the
 * workload generators draw millions of variates per run.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §2.
 */

#ifndef DIQ_UTIL_RNG_HH
#define DIQ_UTIL_RNG_HH

#include <cstdint>
#include <string_view>

namespace diq::util
{

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Not thread-safe; each simulation component owns its own instance,
 * seeded from a master seed plus a component-specific stream id so that
 * adding draws in one component never perturbs another.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Construct from a seed and a stream id (independent stream). */
    Rng(uint64_t seed, uint64_t stream);

    /** Derive a deterministic seed from a string (e.g. benchmark name). */
    static uint64_t hashString(std::string_view s);

    /** Next raw 64-bit value. Inline: drawn on simulation hot paths. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;

        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        // Lemire's multiply-shift rejection method (unbiased).
        uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        uint64_t l = static_cast<uint64_t>(m);
        if (l < bound) {
            uint64_t t = -bound % bound;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool
    nextBool(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /**
     * Geometric-ish draw: number of failures before first success with
     * success probability p; capped at `cap` to bound tail latency.
     */
    uint32_t nextGeometric(double p, uint32_t cap = 1024);

  private:
    uint64_t s_[4];

    static uint64_t rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t splitmix64(uint64_t &x);
};

} // namespace diq::util

#endif // DIQ_UTIL_RNG_HH

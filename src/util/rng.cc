/**
 * @file
 * Implementation of util/rng.hh (docs/ARCHITECTURE.md §2).
 */

#include "util/rng.hh"

#include <cmath>

namespace diq::util
{

uint64_t
Rng::splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &w : s_)
        w = splitmix64(x);
}

Rng::Rng(uint64_t seed, uint64_t stream)
    : Rng(seed ^ (0x94d049bb133111ebull * (stream + 1)))
{
}

uint64_t
Rng::hashString(std::string_view s)
{
    // FNV-1a, then one splitmix64 finalization round for avalanche.
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    uint64_t x = h;
    return splitmix64(x);
}

static inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
        uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    if (lo >= hi)
        return lo;
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

uint32_t
Rng::nextGeometric(double p, uint32_t cap)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return cap;
    uint32_t n = 0;
    while (n < cap && !nextBool(p))
        ++n;
    return n;
}

} // namespace diq::util

/**
 * @file
 * Implementation of util/rng.hh (docs/ARCHITECTURE.md §2).
 */

#include "util/rng.hh"

#include <cmath>

namespace diq::util
{

uint64_t
Rng::splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &w : s_)
        w = splitmix64(x);
}

Rng::Rng(uint64_t seed, uint64_t stream)
    : Rng(seed ^ (0x94d049bb133111ebull * (stream + 1)))
{
}

uint64_t
Rng::hashString(std::string_view s)
{
    // FNV-1a, then one splitmix64 finalization round for avalanche.
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    uint64_t x = h;
    return splitmix64(x);
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    if (lo >= hi)
        return lo;
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBounded(span));
}

uint32_t
Rng::nextGeometric(double p, uint32_t cap)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return cap;
    uint32_t n = 0;
    while (n < cap && !nextBool(p))
        ++n;
    return n;
}

} // namespace diq::util

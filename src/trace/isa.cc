/**
 * @file
 * Implementation of trace/isa.hh (docs/ARCHITECTURE.md §5).
 */

#include "trace/isa.hh"

#include <sstream>

namespace diq::trace
{

std::string
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::Nop:
        return "Nop";
      case OpClass::IntAlu:
        return "IntAlu";
      case OpClass::IntMult:
        return "IntMult";
      case OpClass::IntDiv:
        return "IntDiv";
      case OpClass::FpAdd:
        return "FpAdd";
      case OpClass::FpMult:
        return "FpMult";
      case OpClass::FpDiv:
        return "FpDiv";
      case OpClass::Load:
        return "Load";
      case OpClass::Store:
        return "Store";
      case OpClass::Branch:
        return "Branch";
      default:
        return "?";
    }
}

std::string
MicroOp::toString() const
{
    std::ostringstream os;
    os << std::hex << "0x" << pc << std::dec << " " << opClassName(op);
    if (dest != NoReg)
        os << " d=" << static_cast<int>(dest);
    if (src1 != NoReg)
        os << " s1=" << static_cast<int>(src1);
    if (src2 != NoReg)
        os << " s2=" << static_cast<int>(src2);
    if (isMem())
        os << std::hex << " @0x" << memAddr << std::dec;
    if (isBranch())
        os << (taken ? " T" : " NT");
    return os.str();
}

} // namespace diq::trace

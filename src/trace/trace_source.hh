/**
 * @file
 * Abstract dynamic-instruction stream.
 *
 * The pipeline front-end consumes MicroOps from a TraceSource. Sources
 * are infinite (generators loop forever) or finite (fixed vectors used
 * by unit tests); `next()` reports availability.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §5.
 */

#ifndef DIQ_TRACE_TRACE_SOURCE_HH
#define DIQ_TRACE_TRACE_SOURCE_HH

#include <string>
#include <vector>

#include "trace/isa.hh"

namespace diq::trace
{

/** A stream of dynamic micro-ops in program order. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next micro-op in program order.
     * @retval true an op was produced; false on end-of-stream.
     */
    virtual bool next(MicroOp &out) = 0;

    /** Restart the stream from the beginning (same deterministic run). */
    virtual void reset() = 0;

    /**
     * Discard the next `n` ops (stopping early at end-of-stream).
     * Because every source is deterministic (reset() replays the same
     * stream), a fresh source plus skip(n) lands exactly where a
     * consumed source stood after n next() calls — the contract the
     * snapshot trace cursor relies on (src/ckpt/snapshot.hh). The
     * default consumes ops one by one; sources with cheaper random
     * access may override.
     */
    virtual void
    skip(uint64_t n)
    {
        MicroOp scratch;
        while (n-- > 0)
            if (!next(scratch))
                return;
    }

    /** Workload name for reporting. */
    virtual const std::string &name() const = 0;
};

/**
 * A finite trace backed by a vector, optionally repeated. Used heavily
 * by the unit tests to drive the pipeline with hand-built sequences.
 */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<MicroOp> ops,
                         std::string name = "vector",
                         bool repeat = false)
        : ops_(std::move(ops)), name_(std::move(name)), repeat_(repeat)
    {
    }

    bool
    next(MicroOp &out) override
    {
        if (pos_ >= ops_.size()) {
            if (!repeat_ || ops_.empty())
                return false;
            pos_ = 0;
        }
        out = ops_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    const std::string &name() const override { return name_; }

    size_t size() const { return ops_.size(); }

  private:
    std::vector<MicroOp> ops_;
    std::string name_;
    bool repeat_;
    size_t pos_ = 0;
};

} // namespace diq::trace

#endif // DIQ_TRACE_TRACE_SOURCE_HH

/**
 * @file
 * SPEC2000-like synthetic benchmark suite.
 *
 * One BenchmarkProfile per SPEC CPU2000 program (12 SPECint + 14
 * SPECfp), each calibrated to mimic the stream-level character of its
 * namesake: dependence-graph width, chain-op latencies, memory
 * footprint/pattern and branch behaviour (docs/ARCHITECTURE.md §5 documents the
 * substitution). Profiles are data, not code — see spec2000.cc for the
 * per-program rationale comments.
 */

#ifndef DIQ_TRACE_SPEC2000_HH
#define DIQ_TRACE_SPEC2000_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic.hh"

namespace diq::trace
{

/** The 12 SPECint2000-like profiles, in the paper's figure order. */
const std::vector<BenchmarkProfile> &specIntProfiles();

/** The 14 SPECfp2000-like profiles, in the paper's figure order. */
const std::vector<BenchmarkProfile> &specFpProfiles();

/** Both suites: SPECint first, then SPECfp. */
std::vector<BenchmarkProfile> allSpecProfiles();

/**
 * Look up a profile by name ("gcc", "swim", ...).
 * @throws std::out_of_range for unknown names.
 */
const BenchmarkProfile &specProfile(const std::string &name);

/**
 * Instantiate the deterministic workload for a profile; the stream
 * seed is derived from the benchmark name so runs are reproducible and
 * independent of evaluation order.
 */
std::unique_ptr<SyntheticWorkload>
makeSpecWorkload(const BenchmarkProfile &profile);

/** Convenience: by name. */
std::unique_ptr<SyntheticWorkload>
makeSpecWorkload(const std::string &name);

} // namespace diq::trace

#endif // DIQ_TRACE_SPEC2000_HH

/**
 * @file
 * Implementation of trace/synthetic.hh (docs/ARCHITECTURE.md §5).
 */

#include "trace/synthetic.hh"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace diq::trace
{

namespace
{

// Fixed-role integer registers. The rotating value pools deliberately
// exclude them.
constexpr int8_t regLoopCounter = 28;
constexpr int8_t regBasePointer = 29; // never written: always ready
constexpr int8_t regChasePtr = 30;

constexpr int intPoolBase = 1;
constexpr int intPoolSize = 27; // r1..r27
constexpr int fpPoolBase = FpRegBase;
constexpr int fpPoolSize = NumFpRegs;

} // namespace

SyntheticWorkload::SyntheticWorkload(const BenchmarkProfile &profile,
                                     uint64_t seed)
    : profile_(profile), seed_(seed), rng_(seed)
{
    buildLayout();
    validateLayout();
    reset();
}

void
SyntheticWorkload::buildLayout()
{
    util::Rng layout_rng(seed_, /*stream=*/1);

    const auto &p = profile_;
    int int_alloc = 0;
    int fp_alloc = 0;
    auto rot_int = [&]() -> int8_t {
        return static_cast<int8_t>(intPoolBase + (int_alloc++ % intPoolSize));
    };
    auto rot_fp = [&]() -> int8_t {
        return static_cast<int8_t>(fpPoolBase + (fp_alloc++ % fpPoolSize));
    };

    body_.clear();

    // --- Induction variables and address arithmetic ---------------------
    std::vector<int8_t> addr_regs;
    {
        Slot s{};
        s.kind = SlotKind::Overhead;
        s.op = OpClass::IntAlu;
        s.dest = regLoopCounter;
        s.src1 = regLoopCounter;
        body_.push_back(s);
    }
    for (int i = 1; i < std::max(1, p.intOverhead); ++i) {
        Slot s{};
        s.kind = SlotKind::Overhead;
        s.op = OpClass::IntAlu;
        s.dest = rot_int();
        // Address arithmetic forms one dependent chain off the loop
        // counter (base + scaled index + offset...), as compiled
        // addressing code does.
        s.src1 = (i == 1) ? regLoopCounter : addr_regs.back();
        body_.push_back(s);
        addr_regs.push_back(s.dest);
    }
    if (addr_regs.empty())
        addr_regs.push_back(regBasePointer);

    // --- Chain typing ------------------------------------------------------
    // Chain c is FP when c < fpChains (mixed codes like eon); with
    // fpChains < 0 every chain follows the suite type.
    int chains = std::max(1, p.parChains);
    int clen = std::max(1, p.chainLen);
    auto chain_is_fp = [&](int c) {
        return p.fpChains >= 0 ? c < p.fpChains : p.isFp;
    };
    int num_fp_chains = 0;
    for (int c = 0; c < chains; ++c)
        num_fp_chains += chain_is_fp(c) ? 1 : 0;

    // --- Loads and dependence chains ---------------------------------------
    // Two emission orders, matching how compilers lay out the two code
    // classes (and what the issue-FIFO steering sees):
    //  - integer codes are *chain-major*: each load is immediately
    //    followed by its dependent operations, so consecutive
    //    instructions chain through the steering table;
    //  - FP codes are *software-pipelined*: loads first, then the
    //    chains interleaved round-robin (c0k0, c1k0, ..., c0k1, ...),
    //    exposing the whole wide dependence graph at once.
    bool chain_major = !p.isFp;
    int num_loads = std::max(p.pointerChase ? 1 : 0, p.loadsPerIter);
    int num_fp_loads = chains ?
        (num_loads * num_fp_chains + chains - 1) / chains : 0;

    std::vector<int8_t> fp_load_vals;
    std::vector<int8_t> int_load_vals;
    std::vector<Slot> load_slots;
    for (int l = 0; l < num_loads; ++l) {
        Slot s{};
        s.kind = SlotKind::Load;
        s.op = OpClass::Load;
        s.arrayId = l;
        if (p.pointerChase && l == 0) {
            // Serialized pointer walk: address depends on prior load.
            s.chase = true;
            s.src1 = regChasePtr;
            s.dest = regChasePtr;
            s.randomAddr = true;
            int_load_vals.push_back(s.dest);
        } else {
            s.src1 = addr_regs[static_cast<size_t>(l) % addr_regs.size()];
            bool fp_dest = l < num_fp_loads;
            s.dest = fp_dest ? rot_fp() : rot_int();
            s.randomAddr = layout_rng.nextBool(p.randomAccessFrac);
            (fp_dest ? fp_load_vals : int_load_vals).push_back(s.dest);
        }
        load_slots.push_back(s);
    }
    if (int_load_vals.empty())
        int_load_vals.push_back(regBasePointer);
    if (fp_load_vals.empty())
        fp_load_vals = int_load_vals; // cross-type feed (cvt-like)

    std::vector<std::vector<int8_t>> chain_dest(
        static_cast<size_t>(chains),
        std::vector<int8_t>(static_cast<size_t>(clen)));
    std::vector<std::vector<OpClass>> chain_op(
        static_cast<size_t>(chains),
        std::vector<OpClass>(static_cast<size_t>(clen)));
    for (int c = 0; c < chains; ++c) {
        bool fp = chain_is_fp(c);
        for (int k = 0; k < clen; ++k) {
            chain_dest[c][k] = fp ? rot_fp() : rot_int();
            double r = layout_rng.nextDouble();
            OpClass op;
            if (r < p.divFrac)
                op = fp ? OpClass::FpDiv : OpClass::IntDiv;
            else if (r < p.divFrac + p.multFrac)
                op = fp ? OpClass::FpMult : OpClass::IntMult;
            else
                op = fp ? OpClass::FpAdd : OpClass::IntAlu;
            chain_op[c][k] = op;
        }
    }

    auto make_chain_op = [&](int c, int k) {
        Slot s{};
        s.kind = SlotKind::ChainOp;
        s.op = chain_op[c][k];
        s.dest = chain_dest[c][k];
        const auto &feed = chain_is_fp(c) ? fp_load_vals : int_load_vals;
        bool cross_iter = p.crossIterChains ||
            (!chain_is_fp(c) && p.crossIterIntChains);
        if (k == 0) {
            s.src1 = cross_iter
                ? chain_dest[c][clen - 1]
                : feed[static_cast<size_t>(c) % feed.size()];
        } else {
            s.src1 = chain_dest[c][k - 1];
        }
        if (layout_rng.nextBool(p.crossLinkFrac))
            s.src2 = feed[layout_rng.nextBounded(feed.size())];
        return s;
    };

    if (chain_major) {
        // Leftover loads not paired with a chain come first.
        for (int l = chains; l < num_loads; ++l)
            body_.push_back(load_slots[static_cast<size_t>(l)]);
        for (int c = 0; c < chains; ++c) {
            if (c < num_loads)
                body_.push_back(load_slots[static_cast<size_t>(c)]);
            for (int k = 0; k < clen; ++k)
                body_.push_back(make_chain_op(c, k));
        }
    } else {
        for (auto &s : load_slots)
            body_.push_back(s);
        for (int k = 0; k < clen; ++k)
            for (int c = 0; c < chains; ++c)
                body_.push_back(make_chain_op(c, k));
    }

    // --- Data-dependent conditional branches ------------------------------
    // The compare consumes a freshly produced chain value (like a real
    // test on computed data), so it steers into that chain's queue
    // rather than demanding a fresh FIFO; compares come before the
    // stores so both tap *distinct* chain tails.
    std::vector<int> int_chain_ids;
    for (int c = 0; c < chains; ++c)
        if (!chain_is_fp(c))
            int_chain_ids.push_back(c);
    for (int b = 0; b < p.extraBranches; ++b) {
        Slot cmp{};
        cmp.kind = SlotKind::Overhead;
        cmp.op = OpClass::IntAlu;
        cmp.dest = rot_int();
        if (!int_chain_ids.empty()) {
            int feed_chain = int_chain_ids[
                static_cast<size_t>(b) % int_chain_ids.size()];
            cmp.src1 = chain_dest[static_cast<size_t>(feed_chain)]
                                 [static_cast<size_t>(clen - 1)];
        } else {
            cmp.src1 = addr_regs[static_cast<size_t>(b) % addr_regs.size()];
        }
        body_.push_back(cmp);

        Slot s{};
        s.kind = SlotKind::CondBranch;
        s.op = OpClass::Branch;
        s.src1 = cmp.dest;
        body_.push_back(s);
    }

    // --- Stores -----------------------------------------------------------
    for (int st = 0; st < p.storesPerIter; ++st) {
        Slot s{};
        s.kind = SlotKind::Store;
        s.op = OpClass::Store;
        s.arrayId = num_loads + st;
        s.src1 = addr_regs[static_cast<size_t>(st) % addr_regs.size()];
        s.src2 = chain_dest[static_cast<size_t>(
            (p.extraBranches + st) % chains)][clen - 1];
        body_.push_back(s);
    }

    // --- Loop-closing branch ----------------------------------------------
    {
        Slot s{};
        s.kind = SlotKind::LoopBranch;
        s.op = OpClass::Branch;
        s.src1 = regLoopCounter;
        body_.push_back(s);
    }

    // --- Data layout --------------------------------------------------------
    numArrays_ = std::max(1, num_loads + p.storesPerIter);
    arrayBytes_ = std::max<uint64_t>(64, profile_.footprint /
                                     static_cast<uint64_t>(numArrays_));
    bodyBytes_ = ((body_.size() * 4 + 63) / 64) * 64;
    stride_ = static_cast<uint64_t>(std::max(1, profile_.strideBytes));
    arrayWords_ = std::max<uint64_t>(1, arrayBytes_ / 8);

    // Bake everything static into per-slot templates: next() copies
    // the template and patches only the dynamic fields, and the memop
    // base-address multiply happens once here instead of per call.
    protos_.assign(body_.size(), HotSlot{});
    for (size_t i = 0; i < body_.size(); ++i) {
        Slot &s = body_[i];
        s.arrayBase = dataBase_ +
            static_cast<uint64_t>(s.arrayId) * arrayBytes_;
        HotSlot &h = protos_[i];
        h.kind = s.kind;
        h.randomAddr = s.chase || s.randomAddr;
        h.arrayBase = s.arrayBase;
        MicroOp &p = h.proto;
        p.pc = i * 4; // block-relative; next() adds blockBase_
        p.op = s.op;
        p.dest = s.dest;
        p.src1 = s.src1;
        p.src2 = s.src2;
        if (s.kind == SlotKind::CondBranch)
            p.target = p.pc + 16;
    }
}

void
SyntheticWorkload::validateLayout() const
{
    // Walk three iterations of the body tracking the last writer of
    // each register; every source must resolve to the producer the
    // layout intended (register-pool collisions would silently rewire
    // the dependence graph).
    std::map<int, size_t> last_writer;
    auto writer_of = [&](int reg) -> long {
        auto it = last_writer.find(reg);
        return it == last_writer.end() ? -1 : static_cast<long>(it->second);
    };

    // Intended producer per slot: recompute by scanning backwards for
    // the nearest earlier slot (cyclically) writing the same register.
    auto intended = [&](size_t slot, int reg) -> long {
        size_t n = body_.size();
        for (size_t back = 1; back <= n; ++back) {
            size_t i = (slot + n - back) % n;
            if (body_[i].dest == reg)
                return static_cast<long>(i);
        }
        return -1; // preset register, never written
    };

    for (int it = 0; it < 3; ++it) {
        for (size_t i = 0; i < body_.size(); ++i) {
            const Slot &s = body_[i];
            for (int8_t src : {s.src1, s.src2}) {
                if (src == NoReg)
                    continue;
                long want = intended(i, src);
                long have = writer_of(src);
                if (want >= 0 && have >= 0 && want != have) {
                    throw std::logic_error(
                        "register pool collision in profile " +
                        profile_.name + " at slot " + std::to_string(i));
                }
            }
            if (s.dest != NoReg)
                last_writer[s.dest] = i;
        }
    }
}

void
SyntheticWorkload::reset()
{
    rng_ = util::Rng(seed_);
    slotIdx_ = 0;
    iter_ = 0;
    block_ = 0;
    globalIter_ = 0;
    chasePtr_ = dataBase_;
    blockBase_ = codeBase_;
    strideOff_ = 0;
}

bool
SyntheticWorkload::next(MicroOp &out)
{
    const HotSlot &h = protos_[slotIdx_];

    out = h.proto;
    out.pc += blockBase_;

    switch (h.kind) {
      case SlotKind::Load:
      case SlotKind::Store:
        out.memAddr = h.randomAddr
            ? h.arrayBase + rng_.nextBounded(arrayWords_) * 8
            : h.arrayBase + strideOff_;
        break;
      case SlotKind::CondBranch:
        out.taken = rng_.nextBool(profile_.branchBias);
        out.target += blockBase_;
        break;
      case SlotKind::LoopBranch:
        out.taken = (iter_ + 1) < profile_.innerIters;
        out.target = blockBase_;
        break;
      default:
        break;
    }

    ++slotIdx_;
    if (slotIdx_ >= body_.size()) {
        slotIdx_ = 0;
        ++globalIter_;
        // Incremental (globalIter_ * stride_) % arrayBytes_.
        strideOff_ += stride_;
        while (strideOff_ >= arrayBytes_)
            strideOff_ -= arrayBytes_;
        ++iter_;
        if (iter_ >= profile_.innerIters) {
            iter_ = 0;
            block_ = (block_ + 1) % std::max(1, profile_.codeBlocks);
            blockBase_ = codeBase_ +
                static_cast<uint64_t>(block_) * bodyBytes_;
        }
    }
    return true;
}

} // namespace diq::trace

/**
 * @file
 * Instruction-set abstraction for the trace-driven processor model.
 *
 * The model is Alpha-flavoured, matching the paper's SimpleScalar
 * substrate: 32 integer + 32 floating-point logical registers, loads
 * and stores are integer-pipeline work (address computation on an
 * integer adder), and operation latencies follow Table 1 of the paper:
 *
 *   INT: 8 ALU (1 cycle), 4 mult/div (3-cycle mult, 20-cycle div)
 *   FP:  4 ALU (2 cycles), 4 mult/div (4-cycle mult, 12-cycle div)
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §5.
 */

#ifndef DIQ_TRACE_ISA_HH
#define DIQ_TRACE_ISA_HH

#include <cstdint>
#include <string>

namespace diq::trace
{

/** Operation classes distinguished by the execution model. */
enum class OpClass : uint8_t {
    Nop = 0,
    IntAlu,   ///< add/sub/logic/compare; also branch condition evaluation
    IntMult,  ///< integer multiply
    IntDiv,   ///< integer divide
    FpAdd,    ///< FP add/sub/convert ("FP ALU" in Table 1)
    FpMult,   ///< FP multiply
    FpDiv,    ///< FP divide / sqrt
    Load,     ///< memory read (address computation + access)
    Store,    ///< memory write (address computation + commit-time write)
    Branch,   ///< conditional or unconditional control transfer
    NumOpClasses
};

/** Number of logical integer registers (r0..r31). */
constexpr int NumIntRegs = 32;
/** Number of logical FP registers (f0..f31, ids 32..63). */
constexpr int NumFpRegs = 32;
/** Total logical register ids; FP ids are offset by NumIntRegs. */
constexpr int NumLogicalRegs = NumIntRegs + NumFpRegs;

/** Sentinel for "no register". */
constexpr int8_t NoReg = -1;

/** First FP logical register id. */
constexpr int FpRegBase = NumIntRegs;

/** True if a logical register id names an FP register. */
inline bool
isFpReg(int reg)
{
    return reg >= FpRegBase && reg < NumLogicalRegs;
}

/** Cycles to compute a load/store address (paper's AddressLatency). */
constexpr int AddressLatency = 1;

/**
 * Execution latency of an op class in cycles (Table 1).
 *
 * For loads this is the address-computation latency only; the memory
 * access latency is determined by the cache hierarchy. Branches and
 * stores compute on the integer ALU. Inline: probed per issued op.
 */
constexpr int
opLatency(OpClass op)
{
    switch (op) {
      case OpClass::Nop:
        return 1;
      case OpClass::IntAlu:
        return 1;
      case OpClass::IntMult:
        return 3;
      case OpClass::IntDiv:
        return 20;
      case OpClass::FpAdd:
        return 2;
      case OpClass::FpMult:
        return 4;
      case OpClass::FpDiv:
        return 12;
      case OpClass::Load:
        return AddressLatency;
      case OpClass::Store:
        return AddressLatency;
      case OpClass::Branch:
        return 1;
      default:
        return 1;
    }
}

/** True for classes executed by the FP cluster (FP queues). */
constexpr bool
isFpOp(OpClass op)
{
    switch (op) {
      case OpClass::FpAdd:
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return true;
      default:
        return false;
    }
}

/** True for memory operations (Load or Store). */
inline bool
isMemOp(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store;
}

/** Human-readable op class name. */
std::string opClassName(OpClass op);

/**
 * One dynamic micro-operation in program order, as produced by a
 * workload generator and consumed by the pipeline front-end.
 *
 * Dependences are expressed through logical registers: a source register
 * depends on the most recent earlier op that wrote it. Up to two sources
 * and one destination, Alpha style. Memory ops carry their effective
 * address; branches carry their resolved direction and target.
 */
struct MicroOp
{
    uint64_t pc = 0;           ///< instruction address (4-byte aligned)
    OpClass op = OpClass::Nop; ///< operation class
    int8_t src1 = NoReg;       ///< left source logical register
    int8_t src2 = NoReg;       ///< right source logical register
    int8_t dest = NoReg;       ///< destination logical register
    uint64_t memAddr = 0;      ///< effective address for Load/Store
    uint8_t memSize = 8;       ///< access size in bytes
    bool taken = false;        ///< branch outcome (Branch only)
    uint64_t target = 0;       ///< branch target (Branch only)

    bool isLoad() const { return op == OpClass::Load; }
    bool isStore() const { return op == OpClass::Store; }
    bool isBranch() const { return op == OpClass::Branch; }
    bool isMem() const { return isMemOp(op); }

    /** True if this op is handled by the FP cluster / FP queues. */
    bool isFpPipe() const { return isFpOp(op); }

    std::string toString() const;
};

} // namespace diq::trace

#endif // DIQ_TRACE_ISA_HH

/**
 * @file
 * Adversarial workload scenarios and the workload-token resolver.
 *
 * The 26 SPEC2000-like profiles (trace/spec2000.hh) reproduce the
 * paper's workloads; the scenario registry here deliberately
 * constructs streams that *break* the distributed schemes' steering
 * heuristics — maximal dependence chains, phase-alternating DDG
 * widths, LSQ floods, unpredictable branch storms — so every steering
 * or sizing change is exercised against the regimes most likely to
 * expose it (docs/ARCHITECTURE.md §5 catalogs each scenario and the
 * failure mode it targets).
 *
 * Scenarios compose BenchmarkProfiles through two mechanisms:
 *
 *  - profile construction: a single SyntheticWorkload whose knobs are
 *    pushed to an extreme (e.g. `chain_storm` is one maximal
 *    loop-carried dependence chain);
 *  - phase switching: PhasedTrace alternates between sub-workloads
 *    every N instructions (e.g. `steer_flip` flips between a narrow
 *    and a wide dependence graph to thrash FIFO steering state).
 *
 * The spec layer addresses workloads through one string token
 * (`bench=`), resolved by makeWorkload():
 *
 *   <profile>            a SPEC2000-like profile name ("swim")
 *   scenario:<name>      a registry scenario ("scenario:chain_storm")
 *   scenario:phased:A+B[+C...]@N
 *                        ad-hoc phase alternation between profiles or
 *                        registry scenarios, switching every N ops
 *   trace:<path>         replay of a recorded .diqt file
 *                        (trace/file_trace.hh)
 */

#ifndef DIQ_TRACE_SCENARIOS_HH
#define DIQ_TRACE_SCENARIOS_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/synthetic.hh"
#include "trace/trace_source.hh"

namespace diq::trace
{

/**
 * Alternates between sub-sources every `opsPerPhase` micro-ops,
 * round-robin. Each phase keeps its own position across re-entry
 * (like real program phases resuming where they left off), so the
 * composite stream is deterministic and reset() replays it exactly.
 * End-of-stream of the active phase ends the composite stream.
 */
class PhasedTrace : public TraceSource
{
  public:
    PhasedTrace(std::vector<std::unique_ptr<TraceSource>> phases,
                uint64_t opsPerPhase, std::string name);

    bool next(MicroOp &out) override;
    void reset() override;
    const std::string &name() const override { return name_; }

    size_t phaseCount() const { return phases_.size(); }
    uint64_t opsPerPhase() const { return opsPerPhase_; }

  private:
    std::vector<std::unique_ptr<TraceSource>> phases_;
    uint64_t opsPerPhase_;
    std::string name_;
    size_t cur_ = 0;
    uint64_t inPhase_ = 0;
};

/** One named stress scenario: what it is and what it breaks. */
struct ScenarioInfo
{
    std::string name;
    /** The steering/sizing failure mode this scenario targets, shown
     *  by `diq list scenarios`. */
    std::string doc;
    std::unique_ptr<TraceSource> (*make)();
};

/** Every named scenario, in catalog order. */
const std::vector<ScenarioInfo> &scenarioRegistry();

/** Lookup by name; nullptr when unknown. */
const ScenarioInfo *findScenario(const std::string &name);

/**
 * Validate a scenario token (registry name or `phased:` form) without
 * instantiating workloads — cheap enough for spec parsing.
 * @throws std::invalid_argument with a precise message.
 */
void validateScenario(const std::string &name);

/**
 * Instantiate a scenario: a registry name, or the dynamic form
 * `phased:<part>+<part>[+...]@<N>` where each part is a profile or
 * registry-scenario name and N is the per-phase op count.
 * @throws std::invalid_argument for unknown names or malformed
 *         `phased:` syntax.
 */
std::unique_ptr<TraceSource> makeScenario(const std::string &name);

/** Workload-token prefixes understood by makeWorkload() (plus
 *  `fuzz:` — fuzz/fuzz_workload.hh). */
inline constexpr std::string_view kScenarioPrefix = "scenario:";
inline constexpr std::string_view kTracePrefix = "trace:";

/** True for `scenario:`/`trace:`/`fuzz:` tokens (vs profile names). */
bool isWorkloadToken(const std::string &bench);

/**
 * Resolve any bench token to its workload: a profile name through
 * makeSpecWorkload, `scenario:<name>` through makeScenario,
 * `trace:<path>` through FileTrace, `fuzz:<seed>[:knobs]` through the
 * generative phase-graph generator (fuzz/fuzz_workload.hh).
 * @throws std::out_of_range for an unknown profile,
 *         std::invalid_argument for a bad scenario or fuzz token,
 *         TraceError for an unreadable or malformed trace file.
 */
std::unique_ptr<TraceSource> makeWorkload(const std::string &bench);

/**
 * The reporting profile for a bench token: the registry profile for a
 * plain name, or a placeholder carrying just the token as its name
 * for `scenario:`/`trace:` workloads (their stream-level character is
 * not described by profile knobs). Scenario tokens are validated;
 * trace paths are not (the file may be recorded later).
 * @throws std::out_of_range for an unknown plain profile name,
 *         std::invalid_argument for a bad scenario token.
 */
BenchmarkProfile workloadProfile(const std::string &bench);

} // namespace diq::trace

#endif // DIQ_TRACE_SCENARIOS_HH

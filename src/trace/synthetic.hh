/**
 * @file
 * Parameterized synthetic workload generator.
 *
 * SPEC2000 binaries and ref inputs are proprietary, so the suite is
 * substituted by deterministic kernel generators that reproduce the
 * stream-level properties the paper's results depend on
 * (docs/ARCHITECTURE.md §5):
 *
 *  - data-dependence-graph width (number of simultaneously live
 *    dependence chains): narrow for SPECint-like codes, wide for
 *    SPECfp-like codes;
 *  - dependence-chain composition (op classes and therefore latencies);
 *  - memory footprint and access patterns (strided streams, random
 *    accesses, pointer chasing) which drive cache miss rates;
 *  - branch frequency and predictability;
 *  - loop structure (inner trip counts, code footprint).
 *
 * A workload is described by a BenchmarkProfile. At construction the
 * generator lays out a static loop body (a fixed sequence of
 * instruction "slots" with fixed PCs, register assignments and op
 * classes — like the static code of a compiled loop); `next()` then
 * walks the body emitting dynamic instances whose addresses and branch
 * outcomes evolve deterministically from the seed.
 */

#ifndef DIQ_TRACE_SYNTHETIC_HH
#define DIQ_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/isa.hh"
#include "trace/trace_source.hh"
#include "util/rng.hh"

namespace diq::trace
{

/**
 * Statistical description of one synthetic benchmark.
 *
 * See the member comments for the stream property each knob controls.
 * The 26 concrete profiles live in spec2000.cc.
 */
struct BenchmarkProfile
{
    std::string name;      ///< reporting name (SPEC program it mimics)
    bool isFp = false;      ///< member of the FP suite?

    // --- Loop structure -------------------------------------------------
    int innerIters = 64;    ///< inner-loop trip count (loop-branch bias)
    int codeBlocks = 1;     ///< distinct static copies of the body
                            ///< (instruction footprint / BTB pressure)

    // --- Dependence-graph shape -----------------------------------------
    int parChains = 2;      ///< independent chains per iteration (DDG width)
    int chainLen = 3;       ///< dependent ops per chain
    int fpChains = -1;      ///< chains that are FP regardless of isFp
                            ///< (-1: all chains follow isFp); models
                            ///< mixed codes like eon/mesa
    double multFrac = 0.0;  ///< fraction of chain ops that are multiplies
    double divFrac = 0.0;   ///< fraction of chain ops that are divides
    bool crossIterChains = false; ///< chains are loop-carried (reductions)
    bool crossIterIntChains = false; ///< only the integer chains are
                                     ///< loop-carried (mixed codes)
    double crossLinkFrac = 0.2;   ///< P(second source links another chain)

    // --- Memory behaviour -------------------------------------------------
    int loadsPerIter = 2;   ///< loads feeding the chains
    int storesPerIter = 1;  ///< stores of chain results
    uint64_t footprint = 1ull << 20; ///< bytes of data touched
    double randomAccessFrac = 0.0;   ///< fraction of loads with random addr
    bool pointerChase = false;       ///< serialize loads through a pointer
    int strideBytes = 8;    ///< stride of the streaming arrays

    // --- Control behaviour -----------------------------------------------
    int extraBranches = 0;  ///< data-dependent branches per iteration
    double branchBias = 0.9;///< P(taken) of those branches
    int intOverhead = 2;    ///< induction/address integer ops per iteration
};

/**
 * Infinite deterministic instruction stream synthesized from a
 * BenchmarkProfile. Reset replays the identical stream.
 */
class SyntheticWorkload : public TraceSource
{
  public:
    SyntheticWorkload(const BenchmarkProfile &profile, uint64_t seed);

    bool next(MicroOp &out) override;
    void reset() override;
    const std::string &name() const override { return profile_.name; }

    const BenchmarkProfile &profile() const { return profile_; }

    /** Static instructions in one copy of the loop body. */
    size_t bodySize() const { return body_.size(); }

  private:
    /** Kind of a static body slot. */
    enum class SlotKind : uint8_t {
        Overhead,   ///< induction variable / address arithmetic
        Load,
        ChainOp,
        Store,
        CondBranch, ///< data-dependent conditional branch
        LoopBranch  ///< backward loop-closing branch
    };

    /** One static instruction of the loop body. */
    struct Slot
    {
        SlotKind kind;
        OpClass op;
        int8_t dest = NoReg;
        int8_t src1 = NoReg;
        int8_t src2 = NoReg;
        int arrayId = 0;      ///< which streaming array (mem slots)
        bool randomAddr = false;
        bool chase = false;   ///< pointer-chasing load
        uint64_t arrayBase = 0; ///< dataBase_ + arrayId * arrayBytes_
    };

    void buildLayout();
    void validateLayout() const;

    BenchmarkProfile profile_;
    uint64_t seed_;
    util::Rng rng_;

    /**
     * Per-slot emission record: a MicroOp template with
     * block-relative pc/target plus the few dynamic-field inputs,
     * packed into one cache line so next() touches a single slab.
     */
    struct alignas(64) HotSlot
    {
        MicroOp proto;
        SlotKind kind = SlotKind::Overhead;
        bool randomAddr = false; ///< chase or random-address memop
        uint64_t arrayBase = 0;  ///< dataBase_ + arrayId * arrayBytes_
    };

    std::vector<Slot> body_;
    std::vector<HotSlot> protos_; ///< built from body_ in buildLayout()
    int numArrays_ = 1;
    uint64_t arrayBytes_ = 0;
    uint64_t arrayWords_ = 1; ///< arrayBytes_ / 8, >= 1
    uint64_t bodyBytes_ = 0;  ///< body footprint, 64B-aligned
    uint64_t stride_ = 8;     ///< streaming stride (>= 1)

    // Dynamic walking state.
    size_t slotIdx_ = 0;
    int iter_ = 0;         ///< inner-loop iteration within current block
    int block_ = 0;        ///< current code block
    uint64_t globalIter_ = 0;
    uint64_t chasePtr_ = 0;
    uint64_t blockBase_ = codeBase_; ///< codeBase_ + block_ * bodyBytes_
    uint64_t strideOff_ = 0; ///< (globalIter_ * stride_) % arrayBytes_

    static constexpr uint64_t codeBase_ = 0x400000;
    static constexpr uint64_t dataBase_ = 0x10000000;
};

} // namespace diq::trace

#endif // DIQ_TRACE_SYNTHETIC_HH

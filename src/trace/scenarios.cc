/**
 * @file
 * Implementation of trace/scenarios.hh: the adversarial scenario
 * catalog and the bench-token resolver (docs/ARCHITECTURE.md §5).
 *
 * Scenario profiles must respect the synthetic generator's rotating
 * register pools (27 integer / 32 FP value registers); every scenario
 * is constructed by the unit tests, so a pool collision fails loudly
 * in SyntheticWorkload::validateLayout rather than silently rewiring
 * the intended dependence graph.
 */

#include "trace/scenarios.hh"

#include <stdexcept>
#include <utility>

#include "fuzz/fuzz_workload.hh"
#include "trace/file_trace.hh"
#include "trace/spec2000.hh"

namespace diq::trace
{

// --- PhasedTrace ----------------------------------------------------

PhasedTrace::PhasedTrace(
    std::vector<std::unique_ptr<TraceSource>> phases,
    uint64_t opsPerPhase, std::string name)
    : phases_(std::move(phases)), opsPerPhase_(opsPerPhase),
      name_(std::move(name))
{
    if (phases_.empty())
        throw std::invalid_argument("PhasedTrace needs at least one "
                                    "phase");
    if (opsPerPhase_ == 0)
        throw std::invalid_argument("PhasedTrace phase length must be "
                                    "positive");
}

bool
PhasedTrace::next(MicroOp &out)
{
    if (inPhase_ == opsPerPhase_) {
        inPhase_ = 0;
        cur_ = (cur_ + 1) % phases_.size();
    }
    if (!phases_[cur_]->next(out))
        return false;
    ++inPhase_;
    return true;
}

void
PhasedTrace::reset()
{
    for (auto &p : phases_)
        p->reset();
    cur_ = 0;
    inPhase_ = 0;
}

// --- Scenario profile builders --------------------------------------

namespace
{

constexpr uint64_t KB = 1024;
constexpr uint64_t MB = 1024 * 1024;

/** Workload for a scenario-local profile; the stream seed derives
 *  from the profile name exactly like the SPEC suite's. */
std::unique_ptr<TraceSource>
fromProfile(const BenchmarkProfile &p)
{
    return makeSpecWorkload(p);
}

/**
 * chain_storm: the whole window is ONE maximal loop-carried
 * dependence chain. ILP is identically 1, so any issue organization
 * collapses to a single FIFO's worth of work — steering has nothing
 * to balance and wakeup is fully serialized.
 */
std::unique_ptr<TraceSource>
makeChainStorm()
{
    BenchmarkProfile p;
    p.name = "chain_storm";
    p.parChains = 1;
    p.chainLen = 24;
    p.crossIterChains = true; // the chain never breaks at iteration
    p.crossLinkFrac = 0.0;    // ...and never touches a second value
    p.multFrac = 0.15;
    p.loadsPerIter = 1;
    p.storesPerIter = 1;
    p.footprint = 64 * KB;
    p.extraBranches = 0;
    p.innerIters = 256;
    return fromProfile(p);
}

/** The narrow half of steer_flip: one long integer chain. */
BenchmarkProfile
steerNarrowProfile()
{
    BenchmarkProfile p;
    p.name = "steer_flip.narrow";
    p.parChains = 1;
    p.chainLen = 6;
    p.crossIterChains = true;
    p.crossLinkFrac = 0.0;
    p.loadsPerIter = 1;
    p.storesPerIter = 1;
    p.footprint = 32 * KB;
    p.innerIters = 64;
    return p;
}

/** The wide half of steer_flip: eight short independent chains. */
BenchmarkProfile
steerWideProfile()
{
    BenchmarkProfile p;
    p.name = "steer_flip.wide";
    p.parChains = 8;
    p.chainLen = 3;
    p.crossIterChains = false;
    p.crossLinkFrac = 0.1;
    p.loadsPerIter = 2;
    p.storesPerIter = 1;
    p.footprint = 32 * KB;
    p.innerIters = 64;
    return p;
}

/**
 * steer_flip: alternates a 1-wide and an 8-wide integer dependence
 * graph every 3000 ops. FIFO steering state tuned during one phase is
 * maximally wrong for the next — a scheme whose rename-table/steering
 * heuristic adapts slowly thrashes at every boundary.
 */
std::unique_ptr<TraceSource>
makeSteerFlip()
{
    std::vector<std::unique_ptr<TraceSource>> phases;
    phases.push_back(fromProfile(steerNarrowProfile()));
    phases.push_back(fromProfile(steerWideProfile()));
    return std::make_unique<PhasedTrace>(std::move(phases), 3000,
                                         "steer_flip");
}

/**
 * lsq_pressure: a serialized pointer chase plus random-address loads
 * and a store per chain tail over a 32 MB footprint. Load addresses
 * resolve late and stores pile up with unknown addresses, so the LSQ's
 * ambiguity tracking, not the issue queue, becomes the bottleneck.
 */
std::unique_ptr<TraceSource>
makeLsqPressure()
{
    BenchmarkProfile p;
    p.name = "lsq_pressure";
    p.parChains = 2;
    p.chainLen = 3;
    p.crossLinkFrac = 0.3;
    p.pointerChase = true;
    p.loadsPerIter = 4;
    p.storesPerIter = 4;
    p.randomAccessFrac = 1.0;
    p.footprint = 32 * MB;
    p.extraBranches = 1;
    p.branchBias = 0.85;
    p.innerIters = 48;
    return fromProfile(p);
}

/**
 * branch_churn: six coin-flip branches per short iteration. The
 * predictor cannot learn them, so the pipeline lives in mispredict
 * recovery — stressing queue-rename-table clearing (§2.2) and the
 * schemes' refill behaviour after every flush.
 */
std::unique_ptr<TraceSource>
makeBranchChurn()
{
    BenchmarkProfile p;
    p.name = "branch_churn";
    p.parChains = 2;
    p.chainLen = 2;
    p.crossIterChains = true;
    p.loadsPerIter = 2;
    p.storesPerIter = 1;
    p.footprint = 32 * KB;
    p.extraBranches = 6;
    p.branchBias = 0.5;
    p.innerIters = 16;
    p.codeBlocks = 4;
    return fromProfile(p);
}

/**
 * icache_walk: 48 distinct copies of the loop body visited two
 * iterations at a time. The instruction footprint overflows the L1I
 * and the BTB, so the front-end starves the issue queues — exposing
 * how each scheme behaves at near-empty occupancy.
 */
std::unique_ptr<TraceSource>
makeIcacheWalk()
{
    BenchmarkProfile p;
    p.name = "icache_walk";
    p.parChains = 2;
    p.chainLen = 3;
    p.crossIterChains = true;
    p.loadsPerIter = 2;
    p.storesPerIter = 1;
    p.footprint = 64 * KB;
    p.extraBranches = 2;
    p.branchBias = 0.88;
    p.innerIters = 2;
    p.codeBlocks = 48;
    return fromProfile(p);
}

/** The dense half of bursty: eight independent 3-op chains. */
BenchmarkProfile
burstDenseProfile()
{
    BenchmarkProfile p;
    p.name = "bursty.dense";
    p.parChains = 8;
    p.chainLen = 3;
    p.crossIterChains = false;
    p.crossLinkFrac = 0.0;
    p.loadsPerIter = 2;
    p.storesPerIter = 1;
    p.footprint = 64 * KB;
    p.innerIters = 64;
    return p;
}

/** The stall half of bursty: a pointer-chasing divide chain. */
BenchmarkProfile
burstStallProfile()
{
    BenchmarkProfile p;
    p.name = "bursty.stall";
    p.parChains = 1;
    p.chainLen = 2;
    p.crossIterChains = true;
    p.crossLinkFrac = 0.0;
    p.divFrac = 1.0;
    p.pointerChase = true;
    p.loadsPerIter = 1;
    p.storesPerIter = 0;
    p.footprint = 16 * MB;
    p.innerIters = 64;
    return p;
}

/**
 * bursty: 1500-op bursts of wide ILP alternating with 1500 ops of a
 * pointer-chasing divide chain that drains the window. Dispatch
 * oscillates between full-width and idle, stressing occupancy-driven
 * policies (chain allocation, FIFO selection) at both extremes.
 */
std::unique_ptr<TraceSource>
makeBursty()
{
    std::vector<std::unique_ptr<TraceSource>> phases;
    phases.push_back(fromProfile(burstDenseProfile()));
    phases.push_back(fromProfile(burstStallProfile()));
    return std::make_unique<PhasedTrace>(std::move(phases), 1500,
                                         "bursty");
}

/**
 * div_wall: three loop-carried FP chains that are half divides
 * (12-cycle latency). The FP mult/div units saturate and issue-time
 * estimates stretch, stressing the latency-ordered FIFO's insertion
 * heuristic and MixBUFF's chain-to-buffer mapping under long stalls.
 */
std::unique_ptr<TraceSource>
makeDivWall()
{
    BenchmarkProfile p;
    p.name = "div_wall";
    p.isFp = true;
    p.parChains = 3;
    p.chainLen = 4;
    p.crossIterChains = true;
    p.divFrac = 0.5;
    p.multFrac = 0.25;
    p.loadsPerIter = 3;
    p.storesPerIter = 1;
    p.footprint = 256 * KB;
    p.innerIters = 64;
    return fromProfile(p);
}

/**
 * mem_thrash: six random-address loads per iteration over 64 MB —
 * nearly every access misses L2. Load completion times become
 * unpredictable, invalidating any latency estimate the issue logic
 * bases its ordering on.
 */
std::unique_ptr<TraceSource>
makeMemThrash()
{
    BenchmarkProfile p;
    p.name = "mem_thrash";
    p.parChains = 3;
    p.chainLen = 2;
    p.loadsPerIter = 6;
    p.storesPerIter = 2;
    p.randomAccessFrac = 1.0;
    p.footprint = 64 * MB;
    p.extraBranches = 1;
    p.branchBias = 0.9;
    p.innerIters = 48;
    return fromProfile(p);
}

/**
 * fp_flood: ten independent FP chains dispatched software-pipelined —
 * the widest dependence graph the register pools allow. More live
 * chains than any configuration has FP queues or chain slots, forcing
 * steering collisions and MixBUFF chain-bound overflow (§3.2).
 */
std::unique_ptr<TraceSource>
makeFpFlood()
{
    BenchmarkProfile p;
    p.name = "fp_flood";
    p.isFp = true;
    p.parChains = 10;
    p.chainLen = 3;
    p.crossIterChains = false;
    p.crossLinkFrac = 0.4;
    p.loadsPerIter = 2;
    p.storesPerIter = 1;
    p.footprint = 4 * MB;
    p.innerIters = 64;
    return fromProfile(p);
}

/**
 * store_storm: eight mostly-random stores per iteration against one
 * load. Store addresses and data arrive late, so commit-time write
 * traffic and store-address ambiguity dominate — the mirror image of
 * lsq_pressure's load-side attack.
 */
std::unique_ptr<TraceSource>
makeStoreStorm()
{
    BenchmarkProfile p;
    p.name = "store_storm";
    p.parChains = 2;
    p.chainLen = 3;
    p.crossIterChains = true;
    p.loadsPerIter = 1;
    p.storesPerIter = 8;
    p.randomAccessFrac = 0.8;
    p.footprint = 8 * MB;
    p.innerIters = 48;
    return fromProfile(p);
}

const std::vector<ScenarioInfo> &
registry()
{
    static const std::vector<ScenarioInfo> scenarios = {
        {"chain_storm",
         "one maximal loop-carried dependence chain: ILP=1, steering "
         "has nothing to balance, wakeup fully serialized",
         makeChainStorm},
        {"steer_flip",
         "phase-alternating 1-wide vs 8-wide integer DDG every 3000 "
         "ops: thrashes FIFO steering state at every boundary",
         makeSteerFlip},
        {"lsq_pressure",
         "pointer chase + random loads and stores over 32 MB: LSQ "
         "address-ambiguity tracking becomes the bottleneck",
         makeLsqPressure},
        {"branch_churn",
         "six 50/50 branches per short iteration: permanent mispredict "
         "recovery, stresses rename-table clears and refill",
         makeBranchChurn},
        {"icache_walk",
         "48 code blocks x 2 iterations: L1I/BTB overflow starves "
         "dispatch, schemes run near-empty",
         makeIcacheWalk},
        {"bursty",
         "1500-op wide-ILP bursts alternating with window-draining "
         "pointer-chased divides: dispatch flips full-width <-> idle",
         makeBursty},
        {"div_wall",
         "loop-carried FP chains, half divides: FP units saturate and "
         "issue-time estimates stretch under long stalls",
         makeDivWall},
        {"mem_thrash",
         "six random loads per iteration over 64 MB: L2 miss storm "
         "makes load latencies unpredictable",
         makeMemThrash},
        {"fp_flood",
         "ten independent FP chains, software-pipelined: more live "
         "chains than queues or chain slots, forces steering "
         "collisions",
         makeFpFlood},
        {"store_storm",
         "eight late-resolving random stores per load: commit-time "
         "write traffic and store ambiguity dominate",
         makeStoreStorm},
    };
    return scenarios;
}

/** Split "a+b+c" on '+'. */
std::vector<std::string>
splitParts(const std::string &s)
{
    std::vector<std::string> out;
    std::string::size_type start = 0;
    while (start <= s.size()) {
        auto plus = s.find('+', start);
        if (plus == std::string::npos)
            plus = s.size();
        out.push_back(s.substr(start, plus - start));
        start = plus + 1;
    }
    return out;
}

constexpr std::string_view kPhasedPrefix = "phased:";

/** Parsed `phased:A+B[+...]@N` form. */
struct PhasedSpec
{
    std::vector<std::string> parts;
    uint64_t opsPerPhase = 0;
};

/** Parse and validate the phased: form (parts stay unresolved). */
PhasedSpec
parsePhased(const std::string &name)
{
    std::string body = name.substr(kPhasedPrefix.size());
    auto at = body.rfind('@');
    if (at == std::string::npos)
        throw std::invalid_argument(
            "bad phased scenario '" + name +
            "': missing '@<ops-per-phase>' "
            "(expected phased:A+B@N)");
    std::string countText = body.substr(at + 1);
    PhasedSpec spec;
    try {
        // stoull silently wraps a leading '-' to a huge value, so a
        // non-digit anywhere (checked via pos and a digit scan) must
        // reject the token.
        for (char c : countText)
            if (c < '0' || c > '9')
                throw std::invalid_argument("");
        size_t pos = 0;
        spec.opsPerPhase = std::stoull(countText, &pos);
        if (pos != countText.size() || countText.empty())
            throw std::invalid_argument("");
    } catch (...) {
        throw std::invalid_argument(
            "bad phased scenario '" + name + "': '" + countText +
            "' is not a valid ops-per-phase count");
    }
    if (spec.opsPerPhase == 0)
        throw std::invalid_argument("bad phased scenario '" + name +
                                    "': ops-per-phase must be "
                                    "positive");
    spec.parts = splitParts(body.substr(0, at));
    if (spec.parts.size() < 2)
        throw std::invalid_argument(
            "bad phased scenario '" + name +
            "': need at least two '+'-separated phases");
    for (const auto &part : spec.parts) {
        if (findScenario(part))
            continue;
        bool is_profile = false;
        for (const auto &p : allSpecProfiles())
            if (p.name == part)
                is_profile = true;
        if (!is_profile)
            throw std::invalid_argument(
                "bad phased scenario '" + name + "': unknown phase '" +
                part + "' (not a benchmark or scenario name)");
    }
    return spec;
}

} // namespace

// --- Registry and resolver ------------------------------------------

const std::vector<ScenarioInfo> &
scenarioRegistry()
{
    return registry();
}

const ScenarioInfo *
findScenario(const std::string &name)
{
    for (const auto &s : registry())
        if (s.name == name)
            return &s;
    return nullptr;
}

void
validateScenario(const std::string &name)
{
    if (findScenario(name))
        return;
    if (name.starts_with(kPhasedPrefix)) {
        parsePhased(name); // throws on malformed syntax
        return;
    }
    std::string known;
    for (const auto &s : registry())
        known += " " + s.name;
    throw std::invalid_argument("unknown scenario '" + name +
                                "' (known:" + known +
                                "; or phased:A+B@N)");
}

std::unique_ptr<TraceSource>
makeScenario(const std::string &name)
{
    if (const ScenarioInfo *s = findScenario(name))
        return s->make();
    if (name.starts_with(kPhasedPrefix)) {
        PhasedSpec spec = parsePhased(name);
        std::vector<std::unique_ptr<TraceSource>> phases;
        for (const auto &part : spec.parts) {
            if (const ScenarioInfo *s = findScenario(part))
                phases.push_back(s->make());
            else
                phases.push_back(makeSpecWorkload(part));
        }
        return std::make_unique<PhasedTrace>(
            std::move(phases), spec.opsPerPhase, name);
    }
    validateScenario(name); // throws with the catalog in the message
    return nullptr;         // unreachable
}

bool
isWorkloadToken(const std::string &bench)
{
    return bench.starts_with(kScenarioPrefix) ||
           bench.starts_with(kTracePrefix) ||
           fuzz::isFuzzToken(bench);
}

std::unique_ptr<TraceSource>
makeWorkload(const std::string &bench)
{
    if (bench.starts_with(kScenarioPrefix))
        return makeScenario(bench.substr(kScenarioPrefix.size()));
    if (bench.starts_with(kTracePrefix))
        return std::make_unique<FileTrace>(
            bench.substr(kTracePrefix.size()));
    if (fuzz::isFuzzToken(bench))
        return fuzz::makeFuzzWorkload(bench);
    return makeSpecWorkload(bench);
}

BenchmarkProfile
workloadProfile(const std::string &bench)
{
    if (isWorkloadToken(bench)) {
        // Scenario and fuzz tokens validate here, so callers assigning
        // exp.benchmark directly (bypassing the spec setter) still
        // fail at job/grid-build time, not mid-sweep on a worker.
        // Trace paths stay lazy: the file may be recorded later.
        if (bench.starts_with(kScenarioPrefix))
            validateScenario(bench.substr(kScenarioPrefix.size()));
        else if (fuzz::isFuzzToken(bench))
            fuzz::validateFuzzToken(bench);
        BenchmarkProfile p;
        p.name = bench;
        return p;
    }
    return specProfile(bench);
}

} // namespace diq::trace

/**
 * @file
 * Implementation of trace/spec2000.hh (docs/ARCHITECTURE.md §5).
 */

#include "trace/spec2000.hh"

#include <stdexcept>

namespace diq::trace
{

namespace
{

constexpr uint64_t KB = 1024;
constexpr uint64_t MB = 1024 * 1024;

/**
 * SPECint-like profiles. Integer codes have narrow dependence graphs
 * (2-4 live chains), short 1-cycle chains, frequent and moderately
 * predictable branches, and modest data footprints — which is why the
 * paper finds a handful of FIFOs sufficient for them.
 */
std::vector<BenchmarkProfile>
buildIntProfiles()
{
    std::vector<BenchmarkProfile> v;

    {
        // bzip2: block-sorting compressor. Streaming byte work with a
        // few MB of working set and fairly predictable branches.
        BenchmarkProfile p;
        p.name = "bzip2";
        p.isFp = false;
        p.innerIters = 96;
        p.codeBlocks = 2;
        p.parChains = 2;
        p.chainLen = 5;
        p.multFrac = 0.04;
        p.loadsPerIter = 2;
        p.storesPerIter = 2;
        p.footprint = 48 * KB;
        p.randomAccessFrac = 0.10;
        p.extraBranches = 1;
        p.branchBias = 0.90;
        p.intOverhead = 3;
        p.crossIterChains = true;
        p.crossLinkFrac = 0.35;
        v.push_back(p);
    }
    {
        // crafty: chess. Branch-heavy search over cache-resident
        // bitboards; lots of short logic chains.
        BenchmarkProfile p;
        p.name = "crafty";
        p.isFp = false;
        p.innerIters = 24;
        p.codeBlocks = 6;
        p.parChains = 2;
        p.chainLen = 4;
        p.multFrac = 0.05;
        p.loadsPerIter = 2;
        p.storesPerIter = 1;
        p.footprint = 32 * KB;
        p.randomAccessFrac = 0.25;
        p.extraBranches = 2;
        p.branchBias = 0.92;
        p.intOverhead = 3;
        p.crossIterChains = true;
        p.crossLinkFrac = 0.35;
        v.push_back(p);
    }
    {
        // eon: C++ ray tracer — the one SPECint program with a
        // significant FP component (the paper calls this out in
        // Figure 7), modeled with two FP chains.
        BenchmarkProfile p;
        p.name = "eon";
        p.isFp = false;
        p.innerIters = 32;
        p.codeBlocks = 4;
        p.parChains = 3;
        p.fpChains = 1;
        p.chainLen = 4;
        p.multFrac = 0.35;
        p.loadsPerIter = 3;
        p.storesPerIter = 1;
        p.footprint = 32 * KB;
        p.randomAccessFrac = 0.10;
        p.extraBranches = 1;
        p.branchBias = 0.93;
        p.intOverhead = 3;
        p.crossIterChains = true;
        p.crossLinkFrac = 0.35;
        v.push_back(p);
    }
    {
        // gap: group theory interpreter. Pointer-rich lists with
        // moderate footprint.
        BenchmarkProfile p;
        p.name = "gap";
        p.isFp = false;
        p.innerIters = 48;
        p.codeBlocks = 4;
        p.parChains = 2;
        p.chainLen = 5;
        p.multFrac = 0.08;
        p.loadsPerIter = 2;
        p.storesPerIter = 1;
        p.footprint = 48 * KB;
        p.randomAccessFrac = 0.20;
        p.extraBranches = 1;
        p.branchBias = 0.91;
        p.intOverhead = 3;
        p.crossIterChains = true;
        p.crossLinkFrac = 0.35;
        v.push_back(p);
    }
    {
        // gcc: compiler. Huge instruction footprint, short irregular
        // loops, hard branches, scattered accesses.
        BenchmarkProfile p;
        p.name = "gcc";
        p.isFp = false;
        p.innerIters = 12;
        p.codeBlocks = 16;
        p.parChains = 2;
        p.chainLen = 4;
        p.multFrac = 0.03;
        p.loadsPerIter = 3;
        p.storesPerIter = 2;
        p.footprint = 64 * KB;
        p.randomAccessFrac = 0.30;
        p.extraBranches = 2;
        p.branchBias = 0.88;
        p.intOverhead = 3;
        p.crossIterChains = true;
        p.crossLinkFrac = 0.35;
        v.push_back(p);
    }
    {
        // gzip: LZ77 compressor. Tight loops over a ~256KB window,
        // data-dependent match branches.
        BenchmarkProfile p;
        p.name = "gzip";
        p.isFp = false;
        p.innerIters = 64;
        p.codeBlocks = 2;
        p.parChains = 2;
        p.chainLen = 5;
        p.multFrac = 0.02;
        p.loadsPerIter = 2;
        p.storesPerIter = 1;
        p.footprint = 48 * KB;
        p.randomAccessFrac = 0.20;
        p.extraBranches = 1;
        p.branchBias = 0.86;
        p.intOverhead = 3;
        p.crossIterChains = true;
        p.crossLinkFrac = 0.35;
        v.push_back(p);
    }
    {
        // mcf: network simplex. The classic pointer-chasing,
        // memory-bound SPECint program: tiny IPC, giant footprint.
        BenchmarkProfile p;
        p.name = "mcf";
        p.isFp = false;
        p.innerIters = 40;
        p.codeBlocks = 2;
        p.parChains = 2;
        p.chainLen = 3;
        p.loadsPerIter = 4;
        p.storesPerIter = 1;
        p.footprint = 8 * MB;
        p.randomAccessFrac = 0.40;
        p.pointerChase = true;
        p.extraBranches = 2;
        p.branchBias = 0.90;
        p.intOverhead = 4;
        v.push_back(p);
    }
    {
        // parser: NL parser. Dictionary walks: irregular accesses and
        // mispredicting branches.
        BenchmarkProfile p;
        p.name = "parser";
        p.isFp = false;
        p.innerIters = 20;
        p.codeBlocks = 8;
        p.parChains = 2;
        p.chainLen = 4;
        p.multFrac = 0.03;
        p.loadsPerIter = 2;
        p.storesPerIter = 1;
        p.footprint = 48 * KB;
        p.randomAccessFrac = 0.25;
        p.extraBranches = 2;
        p.branchBias = 0.87;
        p.intOverhead = 3;
        p.crossIterChains = true;
        p.crossLinkFrac = 0.35;
        v.push_back(p);
    }
    {
        // perlbmk: interpreter dispatch — big code footprint, indirect
        // control flow (modeled as harder branches).
        BenchmarkProfile p;
        p.name = "perlbmk";
        p.isFp = false;
        p.innerIters = 16;
        p.codeBlocks = 12;
        p.parChains = 2;
        p.chainLen = 4;
        p.multFrac = 0.04;
        p.loadsPerIter = 2;
        p.storesPerIter = 2;
        p.footprint = 32 * KB;
        p.randomAccessFrac = 0.25;
        p.extraBranches = 2;
        p.branchBias = 0.90;
        p.intOverhead = 3;
        p.crossIterChains = true;
        p.crossLinkFrac = 0.35;
        v.push_back(p);
    }
    {
        // twolf: place & route. Small working set but very irregular
        // access and branch patterns.
        BenchmarkProfile p;
        p.name = "twolf";
        p.isFp = false;
        p.innerIters = 24;
        p.codeBlocks = 6;
        p.parChains = 2;
        p.chainLen = 4;
        p.multFrac = 0.06;
        p.loadsPerIter = 2;
        p.storesPerIter = 1;
        p.footprint = 48 * KB;
        p.randomAccessFrac = 0.35;
        p.extraBranches = 2;
        p.branchBias = 0.86;
        p.intOverhead = 3;
        p.crossIterChains = true;
        p.crossLinkFrac = 0.35;
        v.push_back(p);
    }
    {
        // vortex: OO database. Well-predicted branches, pointer
        // structures with decent locality: highest SPECint IPC.
        BenchmarkProfile p;
        p.name = "vortex";
        p.isFp = false;
        p.innerIters = 48;
        p.codeBlocks = 8;
        p.parChains = 2;
        p.chainLen = 4;
        p.multFrac = 0.03;
        p.loadsPerIter = 3;
        p.storesPerIter = 2;
        p.footprint = 64 * KB;
        p.randomAccessFrac = 0.15;
        p.extraBranches = 1;
        p.branchBias = 0.95;
        p.intOverhead = 3;
        p.crossIterChains = true;
        p.crossLinkFrac = 0.35;
        v.push_back(p);
    }
    {
        // vpr: FPGA place & route. Similar to twolf with longer
        // arithmetic chains.
        BenchmarkProfile p;
        p.name = "vpr";
        p.isFp = false;
        p.innerIters = 32;
        p.codeBlocks = 4;
        p.parChains = 2;
        p.chainLen = 5;
        p.multFrac = 0.08;
        p.loadsPerIter = 2;
        p.storesPerIter = 1;
        p.footprint = 48 * KB;
        p.randomAccessFrac = 0.25;
        p.extraBranches = 2;
        p.branchBias = 0.88;
        p.intOverhead = 3;
        p.crossIterChains = true;
        p.crossLinkFrac = 0.35;
        v.push_back(p);
    }
    return v;
}

/**
 * SPECfp-like profiles. FP codes have wide dependence graphs (6-12
 * live chains), long-latency chain ops, long predictable loops and
 * large streaming footprints — the regime where plain FIFO issue
 * queues break down (paper §3).
 */
std::vector<BenchmarkProfile>
buildFpProfiles()
{
    std::vector<BenchmarkProfile> v;

    {
        // ammp: molecular dynamics on neighbor lists — pointer-driven
        // gather with long FP chains; memory bound, low IPC.
        BenchmarkProfile p;
        p.name = "ammp";
        p.isFp = true;
        p.innerIters = 64;
        p.parChains = 4;
        p.chainLen = 4;
        p.multFrac = 0.40;
        p.divFrac = 0.04;
        p.loadsPerIter = 4;
        p.storesPerIter = 1;
        p.footprint = 16 * MB;
        p.randomAccessFrac = 0.35;
        p.pointerChase = true;
        p.intOverhead = 3;
        v.push_back(p);
    }
    {
        // applu: parabolic/elliptic PDE solver — wide independent
        // recurrences over large arrays.
        BenchmarkProfile p;
        p.name = "applu";
        p.isFp = true;
        p.innerIters = 128;
        p.parChains = 10;
        p.chainLen = 3;
        p.multFrac = 0.45;
        p.divFrac = 0.01;
        p.loadsPerIter = 6;
        p.storesPerIter = 3;
        p.footprint = 1 * MB;
        p.strideBytes = 8;
        p.intOverhead = 4;
        p.crossLinkFrac = 0.45;
        v.push_back(p);
    }
    {
        // apsi: meteorology kernel mix; moderate width and footprint.
        BenchmarkProfile p;
        p.name = "apsi";
        p.isFp = true;
        p.innerIters = 96;
        p.parChains = 6;
        p.chainLen = 3;
        p.multFrac = 0.35;
        p.divFrac = 0.02;
        p.loadsPerIter = 5;
        p.storesPerIter = 2;
        p.footprint = 1 * MB;
        p.intOverhead = 4;
        p.crossLinkFrac = 0.45;
        v.push_back(p);
    }
    {
        // art: neural-network image recognition — infamous cache
        // behaviour: repeated sweeps of a >L2 array with poor reuse.
        BenchmarkProfile p;
        p.name = "art";
        p.isFp = true;
        p.innerIters = 64;
        p.parChains = 4;
        p.chainLen = 2;
        p.multFrac = 0.30;
        p.loadsPerIter = 4;
        p.storesPerIter = 1;
        p.footprint = 4 * MB;
        p.randomAccessFrac = 0.50;
        p.strideBytes = 32;
        p.intOverhead = 3;
        v.push_back(p);
    }
    {
        // equake: sparse matrix-vector earthquake simulation —
        // indirect accesses plus multiply-heavy chains.
        BenchmarkProfile p;
        p.name = "equake";
        p.isFp = true;
        p.innerIters = 80;
        p.parChains = 4;
        p.chainLen = 4;
        p.multFrac = 0.50;
        p.loadsPerIter = 5;
        p.storesPerIter = 1;
        p.footprint = 4 * MB;
        p.randomAccessFrac = 0.35;
        p.intOverhead = 4;
        v.push_back(p);
    }
    {
        // facerec: image correlation — wide FFT-ish kernels with good
        // locality.
        BenchmarkProfile p;
        p.name = "facerec";
        p.isFp = true;
        p.innerIters = 128;
        p.parChains = 10;
        p.chainLen = 3;
        p.multFrac = 0.40;
        p.loadsPerIter = 5;
        p.storesPerIter = 2;
        p.footprint = 768 * KB;
        p.intOverhead = 4;
        p.crossLinkFrac = 0.45;
        v.push_back(p);
    }
    {
        // fma3d: crash simulation (finite elements) — medium width,
        // longer chains, scattered element data.
        BenchmarkProfile p;
        p.name = "fma3d";
        p.isFp = true;
        p.innerIters = 64;
        p.parChains = 6;
        p.chainLen = 4;
        p.multFrac = 0.40;
        p.divFrac = 0.01;
        p.loadsPerIter = 5;
        p.storesPerIter = 2;
        p.footprint = 1 * MB;
        p.randomAccessFrac = 0.15;
        p.intOverhead = 4;
        p.crossLinkFrac = 0.45;
        v.push_back(p);
    }
    {
        // galgel: fluid dynamics (Galerkin) — cache-resident dense
        // algebra, very wide: high IPC.
        BenchmarkProfile p;
        p.name = "galgel";
        p.isFp = true;
        p.innerIters = 160;
        p.parChains = 12;
        p.chainLen = 3;
        p.multFrac = 0.50;
        p.loadsPerIter = 6;
        p.storesPerIter = 2;
        p.footprint = 512 * KB;
        p.intOverhead = 4;
        p.crossLinkFrac = 0.45;
        v.push_back(p);
    }
    {
        // lucas: Lucas-Lehmer primality FFT — long strides, wide
        // butterflies.
        BenchmarkProfile p;
        p.name = "lucas";
        p.isFp = true;
        p.innerIters = 128;
        p.parChains = 10;
        p.chainLen = 3;
        p.multFrac = 0.50;
        p.loadsPerIter = 5;
        p.storesPerIter = 2;
        p.footprint = 2 * MB;
        p.strideBytes = 16;
        p.intOverhead = 4;
        p.crossLinkFrac = 0.45;
        v.push_back(p);
    }
    {
        // mesa: software 3D rendering — FP transform chains mixed with
        // integer rasterization and branches.
        BenchmarkProfile p;
        p.name = "mesa";
        p.isFp = true;
        p.innerIters = 48;
        p.codeBlocks = 4;
        p.parChains = 5;
        p.fpChains = 3;
        p.chainLen = 3;
        p.multFrac = 0.40;
        p.loadsPerIter = 3;
        p.storesPerIter = 1;
        p.footprint = 384 * KB;
        p.extraBranches = 2;
        p.branchBias = 0.92;
        p.intOverhead = 4;
        p.crossIterIntChains = true;
        v.push_back(p);
    }
    {
        // mgrid: multigrid solver — extremely regular 27-point
        // stencils: the widest, most parallel stream in the suite.
        BenchmarkProfile p;
        p.name = "mgrid";
        p.isFp = true;
        p.innerIters = 256;
        p.parChains = 12;
        p.chainLen = 2;
        p.multFrac = 0.30;
        p.loadsPerIter = 8;
        p.storesPerIter = 2;
        p.footprint = 1 * MB;
        p.strideBytes = 8;
        p.intOverhead = 5;
        p.crossLinkFrac = 0.45;
        v.push_back(p);
    }
    {
        // sixtrack: particle tracking — long multiply/divide chains,
        // small resident working set.
        BenchmarkProfile p;
        p.name = "sixtrack";
        p.isFp = true;
        p.innerIters = 96;
        p.parChains = 6;
        p.chainLen = 5;
        p.multFrac = 0.50;
        p.divFrac = 0.03;
        p.loadsPerIter = 4;
        p.storesPerIter = 1;
        p.footprint = 384 * KB;
        p.intOverhead = 4;
        p.crossLinkFrac = 0.45;
        v.push_back(p);
    }
    {
        // swim: shallow-water stencil — wide, streaming, >L2
        // footprint: bandwidth-sensitive but very parallel.
        BenchmarkProfile p;
        p.name = "swim";
        p.isFp = true;
        p.innerIters = 256;
        p.parChains = 12;
        p.chainLen = 2;
        p.multFrac = 0.40;
        p.loadsPerIter = 8;
        p.storesPerIter = 4;
        p.footprint = 4 * MB;
        p.strideBytes = 8;
        p.intOverhead = 5;
        p.crossLinkFrac = 0.45;
        v.push_back(p);
    }
    {
        // wupwise: lattice QCD matrix-vector products — wide
        // multiply-add chains, medium footprint.
        BenchmarkProfile p;
        p.name = "wupwise";
        p.isFp = true;
        p.innerIters = 128;
        p.parChains = 10;
        p.chainLen = 3;
        p.multFrac = 0.50;
        p.loadsPerIter = 5;
        p.storesPerIter = 2;
        p.footprint = 768 * KB;
        p.intOverhead = 4;
        p.crossLinkFrac = 0.45;
        v.push_back(p);
    }
    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
specIntProfiles()
{
    static const std::vector<BenchmarkProfile> v = buildIntProfiles();
    return v;
}

const std::vector<BenchmarkProfile> &
specFpProfiles()
{
    static const std::vector<BenchmarkProfile> v = buildFpProfiles();
    return v;
}

std::vector<BenchmarkProfile>
allSpecProfiles()
{
    std::vector<BenchmarkProfile> v = specIntProfiles();
    const auto &fp = specFpProfiles();
    v.insert(v.end(), fp.begin(), fp.end());
    return v;
}

const BenchmarkProfile &
specProfile(const std::string &name)
{
    for (const auto &p : specIntProfiles())
        if (p.name == name)
            return p;
    for (const auto &p : specFpProfiles())
        if (p.name == name)
            return p;
    throw std::out_of_range("unknown SPEC2000-like benchmark: " + name);
}

std::unique_ptr<SyntheticWorkload>
makeSpecWorkload(const BenchmarkProfile &profile)
{
    uint64_t seed = util::Rng::hashString(profile.name);
    return std::make_unique<SyntheticWorkload>(profile, seed);
}

std::unique_ptr<SyntheticWorkload>
makeSpecWorkload(const std::string &name)
{
    return makeSpecWorkload(specProfile(name));
}

} // namespace diq::trace

/**
 * @file
 * File-backed traces: the `.diqt` portable workload interchange format.
 *
 * Any TraceSource can be recorded to a `.diqt` file and replayed
 * bit-identically, making workloads first-class artifacts that can be
 * archived, diffed and shipped between machines independently of the
 * generator that produced them (docs/ARCHITECTURE.md §5 documents the
 * byte layout).
 *
 * Format summary (version 1, little-endian):
 *
 *   header := magic "DIQT" | format-version u16 | isa-version u16
 *           | name-length varint | name bytes | op-count u64
 *   record := head u8 | src1 i8 | src2 i8 | dest i8
 *           | pc-delta svarint
 *           | [addr-delta svarint | mem-size varint]   (Load/Store)
 *           | [target-delta svarint]                   (Branch)
 *
 * `head` packs the op class (low 5 bits) with the branch-taken flag
 * (bit 5). varint is unsigned LEB128; svarint is zigzag-coded LEB128.
 * Program counters advance by 4 or jump short distances and effective
 * addresses stride, so delta coding keeps records to a few bytes each.
 * The op count is a fixed-width field so the writer can back-patch it
 * at finalize time while streaming records.
 *
 * Every parsing failure raises TraceError with a message naming the
 * file and the defect: bad magic, version skew, truncated header,
 * truncated record, corrupt field, empty trace.
 */

#ifndef DIQ_TRACE_FILE_TRACE_HH
#define DIQ_TRACE_FILE_TRACE_HH

#include <cstdint>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>

#include "trace/isa.hh"
#include "trace/trace_source.hh"

namespace diq::trace
{

/** Malformed or unreadable `.diqt` input. The message names the file
 *  and the precise defect. */
class TraceError : public std::runtime_error
{
  public:
    explicit TraceError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** File magic: the first four bytes of every `.diqt` file. */
constexpr char kTraceMagic[4] = {'D', 'I', 'Q', 'T'};

/** Byte-layout revision; bumped on any incompatible encoding change. */
constexpr uint16_t kTraceFormatVersion = 1;

/**
 * ISA revision carried in the header, packing every ISA constant the
 * decoder validates against (op-class count in the high byte, logical
 * register count in the low byte) — so changing either invalidates
 * old traces explicitly as "version skew" instead of failing
 * mid-stream as "corrupt record".
 */
constexpr uint16_t kTraceIsaVersion = static_cast<uint16_t>(
    (static_cast<unsigned>(OpClass::NumOpClasses) << 8) |
    static_cast<unsigned>(NumLogicalRegs));

/**
 * Streaming `.diqt` encoder over a seekable ostream. Write order:
 * construct (emits the header with a zero op count), append() each
 * op, finalize() (back-patches the true count). The stream must
 * outlive the writer.
 */
class TraceWriter
{
  public:
    /** Emit the header. `name` is the workload's reporting name. */
    TraceWriter(std::ostream &os, const std::string &name);

    /** Encode one micro-op. */
    void append(const MicroOp &op);

    /**
     * Back-patch the header's op count and flush. Idempotent; no
     * append() may follow. @throws TraceError if the stream failed.
     */
    void finalize();

    /** Ops appended so far. */
    uint64_t opCount() const { return count_; }

  private:
    std::ostream &os_;
    std::streampos countPos_;
    uint64_t count_ = 0;
    uint64_t prevPc_ = 0;
    uint64_t prevAddr_ = 0;
    bool finalized_ = false;
};

/**
 * Streaming reader for a `.diqt` file. The header is parsed and
 * validated at construction; records decode lazily in next(), which
 * throws TraceError on any mid-stream corruption (so a truncated file
 * fails loudly at the damaged record, not silently at end-of-stream).
 */
class FileTrace : public TraceSource
{
  public:
    /**
     * Open `path` and validate the header.
     * @throws TraceError on unreadable file, bad magic, format or ISA
     *         version skew, truncated/corrupt header, or a zero-op
     *         (empty) trace.
     */
    explicit FileTrace(const std::string &path);

    /** @throws TraceError on a truncated or corrupt record. */
    bool next(MicroOp &out) override;

    void reset() override;

    /** The recorded workload's reporting name, from the header. */
    const std::string &name() const override { return name_; }

    /** Total micro-ops in the trace, from the header. */
    uint64_t opCount() const { return opCount_; }

    const std::string &path() const { return path_; }

  private:
    [[noreturn]] void fail(const std::string &what) const;
    uint8_t readByte(const char *what);
    uint64_t readVarint(const char *what);
    int64_t readSvarint(const char *what);

    std::string path_;
    std::ifstream is_;
    std::string name_;
    uint64_t opCount_ = 0;
    std::streampos dataPos_;

    // Decode state, mirrored from the writer.
    uint64_t emitted_ = 0;
    uint64_t prevPc_ = 0;
    uint64_t prevAddr_ = 0;
};

/**
 * Recording tee: a TraceSource that forwards another source while
 * writing every op it hands out to a `.diqt` file — so a simulation
 * driven through the recorder archives exactly the stream it consumed,
 * and replaying the file reproduces that run bit for bit.
 *
 * reset() restarts both the inner source and the recording (the file
 * is rewound and re-encoded from scratch), preserving the invariant
 * that the file holds exactly the ops handed out since the last reset.
 *
 * Crash safety: the recording accumulates in `<path>.tmp` and only
 * finalize() moves it onto `path` by atomic rename — a crash mid-run
 * leaves any pre-existing recording at `path` untouched, and a
 * half-written temp file is the only debris. `diq record` therefore
 * never destroys a good trace with a partial one.
 */
class TraceRecorder : public TraceSource
{
  public:
    /** @throws TraceError when the temp file cannot be opened. */
    TraceRecorder(TraceSource &inner, const std::string &path);

    /** Finalizes (commits) the recording if finalize() was not
     *  called; destructor errors are swallowed. */
    ~TraceRecorder() override;

    bool next(MicroOp &out) override;
    void reset() override;
    const std::string &name() const override { return inner_.name(); }

    /**
     * Back-patch the op count, flush, and atomically rename the temp
     * file onto `path`. Idempotent: a second call after a successful
     * commit is a no-op. @throws TraceError.
     */
    void finalize();

    /** Ops recorded since construction or the last reset(). */
    uint64_t recordedOps() const;

  private:
    void restart();

    TraceSource &inner_;
    std::string path_;
    std::string tmpPath_; ///< path_ + ".tmp": where bytes accumulate
    std::ofstream os_;
    std::optional<TraceWriter> writer_; // rebuilt on reset()
    bool committed_ = false;
};

/**
 * Record up to `maxOps` ops of `source` to `path` (stopping early at
 * end-of-stream) and finalize the file.
 * @return the number of ops recorded.
 * @throws TraceError when the file cannot be written.
 */
uint64_t recordTrace(TraceSource &source, const std::string &path,
                     uint64_t maxOps);

} // namespace diq::trace

#endif // DIQ_TRACE_FILE_TRACE_HH

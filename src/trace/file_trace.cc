/**
 * @file
 * Implementation of trace/file_trace.hh: the `.diqt` encoder, the
 * streaming reader and the recording tee (docs/ARCHITECTURE.md §5).
 */

#include "trace/file_trace.hh"

#include <filesystem>
#include <limits>
#include <system_error>

namespace diq::trace
{

namespace
{

/** Sanity cap on the header's name field; anything longer is treated
 *  as a corrupt length, not an allocation request. */
constexpr uint64_t kMaxNameLength = 4096;

/** Zigzag map: small negatives and positives to small unsigneds. */
uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

int64_t
zigzagDecode(uint64_t v)
{
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/** Unsigned LEB128. */
void
writeVarint(std::ostream &os, uint64_t v)
{
    while (v >= 0x80) {
        os.put(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    os.put(static_cast<char>(v));
}

void
writeSvarint(std::ostream &os, int64_t v)
{
    writeVarint(os, zigzagEncode(v));
}

void
writeU16(std::ostream &os, uint16_t v)
{
    os.put(static_cast<char>(v & 0xff));
    os.put(static_cast<char>(v >> 8));
}

void
writeU64(std::ostream &os, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        os.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** Head byte: op class in the low 5 bits, branch-taken in bit 5. */
constexpr uint8_t kOpClassMask = 0x1f;
constexpr uint8_t kTakenBit = 0x20;
static_assert(static_cast<int>(OpClass::NumOpClasses) <=
                  kOpClassMask + 1,
              "op classes no longer fit the 5-bit head encoding; "
              "bump kTraceFormatVersion and widen the field");

/** In-range logical register id or the NoReg sentinel. */
bool
validReg(int8_t reg)
{
    return reg == NoReg || (reg >= 0 && reg < NumLogicalRegs);
}

} // namespace

// --- TraceWriter ----------------------------------------------------

TraceWriter::TraceWriter(std::ostream &os, const std::string &name)
    : os_(os)
{
    // The reader treats longer names as a corrupt header; a recording
    // must never succeed and then fail replay.
    if (name.size() > kMaxNameLength)
        throw TraceError("cannot record trace: workload name of " +
                         std::to_string(name.size()) +
                         " bytes exceeds the format's cap of " +
                         std::to_string(kMaxNameLength));
    os_.write(kTraceMagic, sizeof kTraceMagic);
    writeU16(os_, kTraceFormatVersion);
    writeU16(os_, kTraceIsaVersion);
    writeVarint(os_, name.size());
    os_.write(name.data(),
              static_cast<std::streamsize>(name.size()));
    countPos_ = os_.tellp();
    writeU64(os_, 0); // back-patched by finalize()
}

void
TraceWriter::append(const MicroOp &op)
{
    // Enforce the same invariants the reader checks: a recording
    // must never succeed and then fail replay as "corrupt record"
    // after the trace has been shipped.
    if (op.op >= OpClass::NumOpClasses)
        throw TraceError("cannot record op " + std::to_string(count_) +
                         ": invalid op class " +
                         std::to_string(static_cast<int>(op.op)));
    if (!validReg(op.src1) || !validReg(op.src2) || !validReg(op.dest))
        throw TraceError("cannot record op " + std::to_string(count_) +
                         ": register id out of range");
    if (op.isMem() && op.memSize == 0)
        throw TraceError("cannot record op " + std::to_string(count_) +
                         ": mem size 0");
    if (op.taken && !op.isBranch())
        throw TraceError("cannot record op " + std::to_string(count_) +
                         ": taken flag on a non-branch");

    uint8_t head = static_cast<uint8_t>(op.op) & kOpClassMask;
    if (op.taken)
        head |= kTakenBit;
    os_.put(static_cast<char>(head));
    os_.put(static_cast<char>(op.src1));
    os_.put(static_cast<char>(op.src2));
    os_.put(static_cast<char>(op.dest));
    writeSvarint(os_, static_cast<int64_t>(op.pc - prevPc_));
    prevPc_ = op.pc;
    if (op.isMem()) {
        writeSvarint(os_, static_cast<int64_t>(op.memAddr - prevAddr_));
        prevAddr_ = op.memAddr;
        writeVarint(os_, op.memSize);
    }
    if (op.isBranch())
        writeSvarint(os_, static_cast<int64_t>(op.target - op.pc));
    ++count_;
}

void
TraceWriter::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    std::streampos end = os_.tellp();
    os_.seekp(countPos_);
    writeU64(os_, count_);
    os_.seekp(end);
    os_.flush();
    if (!os_)
        throw TraceError("failed to write .diqt trace "
                         "(stream error while finalizing)");
}

// --- FileTrace ------------------------------------------------------

void
FileTrace::fail(const std::string &what) const
{
    throw TraceError("bad .diqt trace '" + path_ + "': " + what);
}

uint8_t
FileTrace::readByte(const char *what)
{
    int c = is_.get();
    if (c == std::ifstream::traits_type::eof()) {
        fail(emitted_ == 0 && dataPos_ == std::streampos(0)
                 ? std::string("truncated header (") + what + ")"
                 : "truncated record (mid-record EOF in " + std::string(what) +
                       " at op " + std::to_string(emitted_) + " of " +
                       std::to_string(opCount_) + ")");
    }
    return static_cast<uint8_t>(c);
}

uint64_t
FileTrace::readVarint(const char *what)
{
    uint64_t out = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        uint8_t b = readByte(what);
        // The 10th byte may only carry bit 64's single payload bit;
        // anything above would be silently shifted out and misdecode
        // hostile input instead of erroring.
        if (shift == 63 && (b & 0x7e))
            break;
        out |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return out;
    }
    fail(std::string("corrupt varint (") + what + ")");
}

int64_t
FileTrace::readSvarint(const char *what)
{
    return zigzagDecode(readVarint(what));
}

FileTrace::FileTrace(const std::string &path)
    : path_(path), is_(path, std::ios::binary)
{
    if (!is_)
        fail("cannot open file");

    char magic[sizeof kTraceMagic];
    is_.read(magic, sizeof magic);
    if (is_.gcount() != static_cast<std::streamsize>(sizeof magic))
        fail(is_.gcount() == 0 ? "empty file"
                               : "truncated header (magic)");
    for (size_t i = 0; i < sizeof magic; ++i)
        if (magic[i] != kTraceMagic[i])
            fail("bad magic (not a .diqt trace)");

    uint16_t format = readByte("format version");
    format |= static_cast<uint16_t>(readByte("format version")) << 8;
    if (format != kTraceFormatVersion)
        fail("unsupported format version " + std::to_string(format) +
             " (this build reads version " +
             std::to_string(kTraceFormatVersion) + ")");

    uint16_t isa = readByte("ISA version");
    isa |= static_cast<uint16_t>(readByte("ISA version")) << 8;
    if (isa != kTraceIsaVersion)
        fail("ISA version skew: trace was recorded with ISA version " +
             std::to_string(isa) + ", this build expects " +
             std::to_string(kTraceIsaVersion));

    uint64_t nameLen = readVarint("name length");
    if (nameLen > kMaxNameLength)
        fail("corrupt header (name length " + std::to_string(nameLen) +
             ")");
    name_.resize(nameLen);
    is_.read(name_.data(), static_cast<std::streamsize>(nameLen));
    if (is_.gcount() != static_cast<std::streamsize>(nameLen))
        fail("truncated header (name)");

    for (int i = 0; i < 8; ++i)
        opCount_ |= static_cast<uint64_t>(readByte("op count"))
                    << (8 * i);
    if (opCount_ == 0)
        fail("empty trace (zero micro-ops)");

    dataPos_ = is_.tellg();
}

bool
FileTrace::next(MicroOp &out)
{
    if (emitted_ >= opCount_)
        return false;

    uint8_t head = readByte("record head");
    uint8_t opc = head & kOpClassMask;
    if (opc >= static_cast<uint8_t>(OpClass::NumOpClasses))
        fail("corrupt record (op class " + std::to_string(opc) +
             " at op " + std::to_string(emitted_) + ")");

    out = MicroOp{};
    out.op = static_cast<OpClass>(opc);
    out.taken = (head & kTakenBit) != 0;
    out.src1 = static_cast<int8_t>(readByte("src1"));
    out.src2 = static_cast<int8_t>(readByte("src2"));
    out.dest = static_cast<int8_t>(readByte("dest"));
    if (!validReg(out.src1) || !validReg(out.src2) ||
        !validReg(out.dest))
        fail("corrupt record (register id out of range at op " +
             std::to_string(emitted_) + ")");
    out.pc = prevPc_ + static_cast<uint64_t>(readSvarint("pc delta"));
    prevPc_ = out.pc;
    if (out.isMem()) {
        out.memAddr = prevAddr_ +
            static_cast<uint64_t>(readSvarint("mem-addr delta"));
        prevAddr_ = out.memAddr;
        uint64_t size = readVarint("mem size");
        if (size == 0 || size > std::numeric_limits<uint8_t>::max())
            fail("corrupt record (mem size " + std::to_string(size) +
                 " at op " + std::to_string(emitted_) + ")");
        out.memSize = static_cast<uint8_t>(size);
    }
    if (out.isBranch()) {
        out.target = out.pc +
            static_cast<uint64_t>(readSvarint("target delta"));
    } else {
        // Non-branch records never carry a taken flag.
        if (out.taken)
            fail("corrupt record (taken flag on non-branch at op " +
                 std::to_string(emitted_) + ")");
    }

    ++emitted_;
    return true;
}

void
FileTrace::reset()
{
    is_.clear();
    is_.seekg(dataPos_);
    emitted_ = 0;
    prevPc_ = 0;
    prevAddr_ = 0;
}

// --- TraceRecorder --------------------------------------------------

TraceRecorder::TraceRecorder(TraceSource &inner, const std::string &path)
    : inner_(inner), path_(path), tmpPath_(path + ".tmp"),
      os_(tmpPath_, std::ios::binary | std::ios::trunc)
{
    if (!os_)
        throw TraceError("cannot open '" + tmpPath_ +
                         "' for trace recording");
    writer_.emplace(os_, inner_.name());
}

TraceRecorder::~TraceRecorder()
{
    // Best effort: a recorder destroyed without finalize() still
    // leaves a replayable file behind. Errors cannot propagate from a
    // destructor; explicit finalize() reports them.
    try {
        finalize();
    } catch (const TraceError &) {
    }
}

bool
TraceRecorder::next(MicroOp &out)
{
    if (!inner_.next(out))
        return false;
    writer_->append(out);
    return true;
}

void
TraceRecorder::restart()
{
    // Reopen with truncation rather than seeking to 0: a shorter
    // post-reset recording must not leave stale record bytes from the
    // longer pre-reset one behind (the file is the exact byte image
    // of the recording, so archived traces can be hashed/diffed).
    os_.close();
    os_.clear();
    os_.open(tmpPath_, std::ios::binary | std::ios::trunc);
    if (!os_)
        throw TraceError("cannot reopen '" + tmpPath_ +
                         "' for trace recording");
    writer_.emplace(os_, inner_.name());
    committed_ = false;
}

void
TraceRecorder::reset()
{
    inner_.reset();
    restart();
}

void
TraceRecorder::finalize()
{
    if (committed_)
        return;
    writer_->finalize();
    os_.flush();
    os_.close();
    if (!os_)
        throw TraceError("failed to write trace '" + tmpPath_ + "'");
    // Commit point: until this rename, `path_` still holds whatever
    // recording (if any) existed before this run.
    std::error_code ec;
    std::filesystem::rename(tmpPath_, path_, ec);
    if (ec)
        throw TraceError("cannot commit trace '" + path_ +
                         "': " + ec.message());
    committed_ = true;
}

uint64_t
TraceRecorder::recordedOps() const
{
    return writer_->opCount();
}

uint64_t
recordTrace(TraceSource &source, const std::string &path,
            uint64_t maxOps)
{
    TraceRecorder recorder(source, path);
    MicroOp op;
    while (recorder.recordedOps() < maxOps && recorder.next(op)) {
    }
    recorder.finalize();
    return recorder.recordedOps();
}

} // namespace diq::trace

/**
 * @file
 * Versioned, checksummed full-machine snapshots (docs/CHECKPOINTS.md,
 * docs/ARCHITECTURE.md §13).
 *
 * A snapshot is one file holding the complete persistent state of a
 * sim::Cpu mid-run — pipeline windows, pool, scoreboard, renamer, LSQ,
 * issue scheme, predictor, caches, FU pool, stats/counters — plus the
 * experiment's canonical spec line and the trace cursor (ops consumed
 * from the deterministic workload). Restoring builds the identical
 * machine, decodes the state and fast-forwards a fresh workload by the
 * cursor; from there, run(n) is counter-dump byte-identical to the
 * uninterrupted run (pinned by tests/test_ckpt.cc).
 *
 * File format (version 1, little-endian), mirroring the result store's
 * entry format (src/store/result_store.hh):
 *
 *   header  := magic "DIQS" | format-version u16 | schema-version u16
 *            | payload-length u64 | payload-checksum u64 (FNV-1a 64)
 *   payload := spec-line str | ops-consumed u64 | cycle u64
 *            | committed u64 | machine state (ckpt::Archive encoding,
 *              field order = sim::Cpu::serialize)
 *
 * The schema version packs power::NumEvents, so growing the event bank
 * invalidates old snapshots explicitly as "schema skew" rather than
 * misdecoding them. Damage classification reuses store::EntryStatus
 * verbatim — torn writes, bad magic, version/schema skew, checksum
 * mismatches and impossible field values map to the same taxonomy the
 * store's corruption-contract tests pin.
 *
 * Durability discipline for writes: temp file + fsync + atomic rename
 * + directory fsync, identical to the store — a reader never observes
 * a torn snapshot.
 */

#ifndef DIQ_CKPT_SNAPSHOT_HH
#define DIQ_CKPT_SNAPSHOT_HH

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include "spec/experiment_spec.hh"
#include "store/result_store.hh"

namespace diq::trace
{
class TraceSource;
}
namespace diq::sim
{
class Cpu;
}

namespace diq::ckpt
{

/** Bump on any change to the header or payload layout. */
constexpr uint16_t kSnapshotFormatVersion = 1;

/** Schema tag: payload layout parameters that can drift (the event
 *  bank size); skew is reported, never misdecoded. */
uint16_t snapshotSchemaVersion();

/** Snapshot failure with its damage class (save-side errors use
 *  Valid + a message, e.g. unwritable directory). */
class SnapshotError : public std::runtime_error
{
  public:
    SnapshotError(store::EntryStatus status, const std::string &what)
        : std::runtime_error(what), status_(status)
    {
    }

    store::EntryStatus status() const { return status_; }

  private:
    store::EntryStatus status_;
};

/** Header + metadata of a snapshot (`diq ckpt info`). */
struct SnapshotInfo
{
    std::string specLine;     ///< canonical experiment spec line
    uint64_t opsConsumed = 0; ///< trace cursor
    uint64_t cycle = 0;       ///< machine cycle at capture
    uint64_t committed = 0;   ///< committed instructions at capture
    uint64_t payloadBytes = 0;
};

// --- Image codec (exposed for the damage-class tests) ---------------

/** Encode the complete snapshot image (header + payload) for a
 *  machine mid-run under `spec_line`. */
std::string encodeSnapshot(const std::string &spec_line, sim::Cpu &cpu);

/**
 * Validate a whole image and decode its metadata (not the machine
 * state). On Valid, `info` is filled; otherwise untouched.
 */
store::EntryStatus decodeSnapshotInfo(const std::string &bytes,
                                      SnapshotInfo &info);

/**
 * Validate + decode a whole image into `cpu`, which must be
 * constructed from the ProcessorConfig named by the snapshot's spec
 * line. Does NOT touch the trace cursor — callers advance the
 * workload by info.opsConsumed (restoreRun does all of this).
 * On anything but Valid the machine may be partially overwritten and
 * must be discarded.
 */
store::EntryStatus decodeSnapshotInto(const std::string &bytes,
                                      sim::Cpu &cpu, SnapshotInfo &info);

// --- File I/O -------------------------------------------------------

/** Durable write: temp + fsync + atomic rename + directory fsync.
 *  @throws SnapshotError (status Valid) on I/O failure. */
void writeSnapshotFile(const std::filesystem::path &path,
                       const std::string &bytes);

/** Read a whole snapshot file.
 *  @throws SnapshotError (status Empty) when absent/unreadable. */
std::string readSnapshotFile(const std::filesystem::path &path);

/** encodeSnapshot + writeSnapshotFile. */
void saveSnapshot(const std::filesystem::path &path,
                  const std::string &spec_line, sim::Cpu &cpu);

/** readSnapshotFile + decodeSnapshotInfo; @throws SnapshotError with
 *  the damage class on anything but Valid. */
SnapshotInfo snapshotInfo(const std::filesystem::path &path);

// --- Whole-run restore ----------------------------------------------

/**
 * A machine rebuilt from a snapshot, ready to run(): the parsed spec,
 * the recreated workload (already fast-forwarded by the trace
 * cursor) and the restored Cpu (which references the workload —
 * keep both alive together).
 */
struct RestoredRun
{
    spec::ExperimentSpec exp;
    SnapshotInfo info;
    std::unique_ptr<trace::TraceSource> workload;
    std::unique_ptr<sim::Cpu> cpu;
};

/** Decode an in-memory image into a freshly built machine. @throws
 *  SnapshotError with the damage class, spec::ParseError for an
 *  unparsable embedded spec line. */
RestoredRun restoreRunFromImage(const std::string &bytes);

/** readSnapshotFile + restoreRunFromImage. */
RestoredRun restoreRun(const std::filesystem::path &path);

} // namespace diq::ckpt

#endif // DIQ_CKPT_SNAPSHOT_HH

/**
 * @file
 * Interval simulation of one experiment: shard the measured region
 * into N intervals and run them in parallel on the sweep runner's
 * ThreadPool (docs/CHECKPOINTS.md, docs/ARCHITECTURE.md §13).
 *
 * Two seeding modes:
 *
 *  - Exact (checkpoint-seeded). A serial pass runs warm-up, resets
 *    the counters, and saves a snapshot at the head of each interval
 *    before simulating it — the pass IS the monolithic run, so its
 *    result is exact by construction, and the snapshot set is the
 *    reusable artifact. When the set already exists for this spec and
 *    interval count, the serial pass is skipped entirely: every
 *    interval restores its snapshot and re-runs its chunk in
 *    parallel. The replay performs the same run(chunk) calls on the
 *    same machine states, so the final interval's counters are
 *    byte-identical to the monolithic run (pinned by
 *    tests/test_ckpt.cc for N in {1,2,4,8}); each interior interval's
 *    end state is additionally cross-checked byte-for-byte against
 *    the next interval's snapshot.
 *
 *  - Warmup (functionally seeded). Every interval starts from a
 *    fresh machine: functional fast-forward to near the interval head
 *    (branch predictor + caches warm at trace-decode speed,
 *    sim::Cpu::functionalAdvance), a short detailed warm-up of
 *    `interval_warmup` instructions, counter reset, then the measured
 *    chunk. Per-interval stats stitch by summation. No serial pass
 *    and no snapshot files — fully parallel from a cold start — at
 *    the cost of a small warm-up error, measured per scheme in
 *    docs/CHECKPOINTS.md.
 */

#ifndef DIQ_CKPT_INTERVAL_HH
#define DIQ_CKPT_INTERVAL_HH

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "runner/sim_job.hh"
#include "spec/experiment_spec.hh"

namespace diq::ckpt
{

/** How interval heads get their machine state. */
enum class IntervalMode
{
    Exact,  ///< checkpoint-seeded: bit-exact, needs a snapshot set
    Warmup, ///< functionally seeded: parallel cold start, small error
};

/** Outcome of an interval run. */
struct IntervalOutcome
{
    runner::SimResult result; ///< stitched whole-run result
    unsigned intervals = 1;
    IntervalMode mode = IntervalMode::Exact;
    /** Exact mode: the parallel replay path ran (a complete snapshot
     *  set existed); false means the serial saving pass ran. */
    bool replayed = false;
    /** Cycles simulated per interval (load-balance diagnostics). */
    std::vector<uint64_t> intervalCycles;
};

/** Interval head positions: committed-instruction offsets of each
 *  chunk within the measured region. chunk i spans
 *  [starts[i], starts[i] + sizes[i]); sizes sum to measure_insts. */
struct IntervalPlan
{
    std::vector<uint64_t> starts;
    std::vector<uint64_t> sizes;
};

/** Split `measure_insts` into `n` near-equal chunks (earlier chunks
 *  absorb the remainder; every chunk nonempty when n <= measure). */
IntervalPlan planIntervals(uint64_t measure_insts, unsigned n);

/** Snapshot file name of interval `i` for a spec key (the name hash
 *  covers the canonical line AND the interval count, so changing
 *  either never resurrects a stale set). */
std::string snapshotFileName(const std::string &spec_key, unsigned n,
                             unsigned i);

/**
 * Run `exp` split into `intervals` chunks with `jobs` worker threads.
 * Exact mode uses (and populates) `ckpt_dir` for the snapshot set;
 * Warmup mode ignores it. intervals == 0 is clamped to 1; a plan
 * whose chunks would be empty falls back to fewer intervals.
 * @throws SnapshotError, spec errors, std::runtime_error on a failed
 *         boundary cross-check.
 */
IntervalOutcome runIntervals(const spec::ExperimentSpec &exp,
                             unsigned intervals, unsigned jobs,
                             IntervalMode mode,
                             const std::filesystem::path &ckpt_dir);

} // namespace diq::ckpt

#endif // DIQ_CKPT_INTERVAL_HH

/**
 * @file
 * Bidirectional byte codec for simulation-state snapshots
 * (docs/CHECKPOINTS.md, docs/ARCHITECTURE.md §13).
 *
 * One Archive object drives both directions of the snapshot codec: in
 * Save mode every call appends the field's little-endian encoding to
 * an internal byte string; in Load mode the same call sequence decodes
 * the fields back into the referenced objects. Each stateful simulator
 * class implements a single `serialize(ckpt::Archive &)` member that
 * lists its fields once, so the two directions cannot drift — a
 * mis-ordered or missing field breaks the restore-then-run
 * byte-identity tests immediately rather than corrupting state
 * silently.
 *
 * Encoding: all integers widen to a fixed 8-byte little-endian
 * two's-complement word (snapshots are machine state, not bulk data;
 * uniformity beats varint compactness here), bools are one byte
 * validated to 0/1, doubles are raw IEEE-754 bit patterns, strings and
 * vectors carry a u64 length prefix. Load-side validation is strict:
 * any underflow, range violation or impossible value throws
 * ArchiveError, which the snapshot layer maps to the store's
 * CorruptField damage class (store::EntryStatus).
 */

#ifndef DIQ_CKPT_ARCHIVE_HH
#define DIQ_CKPT_ARCHIVE_HH

#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "util/bit_words.hh"
#include "util/circular_buffer.hh"
#include "util/saturating_counter.hh"

namespace diq::ckpt
{

/** Load-side decode failure: underflow or an impossible value. The
 *  snapshot layer reports it as EntryStatus::CorruptField. */
class ArchiveError : public std::runtime_error
{
  public:
    explicit ArchiveError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Two-mode field codec; see the file comment. */
class Archive
{
  public:
    /** An empty Save-mode archive; fields append to bytes(). */
    static Archive forSave() { return Archive(true, {}); }

    /** A Load-mode archive decoding from `payload`. */
    static Archive
    forLoad(std::string payload)
    {
        return Archive(false, std::move(payload));
    }

    bool saving() const { return save_; }
    bool loading() const { return !save_; }

    /** Encoded payload (Save mode). */
    const std::string &bytes() const { return buf_; }

    /** True when Load mode consumed the payload exactly. */
    bool exhausted() const { return pos_ == buf_.size(); }

    /** Any integral field, widened to a u64 two's-complement word.
     *  Load validates that the decoded value round-trips into T. */
    template <typename T>
    void
    integer(T &v)
    {
        static_assert(std::is_integral_v<T> && !std::is_same_v<T, bool>);
        if (save_) {
            putWord(static_cast<uint64_t>(static_cast<int64_t>(v)));
        } else {
            uint64_t w = takeWord();
            T decoded = static_cast<T>(w);
            if (static_cast<uint64_t>(static_cast<int64_t>(decoded)) != w)
                throw ArchiveError("integer field out of range for its "
                                   "type");
            v = decoded;
        }
    }

    void
    boolean(bool &v)
    {
        if (save_) {
            putWordNarrow(v ? 1 : 0);
        } else {
            uint64_t w = takeWordNarrow();
            if (w > 1)
                throw ArchiveError("boolean field holds " +
                                   std::to_string(w));
            v = w != 0;
        }
    }

    /** Raw IEEE-754 bit pattern: a loaded double renders
     *  byte-identically to the saved one. */
    void
    f64(double &v)
    {
        uint64_t bits;
        if (save_) {
            std::memcpy(&bits, &v, sizeof bits);
            putWord(bits);
        } else {
            bits = takeWord();
            std::memcpy(&v, &bits, sizeof v);
        }
    }

    void
    str(std::string &s, uint64_t max_len = 1u << 20)
    {
        if (save_) {
            putWord(s.size());
            buf_.append(s);
        } else {
            uint64_t n = takeWord();
            if (n > max_len)
                throw ArchiveError("string length " + std::to_string(n) +
                                   " exceeds limit");
            need(n);
            s.assign(buf_, pos_, static_cast<size_t>(n));
            pos_ += static_cast<size_t>(n);
        }
    }

    /**
     * Integral vector whose size is fixed by the machine geometry:
     * Load requires the stored count to match v.size() exactly
     * (a mismatch means the snapshot was built for another config).
     */
    template <typename T>
    void
    intVecExact(std::vector<T> &v)
    {
        uint64_t n = v.size();
        integer(n);
        if (loading() && n != v.size())
            throw ArchiveError("fixed-size vector count mismatch: "
                               "stored " + std::to_string(n) +
                               ", expected " + std::to_string(v.size()));
        for (auto &e : v)
            integer(e);
    }

    /** Integral vector of variable size (lazily allocated structures);
     *  Load resizes, bounded by `max_elems`. */
    template <typename T>
    void
    intVecResize(std::vector<T> &v, uint64_t max_elems = 1u << 26)
    {
        uint64_t n = v.size();
        integer(n);
        if (loading()) {
            if (n > max_elems)
                throw ArchiveError("vector count " + std::to_string(n) +
                                   " exceeds limit");
            v.assign(static_cast<size_t>(n), T{});
        }
        for (auto &e : v)
            integer(e);
    }

    /** Variable-size vector of arbitrary element type; `elem(ar, e)`
     *  serializes one element. Load resizes (default-constructing). */
    template <typename T, typename Fn>
    void
    vec(std::vector<T> &v, Fn elem, uint64_t max_elems = 1u << 26)
    {
        uint64_t n = v.size();
        integer(n);
        if (loading()) {
            if (n > max_elems)
                throw ArchiveError("vector count " + std::to_string(n) +
                                   " exceeds limit");
            v.assign(static_cast<size_t>(n), T{});
        }
        for (auto &e : v)
            elem(*this, e);
    }

    /** BitWords whose bit count is fixed by the machine geometry. */
    void
    bits(util::BitWords &b)
    {
        uint64_t n = b.size();
        integer(n);
        if (loading() && n != b.size())
            throw ArchiveError("bitset size mismatch: stored " +
                               std::to_string(n) + ", expected " +
                               std::to_string(b.size()));
        for (size_t wi = 0; wi < b.numWords(); ++wi)
            integer(b.word(wi));
    }

    /**
     * CircularBuffer contents, oldest first; `elem(ar, e)` serializes
     * one element. Load clears and re-pushes, which re-bases the ring
     * at slot 0 — behaviorally identical, since every access is
     * FIFO-relative and the head position is not observable.
     */
    template <typename T, typename Fn>
    void
    ring(util::CircularBuffer<T> &q, Fn elem)
    {
        uint64_t n = q.size();
        integer(n);
        if (save_) {
            for (size_t i = 0; i < q.size(); ++i)
                elem(*this, q.at(i));
        } else {
            if (n > q.capacity())
                throw ArchiveError("ring holds " + std::to_string(n) +
                                   " entries, capacity " +
                                   std::to_string(q.capacity()));
            q.clear();
            for (uint64_t i = 0; i < n; ++i) {
                T e{};
                elem(*this, e);
                q.pushBack(e);
            }
        }
    }

    /** Saturating up/down counter: value only (max is construction-
     *  time geometry); Load validates value <= max. */
    void
    sat(util::SaturatingCounter &c)
    {
        uint64_t v = c.value();
        integer(v);
        if (loading()) {
            if (v > c.max())
                throw ArchiveError("saturating counter value above max");
            c.reset(static_cast<uint16_t>(v));
        }
    }

    void
    satDown(util::SaturatingDownCounter &c)
    {
        uint64_t v = c.value();
        integer(v);
        if (loading()) {
            if (v > c.max())
                throw ArchiveError("down counter value above max");
            c.load(static_cast<uint32_t>(v));
        }
    }

    /** Enum field via its underlying integer, validated < `limit`. */
    template <typename E>
    void
    enumv(E &e, uint64_t limit)
    {
        static_assert(std::is_enum_v<E>);
        auto u = static_cast<uint64_t>(
            static_cast<std::underlying_type_t<E>>(e));
        integer(u);
        if (loading()) {
            if (u >= limit)
                throw ArchiveError("enum value " + std::to_string(u) +
                                   " out of range");
            e = static_cast<E>(u);
        }
    }

  private:
    Archive(bool save, std::string buf)
        : save_(save), buf_(std::move(buf))
    {
    }

    void
    need(uint64_t n)
    {
        if (buf_.size() - pos_ < n)
            throw ArchiveError("payload underflow");
    }

    void
    putWord(uint64_t w)
    {
        char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<char>((w >> (8 * i)) & 0xFF);
        buf_.append(b, 8);
    }

    uint64_t
    takeWord()
    {
        need(8);
        uint64_t w = 0;
        for (int i = 0; i < 8; ++i)
            w |= static_cast<uint64_t>(
                     static_cast<unsigned char>(buf_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return w;
    }

    /** Single-byte encodings for the dense bool fields. */
    void
    putWordNarrow(uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    uint64_t
    takeWordNarrow()
    {
        need(1);
        return static_cast<unsigned char>(buf_[pos_++]);
    }

    bool save_;
    std::string buf_;
    size_t pos_ = 0;
};

} // namespace diq::ckpt

#endif // DIQ_CKPT_ARCHIVE_HH

/** @file Snapshot image codec + durable file I/O (ckpt/snapshot.hh). */

#include "ckpt/snapshot.hh"

#include <cstring>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include <atomic>

#include "ckpt/archive.hh"
#include "runner/sim_job.hh"
#include "sim/pipeline.hh"
#include "trace/trace_source.hh"

namespace fs = std::filesystem;

namespace diq::ckpt
{
namespace
{

constexpr char kMagic[4] = {'D', 'I', 'Q', 'S'};
constexpr size_t kHeaderBytes = 4 + 2 + 2 + 8 + 8;

void
put16(std::string &s, uint16_t v)
{
    s.push_back(static_cast<char>(v & 0xFF));
    s.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void
put64(std::string &s, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

uint16_t
get16(const std::string &s, size_t at)
{
    return static_cast<uint16_t>(
        static_cast<unsigned char>(s[at]) |
        (static_cast<unsigned char>(s[at + 1]) << 8));
}

uint64_t
get64(const std::string &s, size_t at)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(static_cast<unsigned char>(s[at + i]))
             << (8 * i);
    return v;
}

/**
 * Header validation shared by the info and full-restore paths. On
 * Valid, `payload` points into `bytes` (offset kHeaderBytes).
 */
store::EntryStatus
validateHeader(const std::string &bytes, uint64_t &payload_len)
{
    using store::EntryStatus;
    if (bytes.empty())
        return EntryStatus::Empty;
    if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0)
        return EntryStatus::BadMagic;
    if (bytes.size() < kHeaderBytes)
        return EntryStatus::Truncated;
    if (get16(bytes, 4) != kSnapshotFormatVersion)
        return EntryStatus::VersionSkew;
    if (get16(bytes, 6) != snapshotSchemaVersion())
        return EntryStatus::SchemaSkew;
    payload_len = get64(bytes, 8);
    if (bytes.size() < kHeaderBytes + payload_len)
        return EntryStatus::Truncated;
    if (bytes.size() > kHeaderBytes + payload_len)
        return EntryStatus::TrailingGarbage;
    uint64_t sum =
        store::fnv1a64(bytes.data() + kHeaderBytes,
                       static_cast<size_t>(payload_len));
    if (sum != get64(bytes, 16))
        return EntryStatus::ChecksumMismatch;
    return EntryStatus::Valid;
}

/** Decode the metadata fields at the front of a validated payload. */
store::EntryStatus
decodeMeta(Archive &ar, SnapshotInfo &info)
{
    try {
        ar.str(info.specLine);
        ar.integer(info.opsConsumed);
        ar.integer(info.cycle);
        ar.integer(info.committed);
    } catch (const ArchiveError &) {
        return store::EntryStatus::CorruptField;
    }
    return store::EntryStatus::Valid;
}

/** Same temp-suffix scheme as the store: pid + process-wide counter,
 *  so concurrent writers never share a temp file. */
std::string
tmpSuffix()
{
    static std::atomic<uint64_t> seq{0};
#ifndef _WIN32
    uint64_t pid = static_cast<uint64_t>(::getpid());
#else
    uint64_t pid = 0;
#endif
    return ".tmp." + std::to_string(pid) + "." +
           std::to_string(seq.fetch_add(1));
}

void
writeFileDurably(const fs::path &path, const std::string &data)
{
#ifndef _WIN32
    int fd = ::open(path.c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
        throw SnapshotError(store::EntryStatus::Valid,
                            "cannot create '" + path.string() + "'");
    size_t done = 0;
    while (done < data.size()) {
        ssize_t w = ::write(fd, data.data() + done, data.size() - done);
        if (w < 0) {
            ::close(fd);
            throw SnapshotError(store::EntryStatus::Valid,
                                "short write to '" + path.string() +
                                    "'");
        }
        done += static_cast<size_t>(w);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        throw SnapshotError(store::EntryStatus::Valid,
                            "fsync failed for '" + path.string() + "'");
    }
    if (::close(fd) != 0)
        throw SnapshotError(store::EntryStatus::Valid,
                            "close failed for '" + path.string() + "'");
#else
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
    os.flush();
    if (!os)
        throw SnapshotError(store::EntryStatus::Valid,
                            "cannot write '" + path.string() + "'");
#endif
}

void
fsyncDirectory(const fs::path &dir)
{
#ifndef _WIN32
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#else
    (void)dir;
#endif
}

} // namespace

uint16_t
snapshotSchemaVersion()
{
    return static_cast<uint16_t>(power::NumEvents);
}

std::string
encodeSnapshot(const std::string &spec_line, sim::Cpu &cpu)
{
    Archive ar = Archive::forSave();
    std::string line = spec_line;
    ar.str(line);
    uint64_t ops = cpu.opsConsumed();
    uint64_t cycle = cpu.cycle();
    uint64_t committed = cpu.stats().committed;
    ar.integer(ops);
    ar.integer(cycle);
    ar.integer(committed);
    cpu.serialize(ar);

    const std::string &payload = ar.bytes();
    std::string image;
    image.reserve(kHeaderBytes + payload.size());
    image.append(kMagic, 4);
    put16(image, kSnapshotFormatVersion);
    put16(image, snapshotSchemaVersion());
    put64(image, payload.size());
    put64(image, store::fnv1a64(payload.data(), payload.size()));
    image.append(payload);
    return image;
}

store::EntryStatus
decodeSnapshotInfo(const std::string &bytes, SnapshotInfo &info)
{
    uint64_t payload_len = 0;
    store::EntryStatus st = validateHeader(bytes, payload_len);
    if (st != store::EntryStatus::Valid)
        return st;
    Archive ar = Archive::forLoad(bytes.substr(kHeaderBytes));
    SnapshotInfo decoded;
    decoded.payloadBytes = payload_len;
    st = decodeMeta(ar, decoded);
    if (st != store::EntryStatus::Valid)
        return st;
    info = std::move(decoded);
    return store::EntryStatus::Valid;
}

store::EntryStatus
decodeSnapshotInto(const std::string &bytes, sim::Cpu &cpu,
                   SnapshotInfo &info)
{
    uint64_t payload_len = 0;
    store::EntryStatus st = validateHeader(bytes, payload_len);
    if (st != store::EntryStatus::Valid)
        return st;
    Archive ar = Archive::forLoad(bytes.substr(kHeaderBytes));
    SnapshotInfo decoded;
    decoded.payloadBytes = payload_len;
    st = decodeMeta(ar, decoded);
    if (st != store::EntryStatus::Valid)
        return st;
    try {
        cpu.serialize(ar);
    } catch (const ArchiveError &) {
        return store::EntryStatus::CorruptField;
    }
    // A checksum-valid payload with leftover bytes means the encoder
    // and decoder disagree on the machine geometry — a corrupt (or
    // wrong-config) snapshot, not file-level trailing garbage.
    if (!ar.exhausted())
        return store::EntryStatus::CorruptField;
    info = std::move(decoded);
    return store::EntryStatus::Valid;
}

void
writeSnapshotFile(const fs::path &path, const std::string &bytes)
{
    fs::path dir = path.parent_path();
    if (!dir.empty()) {
        std::error_code ec;
        fs::create_directories(dir, ec);
    }
    fs::path tmp = (dir.empty() ? fs::path(".") : dir) /
                   ("." + path.filename().string() + tmpSuffix());
    writeFileDurably(tmp, bytes);
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        throw SnapshotError(store::EntryStatus::Valid,
                            "cannot commit snapshot '" + path.string() +
                                "'");
    }
    fsyncDirectory(dir.empty() ? fs::path(".") : dir);
}

std::string
readSnapshotFile(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw SnapshotError(store::EntryStatus::Empty,
                            "cannot open snapshot '" + path.string() +
                                "'");
    std::ostringstream ss;
    ss << is.rdbuf();
    return std::move(ss).str();
}

void
saveSnapshot(const fs::path &path, const std::string &spec_line,
             sim::Cpu &cpu)
{
    writeSnapshotFile(path, encodeSnapshot(spec_line, cpu));
}

SnapshotInfo
snapshotInfo(const fs::path &path)
{
    std::string bytes = readSnapshotFile(path);
    SnapshotInfo info;
    store::EntryStatus st = decodeSnapshotInfo(bytes, info);
    if (st != store::EntryStatus::Valid)
        throw SnapshotError(st, "snapshot '" + path.string() + "': " +
                                    store::entryStatusName(st));
    return info;
}

RestoredRun
restoreRunFromImage(const std::string &bytes)
{
    // Metadata first: the spec line names the machine to build.
    SnapshotInfo info;
    store::EntryStatus st = decodeSnapshotInfo(bytes, info);
    if (st != store::EntryStatus::Valid)
        throw SnapshotError(st, std::string("snapshot image: ") +
                                    store::entryStatusName(st));

    RestoredRun run;
    run.exp = spec::ExperimentSpec::parse(info.specLine);
    runner::SimJob job = runner::makeJob(run.exp);
    run.workload = runner::makeJobWorkload(job);
    run.cpu = std::make_unique<sim::Cpu>(run.exp.processor,
                                         *run.workload);
    st = decodeSnapshotInto(bytes, *run.cpu, run.info);
    if (st != store::EntryStatus::Valid)
        throw SnapshotError(st, std::string("snapshot image: ") +
                                    store::entryStatusName(st));
    // Fast-forward the fresh deterministic workload to the cursor:
    // the machine's buffered pending op travels in the snapshot, so
    // the source itself must stand exactly at opsConsumed.
    run.workload->skip(run.info.opsConsumed);
    return run;
}

RestoredRun
restoreRun(const fs::path &path)
{
    try {
        return restoreRunFromImage(readSnapshotFile(path));
    } catch (const SnapshotError &e) {
        throw SnapshotError(e.status(), "snapshot '" + path.string() +
                                            "': " + e.what());
    }
}

} // namespace diq::ckpt

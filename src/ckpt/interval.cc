/** @file Interval runner: exact and warmup-seeded (ckpt/interval.hh). */

#include "ckpt/interval.hh"

#include <algorithm>
#include <stdexcept>

#include "ckpt/snapshot.hh"
#include "runner/thread_pool.hh"
#include "sim/pipeline.hh"
#include "store/result_store.hh"
#include "trace/trace_source.hh"

namespace fs = std::filesystem;

namespace diq::ckpt
{
namespace
{

/** Field-wise accumulation for warmup-mode stitching. Every counter
 *  in SimStats is a sum over the measured region, so per-interval
 *  deltas add; deadlock is sticky. */
void
addStats(sim::SimStats &into, const sim::SimStats &delta)
{
    into.cycles += delta.cycles;
    into.committed += delta.committed;
    into.fetched += delta.fetched;
    into.dispatched += delta.dispatched;
    into.issuedOps += delta.issuedOps;
    into.branches += delta.branches;
    into.mispredicts += delta.mispredicts;
    into.loads += delta.loads;
    into.stores += delta.stores;
    into.dispatchStallCycles += delta.dispatchStallCycles;
    into.windowStallCycles += delta.windowStallCycles;
    into.fetchStallCycles += delta.fetchStallCycles;
    into.schemeOccupancySum += delta.schemeOccupancySum;
    into.robOccupancySum += delta.robOccupancySum;
    into.deadlocked = into.deadlocked || delta.deadlocked;
    for (size_t i = 0; i < power::NumEvents; ++i) {
        auto id = static_cast<power::EventId>(i);
        into.counters.add(id, delta.counters.get(id));
    }
}

std::string
hex64(uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i, v >>= 4)
        s[static_cast<size_t>(i)] = digits[v & 0xf];
    return s;
}

runner::SimResult
finishResult(const runner::SimJob &job, const sim::SimStats &stats)
{
    runner::SimResult r;
    r.benchmark = job.profile.name;
    r.scheme = job.exp.processor.scheme.name();
    r.stats = stats;
    r.ipc = stats.ipc();
    r.energy = runner::energyFor(job.exp.processor.scheme,
                                 stats.counters);
    return r;
}

/** First error captured across workers, if any (the pool swallows
 *  escaping exceptions, so workers must record their own). */
void
rethrowFirst(const std::vector<std::string> &errors)
{
    for (size_t i = 0; i < errors.size(); ++i)
        if (!errors[i].empty())
            throw std::runtime_error("interval " + std::to_string(i) +
                                     ": " + errors[i]);
}

} // namespace

IntervalPlan
planIntervals(uint64_t measure_insts, unsigned n)
{
    if (n == 0)
        n = 1;
    // Never plan an empty chunk: fall back to fewer intervals.
    if (measure_insts < n)
        n = measure_insts ? static_cast<unsigned>(measure_insts) : 1;
    IntervalPlan plan;
    uint64_t base = measure_insts / n;
    uint64_t extra = measure_insts % n;
    uint64_t at = 0;
    for (unsigned i = 0; i < n; ++i) {
        uint64_t size = base + (i < extra ? 1 : 0);
        plan.starts.push_back(at);
        plan.sizes.push_back(size);
        at += size;
    }
    return plan;
}

std::string
snapshotFileName(const std::string &spec_key, unsigned n, unsigned i)
{
    std::string tagged =
        spec_key + "#intervals=" + std::to_string(n);
    return "ck-" +
           hex64(store::fnv1a64(tagged.data(), tagged.size())) + "-" +
           std::to_string(i) + ".diqs";
}

IntervalOutcome
runIntervals(const spec::ExperimentSpec &exp, unsigned intervals,
             unsigned jobs, IntervalMode mode, const fs::path &ckpt_dir)
{
    runner::SimJob job = runner::makeJob(exp);
    const std::string key = exp.canonicalLine();
    IntervalPlan plan = planIntervals(exp.measureInsts, intervals);
    const unsigned n = static_cast<unsigned>(plan.sizes.size());

    IntervalOutcome out;
    out.intervals = n;
    out.mode = mode;
    out.intervalCycles.assign(n, 0);

    // Absolute committed-instruction target of chunk i within the
    // measured region. Chunks run to absolute targets, not relative
    // amounts: the commit stage can overshoot a target by up to
    // commit-width-1 instructions in the final cycle, and relative
    // amounts would accumulate that overshoot — absolute targets make
    // the chunked pass stop stepping on exactly the cycle the
    // monolithic run does, which is what makes exact mode exact.
    auto chunkEnd = [&](unsigned i) {
        return i + 1 < n ? plan.starts[i + 1] : exp.measureInsts;
    };
    auto runChunkTo = [](sim::Cpu &cpu, uint64_t target) {
        uint64_t at = cpu.stats().committed;
        return cpu.run(target > at ? target - at : 0);
    };

    if (mode == IntervalMode::Exact) {
        // Probe for a complete, matching snapshot set. `committed` at
        // an interval head overshoots starts[i] by at most the commit
        // width, so accept anything short of the chunk's own end.
        std::vector<std::string> images(n);
        bool have_all = true;
        for (unsigned i = 0; i < n && have_all; ++i) {
            fs::path p = ckpt_dir / snapshotFileName(key, n, i);
            std::error_code ec;
            if (!fs::exists(p, ec)) {
                have_all = false;
                break;
            }
            images[i] = readSnapshotFile(p);
            SnapshotInfo info;
            if (decodeSnapshotInfo(images[i], info) !=
                    store::EntryStatus::Valid ||
                info.specLine != key ||
                info.committed < plan.starts[i] ||
                info.committed >= chunkEnd(i))
                have_all = false;
        }

        if (!have_all) {
            // Serial saving pass — this IS the monolithic run, with a
            // snapshot captured at each interval head along the way.
            auto workload = runner::makeJobWorkload(job);
            sim::Cpu cpu(exp.processor, *workload);
            cpu.run(exp.warmupInsts);
            cpu.resetStats();
            for (unsigned i = 0; i < n; ++i) {
                saveSnapshot(ckpt_dir / snapshotFileName(key, n, i),
                             key, cpu);
                out.intervalCycles[i] = runChunkTo(cpu, chunkEnd(i));
            }
            out.result = finishResult(job, cpu.stats());
            out.replayed = false;
            return out;
        }

        // Parallel replay: interval i restores snapshot i and re-runs
        // its chunk — the same run(chunk) calls on the same machine
        // states as the saving pass, so interval n-1 ends with the
        // monolithic run's exact counters.
        std::vector<std::string> end_images(n);
        std::vector<sim::SimStats> final_stats(1);
        std::vector<std::string> errors(n);
        {
            runner::ThreadPool pool(jobs ? jobs : 1);
            for (unsigned i = 0; i < n; ++i) {
                pool.submit([&, i] {
                    try {
                        RestoredRun run =
                            restoreRunFromImage(images[i]);
                        out.intervalCycles[i] =
                            runChunkTo(*run.cpu, chunkEnd(i));
                        if (i + 1 < n)
                            end_images[i] =
                                encodeSnapshot(key, *run.cpu);
                        else
                            final_stats[0] = run.cpu->stats();
                    } catch (const std::exception &e) {
                        errors[i] = e.what();
                    }
                });
            }
            pool.wait();
        }
        rethrowFirst(errors);

        // Boundary cross-check: each interior interval must end in
        // exactly the machine state the next snapshot recorded.
        for (unsigned i = 0; i + 1 < n; ++i) {
            if (end_images[i] != images[i + 1])
                throw std::runtime_error(
                    "interval " + std::to_string(i) +
                    " end state diverges from snapshot " +
                    std::to_string(i + 1) +
                    " (non-deterministic replay?)");
        }

        out.result = finishResult(job, final_stats[0]);
        out.replayed = true;
        return out;
    }

    // Warmup-seeded: fully parallel cold start. Interval i's head
    // sits head_i committed instructions into the trace; fast-forward
    // functionally to within `interval_warmup` of it, run that
    // remainder in detail, reset counters, measure the chunk.
    std::vector<sim::SimStats> deltas(n);
    std::vector<std::string> errors(n);
    const uint64_t w = exp.intervalWarmup;
    {
        runner::ThreadPool pool(jobs ? jobs : 1);
        for (unsigned i = 0; i < n; ++i) {
            pool.submit([&, i] {
                try {
                    auto workload = runner::makeJobWorkload(job);
                    sim::Cpu cpu(exp.processor, *workload);
                    uint64_t head = exp.warmupInsts + plan.starts[i];
                    uint64_t ffwd = head > w ? head - w : 0;
                    cpu.functionalAdvance(ffwd);
                    cpu.run(head - ffwd);
                    cpu.resetStats();
                    out.intervalCycles[i] = cpu.run(plan.sizes[i]);
                    deltas[i] = cpu.stats();
                } catch (const std::exception &e) {
                    errors[i] = e.what();
                }
            });
        }
        pool.wait();
    }
    rethrowFirst(errors);

    sim::SimStats stitched;
    for (const auto &d : deltas)
        addStats(stitched, d);
    out.result = finishResult(job, stitched);
    out.replayed = false;
    return out;
}

} // namespace diq::ckpt

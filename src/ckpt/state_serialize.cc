/**
 * @file
 * The one translation unit that knows the byte order of every
 * stateful simulator class: all `serialize(ckpt::Archive &)` member
 * definitions live here, next to each other, so the full-machine
 * field inventory can be reviewed in one place
 * (docs/CHECKPOINTS.md, docs/ARCHITECTURE.md §13).
 *
 * Ground rules, shared by every serializer below:
 *
 *  - Persistent state only. Anything recomputed before its next read
 *    (per-cycle scratch buffers, port budgets, probe→dispatch
 *    steering memos) is excluded; memos are *dropped* on Load, which
 *    is behaviorally identical because issue()/dispatch() invalidate
 *    them before they could be consumed.
 *  - Order matters and is observable: the free-list ring, the rename
 *    free stacks and the age chains are serialized in storage order,
 *    because future allocations replay from them.
 *  - Geometry is never stored, only checked: a Load target must be
 *    constructed from the identical configuration (the snapshot
 *    header pins the canonical spec line), and fixed-size containers
 *    verify their stored counts against the live sizes.
 */

#include <stdexcept>

#include "branch/predictors.hh"
#include "ckpt/archive.hh"
#include "core/cam_issue_scheme.hh"
#include "core/fifo_cluster.hh"
#include "core/fifo_issue_scheme.hh"
#include "core/fu_pool.hh"
#include "core/inst_pool.hh"
#include "core/issue_time_estimator.hh"
#include "core/lat_fifo_cluster.hh"
#include "core/lat_fifo_issue_scheme.hh"
#include "core/mixbuff_cluster.hh"
#include "core/mixbuff_issue_scheme.hh"
#include "core/queue_rename_table.hh"
#include "core/scoreboard.hh"
#include "core/slot_meta.hh"
#include "mem/cache.hh"
#include "power/event_counters.hh"
#include "sim/lsq.hh"
#include "sim/pipeline.hh"
#include "sim/rename.hh"
#include "sim/sim_stats.hh"
#include "trace/isa.hh"

namespace diq
{
namespace
{

using ckpt::Archive;
using ckpt::ArchiveError;

/** Fixed-size vector of arbitrary elements: count checked, elements
 *  serialized in place (no default construction required). */
template <typename T, typename Fn>
void
fixedVec(Archive &ar, std::vector<T> &v, Fn fn)
{
    uint64_t n = v.size();
    ar.integer(n);
    if (ar.loading() && n != v.size())
        throw ArchiveError("fixed vector count mismatch: stored " +
                           std::to_string(n) + ", expected " +
                           std::to_string(v.size()));
    for (auto &e : v)
        fn(ar, e);
}

void
microOp(Archive &ar, trace::MicroOp &op)
{
    ar.integer(op.pc);
    ar.enumv(op.op,
             static_cast<uint64_t>(trace::OpClass::NumOpClasses));
    ar.integer(op.src1);
    ar.integer(op.src2);
    ar.integer(op.dest);
    ar.integer(op.memAddr);
    ar.integer(op.memSize);
    ar.boolean(op.taken);
    ar.integer(op.target);
}

void
dynInst(Archive &ar, core::DynInst &inst)
{
    microOp(ar, inst.op);
    ar.integer(inst.seq);
    ar.integer(inst.psrc1);
    ar.integer(inst.psrc2);
    ar.integer(inst.pdest);
    ar.integer(inst.poldDest);
    ar.integer(inst.fetchCycle);
    ar.integer(inst.dispatchCycle);
    ar.integer(inst.issueCycle);
    ar.integer(inst.completeCycle);
    ar.integer(inst.addrReadyCycle);
    ar.integer(inst.memStartCycle);
    ar.integer(inst.queueId);
    ar.integer(inst.chainId);
    ar.integer(inst.agePrev);
    ar.integer(inst.ageNext);
    ar.integer(inst.lsqTicket);
    ar.boolean(inst.issued);
    ar.boolean(inst.completed);
    ar.boolean(inst.mispredicted);
}

void
slotMeta(Archive &ar, core::SlotMeta &m)
{
    ar.integer(m.seq);
    ar.integer(m.src1);
    ar.integer(m.src2);
    ar.integer(m.numSrcs);
    ar.integer(m.isStore);
    ar.enumv(m.fu, static_cast<uint64_t>(core::FuClass::NumClasses));
    ar.integer(m.fuOccupancy);
}

void
eventCounters(Archive &ar, power::EventCounters &c)
{
    uint64_t n = power::NumEvents;
    ar.integer(n);
    if (ar.loading()) {
        if (n != power::NumEvents)
            throw ArchiveError("event bank size mismatch: stored " +
                               std::to_string(n));
        c.clear();
    }
    for (size_t i = 0; i < power::NumEvents; ++i) {
        auto id = static_cast<power::EventId>(i);
        uint64_t v = c.get(id);
        ar.integer(v);
        if (ar.loading())
            c.add(id, v);
    }
}

void
simStats(Archive &ar, sim::SimStats &s)
{
    ar.integer(s.cycles);
    ar.integer(s.committed);
    ar.integer(s.fetched);
    ar.integer(s.dispatched);
    ar.integer(s.issuedOps);
    ar.integer(s.branches);
    ar.integer(s.mispredicts);
    ar.integer(s.loads);
    ar.integer(s.stores);
    ar.integer(s.dispatchStallCycles);
    ar.integer(s.windowStallCycles);
    ar.integer(s.fetchStallCycles);
    ar.integer(s.schemeOccupancySum);
    ar.integer(s.robOccupancySum);
    ar.boolean(s.deadlocked);
    eventCounters(ar, s.counters);
}

} // namespace

// --- core::InstPool --------------------------------------------------

namespace core
{

void
InstPool::serialize(ckpt::Archive &ar)
{
    fixedVec(ar, slab_, dynInst);
    ar.intVecExact(fl_);
    ar.integer(flHead_);
    ar.integer(flTail_);
    ar.integer(flLength_);
    ar.bits(live_);
    ar.integer(oldest_);
    ar.integer(youngest_);
    if (ar.loading() &&
        (flHead_ >= capacity_ || flTail_ >= capacity_ ||
         flLength_ > capacity_))
        throw ArchiveError("inst pool free-list cursor out of range");
}

// --- core::Scoreboard ------------------------------------------------

void
Scoreboard::serialize(ckpt::Archive &ar)
{
    ar.intVecExact(ready_);
    ar.bits(readyMask_);
    ar.integer(synced_);
    uint64_t slots = ring_.size();
    ar.integer(slots);
    if (ar.loading() && slots != ring_.size())
        throw ArchiveError("scoreboard wake-ring size mismatch");
    for (auto &slot : ring_)
        ar.intVecResize(slot, static_cast<uint64_t>(numRegs()));
    ar.intVecResize(far_, static_cast<uint64_t>(numRegs()));
}

// --- core::FuPool ----------------------------------------------------

void
FuPool::serialize(ckpt::Archive &ar)
{
    fixedVec(ar, nextFree_,
             [](Archive &a, std::vector<uint64_t> &units) {
                 a.intVecExact(units);
             });
}

// --- core::QueueRenameTable ------------------------------------------

void
QueueRenameTable::serialize(ckpt::Archive &ar)
{
    fixedVec(ar, table_, [](Archive &a, QueueMapping &m) {
        a.boolean(m.valid);
        a.boolean(m.fpCluster);
        a.integer(m.queue);
        a.integer(m.chain);
        a.integer(m.producerSeq);
    });
}

// --- core::IssueTimeEstimator ----------------------------------------

void
IssueTimeEstimator::serialize(ckpt::Archive &ar)
{
    for (auto &c : destCycle_)
        ar.integer(c);
    ar.integer(allStoreAddr_);
}

// --- core::CamIssueScheme --------------------------------------------

void
CamIssueScheme::serialize(ckpt::Archive &ar)
{
    auto doCluster = [&](Cluster &c) {
        ar.integer(c.count);
        ar.intVecExact(c.slotInst);
        ar.intVecExact(c.src1);
        ar.intVecExact(c.src2);
        ar.bits(c.valid);
        ar.bits(c.wait1);
        ar.bits(c.wait2);
        ar.bits(c.store);
        // Lazily allocated on the first dispatch: size travels along.
        ar.intVecResize(c.waiters1);
        ar.intVecResize(c.waiters2);
        ar.intVecExact(c.prevSlot);
        ar.intVecExact(c.nextSlot);
        ar.integer(c.oldestSlot);
        ar.integer(c.youngestSlot);
        if (ar.loading() && c.count > c.capacity)
            throw ArchiveError("CAM cluster count above capacity");
    };
    doCluster(intQ_);
    doCluster(fpQ_);
}

// --- core::FifoCluster -----------------------------------------------

void
FifoCluster::serialize(ckpt::Archive &ar)
{
    ar.intVecExact(slots_);
    fixedVec(ar, meta_, slotMeta);
    fixedVec(ar, qs_, [](Archive &a, QState &q) {
        a.integer(q.head);
        a.integer(q.count);
        a.integer(q.tailSeq);
    });
    ar.bits(nonEmpty_);
    ar.integer(size_);
    ar.vec(
        heads_,
        [](Archive &a, HeadEntry &h) {
            a.integer(h.queue);
            a.integer(h.slot);
            slotMeta(a, h.meta);
        },
        qs_.size());
    ar.integer(headSrcSum_);
    if (ar.loading()) {
        pickSeq_ = 0; // steering memo: probe-scoped, never restored
        pickMemo_ = -1;
    }
}

// --- core::LatFifoCluster --------------------------------------------

void
LatFifoCluster::serialize(ckpt::Archive &ar)
{
    ar.intVecExact(slots_);
    fixedVec(ar, meta_, slotMeta);
    fixedVec(ar, qs_, [](Archive &a, QState &q) {
        a.integer(q.head);
        a.integer(q.count);
        a.integer(q.tailEstIssue);
    });
    ar.bits(nonEmpty_);
    ar.integer(size_);
    ar.vec(
        heads_,
        [](Archive &a, HeadEntry &h) {
            a.integer(h.queue);
            a.integer(h.slot);
            slotMeta(a, h.meta);
        },
        qs_.size());
    ar.integer(headSrcSum_);
    if (ar.loading()) {
        pickValid_ = false; // placement memo: probe-scoped
        pickMemo_ = -1;
    }
}

// --- core::MixBuffCluster --------------------------------------------

void
MixBuffCluster::serialize(ckpt::Archive &ar)
{
    ar.integer(size_);
    fixedVec(ar, queues_, [&](Archive &a, Queue &q) {
        a.intVecExact(q.slotInst);
        a.intVecExact(q.slotSeq);
        fixedVec(a, q.slotMeta, slotMeta);
        a.intVecExact(q.slotChain);
        a.intVecExact(q.slotLat);
        a.intVecExact(q.nextInChain);
        a.bits(q.valid);
        a.integer(q.count);

        // The chain table may have grown past its construction size
        // (chainsPerQueue == 0 is unbounded); rebuild it on Load.
        uint64_t nchains = q.chains.size();
        a.integer(nchains);
        if (a.loading()) {
            if (nchains > (1u << 20))
                throw ArchiveError("chain table count exceeds limit");
            q.chains.clear();
            q.chains.reserve(static_cast<size_t>(nchains));
            for (uint64_t i = 0; i < nchains; ++i)
                q.chains.emplace_back(counterMax_);
        }
        for (auto &c : q.chains) {
            a.boolean(c.busy);
            a.boolean(c.lastIssued);
            a.integer(c.lastSeq);
            a.integer(c.headSlot);
            a.integer(c.tailSlot);
            a.satDown(c.counter);
        }
        a.intVecResize(q.busyW);
        a.intVecResize(q.memberW);
        a.integer(q.selectedSlot);
        a.integer(q.justLoadedChain);
        if (a.loading() &&
            q.memberW.size() != nchains * wordsPer_)
            throw ArchiveError("chain membership mask size mismatch");
    });
    if (ar.loading())
        placeSeq_ = 0; // placement memo: probe-scoped
}

// --- whole-scheme serializers ----------------------------------------

void
FifoIssueScheme::serialize(ckpt::Archive &ar)
{
    int_.serialize(ar);
    fp_.serialize(ar);
    table_.serialize(ar);
}

void
LatFifoIssueScheme::serialize(ckpt::Archive &ar)
{
    int_.serialize(ar);
    fp_.serialize(ar);
    table_.serialize(ar);
    estimator_.serialize(ar);
}

void
MixBuffIssueScheme::serialize(ckpt::Archive &ar)
{
    int_.serialize(ar);
    fp_.serialize(ar);
    table_.serialize(ar);
}

} // namespace core

// --- branch predictors -----------------------------------------------

namespace branch
{

void
BimodalPredictor::serialize(ckpt::Archive &ar)
{
    fixedVec(ar, table_,
             [](Archive &a, util::SaturatingCounter &c) { a.sat(c); });
}

void
GsharePredictor::serialize(ckpt::Archive &ar)
{
    fixedVec(ar, table_,
             [](Archive &a, util::SaturatingCounter &c) { a.sat(c); });
}

void
Btb::serialize(ckpt::Archive &ar)
{
    fixedVec(ar, sets_, [](Archive &a, std::vector<Entry> &set) {
        fixedVec(a, set, [](Archive &b, Entry &e) {
            b.boolean(e.valid);
            b.integer(e.tag);
            b.integer(e.target);
            b.integer(e.lru);
        });
    });
    ar.integer(lruClock_);
}

void
HybridPredictor::serialize(ckpt::Archive &ar)
{
    gshare_.serialize(ar);
    bimodal_.serialize(ar);
    fixedVec(ar, selector_,
             [](Archive &a, util::SaturatingCounter &c) { a.sat(c); });
    btb_.serialize(ar);
    ar.integer(history_);
    ar.integer(lookups_);
    ar.integer(mispredicts_);
}

} // namespace branch

// --- mem caches ------------------------------------------------------

namespace mem
{

void
Cache::serialize(ckpt::Archive &ar)
{
    fixedVec(ar, lines_, [](Archive &a, Line &l) {
        a.boolean(l.valid);
        a.boolean(l.dirty);
        a.integer(l.tag);
        a.integer(l.lru);
    });
    ar.integer(lruClock_);
    ar.integer(accesses_);
    ar.integer(misses_);
    ar.integer(writebacks_);
}

void
MemoryHierarchy::serialize(ckpt::Archive &ar)
{
    l1i_.serialize(ar);
    l1d_.serialize(ar);
    l2_.serialize(ar);
}

} // namespace mem

// --- sim: renamer, LSQ, the whole Cpu --------------------------------

namespace sim
{

void
RegisterRenamer::serialize(ckpt::Archive &ar)
{
    ar.intVecExact(map_);
    // Free lists are LIFO stacks of variable depth; order replays
    // into future allocations, so they serialize element-exact.
    ar.intVecResize(freeInt_,
                    static_cast<uint64_t>(numIntPhys_));
    ar.intVecResize(freeFp_, static_cast<uint64_t>(numFpPhys_));
}

void
LoadStoreQueue::serialize(ckpt::Archive &ar)
{
    ar.ring(queue_, [](Archive &a, Entry &e) {
        a.integer(e.inst);
        a.integer(e.granule);
        a.integer(e.memAddr);
        a.integer(e.dataReg);
        a.boolean(e.isStore);
        a.boolean(e.isLoad);
        a.boolean(e.addrKnown);
        a.boolean(e.memStarted);
    });
    ar.integer(disambStalls_);
    ar.integer(forwards_);
    ar.integer(headTicket_);
    ar.integer(nextTicket_);
    ar.integer(startableLoads_);
    ar.integer(unknownStoreAddrs_);
}

void
Cpu::serialize(ckpt::Archive &ar)
{
    // Clocks and cursors.
    ar.integer(cycle_);
    ar.integer(nextSeq_);
    ar.integer(opsConsumed_);

    // Front-end state.
    ar.boolean(fetchBlockedOnBranch_);
    ar.integer(fetchResumeCycle_);
    ar.integer(lastFetchLine_);
    ar.boolean(pendingValid_);
    microOp(ar, pendingOp_);
    ar.boolean(traceExhausted_);

    // Measurement counters (the dump the byte-identity tests pin).
    simStats(ar, stats_);

    // Window structures.
    ar.ring(fetchQueue_, [](Archive &a, FetchedOp &f) {
        microOp(a, f.op);
        a.integer(f.seq);
        a.integer(f.fetchCycle);
        a.integer(f.decodeReady);
        a.boolean(f.mispredicted);
    });
    ar.ring(rob_, [](Archive &a, core::InstIdx &idx) {
        a.integer(idx);
    });
    pool_.serialize(ar);

    // Event wheel: slot c%512 holds the events due at cycle c.
    uint64_t slots = eventRing_.size();
    ar.integer(slots);
    if (ar.loading() && slots != eventRing_.size())
        throw ckpt::ArchiveError("event ring size mismatch");
    for (auto &slot : eventRing_) {
        ar.vec(
            slot,
            [](Archive &a, Event &ev) {
                a.enumv(ev.kind, 3);
                a.integer(ev.inst);
            },
            static_cast<uint64_t>(config_.robSize) * 4);
    }

    // Substrates.
    predictor_.serialize(ar);
    mem_.serialize(ar);
    fus_.serialize(ar);
    scoreboard_.serialize(ar);
    renamer_.serialize(ar);
    lsq_.serialize(ar);
    scheme_->serialize(ar);
}

} // namespace sim
} // namespace diq

/**
 * @file
 * Implementation of core/fu_pool.hh (docs/ARCHITECTURE.md §1).
 */

#include "core/fu_pool.hh"

#include <cassert>

namespace diq::core
{

FuClass
fuClassFor(trace::OpClass op)
{
    using trace::OpClass;
    switch (op) {
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return FuClass::IntMul;
      case OpClass::FpAdd:
        return FuClass::FpAlu;
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return FuClass::FpMul;
      default:
        // IntAlu, Load, Store, Branch, Nop: integer ALU / AGU.
        return FuClass::IntAlu;
    }
}

unsigned
FuPool::occupancyFor(trace::OpClass op)
{
    using trace::OpClass;
    switch (op) {
      case OpClass::IntDiv:
      case OpClass::FpDiv:
        return static_cast<unsigned>(trace::opLatency(op));
      default:
        return 1; // fully pipelined
    }
}

FuPool::FuPool(const FuPoolConfig &config)
    : config_(config)
{
    nextFree_.resize(static_cast<size_t>(FuClass::NumClasses));
    nextFree_[static_cast<size_t>(FuClass::IntAlu)]
        .assign(static_cast<size_t>(config_.intAlu), 0);
    nextFree_[static_cast<size_t>(FuClass::IntMul)]
        .assign(static_cast<size_t>(config_.intMul), 0);
    nextFree_[static_cast<size_t>(FuClass::FpAlu)]
        .assign(static_cast<size_t>(config_.fpAlu), 0);
    nextFree_[static_cast<size_t>(FuClass::FpMul)]
        .assign(static_cast<size_t>(config_.fpMul), 0);
}

void
FuPool::unitRange(FuClass fc, int queue_id, int &first, int &count) const
{
    int total = numUnits(fc);
    if (!config_.distributed || queue_id < 0) {
        first = 0;
        count = total;
        return;
    }
    // Distributed binding: queues share the units of their class
    // evenly; with fewer units than queues, adjacent queues pair up on
    // one unit (e.g. 1 mult/div per pair of queues).
    bool is_int = fc == FuClass::IntAlu || fc == FuClass::IntMul;
    int queues = is_int ? config_.numIntQueues : config_.numFpQueues;
    assert(queues > 0);
    if (queue_id >= queues)
        queue_id = queue_id % queues;
    if (total >= queues) {
        // One or more units per queue.
        int per = total / queues;
        first = queue_id * per;
        count = per;
    } else {
        // Several queues share one unit.
        int share = queues / total;
        first = queue_id / share;
        if (first >= total)
            first = total - 1;
        count = 1;
    }
}

bool
FuPool::canIssue(FuClass fc, int queue_id, uint64_t cycle) const
{
    int first = 0;
    int count = 0;
    unitRange(fc, queue_id, first, count);
    const auto &units = nextFree_[static_cast<size_t>(fc)];
    for (int u = first; u < first + count; ++u)
        if (units[static_cast<size_t>(u)] <= cycle)
            return true;
    return false;
}

int
FuPool::markIssued(FuClass fc, int queue_id, uint64_t cycle,
                   unsigned occupancy)
{
    int first = 0;
    int count = 0;
    unitRange(fc, queue_id, first, count);
    auto &units = nextFree_[static_cast<size_t>(fc)];
    for (int u = first; u < first + count; ++u) {
        if (units[static_cast<size_t>(u)] <= cycle) {
            units[static_cast<size_t>(u)] =
                cycle + (occupancy == 0 ? 1 : occupancy);
            return u;
        }
    }
    assert(false && "markIssued without canIssue");
    return -1;
}

void
FuPool::reset()
{
    for (auto &cls : nextFree_)
        for (auto &u : cls)
            u = 0;
}

int
FuPool::numUnits(FuClass fc) const
{
    return static_cast<int>(nextFree_[static_cast<size_t>(fc)].size());
}

} // namespace diq::core

/**
 * @file
 * Implementation of core/fu_pool.hh (docs/ARCHITECTURE.md §1).
 */

#include "core/fu_pool.hh"

#include <cassert>

namespace diq::core
{

FuPool::FuPool(const FuPoolConfig &config)
    : config_(config)
{
    nextFree_.resize(static_cast<size_t>(FuClass::NumClasses));
    nextFree_[static_cast<size_t>(FuClass::IntAlu)]
        .assign(static_cast<size_t>(config_.intAlu), 0);
    nextFree_[static_cast<size_t>(FuClass::IntMul)]
        .assign(static_cast<size_t>(config_.intMul), 0);
    nextFree_[static_cast<size_t>(FuClass::FpAlu)]
        .assign(static_cast<size_t>(config_.fpAlu), 0);
    nextFree_[static_cast<size_t>(FuClass::FpMul)]
        .assign(static_cast<size_t>(config_.fpMul), 0);

    // Precompute the distributed unit binding per (class, queue):
    // queues share the units of their class evenly; with fewer units
    // than queues, adjacent queues pair up on one unit (e.g. 1
    // mult/div per pair of queues).
    ranges_.resize(static_cast<size_t>(FuClass::NumClasses));
    for (size_t fci = 0; fci < ranges_.size(); ++fci) {
        FuClass fc = static_cast<FuClass>(fci);
        int total = numUnits(fc);
        bool is_int = fc == FuClass::IntAlu || fc == FuClass::IntMul;
        int queues = is_int ? config_.numIntQueues : config_.numFpQueues;
        assert(queues > 0);
        auto &table = ranges_[fci];
        table.resize(static_cast<size_t>(queues) + 1);
        table[0] = UnitRange{0, total}; // centralized (queue_id < 0)
        for (int q = 0; q < queues; ++q) {
            UnitRange r{0, total};
            if (config_.distributed) {
                if (total >= queues) {
                    int per = total / queues;
                    r = UnitRange{q * per, per};
                } else {
                    int share = queues / total;
                    int first = q / share;
                    if (first >= total)
                        first = total - 1;
                    r = UnitRange{first, 1};
                }
            }
            table[static_cast<size_t>(q) + 1] = r;
        }
    }
}

void
FuPool::reset()
{
    for (auto &cls : nextFree_)
        for (auto &u : cls)
            u = 0;
}

int
FuPool::numUnits(FuClass fc) const
{
    return static_cast<int>(nextFree_[static_cast<size_t>(fc)].size());
}

} // namespace diq::core

/**
 * @file
 * LatFIFO FP cluster: FIFOs with latency-based placement (paper §3.1).
 *
 * Unlike IssueFIFO, a dispatched instruction may be appended behind an
 * *independent* instruction, provided the queue's current tail is
 * expected to issue at least one cycle earlier: "Each instruction is
 * placed in that queue that is not full and whose last instruction has
 * an estimated issue time at least one cycle earlier than the
 * instruction being dispatched. If there is more than one queue that
 * meets these conditions, the one whose last instruction is expected
 * to be issued later is selected" — which leaves the most room for
 * younger instructions. Issue still happens from FIFO heads with
 * ready-bit checks.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_LAT_FIFO_CLUSTER_HH
#define DIQ_CORE_LAT_FIFO_CLUSTER_HH

#include <vector>

#include "core/dyn_inst.hh"
#include "core/issue_scheme.hh"
#include "util/circular_buffer.hh"

namespace diq::core
{

/** FP-side FIFOs placed by estimated issue time. */
class LatFifoCluster
{
  public:
    LatFifoCluster(int num_queues, int queue_size, bool distributed_fus);

    /** Placement decision for an estimate; -1 means stall. */
    int pickQueue(uint64_t est_issue) const;

    bool canDispatch(uint64_t est_issue) const
    {
        return pickQueue(est_issue) >= 0;
    }

    void dispatch(DynInst *inst, uint64_t est_issue, IssueContext &ctx);

    /** Heads probe regs_ready and issue when ready (oldest first). */
    void issue(IssueContext &ctx, std::vector<DynInst *> &out);

    size_t occupancy() const;
    int numQueues() const { return static_cast<int>(queues_.size()); }

  private:
    struct LatQueue
    {
        util::CircularBuffer<DynInst *> fifo;
        uint64_t tailEstIssue = 0;

        explicit LatQueue(size_t cap) : fifo(cap) {}
    };

    int queueSize_;
    bool distributedFus_;
    std::vector<LatQueue> queues_;
};

} // namespace diq::core

#endif // DIQ_CORE_LAT_FIFO_CLUSTER_HH

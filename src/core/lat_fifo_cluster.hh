/**
 * @file
 * LatFIFO FP cluster: FIFOs with latency-based placement (paper §3.1).
 *
 * Unlike IssueFIFO, a dispatched instruction may be appended behind an
 * *independent* instruction, provided the queue's current tail is
 * expected to issue at least one cycle earlier: "Each instruction is
 * placed in that queue that is not full and whose last instruction has
 * an estimated issue time at least one cycle earlier than the
 * instruction being dispatched. If there is more than one queue that
 * meets these conditions, the one whose last instruction is expected
 * to be issued later is selected" — which leaves the most room for
 * younger instructions. Issue still happens from FIFO heads with
 * ready-bit checks.
 *
 * Storage mirrors FifoCluster: a flat InstIdx slab partitioned into
 * per-queue rings, a `nonEmpty` occupancy mask, and a persistent
 * seq-sorted head list maintained incrementally on push/pop (the
 * previous fixed heads[64] array silently dropped queues beyond the
 * 64th).
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1, §10.
 */

#ifndef DIQ_CORE_LAT_FIFO_CLUSTER_HH
#define DIQ_CORE_LAT_FIFO_CLUSTER_HH

#include <vector>

#include "core/dyn_inst.hh"
#include "core/issue_scheme.hh"
#include "core/slot_meta.hh"
#include "util/bit_words.hh"

namespace diq::core
{

/** FP-side FIFOs placed by estimated issue time. */
class LatFifoCluster
{
  public:
    LatFifoCluster(int num_queues, int queue_size, bool distributed_fus);

    /** Placement decision for an estimate; -1 means stall. */
    int pickQueue(uint64_t est_issue) const;

    bool canDispatch(uint64_t est_issue) const
    {
        return pickQueue(est_issue) >= 0;
    }

    void dispatch(InstIdx idx, uint64_t est_issue, IssueContext &ctx);

    /** Heads probe regs_ready and issue when ready (oldest first). */
    void issue(IssueContext &ctx, std::vector<InstIdx> &out);

    size_t occupancy() const { return size_; }
    int numQueues() const { return static_cast<int>(qs_.size()); }

    /** Structural self-check (see IssueScheme::invariantViolation). */
    std::string invariantViolation(const InstPool &pool) const;

    /** Snapshot codec hook (src/ckpt); the placement memo is dropped
     *  on Load (ckpt/state_serialize.cc). */
    void serialize(ckpt::Archive &ar);

  private:
    /** Ring state of one FIFO; its slots live in the shared slab. */
    struct QState
    {
        uint32_t head = 0;
        uint32_t count = 0;
        uint64_t tailEstIssue = 0;
    };

    /**
     * One FIFO head, kept in a persistent seq-sorted candidate list
     * (see FifoCluster::HeadEntry for the rationale).
     */
    struct HeadEntry
    {
        int queue;
        uint32_t slot; ///< slab index (meta_/slots_)
        SlotMeta meta;
    };

    uint32_t slotAt(int q, uint32_t pos) const
    {
        const QState &st = qs_[static_cast<size_t>(q)];
        uint32_t off = st.head + pos;
        if (off >= static_cast<uint32_t>(queueSize_))
            off -= static_cast<uint32_t>(queueSize_);
        return static_cast<uint32_t>(q) *
                   static_cast<uint32_t>(queueSize_) + off;
    }

    void pushBack(int q, InstIdx idx, const DynInst &inst);
    InstIdx popFront(int q);

    /** Insert queue q's current head into the sorted candidate list. */
    void insertHead(int q);
    /** Remove queue q's entry from the candidate list. */
    void eraseHead(int q);

    int queueSize_;
    bool distributedFus_;
    std::vector<InstIdx> slots_;
    std::vector<SlotMeta> meta_; ///< cached issue facts, per slot
    std::vector<QState> qs_;
    util::BitWords nonEmpty_;
    size_t size_ = 0;
    std::vector<HeadEntry> heads_; ///< seq-sorted, one per non-empty queue
    uint64_t headSrcSum_ = 0; ///< sum of heads_[i].meta.numSrcs

    /** canDispatch probes and the following dispatch make the same
     *  placement decision; the memo spares the second queue scan. It
     *  lives only from probe to dispatch: issue() and dispatch() drop
     *  it before mutating any state the decision depends on. */
    mutable bool pickValid_ = false;
    mutable uint64_t pickEst_ = 0;
    mutable int pickMemo_ = -1;
};

} // namespace diq::core

#endif // DIQ_CORE_LAT_FIFO_CLUSTER_HH

/**
 * @file
 * Implementation of core/cam_issue_scheme.hh (docs/ARCHITECTURE.md §1,
 * §10). Counter behavior is bit-exact with the entry-walk formulation
 * it replaced: select requests are raised by ready entries in age
 * order while grants remain, and armed-cell counts cover exactly the
 * operands whose register is not ready at the broadcast cycle — wait
 * bits disarm on the scoreboard's ready-transition hook, which fires
 * at every point the one-bit ready table gains a bit (the sweeps and
 * broadcasts all probe at the synced cycle, so hook-maintained wait
 * bits and probe-on-sweep wait bits are indistinguishable).
 */

#include "core/cam_issue_scheme.hh"

#include <sstream>

#include "core/mux_counting.hh"
#include "power/events.hh"

namespace diq::core
{

void
CamIssueScheme::initCluster(Cluster &cluster, int capacity)
{
    cluster.capacity = static_cast<uint32_t>(capacity);
    cluster.slotInst.assign(cluster.capacity, NoInst);
    cluster.src1.assign(cluster.capacity, NoPhysReg);
    cluster.src2.assign(cluster.capacity, NoPhysReg);
    cluster.valid.resize(cluster.capacity);
    cluster.wait1.resize(cluster.capacity);
    cluster.wait2.resize(cluster.capacity);
    cluster.store.resize(cluster.capacity);
    cluster.prevSlot.assign(cluster.capacity, NoSlot);
    cluster.nextSlot.assign(cluster.capacity, NoSlot);
    cluster.cand.assign(cluster.valid.numWords(), 0);
}

CamIssueScheme::CamIssueScheme(int int_entries, int fp_entries)
{
    initCluster(intQ_, int_entries);
    initCluster(fpQ_, fp_entries);
}

CamIssueScheme::Cluster &
CamIssueScheme::clusterFor(const DynInst &inst)
{
    return inst.isFpPipe() ? fpQ_ : intQ_;
}

const CamIssueScheme::Cluster &
CamIssueScheme::clusterFor(const DynInst &inst) const
{
    return inst.isFpPipe() ? fpQ_ : intQ_;
}

bool
CamIssueScheme::canDispatch(const DynInst &inst,
                            const IssueContext &ctx) const
{
    (void)ctx;
    const Cluster &c = clusterFor(inst);
    return c.count < c.capacity;
}

void
CamIssueScheme::dispatch(InstIdx idx, IssueContext &ctx)
{
    const DynInst &inst = ctx.pool->get(idx);
    Cluster &c = clusterFor(inst);
    size_t slot = c.valid.findFirstClear(c.capacity);
    assert(slot < c.capacity && "dispatch into a full cluster");
    uint32_t s = static_cast<uint32_t>(slot);

    c.slotInst[s] = idx;
    c.src1[s] = inst.psrc1;
    c.src2[s] = inst.psrc2;
    c.valid.set(s);
    size_t words = c.wait1.numWords();
    if (c.waiters1.empty()) {
        size_t regs = static_cast<size_t>(ctx.scoreboard->numRegs());
        c.waiters1.assign(regs * words, 0);
        c.waiters2.assign(regs * words, 0);
    }
    if (inst.psrc1 != NoPhysReg &&
        !ctx.scoreboard->isReady(inst.psrc1, ctx.cycle)) {
        c.wait1.set(s);
        c.waiters1[static_cast<size_t>(inst.psrc1) * words + s / 64] |=
            uint64_t(1) << (s % 64);
    }
    if (inst.psrc2 != NoPhysReg &&
        !ctx.scoreboard->isReady(inst.psrc2, ctx.cycle)) {
        c.wait2.set(s);
        c.waiters2[static_cast<size_t>(inst.psrc2) * words + s / 64] |=
            uint64_t(1) << (s % 64);
    }
    if (inst.isStore())
        c.store.set(s);

    // Append as youngest: dispatch is in program order, so the chain
    // stays sorted by seq without comparisons.
    c.prevSlot[s] = c.youngestSlot;
    c.nextSlot[s] = NoSlot;
    if (c.youngestSlot != NoSlot)
        c.nextSlot[c.youngestSlot] = s;
    else
        c.oldestSlot = s;
    c.youngestSlot = s;
    ++c.count;

    ctx.counters->inc(power::ev::IqBuffWrites);
}

void
CamIssueScheme::removeSlot(Cluster &c, uint32_t s)
{
    if (c.prevSlot[s] != NoSlot)
        c.nextSlot[c.prevSlot[s]] = c.nextSlot[s];
    else
        c.oldestSlot = c.nextSlot[s];
    if (c.nextSlot[s] != NoSlot)
        c.prevSlot[c.nextSlot[s]] = c.prevSlot[s];
    else
        c.youngestSlot = c.prevSlot[s];
    c.prevSlot[s] = NoSlot;
    c.nextSlot[s] = NoSlot;
    c.valid.clear(s);
    size_t words = c.wait1.numWords();
    // A store can leave with src2 still armed (data arrives by
    // commit); scrub its waiter-row bits so a later occupant of this
    // slot is not disarmed by the old register's transition.
    if (c.wait1.test(s)) {
        c.wait1.clear(s);
        c.waiters1[static_cast<size_t>(c.src1[s]) * words + s / 64] &=
            ~(uint64_t(1) << (s % 64));
    }
    if (c.wait2.test(s)) {
        c.wait2.clear(s);
        c.waiters2[static_cast<size_t>(c.src2[s]) * words + s / 64] &=
            ~(uint64_t(1) << (s % 64));
    }
    c.store.clear(s);
    c.slotInst[s] = NoInst;
    --c.count;
}

void
CamIssueScheme::bindScoreboard(Scoreboard &sb)
{
    sb.setReadyHook(&CamIssueScheme::readyTrampoline, this);
}

void
CamIssueScheme::readyTrampoline(void *self, int phys_reg)
{
    static_cast<CamIssueScheme *>(self)->onRegReady(phys_reg);
}

void
CamIssueScheme::onRegReady(int phys_reg)
{
    // Disarm every cell waiting on this register: mask its waiter
    // row out of the wait bits. Readiness is monotone for resident
    // consumers, so a disarmed cell never re-arms.
    for (Cluster *c : {&intQ_, &fpQ_}) {
        if (c->waiters1.empty())
            continue;
        size_t words = c->wait1.numWords();
        uint64_t *row1 =
            c->waiters1.data() + static_cast<size_t>(phys_reg) * words;
        uint64_t *row2 =
            c->waiters2.data() + static_cast<size_t>(phys_reg) * words;
        for (size_t wi = 0; wi < words; ++wi) {
            if (row1[wi]) {
                c->wait1.word(wi) &= ~row1[wi];
                row1[wi] = 0;
            }
            if (row2[wi]) {
                c->wait2.word(wi) &= ~row2[wi];
                row2[wi] = 0;
            }
        }
    }
}

uint64_t
CamIssueScheme::armedCells(const Cluster &c)
{
    // Eager disarming keeps the wait bits exact: every set bit is an
    // operand whose register is not ready at the current cycle.
    return c.wait1.count() + c.wait2.count();
}

void
CamIssueScheme::issueCluster(Cluster &c, IssueContext &ctx,
                             std::vector<InstIdx> &out)
{
    if (c.count == 0)
        return;

    // Candidate mask: occupied, source 1 ready, and source 2 either
    // ready or deferred to commit (stores issue on the address alone).
    bool any = false;
    for (size_t wi = 0; wi < c.cand.size(); ++wi) {
        uint64_t m = c.valid.word(wi) & ~c.wait1.word(wi) &
                     (~c.wait2.word(wi) | c.store.word(wi));
        c.cand[wi] = m;
        any |= m != 0;
    }
    if (!any)
        return;

    int issued = 0;
    for (uint32_t s = c.oldestSlot;
         s != NoSlot && issued < IssueWidthPerCluster;) {
        uint32_t next = c.nextSlot[s];
        if ((c.cand[s >> 6] >> (s & 63)) & 1) {
            // A ready entry raises its request line whether or not it
            // wins a grant this cycle.
            ctx.counters->inc(power::ev::IqSelectRequests);
            InstIdx idx = c.slotInst[s];
            DynInst &inst = ctx.pool->get(idx);
            FuClass fc = fuClassFor(inst.op.op);
            if (ctx.fus->canIssue(fc, -1, ctx.cycle)) {
                ctx.fus->markIssued(fc, -1, ctx.cycle,
                                    FuPool::occupancyFor(inst.op.op));
                ctx.counters->inc(power::ev::IqBuffReads);
                countMuxIssue(*ctx.counters, fc);
                inst.issued = true;
                inst.issueCycle = ctx.cycle;
                out.push_back(idx);
                ++issued;
                removeSlot(c, s);
            }
        }
        s = next;
    }
}

void
CamIssueScheme::issue(IssueContext &ctx, std::vector<InstIdx> &out)
{
    issueCluster(intQ_, ctx, out);
    issueCluster(fpQ_, ctx, out);
}

void
CamIssueScheme::onWakeup(int phys_reg, IssueContext &ctx)
{
    (void)phys_reg;
    // The destination tag is broadcast into each non-empty cluster
    // queue; every armed (unready) operand cell compares against it.
    // Accounting is batched: one derived per-cluster match count, two
    // bank adds total, instead of per-entry counter traffic.
    (void)ctx;
    uint64_t broadcasts = 0;
    uint64_t matches = 0;
    for (Cluster *c : {&intQ_, &fpQ_}) {
        if (c->count == 0)
            continue;
        ++broadcasts;
        matches += armedCells(*c);
    }
    if (broadcasts) {
        ctx.counters->add(power::ev::WakeupBroadcasts, broadcasts);
        ctx.counters->add(power::ev::WakeupCamMatches, matches);
    }
}

size_t
CamIssueScheme::occupancy() const
{
    return intQ_.count + fpQ_.count;
}

std::string
CamIssueScheme::invariantViolation(const InstPool &pool) const
{
    for (const Cluster *c : {&intQ_, &fpQ_}) {
        const char *which = c == &intQ_ ? "int" : "fp";
        if (c->valid.count() != c->count) {
            return std::string("cam ") + which + " valid mask holds " +
                   std::to_string(c->valid.count()) + " slots, count is " +
                   std::to_string(c->count);
        }
        for (size_t wi = 0; wi < c->valid.numWords(); ++wi) {
            uint64_t v = c->valid.word(wi);
            if ((c->wait1.word(wi) & ~v) || (c->wait2.word(wi) & ~v) ||
                (c->store.word(wi) & ~v)) {
                return std::string("cam ") + which +
                       " wait/store bit set on an empty slot (word " +
                       std::to_string(wi) + ")";
            }
        }
        // Waiter rows must partition the wait bits: each row holds
        // slots whose cached source is that register, and their union
        // reproduces the wait masks exactly.
        if (!c->waiters1.empty()) {
            size_t words = c->wait1.numWords();
            size_t regs = c->waiters1.size() / words;
            for (int which_src = 0; which_src < 2; ++which_src) {
                const auto &rows =
                    which_src == 0 ? c->waiters1 : c->waiters2;
                const auto &wait =
                    which_src == 0 ? c->wait1 : c->wait2;
                const auto &src = which_src == 0 ? c->src1 : c->src2;
                std::vector<uint64_t> uni(words, 0);
                for (size_t r = 0; r < regs; ++r) {
                    for (size_t wi = 0; wi < words; ++wi) {
                        uint64_t row = rows[r * words + wi];
                        if (row & uni[wi])
                            return std::string("cam ") + which +
                                   " slot waits on two registers";
                        uni[wi] |= row;
                        while (row) {
                            size_t s = wi * 64 + static_cast<size_t>(
                                __builtin_ctzll(row));
                            row &= row - 1;
                            if (src[s] != static_cast<int>(r))
                                return std::string("cam ") + which +
                                       " waiter row " +
                                       std::to_string(r) +
                                       " lists a slot reading another"
                                       " register";
                        }
                    }
                }
                for (size_t wi = 0; wi < words; ++wi) {
                    if (uni[wi] != wait.word(wi))
                        return std::string("cam ") + which +
                               " waiter rows do not reproduce the " +
                               (which_src == 0 ? "src1" : "src2") +
                               " wait mask";
                }
            }
        }
        uint32_t walked = 0;
        uint32_t prev = NoSlot;
        uint64_t prev_seq = 0;
        for (uint32_t s = c->oldestSlot; s != NoSlot;
             s = c->nextSlot[s]) {
            if (s >= c->capacity)
                return std::string("cam ") + which +
                       " age chain holds out-of-range slot";
            if (!c->valid.test(s))
                return std::string("cam ") + which +
                       " age chain holds an empty slot";
            if (c->prevSlot[s] != prev)
                return std::string("cam ") + which +
                       " age-chain back link broken at slot " +
                       std::to_string(s);
            InstIdx idx = c->slotInst[s];
            if (idx == NoInst || !pool.isLive(idx))
                return std::string("cam ") + which +
                       " slot holds a dead instruction handle";
            uint64_t seq = pool.get(idx).seq;
            if (walked > 0 && prev_seq >= seq)
                return std::string("cam ") + which +
                       " age chain not strictly increasing at seq " +
                       std::to_string(seq);
            if (++walked > c->count)
                return std::string("cam ") + which +
                       " age chain longer than count (cycle?)";
            prev = s;
            prev_seq = seq;
        }
        if (walked != c->count)
            return std::string("cam ") + which + " age chain visits " +
                   std::to_string(walked) + " of " +
                   std::to_string(c->count) + " entries";
        if (c->youngestSlot != prev)
            return std::string("cam ") + which +
                   " youngest does not terminate the age chain";
    }
    return {};
}

std::string
CamIssueScheme::name() const
{
    std::ostringstream os;
    os << "IQ_" << intQ_.capacity << "_" << fpQ_.capacity;
    return os.str();
}

} // namespace diq::core

/**
 * @file
 * Implementation of core/cam_issue_scheme.hh (docs/ARCHITECTURE.md §1).
 */

#include "core/cam_issue_scheme.hh"

#include <algorithm>
#include <sstream>

#include "core/mux_counting.hh"
#include "power/events.hh"

namespace diq::core
{

CamIssueScheme::CamIssueScheme(int int_entries, int fp_entries)
{
    intQ_.capacity = static_cast<size_t>(int_entries);
    fpQ_.capacity = static_cast<size_t>(fp_entries);
    intQ_.entries.reserve(intQ_.capacity);
    fpQ_.entries.reserve(fpQ_.capacity);
}

CamIssueScheme::Cluster &
CamIssueScheme::clusterFor(const DynInst &inst)
{
    return inst.isFpPipe() ? fpQ_ : intQ_;
}

const CamIssueScheme::Cluster &
CamIssueScheme::clusterFor(const DynInst &inst) const
{
    return inst.isFpPipe() ? fpQ_ : intQ_;
}

bool
CamIssueScheme::canDispatch(const DynInst &inst,
                            const IssueContext &ctx) const
{
    (void)ctx;
    const Cluster &c = clusterFor(inst);
    return c.entries.size() < c.capacity;
}

void
CamIssueScheme::dispatch(DynInst *inst, IssueContext &ctx)
{
    clusterFor(*inst).entries.push_back(inst);
    ctx.counters->inc(power::ev::IqBuffWrites);
}

uint64_t
CamIssueScheme::armedCells(const Cluster &cluster,
                           const IssueContext &ctx) const
{
    uint64_t armed = 0;
    for (const DynInst *e : cluster.entries) {
        if (e->psrc1 != NoPhysReg &&
            !ctx.scoreboard->isReady(e->psrc1, ctx.cycle)) {
            ++armed;
        }
        if (e->psrc2 != NoPhysReg &&
            !ctx.scoreboard->isReady(e->psrc2, ctx.cycle)) {
            ++armed;
        }
    }
    return armed;
}

void
CamIssueScheme::issueCluster(Cluster &cluster, IssueContext &ctx,
                             std::vector<DynInst *> &out)
{
    if (cluster.entries.empty())
        return;

    int issued = 0;
    size_t write_pos = 0;
    for (size_t i = 0; i < cluster.entries.size(); ++i) {
        DynInst *inst = cluster.entries[i];
        bool take = false;
        if (issued < IssueWidthPerCluster &&
            ctx.scoreboard->readyToIssue(*inst, ctx.cycle)) {
            // A ready entry raises its request line whether or not it
            // wins a grant this cycle.
            ctx.counters->inc(power::ev::IqSelectRequests);
            FuClass fc = fuClassFor(inst->op.op);
            if (ctx.fus->canIssue(fc, -1, ctx.cycle)) {
                ctx.fus->markIssued(fc, -1, ctx.cycle,
                                    FuPool::occupancyFor(inst->op.op));
                ctx.counters->inc(power::ev::IqBuffReads);
                countMuxIssue(*ctx.counters, fc);
                inst->issued = true;
                inst->issueCycle = ctx.cycle;
                out.push_back(inst);
                ++issued;
                take = true;
            }
        }
        if (!take)
            cluster.entries[write_pos++] = inst;
    }
    cluster.entries.resize(write_pos);
}

void
CamIssueScheme::issue(IssueContext &ctx, std::vector<DynInst *> &out)
{
    issueCluster(intQ_, ctx, out);
    issueCluster(fpQ_, ctx, out);
}

void
CamIssueScheme::onWakeup(int phys_reg, IssueContext &ctx)
{
    (void)phys_reg;
    // The destination tag is broadcast into each non-empty cluster
    // queue; every armed (unready) operand cell compares against it.
    // Accounting is batched: one derived per-cluster match count, two
    // bank adds total, instead of per-entry counter traffic.
    uint64_t broadcasts = 0;
    uint64_t matches = 0;
    for (const Cluster *c : {&intQ_, &fpQ_}) {
        if (c->entries.empty())
            continue;
        ++broadcasts;
        matches += armedCells(*c, ctx);
    }
    if (broadcasts) {
        ctx.counters->add(power::ev::WakeupBroadcasts, broadcasts);
        ctx.counters->add(power::ev::WakeupCamMatches, matches);
    }
}

size_t
CamIssueScheme::occupancy() const
{
    return intQ_.entries.size() + fpQ_.entries.size();
}

std::string
CamIssueScheme::name() const
{
    std::ostringstream os;
    os << "IQ_" << intQ_.capacity << "_" << fpQ_.capacity;
    return os.str();
}

} // namespace diq::core

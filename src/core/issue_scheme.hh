/**
 * @file
 * Abstract issue-logic organization.
 *
 * The pipeline drives one IssueScheme; concrete implementations are
 * the paper's four organizations:
 *   - CamIssueScheme   : conventional CAM/RAM queue (baseline)
 *   - FifoIssueScheme  : Palacharla's IssueFIFO
 *   - LatFifoIssueScheme : latency-based FIFO placement (paper §3.1)
 *   - MixBuffIssueScheme : the proposed MixBUFF (paper §3.2)
 *
 * A scheme owns both the integer-cluster and FP-cluster structures;
 * instructions route to a cluster by op class (memory ops and branches
 * are integer-cluster work).
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_ISSUE_SCHEME_HH
#define DIQ_CORE_ISSUE_SCHEME_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dyn_inst.hh"
#include "core/fu_pool.hh"
#include "core/inst_pool.hh"
#include "core/scoreboard.hh"
#include "power/event_counters.hh"

namespace diq::ckpt
{
class Archive;
}

namespace diq::core
{

/** Everything a scheme needs from the surrounding machine per cycle. */
struct IssueContext
{
    uint64_t cycle = 0;
    Scoreboard *scoreboard = nullptr;
    FuPool *fus = nullptr;
    power::EventCounters *counters = nullptr;
    /** Slab the InstIdx handles index into (core/inst_pool.hh). */
    InstPool *pool = nullptr;
};

/** Per-cluster issue width (Table 1: 8 integer + 8 FP). */
constexpr int IssueWidthPerCluster = 8;

/** Abstract issue-queue organization. */
class IssueScheme
{
  public:
    virtual ~IssueScheme() = default;

    /**
     * Would dispatching `inst` right now succeed? Dispatch is strictly
     * in order: when this returns false the dispatch stage stalls.
     */
    virtual bool canDispatch(const DynInst &inst,
                             const IssueContext &ctx) const = 0;

    /** Insert the instruction (must follow a true canDispatch). */
    virtual void dispatch(InstIdx idx, IssueContext &ctx) = 0;

    /**
     * One issue cycle: append every instruction that begins execution
     * this cycle to `out`. The scheme checks operand readiness and
     * reserves functional units itself.
     */
    virtual void issue(IssueContext &ctx, std::vector<InstIdx> &out) = 0;

    /**
     * A destination register's availability was announced (tag
     * broadcast for CAM schemes, ready-bit write for the others).
     */
    virtual void onWakeup(int phys_reg, IssueContext &ctx) = 0;

    /**
     * Wire the scheme to the machine's scoreboard before the first
     * dispatch. Schemes that mirror per-register state (the CAM
     * queue's armed wait cells) subscribe to ready-bit transitions
     * here; the default organization needs nothing. Idempotent.
     */
    virtual void bindScoreboard(Scoreboard &sb) { (void)sb; }

    /**
     * A branch mispredict resolved; table-based schemes clear their
     * queue rename tables here (paper §2.2: clearing "does not have
     * significant impact in performance and simplifies the hardware").
     */
    virtual void onBranchMispredict(IssueContext &ctx) { (void)ctx; }

    /** Instructions currently waiting in the scheme. */
    virtual size_t occupancy() const = 0;

    /**
     * Structural self-check for the property suite: every resident
     * handle live in `pool`, per-structure counts consistent, wakeup
     * masks covering exactly the resident entries. Returns "" when
     * every invariant holds, else a description of the first
     * violation. Debug/test path — never called during simulation.
     */
    virtual std::string
    invariantViolation(const InstPool &pool) const
    {
        (void)pool;
        return {};
    }

    /**
     * Snapshot codec hook (src/ckpt): serialize (Save) or overwrite
     * (Load) every field that influences future cycles — resident
     * entries, wakeup/wait masks, age chains, rename tables, chain
     * tables. Probe→dispatch steering memos are dropped on Load
     * instead of stored: they are consumed or invalidated before the
     * next cycle's issue() either way. Load requires an instance
     * built from the identical SchemeConfig.
     */
    virtual void serialize(ckpt::Archive &ar) = 0;

    /** Organization name, e.g. "MixBUFF_8x8_8x16". */
    virtual std::string name() const = 0;
};

/** Scheme selection + parameters for the factory. */
struct SchemeConfig
{
    enum class Kind { Cam, IssueFifo, LatFifo, MixBuff };

    Kind kind = Kind::Cam;

    // CAM baseline capacities (per cluster).
    int camIntEntries = 64;
    int camFpEntries = 64;

    // FIFO-family geometry: AxB integer queues, CxD FP queues.
    int numIntQueues = 8;
    int intQueueSize = 8;
    int numFpQueues = 8;
    int fpQueueSize = 16;

    /** MixBUFF chains per FP queue; 0 = unbounded (paper §3.2 study). */
    int chainsPerQueue = 8;

    /** Distribute functional units across queues (paper §3.3). */
    bool distributedFus = false;

    /** Clear rename tables when a branch mispredict resolves. */
    bool clearTableOnMispredict = true;

    // --- Named configurations from the paper -------------------------

    /** Baseline: two 64-entry CAM queues, centralized FUs (§4.2). */
    static SchemeConfig iq6464();

    /** Unbounded (256-entry) CAM baseline used in §3's IPC-loss study. */
    static SchemeConfig unbounded();

    /** IssueFIFO_AxB_CxD, centralized FUs. */
    static SchemeConfig issueFifo(int a, int b, int c, int d);

    /** LatFIFO_AxB_CxD, centralized FUs. */
    static SchemeConfig latFifo(int a, int b, int c, int d);

    /** MixBUFF_AxB_CxD, centralized FUs, `chains` per queue
     *  (0 = unbounded as in the §3.2 evaluation). */
    static SchemeConfig mixBuff(int a, int b, int c, int d,
                                int chains = 0);

    /** IF_distr = IssueFIFO_8x8_8x16 with distributed FUs (§4.2). */
    static SchemeConfig ifDistr();

    /** MB_distr = MixBUFF_8x8_8x16, 8 chains/queue, distributed FUs. */
    static SchemeConfig mbDistr();

    std::string name() const;

    /** Knob-wise equality (the spec layer round-trips on this). */
    bool operator==(const SchemeConfig &) const = default;
};

/** Instantiate a scheme from its configuration. */
std::unique_ptr<IssueScheme> makeScheme(const SchemeConfig &config);

} // namespace diq::core

#endif // DIQ_CORE_ISSUE_SCHEME_HH

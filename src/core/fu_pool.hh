/**
 * @file
 * Functional-unit pool with centralized or distributed binding.
 *
 * Table 1 configuration: 8 integer ALUs, 4 integer mult/div units,
 * 4 FP ALUs, 4 FP mult/div units. ALUs and multipliers are fully
 * pipelined (one issue per cycle per unit); dividers occupy their unit
 * for the whole operation.
 *
 * In the distributed organizations (paper §3.3) each queue owns its
 * units: one integer ALU per integer queue, one integer mult/div per
 * pair of integer queues, and one FP add + one FP mult/div per pair of
 * FP queues. An instruction issuing from queue q may then use only the
 * units bound to q, which is what kills the issue crossbar.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_FU_POOL_HH
#define DIQ_CORE_FU_POOL_HH

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/isa.hh"

namespace diq::ckpt
{
class Archive;
}

namespace diq::core
{

/** Functional-unit classes (dividers share the multiply unit). */
enum class FuClass : uint8_t { IntAlu = 0, IntMul, FpAlu, FpMul, NumClasses };

/** Which unit class executes an op class. Loads/stores/branches use
 *  the integer ALU (address computation / condition evaluation).
 *  Inline: probed per dispatched/issued op. */
constexpr FuClass
fuClassFor(trace::OpClass op)
{
    using trace::OpClass;
    switch (op) {
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return FuClass::IntMul;
      case OpClass::FpAdd:
        return FuClass::FpAlu;
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return FuClass::FpMul;
      default:
        // IntAlu, Load, Store, Branch, Nop: integer ALU / AGU.
        return FuClass::IntAlu;
    }
}

/** Configuration of the pool. */
struct FuPoolConfig
{
    int intAlu = 8;
    int intMul = 4;
    int fpAlu = 4;
    int fpMul = 4;

    bool distributed = false; ///< bind units to issue queues
    int numIntQueues = 8;     ///< binding domain (distributed only)
    int numFpQueues = 8;
};

/** The pool; tracks per-unit busy state cycle by cycle. */
class FuPool
{
  public:
    explicit FuPool(const FuPoolConfig &config);

    /**
     * Can an instruction of class `fc`, issuing from queue `queue_id`
     * (-1 for centralized callers), begin execution at `cycle`?
     * Inline with precomputed unit ranges: probed on every selection.
     */
    bool
    canIssue(FuClass fc, int queue_id, uint64_t cycle) const
    {
        const UnitRange r = rangeFor(fc, queue_id);
        const uint64_t *u =
            nextFree_[static_cast<size_t>(fc)].data() + r.first;
        for (int i = 0; i < r.count; ++i)
            if (u[i] <= cycle)
                return true;
        return false;
    }

    /**
     * Reserve a unit. `occupancy` is 1 for pipelined ops and the full
     * latency for unpipelined ones (use occupancyFor()).
     * @return index of the unit used.
     */
    int
    markIssued(FuClass fc, int queue_id, uint64_t cycle,
               unsigned occupancy)
    {
        const UnitRange r = rangeFor(fc, queue_id);
        uint64_t *u = nextFree_[static_cast<size_t>(fc)].data() + r.first;
        for (int i = 0; i < r.count; ++i) {
            if (u[i] <= cycle) {
                u[i] = cycle + (occupancy == 0 ? 1 : occupancy);
                return r.first + i;
            }
        }
        assert(false && "markIssued without canIssue");
        return -1;
    }

    /** Unit-occupancy in cycles for an op class (divides block). */
    static constexpr unsigned
    occupancyFor(trace::OpClass op)
    {
        using trace::OpClass;
        switch (op) {
          case OpClass::IntDiv:
          case OpClass::FpDiv:
            return static_cast<unsigned>(trace::opLatency(op));
          default:
            return 1; // fully pipelined
        }
    }

    /** All units idle again. */
    void reset();

    int numUnits(FuClass fc) const;
    const FuPoolConfig &config() const { return config_; }

    /** Snapshot codec hook (src/ckpt): per-unit next-free cycles
     *  (the binding table is config-derived and not stored). */
    void serialize(ckpt::Archive &ar);

  private:
    /** Units [first, first+count) of one class usable by one queue. */
    struct UnitRange
    {
        int first = 0;
        int count = 0;
    };

    /**
     * Precomputed binding table: ranges_[fc][0] is the centralized
     * range (queue_id < 0), ranges_[fc][q + 1] the range of queue q.
     * Computed once at construction so the per-issue probe does no
     * division.
     */
    const UnitRange &
    rangeFor(FuClass fc, int queue_id) const
    {
        const auto &table = ranges_[static_cast<size_t>(fc)];
        size_t i = static_cast<size_t>(queue_id + 1);
        if (i >= table.size())
            i = (i - 1) % (table.size() - 1) + 1; // out-of-range queue
        return table[i];
    }

    FuPoolConfig config_;
    // nextFree_[class][unit]: first cycle the unit can accept an op.
    std::vector<std::vector<uint64_t>> nextFree_;
    std::vector<std::vector<UnitRange>> ranges_;
};

} // namespace diq::core

#endif // DIQ_CORE_FU_POOL_HH

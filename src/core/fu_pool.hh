/**
 * @file
 * Functional-unit pool with centralized or distributed binding.
 *
 * Table 1 configuration: 8 integer ALUs, 4 integer mult/div units,
 * 4 FP ALUs, 4 FP mult/div units. ALUs and multipliers are fully
 * pipelined (one issue per cycle per unit); dividers occupy their unit
 * for the whole operation.
 *
 * In the distributed organizations (paper §3.3) each queue owns its
 * units: one integer ALU per integer queue, one integer mult/div per
 * pair of integer queues, and one FP add + one FP mult/div per pair of
 * FP queues. An instruction issuing from queue q may then use only the
 * units bound to q, which is what kills the issue crossbar.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_FU_POOL_HH
#define DIQ_CORE_FU_POOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/isa.hh"

namespace diq::core
{

/** Functional-unit classes (dividers share the multiply unit). */
enum class FuClass : uint8_t { IntAlu = 0, IntMul, FpAlu, FpMul, NumClasses };

/** Which unit class executes an op class. Loads/stores/branches use
 *  the integer ALU (address computation / condition evaluation). */
FuClass fuClassFor(trace::OpClass op);

/** Configuration of the pool. */
struct FuPoolConfig
{
    int intAlu = 8;
    int intMul = 4;
    int fpAlu = 4;
    int fpMul = 4;

    bool distributed = false; ///< bind units to issue queues
    int numIntQueues = 8;     ///< binding domain (distributed only)
    int numFpQueues = 8;
};

/** The pool; tracks per-unit busy state cycle by cycle. */
class FuPool
{
  public:
    explicit FuPool(const FuPoolConfig &config);

    /**
     * Can an instruction of class `fc`, issuing from queue `queue_id`
     * (-1 for centralized callers), begin execution at `cycle`?
     */
    bool canIssue(FuClass fc, int queue_id, uint64_t cycle) const;

    /**
     * Reserve a unit. `occupancy` is 1 for pipelined ops and the full
     * latency for unpipelined ones (use occupancyFor()).
     * @return index of the unit used.
     */
    int markIssued(FuClass fc, int queue_id, uint64_t cycle,
                   unsigned occupancy);

    /** Unit-occupancy in cycles for an op class (divides block). */
    static unsigned occupancyFor(trace::OpClass op);

    /** All units idle again. */
    void reset();

    int numUnits(FuClass fc) const;
    const FuPoolConfig &config() const { return config_; }

  private:
    /** Range [first, count) of units of `fc` usable by `queue_id`. */
    void unitRange(FuClass fc, int queue_id, int &first, int &count) const;

    FuPoolConfig config_;
    // nextFree_[class][unit]: first cycle the unit can accept an op.
    std::vector<std::vector<uint64_t>> nextFree_;
};

} // namespace diq::core

#endif // DIQ_CORE_FU_POOL_HH

/**
 * @file
 * Dense indexed pool of in-flight instructions.
 *
 * One contiguous DynInst slab with an explicit free list (a ring of
 * slot indices, fl_head/fl_tail/fl_length) replaces per-instruction
 * heap nodes: allocation and release are O(1) ring operations, every
 * handle is a uint32_t slab index (core/dyn_inst.hh InstIdx), and the
 * live entries are threaded onto an intrusive prev/next age chain in
 * strictly increasing seq order so oldest-first select never sorts.
 * The layout mirrors the classic issue-queue free-list idiom (see
 * SNIPPETS.md) and is pinned by tests/test_pool_invariants.cc via
 * invariantViolation().
 *
 * Frees may happen out of order (mispredict squash walks the ROB from
 * the tail); the age chain unlinks from the middle in O(1) through
 * the intrusive links. Freed slots re-enter at the ring tail, so slot
 * reuse is maximally delayed — a stale handle keeps pointing at
 * recognizably dead state for as long as possible.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §10.
 */

#ifndef DIQ_CORE_INST_POOL_HH
#define DIQ_CORE_INST_POOL_HH

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dyn_inst.hh"
#include "util/bit_words.hh"

namespace diq::ckpt
{
class Archive;
}

namespace diq::core
{

/** Slab + free-list + age-chain storage for DynInst. */
class InstPool
{
  public:
    explicit InstPool(uint32_t capacity)
        : slab_(capacity), fl_(capacity), live_(capacity),
          capacity_(capacity)
    {
        assert(capacity > 0);
        reset();
    }

    /**
     * Take a free slot, reset it from `mop`/`seq`, and append it to
     * the age-chain tail. `seq` must exceed every live seq (dispatch
     * is in program order), which keeps the chain sorted for free.
     */
    InstIdx
    alloc(const trace::MicroOp &mop, uint64_t seq)
    {
        assert(flLength_ > 0 && "pool exhausted");
        InstIdx idx = fl_[flHead_];
        flHead_ = flHead_ + 1 == capacity_ ? 0 : flHead_ + 1;
        --flLength_;

        DynInst &inst = slab_[idx];
        inst.reset(mop, seq);
        live_.set(idx);

        // Append as youngest.
        inst.agePrev = youngest_;
        inst.ageNext = NoInst;
        if (youngest_ != NoInst)
            slab_[youngest_].ageNext = idx;
        else
            oldest_ = idx;
        youngest_ = idx;
        assert(inst.agePrev == NoInst || slab_[inst.agePrev].seq < seq);
        return idx;
    }

    /** Unlink from the age chain and return the slot to the ring. */
    void
    free(InstIdx idx)
    {
        assert(idx < capacity_ && live_.test(idx) && "double free");
        DynInst &inst = slab_[idx];
        if (inst.agePrev != NoInst)
            slab_[inst.agePrev].ageNext = inst.ageNext;
        else
            oldest_ = inst.ageNext;
        if (inst.ageNext != NoInst)
            slab_[inst.ageNext].agePrev = inst.agePrev;
        else
            youngest_ = inst.agePrev;
        inst.agePrev = NoInst;
        inst.ageNext = NoInst;
        live_.clear(idx);

        fl_[flTail_] = idx;
        flTail_ = flTail_ + 1 == capacity_ ? 0 : flTail_ + 1;
        ++flLength_;
    }

    DynInst &
    get(InstIdx idx)
    {
        assert(idx < capacity_);
        return slab_[idx];
    }

    const DynInst &
    get(InstIdx idx) const
    {
        assert(idx < capacity_);
        return slab_[idx];
    }

    DynInst &operator[](InstIdx idx) { return get(idx); }
    const DynInst &operator[](InstIdx idx) const { return get(idx); }

    /** Handle of a slab resident (inverse of get; test helpers). */
    InstIdx
    indexOf(const DynInst &inst) const
    {
        auto off = &inst - slab_.data();
        assert(off >= 0 && static_cast<uint32_t>(off) < capacity_);
        return static_cast<InstIdx>(off);
    }

    uint32_t capacity() const { return capacity_; }
    uint32_t liveCount() const { return capacity_ - flLength_; }
    uint32_t freeCount() const { return flLength_; }
    bool isLive(InstIdx idx) const { return live_.test(idx); }

    /** Oldest/youngest live entry (NoInst when empty). */
    InstIdx oldest() const { return oldest_; }
    InstIdx youngest() const { return youngest_; }

    /** Everything free, chain empty. */
    void
    reset()
    {
        live_.clearAll();
        for (uint32_t i = 0; i < capacity_; ++i)
            fl_[i] = i;
        flHead_ = 0;
        flTail_ = 0;
        flLength_ = capacity_;
        oldest_ = NoInst;
        youngest_ = NoInst;
    }

    /**
     * Structural self-check for the property suite: free-list
     * conservation (live + free == capacity, free slots distinct and
     * dead), and the age chain a permutation of the live set in
     * strictly increasing seq with consistent back links. Returns ""
     * when every invariant holds, else a description of the first
     * violation.
     */
    std::string
    invariantViolation() const
    {
        // Free-list conservation + no-double-free: walk the ring.
        util::BitWords seen(capacity_);
        uint32_t pos = flHead_;
        for (uint32_t n = 0; n < flLength_; ++n) {
            InstIdx idx = fl_[pos];
            if (idx >= capacity_)
                return "free list holds out-of-range slot " +
                       std::to_string(idx);
            if (seen.test(idx))
                return "slot " + std::to_string(idx) +
                       " appears twice in the free list";
            if (live_.test(idx))
                return "slot " + std::to_string(idx) +
                       " is both live and on the free list";
            seen.set(idx);
            pos = pos + 1 == capacity_ ? 0 : pos + 1;
        }
        if (pos != flTail_)
            return "free-list ring length disagrees with fl_length";
        if (live_.count() + flLength_ != capacity_)
            return "allocated + free != capacity (" +
                   std::to_string(live_.count()) + " + " +
                   std::to_string(flLength_) + " != " +
                   std::to_string(capacity_) + ")";

        // Age chain: permutation of the live set, strictly increasing
        // seq, consistent prev links.
        uint32_t walked = 0;
        InstIdx prev = NoInst;
        for (InstIdx idx = oldest_; idx != NoInst;
             idx = slab_[idx].ageNext) {
            if (idx >= capacity_)
                return "age chain holds out-of-range slot " +
                       std::to_string(idx);
            if (!live_.test(idx))
                return "age chain holds dead slot " +
                       std::to_string(idx);
            if (slab_[idx].agePrev != prev)
                return "age-chain back link broken at slot " +
                       std::to_string(idx);
            if (prev != NoInst && slab_[prev].seq >= slab_[idx].seq)
                return "age chain not strictly increasing at seq " +
                       std::to_string(slab_[idx].seq);
            if (++walked > liveCount())
                return "age chain longer than the live set (cycle?)";
            prev = idx;
        }
        if (walked != liveCount())
            return "age chain visits " + std::to_string(walked) +
                   " of " + std::to_string(liveCount()) +
                   " live entries";
        if (youngest_ != prev)
            return "youngest does not terminate the age chain";
        return {};
    }

    /** Snapshot codec hook (src/ckpt): the whole slab, the free-list
     *  ring *in order* (freed slots re-enter at the tail, so ring
     *  order determines future allocation order), the live mask and
     *  the age-chain endpoints (defined in ckpt/state_serialize.cc). */
    void serialize(ckpt::Archive &ar);

  private:
    std::vector<DynInst> slab_;
    std::vector<InstIdx> fl_; ///< free-list ring of slot indices
    util::BitWords live_;
    uint32_t capacity_;
    uint32_t flHead_ = 0;
    uint32_t flTail_ = 0;
    uint32_t flLength_ = 0;
    InstIdx oldest_ = NoInst;
    InstIdx youngest_ = NoInst;
};

} // namespace diq::core

#endif // DIQ_CORE_INST_POOL_HH

/**
 * @file
 * Implementation of core/lat_fifo_cluster.hh (docs/ARCHITECTURE.md §1).
 */

#include "core/lat_fifo_cluster.hh"

#include <algorithm>

#include "core/mux_counting.hh"
#include "power/events.hh"

namespace diq::core
{

LatFifoCluster::LatFifoCluster(int num_queues, int queue_size,
                               bool distributed_fus)
    : queueSize_(queue_size), distributedFus_(distributed_fus)
{
    queues_.reserve(static_cast<size_t>(num_queues));
    for (int q = 0; q < num_queues; ++q)
        queues_.emplace_back(static_cast<size_t>(queue_size));
}

int
LatFifoCluster::pickQueue(uint64_t est_issue) const
{
    // Among non-full, non-empty queues whose tail issues at least one
    // cycle earlier, prefer the latest tail; otherwise an empty queue.
    int best = -1;
    uint64_t best_tail = 0;
    int empty = -1;
    for (int q = 0; q < numQueues(); ++q) {
        const LatQueue &lq = queues_[static_cast<size_t>(q)];
        if (lq.fifo.empty()) {
            if (empty < 0)
                empty = q;
            continue;
        }
        if (lq.fifo.full())
            continue;
        if (lq.tailEstIssue + 1 <= est_issue &&
            (best < 0 || lq.tailEstIssue > best_tail)) {
            best = q;
            best_tail = lq.tailEstIssue;
        }
    }
    if (best >= 0)
        return best;
    return empty;
}

void
LatFifoCluster::dispatch(DynInst *inst, uint64_t est_issue,
                         IssueContext &ctx)
{
    int q = pickQueue(est_issue);
    if (q < 0)
        return; // caller gates on canDispatch
    LatQueue &lq = queues_[static_cast<size_t>(q)];
    lq.fifo.pushBack(inst);
    lq.tailEstIssue = est_issue;
    inst->queueId = q;
    inst->dispatchCycle = ctx.cycle;
    ctx.counters->inc(power::ev::FifoWrites);
}

void
LatFifoCluster::issue(IssueContext &ctx, std::vector<DynInst *> &out)
{
    struct Head
    {
        int queue;
        DynInst *inst;
    };
    Head heads[64];
    int num_heads = 0;
    for (int q = 0; q < numQueues(); ++q) {
        auto &fifo = queues_[static_cast<size_t>(q)].fifo;
        if (fifo.empty())
            continue;
        DynInst *inst = fifo.front();
        ctx.counters->add(power::ev::RegsReadyReads,
                          static_cast<uint64_t>(inst->numSrcs()));
        if (num_heads < 64)
            heads[num_heads++] = {q, inst};
    }
    std::sort(heads, heads + num_heads,
              [](const Head &a, const Head &b) {
                  return a.inst->seq < b.inst->seq;
              });

    int issued = 0;
    for (int i = 0; i < num_heads && issued < IssueWidthPerCluster; ++i) {
        DynInst *inst = heads[i].inst;
        if (!ctx.scoreboard->readyToIssue(*inst, ctx.cycle))
            continue;
        FuClass fc = fuClassFor(inst->op.op);
        int fu_domain = distributedFus_ ? heads[i].queue : -1;
        if (!ctx.fus->canIssue(fc, fu_domain, ctx.cycle))
            continue;
        ctx.fus->markIssued(fc, fu_domain, ctx.cycle,
                            FuPool::occupancyFor(inst->op.op));
        queues_[static_cast<size_t>(heads[i].queue)].fifo.popFront();
        ctx.counters->inc(power::ev::FifoReads);
        countMuxIssue(*ctx.counters, fc);
        inst->issued = true;
        inst->issueCycle = ctx.cycle;
        out.push_back(inst);
        ++issued;
    }
}

size_t
LatFifoCluster::occupancy() const
{
    size_t n = 0;
    for (const auto &q : queues_)
        n += q.fifo.size();
    return n;
}

} // namespace diq::core

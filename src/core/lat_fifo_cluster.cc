/**
 * @file
 * Implementation of core/lat_fifo_cluster.hh (docs/ARCHITECTURE.md §1,
 * §10).
 */

#include "core/lat_fifo_cluster.hh"

#include <algorithm>

#include "core/mux_counting.hh"
#include "power/events.hh"

namespace diq::core
{

LatFifoCluster::LatFifoCluster(int num_queues, int queue_size,
                               bool distributed_fus)
    : queueSize_(queue_size), distributedFus_(distributed_fus),
      slots_(static_cast<size_t>(num_queues) *
                 static_cast<size_t>(queue_size),
             NoInst),
      meta_(slots_.size()),
      qs_(static_cast<size_t>(num_queues)),
      nonEmpty_(static_cast<size_t>(num_queues))
{
    heads_.reserve(static_cast<size_t>(num_queues));
}

void
LatFifoCluster::insertHead(int q)
{
    uint32_t slot = slotAt(q, 0);
    HeadEntry h{q, slot, meta_[slot]};
    headSrcSum_ += h.meta.numSrcs;
    size_t j = heads_.size();
    heads_.push_back(h);
    while (j > 0 && heads_[j - 1].meta.seq > h.meta.seq) {
        heads_[j] = heads_[j - 1];
        --j;
    }
    heads_[j] = h;
}

void
LatFifoCluster::eraseHead(int q)
{
    for (size_t i = 0; i < heads_.size(); ++i) {
        if (heads_[i].queue == q) {
            headSrcSum_ -= heads_[i].meta.numSrcs;
            heads_.erase(heads_.begin() + static_cast<long>(i));
            return;
        }
    }
    assert(false && "queue has no candidate entry");
}

void
LatFifoCluster::pushBack(int q, InstIdx idx, const DynInst &inst)
{
    QState &st = qs_[static_cast<size_t>(q)];
    assert(st.count < static_cast<uint32_t>(queueSize_));
    uint32_t slot = slotAt(q, st.count);
    slots_[slot] = idx;
    meta_[slot] = SlotMeta::of(inst);
    ++st.count;
    nonEmpty_.set(static_cast<size_t>(q));
    ++size_;
    if (st.count == 1)
        insertHead(q); // the new entry is the queue's head
}

InstIdx
LatFifoCluster::popFront(int q)
{
    QState &st = qs_[static_cast<size_t>(q)];
    assert(st.count > 0);
    uint32_t slot = slotAt(q, 0);
    InstIdx idx = slots_[slot];
    slots_[slot] = NoInst;
    eraseHead(q);
    st.head = st.head + 1 == static_cast<uint32_t>(queueSize_)
                  ? 0
                  : st.head + 1;
    if (--st.count == 0)
        nonEmpty_.clear(static_cast<size_t>(q));
    else
        insertHead(q); // successor becomes the queue's head
    --size_;
    return idx;
}

int
LatFifoCluster::pickQueue(uint64_t est_issue) const
{
    if (pickValid_ && pickEst_ == est_issue)
        return pickMemo_;
    // Among non-full, non-empty queues whose tail issues at least one
    // cycle earlier, prefer the latest tail; otherwise an empty queue.
    int best = -1;
    uint64_t best_tail = 0;
    int empty = -1;
    for (int q = 0; q < numQueues(); ++q) {
        const QState &st = qs_[static_cast<size_t>(q)];
        if (st.count == 0) {
            if (empty < 0)
                empty = q;
            continue;
        }
        if (st.count == static_cast<uint32_t>(queueSize_))
            continue;
        if (st.tailEstIssue + 1 <= est_issue &&
            (best < 0 || st.tailEstIssue > best_tail)) {
            best = q;
            best_tail = st.tailEstIssue;
        }
    }
    pickValid_ = true;
    pickEst_ = est_issue;
    pickMemo_ = best >= 0 ? best : empty;
    return pickMemo_;
}

void
LatFifoCluster::dispatch(InstIdx idx, uint64_t est_issue,
                         IssueContext &ctx)
{
    int q = pickQueue(est_issue);
    pickValid_ = false; // memo consumed; cluster state changes below
    if (q < 0)
        return; // caller gates on canDispatch
    DynInst &inst = ctx.pool->get(idx);
    pushBack(q, idx, inst);
    qs_[static_cast<size_t>(q)].tailEstIssue = est_issue;
    inst.queueId = q;
    inst.dispatchCycle = ctx.cycle;
    ctx.counters->inc(power::ev::FifoWrites);
}

void
LatFifoCluster::issue(IssueContext &ctx, std::vector<InstIdx> &out)
{
    // Gather/probe off the SlotMeta cache; only issuing instructions
    // touch the DynInst slab.
    pickValid_ = false; // issue mutates occupancy: drop any memo
    if (size_ == 0)
        return;
    ctx.counters->add(power::ev::RegsReadyReads, headSrcSum_);

    // Pops are deferred past the scan: popFront re-inserts the
    // successor head, which must not be considered until next cycle,
    // and deferring keeps the scan a read-only walk of the sorted
    // list (no per-cycle snapshot copy).
    int winners[IssueWidthPerCluster];
    int issued = 0;
    for (size_t i = 0;
         i < heads_.size() && issued < IssueWidthPerCluster; ++i) {
        const HeadEntry &h = heads_[i];
        const SlotMeta &m = h.meta;
        if (!m.readyToIssue(*ctx.scoreboard, ctx.cycle))
            continue;
        int fu_domain = distributedFus_ ? h.queue : -1;
        if (!ctx.fus->canIssue(m.fu, fu_domain, ctx.cycle))
            continue;
        ctx.fus->markIssued(m.fu, fu_domain, ctx.cycle, m.fuOccupancy);
        InstIdx idx = slots_[h.slot];
        ctx.counters->inc(power::ev::FifoReads);
        countMuxIssue(*ctx.counters, m.fu);
        DynInst &inst = ctx.pool->get(idx);
        inst.issued = true;
        inst.issueCycle = ctx.cycle;
        out.push_back(idx);
        winners[issued++] = h.queue;
    }
    for (int i = 0; i < issued; ++i)
        popFront(winners[i]);
}

std::string
LatFifoCluster::invariantViolation(const InstPool &pool) const
{
    size_t total = 0;
    for (int q = 0; q < numQueues(); ++q) {
        const QState &st = qs_[static_cast<size_t>(q)];
        if (nonEmpty_.test(static_cast<size_t>(q)) != (st.count > 0)) {
            return "latfifo queue " + std::to_string(q) +
                   " occupancy bit disagrees with count";
        }
        uint64_t prev_seq = 0;
        for (uint32_t i = 0; i < st.count; ++i) {
            uint32_t slot = slotAt(q, i);
            InstIdx idx = slots_[slot];
            if (idx == NoInst || !pool.isLive(idx))
                return "latfifo queue " + std::to_string(q) +
                       " holds a dead instruction handle";
            uint64_t seq = pool.get(idx).seq;
            if (meta_[slot].seq != seq)
                return "latfifo queue " + std::to_string(q) +
                       " cached slot metadata is stale at seq " +
                       std::to_string(seq);
            if (i > 0 && prev_seq >= seq)
                return "latfifo queue " + std::to_string(q) +
                       " not in program order at seq " +
                       std::to_string(seq);
            prev_seq = seq;
        }
        total += st.count;
    }
    if (total != size_)
        return "latfifo per-queue counts sum to " +
               std::to_string(total) + ", running size is " +
               std::to_string(size_);

    // The persistent candidate list must hold exactly the current head
    // of every non-empty queue, in seq order, with fresh metadata.
    std::vector<char> seen(qs_.size(), 0);
    uint64_t src_sum = 0;
    uint64_t prev_head_seq = 0;
    for (size_t i = 0; i < heads_.size(); ++i) {
        const HeadEntry &h = heads_[i];
        if (h.queue < 0 || h.queue >= numQueues() ||
            seen[static_cast<size_t>(h.queue)]++)
            return "latfifo head list has a duplicate or bogus queue "
                   "entry";
        const QState &st = qs_[static_cast<size_t>(h.queue)];
        if (st.count == 0)
            return "latfifo head list names empty queue " +
                   std::to_string(h.queue);
        if (h.slot != slotAt(h.queue, 0) ||
            h.meta.seq != meta_[h.slot].seq)
            return "latfifo head list entry for queue " +
                   std::to_string(h.queue) + " is stale";
        if (i > 0 && prev_head_seq > h.meta.seq)
            return "latfifo head list not sorted by seq";
        prev_head_seq = h.meta.seq;
        src_sum += h.meta.numSrcs;
    }
    for (int q = 0; q < numQueues(); ++q)
        if (qs_[static_cast<size_t>(q)].count > 0 &&
            !seen[static_cast<size_t>(q)])
            return "latfifo non-empty queue " + std::to_string(q) +
                   " missing from the head list";
    if (src_sum != headSrcSum_)
        return "latfifo cached head source-operand sum is stale";
    return {};
}

} // namespace diq::core

/**
 * @file
 * Implementation of core/mixbuff_cluster.hh (docs/ARCHITECTURE.md §1,
 * §10). Selection semantics are exactly the entry-walk formulation:
 * within a code class the min-seq occupant wins, so scanning the
 * class-00 member union first and falling back to class 01 reproduces
 * the (code, age) minimum; a freed chain is provably memberless (its
 * last instruction is also its oldest unissued one at the moment it
 * issues), so stale counters can never nominate ghosts.
 */

#include "core/mixbuff_cluster.hh"

#include <bit>
#include <cassert>

#include "core/mux_counting.hh"
#include "power/events.hh"

namespace diq::core
{

namespace
{

constexpr size_t WB = util::BitWords::WordBits;

inline void
setBit(uint64_t *words, size_t i)
{
    words[i / WB] |= uint64_t(1) << (i % WB);
}

inline void
clearBit(uint64_t *words, size_t i)
{
    words[i / WB] &= ~(uint64_t(1) << (i % WB));
}

inline bool
testBit(const uint64_t *words, size_t i)
{
    return (words[i / WB] >> (i % WB)) & 1;
}

inline bool
anySet(const std::vector<uint64_t> &words)
{
    for (uint64_t w : words)
        if (w)
            return true;
    return false;
}

} // namespace

MixBuffCluster::MixBuffCluster(int num_queues, int queue_size,
                               int chains_per_queue, bool distributed_fus,
                               uint32_t counter_max)
    : queueSize_(queue_size), chainsPerQueue_(chains_per_queue),
      distributedFus_(distributed_fus), counterMax_(counter_max),
      wordsPer_((static_cast<size_t>(queue_size) +
                 util::BitWords::WordBits - 1) /
                util::BitWords::WordBits)
{
    queues_.resize(static_cast<size_t>(num_queues));
    for (auto &q : queues_) {
        q.slotInst.assign(static_cast<size_t>(queue_size), NoInst);
        q.slotSeq.assign(static_cast<size_t>(queue_size), 0);
        q.slotMeta.assign(static_cast<size_t>(queue_size), SlotMeta{});
        q.slotChain.assign(static_cast<size_t>(queue_size), -1);
        q.slotLat.assign(static_cast<size_t>(queue_size), 0);
        q.nextInChain.assign(static_cast<size_t>(queue_size), NoSlot);
        q.valid.resize(static_cast<size_t>(queue_size));
        int init_chains = chainsPerQueue_ > 0 ? chainsPerQueue_ : 4;
        for (int c = 0; c < init_chains; ++c)
            q.chains.emplace_back(counterMax_);
        q.busyW.assign((q.chains.size() + util::BitWords::WordBits - 1) /
                           util::BitWords::WordBits,
                       0);
        q.memberW.assign(q.chains.size() * wordsPer_, 0);
    }
}

ChainCode
MixBuffCluster::codeFor(uint32_t counter_value)
{
    if (counter_value == 1)
        return ChainCode::FinishesNextCycle;
    if (counter_value == 0)
        return ChainCode::Finished;
    return ChainCode::Busy;
}

bool
MixBuffCluster::chainMappingValid(const QueueMapping &m) const
{
    if (!m.valid || !m.fpCluster)
        return false;
    if (m.queue < 0 || m.queue >= numQueues() || m.chain < 0)
        return false;
    const Queue &q = queues_[static_cast<size_t>(m.queue)];
    if (m.chain >= static_cast<int>(q.chains.size()))
        return false;
    const Chain &c = q.chains[static_cast<size_t>(m.chain)];
    // The producer must still be the chain's *last* instruction
    // (§3.2.1: "only if it is the last instruction of the chain").
    return c.busy && c.lastSeq == m.producerSeq;
}

std::optional<ChainPlacement>
MixBuffCluster::pickPlacement(const DynInst &inst,
                              const QueueRenameTable &table) const
{
    // canDispatch immediately precedes dispatch for the same
    // instruction with no intervening cluster mutation, so a
    // successful placement can be handed straight back.
    if (placeSeq_ == inst.seq && inst.seq != 0)
        return placeMemo_;

    // 1) Join a producer's chain, first operand first (IssueFIFO-like).
    for (int8_t src : {inst.op.src1, inst.op.src2}) {
        if (src == trace::NoReg)
            continue;
        const QueueMapping &m = table.lookup(src);
        if (!chainMappingValid(m))
            continue;
        const Queue &q = queues_[static_cast<size_t>(m.queue)];
        if (q.count < static_cast<uint32_t>(queueSize_)) {
            placeSeq_ = inst.seq;
            placeMemo_ = ChainPlacement{m.queue, m.chain, false};
            return placeMemo_;
        }
    }

    // 2) Allocate the lowest free chain id in the balanced priority
    //    order chain c of queue q <=> index c*numQueues + q.
    int max_chains = chainsPerQueue_ > 0
        ? chainsPerQueue_
        : queueSize_ * numQueues(); // unbounded: can't exceed occupancy
    for (int c = 0; c < max_chains; ++c) {
        for (int q = 0; q < numQueues(); ++q) {
            const Queue &qu = queues_[static_cast<size_t>(q)];
            if (qu.count >= static_cast<uint32_t>(queueSize_))
                continue;
            if (c < static_cast<int>(qu.chains.size()) &&
                qu.chains[static_cast<size_t>(c)].busy) {
                continue;
            }
            placeSeq_ = inst.seq;
            placeMemo_ = ChainPlacement{q, c, true};
            return placeMemo_;
        }
    }
    return std::nullopt; // stall dispatch
}

unsigned
MixBuffCluster::chainLatencyFor(const DynInst &inst) const
{
    // FP-cluster occupants are arithmetic ops; keep the load rule for
    // robustness (paper: L1 hit latency assumed for loads).
    if (inst.isLoad())
        return trace::AddressLatency + l1dHitLatency_;
    return static_cast<unsigned>(trace::opLatency(inst.op.op));
}

void
MixBuffCluster::growChains(Queue &q, int chain)
{
    while (chain >= static_cast<int>(q.chains.size())) {
        q.chains.emplace_back(counterMax_); // unbounded growth
        q.memberW.insert(q.memberW.end(), wordsPer_, 0);
    }
    size_t busy_words = (q.chains.size() + util::BitWords::WordBits - 1) /
                        util::BitWords::WordBits;
    if (busy_words > q.busyW.size())
        q.busyW.resize(busy_words, 0);
}

void
MixBuffCluster::removeSlot(Queue &q, uint32_t slot, int chain)
{
    Chain &c = q.chains[static_cast<size_t>(chain)];
    // Members of one chain share its code, so the oldest always wins
    // selection first: removal is always the list head.
    assert(c.headSlot == slot && "mixbuff issue not from chain head");
    c.headSlot = q.nextInChain[slot];
    if (c.headSlot == NoSlot)
        c.tailSlot = NoSlot;
    q.nextInChain[slot] = NoSlot;
    q.valid.clear(slot);
    memberRow(q, chain)[slot / util::BitWords::WordBits] &=
        ~(uint64_t(1) << (slot % util::BitWords::WordBits));
    q.slotInst[slot] = NoInst;
    --q.count;
    --size_;
}

void
MixBuffCluster::dispatch(InstIdx idx, QueueRenameTable &table,
                         IssueContext &ctx)
{
    DynInst &inst = ctx.pool->get(idx);
    auto placement = pickPlacement(inst, table);
    placeSeq_ = 0; // memo consumed; cluster state changes below
    if (!placement)
        return; // caller gates on canDispatch
    Queue &q = queues_[static_cast<size_t>(placement->queue)];
    growChains(q, placement->chain);
    Chain &c = q.chains[static_cast<size_t>(placement->chain)];

    if (placement->newChain) {
        c.busy = true;
        setBit(q.busyW.data(), static_cast<size_t>(placement->chain));
        c.counter.load(0); // no issued predecessor: "finished" class
    }
    c.lastSeq = inst.seq;
    c.lastIssued = false;

    size_t slot = q.valid.findFirstClear(static_cast<size_t>(queueSize_));
    assert(slot != util::BitWords::npos && "dispatch into a full queue");
    q.slotInst[slot] = idx;
    q.slotSeq[slot] = inst.seq;
    q.slotMeta[slot] = SlotMeta::of(inst);
    q.slotChain[slot] = placement->chain;
    q.slotLat[slot] = chainLatencyFor(inst);
    q.valid.set(slot);
    setBit(memberRow(q, placement->chain), slot);
    // Append as youngest member: dispatch is in program order, so the
    // chain list stays sorted by seq without comparisons.
    uint32_t s32 = static_cast<uint32_t>(slot);
    q.nextInChain[s32] = NoSlot;
    if (c.tailSlot == NoSlot)
        c.headSlot = s32;
    else
        q.nextInChain[c.tailSlot] = s32;
    c.tailSlot = s32;
    ++q.count;
    ++size_;

    inst.queueId = placement->queue;
    inst.chainId = placement->chain;
    inst.dispatchCycle = ctx.cycle;
    ctx.counters->inc(power::ev::BuffWrites);
    if (inst.hasDest()) {
        table.update(inst.op.dest, /*fp_cluster=*/true, placement->queue,
                     placement->chain, inst.seq);
    }
}

void
MixBuffCluster::issue(IssueContext &ctx, std::vector<InstIdx> &out)
{
    namespace ev = diq::power::ev;
    InstPool &pool = *ctx.pool;
    placeSeq_ = 0; // issue mutates occupancy: drop any placement memo
    for (int qi = 0; qi < numQueues(); ++qi) {
        Queue &q = queues_[static_cast<size_t>(qi)];
        q.justLoadedChain = -1;

        // Fast path: a queue with no occupants, no latched selection
        // and no busy chain has nothing to do this cycle — no issue
        // try, no sweep (the ChainSweeps gate below would be false),
        // no candidates. Common for the FP cluster on integer codes.
        if (q.selectedSlot < 0 && q.count == 0 && !anySet(q.busyW))
            continue;

        // --- Phase A: try to issue the instruction selected last cycle.
        // The probe runs off the SlotMeta cache; the DynInst slab is
        // only touched when the instruction actually issues.
        if (q.selectedSlot >= 0) {
            uint32_t slot = static_cast<uint32_t>(q.selectedSlot);
            q.selectedSlot = -1;
            const SlotMeta &m = q.slotMeta[slot];
            ctx.counters->add(ev::RegsReadyReads,
                              static_cast<uint64_t>(m.numSrcs));
            int fu_domain = distributedFus_ ? qi : -1;
            if (m.readyToIssue(*ctx.scoreboard, ctx.cycle) &&
                ctx.fus->canIssue(m.fu, fu_domain, ctx.cycle)) {
                ctx.fus->markIssued(m.fu, fu_domain, ctx.cycle,
                                    m.fuOccupancy);
                InstIdx idx = q.slotInst[slot];
                int chain = q.slotChain[slot];
                removeSlot(q, slot, chain);
                ctx.counters->inc(ev::BuffReads);
                countMuxIssue(*ctx.counters, m.fu);
                DynInst &inst = pool.get(idx);
                inst.issued = true;
                inst.issueCycle = ctx.cycle;
                out.push_back(idx);

                Chain &c = q.chains[static_cast<size_t>(chain)];
                c.counter.load(q.slotLat[slot]);
                q.justLoadedChain = chain;
                if (c.lastSeq == m.seq)
                    c.lastIssued = true;
            }
            // On failure the instruction simply stays buffered; its
            // chain counter will have saturated at zero, demoting it
            // to the 01 "delayed" class.
        }

        // --- Phases B+C, one sweep over the busy bits.
        // B: chain latency table tick (decrement all but the
        // just-loaded entry; free chains whose work is fully drained;
        // a freed chain is provably memberless — file header — so its
        // member row needs no clearing).
        // C: select next cycle's candidate: the minimum of (2-bit
        // chain code ++ age) over the occupants (Figure 5). Members
        // of one chain share its code, so a chain's oldest member
        // (the list head) outranks its siblings: the (code, age)
        // minimum is the best (code, head seq) over the busy chains —
        // one compare per chain instead of a sweep per slot. Non-busy
        // chains own no slots, so the busy bits cover every
        // candidate, and each chain's classification only depends on
        // its own just-ticked counter, so C folds into B's walk.
        bool any_busy = false;
        int best00 = -1, best01 = -1;
        uint64_t seq00 = 0, seq01 = 0;
        for (size_t wi = 0; wi < q.busyW.size(); ++wi) {
            uint64_t w = q.busyW[wi];
            while (w) {
                size_t ci = wi * WB +
                            static_cast<size_t>(std::countr_zero(w));
                w &= w - 1;
                Chain &c = q.chains[ci];
                if (static_cast<int>(ci) != q.justLoadedChain)
                    c.counter.tick();
                if (c.lastIssued && c.counter.zero()) {
                    // Chain drained: identifier reusable.
                    c.busy = false;
                    clearBit(q.busyW.data(), ci);
                    continue; // memberless: cannot be a candidate
                }
                any_busy = true;
                if (c.headSlot == NoSlot)
                    continue; // no unissued members: nothing requests
                ChainCode code = codeFor(c.counter.value());
                if (code == ChainCode::Busy)
                    continue; // >= 2 cycles away: not a request
                uint64_t seq = q.slotSeq[c.headSlot];
                if (code == ChainCode::FinishesNextCycle) {
                    if (best00 < 0 || seq < seq00) {
                        best00 = static_cast<int>(c.headSlot);
                        seq00 = seq;
                    }
                } else if (best01 < 0 || seq < seq01) {
                    best01 = static_cast<int>(c.headSlot);
                    seq01 = seq;
                }
            }
        }
        if (any_busy || q.count > 0)
            ctx.counters->inc(ev::ChainSweeps);
        // One selection-tree activation per queue with any candidate.
        if (best00 >= 0 || best01 >= 0) {
            ctx.counters->inc(ev::SelectRequests);
            q.selectedSlot = best00 >= 0 ? best00 : best01;
            ctx.counters->inc(ev::RegLatches);
        }
    }
}

uint32_t
MixBuffCluster::chainCounter(int queue, int chain) const
{
    const Queue &q = queues_[static_cast<size_t>(queue)];
    if (chain < 0 || chain >= static_cast<int>(q.chains.size()))
        return 0;
    return q.chains[static_cast<size_t>(chain)].counter.value();
}

bool
MixBuffCluster::chainBusy(int queue, int chain) const
{
    const Queue &q = queues_[static_cast<size_t>(queue)];
    if (chain < 0 || chain >= static_cast<int>(q.chains.size()))
        return false;
    return q.chains[static_cast<size_t>(chain)].busy;
}

const DynInst *
MixBuffCluster::selectedInst(const InstPool &pool, int queue) const
{
    const Queue &q = queues_[static_cast<size_t>(queue)];
    if (q.selectedSlot < 0)
        return nullptr;
    return &pool.get(
        q.slotInst[static_cast<size_t>(q.selectedSlot)]);
}

int
MixBuffCluster::busyChains(int queue) const
{
    const Queue &q = queues_[static_cast<size_t>(queue)];
    int n = 0;
    for (const auto &c : q.chains)
        n += c.busy ? 1 : 0;
    return n;
}

std::string
MixBuffCluster::invariantViolation(const InstPool &pool) const
{
    for (int qi = 0; qi < numQueues(); ++qi) {
        const Queue &q = queues_[static_cast<size_t>(qi)];
        if (q.valid.count() != q.count)
            return "mixbuff queue " + std::to_string(qi) +
                   " valid mask holds " +
                   std::to_string(q.valid.count()) +
                   " slots, count is " + std::to_string(q.count);
        // Member rows: pairwise disjoint, union == valid, and only
        // busy chains own slots. The busy bitmask must mirror the
        // per-chain busy flags it summarises.
        util::BitWords unionMask(q.valid.size());
        for (size_t ci = 0; ci < q.chains.size(); ++ci) {
            if (q.chains[ci].busy != testBit(q.busyW.data(), ci))
                return "mixbuff queue " + std::to_string(qi) +
                       " busy bitmask disagrees with chain " +
                       std::to_string(ci);
            const uint64_t *mem = memberRow(q, static_cast<int>(ci));
            uint64_t any = 0;
            for (size_t wi = 0; wi < wordsPer_; ++wi) {
                if (unionMask.word(wi) & mem[wi])
                    return "mixbuff queue " + std::to_string(qi) +
                           " slot owned by two chains";
                unionMask.word(wi) |= mem[wi];
                any |= mem[wi];
            }
            if (any && !q.chains[ci].busy)
                return "mixbuff queue " + std::to_string(qi) +
                       " freed chain " + std::to_string(ci) +
                       " still owns slots";
            // The intrusive member list must walk exactly the member
            // row, oldest first in strictly increasing seq.
            const Chain &ch = q.chains[ci];
            uint32_t walked = 0;
            uint32_t prev = NoSlot;
            uint64_t prev_seq = 0;
            for (uint32_t s = ch.headSlot; s != NoSlot;
                 s = q.nextInChain[s]) {
                if (s >= static_cast<uint32_t>(queueSize_))
                    return "mixbuff queue " + std::to_string(qi) +
                           " chain list holds out-of-range slot";
                if (!testBit(mem, s))
                    return "mixbuff queue " + std::to_string(qi) +
                           " chain list visits a non-member slot";
                if (walked > 0 && q.slotSeq[s] <= prev_seq)
                    return "mixbuff queue " + std::to_string(qi) +
                           " chain list not strictly increasing in age";
                prev_seq = q.slotSeq[s];
                prev = s;
                if (++walked > q.count)
                    return "mixbuff queue " + std::to_string(qi) +
                           " chain list longer than occupancy (cycle?)";
            }
            uint32_t owned = 0;
            for (size_t wi = 0; wi < wordsPer_; ++wi)
                owned += static_cast<uint32_t>(
                    std::popcount(mem[wi]));
            if (walked != owned)
                return "mixbuff queue " + std::to_string(qi) +
                       " chain list visits " + std::to_string(walked) +
                       " of " + std::to_string(owned) + " members";
            if (ch.tailSlot != prev)
                return "mixbuff queue " + std::to_string(qi) +
                       " chain tail does not terminate the list";
        }
        if (!(unionMask == q.valid))
            return "mixbuff queue " + std::to_string(qi) +
                   " chain membership does not partition the occupants";
        std::string bad;
        q.valid.forEachSet([&](size_t s) {
            if (!bad.empty())
                return;
            InstIdx idx = q.slotInst[s];
            if (idx == NoInst || !pool.isLive(idx)) {
                bad = "mixbuff queue " + std::to_string(qi) +
                      " holds a dead instruction handle";
                return;
            }
            const DynInst &inst = pool.get(idx);
            if (inst.queueId != qi || inst.chainId < 0 ||
                inst.chainId >= static_cast<int>(q.chains.size()) ||
                !testBit(memberRow(q, inst.chainId), s)) {
                bad = "mixbuff queue " + std::to_string(qi) +
                      " occupant seq " + std::to_string(inst.seq) +
                      " disagrees with its chain membership";
                return;
            }
            if (q.slotSeq[s] != inst.seq) {
                bad = "mixbuff queue " + std::to_string(qi) +
                      " slot age id disagrees with occupant seq " +
                      std::to_string(inst.seq);
                return;
            }
            if (q.slotMeta[s].seq != inst.seq ||
                q.slotChain[s] != inst.chainId) {
                bad = "mixbuff queue " + std::to_string(qi) +
                      " cached slot metadata is stale at seq " +
                      std::to_string(inst.seq);
            }
        });
        if (!bad.empty())
            return bad;
        if (q.selectedSlot >= 0 &&
            !q.valid.test(static_cast<size_t>(q.selectedSlot)))
            return "mixbuff queue " + std::to_string(qi) +
                   " latched selection points at an empty slot";
    }
    size_t total = 0;
    for (const auto &q : queues_)
        total += q.count;
    if (total != size_)
        return "mixbuff per-queue counts sum to " + std::to_string(total) +
               ", running size is " + std::to_string(size_);
    return {};
}

} // namespace diq::core

/**
 * @file
 * Implementation of core/mixbuff_cluster.hh (docs/ARCHITECTURE.md §1).
 */

#include "core/mixbuff_cluster.hh"

#include <algorithm>
#include <cassert>

#include "core/mux_counting.hh"
#include "power/events.hh"

namespace diq::core
{

MixBuffCluster::MixBuffCluster(int num_queues, int queue_size,
                               int chains_per_queue, bool distributed_fus,
                               uint32_t counter_max)
    : queueSize_(queue_size), chainsPerQueue_(chains_per_queue),
      distributedFus_(distributed_fus), counterMax_(counter_max)
{
    queues_.resize(static_cast<size_t>(num_queues));
    for (auto &q : queues_) {
        q.entries.reserve(static_cast<size_t>(queue_size));
        int init_chains = chainsPerQueue_ > 0 ? chainsPerQueue_ : 4;
        for (int c = 0; c < init_chains; ++c)
            q.chains.emplace_back(counterMax_);
    }
}

ChainCode
MixBuffCluster::codeFor(uint32_t counter_value)
{
    if (counter_value == 1)
        return ChainCode::FinishesNextCycle;
    if (counter_value == 0)
        return ChainCode::Finished;
    return ChainCode::Busy;
}

bool
MixBuffCluster::chainMappingValid(const QueueMapping &m) const
{
    if (!m.valid || !m.fpCluster)
        return false;
    if (m.queue < 0 || m.queue >= numQueues() || m.chain < 0)
        return false;
    const Queue &q = queues_[static_cast<size_t>(m.queue)];
    if (m.chain >= static_cast<int>(q.chains.size()))
        return false;
    const Chain &c = q.chains[static_cast<size_t>(m.chain)];
    // The producer must still be the chain's *last* instruction
    // (§3.2.1: "only if it is the last instruction of the chain").
    return c.busy && c.lastSeq == m.producerSeq;
}

std::optional<ChainPlacement>
MixBuffCluster::pickPlacement(const DynInst &inst,
                              const QueueRenameTable &table) const
{
    // 1) Join a producer's chain, first operand first (IssueFIFO-like).
    for (int8_t src : {inst.op.src1, inst.op.src2}) {
        if (src == trace::NoReg)
            continue;
        const QueueMapping &m = table.lookup(src);
        if (!chainMappingValid(m))
            continue;
        const Queue &q = queues_[static_cast<size_t>(m.queue)];
        if (q.entries.size() <
            static_cast<size_t>(queueSize_)) {
            return ChainPlacement{m.queue, m.chain, false};
        }
    }

    // 2) Allocate the lowest free chain id in the balanced priority
    //    order chain c of queue q <=> index c*numQueues + q.
    int max_chains = chainsPerQueue_ > 0
        ? chainsPerQueue_
        : queueSize_ * numQueues(); // unbounded: can't exceed occupancy
    for (int c = 0; c < max_chains; ++c) {
        for (int q = 0; q < numQueues(); ++q) {
            const Queue &qu = queues_[static_cast<size_t>(q)];
            if (qu.entries.size() >= static_cast<size_t>(queueSize_))
                continue;
            if (c < static_cast<int>(qu.chains.size()) &&
                qu.chains[static_cast<size_t>(c)].busy) {
                continue;
            }
            return ChainPlacement{q, c, true};
        }
    }
    return std::nullopt; // stall dispatch
}

unsigned
MixBuffCluster::chainLatencyFor(const DynInst &inst) const
{
    // FP-cluster occupants are arithmetic ops; keep the load rule for
    // robustness (paper: L1 hit latency assumed for loads).
    if (inst.isLoad())
        return trace::AddressLatency + l1dHitLatency_;
    return static_cast<unsigned>(trace::opLatency(inst.op.op));
}

void
MixBuffCluster::dispatch(DynInst *inst, QueueRenameTable &table,
                         IssueContext &ctx)
{
    auto placement = pickPlacement(*inst, table);
    if (!placement)
        return; // caller gates on canDispatch
    Queue &q = queues_[static_cast<size_t>(placement->queue)];
    while (placement->chain >= static_cast<int>(q.chains.size()))
        q.chains.emplace_back(counterMax_); // unbounded growth
    Chain &c = q.chains[static_cast<size_t>(placement->chain)];

    if (placement->newChain) {
        c.busy = true;
        c.counter.load(0); // no issued predecessor: "finished" class
    }
    c.lastSeq = inst->seq;
    c.lastIssued = false;

    q.entries.push_back(inst);
    inst->queueId = placement->queue;
    inst->chainId = placement->chain;
    inst->dispatchCycle = ctx.cycle;
    ctx.counters->inc(power::ev::BuffWrites);
    if (inst->hasDest()) {
        table.update(inst->op.dest, /*fp_cluster=*/true, placement->queue,
                     placement->chain, inst->seq);
    }
}

void
MixBuffCluster::issue(IssueContext &ctx, std::vector<DynInst *> &out)
{
    namespace ev = diq::power::ev;
    for (int qi = 0; qi < numQueues(); ++qi) {
        Queue &q = queues_[static_cast<size_t>(qi)];
        q.justLoadedChain = -1;

        // --- Phase A: try to issue the instruction selected last cycle.
        if (DynInst *inst = q.selected) {
            q.selected = nullptr;
            ctx.counters->add(ev::RegsReadyReads,
                              static_cast<uint64_t>(inst->numSrcs()));
            FuClass fc = fuClassFor(inst->op.op);
            int fu_domain = distributedFus_ ? qi : -1;
            if (ctx.scoreboard->readyToIssue(*inst, ctx.cycle) &&
                ctx.fus->canIssue(fc, fu_domain, ctx.cycle)) {
                ctx.fus->markIssued(fc, fu_domain, ctx.cycle,
                                    FuPool::occupancyFor(inst->op.op));
                auto it = std::find(q.entries.begin(), q.entries.end(),
                                    inst);
                assert(it != q.entries.end());
                q.entries.erase(it);
                ctx.counters->inc(ev::BuffReads);
                countMuxIssue(*ctx.counters, fc);
                inst->issued = true;
                inst->issueCycle = ctx.cycle;
                out.push_back(inst);

                Chain &c =
                    q.chains[static_cast<size_t>(inst->chainId)];
                c.counter.load(chainLatencyFor(*inst));
                q.justLoadedChain = inst->chainId;
                if (c.lastSeq == inst->seq)
                    c.lastIssued = true;
            }
            // On failure the instruction simply stays buffered; its
            // chain counter will have saturated at zero, demoting it
            // to the 01 "delayed" class.
        }

        // --- Phase B: chain latency table sweep (decrement all but the
        // just-loaded entry; free chains whose work is fully drained).
        bool any_busy = false;
        for (size_t ci = 0; ci < q.chains.size(); ++ci) {
            Chain &c = q.chains[ci];
            if (!c.busy)
                continue;
            if (static_cast<int>(ci) != q.justLoadedChain)
                c.counter.tick();
            if (c.lastIssued && c.counter.zero()) {
                c.busy = false; // chain drained: identifier reusable
            } else {
                any_busy = true;
            }
        }
        if (any_busy || !q.entries.empty())
            ctx.counters->inc(ev::ChainSweeps);

        // --- Phase C: select next cycle's candidate: the minimum of
        // (2-bit chain code ++ age) over the occupants (Figure 5).
        DynInst *best = nullptr;
        ChainCode best_code = ChainCode::Busy;
        uint64_t candidates = 0;
        for (DynInst *e : q.entries) {
            ChainCode code = codeFor(
                q.chains[static_cast<size_t>(e->chainId)]
                    .counter.value());
            if (code == ChainCode::Busy)
                continue; // >= 2 cycles away: not a request
            ++candidates;
            if (!best || static_cast<uint8_t>(code) <
                    static_cast<uint8_t>(best_code) ||
                (code == best_code && e->seq < best->seq)) {
                best = e;
                best_code = code;
            }
        }
        // One selection-tree activation per queue with any candidate.
        if (candidates > 0)
            ctx.counters->inc(ev::SelectRequests);
        if (best) {
            q.selected = best;
            ctx.counters->inc(ev::RegLatches);
        }
    }
}

size_t
MixBuffCluster::occupancy() const
{
    size_t n = 0;
    for (const auto &q : queues_)
        n += q.entries.size();
    return n;
}

uint32_t
MixBuffCluster::chainCounter(int queue, int chain) const
{
    const Queue &q = queues_[static_cast<size_t>(queue)];
    if (chain < 0 || chain >= static_cast<int>(q.chains.size()))
        return 0;
    return q.chains[static_cast<size_t>(chain)].counter.value();
}

bool
MixBuffCluster::chainBusy(int queue, int chain) const
{
    const Queue &q = queues_[static_cast<size_t>(queue)];
    if (chain < 0 || chain >= static_cast<int>(q.chains.size()))
        return false;
    return q.chains[static_cast<size_t>(chain)].busy;
}

const DynInst *
MixBuffCluster::selectedInst(int queue) const
{
    return queues_[static_cast<size_t>(queue)].selected;
}

int
MixBuffCluster::busyChains(int queue) const
{
    const Queue &q = queues_[static_cast<size_t>(queue)];
    int n = 0;
    for (const auto &c : q.chains)
        n += c.busy ? 1 : 0;
    return n;
}

} // namespace diq::core

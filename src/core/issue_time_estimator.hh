/**
 * @file
 * Dispatch-time issue-cycle estimation (paper §3.1).
 *
 * LatFIFO places FP instructions into FIFOs by the cycle they are
 * expected to become issuable, computed at dispatch with the paper's
 * recurrence:
 *
 *   IssueCycle = MAX(current_cycle + 1, OpLeftCycle, OpRightCycle)
 *   if load:  IssueCycle   = MAX(IssueCycle, AllStoreAddr)
 *   if store: AllStoreAddr = MAX(AllStoreAddr,
 *                                IssueCycle + AddressLatency)
 *   if dest:  DestCycle    = IssueCycle + InstructionLatency
 *
 * Loads assume the L1 D-cache hit latency ("We experimentally checked
 * that knowing the exact number of cycles for each memory access has
 * no significant effect"). The whole computation is assumed to fit in
 * one cycle, as in the paper.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_ISSUE_TIME_ESTIMATOR_HH
#define DIQ_CORE_ISSUE_TIME_ESTIMATOR_HH

#include <array>
#include <cstdint>

#include "core/dyn_inst.hh"

namespace diq::ckpt
{
class Archive;
}

namespace diq::core
{

/** Per-logical-register availability estimates + store-address bound. */
class IssueTimeEstimator
{
  public:
    explicit IssueTimeEstimator(unsigned l1d_hit_latency = 2);

    /** Estimated issue cycle of `inst` dispatched at `cycle` (pure). */
    uint64_t estimate(const DynInst &inst, uint64_t cycle) const;

    /**
     * Record the dispatch of `inst` (updates DestCycle/AllStoreAddr).
     * @return the estimate used.
     */
    uint64_t onDispatch(const DynInst &inst, uint64_t cycle);

    /** Forget all estimates (run reset). */
    void clear();

    uint64_t destCycle(int logical_reg) const;
    uint64_t allStoreAddr() const { return allStoreAddr_; }

    /** Estimated total latency of an op (loads: addr + L1 hit). */
    unsigned estimatedLatency(trace::OpClass op) const;

    /** Snapshot codec hook (src/ckpt). */
    void serialize(ckpt::Archive &ar);

  private:
    unsigned l1dHitLatency_;
    std::array<uint64_t, trace::NumLogicalRegs> destCycle_{};
    uint64_t allStoreAddr_ = 0;
};

} // namespace diq::core

#endif // DIQ_CORE_ISSUE_TIME_ESTIMATOR_HH

/**
 * @file
 * Dynamic (in-flight) instruction state shared between the pipeline
 * and the issue schemes.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_DYN_INST_HH
#define DIQ_CORE_DYN_INST_HH

#include <cstdint>
#include <limits>

#include "trace/isa.hh"

namespace diq::core
{

/** Sentinel cycle meaning "not yet known / not scheduled". */
constexpr uint64_t UnknownCycle = std::numeric_limits<uint64_t>::max();

/** Sentinel for "no physical register". */
constexpr int NoPhysReg = -1;

/**
 * Instruction handle: an index into the InstPool slab. All inter-stage
 * plumbing (ROB, LSQ, event ring, scheme entries) carries these 4-byte
 * indices instead of pointers — the slab is contiguous, so a handle
 * dereference is one indexed load, and handles survive anything short
 * of pool destruction (no iterator/pointer-stability hazards).
 */
using InstIdx = uint32_t;

/** Sentinel for "no instruction" (null handle). */
constexpr InstIdx NoInst = 0xFFFFFFFFu;

/**
 * An in-flight instruction: the static micro-op plus renamed operands
 * and per-stage timing state. Owned by the ROB; issue schemes hold
 * non-owning pointers for the dispatch-to-issue window of its life.
 */
struct DynInst
{
    trace::MicroOp op;    ///< static portion from the trace
    uint64_t seq = 0;      ///< global program-order age (monotonic)

    // Renamed operands (indices into the physical register file).
    int psrc1 = NoPhysReg;
    int psrc2 = NoPhysReg;
    int pdest = NoPhysReg;
    int poldDest = NoPhysReg; ///< previous mapping, freed at commit

    // Pipeline timing.
    uint64_t fetchCycle = UnknownCycle;
    uint64_t dispatchCycle = UnknownCycle;
    uint64_t issueCycle = UnknownCycle;
    uint64_t completeCycle = UnknownCycle; ///< result/finish cycle

    // Memory-op state (managed by the LSQ).
    uint64_t addrReadyCycle = UnknownCycle; ///< effective address known
    uint64_t memStartCycle = UnknownCycle;  ///< cache access began

    // Issue-scheme bookkeeping.
    int queueId = -1;
    int chainId = -1;

    // Intrusive age-chain links, maintained by InstPool: the live
    // entries form a doubly linked list in strictly increasing seq
    // (allocation) order, giving the schemes oldest-first traversal
    // without sorting. NoInst terminates each end.
    InstIdx agePrev = NoInst;
    InstIdx ageNext = NoInst;

    /** Monotone LSQ insertion ticket (O(1) entry lookup, sim/lsq.hh). */
    uint32_t lsqTicket = 0;

    // Status flags.
    bool issued = false;
    bool completed = false;
    bool mispredicted = false; ///< branch resolved against prediction

    bool isFpPipe() const { return op.isFpPipe(); }
    bool isLoad() const { return op.isLoad(); }
    bool isStore() const { return op.isStore(); }
    bool isBranch() const { return op.isBranch(); }

    /** Number of register sources actually present. */
    int
    numSrcs() const
    {
        return (op.src1 != trace::NoReg ? 1 : 0) +
            (op.src2 != trace::NoReg ? 1 : 0);
    }

    bool hasDest() const { return op.dest != trace::NoReg; }

    /** Reset scheme/timing state (object pooling support). */
    void
    reset(const trace::MicroOp &mop, uint64_t sequence)
    {
        *this = DynInst{};
        op = mop;
        seq = sequence;
    }
};

} // namespace diq::core

#endif // DIQ_CORE_DYN_INST_HH

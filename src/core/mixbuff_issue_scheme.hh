/**
 * @file
 * MixBUFF_AxB_CxD (paper §3.2): IssueFIFO for the integer cluster,
 * chain-scheduled buffers for the FP cluster. With 8 chains per queue
 * and distributed FUs this is the paper's MB_distr configuration.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_MIXBUFF_ISSUE_SCHEME_HH
#define DIQ_CORE_MIXBUFF_ISSUE_SCHEME_HH

#include <string>

#include "core/fifo_cluster.hh"
#include "core/issue_scheme.hh"
#include "core/mixbuff_cluster.hh"
#include "core/queue_rename_table.hh"

namespace diq::core
{

/** The complete MixBUFF organization. */
class MixBuffIssueScheme : public IssueScheme
{
  public:
    explicit MixBuffIssueScheme(const SchemeConfig &config);

    bool canDispatch(const DynInst &inst,
                     const IssueContext &ctx) const override;
    void dispatch(InstIdx idx, IssueContext &ctx) override;
    void issue(IssueContext &ctx, std::vector<InstIdx> &out) override;
    void onWakeup(int phys_reg, IssueContext &ctx) override;
    void onBranchMispredict(IssueContext &ctx) override;
    size_t occupancy() const override;
    std::string name() const override;
    std::string invariantViolation(const InstPool &pool) const override;
    void serialize(ckpt::Archive &ar) override;

    const FifoCluster &intCluster() const { return int_; }
    const MixBuffCluster &fpCluster() const { return fp_; }
    const QueueRenameTable &table() const { return table_; }

  private:
    SchemeConfig config_;
    FifoCluster int_;
    MixBuffCluster fp_;
    QueueRenameTable table_;
};

} // namespace diq::core

#endif // DIQ_CORE_MIXBUFF_ISSUE_SCHEME_HH

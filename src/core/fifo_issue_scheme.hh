/**
 * @file
 * IssueFIFO_AxB_CxD: Palacharla-style FIFO issue queues for both
 * clusters (paper §2.2/§3), with the shared queue rename table and
 * ready-bit accounting. With distributed FUs this is the paper's
 * IF_distr configuration.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_FIFO_ISSUE_SCHEME_HH
#define DIQ_CORE_FIFO_ISSUE_SCHEME_HH

#include <string>

#include "core/fifo_cluster.hh"
#include "core/issue_scheme.hh"
#include "core/queue_rename_table.hh"

namespace diq::core
{

/** The complete IssueFIFO organization. */
class FifoIssueScheme : public IssueScheme
{
  public:
    explicit FifoIssueScheme(const SchemeConfig &config);

    bool canDispatch(const DynInst &inst,
                     const IssueContext &ctx) const override;
    void dispatch(InstIdx idx, IssueContext &ctx) override;
    void issue(IssueContext &ctx, std::vector<InstIdx> &out) override;
    void onWakeup(int phys_reg, IssueContext &ctx) override;
    void onBranchMispredict(IssueContext &ctx) override;
    size_t occupancy() const override;
    std::string name() const override;
    std::string invariantViolation(const InstPool &pool) const override;
    void serialize(ckpt::Archive &ar) override;

    const FifoCluster &intCluster() const { return int_; }
    const FifoCluster &fpCluster() const { return fp_; }
    const QueueRenameTable &table() const { return table_; }

  private:
    SchemeConfig config_;
    FifoCluster int_;
    FifoCluster fp_;
    QueueRenameTable table_;
};

} // namespace diq::core

#endif // DIQ_CORE_FIFO_ISSUE_SCHEME_HH

/**
 * @file
 * One cluster (integer or FP) of Palacharla-style issue FIFOs.
 *
 * Dispatch steering implements the paper's §2.2 heuristics verbatim:
 *   1. a queue whose tail produces the first operand (stall if that
 *      queue is full and the instruction has a single source);
 *   2. else a queue whose tail produces the second operand (stall if
 *      full);
 *   3. else an empty FIFO (stall if none).
 * Only FIFO heads are considered for issue; they probe the ready-bit
 * table every cycle ("regs_ready" energy) instead of using wakeup.
 *
 * Reused by IssueFIFO (both clusters), LatFIFO (integer cluster) and
 * MixBUFF (integer cluster).
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_FIFO_CLUSTER_HH
#define DIQ_CORE_FIFO_CLUSTER_HH

#include <vector>

#include "core/dyn_inst.hh"
#include "core/issue_scheme.hh"
#include "core/queue_rename_table.hh"
#include "util/circular_buffer.hh"

namespace diq::core
{

/** A set of issue FIFOs for one cluster. */
class FifoCluster
{
  public:
    /**
     * @param fp this is the FP cluster
     * @param num_queues number of FIFOs
     * @param queue_size entries per FIFO
     * @param distributed_fus restrict issue to the queue's own units
     */
    FifoCluster(bool fp, int num_queues, int queue_size,
                bool distributed_fus);

    /** Why/where the steering decision landed (diagnostics). */
    enum class SteerOutcome : uint8_t {
        JoinSrc1,     ///< behind the first operand's producer
        JoinSrc2,     ///< behind the second operand's producer
        EmptyFifo,    ///< no producer at a tail: fresh FIFO
        StallFull,    ///< producer queue full
        StallNoEmpty  ///< no mapping and no empty FIFO
    };

    /** Steering decision; -1 means dispatch must stall. */
    int pickQueue(const DynInst &inst, const QueueRenameTable &table,
                  SteerOutcome *outcome = nullptr) const;

    bool
    canDispatch(const DynInst &inst, const QueueRenameTable &table) const
    {
        return pickQueue(inst, table) >= 0;
    }

    /** Place the instruction and update the rename table. */
    void dispatch(DynInst *inst, QueueRenameTable &table,
                  IssueContext &ctx);

    /** Heads probe regs_ready and issue when ready (oldest first). */
    void issue(IssueContext &ctx, std::vector<DynInst *> &out);

    size_t occupancy() const;
    int numQueues() const { return static_cast<int>(queues_.size()); }
    int queueSize() const { return queueSize_; }

    /** Entries of queue q, oldest first (test introspection). */
    std::vector<const DynInst *> queueContents(int q) const;

  private:
    /** True when `m` maps to a queue of this cluster whose tail is
     *  still the mapped producer. */
    bool mappingValid(const QueueMapping &m) const;

    bool fp_;
    int queueSize_;
    bool distributedFus_;
    std::vector<util::CircularBuffer<DynInst *>> queues_;
};

} // namespace diq::core

#endif // DIQ_CORE_FIFO_CLUSTER_HH

/**
 * @file
 * One cluster (integer or FP) of Palacharla-style issue FIFOs.
 *
 * Dispatch steering implements the paper's §2.2 heuristics verbatim:
 *   1. a queue whose tail produces the first operand (stall if that
 *      queue is full and the instruction has a single source);
 *   2. else a queue whose tail produces the second operand (stall if
 *      full);
 *   3. else an empty FIFO (stall if none).
 * Only FIFO heads are considered for issue; they probe the ready-bit
 * table every cycle ("regs_ready" energy) instead of using wakeup.
 *
 * Storage is one flat InstIdx slab partitioned into per-queue rings
 * (queue q owns slots [q*queueSize, (q+1)*queueSize)), with a
 * `nonEmpty` occupancy mask. Issue candidates live in a persistent
 * seq-sorted head list maintained incrementally on push/pop, sized by
 * the queue count — the previous fixed heads[64] array silently
 * dropped queues beyond the 64th from issue consideration
 * (tests/test_core_schemes.cc pins the fix).
 *
 * Reused by IssueFIFO (both clusters), LatFIFO (integer cluster) and
 * MixBUFF (integer cluster).
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1, §10.
 */

#ifndef DIQ_CORE_FIFO_CLUSTER_HH
#define DIQ_CORE_FIFO_CLUSTER_HH

#include <vector>

#include "core/dyn_inst.hh"
#include "core/issue_scheme.hh"
#include "core/queue_rename_table.hh"
#include "core/slot_meta.hh"
#include "util/bit_words.hh"

namespace diq::core
{

/** A set of issue FIFOs for one cluster. */
class FifoCluster
{
  public:
    /**
     * @param fp this is the FP cluster
     * @param num_queues number of FIFOs
     * @param queue_size entries per FIFO
     * @param distributed_fus restrict issue to the queue's own units
     */
    FifoCluster(bool fp, int num_queues, int queue_size,
                bool distributed_fus);

    /** Why/where the steering decision landed (diagnostics). */
    enum class SteerOutcome : uint8_t {
        JoinSrc1,     ///< behind the first operand's producer
        JoinSrc2,     ///< behind the second operand's producer
        EmptyFifo,    ///< no producer at a tail: fresh FIFO
        StallFull,    ///< producer queue full
        StallNoEmpty  ///< no mapping and no empty FIFO
    };

    /** Steering decision; -1 means dispatch must stall. */
    int pickQueue(const DynInst &inst, const QueueRenameTable &table,
                  SteerOutcome *outcome = nullptr) const;

    bool
    canDispatch(const DynInst &inst, const QueueRenameTable &table) const
    {
        return pickQueue(inst, table) >= 0;
    }

    /** Place the instruction and update the rename table. */
    void dispatch(InstIdx idx, QueueRenameTable &table,
                  IssueContext &ctx);

    /** Heads probe regs_ready and issue when ready (oldest first). */
    void issue(IssueContext &ctx, std::vector<InstIdx> &out);

    size_t occupancy() const { return size_; }
    int numQueues() const { return static_cast<int>(qs_.size()); }
    int queueSize() const { return queueSize_; }

    /** Entries of queue q, oldest first (test introspection). */
    std::vector<const DynInst *> queueContents(const InstPool &pool,
                                               int q) const;

    /** Structural self-check (see IssueScheme::invariantViolation). */
    std::string invariantViolation(const InstPool &pool) const;

    /** Drop the probe→dispatch steering memo (call when the rename
     *  table changes outside dispatch, e.g. a mispredict clear). */
    void dropSteerMemo() const { pickSeq_ = 0; }

    /** Snapshot codec hook (src/ckpt): slab, ring states, occupancy
     *  mask and the sorted head list; the steering memo is dropped on
     *  Load (ckpt/state_serialize.cc). */
    void serialize(ckpt::Archive &ar);

  private:
    /** Ring state of one FIFO; its slots live in the shared slab. */
    struct QState
    {
        uint32_t head = 0;  ///< slab offset of the oldest entry
        uint32_t count = 0;
        uint64_t tailSeq = 0; ///< seq of the newest entry (count > 0)
    };

    /**
     * One FIFO head, kept in a persistent seq-sorted candidate list.
     * The head set only changes on popFront / push-to-empty, so the
     * list is maintained incrementally instead of being regathered
     * from the scattered per-queue slabs every cycle; embedding the
     * SlotMeta keeps the whole per-cycle probe loop inside this one
     * compact array.
     */
    struct HeadEntry
    {
        int queue;
        uint32_t slot; ///< slab index (meta_/slots_)
        SlotMeta meta;
    };

    bool qFull(int q) const
    {
        return qs_[static_cast<size_t>(q)].count ==
               static_cast<uint32_t>(queueSize_);
    }

    uint32_t slotAt(int q, uint32_t pos) const
    {
        const QState &st = qs_[static_cast<size_t>(q)];
        uint32_t off = st.head + pos;
        if (off >= static_cast<uint32_t>(queueSize_))
            off -= static_cast<uint32_t>(queueSize_);
        return static_cast<uint32_t>(q) *
                   static_cast<uint32_t>(queueSize_) + off;
    }

    void pushBack(int q, InstIdx idx, const DynInst &inst);
    InstIdx popFront(int q);

    /** Insert queue q's current head into the sorted candidate list. */
    void insertHead(int q);
    /** Remove queue q's entry from the candidate list. */
    void eraseHead(int q);

    /** True when `m` maps to a queue of this cluster whose tail is
     *  still the mapped producer. */
    bool mappingValid(const QueueMapping &m) const;

    bool fp_;
    int queueSize_;
    bool distributedFus_;
    std::vector<InstIdx> slots_; ///< numQueues*queueSize flat slab
    std::vector<SlotMeta> meta_; ///< cached issue facts, per slot
    std::vector<QState> qs_;
    util::BitWords nonEmpty_; ///< bit q ⟺ queue q holds entries
    size_t size_ = 0;
    std::vector<HeadEntry> heads_; ///< seq-sorted, one per non-empty queue
    uint64_t headSrcSum_ = 0; ///< sum of heads_[i].meta.numSrcs

    /** canDispatch probes and the following dispatch make the same
     *  steering decision; the memo spares the second table scan. It
     *  lives only from probe to dispatch: issue() and dispatch() drop
     *  it before mutating any state the decision depends on. */
    mutable uint64_t pickSeq_ = 0; ///< 0 = no memo
    mutable int pickMemo_ = -1;
    mutable SteerOutcome pickOutcome_ = SteerOutcome::JoinSrc1;
};

} // namespace diq::core

#endif // DIQ_CORE_FIFO_CLUSTER_HH

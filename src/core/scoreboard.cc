/**
 * @file
 * Implementation of core/scoreboard.hh (docs/ARCHITECTURE.md §1).
 * The per-register accessors are header-inline (hot path); only
 * construction and whole-table reset live here.
 */

#include "core/scoreboard.hh"

namespace diq::core
{

Scoreboard::Scoreboard(int num_phys_regs)
    : ready_(static_cast<size_t>(num_phys_regs), 0)
{
}

void
Scoreboard::reset()
{
    for (auto &r : ready_)
        r = 0;
}

} // namespace diq::core

/**
 * @file
 * Implementation of core/scoreboard.hh (docs/ARCHITECTURE.md §1, §10).
 * The per-register accessors are header-inline (hot path); the
 * future-wake ring that keeps the one-bit-per-register ready mask in
 * step with the ready-cycle array lives here.
 *
 * Ring correctness relies on one guard: a slot entry is only a *hint*
 * that some register was once scheduled to wake at that cycle. The
 * fire path re-checks ready_[] against the slot's cycle, so stale
 * entries (the register was re-marked pending or rescheduled since)
 * fall through harmlessly and the invariant
 *     readyMask_.test(r) == (ready_[r] <= synced_)
 * holds after every syncTo — which maskConsistent() lets the property
 * suite verify wholesale.
 */

#include "core/scoreboard.hh"

namespace diq::core
{

Scoreboard::Scoreboard(int num_phys_regs)
    : ready_(static_cast<size_t>(num_phys_regs), 0),
      readyMask_(static_cast<size_t>(num_phys_regs)),
      ring_(RingSlots)
{
    readyMask_.setAll(); // everything available at cycle 0
}

void
Scoreboard::reset()
{
    for (auto &r : ready_)
        r = 0;
    readyMask_.setAll();
    if (hook_) {
        for (size_t r = 0; r < ready_.size(); ++r)
            hook_(hookObj_, static_cast<int>(r));
    }
    for (auto &slot : ring_)
        slot.clear();
    far_.clear();
}

void
Scoreboard::scheduleWake(int phys_reg, uint64_t cycle)
{
    if (cycle - synced_ < RingSlots)
        ring_[cycle % RingSlots].push_back(phys_reg);
    else
        far_.push_back(phys_reg);
}

void
Scoreboard::syncTo(uint64_t cycle)
{
    if (cycle <= synced_)
        return;
    if (cycle - synced_ >= RingSlots) {
        rebuild(cycle);
        return;
    }
    for (uint64_t c = synced_ + 1; c <= cycle; ++c) {
        auto &slot = ring_[c % RingSlots];
        for (int r : slot) {
            if (ready_[static_cast<size_t>(r)] <= c) {
                readyMask_.set(static_cast<size_t>(r));
                if (hook_)
                    hook_(hookObj_, r);
            }
        }
        slot.clear();
    }
    synced_ = cycle;
    if (!far_.empty())
        drainFar();
}

void
Scoreboard::drainFar()
{
    size_t keep = 0;
    for (int r : far_) {
        uint64_t at = ready_[static_cast<size_t>(r)];
        if (at <= synced_) {
            readyMask_.set(static_cast<size_t>(r));
            if (hook_)
                hook_(hookObj_, r);
        } else if (at != UnknownCycle && at - synced_ < RingSlots) {
            ring_[at % RingSlots].push_back(r);
        } else if (at != UnknownCycle) {
            far_[keep++] = r; // still beyond the horizon
        }
        // UnknownCycle entries are dropped: the register was re-marked
        // pending; a future setReadyAt re-enqueues it.
    }
    far_.resize(keep);
}

void
Scoreboard::rebuild(uint64_t cycle)
{
    synced_ = cycle;
    for (auto &slot : ring_)
        slot.clear();
    far_.clear();
    for (size_t r = 0; r < ready_.size(); ++r) {
        uint64_t at = ready_[r];
        if (at <= cycle) {
            readyMask_.set(r);
            if (hook_)
                hook_(hookObj_, static_cast<int>(r));
        } else {
            readyMask_.clear(r);
            if (at != UnknownCycle)
                scheduleWake(static_cast<int>(r), at);
        }
    }
}

std::string
Scoreboard::maskConsistent() const
{
    for (size_t r = 0; r < ready_.size(); ++r) {
        bool truth = ready_[r] <= synced_;
        if (readyMask_.test(r) != truth) {
            return "ready-mask bit " + std::to_string(r) + " is " +
                   (readyMask_.test(r) ? "set" : "clear") +
                   " but ready cycle " +
                   (ready_[r] == UnknownCycle
                        ? std::string("<pending>")
                        : std::to_string(ready_[r])) +
                   " vs synced " + std::to_string(synced_) +
                   " says otherwise";
        }
    }
    return {};
}

} // namespace diq::core

/**
 * @file
 * Implementation of core/scoreboard.hh (docs/ARCHITECTURE.md §1).
 */

#include "core/scoreboard.hh"

#include <cassert>

namespace diq::core
{

Scoreboard::Scoreboard(int num_phys_regs)
    : ready_(static_cast<size_t>(num_phys_regs), 0)
{
}

void
Scoreboard::setReadyAt(int phys_reg, uint64_t cycle)
{
    assert(phys_reg >= 0 && phys_reg < numRegs());
    ready_[static_cast<size_t>(phys_reg)] = cycle;
}

void
Scoreboard::markPending(int phys_reg)
{
    assert(phys_reg >= 0 && phys_reg < numRegs());
    ready_[static_cast<size_t>(phys_reg)] = UnknownCycle;
}

bool
Scoreboard::isReady(int phys_reg, uint64_t cycle) const
{
    assert(phys_reg >= 0 && phys_reg < numRegs());
    return ready_[static_cast<size_t>(phys_reg)] <= cycle;
}

uint64_t
Scoreboard::readyCycle(int phys_reg) const
{
    assert(phys_reg >= 0 && phys_reg < numRegs());
    return ready_[static_cast<size_t>(phys_reg)];
}

bool
Scoreboard::isScheduled(int phys_reg) const
{
    return readyCycle(phys_reg) != UnknownCycle;
}

void
Scoreboard::reset()
{
    for (auto &r : ready_)
        r = 0;
}

} // namespace diq::core

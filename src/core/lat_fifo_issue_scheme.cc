/**
 * @file
 * Implementation of core/lat_fifo_issue_scheme.hh (docs/ARCHITECTURE.md §1).
 */

#include "core/lat_fifo_issue_scheme.hh"

#include <sstream>

#include "power/events.hh"

namespace diq::core
{

LatFifoIssueScheme::LatFifoIssueScheme(const SchemeConfig &config)
    : config_(config),
      int_(false, config.numIntQueues, config.intQueueSize,
           config.distributedFus),
      fp_(config.numFpQueues, config.fpQueueSize, config.distributedFus)
{
}

bool
LatFifoIssueScheme::canDispatch(const DynInst &inst,
                                const IssueContext &ctx) const
{
    if (!inst.isFpPipe())
        return int_.canDispatch(inst, table_);
    return fp_.canDispatch(estimator_.estimate(inst, ctx.cycle));
}

void
LatFifoIssueScheme::dispatch(InstIdx idx, IssueContext &ctx)
{
    const DynInst &inst = ctx.pool->get(idx);
    ctx.counters->add(power::ev::QrenameReads,
                      static_cast<uint64_t>(inst.numSrcs()));
    if (inst.hasDest())
        ctx.counters->inc(power::ev::QrenameWrites);

    // Every instruction trains the estimator; only FP placement uses
    // the resulting estimate directly.
    uint64_t est = estimator_.onDispatch(inst, ctx.cycle);
    if (inst.isFpPipe())
        fp_.dispatch(idx, est, ctx);
    else
        int_.dispatch(idx, table_, ctx);
}

void
LatFifoIssueScheme::issue(IssueContext &ctx, std::vector<InstIdx> &out)
{
    int_.issue(ctx, out);
    fp_.issue(ctx, out);
}

void
LatFifoIssueScheme::onWakeup(int phys_reg, IssueContext &ctx)
{
    (void)phys_reg;
    ctx.counters->inc(power::ev::RegsReadyWrites);
}

void
LatFifoIssueScheme::onBranchMispredict(IssueContext &ctx)
{
    (void)ctx;
    if (config_.clearTableOnMispredict) {
        table_.clear();
        int_.dropSteerMemo();
    }
}

size_t
LatFifoIssueScheme::occupancy() const
{
    return int_.occupancy() + fp_.occupancy();
}

std::string
LatFifoIssueScheme::invariantViolation(const InstPool &pool) const
{
    std::string v = int_.invariantViolation(pool);
    if (v.empty())
        v = fp_.invariantViolation(pool);
    return v;
}

std::string
LatFifoIssueScheme::name() const
{
    std::ostringstream os;
    os << "LatFIFO_" << config_.numIntQueues << "x" << config_.intQueueSize
       << "_" << config_.numFpQueues << "x" << config_.fpQueueSize;
    if (config_.distributedFus)
        os << "_distr";
    return os.str();
}

} // namespace diq::core

/**
 * @file
 * Physical-register ready state ("regs_ready" table).
 *
 * The FIFO-family schemes replace CAM wakeup with "a small table [that]
 * stores just one bit per physical register indicating whether it is
 * available" (paper §2.2). This class is that table, extended with the
 * cycle at which each register becomes available so that fixed-latency
 * producers can announce their completion at issue time and dependents
 * can issue back-to-back.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_SCOREBOARD_HH
#define DIQ_CORE_SCOREBOARD_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "core/dyn_inst.hh"

namespace diq::core
{

/**
 * Ready-cycle tracking for the physical register file. The accessors
 * are header-inline: every issue probe and every CAM armed-cell scan
 * lands here, making these the most-executed functions of the whole
 * simulator.
 */
class Scoreboard
{
  public:
    explicit Scoreboard(int num_phys_regs);

    /** Register becomes (or is) available at `cycle`. */
    void
    setReadyAt(int phys_reg, uint64_t cycle)
    {
        assert(phys_reg >= 0 && phys_reg < numRegs());
        ready_[static_cast<size_t>(phys_reg)] = cycle;
    }

    /** Mark a freshly allocated register as pending (unknown cycle). */
    void
    markPending(int phys_reg)
    {
        assert(phys_reg >= 0 && phys_reg < numRegs());
        ready_[static_cast<size_t>(phys_reg)] = UnknownCycle;
    }

    /** True if the register value is available at `cycle`. */
    bool
    isReady(int phys_reg, uint64_t cycle) const
    {
        assert(phys_reg >= 0 && phys_reg < numRegs());
        return ready_[static_cast<size_t>(phys_reg)] <= cycle;
    }

    /** Cycle the register becomes available (UnknownCycle if pending). */
    uint64_t
    readyCycle(int phys_reg) const
    {
        assert(phys_reg >= 0 && phys_reg < numRegs());
        return ready_[static_cast<size_t>(phys_reg)];
    }

    /** True when the availability cycle is already scheduled/known. */
    bool isScheduled(int phys_reg) const
    {
        return readyCycle(phys_reg) != UnknownCycle;
    }

    /** All registers available at cycle 0 (fresh machine state). */
    void reset();

    int numRegs() const { return static_cast<int>(ready_.size()); }

    /**
     * Convenience: is `inst` ready to begin execution at `cycle`
     * (both present sources available)?
     */
    bool
    operandsReady(const DynInst &inst, uint64_t cycle) const
    {
        if (inst.psrc1 != NoPhysReg && !isReady(inst.psrc1, cycle))
            return false;
        if (inst.psrc2 != NoPhysReg && !isReady(inst.psrc2, cycle))
            return false;
        return true;
    }

    /**
     * Issue-readiness: like operandsReady, except that a store only
     * needs its *address* operand (src1) — the paper splits memory
     * ops into address computation and access, and store data is
     * consumed at commit (forwarding waits for it in the LSQ).
     */
    bool
    readyToIssue(const DynInst &inst, uint64_t cycle) const
    {
        if (inst.psrc1 != NoPhysReg && !isReady(inst.psrc1, cycle))
            return false;
        if (inst.isStore())
            return true;
        if (inst.psrc2 != NoPhysReg && !isReady(inst.psrc2, cycle))
            return false;
        return true;
    }

  private:
    std::vector<uint64_t> ready_;
};

} // namespace diq::core

#endif // DIQ_CORE_SCOREBOARD_HH

/**
 * @file
 * Physical-register ready state ("regs_ready" table).
 *
 * The FIFO-family schemes replace CAM wakeup with "a small table [that]
 * stores just one bit per physical register indicating whether it is
 * available" (paper §2.2). This class is that table, extended with the
 * cycle at which each register becomes available so that fixed-latency
 * producers can announce their completion at issue time and dependents
 * can issue back-to-back.
 *
 * Two representations coexist:
 *
 *  - ready_[] keeps the exact availability cycle per register and is
 *    the source of truth for every cycle-parameterized query;
 *  - readyMask_ is the paper's literal one-bit-per-register table, a
 *    word array holding "available *now*" bits, maintained
 *    incrementally through a future-wake ring and advanced once per
 *    cycle by syncTo(). The mask is what the pooled cluster sweeps
 *    probe (isReadyNow), and maskConsistent() lets the property suite
 *    (tests/test_pool_invariants.cc) prove the two representations
 *    never disagree.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1, §10.
 */

#ifndef DIQ_CORE_SCOREBOARD_HH
#define DIQ_CORE_SCOREBOARD_HH

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dyn_inst.hh"
#include "util/bit_words.hh"

namespace diq::ckpt
{
class Archive;
}

namespace diq::core
{

/**
 * Ready-cycle tracking for the physical register file. The accessors
 * are header-inline: every issue probe and every CAM armed-cell scan
 * lands here, making these the most-executed functions of the whole
 * simulator.
 */
class Scoreboard
{
  public:
    /**
     * Ready-transition subscription: fired every time a register's
     * "available now" mask bit is raised (dispatch-time mirrors like
     * the CAM queue's armed wait cells disarm on exactly these
     * events). A plain function pointer + object keeps the common
     * unsubscribed case a single predictable branch.
     */
    using ReadyHook = void (*)(void *obj, int phys_reg);

    explicit Scoreboard(int num_phys_regs);

    void
    setReadyHook(ReadyHook hook, void *obj)
    {
        hook_ = hook;
        hookObj_ = obj;
    }

    /** Register becomes (or is) available at `cycle`. */
    void
    setReadyAt(int phys_reg, uint64_t cycle)
    {
        assert(phys_reg >= 0 && phys_reg < numRegs());
        ready_[static_cast<size_t>(phys_reg)] = cycle;
        if (cycle <= synced_) {
            readyMask_.set(static_cast<size_t>(phys_reg));
            if (hook_)
                hook_(hookObj_, phys_reg);
        } else {
            readyMask_.clear(static_cast<size_t>(phys_reg));
            if (cycle != UnknownCycle)
                scheduleWake(phys_reg, cycle);
        }
    }

    /** Mark a freshly allocated register as pending (unknown cycle). */
    void
    markPending(int phys_reg)
    {
        assert(phys_reg >= 0 && phys_reg < numRegs());
        ready_[static_cast<size_t>(phys_reg)] = UnknownCycle;
        readyMask_.clear(static_cast<size_t>(phys_reg));
    }

    /** True if the register value is available at `cycle`. */
    bool
    isReady(int phys_reg, uint64_t cycle) const
    {
        assert(phys_reg >= 0 && phys_reg < numRegs());
        return ready_[static_cast<size_t>(phys_reg)] <= cycle;
    }

    /**
     * Mask probe: available at the last syncTo() cycle? Equivalent to
     * isReady(reg, syncedCycle()) — the form the word-sweep paths use.
     */
    bool
    isReadyNow(int phys_reg) const
    {
        assert(phys_reg >= 0 && phys_reg < numRegs());
        return readyMask_.test(static_cast<size_t>(phys_reg));
    }

    /** Cycle the register becomes available (UnknownCycle if pending). */
    uint64_t
    readyCycle(int phys_reg) const
    {
        assert(phys_reg >= 0 && phys_reg < numRegs());
        return ready_[static_cast<size_t>(phys_reg)];
    }

    /** True when the availability cycle is already scheduled/known. */
    bool isScheduled(int phys_reg) const
    {
        return readyCycle(phys_reg) != UnknownCycle;
    }

    /**
     * Advance the "now" of the ready mask to `cycle`, firing the
     * future-wake ring for every cycle crossed. Called once per
     * machine cycle before any issue logic runs; monotone (earlier
     * cycles are a no-op).
     */
    void syncTo(uint64_t cycle);

    /** The cycle the ready mask currently reflects. */
    uint64_t syncedCycle() const { return synced_; }

    /** The one-bit-per-register table itself (word sweeps). */
    const util::BitWords &readyMask() const { return readyMask_; }

    /**
     * Property-suite check: "" when readyMask_ agrees with ready_[]
     * at syncedCycle() for every register, else a description of the
     * first disagreement.
     */
    std::string maskConsistent() const;

    /** All registers available at cycle 0 (fresh machine state). */
    void reset();

    /** Snapshot codec hook (src/ckpt): ready cycles, mask, synced
     *  cycle, wake ring and far list. The ready hook is wiring, not
     *  state — it stays bound (ckpt/state_serialize.cc). */
    void serialize(ckpt::Archive &ar);

    int numRegs() const { return static_cast<int>(ready_.size()); }

    /**
     * Convenience: is `inst` ready to begin execution at `cycle`
     * (both present sources available)?
     */
    bool
    operandsReady(const DynInst &inst, uint64_t cycle) const
    {
        if (inst.psrc1 != NoPhysReg && !isReady(inst.psrc1, cycle))
            return false;
        if (inst.psrc2 != NoPhysReg && !isReady(inst.psrc2, cycle))
            return false;
        return true;
    }

    /**
     * Issue-readiness: like operandsReady, except that a store only
     * needs its *address* operand (src1) — the paper splits memory
     * ops into address computation and access, and store data is
     * consumed at commit (forwarding waits for it in the LSQ).
     */
    bool
    readyToIssue(const DynInst &inst, uint64_t cycle) const
    {
        if (inst.psrc1 != NoPhysReg && !isReady(inst.psrc1, cycle))
            return false;
        if (inst.isStore())
            return true;
        if (inst.psrc2 != NoPhysReg && !isReady(inst.psrc2, cycle))
            return false;
        return true;
    }

  private:
    /** Future-wake ring span; latencies are far below this, so the
     *  O(numRegs) rebuild path only runs on artificial cycle jumps. */
    static constexpr uint64_t RingSlots = 1024;

    void scheduleWake(int phys_reg, uint64_t cycle);
    void drainFar();
    void rebuild(uint64_t cycle);

    std::vector<uint64_t> ready_;
    util::BitWords readyMask_; ///< bit r ⟺ ready_[r] <= synced_
    uint64_t synced_ = 0;
    ReadyHook hook_ = nullptr; ///< fired on every mask-bit raise
    void *hookObj_ = nullptr;
    /** slot c%RingSlots holds regs scheduled to wake at cycle c. */
    std::vector<std::vector<int>> ring_;
    /** Wakes scheduled beyond the ring horizon (effectively never). */
    std::vector<int> far_;
};

} // namespace diq::core

#endif // DIQ_CORE_SCOREBOARD_HH

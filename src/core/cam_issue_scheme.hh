/**
 * @file
 * Conventional CAM/RAM issue queue (the paper's baseline).
 *
 * Two out-of-order queues (integer / FP) in the style of the P6 and
 * Pentium 4 (paper §4.1): any entry whose operands are ready may issue,
 * oldest first, up to the per-cluster issue width. Wakeup is modeled
 * as destination-tag broadcasts that are compared only by entries with
 * unready operands (the Folegnani/González power optimization the
 * paper grants the baseline), and the payload RAM is banked 8x8.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_CAM_ISSUE_SCHEME_HH
#define DIQ_CORE_CAM_ISSUE_SCHEME_HH

#include <string>
#include <vector>

#include "core/issue_scheme.hh"

namespace diq::core
{

/** Baseline CAM/RAM out-of-order issue queue pair. */
class CamIssueScheme : public IssueScheme
{
  public:
    /**
     * @param int_entries integer-queue capacity
     * @param fp_entries FP-queue capacity
     */
    CamIssueScheme(int int_entries, int fp_entries);

    bool canDispatch(const DynInst &inst,
                     const IssueContext &ctx) const override;
    void dispatch(DynInst *inst, IssueContext &ctx) override;
    void issue(IssueContext &ctx, std::vector<DynInst *> &out) override;
    void onWakeup(int phys_reg, IssueContext &ctx) override;
    size_t occupancy() const override;
    std::string name() const override;

    size_t intOccupancy() const { return intQ_.entries.size(); }
    size_t fpOccupancy() const { return fpQ_.entries.size(); }

  private:
    struct Cluster
    {
        std::vector<DynInst *> entries; ///< program order (oldest first)
        size_t capacity = 64;
    };

    Cluster &clusterFor(const DynInst &inst);
    const Cluster &clusterFor(const DynInst &inst) const;

    void issueCluster(Cluster &cluster, IssueContext &ctx,
                      std::vector<DynInst *> &out);

    /** Armed (unready-operand) CAM cells currently in the cluster. */
    uint64_t armedCells(const Cluster &cluster,
                        const IssueContext &ctx) const;

    Cluster intQ_;
    Cluster fpQ_;
};

} // namespace diq::core

#endif // DIQ_CORE_CAM_ISSUE_SCHEME_HH

/**
 * @file
 * Conventional CAM/RAM issue queue (the paper's baseline).
 *
 * Two out-of-order queues (integer / FP) in the style of the P6 and
 * Pentium 4 (paper §4.1): any entry whose operands are ready may issue,
 * oldest first, up to the per-cluster issue width. Wakeup is modeled
 * as destination-tag broadcasts that are compared only by entries with
 * unready operands (the Folegnani/González power optimization the
 * paper grants the baseline), and the payload RAM is banked 8x8.
 *
 * Storage is a per-cluster slot slab indexed by a bit-parallel state:
 * `valid` marks occupied slots, `wait1`/`wait2` mark armed (unready)
 * operand cells, `store` marks entries whose second source is consumed
 * at commit rather than issue. Wait bits disarm *eagerly*: each
 * cluster keeps a per-physical-register waiter row (which slots wait
 * on that register, per operand), and a scoreboard ready-transition
 * hook (Scoreboard::setReadyHook, wired via bindScoreboard) masks the
 * row out of the wait bits the moment the register's ready bit is
 * raised. Readiness probes therefore vanish — the armed-cell count a
 * wakeup broadcast compares against is a popcount of the wait words —
 * and a cleared wait bit is permanent because a consumed register
 * cannot be re-marked pending while its consumer is resident (commit
 * frees in ROB order and there is no squash path). Oldest-first
 * select walks an intrusive per-cluster age chain, skipping the walk
 * entirely when the candidate mask is empty.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1, §10.
 */

#ifndef DIQ_CORE_CAM_ISSUE_SCHEME_HH
#define DIQ_CORE_CAM_ISSUE_SCHEME_HH

#include <string>
#include <vector>

#include "core/issue_scheme.hh"
#include "util/bit_words.hh"

namespace diq::core
{

/** Baseline CAM/RAM out-of-order issue queue pair. */
class CamIssueScheme : public IssueScheme
{
  public:
    /**
     * @param int_entries integer-queue capacity
     * @param fp_entries FP-queue capacity
     */
    CamIssueScheme(int int_entries, int fp_entries);

    bool canDispatch(const DynInst &inst,
                     const IssueContext &ctx) const override;
    void dispatch(InstIdx idx, IssueContext &ctx) override;
    void issue(IssueContext &ctx, std::vector<InstIdx> &out) override;
    void onWakeup(int phys_reg, IssueContext &ctx) override;
    void bindScoreboard(Scoreboard &sb) override;
    size_t occupancy() const override;
    std::string name() const override;
    std::string invariantViolation(const InstPool &pool) const override;
    void serialize(ckpt::Archive &ar) override;

    size_t intOccupancy() const { return intQ_.count; }
    size_t fpOccupancy() const { return fpQ_.count; }

  private:
    static constexpr uint32_t NoSlot = 0xFFFFFFFFu;

    struct Cluster
    {
        uint32_t capacity = 64;
        uint32_t count = 0;

        // Slot payload: the handle plus cached source registers so the
        // wakeup sweeps never touch the DynInst slab.
        std::vector<InstIdx> slotInst;
        std::vector<int> src1;
        std::vector<int> src2;

        util::BitWords valid; ///< slot occupied
        util::BitWords wait1; ///< armed CAM cell on source 1
        util::BitWords wait2; ///< armed CAM cell on source 2
        util::BitWords store; ///< src2 consumed at commit, not issue

        /**
         * Waiter rows: for physical register r, words at
         * r * numWords(wait1) in waiters1/waiters2 hold the slots
         * whose source 1 / source 2 wait bit is armed on r. The
         * ready-transition hook masks a row out of the wait bits and
         * zeroes it; rows are allocated on the first dispatch (the
         * register-file size is only known via the context).
         */
        std::vector<uint64_t> waiters1;
        std::vector<uint64_t> waiters2;

        // Intrusive slot age chain, oldest first.
        std::vector<uint32_t> prevSlot;
        std::vector<uint32_t> nextSlot;
        uint32_t oldestSlot = NoSlot;
        uint32_t youngestSlot = NoSlot;

        std::vector<uint64_t> cand; ///< per-issue candidate scratch
    };

    Cluster &clusterFor(const DynInst &inst);
    const Cluster &clusterFor(const DynInst &inst) const;

    static void initCluster(Cluster &cluster, int capacity);
    void removeSlot(Cluster &cluster, uint32_t slot);

    void issueCluster(Cluster &cluster, IssueContext &ctx,
                      std::vector<InstIdx> &out);

    /** Scoreboard ready-transition delivery (bindScoreboard). */
    static void readyTrampoline(void *self, int phys_reg);
    void onRegReady(int phys_reg);

    /** Armed (unready-operand) CAM cells currently in the cluster. */
    static uint64_t armedCells(const Cluster &cluster);

    Cluster intQ_;
    Cluster fpQ_;
};

} // namespace diq::core

#endif // DIQ_CORE_CAM_ISSUE_SCHEME_HH

/**
 * @file
 * Implementation of core/mixbuff_issue_scheme.hh (docs/ARCHITECTURE.md §1).
 */

#include "core/mixbuff_issue_scheme.hh"

#include <sstream>

#include "power/events.hh"

namespace diq::core
{

MixBuffIssueScheme::MixBuffIssueScheme(const SchemeConfig &config)
    : config_(config),
      int_(false, config.numIntQueues, config.intQueueSize,
           config.distributedFus),
      fp_(config.numFpQueues, config.fpQueueSize, config.chainsPerQueue,
          config.distributedFus)
{
}

bool
MixBuffIssueScheme::canDispatch(const DynInst &inst,
                                const IssueContext &ctx) const
{
    (void)ctx;
    return inst.isFpPipe() ? fp_.canDispatch(inst, table_)
                           : int_.canDispatch(inst, table_);
}

void
MixBuffIssueScheme::dispatch(InstIdx idx, IssueContext &ctx)
{
    const DynInst &inst = ctx.pool->get(idx);
    ctx.counters->add(power::ev::QrenameReads,
                      static_cast<uint64_t>(inst.numSrcs()));
    if (inst.hasDest())
        ctx.counters->inc(power::ev::QrenameWrites);
    if (inst.isFpPipe())
        fp_.dispatch(idx, table_, ctx);
    else
        int_.dispatch(idx, table_, ctx);
}

void
MixBuffIssueScheme::issue(IssueContext &ctx, std::vector<InstIdx> &out)
{
    int_.issue(ctx, out);
    fp_.issue(ctx, out);
}

void
MixBuffIssueScheme::onWakeup(int phys_reg, IssueContext &ctx)
{
    (void)phys_reg;
    ctx.counters->inc(power::ev::RegsReadyWrites);
}

void
MixBuffIssueScheme::onBranchMispredict(IssueContext &ctx)
{
    (void)ctx;
    if (config_.clearTableOnMispredict) {
        table_.clear();
        int_.dropSteerMemo();
    }
}

size_t
MixBuffIssueScheme::occupancy() const
{
    return int_.occupancy() + fp_.occupancy();
}

std::string
MixBuffIssueScheme::invariantViolation(const InstPool &pool) const
{
    std::string v = int_.invariantViolation(pool);
    if (v.empty())
        v = fp_.invariantViolation(pool);
    return v;
}

std::string
MixBuffIssueScheme::name() const
{
    std::ostringstream os;
    os << "MixBUFF_" << config_.numIntQueues << "x" << config_.intQueueSize
       << "_" << config_.numFpQueues << "x" << config_.fpQueueSize;
    if (config_.distributedFus)
        os << "_distr";
    return os.str();
}

} // namespace diq::core

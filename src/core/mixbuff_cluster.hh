/**
 * @file
 * MixBUFF FP cluster (paper §3.2) — the paper's core contribution.
 *
 * Each queue is a small RAM buffer (not a FIFO) holding instructions
 * from several dependence *chains*. Per queue:
 *
 *  - A chain latency table: one saturating down-counter per chain,
 *    holding the remaining latency of the chain's last *issued*
 *    instruction. Every cycle the whole table is read, decremented and
 *    rewritten, except the entry of a chain that issued this cycle,
 *    which is loaded with the issuing instruction's latency (loads
 *    assume the L1 hit latency).
 *
 *  - Selection: each counter compresses to a 2-bit code
 *      00 = finishes next cycle  (dependent is first-time ready)
 *      01 = already finished     (dependent was "delayed")
 *      11 = two or more cycles   (not a candidate)
 *    Every occupant concatenates its chain's code with its age
 *    identifier; the numerically smallest (code, age) wins — giving
 *    first-time-ready instructions priority over delayed ones, and
 *    older instructions priority within a class (Figure 5).
 *
 *  - The winner is latched ("reg" energy); the *next* cycle it probes
 *    the ready-bit table and its functional unit. If its operands are
 *    not actually ready (e.g. a load miss or a cross-queue
 *    dependence), it stays in the buffer and, its chain counter having
 *    saturated at zero, re-competes in the lower-priority 01 class —
 *    exactly the paper's delayed-instruction heuristic. No CAM wakeup
 *    anywhere.
 *
 * Chain allocation at dispatch follows §3.2.1: join the chain of a
 * source operand's producer if that producer is still the chain's last
 * instruction and the queue has room; otherwise take the lowest free
 * chain identifier in the priority order chain0/queue0, chain0/queue1,
 * ..., chain1/queue0, ... which balances busy chains across queues.
 *
 * Storage: each queue is a fixed slot slab (InstIdx handles + a
 * `valid` occupancy mask) and each chain owns a membership bitmask
 * over those slots plus an intrusive slot list in dispatch order.
 * Because members of one chain share the chain's code, the oldest
 * member always outranks its siblings, so chain members issue
 * strictly front-to-back and the selection minimum over a code class
 * is the min-seq *chain head* — a compare per busy chain instead of a
 * sweep per slot. Issue removal is a couple of bit clears plus a list
 * head pop instead of a vector erase.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1, §10.
 */

#ifndef DIQ_CORE_MIXBUFF_CLUSTER_HH
#define DIQ_CORE_MIXBUFF_CLUSTER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/dyn_inst.hh"
#include "core/issue_scheme.hh"
#include "core/queue_rename_table.hh"
#include "core/slot_meta.hh"
#include "util/bit_words.hh"
#include "util/saturating_counter.hh"

namespace diq::core
{

/** Two-bit chain-status codes (numeric order = selection priority). */
enum class ChainCode : uint8_t {
    FinishesNextCycle = 0b00, ///< dependent becomes ready next cycle
    Finished = 0b01,          ///< dependent is late ("delayed")
    Busy = 0b11               ///< >= 2 cycles left: not a candidate
};

/** Placement decision for a dispatching instruction. */
struct ChainPlacement
{
    int queue = -1;
    int chain = -1;
    bool newChain = false;
};

/** The buffered, chain-scheduled FP cluster. */
class MixBuffCluster
{
  public:
    /**
     * @param num_queues buffers in the cluster
     * @param queue_size entries per buffer
     * @param chains_per_queue chain-table entries per queue
     *        (0 = unbounded, as in the paper's §3.2 sizing study)
     * @param distributed_fus restrict issue to the queue's own units
     * @param counter_max saturating-counter ceiling (encodes the
     *        largest FU latency)
     */
    MixBuffCluster(int num_queues, int queue_size, int chains_per_queue,
                   bool distributed_fus, uint32_t counter_max = 31);

    /** §3.2.1 placement; nullopt means dispatch must stall. */
    std::optional<ChainPlacement>
    pickPlacement(const DynInst &inst, const QueueRenameTable &table) const;

    bool
    canDispatch(const DynInst &inst, const QueueRenameTable &table) const
    {
        return pickPlacement(inst, table).has_value();
    }

    void dispatch(InstIdx idx, QueueRenameTable &table,
                  IssueContext &ctx);

    /**
     * One cycle: try to issue each queue's latched selection, advance
     * the chain latency tables, then select next cycle's candidates.
     */
    void issue(IssueContext &ctx, std::vector<InstIdx> &out);

    size_t occupancy() const { return size_; }
    int numQueues() const { return static_cast<int>(queues_.size()); }

    /** Compress a counter value to its 2-bit code (paper §3.2.1). */
    static ChainCode codeFor(uint32_t counter_value);

    /** Structural self-check (see IssueScheme::invariantViolation). */
    std::string invariantViolation(const InstPool &pool) const;

    /** Snapshot codec hook (src/ckpt): per-queue slot slabs, chain
     *  tables (which may have grown past the construction size when
     *  chainsPerQueue == 0) and the flat busy/membership masks; the
     *  placement memo is dropped on Load (ckpt/state_serialize.cc). */
    void serialize(ckpt::Archive &ar);

    // --- Test introspection -------------------------------------------
    uint32_t chainCounter(int queue, int chain) const;
    bool chainBusy(int queue, int chain) const;
    const DynInst *selectedInst(const InstPool &pool, int queue) const;
    int busyChains(int queue) const;

  private:
    static constexpr uint32_t NoSlot = 0xFFFFFFFFu;

    struct Chain
    {
        bool busy = false;
        bool lastIssued = false;  ///< last instruction has issued
        uint64_t lastSeq = 0;     ///< seq of the chain's last instruction
        uint32_t headSlot = NoSlot; ///< oldest member (next to issue)
        uint32_t tailSlot = NoSlot; ///< youngest member
        util::SaturatingDownCounter counter;

        explicit Chain(uint32_t max) : counter(max) {}
    };

    struct Queue
    {
        std::vector<InstIdx> slotInst;  ///< queueSize slots
        std::vector<uint64_t> slotSeq;  ///< occupant age ids (select key)
        std::vector<SlotMeta> slotMeta; ///< cached issue facts
        std::vector<int32_t> slotChain; ///< occupant's chain id
        std::vector<uint32_t> slotLat;  ///< occupant's chain latency
        /** Next-younger member of the same chain (intrusive list). */
        std::vector<uint32_t> nextInChain;
        util::BitWords valid;           ///< slot occupied
        uint32_t count = 0;
        std::vector<Chain> chains;
        /**
         * Chain occupancy, stored flat for the per-cycle sweeps:
         * busyW has one bit per chain; memberW holds chain ci's
         * occupants as `wordsPer_` slot-mask words at ci * wordsPer_.
         * Only busy chains may own slots, so sweeping the busy bits
         * visits every member list that can matter.
         */
        std::vector<uint64_t> busyW;
        std::vector<uint64_t> memberW;
        int selectedSlot = -1;
        int justLoadedChain = -1;
    };

    uint64_t *memberRow(Queue &q, int chain)
    {
        return q.memberW.data() +
               static_cast<size_t>(chain) * wordsPer_;
    }
    const uint64_t *memberRow(const Queue &q, int chain) const
    {
        return q.memberW.data() +
               static_cast<size_t>(chain) * wordsPer_;
    }

    void growChains(Queue &q, int chain);
    void removeSlot(Queue &q, uint32_t slot, int chain);

    bool chainMappingValid(const QueueMapping &m) const;
    unsigned chainLatencyFor(const DynInst &inst) const;

    int queueSize_;
    int chainsPerQueue_; ///< 0 = unbounded
    bool distributedFus_;
    uint32_t counterMax_;
    unsigned l1dHitLatency_ = 2;
    size_t wordsPer_; ///< slot-mask words per chain row
    size_t size_ = 0; ///< total occupants across queues
    std::vector<Queue> queues_;
    /** canDispatch → dispatch placement memo (same instruction). */
    mutable uint64_t placeSeq_ = 0;
    mutable ChainPlacement placeMemo_;
};

} // namespace diq::core

#endif // DIQ_CORE_MIXBUFF_CLUSTER_HH

/**
 * @file
 * Cached per-slot issue metadata.
 *
 * The per-cycle head/selection probes of every scheme need the same
 * handful of instruction facts: age, physical sources, store-ness and
 * functional-unit class. Fetching them through the DynInst slab costs
 * a dependent load per probe on the hottest loop of the simulator;
 * caching them next to the slot array at dispatch keeps the probe
 * loop inside the scheme's own cache lines. All fields are immutable
 * for the instruction's residency, so the cache can never go stale.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §10.
 */

#ifndef DIQ_CORE_SLOT_META_HH
#define DIQ_CORE_SLOT_META_HH

#include <cstdint>

#include "core/dyn_inst.hh"
#include "core/fu_pool.hh"
#include "core/scoreboard.hh"

namespace diq::core
{

/** Issue-probe facts for one resident instruction. */
struct SlotMeta
{
    uint64_t seq = 0;
    int32_t src1 = NoPhysReg;
    int32_t src2 = NoPhysReg;
    uint8_t numSrcs = 0;
    uint8_t isStore = 0;
    FuClass fu = FuClass::IntAlu;
    uint8_t fuOccupancy = 1;

    static SlotMeta
    of(const DynInst &inst)
    {
        SlotMeta m;
        m.seq = inst.seq;
        m.src1 = inst.psrc1;
        m.src2 = inst.psrc2;
        m.numSrcs = static_cast<uint8_t>(inst.numSrcs());
        m.isStore = inst.isStore() ? 1 : 0;
        m.fu = fuClassFor(inst.op.op);
        m.fuOccupancy =
            static_cast<uint8_t>(FuPool::occupancyFor(inst.op.op));
        return m;
    }

    /** Scoreboard::readyToIssue over the cached operand registers. */
    bool
    readyToIssue(const Scoreboard &sb, uint64_t cycle) const
    {
        if (src1 != NoPhysReg && !sb.isReady(src1, cycle))
            return false;
        if (isStore)
            return true;
        return src2 == NoPhysReg || sb.isReady(src2, cycle);
    }
};

} // namespace diq::core

#endif // DIQ_CORE_SLOT_META_HH

/**
 * @file
 * LatFIFO_AxB_CxD (paper §3.1): IssueFIFO for the integer cluster,
 * latency-based FIFO placement for the FP cluster. The issue-time
 * estimator observes every dispatched instruction (integer producers
 * and store-address progress feed the FP estimates).
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_LAT_FIFO_ISSUE_SCHEME_HH
#define DIQ_CORE_LAT_FIFO_ISSUE_SCHEME_HH

#include <string>

#include "core/fifo_cluster.hh"
#include "core/issue_scheme.hh"
#include "core/issue_time_estimator.hh"
#include "core/lat_fifo_cluster.hh"
#include "core/queue_rename_table.hh"

namespace diq::core
{

/** The complete LatFIFO organization. */
class LatFifoIssueScheme : public IssueScheme
{
  public:
    explicit LatFifoIssueScheme(const SchemeConfig &config);

    bool canDispatch(const DynInst &inst,
                     const IssueContext &ctx) const override;
    void dispatch(InstIdx idx, IssueContext &ctx) override;
    void issue(IssueContext &ctx, std::vector<InstIdx> &out) override;
    void onWakeup(int phys_reg, IssueContext &ctx) override;
    void onBranchMispredict(IssueContext &ctx) override;
    size_t occupancy() const override;
    std::string name() const override;
    std::string invariantViolation(const InstPool &pool) const override;
    void serialize(ckpt::Archive &ar) override;

    const IssueTimeEstimator &estimator() const { return estimator_; }
    const LatFifoCluster &fpCluster() const { return fp_; }

  private:
    SchemeConfig config_;
    FifoCluster int_;
    LatFifoCluster fp_;
    QueueRenameTable table_;
    IssueTimeEstimator estimator_;
};

} // namespace diq::core

#endif // DIQ_CORE_LAT_FIFO_ISSUE_SCHEME_HH

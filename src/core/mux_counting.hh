/**
 * @file
 * Shared helper: attribute an issued instruction to its Mux energy
 * component (Figures 9-11 legends split the issue-to-FU drive by
 * functional-unit class).
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_MUX_COUNTING_HH
#define DIQ_CORE_MUX_COUNTING_HH

#include "core/fu_pool.hh"
#include "power/event_counters.hh"

namespace diq::core
{

/** Count one instruction driven to a unit of class `fc`. */
inline void
countMuxIssue(power::EventCounters &c, FuClass fc)
{
    namespace ev = diq::power::ev;
    switch (fc) {
      case FuClass::IntAlu:
        c.inc(ev::MuxIntAlu);
        break;
      case FuClass::IntMul:
        c.inc(ev::MuxIntMul);
        break;
      case FuClass::FpAlu:
        c.inc(ev::MuxFpAlu);
        break;
      case FuClass::FpMul:
        c.inc(ev::MuxFpMul);
        break;
      default:
        break;
    }
}

} // namespace diq::core

#endif // DIQ_CORE_MUX_COUNTING_HH

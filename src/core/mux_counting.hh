/**
 * @file
 * Shared helper: attribute an issued instruction to its Mux energy
 * component (Figures 9-11 legends split the issue-to-FU drive by
 * functional-unit class).
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_MUX_COUNTING_HH
#define DIQ_CORE_MUX_COUNTING_HH

#include "core/fu_pool.hh"
#include "power/events.hh"
#include "util/stats.hh"

namespace diq::core
{

/** Count one instruction driven to a unit of class `fc`. */
inline void
countMuxIssue(util::CounterSet &c, FuClass fc)
{
    namespace ev = diq::power::ev;
    switch (fc) {
      case FuClass::IntAlu:
        c.add(ev::MuxIntAlu, 1);
        break;
      case FuClass::IntMul:
        c.add(ev::MuxIntMul, 1);
        break;
      case FuClass::FpAlu:
        c.add(ev::MuxFpAlu, 1);
        break;
      case FuClass::FpMul:
        c.add(ev::MuxFpMul, 1);
        break;
      default:
        break;
    }
}

} // namespace diq::core

#endif // DIQ_CORE_MUX_COUNTING_HH

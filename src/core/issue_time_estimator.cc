/**
 * @file
 * Implementation of core/issue_time_estimator.hh (docs/ARCHITECTURE.md §1).
 */

#include "core/issue_time_estimator.hh"

#include <algorithm>

namespace diq::core
{

IssueTimeEstimator::IssueTimeEstimator(unsigned l1d_hit_latency)
    : l1dHitLatency_(l1d_hit_latency)
{
    destCycle_.fill(0);
}

unsigned
IssueTimeEstimator::estimatedLatency(trace::OpClass op) const
{
    if (op == trace::OpClass::Load)
        return trace::AddressLatency + l1dHitLatency_;
    return static_cast<unsigned>(trace::opLatency(op));
}

uint64_t
IssueTimeEstimator::destCycle(int logical_reg) const
{
    if (logical_reg < 0 || logical_reg >= trace::NumLogicalRegs)
        return 0;
    return destCycle_[static_cast<size_t>(logical_reg)];
}

uint64_t
IssueTimeEstimator::estimate(const DynInst &inst, uint64_t cycle) const
{
    uint64_t issue = cycle + 1;
    issue = std::max(issue, destCycle(inst.op.src1));
    issue = std::max(issue, destCycle(inst.op.src2));
    if (inst.isLoad())
        issue = std::max(issue, allStoreAddr_);
    return issue;
}

uint64_t
IssueTimeEstimator::onDispatch(const DynInst &inst, uint64_t cycle)
{
    uint64_t issue = estimate(inst, cycle);
    if (inst.isStore()) {
        allStoreAddr_ =
            std::max(allStoreAddr_, issue + trace::AddressLatency);
    }
    if (inst.hasDest()) {
        destCycle_[static_cast<size_t>(inst.op.dest)] =
            issue + estimatedLatency(inst.op.op);
    }
    return issue;
}

void
IssueTimeEstimator::clear()
{
    destCycle_.fill(0);
    allStoreAddr_ = 0;
}

} // namespace diq::core

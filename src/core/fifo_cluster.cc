/**
 * @file
 * Implementation of core/fifo_cluster.hh (docs/ARCHITECTURE.md §1,
 * §10).
 */

#include "core/fifo_cluster.hh"

#include <algorithm>

#include "core/mux_counting.hh"
#include "power/events.hh"

namespace diq::core
{

FifoCluster::FifoCluster(bool fp, int num_queues, int queue_size,
                         bool distributed_fus)
    : fp_(fp), queueSize_(queue_size), distributedFus_(distributed_fus),
      slots_(static_cast<size_t>(num_queues) *
                 static_cast<size_t>(queue_size),
             NoInst),
      meta_(slots_.size()),
      qs_(static_cast<size_t>(num_queues)),
      nonEmpty_(static_cast<size_t>(num_queues))
{
    heads_.reserve(static_cast<size_t>(num_queues));
}

void
FifoCluster::insertHead(int q)
{
    uint32_t slot = slotAt(q, 0);
    HeadEntry h{q, slot, meta_[slot]};
    headSrcSum_ += h.meta.numSrcs;
    size_t j = heads_.size();
    heads_.push_back(h);
    while (j > 0 && heads_[j - 1].meta.seq > h.meta.seq) {
        heads_[j] = heads_[j - 1];
        --j;
    }
    heads_[j] = h;
}

void
FifoCluster::eraseHead(int q)
{
    for (size_t i = 0; i < heads_.size(); ++i) {
        if (heads_[i].queue == q) {
            headSrcSum_ -= heads_[i].meta.numSrcs;
            heads_.erase(heads_.begin() + static_cast<long>(i));
            return;
        }
    }
    assert(false && "queue has no candidate entry");
}

void
FifoCluster::pushBack(int q, InstIdx idx, const DynInst &inst)
{
    QState &st = qs_[static_cast<size_t>(q)];
    assert(st.count < static_cast<uint32_t>(queueSize_));
    uint32_t slot = slotAt(q, st.count);
    slots_[slot] = idx;
    meta_[slot] = SlotMeta::of(inst);
    ++st.count;
    st.tailSeq = inst.seq;
    nonEmpty_.set(static_cast<size_t>(q));
    ++size_;
    if (st.count == 1)
        insertHead(q); // the new entry is the queue's head
}

InstIdx
FifoCluster::popFront(int q)
{
    QState &st = qs_[static_cast<size_t>(q)];
    assert(st.count > 0);
    uint32_t slot = slotAt(q, 0);
    InstIdx idx = slots_[slot];
    slots_[slot] = NoInst;
    eraseHead(q);
    st.head = st.head + 1 == static_cast<uint32_t>(queueSize_)
                  ? 0
                  : st.head + 1;
    if (--st.count == 0)
        nonEmpty_.clear(static_cast<size_t>(q));
    else
        insertHead(q); // successor becomes the queue's head
    --size_;
    return idx;
}

bool
FifoCluster::mappingValid(const QueueMapping &m) const
{
    if (!m.valid || m.fpCluster != fp_)
        return false;
    if (m.queue < 0 || m.queue >= numQueues())
        return false;
    const QState &st = qs_[static_cast<size_t>(m.queue)];
    return st.count > 0 && st.tailSeq == m.producerSeq;
}

int
FifoCluster::pickQueue(const DynInst &inst, const QueueRenameTable &table,
                       SteerOutcome *outcome) const
{
    if (pickSeq_ == inst.seq && inst.seq != 0) {
        if (outcome)
            *outcome = pickOutcome_;
        return pickMemo_;
    }
    auto decide = [&](SteerOutcome o, int q) {
        pickSeq_ = inst.seq;
        pickOutcome_ = o;
        pickMemo_ = q;
        if (outcome)
            *outcome = o;
        return q;
    };
    const QueueMapping &m1 = table.lookup(inst.op.src1);
    const QueueMapping &m2 = table.lookup(inst.op.src2);
    bool v1 = inst.op.src1 != trace::NoReg && mappingValid(m1);
    bool v2 = inst.op.src2 != trace::NoReg && mappingValid(m2);

    if (v1) {
        if (!qFull(m1.queue))
            return decide(SteerOutcome::JoinSrc1, m1.queue);
        if (!v2) // "full and only one source operand": stall
            return decide(SteerOutcome::StallFull, -1);
    }
    if (v2) {
        if (!qFull(m2.queue))
            return decide(SteerOutcome::JoinSrc2, m2.queue);
        return decide(SteerOutcome::StallFull, -1); // producer queue full
    }

    // First empty FIFO = first clear occupancy bit.
    size_t q = nonEmpty_.findFirstClear(static_cast<size_t>(numQueues()));
    if (q != util::BitWords::npos)
        return decide(SteerOutcome::EmptyFifo, static_cast<int>(q));
    return decide(SteerOutcome::StallNoEmpty, -1); // no empty FIFO
}

void
FifoCluster::dispatch(InstIdx idx, QueueRenameTable &table,
                      IssueContext &ctx)
{
    DynInst &inst = ctx.pool->get(idx);
    SteerOutcome outcome{};
    int q = pickQueue(inst, table, &outcome);
    pickSeq_ = 0; // memo consumed; cluster/table state changes below
    // SteerOutcome indexes the contiguous steer.* EventId block.
    static_assert(static_cast<int>(power::EventId::SteerStallNoEmpty) -
                      static_cast<int>(power::EventId::SteerJoinSrc1) ==
                  static_cast<int>(SteerOutcome::StallNoEmpty) -
                      static_cast<int>(SteerOutcome::JoinSrc1));
    ctx.counters->inc(static_cast<power::EventId>(
        static_cast<int>(power::EventId::SteerJoinSrc1) +
        static_cast<int>(outcome)));
    if (q < 0)
        return; // caller must gate on canDispatch
    pushBack(q, idx, inst);
    inst.queueId = q;
    inst.dispatchCycle = ctx.cycle;
    ctx.counters->inc(power::ev::FifoWrites);
    if (inst.hasDest())
        table.update(inst.op.dest, fp_, q, -1, inst.seq);
}

void
FifoCluster::issue(IssueContext &ctx, std::vector<InstIdx> &out)
{
    // Heads check their operands every cycle (paper §2.2), so the
    // ready-table probes are counted before any issue decision.
    // Issue considers heads oldest-first, up to the cluster width.
    // The gather/probe loop runs off the SlotMeta cache; the DynInst
    // slab is only touched for instructions that actually issue.
    pickSeq_ = 0; // issue mutates occupancy: drop any steering memo
    if (size_ == 0)
        return;
    ctx.counters->add(power::ev::RegsReadyReads, headSrcSum_);

    // Pops are deferred past the scan: popFront re-inserts the
    // successor head, which must not be considered until next cycle,
    // and deferring keeps the scan a read-only walk of the sorted
    // list (no per-cycle snapshot copy).
    int winners[IssueWidthPerCluster];
    int issued = 0;
    for (size_t i = 0;
         i < heads_.size() && issued < IssueWidthPerCluster; ++i) {
        const HeadEntry &h = heads_[i];
        const SlotMeta &m = h.meta;
        if (!m.readyToIssue(*ctx.scoreboard, ctx.cycle))
            continue;
        int fu_domain = distributedFus_ ? h.queue : -1;
        if (!ctx.fus->canIssue(m.fu, fu_domain, ctx.cycle))
            continue;
        ctx.fus->markIssued(m.fu, fu_domain, ctx.cycle, m.fuOccupancy);
        InstIdx idx = slots_[h.slot];
        ctx.counters->inc(power::ev::FifoReads);
        countMuxIssue(*ctx.counters, m.fu);
        DynInst &inst = ctx.pool->get(idx);
        inst.issued = true;
        inst.issueCycle = ctx.cycle;
        out.push_back(idx);
        winners[issued++] = h.queue;
    }
    for (int i = 0; i < issued; ++i)
        popFront(winners[i]);
}

std::vector<const DynInst *>
FifoCluster::queueContents(const InstPool &pool, int q) const
{
    std::vector<const DynInst *> v;
    const QState &st = qs_[static_cast<size_t>(q)];
    for (uint32_t i = 0; i < st.count; ++i)
        v.push_back(&pool.get(slots_[slotAt(q, i)]));
    return v;
}

std::string
FifoCluster::invariantViolation(const InstPool &pool) const
{
    const char *which = fp_ ? "fp" : "int";
    size_t total = 0;
    for (int q = 0; q < numQueues(); ++q) {
        const QState &st = qs_[static_cast<size_t>(q)];
        if (nonEmpty_.test(static_cast<size_t>(q)) != (st.count > 0)) {
            return std::string("fifo ") + which + " queue " +
                   std::to_string(q) +
                   " occupancy bit disagrees with count";
        }
        uint64_t prev_seq = 0;
        for (uint32_t i = 0; i < st.count; ++i) {
            uint32_t slot = slotAt(q, i);
            InstIdx idx = slots_[slot];
            if (idx == NoInst || !pool.isLive(idx))
                return std::string("fifo ") + which + " queue " +
                       std::to_string(q) +
                       " holds a dead instruction handle";
            uint64_t seq = pool.get(idx).seq;
            if (meta_[slot].seq != seq)
                return std::string("fifo ") + which + " queue " +
                       std::to_string(q) +
                       " cached slot metadata is stale at seq " +
                       std::to_string(seq);
            if (i > 0 && prev_seq >= seq)
                return std::string("fifo ") + which + " queue " +
                       std::to_string(q) +
                       " not in program order at seq " +
                       std::to_string(seq);
            prev_seq = seq;
        }
        if (st.count > 0 && st.tailSeq != prev_seq)
            return std::string("fifo ") + which + " queue " +
                   std::to_string(q) + " cached tail seq is stale";
        total += st.count;
    }
    if (total != size_)
        return std::string("fifo ") + which +
               " per-queue counts sum to " + std::to_string(total) +
               ", running size is " + std::to_string(size_);

    // The persistent candidate list must hold exactly the current head
    // of every non-empty queue, in seq order, with fresh metadata.
    std::vector<char> seen(qs_.size(), 0);
    uint64_t src_sum = 0;
    uint64_t prev_head_seq = 0;
    for (size_t i = 0; i < heads_.size(); ++i) {
        const HeadEntry &h = heads_[i];
        if (h.queue < 0 || h.queue >= numQueues() ||
            seen[static_cast<size_t>(h.queue)]++)
            return std::string("fifo ") + which +
                   " head list has a duplicate or bogus queue entry";
        const QState &st = qs_[static_cast<size_t>(h.queue)];
        if (st.count == 0)
            return std::string("fifo ") + which + " head list names " +
                   "empty queue " + std::to_string(h.queue);
        if (h.slot != slotAt(h.queue, 0) ||
            h.meta.seq != meta_[h.slot].seq)
            return std::string("fifo ") + which +
                   " head list entry for queue " +
                   std::to_string(h.queue) + " is stale";
        if (i > 0 && prev_head_seq > h.meta.seq)
            return std::string("fifo ") + which +
                   " head list not sorted by seq";
        prev_head_seq = h.meta.seq;
        src_sum += h.meta.numSrcs;
    }
    for (int q = 0; q < numQueues(); ++q)
        if (qs_[static_cast<size_t>(q)].count > 0 &&
            !seen[static_cast<size_t>(q)])
            return std::string("fifo ") + which + " non-empty queue " +
                   std::to_string(q) + " missing from the head list";
    if (src_sum != headSrcSum_)
        return std::string("fifo ") + which +
               " cached head source-operand sum is stale";
    return {};
}

} // namespace diq::core

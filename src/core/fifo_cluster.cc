/**
 * @file
 * Implementation of core/fifo_cluster.hh (docs/ARCHITECTURE.md §1).
 */

#include "core/fifo_cluster.hh"

#include <algorithm>

#include "core/mux_counting.hh"
#include "power/events.hh"

namespace diq::core
{

FifoCluster::FifoCluster(bool fp, int num_queues, int queue_size,
                         bool distributed_fus)
    : fp_(fp), queueSize_(queue_size), distributedFus_(distributed_fus)
{
    queues_.reserve(static_cast<size_t>(num_queues));
    for (int q = 0; q < num_queues; ++q)
        queues_.emplace_back(static_cast<size_t>(queue_size));
}

bool
FifoCluster::mappingValid(const QueueMapping &m) const
{
    if (!m.valid || m.fpCluster != fp_)
        return false;
    if (m.queue < 0 || m.queue >= numQueues())
        return false;
    const auto &q = queues_[static_cast<size_t>(m.queue)];
    return !q.empty() && q.back()->seq == m.producerSeq;
}

int
FifoCluster::pickQueue(const DynInst &inst, const QueueRenameTable &table,
                       SteerOutcome *outcome) const
{
    auto report = [&](SteerOutcome o) {
        if (outcome)
            *outcome = o;
    };
    const QueueMapping &m1 = table.lookup(inst.op.src1);
    const QueueMapping &m2 = table.lookup(inst.op.src2);
    bool v1 = inst.op.src1 != trace::NoReg && mappingValid(m1);
    bool v2 = inst.op.src2 != trace::NoReg && mappingValid(m2);

    if (v1) {
        if (!queues_[static_cast<size_t>(m1.queue)].full()) {
            report(SteerOutcome::JoinSrc1);
            return m1.queue;
        }
        if (!v2) { // "full and only one source operand": stall
            report(SteerOutcome::StallFull);
            return -1;
        }
    }
    if (v2) {
        if (!queues_[static_cast<size_t>(m2.queue)].full()) {
            report(SteerOutcome::JoinSrc2);
            return m2.queue;
        }
        report(SteerOutcome::StallFull);
        return -1; // producer queue full: stall
    }

    for (int q = 0; q < numQueues(); ++q) {
        if (queues_[static_cast<size_t>(q)].empty()) {
            report(SteerOutcome::EmptyFifo);
            return q;
        }
    }
    report(SteerOutcome::StallNoEmpty);
    return -1; // no empty FIFO: stall
}

void
FifoCluster::dispatch(DynInst *inst, QueueRenameTable &table,
                      IssueContext &ctx)
{
    SteerOutcome outcome{};
    int q = pickQueue(*inst, table, &outcome);
    // SteerOutcome indexes the contiguous steer.* EventId block.
    static_assert(static_cast<int>(power::EventId::SteerStallNoEmpty) -
                      static_cast<int>(power::EventId::SteerJoinSrc1) ==
                  static_cast<int>(SteerOutcome::StallNoEmpty) -
                      static_cast<int>(SteerOutcome::JoinSrc1));
    ctx.counters->inc(static_cast<power::EventId>(
        static_cast<int>(power::EventId::SteerJoinSrc1) +
        static_cast<int>(outcome)));
    if (q < 0)
        return; // caller must gate on canDispatch
    queues_[static_cast<size_t>(q)].pushBack(inst);
    inst->queueId = q;
    inst->dispatchCycle = ctx.cycle;
    ctx.counters->inc(power::ev::FifoWrites);
    if (inst->hasDest())
        table.update(inst->op.dest, fp_, q, -1, inst->seq);
}

void
FifoCluster::issue(IssueContext &ctx, std::vector<DynInst *> &out)
{
    // Heads check their operands every cycle (paper §2.2), so the
    // ready-table probes are counted before any issue decision.
    // Issue considers heads oldest-first, up to the cluster width.
    struct Head
    {
        int queue;
        DynInst *inst;
    };
    Head heads[64];
    int num_heads = 0;
    for (int q = 0; q < numQueues(); ++q) {
        auto &fifo = queues_[static_cast<size_t>(q)];
        if (fifo.empty())
            continue;
        DynInst *inst = fifo.front();
        ctx.counters->add(power::ev::RegsReadyReads,
                          static_cast<uint64_t>(inst->numSrcs()));
        if (num_heads < 64)
            heads[num_heads++] = {q, inst};
    }
    std::sort(heads, heads + num_heads,
              [](const Head &a, const Head &b) {
                  return a.inst->seq < b.inst->seq;
              });

    int issued = 0;
    for (int i = 0; i < num_heads && issued < IssueWidthPerCluster; ++i) {
        DynInst *inst = heads[i].inst;
        if (!ctx.scoreboard->readyToIssue(*inst, ctx.cycle))
            continue;
        FuClass fc = fuClassFor(inst->op.op);
        int fu_domain = distributedFus_ ? heads[i].queue : -1;
        if (!ctx.fus->canIssue(fc, fu_domain, ctx.cycle))
            continue;
        ctx.fus->markIssued(fc, fu_domain, ctx.cycle,
                            FuPool::occupancyFor(inst->op.op));
        queues_[static_cast<size_t>(heads[i].queue)].popFront();
        ctx.counters->inc(power::ev::FifoReads);
        countMuxIssue(*ctx.counters, fc);
        inst->issued = true;
        inst->issueCycle = ctx.cycle;
        out.push_back(inst);
        ++issued;
    }
}

size_t
FifoCluster::occupancy() const
{
    size_t n = 0;
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

std::vector<const DynInst *>
FifoCluster::queueContents(int q) const
{
    std::vector<const DynInst *> v;
    const auto &fifo = queues_[static_cast<size_t>(q)];
    for (size_t i = 0; i < fifo.size(); ++i)
        v.push_back(fifo.at(i));
    return v;
}

} // namespace diq::core

/**
 * @file
 * Queue rename table for the FIFO-family schemes.
 *
 * "This mechanism only requires a table to store for each register
 * which queue (if any) has its producer at the tail of the queue"
 * (paper §2.2); MixBUFF extends the entry with a chain identifier
 * (§3.2.1). The table is indexed by *logical* register — the paper's
 * architectural-register variant — and therefore must be cleared when
 * a branch mispredict resolves.
 *
 * An entry is only meaningful while its producer is still the tail of
 * its queue (IssueFIFO) or the last instruction of its chain
 * (MixBUFF); validity is established by comparing the stored producer
 * sequence number against the queue/chain state, which models the
 * hardware's implicit invalidation-by-overwrite.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §1.
 */

#ifndef DIQ_CORE_QUEUE_RENAME_TABLE_HH
#define DIQ_CORE_QUEUE_RENAME_TABLE_HH

#include <cstdint>
#include <vector>

#include "trace/isa.hh"

namespace diq::ckpt
{
class Archive;
}

namespace diq::core
{

/** One mapping: producing queue/chain of a logical register. */
struct QueueMapping
{
    bool valid = false;
    bool fpCluster = false; ///< cluster of the mapped queue
    int queue = -1;
    int chain = -1;        ///< MixBUFF only
    uint64_t producerSeq = 0;
};

/** Logical-register -> (queue, chain, producer) map. */
class QueueRenameTable
{
  public:
    QueueRenameTable() : table_(trace::NumLogicalRegs) {}

    /** Raw entry for a logical register (NoReg-safe: invalid). */
    const QueueMapping &
    lookup(int logical_reg) const
    {
        static const QueueMapping invalid{};
        if (logical_reg < 0 || logical_reg >= trace::NumLogicalRegs)
            return invalid;
        return table_[static_cast<size_t>(logical_reg)];
    }

    /** Record `logical_reg`'s producer position. */
    void
    update(int logical_reg, bool fp_cluster, int queue, int chain,
           uint64_t producer_seq)
    {
        if (logical_reg < 0 || logical_reg >= trace::NumLogicalRegs)
            return;
        auto &e = table_[static_cast<size_t>(logical_reg)];
        e.valid = true;
        e.fpCluster = fp_cluster;
        e.queue = queue;
        e.chain = chain;
        e.producerSeq = producer_seq;
    }

    /** Drop every mapping (mispredict recovery, run reset). */
    void
    clear()
    {
        for (auto &e : table_)
            e = QueueMapping{};
    }

    /** Snapshot codec hook (src/ckpt). */
    void serialize(ckpt::Archive &ar);

  private:
    std::vector<QueueMapping> table_;
};

} // namespace diq::core

#endif // DIQ_CORE_QUEUE_RENAME_TABLE_HH

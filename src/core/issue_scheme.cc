/**
 * @file
 * Implementation of core/issue_scheme.hh (docs/ARCHITECTURE.md §1).
 */

#include "core/issue_scheme.hh"

#include <sstream>

#include "core/cam_issue_scheme.hh"
#include "core/fifo_issue_scheme.hh"
#include "core/lat_fifo_issue_scheme.hh"
#include "core/mixbuff_issue_scheme.hh"

namespace diq::core
{

SchemeConfig
SchemeConfig::iq6464()
{
    SchemeConfig c;
    c.kind = Kind::Cam;
    c.camIntEntries = 64;
    c.camFpEntries = 64;
    return c;
}

SchemeConfig
SchemeConfig::unbounded()
{
    SchemeConfig c;
    c.kind = Kind::Cam;
    c.camIntEntries = 256;
    c.camFpEntries = 256;
    return c;
}

SchemeConfig
SchemeConfig::issueFifo(int a, int b, int c, int d)
{
    SchemeConfig cfg;
    cfg.kind = Kind::IssueFifo;
    cfg.numIntQueues = a;
    cfg.intQueueSize = b;
    cfg.numFpQueues = c;
    cfg.fpQueueSize = d;
    return cfg;
}

SchemeConfig
SchemeConfig::latFifo(int a, int b, int c, int d)
{
    SchemeConfig cfg = issueFifo(a, b, c, d);
    cfg.kind = Kind::LatFifo;
    return cfg;
}

SchemeConfig
SchemeConfig::mixBuff(int a, int b, int c, int d, int chains)
{
    SchemeConfig cfg = issueFifo(a, b, c, d);
    cfg.kind = Kind::MixBuff;
    cfg.chainsPerQueue = chains;
    return cfg;
}

SchemeConfig
SchemeConfig::ifDistr()
{
    SchemeConfig cfg = issueFifo(8, 8, 8, 16);
    cfg.distributedFus = true;
    return cfg;
}

SchemeConfig
SchemeConfig::mbDistr()
{
    SchemeConfig cfg = mixBuff(8, 8, 8, 16, /*chains=*/8);
    cfg.distributedFus = true;
    return cfg;
}

std::string
SchemeConfig::name() const
{
    std::ostringstream os;
    switch (kind) {
      case Kind::Cam:
        os << "IQ_" << camIntEntries << "_" << camFpEntries;
        return os.str();
      case Kind::IssueFifo:
        os << "IssueFIFO";
        break;
      case Kind::LatFifo:
        os << "LatFIFO";
        break;
      case Kind::MixBuff:
        os << "MixBUFF";
        break;
    }
    os << "_" << numIntQueues << "x" << intQueueSize << "_" << numFpQueues
       << "x" << fpQueueSize;
    if (distributedFus)
        os << "_distr";
    return os.str();
}

std::unique_ptr<IssueScheme>
makeScheme(const SchemeConfig &config)
{
    switch (config.kind) {
      case SchemeConfig::Kind::Cam:
        return std::make_unique<CamIssueScheme>(config.camIntEntries,
                                                config.camFpEntries);
      case SchemeConfig::Kind::IssueFifo:
        return std::make_unique<FifoIssueScheme>(config);
      case SchemeConfig::Kind::LatFifo:
        return std::make_unique<LatFifoIssueScheme>(config);
      case SchemeConfig::Kind::MixBuff:
        return std::make_unique<MixBuffIssueScheme>(config);
    }
    return nullptr;
}

} // namespace diq::core

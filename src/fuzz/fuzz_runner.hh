/**
 * @file
 * The fuzzing campaign driver behind `diq fuzz`: generate a workload
 * per seed, differential-check every scheme on it, and auto-shrink any
 * violation to a minimal replayable reproducer
 * (docs/ARCHITECTURE.md §9).
 *
 * Per seed: resolve `fuzz:<seed>` through the workload machinery, run
 * fuzz::runDifferential over the scheme set, and on violation
 * optionally (a) materialize the exact op stream, (b) confirm the
 * violation reproduces on the finite replay, (c) shrink it with
 * fuzz::shrinkOps, and (d) write the shrunk stream as a `.diqt` trace
 * — ready to be committed under tests/regression_traces/.
 *
 * Determinism contract: runFuzz with the same options produces the
 * same summary (modulo elapsed wall-clock), and re-running any single
 * seed reproduces its result byte-identically — the whole pipeline
 * sits on the explicitly seeded fuzz: generator.
 */

#ifndef DIQ_FUZZ_FUZZ_RUNNER_HH
#define DIQ_FUZZ_FUZZ_RUNNER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/differential.hh"

namespace diq::fuzz
{

/** One fuzzing campaign. */
struct FuzzOptions
{
    /** Inclusive seed window; each seed becomes `fuzz:<seed>`. */
    uint64_t seedBegin = 0;
    uint64_t seedEnd = 99;

    /** Per-scheme simulation budgets (see DiffOptions). */
    uint64_t warmupInsts = 300;
    uint64_t measureInsts = 3000;

    /** Shrink violations to minimal `.diqt` reproducers? */
    bool shrink = false;

    /** Predicate-evaluation cap per shrink (each one simulates). */
    size_t shrinkBudget = 600;

    /** Wall-clock cap in seconds; 0 = unlimited. Checked between
     *  seeds, so one seed may finish past the cap. */
    double timeBudgetSec = 0;

    /** Scheme presets under test; empty = defaultDiffSchemes(). */
    std::vector<std::string> schemes;

    /** See DiffOptions::ipcSlack. */
    double ipcSlack = 0.02;

    /** Violation artifacts (counter dumps, divergence info). */
    std::string artifactDir = "golden_failures";
    bool writeArtifacts = true;

    /** Where shrunk reproducer traces are written. */
    std::string traceDir = "fuzz_traces";

    /** When set, violation lines are streamed here as found. */
    std::ostream *progress = nullptr;
};

/** One recorded violation (one Violation of one seed's DiffReport). */
struct FuzzViolationRecord
{
    uint64_t seed = 0;
    std::string bench;     ///< the fuzz: token
    std::string invariant; ///< catalog id (differential.hh)
    std::string scheme;
    std::string detail;
    long divergeIndex = -1;

    /** True when the violation reproduced on the materialized finite
     *  replay of the stream (precondition for trusting the shrink). */
    bool reproduced = false;
    /** Shrunk reproducer trace, when shrinking ran and reproduced. */
    std::string shrunkTracePath;
    uint64_t shrunkOps = 0;

    /** Artifact files written for this seed's report. */
    std::vector<std::string> artifacts;
};

/** Campaign outcome. */
struct FuzzSummary
{
    uint64_t seedBegin = 0;
    uint64_t seedEnd = 0;
    uint64_t seedsRun = 0;
    bool timeBudgetHit = false;

    uint64_t warmupInsts = 0;
    uint64_t measureInsts = 0;
    std::string baseline;
    std::vector<std::string> schemes;

    std::vector<FuzzViolationRecord> violations;
    double elapsedSec = 0;

    bool clean() const { return violations.empty(); }

    /** Machine-readable summary (the `--json` payload and the CI
     *  artifact format). */
    std::string toJson() const;
};

/** Run the campaign. @throws only on configuration errors (bad
 *  seed window); per-seed simulation cannot throw for fuzz: tokens. */
FuzzSummary runFuzz(const FuzzOptions &opts);

} // namespace diq::fuzz

#endif // DIQ_FUZZ_FUZZ_RUNNER_HH

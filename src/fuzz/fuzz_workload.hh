/**
 * @file
 * Generative workload space: the `fuzz:` bench token.
 *
 * The adversarial scenario catalog (trace/scenarios.hh) is ten
 * hand-built points in workload space; this module makes the space
 * *generator-defined*. A `fuzz:<seed>` token names a random but fully
 * reproducible phase graph over the same stressor axes the scenarios
 * attack by hand — dependence-chain depth, steering entropy (DDG
 * width, cross links), LSQ pressure (load/store mix, random addresses,
 * pointer chasing, footprint), branch churn, op-class mix and phase
 * lengths — so the differential harness (fuzz/differential.hh) can
 * search the interaction space instead of asserting on fixed inputs.
 *
 * Token grammar (docs/ARCHITECTURE.md §9):
 *
 *   fuzz-token := "fuzz:" <seed> (":" <knob>)*
 *   knob       := "phases=" <1..8> | "ops=" <64..1000000>
 *
 * `seed` is a decimal uint64. `phases=` pins the number of phases
 * (otherwise drawn from the seed in [1, 3]); `ops=` pins the ops per
 * phase (otherwise drawn in [512, 4096]). Knobs canonicalize in the
 * order above, so the token round-trips through
 * spec::ExperimentSpec like every other bench token.
 *
 * Determinism contract: every stochastic choice on the fuzz route
 * flows from ONE documented PRNG, std::mt19937_64 seeded with the
 * token's seed. Only raw engine draws are used (reduced with explicit
 * arithmetic in this module) — never std::uniform_*_distribution,
 * whose outputs are implementation-defined and would make
 * `fuzz:<seed>` mean different workloads on different stdlibs. The
 * per-phase stream seeds are themselves engine draws, passed
 * explicitly to SyntheticWorkload (not derived from profile names),
 * so the plumbing is seed -> plan -> phase streams with no hidden
 * entropy source (no rand(), no time, no address-space randomness).
 */

#ifndef DIQ_FUZZ_FUZZ_WORKLOAD_HH
#define DIQ_FUZZ_FUZZ_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/synthetic.hh"
#include "trace/trace_source.hh"

namespace diq::fuzz
{

/** Workload-token prefix understood by trace::makeWorkload(). */
inline constexpr std::string_view kFuzzPrefix = "fuzz:";

/** Drawn-value bounds, exposed so tests pin the documented ranges. */
inline constexpr int kMaxDrawnPhases = 3;
inline constexpr int kMaxPhases = 8;
inline constexpr uint64_t kMinDrawnOpsPerPhase = 512;
inline constexpr uint64_t kMaxDrawnOpsPerPhase = 4096;
inline constexpr uint64_t kMinOpsPerPhase = 64;
inline constexpr uint64_t kMaxOpsPerPhase = 1'000'000;

/** Parsed form of a `fuzz:` token. */
struct FuzzSpec
{
    uint64_t seed = 0;
    int phases = 0;           ///< 0 = draw from seed in [1, kMaxDrawnPhases]
    uint64_t opsPerPhase = 0; ///< 0 = draw from seed in the drawn range

    bool operator==(const FuzzSpec &) const = default;

    /**
     * Parse a full token ("fuzz:7" or "fuzz:7:phases=2:ops=1000").
     * @throws std::invalid_argument naming the defective part.
     */
    static FuzzSpec parse(const std::string &token);

    /** Canonical token: knobs in grammar order, defaults omitted.
     *  parse(canonical()) == *this. */
    std::string canonical() const;
};

/**
 * The resolved phase graph for a FuzzSpec: everything the generator
 * drew, exposed so property tests can assert the documented bounds
 * without re-deriving the drawing procedure.
 */
struct FuzzPlan
{
    FuzzSpec spec;
    uint64_t opsPerPhase = 0;
    /** One profile per phase, knobs within the bounds documented in
     *  planFuzz(); profile register demand always fits the synthetic
     *  generator's rotating pools. */
    std::vector<trace::BenchmarkProfile> profiles;
    /** Explicit per-phase stream seeds (raw mt19937_64 draws). */
    std::vector<uint64_t> phaseSeeds;
};

/**
 * Resolve a FuzzSpec to its phase graph deterministically. Knob
 * ranges (all drawn from std::mt19937_64(seed), see the header
 * comment): parChains 1..6 with parChains*chainLen <= 16 (so the
 * rotating register pools can never collide), loads/stores 0..4 per
 * iteration, extraBranches 0..4, footprint in {32 KB .. 16 MB},
 * innerIters in {8 .. 256}, codeBlocks in {1 .. 32}.
 */
FuzzPlan planFuzz(const FuzzSpec &spec);

/** True for `fuzz:` bench tokens. */
bool isFuzzToken(const std::string &bench);

/**
 * Validate a `fuzz:` token cheaply (syntax + knob ranges, no workload
 * construction) — called at spec-parse and grid-build time.
 * @throws std::invalid_argument with a precise message.
 */
void validateFuzzToken(const std::string &token);

/**
 * Instantiate the workload for a `fuzz:` token: the planned phase
 * graph as a PhasedTrace of explicitly-seeded SyntheticWorkloads
 * (a single-phase plan is the bare workload). The source is infinite
 * and reset() replays it exactly; its name() is the canonical token.
 * @throws std::invalid_argument for a malformed token.
 */
std::unique_ptr<trace::TraceSource>
makeFuzzWorkload(const std::string &token);

} // namespace diq::fuzz

#endif // DIQ_FUZZ_FUZZ_WORKLOAD_HH

/**
 * @file
 * Implementation of fuzz/fuzz_workload.hh: the `fuzz:` token parser
 * and the seeded phase-graph generator (docs/ARCHITECTURE.md §9).
 */

#include "fuzz/fuzz_workload.hh"

#include <random>
#include <stdexcept>

#include "trace/scenarios.hh"

namespace diq::fuzz
{

namespace
{

constexpr uint64_t KB = 1024;
constexpr uint64_t MB = 1024 * 1024;

/**
 * Uniform-ish integer in [0, bound) from raw mt19937_64 output.
 * Plain modulo reduction: the bias for bound <= a few thousand is
 * ~2^-52 and irrelevant for workload synthesis, while the arithmetic
 * is exactly specified — unlike std::uniform_int_distribution, whose
 * algorithm (and therefore the generated workload) varies by stdlib.
 */
uint64_t
draw(std::mt19937_64 &eng, uint64_t bound)
{
    return eng() % bound;
}

/** Uniform integer in [lo, hi] inclusive. */
uint64_t
drawRange(std::mt19937_64 &eng, uint64_t lo, uint64_t hi)
{
    return lo + draw(eng, hi - lo + 1);
}

/** Pick one element of a fixed menu. */
template <typename T, size_t N>
T
pick(std::mt19937_64 &eng, const T (&menu)[N])
{
    return menu[draw(eng, N)];
}

/** Bernoulli with probability num/den, from one raw draw. */
bool
chance(std::mt19937_64 &eng, uint64_t num, uint64_t den)
{
    return draw(eng, den) < num;
}

[[noreturn]] void
badToken(const std::string &token, const std::string &why)
{
    throw std::invalid_argument("bad fuzz token '" + token + "': " +
                                why);
}

/** Strict decimal uint64 parse; rejects empty/sign/overflow. */
uint64_t
parseU64(const std::string &token, const std::string &text,
         const std::string &what)
{
    if (text.empty())
        badToken(token, "empty " + what);
    for (char c : text)
        if (c < '0' || c > '9')
            badToken(token, "'" + text + "' is not a decimal " + what);
    try {
        size_t pos = 0;
        uint64_t v = std::stoull(text, &pos);
        if (pos != text.size())
            badToken(token, "'" + text + "' is not a decimal " + what);
        return v;
    } catch (const std::invalid_argument &) {
        badToken(token, "'" + text + "' is not a decimal " + what);
    } catch (const std::out_of_range &) {
        badToken(token, "'" + text + "' overflows a uint64 " + what);
    }
}

/**
 * One phase profile, every knob a raw engine draw. The draw *order*
 * is part of the `fuzz:` contract: reordering or adding draws changes
 * what every seed means, so extensions must append new axes after the
 * existing ones (and bump nothing — old seeds simply gain new
 * behavior, exactly like regenerating a corpus).
 */
trace::BenchmarkProfile
drawProfile(std::mt19937_64 &eng, const std::string &name)
{
    trace::BenchmarkProfile p;
    p.name = name;

    // Op-class mix and suite type.
    p.isFp = chance(eng, 1, 2);
    static const double multMenu[] = {0.0, 0.1, 0.25};
    static const double divMenu[] = {0.0, 0.1, 0.5};
    p.multFrac = pick(eng, multMenu);
    p.divFrac = pick(eng, divMenu);

    // Dependence-graph shape (steer entropy + chain depth). The
    // parChains*chainLen <= 16 cap keeps the per-body register demand
    // under the rotating pools (27 INT / 32 FP) for every draw, so
    // SyntheticWorkload::validateLayout can never reject a plan.
    p.parChains = static_cast<int>(drawRange(eng, 1, 6));
    uint64_t maxLen =
        std::min<uint64_t>(6, 16 / static_cast<uint64_t>(p.parChains));
    p.chainLen = static_cast<int>(drawRange(eng, 1, maxLen));
    p.crossIterChains = chance(eng, 1, 2);
    static const double crossMenu[] = {0.0, 0.1, 0.2, 0.4};
    p.crossLinkFrac = pick(eng, crossMenu);
    // Mixed INT/FP codes (eon/mesa-like) with probability 1/4.
    if (chance(eng, 1, 4))
        p.fpChains = static_cast<int>(
            draw(eng, static_cast<uint64_t>(p.parChains) + 1));

    // Memory behaviour (LSQ pressure).
    p.loadsPerIter = static_cast<int>(draw(eng, 5));
    p.storesPerIter = static_cast<int>(draw(eng, 5));
    static const uint64_t footMenu[] = {32 * KB, 256 * KB, 2 * MB,
                                        16 * MB};
    p.footprint = pick(eng, footMenu);
    static const double randMenu[] = {0.0, 0.5, 1.0};
    p.randomAccessFrac = pick(eng, randMenu);
    p.pointerChase = chance(eng, 1, 4);
    static const int strideMenu[] = {8, 16, 64};
    p.strideBytes = pick(eng, strideMenu);

    // Control behaviour (branch churn + code footprint).
    p.extraBranches = static_cast<int>(draw(eng, 5));
    static const double biasMenu[] = {0.5, 0.7, 0.9, 0.98};
    p.branchBias = pick(eng, biasMenu);
    static const int iterMenu[] = {8, 16, 64, 256};
    p.innerIters = pick(eng, iterMenu);
    static const int blockMenu[] = {1, 2, 8, 32};
    p.codeBlocks = pick(eng, blockMenu);
    p.intOverhead = static_cast<int>(drawRange(eng, 1, 3));

    return p;
}

} // namespace

FuzzSpec
FuzzSpec::parse(const std::string &token)
{
    if (!token.starts_with(kFuzzPrefix))
        badToken(token, "missing 'fuzz:' prefix");
    std::string body = token.substr(kFuzzPrefix.size());

    // Split on ':' — seed first, then knobs.
    std::vector<std::string> parts;
    std::string::size_type start = 0;
    while (start <= body.size()) {
        auto colon = body.find(':', start);
        if (colon == std::string::npos)
            colon = body.size();
        parts.push_back(body.substr(start, colon - start));
        start = colon + 1;
    }

    FuzzSpec spec;
    spec.seed = parseU64(token, parts[0], "seed");
    bool seen_phases = false, seen_ops = false;
    for (size_t i = 1; i < parts.size(); ++i) {
        const std::string &knob = parts[i];
        auto eq = knob.find('=');
        if (eq == std::string::npos)
            badToken(token, "knob '" + knob +
                     "' is not key=value (known: phases, ops)");
        std::string key = knob.substr(0, eq);
        std::string value = knob.substr(eq + 1);
        if (key == "phases") {
            if (seen_phases)
                badToken(token, "duplicate knob 'phases'");
            seen_phases = true;
            uint64_t v = parseU64(token, value, "phase count");
            if (v < 1 || v > static_cast<uint64_t>(kMaxPhases))
                badToken(token, "phases=" + value + " out of range [1, " +
                         std::to_string(kMaxPhases) + "]");
            spec.phases = static_cast<int>(v);
        } else if (key == "ops") {
            if (seen_ops)
                badToken(token, "duplicate knob 'ops'");
            seen_ops = true;
            uint64_t v = parseU64(token, value, "ops-per-phase count");
            if (v < kMinOpsPerPhase || v > kMaxOpsPerPhase)
                badToken(token, "ops=" + value + " out of range [" +
                         std::to_string(kMinOpsPerPhase) + ", " +
                         std::to_string(kMaxOpsPerPhase) + "]");
            spec.opsPerPhase = v;
        } else {
            badToken(token, "unknown knob '" + key +
                     "' (known: phases, ops)");
        }
    }
    return spec;
}

std::string
FuzzSpec::canonical() const
{
    std::string s = std::string(kFuzzPrefix) + std::to_string(seed);
    if (phases > 0)
        s += ":phases=" + std::to_string(phases);
    if (opsPerPhase > 0)
        s += ":ops=" + std::to_string(opsPerPhase);
    return s;
}

FuzzPlan
planFuzz(const FuzzSpec &spec)
{
    // The single documented PRNG of the fuzz route (header comment):
    // every knob below is a raw mt19937_64 draw in a fixed order.
    std::mt19937_64 eng(spec.seed);

    FuzzPlan plan;
    plan.spec = spec;

    int phases = spec.phases > 0
        ? spec.phases
        : static_cast<int>(drawRange(
              eng, 1, static_cast<uint64_t>(kMaxDrawnPhases)));
    plan.opsPerPhase = spec.opsPerPhase > 0
        ? spec.opsPerPhase
        : drawRange(eng, kMinDrawnOpsPerPhase, kMaxDrawnOpsPerPhase);

    std::string base = spec.canonical();
    for (int i = 0; i < phases; ++i) {
        plan.profiles.push_back(
            drawProfile(eng, base + "#p" + std::to_string(i)));
        plan.phaseSeeds.push_back(eng());
    }
    return plan;
}

bool
isFuzzToken(const std::string &bench)
{
    return bench.starts_with(kFuzzPrefix);
}

void
validateFuzzToken(const std::string &token)
{
    (void)FuzzSpec::parse(token); // throws on any defect
}

std::unique_ptr<trace::TraceSource>
makeFuzzWorkload(const std::string &token)
{
    FuzzSpec spec = FuzzSpec::parse(token);
    FuzzPlan plan = planFuzz(spec);

    std::vector<std::unique_ptr<trace::TraceSource>> phases;
    for (size_t i = 0; i < plan.profiles.size(); ++i)
        phases.push_back(std::make_unique<trace::SyntheticWorkload>(
            plan.profiles[i], plan.phaseSeeds[i]));

    if (phases.size() == 1) {
        // A single-phase graph is the bare stream, but it must still
        // report the canonical token as its name.
        class Named : public trace::TraceSource
        {
          public:
            Named(std::unique_ptr<trace::TraceSource> inner,
                  std::string name)
                : inner_(std::move(inner)), name_(std::move(name))
            {
            }
            bool next(trace::MicroOp &out) override
            {
                return inner_->next(out);
            }
            void reset() override { inner_->reset(); }
            const std::string &name() const override { return name_; }

          private:
            std::unique_ptr<trace::TraceSource> inner_;
            std::string name_;
        };
        return std::make_unique<Named>(std::move(phases[0]),
                                       spec.canonical());
    }
    return std::make_unique<trace::PhasedTrace>(
        std::move(phases), plan.opsPerPhase, spec.canonical());
}

} // namespace diq::fuzz

/**
 * @file
 * Implementation of fuzz/fuzz_runner.hh (docs/ARCHITECTURE.md §9).
 */

#include "fuzz/fuzz_runner.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "fuzz/fuzz_workload.hh"
#include "fuzz/shrink.hh"
#include "trace/file_trace.hh"

namespace diq::fuzz
{

namespace
{

/** Ops to materialize for the finite replay: enough to cover the
 *  budgets plus the front-end's fetch-ahead (fetch queue + ROB) and
 *  the commit-target overshoot, with generous margin. */
uint64_t
materializeCount(const FuzzOptions &opts)
{
    return opts.warmupInsts + opts.measureInsts + 4096;
}

std::vector<trace::MicroOp>
materialize(const std::string &bench, uint64_t count)
{
    auto source = makeFuzzWorkload(bench);
    std::vector<trace::MicroOp> ops;
    ops.reserve(count);
    trace::MicroOp op;
    // fuzz: workloads are infinite; the guard is belt and braces.
    for (uint64_t i = 0; i < count && source->next(op); ++i)
        ops.push_back(op);
    return ops;
}

std::string
writeShrunkTrace(const FuzzOptions &opts, uint64_t seed,
                 const std::vector<trace::MicroOp> &ops)
{
    std::filesystem::create_directories(opts.traceDir);
    const std::string path =
        opts.traceDir + "/fuzz_" + std::to_string(seed) +
        "_shrunk.diqt";
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw trace::TraceError("cannot open '" + path +
                                "' for writing");
    trace::TraceWriter writer(os, "fuzz:" + std::to_string(seed) +
                                      ":shrunk");
    for (const auto &op : ops)
        writer.append(op);
    writer.finalize();
    return path;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

std::string
FuzzSummary::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"seed_begin\": " << seedBegin << ",\n";
    os << "  \"seed_end\": " << seedEnd << ",\n";
    os << "  \"seeds_run\": " << seedsRun << ",\n";
    os << "  \"time_budget_hit\": "
       << (timeBudgetHit ? "true" : "false") << ",\n";
    os << "  \"warmup_insts\": " << warmupInsts << ",\n";
    os << "  \"measure_insts\": " << measureInsts << ",\n";
    os << "  \"baseline\": \"" << jsonEscape(baseline) << "\",\n";
    os << "  \"schemes\": [";
    for (size_t i = 0; i < schemes.size(); ++i)
        os << (i ? ", " : "") << '"' << jsonEscape(schemes[i]) << '"';
    os << "],\n";
    os << "  \"elapsed_sec\": " << elapsedSec << ",\n";
    os << "  \"clean\": " << (clean() ? "true" : "false") << ",\n";
    os << "  \"violations\": [";
    for (size_t i = 0; i < violations.size(); ++i) {
        const auto &v = violations[i];
        os << (i ? "," : "") << "\n    {\n";
        os << "      \"seed\": " << v.seed << ",\n";
        os << "      \"bench\": \"" << jsonEscape(v.bench) << "\",\n";
        os << "      \"invariant\": \"" << jsonEscape(v.invariant)
           << "\",\n";
        os << "      \"scheme\": \"" << jsonEscape(v.scheme)
           << "\",\n";
        os << "      \"diverge_index\": " << v.divergeIndex << ",\n";
        os << "      \"reproduced\": "
           << (v.reproduced ? "true" : "false") << ",\n";
        os << "      \"shrunk_trace\": \""
           << jsonEscape(v.shrunkTracePath) << "\",\n";
        os << "      \"shrunk_ops\": " << v.shrunkOps << ",\n";
        os << "      \"artifacts\": [";
        for (size_t j = 0; j < v.artifacts.size(); ++j)
            os << (j ? ", " : "") << '"' << jsonEscape(v.artifacts[j])
               << '"';
        os << "],\n";
        os << "      \"detail\": \"" << jsonEscape(v.detail)
           << "\"\n    }";
    }
    os << (violations.empty() ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

FuzzSummary
runFuzz(const FuzzOptions &opts)
{
    if (opts.seedEnd < opts.seedBegin)
        throw std::invalid_argument(
            "fuzz seed window is empty: end " +
            std::to_string(opts.seedEnd) + " < begin " +
            std::to_string(opts.seedBegin));

    DiffOptions diff;
    diff.schemes = opts.schemes;
    diff.warmupInsts = opts.warmupInsts;
    diff.measureInsts = opts.measureInsts;
    diff.ipcSlack = opts.ipcSlack;
    diff.artifactDir = opts.artifactDir;
    diff.writeArtifacts = opts.writeArtifacts;

    FuzzSummary summary;
    summary.seedBegin = opts.seedBegin;
    summary.seedEnd = opts.seedEnd;
    summary.warmupInsts = opts.warmupInsts;
    summary.measureInsts = opts.measureInsts;
    summary.baseline = diff.baseline;
    summary.schemes =
        opts.schemes.empty() ? defaultDiffSchemes() : opts.schemes;

    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&start] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    for (uint64_t seed = opts.seedBegin; seed <= opts.seedEnd;
         ++seed) {
        if (opts.timeBudgetSec > 0 &&
            elapsed() > opts.timeBudgetSec) {
            summary.timeBudgetHit = true;
            if (opts.progress)
                *opts.progress
                    << "fuzz: time budget hit after "
                    << summary.seedsRun << " seeds\n";
            break;
        }

        const std::string bench = "fuzz:" + std::to_string(seed);
        DiffReport report = runDifferential(bench, diff);
        ++summary.seedsRun;
        if (report.ok())
            continue;

        if (opts.progress)
            *opts.progress << "fuzz: seed " << seed << ": "
                           << report.violations.size()
                           << " violation(s)\n";

        // Shrink once per seed, targeting the union of the seed's
        // violated invariants: a candidate still fails if it violates
        // any of them (on any scheme — a shrunk stream may shift the
        // failure between schemes without becoming less of a bug).
        std::string shrunkPath;
        uint64_t shrunkOps = 0;
        bool reproduced = false;
        if (opts.shrink) {
            std::set<std::string> invariants;
            for (const auto &v : report.violations)
                invariants.insert(v.invariant);

            DiffOptions replay = diff;
            replay.writeArtifacts = false;
            auto stillFails =
                [&](const std::vector<trace::MicroOp> &candidate) {
                    auto r = runDifferentialOnOps(candidate, bench,
                                                  replay);
                    for (const auto &v : r.violations)
                        if (invariants.count(v.invariant))
                            return true;
                    return false;
                };

            auto fullOps =
                materialize(bench, materializeCount(opts));
            reproduced = stillFails(fullOps);
            if (reproduced) {
                ShrinkOptions so;
                so.maxCandidates = opts.shrinkBudget;
                auto outcome =
                    shrinkOps(std::move(fullOps), stillFails, so);
                shrunkPath =
                    writeShrunkTrace(opts, seed, outcome.ops);
                shrunkOps = outcome.ops.size();
                if (opts.progress)
                    *opts.progress
                        << "fuzz: seed " << seed << ": shrunk to "
                        << shrunkOps << " ops -> " << shrunkPath
                        << "\n";
            } else if (opts.progress) {
                *opts.progress
                    << "fuzz: seed " << seed
                    << ": violation did not reproduce on the finite"
                       " replay; not shrunk\n";
            }
        }

        for (const auto &v : report.violations) {
            FuzzViolationRecord rec;
            rec.seed = seed;
            rec.bench = bench;
            rec.invariant = v.invariant;
            rec.scheme = v.scheme;
            rec.detail = v.detail;
            rec.divergeIndex = v.divergeIndex;
            rec.reproduced = reproduced;
            rec.shrunkTracePath = shrunkPath;
            rec.shrunkOps = shrunkOps;
            rec.artifacts = report.artifacts;
            summary.violations.push_back(std::move(rec));
        }
    }

    summary.elapsedSec = elapsed();
    return summary;
}

} // namespace diq::fuzz

/**
 * @file
 * Differential scheme checking: run every issue-queue organization on
 * one workload and check cross-scheme invariants, instead of
 * asserting on fixed outputs.
 *
 * The paper's claim is relational — low-complexity distributed queues
 * *track* an idealized CAM queue — so the natural oracle is another
 * scheme, not a golden file. For any workload the paper's machine
 * model can consume, these invariants must hold (the catalog, with
 * the reasoning for each, is in docs/ARCHITECTURE.md §9):
 *
 *  determinism       Two simulations of the same (scheme, workload,
 *                    budgets) produce byte-identical counter dumps.
 *                    Everything downstream assumes this; a violation
 *                    means hidden entropy leaked into the model.
 *  retired-stream    Every scheme retires the same instruction stream
 *                    as the unbounded baseline (compared op by op over
 *                    the common prefix). Issue logic reorders *issue*,
 *                    never architectural commit; a divergence means an
 *                    op was dropped, duplicated or reordered at
 *                    retirement.
 *  ipc-above-baseline  No bounded scheme beats the unbounded CAM
 *                    baseline on IPC (beyond a small documented
 *                    slack): the baseline can issue anything issuable,
 *                    so a bounded scheme winning means the baseline
 *                    model lost work somewhere.
 *  issue-histogram   The issue-width histogram buckets sum to exactly
 *                    the cycle count (one bucket per cycle), and the
 *                    width-weighted bucket sum never exceeds the
 *                    issued-op count — the EventId counter bank's
 *                    conservation identity for issue accounting.
 *  mux-conservation  The per-FU-class mux drive events sum to exactly
 *                    the issued-op count: every issued op is
 *                    attributed to exactly one FU class in the energy
 *                    model (energy cannot be created or lost between
 *                    issue and the Figure 9-11 component breakdown).
 *  mispredict-bound  Mispredicts never exceed branches; diag.mispred
 *                    count matches the pipeline's mispredict counter.
 *  liveness          The run commits work and the deadlock cycle-cap
 *                    never fires.
 *
 * On violation, both schemes' full counter dumps and the first
 * diverging retired-op index are written under `artifactDir`
 * (golden_failures/ by convention — the same artifact pattern the
 * counter-golden suite uses, so CI uploads them uniformly).
 */

#ifndef DIQ_FUZZ_DIFFERENTIAL_HH
#define DIQ_FUZZ_DIFFERENTIAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/sim_job.hh"
#include "trace/isa.hh"

namespace diq::fuzz
{

/** How to run one differential check. */
struct DiffOptions
{
    /** Scheme presets under test; empty = defaultDiffSchemes(). */
    std::vector<std::string> schemes;

    /** The reference preset every scheme is compared against. */
    std::string baseline = "unbounded";

    uint64_t warmupInsts = 300;
    uint64_t measureInsts = 3000;

    /**
     * Relative slack on the ipc-above-baseline check. A bounded
     * scheme can legitimately edge past the unbounded baseline by a
     * scheduling anomaly: FIFO selection may issue a mispredicted
     * branch *earlier* than the CAM's oldest-first select, unblocking
     * fetch sooner. The invariant is "does not *beat* the baseline",
     * not "is never a hair above it". Default is the empirical
     * envelope over the 500-seed acceptance window (max observed
     * anomaly 1.5%) with headroom — at the default budgets. Shorter
     * measure windows inflate the anomaly (seed 335 reaches 5.5%
     * above baseline at 2500 measured insts), so runs shrinking
     * --insts should widen --ipc-slack to match.
     */
    double ipcSlack = 0.02;

    /**
     * True when every run consumes its whole (finite) stream and
     * drains the pipeline. Enables the boundary-sensitive identities:
     * stats.mispredicts counts at fetch time, diag.mispred_count at
     * execution-complete time, so on a *windowed* run a branch in
     * flight across the resetStats() boundary (or at the measure-end
     * stop) legitimately lands in one window but not the other. Only
     * a full drain makes the two counts comparable.
     * runDifferentialOnOps sets this; runDifferential cannot.
     */
    bool exhaustive = false;

    /** Where violation artifacts go (created on demand). */
    std::string artifactDir = "golden_failures";

    /** Write artifact files on violation? (Tests usually say no.) */
    bool writeArtifacts = false;
};

/** One invariant violation. */
struct Violation
{
    std::string invariant; ///< catalog id, e.g. "retired-stream"
    std::string scheme;    ///< offending preset name
    std::string detail;    ///< human-readable specifics
    /** First diverging retired-op index (retired-stream only). */
    long divergeIndex = -1;
};

/** One scheme's executed run within a differential check. */
struct SchemeRun
{
    std::string preset;
    runner::SimResult result;
    /** Full comparable dump: headline stats + every non-zero counter. */
    std::string dump;
    /** Retired ops captured over the whole run (warm-up + measure). */
    uint64_t retiredOps = 0;
};

/** Outcome of one differential check. */
struct DiffReport
{
    std::string bench;             ///< workload label/token
    std::vector<SchemeRun> runs;   ///< baseline first, then schemes
    std::vector<Violation> violations;
    std::vector<std::string> artifacts; ///< files written, if any

    bool ok() const { return violations.empty(); }
};

/** The presets checked by default: every organization the paper
 *  evaluates (CAM baseline, FIFO family, both distributed variants). */
const std::vector<std::string> &defaultDiffSchemes();

/** Headline stats + full counter dump as one comparable string. */
std::string dumpOf(const runner::SimResult &r);

/**
 * Run the differential check on a bench token (benchmark name,
 * `scenario:`, `trace:`, `fuzz:`). Each scheme gets a fresh workload
 * instantiation, so the token must be reproducible (all are).
 * @throws whatever workload resolution throws for a bad token.
 */
DiffReport runDifferential(const std::string &bench,
                           const DiffOptions &opts);

/**
 * Run the differential check on a materialized op vector (the
 * shrinker's re-check path). Budgets: warm-up 0, measured region =
 * ops.size() — the whole vector, run to exhaustion.
 */
DiffReport runDifferentialOnOps(const std::vector<trace::MicroOp> &ops,
                                const std::string &label,
                                const DiffOptions &opts);

} // namespace diq::fuzz

#endif // DIQ_FUZZ_DIFFERENTIAL_HH

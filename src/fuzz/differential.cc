/**
 * @file
 * Implementation of fuzz/differential.hh: the cross-scheme invariant
 * checker of the fuzzing harness (docs/ARCHITECTURE.md §9).
 */

#include "fuzz/differential.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>

#include "power/events.hh"
#include "trace/scenarios.hh"
#include "trace/trace_source.hh"

namespace diq::fuzz
{

namespace
{

/** A reproducible way to mint fresh workload instances: each scheme
 *  (and the determinism re-run) must consume its own stream from the
 *  beginning. */
using WorkloadFactory =
    std::function<std::unique_ptr<trace::TraceSource>()>;

spec::ExperimentSpec
specFor(const std::string &preset, const std::string &bench,
        uint64_t warmup, uint64_t measure)
{
    // Presets are full scheme definitions, so one token is a complete
    // machine; budgets and benchmark are plain value fields.
    auto s = spec::ExperimentSpec::parse(preset);
    s.benchmark = bench;
    s.warmupInsts = warmup;
    s.measureInsts = measure;
    return s;
}

/** Field-by-field micro-op equality (MicroOp deliberately has no
 *  operator== — the trace tests compare with diagnostics instead). */
bool
sameOp(const trace::MicroOp &a, const trace::MicroOp &b)
{
    return a.pc == b.pc && a.op == b.op && a.src1 == b.src1 &&
           a.src2 == b.src2 && a.dest == b.dest &&
           a.memAddr == b.memAddr && a.memSize == b.memSize &&
           a.taken == b.taken && a.target == b.target;
}

/** Run one (preset, workload) pair, capturing the retired stream. */
SchemeRun
runScheme(const std::string &preset, const std::string &bench,
          const WorkloadFactory &factory, const DiffOptions &opts,
          std::vector<trace::MicroOp> &retiredOut)
{
    runner::SimJob job;
    job.exp =
        specFor(preset, bench, opts.warmupInsts, opts.measureInsts);
    job.profile.name = bench;

    retiredOut.clear();
    auto workload = factory();
    auto result = runner::simulateJob(
        job, *workload,
        [&retiredOut](core::InstIdx, const trace::MicroOp &op) {
            retiredOut.push_back(op);
        });

    SchemeRun run;
    run.preset = preset;
    run.result = result;
    run.dump = dumpOf(result);
    run.retiredOps = retiredOut.size();
    return run;
}

std::string
sanitizeLabel(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char c : label)
        out.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? c
                          : '_');
    return out;
}

/** golden_failures/-style artifact: write `text`, remember the path. */
void
writeArtifact(DiffReport &report, const DiffOptions &opts,
              const std::string &file, const std::string &text)
{
    if (!opts.writeArtifacts)
        return;
    std::filesystem::create_directories(opts.artifactDir);
    auto path = opts.artifactDir + "/" + file;
    std::ofstream out(path, std::ios::trunc);
    out << text;
    report.artifacts.push_back(path);
}

/** On a cross-scheme violation, dump both schemes' counters (and, for
 *  stream divergence, the first diverging retired-op index with both
 *  ops) so the failure is diagnosable from CI artifacts alone. */
void
writeMismatchArtifacts(DiffReport &report, const DiffOptions &opts,
                       const Violation &v, const SchemeRun &baseline,
                       const SchemeRun &scheme)
{
    const std::string stem =
        sanitizeLabel(report.bench) + "." + v.invariant + "." +
        sanitizeLabel(scheme.preset);
    writeArtifact(report, opts, stem + ".baseline.txt",
                  "# preset: " + baseline.preset + "\n" +
                      baseline.dump);
    writeArtifact(report, opts, stem + ".scheme.txt",
                  "# preset: " + scheme.preset + "\n" + scheme.dump);
    writeArtifact(report, opts, stem + ".violation.txt",
                  "bench: " + report.bench + "\ninvariant: " +
                      v.invariant + "\nscheme: " + scheme.preset +
                      "\ndiverge_index: " +
                      std::to_string(v.divergeIndex) + "\n" +
                      v.detail + "\n");
}

/** The per-run conservation identities over the EventId counter bank
 *  (reasoning in the header / docs/ARCHITECTURE.md §9). */
void
checkConservation(DiffReport &report, const DiffOptions &opts,
                  const SchemeRun &run)
{
    using power::EventId;
    const auto &st = run.result.stats;
    const auto &c = st.counters;

    auto violate = [&](const std::string &inv,
                       const std::string &detail) {
        Violation v;
        v.invariant = inv;
        v.scheme = run.preset;
        v.detail = detail;
        report.violations.push_back(v);
        writeMismatchArtifacts(report, opts, v, run, run);
    };

    // Issue-width histogram: exactly one bucket increment per cycle.
    uint64_t bucketSum = 0;
    uint64_t weightedSum = 0;
    for (size_t w = 0; w <= 9; ++w) {
        uint64_t b = c.get(power::issueWidthEvent(w));
        bucketSum += b;
        weightedSum += w * b;
    }
    if (bucketSum != st.cycles)
        violate("issue-histogram",
                "sum(diag.issue_bucket_*) = " +
                    std::to_string(bucketSum) + " != cycles = " +
                    std::to_string(st.cycles));
    // The 9+ bucket undercounts its cycles' true width, so the
    // weighted sum is a lower bound on issued ops.
    if (weightedSum > st.issuedOps)
        violate("issue-histogram",
                "width-weighted bucket sum " +
                    std::to_string(weightedSum) +
                    " exceeds issued ops " +
                    std::to_string(st.issuedOps));

    // Every issued op drives exactly one FU-class mux.
    const uint64_t muxSum = c.get(power::ev::MuxIntAlu) +
                            c.get(power::ev::MuxIntMul) +
                            c.get(power::ev::MuxFpAlu) +
                            c.get(power::ev::MuxFpMul);
    if (muxSum != st.issuedOps)
        violate("mux-conservation",
                "sum(mux.*) = " + std::to_string(muxSum) +
                    " != issued ops = " +
                    std::to_string(st.issuedOps));

    // Mispredict accounting: bounded by branches (both counted at
    // fetch, so this holds on any window)...
    if (st.mispredicts > st.branches)
        violate("mispredict-bound",
                "mispredicts " + std::to_string(st.mispredicts) +
                    " > branches " + std::to_string(st.branches));
    // ...and on a full-drain run, the execution-time diagnostic
    // counter agrees with the fetch-time statistic exactly (see
    // DiffOptions::exhaustive for why not on windowed runs).
    if (opts.exhaustive &&
        c.get(EventId::MispredCount) != st.mispredicts)
        violate("mispredict-bound",
                "diag.mispred_count = " +
                    std::to_string(c.get(EventId::MispredCount)) +
                    " != stats.mispredicts = " +
                    std::to_string(st.mispredicts));

    // Liveness: the run made progress and the deadlock cap never hit.
    if (st.deadlocked)
        violate("liveness", "deadlock watchdog fired");
    if (st.committed == 0)
        violate("liveness", "measured region committed 0 instructions");
}

DiffReport
runDifferentialImpl(const std::string &bench,
                    const WorkloadFactory &factory,
                    const DiffOptions &optsIn)
{
    DiffOptions opts = optsIn;
    if (opts.schemes.empty())
        opts.schemes = defaultDiffSchemes();

    DiffReport report;
    report.bench = bench;
    // References into runs (the baseline) outlive later push_backs.
    report.runs.reserve(opts.schemes.size() + 1);

    // Baseline first; its retired stream is the reference.
    std::vector<trace::MicroOp> baselineRetired;
    report.runs.push_back(runScheme(opts.baseline, bench, factory,
                                    opts, baselineRetired));
    const SchemeRun &baseline = report.runs.front();
    checkConservation(report, opts, baseline);

    // Determinism: a second, fresh simulation of the identical
    // (scheme, workload, budgets) triple must dump byte-identically.
    {
        std::vector<trace::MicroOp> retired2;
        SchemeRun again = runScheme(opts.baseline, bench, factory,
                                    opts, retired2);
        if (again.dump != baseline.dump) {
            Violation v;
            v.invariant = "determinism";
            v.scheme = opts.baseline;
            v.detail = "re-running the baseline produced a different "
                       "counter dump";
            report.violations.push_back(v);
            writeMismatchArtifacts(report, opts, v, baseline, again);
        }
    }

    const double ipcCap =
        baseline.result.ipc * (1.0 + opts.ipcSlack);

    for (const auto &preset : opts.schemes) {
        if (preset == opts.baseline)
            continue;
        std::vector<trace::MicroOp> retired;
        report.runs.push_back(
            runScheme(preset, bench, factory, opts, retired));
        const SchemeRun &run = report.runs.back();
        checkConservation(report, opts, run);

        // Retired-stream equality over the common prefix. The tail
        // lengths legitimately differ: Cpu::run() may overshoot its
        // commit target by up to commitWidth-1, and the overshoot
        // depends on the scheme's issue timing.
        const size_t n =
            std::min(baselineRetired.size(), retired.size());
        for (size_t i = 0; i < n; ++i) {
            if (sameOp(baselineRetired[i], retired[i]))
                continue;
            Violation v;
            v.invariant = "retired-stream";
            v.scheme = preset;
            v.divergeIndex = static_cast<long>(i);
            v.detail = "first divergence at retired-op index " +
                       std::to_string(i) + "\n  baseline: " +
                       baselineRetired[i].toString() + "\n  " +
                       preset + ": " + retired[i].toString();
            report.violations.push_back(v);
            writeMismatchArtifacts(report, opts, v, baseline, run);
            break;
        }

        // No bounded scheme beats the unbounded baseline.
        if (run.result.ipc > ipcCap) {
            Violation v;
            v.invariant = "ipc-above-baseline";
            v.scheme = preset;
            std::ostringstream os;
            os << "ipc " << run.result.ipc << " > baseline "
               << baseline.result.ipc << " * (1 + " << opts.ipcSlack
               << ")";
            v.detail = os.str();
            report.violations.push_back(v);
            writeMismatchArtifacts(report, opts, v, baseline, run);
        }
    }

    return report;
}

} // namespace

const std::vector<std::string> &
defaultDiffSchemes()
{
    static const std::vector<std::string> schemes = {
        "iq6464",           "issuefifo_8x8_8x16",
        "latfifo_8x8_8x16", "mixbuff_8x8_8x16",
        "if_distr",         "mb_distr",
    };
    return schemes;
}

std::string
dumpOf(const runner::SimResult &r)
{
    std::ostringstream os;
    os << "scheme=" << r.scheme << " cycles=" << r.stats.cycles
       << " committed=" << r.stats.committed
       << " issued=" << r.stats.issuedOps << " energy=" << std::fixed
       << r.energy.total() << "\n"
       << r.stats.counters.toString();
    return os.str();
}

DiffReport
runDifferential(const std::string &bench, const DiffOptions &opts)
{
    return runDifferentialImpl(
        bench, [&bench] { return trace::makeWorkload(bench); }, opts);
}

DiffReport
runDifferentialOnOps(const std::vector<trace::MicroOp> &ops,
                     const std::string &label, const DiffOptions &opts)
{
    DiffOptions o = opts;
    o.warmupInsts = 0;
    o.measureInsts = ops.size();
    o.exhaustive = true;
    return runDifferentialImpl(
        label,
        [&ops, &label] {
            return std::make_unique<trace::VectorTrace>(ops, label);
        },
        o);
}

} // namespace diq::fuzz

/**
 * @file
 * Greedy trace shrinking: reduce a violating op stream to a minimal
 * reproducer (docs/ARCHITECTURE.md §9).
 *
 * The algorithm is classic greedy delta debugging over the op vector,
 * specialized with one domain pass:
 *
 *   1. Chunk removal. Starting with chunks of half the stream and
 *      halving down to single ops, repeatedly try deleting each chunk
 *      and keep any deletion after which the predicate still fails.
 *      Because workload phases are contiguous runs of ops, large-chunk
 *      deletion is "drop a phase" and small-chunk deletion is "halve a
 *      phase" — the generator's structure falls out of plain chunking
 *      without the shrinker knowing about phases.
 *   2. Op simplification. Try rewriting expensive op classes to the
 *      cheapest class on the same pipe (IntMult/IntDiv -> IntAlu,
 *      FpMult/FpDiv -> FpAdd), first wholesale, then op by op.
 *      Register operands are kept, so dependences survive and the
 *      rewritten stream is still a valid workload.
 *
 * Both passes repeat until a full sweep makes no progress or the
 * candidate budget runs out. The predicate is an opaque callback
 * ("does this stream still violate?"), so the same shrinker serves
 * the differential harness and the unit tests' planted violations.
 */

#ifndef DIQ_FUZZ_SHRINK_HH
#define DIQ_FUZZ_SHRINK_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "trace/isa.hh"

namespace diq::fuzz
{

/** "Does this candidate stream still exhibit the failure?" Must be
 *  deterministic; it is called up to `maxCandidates` times. */
using ShrinkPredicate =
    std::function<bool(const std::vector<trace::MicroOp> &)>;

struct ShrinkOptions
{
    /** Hard cap on predicate evaluations (each one simulates). */
    size_t maxCandidates = 2000;
};

struct ShrinkOutcome
{
    /** The smallest failing stream found. */
    std::vector<trace::MicroOp> ops;
    /** Predicate evaluations spent. */
    size_t candidatesTried = 0;
    /** Full sweeps until fixpoint (diagnostic). */
    size_t rounds = 0;
};

/**
 * Shrink `ops` while `stillFails` holds. `stillFails(ops)` must be
 * true on entry (the caller verifies the violation reproduces on the
 * materialized stream first); if it is not, the input is returned
 * unchanged with candidatesTried == 1.
 */
ShrinkOutcome shrinkOps(std::vector<trace::MicroOp> ops,
                        const ShrinkPredicate &stillFails,
                        const ShrinkOptions &opts = {});

} // namespace diq::fuzz

#endif // DIQ_FUZZ_SHRINK_HH

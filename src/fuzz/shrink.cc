/**
 * @file
 * Implementation of fuzz/shrink.hh (docs/ARCHITECTURE.md §9).
 */

#include "fuzz/shrink.hh"

#include <algorithm>

namespace diq::fuzz
{

namespace
{

/** Cheapest op class on the same pipe, or the class itself. */
trace::OpClass
simplified(trace::OpClass op)
{
    using trace::OpClass;
    switch (op) {
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return OpClass::IntAlu;
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return OpClass::FpAdd;
      default:
        return op;
    }
}

struct Budget
{
    size_t left;
    bool
    spend()
    {
        if (left == 0)
            return false;
        --left;
        return true;
    }
};

/** One chunk-removal sweep; true if anything was deleted. */
bool
removalSweep(std::vector<trace::MicroOp> &ops,
             const ShrinkPredicate &stillFails, Budget &budget)
{
    bool progress = false;
    for (size_t chunk = std::max<size_t>(ops.size() / 2, 1); chunk >= 1;
         chunk /= 2) {
        for (size_t at = 0; at < ops.size();) {
            const size_t n = std::min(chunk, ops.size() - at);
            if (n == ops.size()) {
                // Never offer the empty stream.
                at += n;
                continue;
            }
            if (!budget.spend())
                return progress;
            std::vector<trace::MicroOp> candidate;
            candidate.reserve(ops.size() - n);
            candidate.insert(candidate.end(), ops.begin(),
                             ops.begin() + at);
            candidate.insert(candidate.end(), ops.begin() + at + n,
                             ops.end());
            if (stillFails(candidate)) {
                ops = std::move(candidate);
                progress = true;
                // Re-test the same offset: the next chunk slid in.
            } else {
                at += n;
            }
        }
        if (chunk == 1)
            break;
    }
    return progress;
}

/** One op-simplification sweep; true if anything was rewritten. */
bool
simplifySweep(std::vector<trace::MicroOp> &ops,
              const ShrinkPredicate &stillFails, Budget &budget)
{
    // Wholesale first: one candidate often removes every div/mult.
    std::vector<trace::MicroOp> all = ops;
    bool any = false;
    for (auto &op : all) {
        auto s = simplified(op.op);
        if (s != op.op) {
            op.op = s;
            any = true;
        }
    }
    if (any && budget.spend() && stillFails(all)) {
        ops = std::move(all);
        return true;
    }

    bool progress = false;
    for (size_t i = 0; i < ops.size(); ++i) {
        auto s = simplified(ops[i].op);
        if (s == ops[i].op)
            continue;
        if (!budget.spend())
            return progress;
        std::vector<trace::MicroOp> candidate = ops;
        candidate[i].op = s;
        if (stillFails(candidate)) {
            ops = std::move(candidate);
            progress = true;
        }
    }
    return progress;
}

} // namespace

ShrinkOutcome
shrinkOps(std::vector<trace::MicroOp> ops,
          const ShrinkPredicate &stillFails, const ShrinkOptions &opts)
{
    ShrinkOutcome out;
    Budget budget{opts.maxCandidates};

    budget.spend();
    if (!stillFails(ops)) {
        out.ops = std::move(ops);
        out.candidatesTried = opts.maxCandidates - budget.left;
        return out;
    }

    bool progress = true;
    while (progress && budget.left > 0) {
        ++out.rounds;
        progress = removalSweep(ops, stillFails, budget);
        progress |= simplifySweep(ops, stillFails, budget);
    }

    out.ops = std::move(ops);
    out.candidatesTried = opts.maxCandidates - budget.left;
    return out;
}

} // namespace diq::fuzz

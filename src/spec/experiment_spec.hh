/**
 * @file
 * Declarative experiment API: every experiment as a value.
 *
 * An ExperimentSpec bundles the full machine configuration
 * (sim::ProcessorConfig, which embeds the core::SchemeConfig under
 * study), the benchmark name and the warm-up/measure instruction
 * budgets — everything `runner::executeJob` needs. Specs serialize to
 * canonical ordered `key=value` text (`toText()`), parse back with
 * precise error reporting (`parse()`: unknown key, bad value,
 * out-of-range), and compare knob-wise (`operator==`), so
 * `parse(toText(s)) == s` holds for every spec.
 *
 * The spec grammar, shared by parse()/applyText() and the grid form
 * (runner::SweepSpec::fromText) and the `diq` CLI:
 *
 *   spec      := token*
 *   token     := preset-name | key "=" value
 *   comments  := '#' to end of line
 *
 * Tokens are whitespace-separated and apply left to right: a bare
 * preset name (spec/presets.hh) replaces the whole scheme
 * configuration, a `key=value` token sets one knob. Example:
 *
 *   mb_distr chains_per_queue=4 rob_size=512 bench=swim
 *
 * Every `SchemeConfig` and `ProcessorConfig` knob is reachable by
 * name; the single source of truth is keyRegistry(), which drives
 * serialization, parsing, `diq list keys` and the round-trip tests.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §8.
 */

#ifndef DIQ_SPEC_EXPERIMENT_SPEC_HH
#define DIQ_SPEC_EXPERIMENT_SPEC_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace diq::spec
{

/**
 * Spec-text parse failure. The message pinpoints the offending token:
 * "unknown key 'xyz'", "bad value 'abc' for key 'rob_size'",
 * "value 0 for key 'rob_size' out of range [1, 1048576]", ...
 */
class ParseError : public std::runtime_error
{
  public:
    explicit ParseError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** One experiment as a value: machine x benchmark x budgets. */
struct ExperimentSpec
{
    /** Machine under test; `processor.scheme` is the issue logic. */
    sim::ProcessorConfig processor{};

    /** Benchmark name from the synthetic suite (trace/spec2000.hh). */
    std::string benchmark = "swim";

    uint64_t warmupInsts = 30000;
    uint64_t measureInsts = 120000;

    /** Interval count for `diq run --intervals` / ckpt::runIntervals
     *  (1 = monolithic; docs/CHECKPOINTS.md). */
    uint32_t intervals = 1;

    /** Detailed warm-up instructions at each interval head in the
     *  warmup-seeded interval mode (docs/CHECKPOINTS.md). */
    uint64_t intervalWarmup = 2000;

    bool operator==(const ExperimentSpec &) const = default;

    /**
     * Canonical serialization: one `key=value` line per registry key,
     * in registry order. parse(toText()) reproduces the spec exactly.
     */
    std::string toText() const;

    /**
     * toText() on a single space-separated line — the canonical cache
     * key (runner::SimJob::key()) and a valid parse() input.
     */
    std::string canonicalLine() const;

    /**
     * Apply spec text (see the grammar above) on top of this spec.
     * @throws ParseError on unknown preset/key, bad value, range.
     */
    void applyText(const std::string &text);

    /** Set one knob by key name (or alias). @throws ParseError. */
    void set(const std::string &key, const std::string &value);

    /** Default spec + applyText(text). @throws ParseError. */
    static ExperimentSpec parse(const std::string &text);
};

/** Self-describing accessor for one ExperimentSpec knob. */
struct KeyInfo
{
    enum class Kind { Int, Bool, Choice };

    std::string name;                 ///< canonical key name
    std::vector<std::string> aliases; ///< accepted synonyms
    std::string doc;                  ///< one-liner for `diq list keys`
    Kind kind;

    // Valid-value domain (drives range errors and randomized tests).
    int64_t lo = 0, hi = 0;            ///< Kind::Int inclusive range
    std::vector<std::string> choices;  ///< Kind::Bool / Kind::Choice

    /** True when the key writes into `processor.scheme` — a preset
     *  value of the `scheme` key resets every one of these. */
    bool schemeScope = false;

    std::function<std::string(const ExperimentSpec &)> get;
    /** @throws ParseError on bad value / out of range. */
    std::function<void(ExperimentSpec &, const std::string &)> set;
};

/**
 * Every knob, in canonical serialization order: benchmark and budgets
 * first, then the scheme knobs, then the rest of Table 1.
 */
const std::vector<KeyInfo> &keyRegistry();

/**
 * Split spec text into tokens: whitespace-separated, `#` comments to
 * end of line. The one tokenizer behind applyText() and the grid
 * form (runner::SweepSpec::fromText), so the grammar cannot diverge.
 */
std::vector<std::string> tokenizeSpecText(const std::string &text);

/** Lookup by canonical name or alias; nullptr when unknown. */
const KeyInfo *findKey(const std::string &name);

} // namespace diq::spec

#endif // DIQ_SPEC_EXPERIMENT_SPEC_HH

/**
 * @file
 * Named issue-scheme presets, resolvable by string.
 *
 * Every configuration the paper names gets one preset here: the CAM
 * baselines, the plain FIFO-family geometries of the §3 sizing
 * studies, and the two distributed-FU organizations of §4. Presets
 * are the vocabulary of the declarative experiment API — a spec like
 * `mb_distr chains_per_queue=4` starts from a preset and overrides
 * individual knobs by name (spec/experiment_spec.hh).
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §8.
 */

#ifndef DIQ_SPEC_PRESETS_HH
#define DIQ_SPEC_PRESETS_HH

#include <string>
#include <vector>

#include "core/issue_scheme.hh"

namespace diq::spec
{

/** One named scheme configuration with its documentation line. */
struct PresetInfo
{
    std::string name;          ///< resolvable string, e.g. "mb_distr"
    std::string doc;           ///< one-line description for `diq list`
    core::SchemeConfig scheme; ///< the configuration it resolves to
};

/** Every named preset, in listing order. */
const std::vector<PresetInfo> &presets();

/** Lookup by name; nullptr when unknown. */
const PresetInfo *findPreset(const std::string &name);

} // namespace diq::spec

#endif // DIQ_SPEC_PRESETS_HH

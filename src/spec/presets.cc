/**
 * @file
 * Implementation of spec/presets.hh (docs/ARCHITECTURE.md §8).
 */

#include "spec/presets.hh"

namespace diq::spec
{

const std::vector<PresetInfo> &
presets()
{
    using core::SchemeConfig;
    static const std::vector<PresetInfo> table = {
        {"iq6464",
         "Baseline: two 64-entry CAM queues, centralized FUs (§4.2)",
         SchemeConfig::iq6464()},
        {"unbounded",
         "Unbounded (256-entry) CAM baseline of the §3 IPC-loss study",
         SchemeConfig::unbounded()},
        {"issuefifo_8x8_8x16",
         "IssueFIFO, 8x8 INT + 8x16 FP queues, centralized FUs (§3)",
         SchemeConfig::issueFifo(8, 8, 8, 16)},
        {"latfifo_8x8_8x16",
         "LatFIFO, 8x8 INT + 8x16 FP queues, centralized FUs (§3.1)",
         SchemeConfig::latFifo(8, 8, 8, 16)},
        {"mixbuff_8x8_8x16",
         "MixBUFF, 8x8 INT + 8x16 FP, unbounded chains, centralized"
         " FUs (§3.2)",
         SchemeConfig::mixBuff(8, 8, 8, 16)},
        {"if_distr",
         "IF_distr: IssueFIFO_8x8_8x16 with distributed FUs (§4.2)",
         SchemeConfig::ifDistr()},
        {"mb_distr",
         "MB_distr: MixBUFF_8x8_8x16, 8 chains/queue, distributed FUs"
         " (§4.2, the paper's proposal)",
         SchemeConfig::mbDistr()},
    };
    return table;
}

const PresetInfo *
findPreset(const std::string &name)
{
    for (const auto &p : presets())
        if (p.name == name)
            return &p;
    return nullptr;
}

} // namespace diq::spec

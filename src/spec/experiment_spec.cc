/**
 * @file
 * Implementation of spec/experiment_spec.hh (docs/ARCHITECTURE.md §8).
 *
 * The key registry is the single source of truth: every knob appears
 * exactly once, with its domain, and toText()/parse()/set() are all
 * derived from it — so serialization, parsing and documentation
 * cannot drift apart.
 */

#include "spec/experiment_spec.hh"

#include <cctype>
#include <sstream>
#include <utility>

#include "fuzz/fuzz_workload.hh"
#include "spec/presets.hh"
#include "trace/scenarios.hh"
#include "trace/spec2000.hh"

namespace diq::spec
{

namespace
{

/** Strict integer parse: the whole token must be one base-10 int. */
int64_t
parseIntValue(const std::string &v, const std::string &key)
{
    size_t pos = 0;
    int64_t out = 0;
    try {
        out = std::stoll(v, &pos);
    } catch (...) {
        pos = 0;
    }
    if (pos != v.size() || v.empty())
        throw ParseError("bad value '" + v + "' for key '" + key +
                         "' (expected an integer)");
    return out;
}

/** The one parse-then-range-check setter every integer key shares. */
std::function<void(ExperimentSpec &, const std::string &)>
rangedIntSetter(std::string key, int64_t lo, int64_t hi,
                std::function<void(ExperimentSpec &, int64_t)> assign)
{
    return [key = std::move(key), lo, hi, assign = std::move(assign)](
               ExperimentSpec &s, const std::string &v) {
        int64_t x = parseIntValue(v, key);
        if (x < lo || x > hi)
            throw ParseError("value " + std::to_string(x) + " for key '" +
                             key + "' out of range [" +
                             std::to_string(lo) + ", " +
                             std::to_string(hi) + "]");
        assign(s, x);
    };
}

template <typename T>
KeyInfo
intKey(const char *name, const char *doc, int64_t lo, int64_t hi,
       T &(*field)(ExperimentSpec &),
       std::vector<std::string> aliases = {})
{
    KeyInfo k;
    k.name = name;
    k.aliases = std::move(aliases);
    k.doc = doc;
    k.kind = KeyInfo::Kind::Int;
    k.lo = lo;
    k.hi = hi;
    k.get = [field](const ExperimentSpec &s) {
        return std::to_string(static_cast<int64_t>(
            field(const_cast<ExperimentSpec &>(s))));
    };
    k.set = rangedIntSetter(name, lo, hi,
                            [field](ExperimentSpec &s, int64_t x) {
                                field(s) = static_cast<T>(x);
                            });
    return k;
}

KeyInfo
boolKey(const char *name, const char *doc,
        bool &(*field)(ExperimentSpec &),
        std::vector<std::string> aliases = {})
{
    KeyInfo k;
    k.name = name;
    k.aliases = std::move(aliases);
    k.doc = doc;
    k.kind = KeyInfo::Kind::Bool;
    k.choices = {"0", "1"};
    k.get = [field](const ExperimentSpec &s) {
        return field(const_cast<ExperimentSpec &>(s)) ? std::string("1")
                                                      : std::string("0");
    };
    k.set = [field, key = std::string(name)](ExperimentSpec &s,
                                             const std::string &v) {
        if (v == "1" || v == "true")
            field(s) = true;
        else if (v == "0" || v == "false")
            field(s) = false;
        else
            throw ParseError("bad value '" + v + "' for key '" + key +
                             "' (expected 0/1/true/false)");
    };
    return k;
}

/** scheme= accepts a kind name or any preset name (whole config). */
KeyInfo
schemeKey()
{
    using Kind = core::SchemeConfig::Kind;
    static const std::pair<const char *, Kind> kinds[] = {
        {"cam", Kind::Cam},
        {"issue_fifo", Kind::IssueFifo},
        {"lat_fifo", Kind::LatFifo},
        {"mixbuff", Kind::MixBuff},
    };

    KeyInfo k;
    k.name = "scheme";
    k.doc = "issue-queue organization: cam, issue_fifo, lat_fifo or "
            "mixbuff; a preset name (e.g. mb_distr) sets the whole "
            "scheme configuration";
    k.kind = KeyInfo::Kind::Choice;
    for (const auto &[n, kind] : kinds)
        k.choices.push_back(n);
    k.get = [](const ExperimentSpec &s) -> std::string {
        for (const auto &[n, kind] : kinds)
            if (s.processor.scheme.kind == kind)
                return n;
        return "cam";
    };
    k.set = [](ExperimentSpec &s, const std::string &v) {
        for (const auto &[n, kind] : kinds) {
            if (v == n) {
                s.processor.scheme.kind = kind;
                return;
            }
        }
        if (const PresetInfo *p = findPreset(v)) {
            s.processor.scheme = p->scheme;
            return;
        }
        std::string known;
        for (const auto &p : presets())
            known += " " + p.name;
        throw ParseError("bad value '" + v + "' for key 'scheme' "
                         "(kinds: cam issue_fifo lat_fifo mixbuff; "
                         "presets:" + known + ")");
    };
    return k;
}

KeyInfo
benchKey()
{
    KeyInfo k;
    k.name = "bench";
    k.aliases = {"benchmark"};
    k.doc = "workload to simulate: a SPEC2000-like benchmark "
            "(trace/spec2000.hh), scenario:<name> from the stress "
            "catalog, trace:<path> to replay a recorded .diqt file "
            "(trace/scenarios.hh), or fuzz:<seed>[:phases=N][:ops=N] "
            "for a generated phase graph (fuzz/fuzz_workload.hh)";
    k.kind = KeyInfo::Kind::Choice;
    for (const auto &p : trace::allSpecProfiles())
        k.choices.push_back(p.name);
    for (const auto &s : trace::scenarioRegistry())
        k.choices.push_back(std::string(trace::kScenarioPrefix) +
                            s.name);
    k.get = [](const ExperimentSpec &s) { return s.benchmark; };
    k.set = [](ExperimentSpec &s, const std::string &v) {
        if (v.starts_with(trace::kScenarioPrefix)) {
            // Registry names and the phased: form validate cheaply
            // without instantiating any workload.
            try {
                trace::validateScenario(
                    v.substr(trace::kScenarioPrefix.size()));
            } catch (const std::invalid_argument &e) {
                throw ParseError("bad value '" + v +
                                 "' for key 'bench' (" + e.what() +
                                 ")");
            }
            s.benchmark = v;
            return;
        }
        if (fuzz::isFuzzToken(v)) {
            // Parse-and-canonicalize: knobs reorder into grammar
            // order, so equivalent spellings collapse to one cache
            // key and parse(toText(s)) == s still holds.
            try {
                s.benchmark = fuzz::FuzzSpec::parse(v).canonical();
            } catch (const std::invalid_argument &e) {
                throw ParseError("bad value '" + v +
                                 "' for key 'bench' (" + e.what() +
                                 ")");
            }
            return;
        }
        if (v.starts_with(trace::kTracePrefix)) {
            // The path is validated when the trace is opened (the
            // file may be recorded after the spec is written). Only
            // an empty path is rejected here — plus whitespace, which
            // could never survive the whitespace-tokenized canonical
            // serialization (parse(toText(s)) == s must hold).
            if (v.size() == trace::kTracePrefix.size())
                throw ParseError("bad value '" + v + "' for key "
                                 "'bench' (empty trace path)");
            for (char c : v)
                if (std::isspace(static_cast<unsigned char>(c)))
                    throw ParseError(
                        "bad value '" + v + "' for key 'bench' "
                        "(trace path contains whitespace, which "
                        "cannot round-trip through spec text)");
            s.benchmark = v;
            return;
        }
        for (const auto &p : trace::allSpecProfiles()) {
            if (p.name == v) {
                s.benchmark = v;
                return;
            }
        }
        throw ParseError("bad value '" + v + "' for key 'bench' "
                         "(unknown benchmark; see `diq list "
                         "benchmarks`, or use scenario:<name> / "
                         "trace:<path>)");
    };
    return k;
}

std::vector<KeyInfo>
buildRegistry()
{
    std::vector<KeyInfo> r;

    // --- Experiment identity -----------------------------------------
    r.push_back(benchKey());
    r.push_back(intKey<uint64_t>(
        "warmup_insts", "instructions run (and discarded) to warm "
        "caches and predictors", 0, 1'000'000'000'000,
        +[](ExperimentSpec &s) -> uint64_t & { return s.warmupInsts; },
        {"warmup"}));
    r.push_back(intKey<uint64_t>(
        "measure_insts", "instructions measured after warm-up", 1,
        1'000'000'000'000,
        +[](ExperimentSpec &s) -> uint64_t & { return s.measureInsts; },
        {"insts"}));
    r.push_back(intKey<uint32_t>(
        "intervals", "intervals the measured region is split into for "
        "parallel interval simulation (1 = monolithic; "
        "docs/CHECKPOINTS.md)", 1, 1'000'000,
        +[](ExperimentSpec &s) -> uint32_t & { return s.intervals; }));
    r.push_back(intKey<uint64_t>(
        "interval_warmup", "detailed warm-up instructions at each "
        "interval head in warmup-seeded interval mode "
        "(docs/CHECKPOINTS.md)", 0, 1'000'000'000,
        +[](ExperimentSpec &s) -> uint64_t & {
            return s.intervalWarmup;
        },
        {"iwarmup"}));

    // --- Issue scheme (core::SchemeConfig) ---------------------------
    const size_t scheme_section_begin = r.size();
    r.push_back(schemeKey());
    r.push_back(intKey<int>(
        "cam_int_entries", "CAM baseline: integer-cluster queue "
        "entries", 1, 4096,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.scheme.camIntEntries;
        }));
    r.push_back(intKey<int>(
        "cam_fp_entries", "CAM baseline: FP-cluster queue entries", 1,
        4096,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.scheme.camFpEntries;
        }));
    r.push_back(intKey<int>(
        "int_queues", "FIFO family: number of integer queues (the A "
        "of AxB)", 1, 64,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.scheme.numIntQueues;
        }));
    r.push_back(intKey<int>(
        "int_queue_size", "FIFO family: entries per integer queue "
        "(the B of AxB)", 1, 1024,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.scheme.intQueueSize;
        }));
    r.push_back(intKey<int>(
        "fp_queues", "FIFO family: number of FP queues (the C of "
        "CxD)", 1, 64,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.scheme.numFpQueues;
        }));
    r.push_back(intKey<int>(
        "fp_queue_size", "FIFO family: entries per FP queue (the D "
        "of CxD)", 1, 1024,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.scheme.fpQueueSize;
        }));
    r.push_back(intKey<int>(
        "chains_per_queue", "MixBUFF chain bound per FP queue; 0 = "
        "unbounded (§3.2)", 0, 1024,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.scheme.chainsPerQueue;
        },
        {"chains"}));
    r.push_back(boolKey(
        "distributed_fus", "bind functional units to queues instead "
        "of a central pool (§3.3)",
        +[](ExperimentSpec &s) -> bool & {
            return s.processor.scheme.distributedFus;
        }));
    r.push_back(boolKey(
        "clear_table_on_mispredict", "clear queue rename tables when "
        "a branch mispredict resolves (§2.2)",
        +[](ExperimentSpec &s) -> bool & {
            return s.processor.scheme.clearTableOnMispredict;
        }));
    for (size_t i = scheme_section_begin; i < r.size(); ++i)
        r[i].schemeScope = true;

    // --- Pipeline widths and window (Table 1) ------------------------
    r.push_back(intKey<int>(
        "fetch_width", "instructions fetched per cycle", 1, 64,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.fetchWidth;
        }));
    r.push_back(intKey<int>(
        "dispatch_width", "decode/rename/dispatch per cycle", 1, 64,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.dispatchWidth;
        }));
    r.push_back(intKey<int>(
        "commit_width", "instructions committed per cycle", 1, 64,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.commitWidth;
        }));
    r.push_back(intKey<int>(
        "fetch_queue_size", "fetch-queue entries", 1, 4096,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.fetchQueueSize;
        }));
    r.push_back(intKey<int>(
        "rob_size", "reorder-buffer entries", 1, 1 << 20,
        +[](ExperimentSpec &s) -> int & { return s.processor.robSize; }));
    r.push_back(intKey<int>(
        "int_phys_regs", "integer physical registers", 1, 1 << 20,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.numIntPhysRegs;
        }));
    r.push_back(intKey<int>(
        "fp_phys_regs", "FP physical registers", 1, 1 << 20,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.numFpPhysRegs;
        }));
    r.push_back(intKey<int>(
        "frontend_delay", "fetch-to-dispatch cycles (sets the "
        "mispredict penalty)", 0, 100,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.frontendDelay;
        }));

    // --- Branch predictor (Table 1) ----------------------------------
    r.push_back(intKey<int>(
        "gshare_entries", "gshare predictor entries", 1, 1 << 24,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.gshareEntries;
        }));
    r.push_back(intKey<int>(
        "bimodal_entries", "bimodal predictor entries", 1, 1 << 24,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.bimodalEntries;
        }));
    r.push_back(intKey<int>(
        "selector_entries", "hybrid-selector entries", 1, 1 << 24,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.selectorEntries;
        }));
    r.push_back(intKey<int>(
        "btb_entries", "branch target buffer entries", 1, 1 << 24,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.btbEntries;
        }));
    r.push_back(intKey<int>(
        "btb_assoc", "BTB set associativity", 1, 64,
        +[](ExperimentSpec &s) -> int & {
            return s.processor.btbAssoc;
        }));

    // --- Memory hierarchy (Table 1) ----------------------------------
    struct CacheKnobs
    {
        const char *prefix;
        const char *what;
        mem::CacheConfig &(*cache)(ExperimentSpec &);
    };
    static const CacheKnobs caches[] = {
        {"l1i", "L1 instruction cache",
         +[](ExperimentSpec &s) -> mem::CacheConfig & {
             return s.processor.memory.l1i;
         }},
        {"l1d", "L1 data cache",
         +[](ExperimentSpec &s) -> mem::CacheConfig & {
             return s.processor.memory.l1d;
         }},
        {"l2", "unified L2 cache",
         +[](ExperimentSpec &s) -> mem::CacheConfig & {
             return s.processor.memory.l2;
         }},
    };
    for (const auto &c : caches) {
        const std::string prefix = c.prefix;
        const std::string what = c.what;
        auto cacheIntKey = [&](const char *suffix, const char *knob,
                               int64_t lo, int64_t hi, auto member) {
            KeyInfo k;
            k.name = prefix + "_" + suffix;
            k.doc = what + std::string(": ") + knob;
            k.kind = KeyInfo::Kind::Int;
            k.lo = lo;
            k.hi = hi;
            auto cache = c.cache;
            k.get = [cache, member](const ExperimentSpec &s) {
                return std::to_string(static_cast<int64_t>(
                    cache(const_cast<ExperimentSpec &>(s)).*member));
            };
            k.set = rangedIntSetter(
                k.name, lo, hi,
                [cache, member](ExperimentSpec &s, int64_t x) {
                    using Member = std::remove_reference_t<
                        decltype(cache(s).*member)>;
                    cache(s).*member = static_cast<Member>(x);
                });
            r.push_back(std::move(k));
        };
        cacheIntKey("size_bytes", "capacity in bytes", 64, 1 << 30,
                    &mem::CacheConfig::sizeBytes);
        cacheIntKey("assoc", "set associativity", 1, 64,
                    &mem::CacheConfig::assoc);
        cacheIntKey("line_bytes", "line size in bytes", 8, 4096,
                    &mem::CacheConfig::lineBytes);
        cacheIntKey("hit_latency", "hit latency in cycles", 1, 1000,
                    &mem::CacheConfig::hitLatency);
        cacheIntKey("ports", "R/W ports", 1, 64,
                    &mem::CacheConfig::ports);
    }
    r.push_back(intKey<unsigned>(
        "mem_first_chunk_latency", "main memory: cycles to the first "
        "chunk", 1, 100000,
        +[](ExperimentSpec &s) -> unsigned & {
            return s.processor.memory.memory.firstChunkLatency;
        }));
    r.push_back(intKey<unsigned>(
        "mem_inter_chunk_latency", "main memory: cycles per "
        "additional chunk", 0, 100000,
        +[](ExperimentSpec &s) -> unsigned & {
            return s.processor.memory.memory.interChunkLatency;
        }));
    r.push_back(intKey<unsigned>(
        "mem_chunk_bytes", "main memory: bus transfer granule", 1,
        4096,
        +[](ExperimentSpec &s) -> unsigned & {
            return s.processor.memory.memory.chunkBytes;
        }));

    // --- Safety net ---------------------------------------------------
    r.push_back(intKey<uint64_t>(
        "max_cycles_per_inst", "hard cycle cap per instruction "
        "against pathological stalls", 1, 1'000'000'000,
        +[](ExperimentSpec &s) -> uint64_t & {
            return s.processor.maxCyclesPerInst;
        }));

    return r;
}

} // namespace

const std::vector<KeyInfo> &
keyRegistry()
{
    static const std::vector<KeyInfo> registry = buildRegistry();
    return registry;
}

const KeyInfo *
findKey(const std::string &name)
{
    for (const auto &k : keyRegistry()) {
        if (k.name == name)
            return &k;
        for (const auto &a : k.aliases)
            if (a == name)
                return &k;
    }
    return nullptr;
}

std::string
ExperimentSpec::toText() const
{
    std::string out;
    for (const auto &k : keyRegistry()) {
        out += k.name;
        out += '=';
        out += k.get(*this);
        out += '\n';
    }
    return out;
}

std::string
ExperimentSpec::canonicalLine() const
{
    std::string out;
    for (const auto &k : keyRegistry()) {
        if (!out.empty())
            out += ' ';
        out += k.name;
        out += '=';
        out += k.get(*this);
    }
    return out;
}

void
ExperimentSpec::set(const std::string &key, const std::string &value)
{
    const KeyInfo *k = findKey(key);
    if (!k)
        throw ParseError("unknown key '" + key +
                         "' (see `diq list keys`)");
    k->set(*this, value);
}

std::vector<std::string>
tokenizeSpecText(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::istringstream tokens(line);
        std::string token;
        while (tokens >> token)
            out.push_back(token);
    }
    return out;
}

void
ExperimentSpec::applyText(const std::string &text)
{
    for (const std::string &token : tokenizeSpecText(text)) {
        auto eq = token.find('=');
        if (eq == std::string::npos) {
            const PresetInfo *p = findPreset(token);
            if (!p) {
                std::string known;
                for (const auto &pr : presets())
                    known += " " + pr.name;
                throw ParseError("unknown preset '" + token +
                                 "' (known:" + known + ")");
            }
            processor.scheme = p->scheme;
            continue;
        }
        if (eq == 0)
            throw ParseError("missing key before '=' in token '" +
                             token + "'");
        set(token.substr(0, eq), token.substr(eq + 1));
    }
}

ExperimentSpec
ExperimentSpec::parse(const std::string &text)
{
    ExperimentSpec s;
    s.applyText(text);
    return s;
}

} // namespace diq::spec

/**
 * @file
 * Implementation of power/cacti_model.hh (docs/ARCHITECTURE.md §4).
 */

#include "power/cacti_model.hh"

#include <cmath>

namespace diq::power
{

double
switchEnergyPj(double cap_fF, double v)
{
    // E = C * V^2, fF * V^2 -> fJ; divide by 1000 for pJ.
    return cap_fF * v * v / 1000.0;
}

// --- RamArray ---------------------------------------------------------------

RamArray::RamArray(unsigned entries, unsigned bits, unsigned ports,
                   TechParams tech)
    : entries_(entries ? entries : 1), bits_(bits ? bits : 1),
      ports_(ports ? ports : 1), tech_(tech)
{
}

double
RamArray::decodeEnergy() const
{
    // Only the selected decode path and one wordline driver toggle;
    // energy grows with decoder depth, not array height.
    double levels = std::max(1.0, std::log2(static_cast<double>(entries_)));
    return switchEnergyPj(levels * tech_.decoderCapPerGate * 8.0,
                          tech_.vdd);
}

double
RamArray::readEnergy() const
{
    // Wordline across the row, reduced-swing bitlines down the column,
    // one sense amp per bit. Extra ports lengthen both lines.
    double port_scale = 1.0 + 0.35 * (ports_ - 1);
    double wl = bits_ * tech_.wordlineCapPerCell * port_scale;
    double bl = bits_ * entries_ * tech_.bitlineCapPerCell * port_scale;
    double sense = bits_ * tech_.senseAmpEnergy;
    return decodeEnergy() +
        switchEnergyPj(wl, tech_.vdd) +
        switchEnergyPj(bl, tech_.vdd * tech_.bitlineSwing) +
        switchEnergyPj(sense, tech_.vdd);
}

double
RamArray::writeEnergy() const
{
    // Full-swing bitline drive on writes.
    double port_scale = 1.0 + 0.35 * (ports_ - 1);
    double wl = bits_ * tech_.wordlineCapPerCell * port_scale;
    double bl = bits_ * entries_ * tech_.bitlineCapPerCell * port_scale;
    return decodeEnergy() +
        switchEnergyPj(wl, tech_.vdd) +
        switchEnergyPj(bl * 0.35, tech_.vdd);
}

double
RamArray::sweepEnergy() const
{
    // Whole-array read-modify-write. Arrays small enough to sweep
    // every cycle (the MixBUFF chain latency table) are built from
    // latches rather than a bit-line array, so the sweep charges each
    // bit's latch plus a small update-logic overhead.
    double cap = entries_ * bits_ * tech_.latchCapPerBit * 2.5;
    return switchEnergyPj(cap, tech_.vdd);
}

// --- CamArray ---------------------------------------------------------------

CamArray::CamArray(unsigned entries, unsigned tagBits, TechParams tech)
    : entries_(entries ? entries : 1), tagBits_(tagBits ? tagBits : 1),
      tech_(tech)
{
}

double
CamArray::broadcastEnergy() const
{
    // Differential tag lines run the full height of the array.
    double cap = 2.0 * tagBits_ * entries_ * tech_.camTaglineCapPerCell;
    return switchEnergyPj(cap, tech_.vdd);
}

double
CamArray::matchEnergy() const
{
    // Precharged match line discharges across the compared bits.
    double cap = tagBits_ * tech_.camMatchlineCapPerBit;
    return switchEnergyPj(cap, tech_.vdd);
}

// --- SelectionTree -----------------------------------------------------------

SelectionTree::SelectionTree(unsigned requests, unsigned grants,
                             TechParams tech)
    : requests_(requests ? requests : 1), grants_(grants ? grants : 1),
      tech_(tech)
{
}

double
SelectionTree::selectEnergy(unsigned active) const
{
    if (active == 0)
        return 0.0;
    // Request lines ripple through log2(N) arbitration levels; each
    // extra simultaneous grant adds a partial replication of the tree.
    double levels = std::max(1.0, std::log2(static_cast<double>(requests_)));
    double cap = active * levels * tech_.arbiterCapPerReq *
        (1.0 + grants_ / 2.0);
    return switchEnergyPj(cap, tech_.vdd);
}

// --- CrossbarModel ------------------------------------------------------------

CrossbarModel::CrossbarModel(unsigned sources, unsigned sinks, unsigned bits,
                             TechParams tech)
    : sources_(sources ? sources : 1), sinks_(sinks ? sinks : 1),
      bits_(bits ? bits : 1), tech_(tech)
{
}

double
CrossbarModel::transferEnergy() const
{
    // Wire length grows with the number of ports the track must span.
    double tracks = static_cast<double>(sources_ + sinks_);
    double cap = bits_ * tracks * tech_.wireCapPerTrack;
    return switchEnergyPj(cap, tech_.vdd);
}

double
latchEnergyPj(unsigned bits, const TechParams &tech)
{
    return switchEnergyPj(bits * tech.latchCapPerBit, tech.vdd);
}

} // namespace diq::power

/**
 * @file
 * Implementation of power/metrics.hh (docs/ARCHITECTURE.md §4).
 */

#include "power/metrics.hh"

namespace diq::power
{

double
chipEnergyPj(const RunEnergy &run, const RunEnergy &baseline,
             double iq_share)
{
    // Baseline chip energy is fixed by the share assumption; the
    // non-issue-queue part scales with executed work (identical
    // instruction streams), so it carries over by instruction count.
    if (baseline.iqEnergyPj <= 0.0 || baseline.insts == 0)
        return run.iqEnergyPj;
    double chip_base = baseline.iqEnergyPj / iq_share;
    double rest_base = chip_base - baseline.iqEnergyPj;
    double rest_per_inst = rest_base / baseline.insts;
    return rest_per_inst * run.insts + run.iqEnergyPj;
}

NormalizedEfficiency
normalizedEfficiency(const RunEnergy &scheme, const RunEnergy &baseline,
                     double iq_share)
{
    NormalizedEfficiency n;
    if (baseline.cycles == 0 || scheme.cycles == 0 ||
        baseline.iqEnergyPj <= 0.0) {
        return n;
    }

    double base_power = baseline.iqEnergyPj / baseline.cycles;
    double scheme_power = scheme.iqEnergyPj / scheme.cycles;
    n.iqPower = scheme_power / base_power;
    n.iqEnergy = scheme.iqEnergyPj / baseline.iqEnergyPj;

    double chip_b = chipEnergyPj(baseline, baseline, iq_share);
    double chip_s = chipEnergyPj(scheme, baseline, iq_share);

    double d_b = static_cast<double>(baseline.cycles);
    double d_s = static_cast<double>(scheme.cycles);
    n.chipEd = (chip_s * d_s) / (chip_b * d_b);
    n.chipEd2 = (chip_s * d_s * d_s) / (chip_b * d_b * d_b);

    double ipc_b = baseline.insts / d_b;
    double ipc_s = scheme.insts / d_s;
    n.ipcRatio = ipc_b > 0.0 ? ipc_s / ipc_b : 0.0;
    return n;
}

} // namespace diq::power

/**
 * @file
 * Dense identifiers for the micro-architectural events the simulator
 * counts on its hot path.
 *
 * Issue schemes, clusters and the pipeline account events by EventId
 * into a power::EventCounters bank (an O(1) indexed array — the same
 * CAM-to-table argument the paper makes for issue logic, applied to
 * the simulator itself). String names exist only at the reporting
 * boundary: eventName() recovers the canonical dotted name that the
 * energy model documentation, test goldens and dumps use. Names of
 * the energy events mirror the component legends of Figures 9-11.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §4.
 */

#ifndef DIQ_POWER_EVENTS_HH
#define DIQ_POWER_EVENTS_HH

#include <cstddef>
#include <cstdint>

namespace diq::power
{

/**
 * One entry per counted event. Values are dense array indices; the
 * blocks marked contiguous below are relied upon for arithmetic
 * mapping (steering outcomes, issue-width histogram buckets).
 */
enum class EventId : uint8_t
{
    // Conventional CAM/RAM issue queue (baseline IQ_64_64).
    WakeupBroadcasts, ///< "iq.wakeup_broadcasts"
    WakeupCamMatches, ///< "iq.wakeup_cam_matches"
    IqBuffWrites,     ///< "iq.buff_writes"
    IqBuffReads,      ///< "iq.buff_reads"
    IqSelectRequests, ///< "iq.select_requests"

    // Queue rename table (IssueFIFO / LatFIFO / MixBUFF steering).
    QrenameReads,  ///< "qrename.reads"
    QrenameWrites, ///< "qrename.writes"

    // FIFO queues (IssueFIFO and the integer side of MixBUFF).
    FifoWrites, ///< "fifo.writes"
    FifoReads,  ///< "fifo.reads"

    // Ready-bit table (one bit per physical register).
    RegsReadyReads,  ///< "regs_ready.reads"
    RegsReadyWrites, ///< "regs_ready.writes"

    // MixBUFF FP buffers.
    BuffWrites,     ///< "buff.writes"
    BuffReads,      ///< "buff.reads"
    SelectRequests, ///< "select.requests"
    ChainSweeps,    ///< "chains.sweeps"
    RegLatches,     ///< "reg.latches"

    // Issue-to-FU drive, by functional unit class (contiguous).
    MuxIntAlu, ///< "mux.int_alu"
    MuxIntMul, ///< "mux.int_mul"
    MuxFpAlu,  ///< "mux.fp_alu"
    MuxFpMul,  ///< "mux.fp_mul"

    // FIFO steering diagnostics, contiguous and in
    // FifoCluster::SteerOutcome order.
    SteerJoinSrc1,     ///< "steer.join1"
    SteerJoinSrc2,     ///< "steer.join2"
    SteerEmptyFifo,    ///< "steer.empty"
    SteerStallFull,    ///< "steer.full"
    SteerStallNoEmpty, ///< "steer.noempty"

    // Branch-mispredict diagnostics.
    MispredCount,     ///< "diag.mispred_count"
    MispredDispWait,  ///< "diag.mispred_disp_wait"
    MispredFetchWait, ///< "diag.mispred_fetch_wait"

    // Issue-width histogram: instructions issued in one cycle,
    // clamped to 9+ (contiguous block of 10 buckets).
    IssueWidth0, ///< "diag.issue_bucket_0"
    IssueWidth1,
    IssueWidth2,
    IssueWidth3,
    IssueWidth4,
    IssueWidth5,
    IssueWidth6,
    IssueWidth7,
    IssueWidth8,
    IssueWidth9Plus, ///< "diag.issue_bucket_9" (9 or more)

    NumEvents_, ///< sentinel: bank size, not an event
};

/** Number of distinct events (size of a counter bank). */
inline constexpr size_t NumEvents = static_cast<size_t>(EventId::NumEvents_);

/** Canonical dotted name (reporting boundary only). */
const char *eventName(EventId id);

/**
 * Reverse lookup for deserialization/tests: NumEvents_ when `name`
 * is not a known event name.
 */
EventId eventFromName(const char *name);

/** Histogram bucket for `width` instructions issued in one cycle. */
inline constexpr EventId
issueWidthEvent(size_t width)
{
    size_t b = width < 9 ? width : 9;
    return static_cast<EventId>(static_cast<size_t>(EventId::IssueWidth0) +
                                b);
}

/**
 * Backward-compatible spelling of the energy-event identifiers:
 * producers and the energy model refer to `ev::FifoWrites` etc., which
 * used to be string keys and are now dense ids.
 */
namespace ev
{

inline constexpr EventId WakeupBroadcasts = EventId::WakeupBroadcasts;
inline constexpr EventId WakeupCamMatches = EventId::WakeupCamMatches;
inline constexpr EventId IqBuffWrites = EventId::IqBuffWrites;
inline constexpr EventId IqBuffReads = EventId::IqBuffReads;
inline constexpr EventId IqSelectRequests = EventId::IqSelectRequests;
inline constexpr EventId QrenameReads = EventId::QrenameReads;
inline constexpr EventId QrenameWrites = EventId::QrenameWrites;
inline constexpr EventId FifoWrites = EventId::FifoWrites;
inline constexpr EventId FifoReads = EventId::FifoReads;
inline constexpr EventId RegsReadyReads = EventId::RegsReadyReads;
inline constexpr EventId RegsReadyWrites = EventId::RegsReadyWrites;
inline constexpr EventId BuffWrites = EventId::BuffWrites;
inline constexpr EventId BuffReads = EventId::BuffReads;
inline constexpr EventId SelectRequests = EventId::SelectRequests;
inline constexpr EventId ChainSweeps = EventId::ChainSweeps;
inline constexpr EventId RegLatches = EventId::RegLatches;
inline constexpr EventId MuxIntAlu = EventId::MuxIntAlu;
inline constexpr EventId MuxIntMul = EventId::MuxIntMul;
inline constexpr EventId MuxFpAlu = EventId::MuxFpAlu;
inline constexpr EventId MuxFpMul = EventId::MuxFpMul;

} // namespace ev

} // namespace diq::power

#endif // DIQ_POWER_EVENTS_HH

/**
 * @file
 * Canonical names of the micro-architectural energy events.
 *
 * Issue schemes and the pipeline increment util::CounterSet entries
 * under these keys; the energy model converts counts to picojoules.
 * Names mirror the component legends of Figures 9-11 in the paper.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §4.
 */

#ifndef DIQ_POWER_EVENTS_HH
#define DIQ_POWER_EVENTS_HH

namespace diq::power::ev
{

// Conventional CAM/RAM issue queue (baseline IQ_64_64).
inline constexpr const char *WakeupBroadcasts = "iq.wakeup_broadcasts";
inline constexpr const char *WakeupCamMatches = "iq.wakeup_cam_matches";
inline constexpr const char *IqBuffWrites = "iq.buff_writes";
inline constexpr const char *IqBuffReads = "iq.buff_reads";
inline constexpr const char *IqSelectRequests = "iq.select_requests";

// Queue rename table (IssueFIFO / LatFIFO / MixBUFF dispatch steering).
inline constexpr const char *QrenameReads = "qrename.reads";
inline constexpr const char *QrenameWrites = "qrename.writes";

// FIFO queues (IssueFIFO and the integer side of MixBUFF).
inline constexpr const char *FifoWrites = "fifo.writes";
inline constexpr const char *FifoReads = "fifo.reads";

// Ready-bit table (one bit per physical register).
inline constexpr const char *RegsReadyReads = "regs_ready.reads";
inline constexpr const char *RegsReadyWrites = "regs_ready.writes";

// MixBUFF FP buffers.
inline constexpr const char *BuffWrites = "buff.writes";
inline constexpr const char *BuffReads = "buff.reads";
inline constexpr const char *SelectRequests = "select.requests";
inline constexpr const char *ChainSweeps = "chains.sweeps";
inline constexpr const char *RegLatches = "reg.latches";

// Issue-to-FU drive, by functional unit class.
inline constexpr const char *MuxIntAlu = "mux.int_alu";
inline constexpr const char *MuxIntMul = "mux.int_mul";
inline constexpr const char *MuxFpAlu = "mux.fp_alu";
inline constexpr const char *MuxFpMul = "mux.fp_mul";

} // namespace diq::power::ev

#endif // DIQ_POWER_EVENTS_HH

/**
 * @file
 * Implementation of power/energy_model.hh (docs/ARCHITECTURE.md §4).
 */

#include "power/energy_model.hh"

#include <sstream>

#include "power/events.hh"

namespace diq::power
{

double
EnergyBreakdown::total() const
{
    double t = 0.0;
    for (const auto &[name, pj] : components)
        t += pj;
    return t;
}

double
EnergyBreakdown::get(const std::string &name) const
{
    for (const auto &[n, pj] : components)
        if (n == name)
            return pj;
    return 0.0;
}

double
EnergyBreakdown::share(const std::string &name) const
{
    double t = total();
    return t > 0.0 ? get(name) / t : 0.0;
}

std::string
EnergyBreakdown::toString() const
{
    std::ostringstream os;
    double t = total();
    for (const auto &[n, pj] : components) {
        os << n << "\t" << pj << " pJ";
        if (t > 0.0)
            os << "\t(" << 100.0 * pj / t << "%)";
        os << "\n";
    }
    os << "total\t" << t << " pJ\n";
    return os.str();
}

IssueEnergyModel::IssueEnergyModel(IssueGeometry geometry)
    : geometry_(geometry)
{
}

void
IssueEnergyModel::addMux(EnergyBreakdown &b, const EventCounters &c,
                         bool distributed) const
{
    const auto &g = geometry_;
    // Centralized: any of the cluster's issue ports can reach any FU of
    // the class, so the instruction crosses a full crossbar. Distributed:
    // the queue owns its FU; the path degenerates to a direct drive.
    auto make = [&](unsigned fus) {
        unsigned sources = distributed ? 1 : g.issueWidth;
        unsigned sinks = distributed ? 1 : fus;
        return CrossbarModel(sources, sinks, g.payloadBits, g.tech);
    };
    b.components.emplace_back(
        "MuxIntALU", c.get(ev::MuxIntAlu) * make(8).transferEnergy());
    b.components.emplace_back(
        "MuxIntMUL", c.get(ev::MuxIntMul) * make(4).transferEnergy());
    b.components.emplace_back(
        "MuxFPALU", c.get(ev::MuxFpAlu) * make(4).transferEnergy());
    b.components.emplace_back(
        "MuxFPMUL", c.get(ev::MuxFpMul) * make(4).transferEnergy());
}

EnergyBreakdown
IssueEnergyModel::baseline(const EventCounters &c) const
{
    const auto &g = geometry_;
    EnergyBreakdown b;

    // Wakeup: the broadcast drives the tag lines of every bank of the
    // cluster's queue; only armed (unready-operand) cells compare.
    CamArray cam_full(g.iqEntries, g.tagBits, g.tech);
    CamArray cam_cell(1, g.tagBits, g.tech);
    double wakeup =
        c.get(ev::WakeupBroadcasts) * cam_full.broadcastEnergy() +
        c.get(ev::WakeupCamMatches) * cam_cell.matchEnergy();
    b.components.emplace_back("wakeup", wakeup);

    // Payload storage: banked, so an access sees a bank-sized array
    // plus the bank decode of the full queue.
    RamArray bank(g.iqBankEntries, g.payloadBits, 8, g.tech);
    RamArray bank_select(g.iqEntries / std::max(1u, g.iqBankEntries), 4, 1,
                         g.tech);
    double buff =
        c.get(ev::IqBuffWrites) * (bank.writeEnergy() +
                                   bank_select.readEnergy()) +
        c.get(ev::IqBuffReads) * (bank.readEnergy() +
                                  bank_select.readEnergy());
    b.components.emplace_back("buff", buff);

    // Global select: N-of-64 arbitration tree; energy follows the
    // number of requesting (ready) instructions.
    SelectionTree tree(g.iqEntries, g.issueWidth, g.tech);
    double select = c.get(ev::IqSelectRequests) * tree.selectEnergy(1);
    b.components.emplace_back("select", select);

    addMux(b, c, /*distributed=*/false);
    return b;
}

EnergyBreakdown
IssueEnergyModel::issueFifo(const EventCounters &c) const
{
    const auto &g = geometry_;
    EnergyBreakdown b;

    // Queue rename table: logical reg -> queue id (+valid).
    unsigned qbits = 5;
    RamArray qrename(g.numLogicalRegs, qbits, 6, g.tech);
    double qr = c.get(ev::QrenameReads) * qrename.readEnergy() +
        c.get(ev::QrenameWrites) * qrename.writeEnergy();
    b.components.emplace_back("Qrename", qr);

    // FIFO storage: dispatch writes at the tail, issue reads the head;
    // FIFOs need no decoder (head/tail pointers), modeled as a small
    // single-ported array.
    RamArray fifo_int(g.intQueueSize, g.payloadBits, 1, g.tech);
    RamArray fifo_fp(g.fpQueueSize, g.payloadBits, 1, g.tech);
    double fifo_access_w =
        (fifo_int.writeEnergy() + fifo_fp.writeEnergy()) / 2.0;
    double fifo_access_r =
        (fifo_int.readEnergy() + fifo_fp.readEnergy()) / 2.0;
    double fifo = c.get(ev::FifoWrites) * fifo_access_w +
        c.get(ev::FifoReads) * fifo_access_r;
    b.components.emplace_back("fifo", fifo);

    // Ready-bit table: FIFO heads probe their operands every cycle.
    RamArray ready(g.numPhysRegs / 4, 1, 2, g.tech);
    double rr = c.get(ev::RegsReadyReads) * ready.readEnergy() +
        c.get(ev::RegsReadyWrites) * ready.writeEnergy();
    b.components.emplace_back("regs_ready", rr);

    addMux(b, c, /*distributed=*/true);
    return b;
}

EnergyBreakdown
IssueEnergyModel::mixBuff(const EventCounters &c) const
{
    const auto &g = geometry_;
    EnergyBreakdown b;

    // Queue rename table additionally stores the chain id.
    unsigned qbits = 5 + 4;
    RamArray qrename(g.numLogicalRegs, qbits, 6, g.tech);
    double qr = c.get(ev::QrenameReads) * qrename.readEnergy() +
        c.get(ev::QrenameWrites) * qrename.writeEnergy();
    b.components.emplace_back("Qrename", qr);

    // Integer side keeps IssueFIFO's queues.
    RamArray fifo_int(g.intQueueSize, g.payloadBits, 1, g.tech);
    double fifo = c.get(ev::FifoWrites) * fifo_int.writeEnergy() +
        c.get(ev::FifoReads) * fifo_int.readEnergy();
    b.components.emplace_back("fifo", fifo);

    // FP buffers are random-access (register-file like) arrays with an
    // age field per entry.
    RamArray buff(g.fpQueueSize, g.payloadBits + 9, 1, g.tech);
    double be = c.get(ev::BuffWrites) * buff.writeEnergy() +
        c.get(ev::BuffReads) * buff.readEnergy();
    b.components.emplace_back("buff", be);

    RamArray ready(g.numPhysRegs / 4, 1, 2, g.tech);
    double rr = c.get(ev::RegsReadyReads) * ready.readEnergy() +
        c.get(ev::RegsReadyWrites) * ready.writeEnergy();
    b.components.emplace_back("regs_ready", rr);

    // Per-queue 1-of-16 selection over (2-bit code ++ age); one tree
    // activation per non-empty queue per cycle, with a couple of hot
    // request lines toggling on average.
    SelectionTree tree(g.fpQueueSize, 1, g.tech);
    double select = c.get(ev::SelectRequests) * tree.selectEnergy(2);
    b.components.emplace_back("select", select);

    // Chain latency table: whole-table read+write sweep per queue
    // per active cycle (paper: "Every cycle the entire table is read
    // and written").
    RamArray chains(g.chainsPerQueue, g.chainCounterBits, 2, g.tech);
    double ch = c.get(ev::ChainSweeps) * chains.sweepEnergy();
    b.components.emplace_back("chains", ch);

    // Latch holding each queue's selected instruction.
    double reg = c.get(ev::RegLatches) *
        latchEnergyPj(g.payloadBits, g.tech);
    b.components.emplace_back("reg", reg);

    addMux(b, c, /*distributed=*/true);
    return b;
}

} // namespace diq::power

/**
 * @file
 * Fixed-size, enum-indexed counter bank for the simulator hot path.
 *
 * Replaces the string-keyed util::CounterSet on the per-instruction
 * accounting paths: an increment is one unchecked array add instead of
 * a std::map tree walk over heap-allocated string keys. The names come
 * back only at the reporting boundary via power::eventName() (same
 * trade the paper makes: indexed tables instead of associative search).
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §4.
 */

#ifndef DIQ_POWER_EVENT_COUNTERS_HH
#define DIQ_POWER_EVENT_COUNTERS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "power/events.hh"

namespace diq::power
{

/** Dense per-event counters; value-initialized to all zeros. */
class EventCounters
{
  public:
    void add(EventId id, uint64_t delta) { v_[index(id)] += delta; }
    void inc(EventId id) { ++v_[index(id)]; }

    uint64_t get(EventId id) const { return v_[index(id)]; }

    void clear() { v_.fill(0); }

    bool operator==(const EventCounters &) const = default;

    /**
     * Reporting view: canonical name -> value for every event with a
     * non-zero count, sorted by name (the dump format tests snapshot).
     */
    std::map<std::string, uint64_t> named() const;

    /** "name = value" lines of named(), one per event. */
    std::string toString() const;

  private:
    static constexpr size_t
    index(EventId id)
    {
        return static_cast<size_t>(id);
    }

    std::array<uint64_t, NumEvents> v_{};
};

} // namespace diq::power

#endif // DIQ_POWER_EVENT_COUNTERS_HH

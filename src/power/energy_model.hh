/**
 * @file
 * Scheme-level issue-queue energy accounting.
 *
 * Converts the event counters collected during simulation into the
 * per-component energy breakdowns the paper reports in Figures 9-11,
 * using the CACTI-like structure models of cacti_model.hh sized from
 * the scheme geometry.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §4.
 */

#ifndef DIQ_POWER_ENERGY_MODEL_HH
#define DIQ_POWER_ENERGY_MODEL_HH

#include <string>
#include <utility>
#include <vector>

#include "power/cacti_model.hh"
#include "power/event_counters.hh"

namespace diq::power
{

/** Ordered component-name -> picojoule breakdown. */
struct EnergyBreakdown
{
    std::vector<std::pair<std::string, double>> components;

    double total() const;
    double get(const std::string &name) const;

    /** Fraction of the total contributed by `name` (0 when empty). */
    double share(const std::string &name) const;

    std::string toString() const;
};

/**
 * Structure geometry of the issue logic. Defaults describe the paper's
 * §4.2 configurations (IQ_64_64, IF_distr, MB_distr).
 */
struct IssueGeometry
{
    // Conventional baseline: two 64-entry queues, 8 banks x 8 entries.
    unsigned iqEntries = 64;       ///< entries per cluster queue
    unsigned iqBankEntries = 8;    ///< entries per bank
    unsigned tagBits = 9;          ///< physical register tag width (320)
    unsigned payloadBits = 80;     ///< instruction payload in the queue
    unsigned issueWidth = 8;       ///< per cluster

    // Distributed schemes.
    unsigned numIntQueues = 8;
    unsigned intQueueSize = 8;
    unsigned numFpQueues = 8;
    unsigned fpQueueSize = 16;
    unsigned chainsPerQueue = 8;
    unsigned chainCounterBits = 5; ///< encodes the largest FU latency

    unsigned numLogicalRegs = 64;
    unsigned numPhysRegs = 320;

    TechParams tech{};
};

/**
 * Energy model for the three evaluated organizations. Each method
 * consumes the simulator's event counters and returns the paper's
 * component breakdown for that scheme.
 */
class IssueEnergyModel
{
  public:
    explicit IssueEnergyModel(IssueGeometry geometry = IssueGeometry{});

    /** Baseline IQ_64_64: wakeup / buff / select / Mux*. */
    EnergyBreakdown baseline(const EventCounters &c) const;

    /** IF_distr: Qrename / fifo / regs_ready / Mux*. */
    EnergyBreakdown issueFifo(const EventCounters &c) const;

    /**
     * MB_distr: Qrename / fifo / buff / regs_ready / select / chains /
     * reg / Mux*.
     */
    EnergyBreakdown mixBuff(const EventCounters &c) const;

    const IssueGeometry &geometry() const { return geometry_; }

  private:
    void addMux(EnergyBreakdown &b, const EventCounters &c,
                bool distributed) const;

    IssueGeometry geometry_;
};

} // namespace diq::power

#endif // DIQ_POWER_ENERGY_MODEL_HH

/**
 * @file
 * Power-efficiency metrics (paper §4.5).
 *
 * The paper compares schemes with power, energy, energy-delay and
 * energy-delay^2. Power and energy are reported for the issue queue
 * alone (Figures 12/13); ED and ED^2 are reported for the whole
 * processor under the assumption that the issue queue contributes 23%
 * of total chip power in the baseline (Figures 14/15). Rest-of-chip
 * energy is modeled as activity-driven, i.e. proportional to the
 * (identical) committed instruction count, so a slower scheme does not
 * magically inflate the rest of the chip (docs/ARCHITECTURE.md §3).
 */

#ifndef DIQ_POWER_METRICS_HH
#define DIQ_POWER_METRICS_HH

#include <cstdint>

namespace diq::power
{

/** Fraction of baseline chip power attributed to the issue queue. */
inline constexpr double IqChipPowerShare = 0.23;

/** Raw outcome of one simulation run for metric purposes. */
struct RunEnergy
{
    double iqEnergyPj = 0.0; ///< issue-logic energy over the run
    uint64_t cycles = 0;     ///< run length in cycles
    uint64_t insts = 0;      ///< committed instructions
};

/** Scheme-vs-baseline results, normalized to the baseline (=1.0). */
struct NormalizedEfficiency
{
    double iqPower = 0.0;   ///< Figure 12
    double iqEnergy = 0.0;  ///< Figure 13
    double chipEd = 0.0;    ///< Figure 14 (energy x delay)
    double chipEd2 = 0.0;   ///< Figure 15 (energy x delay^2)
    double ipcRatio = 0.0;  ///< scheme IPC / baseline IPC
};

/** Absolute chip energy (pJ) of a run under the 23% assumption,
 *  calibrated against the given baseline run. */
double chipEnergyPj(const RunEnergy &run, const RunEnergy &baseline,
                    double iq_share = IqChipPowerShare);

/** Compute all normalized metrics of `scheme` against `baseline`. */
NormalizedEfficiency
normalizedEfficiency(const RunEnergy &scheme, const RunEnergy &baseline,
                     double iq_share = IqChipPowerShare);

} // namespace diq::power

#endif // DIQ_POWER_METRICS_HH

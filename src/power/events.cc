/**
 * @file
 * Implementation of power/events.hh and power/event_counters.hh: the
 * EventId <-> name table used at the reporting boundary
 * (docs/ARCHITECTURE.md §4).
 */

#include "power/events.hh"

#include <cstring>
#include <sstream>

#include "power/event_counters.hh"

namespace diq::power
{

namespace
{

/** Canonical names, indexed by EventId. Keep in enum order. */
constexpr const char *EventNames[NumEvents] = {
    "iq.wakeup_broadcasts",
    "iq.wakeup_cam_matches",
    "iq.buff_writes",
    "iq.buff_reads",
    "iq.select_requests",
    "qrename.reads",
    "qrename.writes",
    "fifo.writes",
    "fifo.reads",
    "regs_ready.reads",
    "regs_ready.writes",
    "buff.writes",
    "buff.reads",
    "select.requests",
    "chains.sweeps",
    "reg.latches",
    "mux.int_alu",
    "mux.int_mul",
    "mux.fp_alu",
    "mux.fp_mul",
    "steer.join1",
    "steer.join2",
    "steer.empty",
    "steer.full",
    "steer.noempty",
    "diag.mispred_count",
    "diag.mispred_disp_wait",
    "diag.mispred_fetch_wait",
    "diag.issue_bucket_0",
    "diag.issue_bucket_1",
    "diag.issue_bucket_2",
    "diag.issue_bucket_3",
    "diag.issue_bucket_4",
    "diag.issue_bucket_5",
    "diag.issue_bucket_6",
    "diag.issue_bucket_7",
    "diag.issue_bucket_8",
    "diag.issue_bucket_9",
};

} // namespace

const char *
eventName(EventId id)
{
    size_t i = static_cast<size_t>(id);
    return i < NumEvents ? EventNames[i] : "<invalid-event>";
}

EventId
eventFromName(const char *name)
{
    for (size_t i = 0; i < NumEvents; ++i)
        if (std::strcmp(EventNames[i], name) == 0)
            return static_cast<EventId>(i);
    return EventId::NumEvents_;
}

std::map<std::string, uint64_t>
EventCounters::named() const
{
    std::map<std::string, uint64_t> out;
    for (size_t i = 0; i < NumEvents; ++i) {
        if (v_[i] != 0)
            out.emplace(EventNames[i], v_[i]);
    }
    return out;
}

std::string
EventCounters::toString() const
{
    std::ostringstream os;
    for (const auto &[k, v] : named())
        os << k << " = " << v << "\n";
    return os.str();
}

} // namespace diq::power

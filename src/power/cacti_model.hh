/**
 * @file
 * First-order CACTI-like energy model for the issue-logic structures.
 *
 * The paper derives per-access energies from CACTI 3.0 at 0.10 um.
 * CACTI itself is not redistributable here, so this module implements
 * the standard first-order array energy decomposition CACTI is built
 * from (decoder + wordline + bitline + sense amps for RAM; tag-line
 * drive + match lines for CAM; arbitration trees for select logic;
 * wire capacitance for crossbars), parameterized at 0.10 um. The
 * figures the paper reports are *relative* energies between array
 * organizations, which this level of modeling preserves
 * (docs/ARCHITECTURE.md §4).
 *
 * All energies are returned in picojoules.
 */

#ifndef DIQ_POWER_CACTI_MODEL_HH
#define DIQ_POWER_CACTI_MODEL_HH

#include <cstdint>

namespace diq::power
{

/** Technology parameters (0.10 um class defaults). */
struct TechParams
{
    double vdd = 1.1;                 ///< supply voltage (V)
    double bitlineCapPerCell = 1.8;   ///< fF per cell on a bitline
    double wordlineCapPerCell = 1.1;  ///< fF per cell on a wordline
    double senseAmpEnergy = 2.5;      ///< fJ-scale per sense amp fire (fF eq)
    double decoderCapPerGate = 1.2;   ///< fF per decoder gate stage
    double camTaglineCapPerCell = 6.0;///< fF per CAM cell on a tag line
                                      ///< (long, heavily loaded wires)
    double camMatchlineCapPerBit = 3.0;///< fF per compared CAM bit
    double latchCapPerBit = 0.8;      ///< fF per latch bit
    double wireCapPerTrack = 0.6;     ///< fF per crossbar track segment
                                      ///< per bit-wire crossing
    double arbiterCapPerReq = 20.0;    ///< fF per selection-tree request
    double bitlineSwing = 0.35;       ///< read swing as a fraction of vdd
};

/** Energy (pJ) to switch `cap_fF` femtofarads across `v` volts. */
double switchEnergyPj(double cap_fF, double v);

/**
 * A RAM array (register-file style, full-swing writes, reduced-swing
 * reads), e.g. issue-queue payload, rename tables, ready-bit tables.
 */
class RamArray
{
  public:
    RamArray(unsigned entries, unsigned bits, unsigned ports = 1,
             TechParams tech = TechParams{});

    /** Energy (pJ) of one read access. */
    double readEnergy() const;

    /** Energy (pJ) of one write access. */
    double writeEnergy() const;

    /** Energy (pJ) of reading + rewriting the whole array (sweeps). */
    double sweepEnergy() const;

    unsigned entries() const { return entries_; }
    unsigned bits() const { return bits_; }

  private:
    double decodeEnergy() const;

    unsigned entries_;
    unsigned bits_;
    unsigned ports_;
    TechParams tech_;
};

/**
 * A CAM tag array as used by conventional wakeup: broadcasting a tag
 * drives the tag lines of the whole (bank of the) array; each *armed*
 * entry (unready operand, after the Folegnani/Gonzalez gating the
 * baseline uses) discharges its match line.
 */
class CamArray
{
  public:
    CamArray(unsigned entries, unsigned tagBits,
             TechParams tech = TechParams{});

    /** Energy (pJ) to drive one tag broadcast across the array. */
    double broadcastEnergy() const;

    /** Energy (pJ) of one armed entry's match-line comparison. */
    double matchEnergy() const;

    unsigned entries() const { return entries_; }

  private:
    unsigned entries_;
    unsigned tagBits_;
    TechParams tech_;
};

/**
 * Select/arbitration tree: picks up to `grants` of `requests` request
 * lines (position-based priority). Energy scales with the number of
 * request lines that toggle through the tree.
 */
class SelectionTree
{
  public:
    SelectionTree(unsigned requests, unsigned grants = 1,
                  TechParams tech = TechParams{});

    /** Energy (pJ) of one selection cycle with `active` requesters. */
    double selectEnergy(unsigned active) const;

  private:
    unsigned requests_;
    unsigned grants_;
    TechParams tech_;
};

/**
 * Issue-to-FU crossbar/mux: driving one instruction from a queue port
 * to a functional unit across a crossbar with `sources` input ports
 * and `sinks` output ports of `bits` wires. A 1x1 "crossbar"
 * degenerates to a short direct wire, which is how the distributed
 * schemes get their near-zero Mux energy.
 */
class CrossbarModel
{
  public:
    CrossbarModel(unsigned sources, unsigned sinks, unsigned bits,
                  TechParams tech = TechParams{});

    /** Energy (pJ) to transfer one instruction across the crossbar. */
    double transferEnergy() const;

  private:
    unsigned sources_;
    unsigned sinks_;
    unsigned bits_;
    TechParams tech_;
};

/** Energy (pJ) of latching `bits` into a pipeline register. */
double latchEnergyPj(unsigned bits, const TechParams &tech = TechParams{});

} // namespace diq::power

#endif // DIQ_POWER_CACTI_MODEL_HH

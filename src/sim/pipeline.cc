/**
 * @file
 * Implementation of sim/pipeline.hh (docs/ARCHITECTURE.md §3).
 */

#include "sim/pipeline.hh"

#include <cassert>

namespace diq::sim
{

Cpu::Cpu(const ProcessorConfig &config, trace::TraceSource &trace)
    : config_(config), trace_(trace),
      predictor_(static_cast<size_t>(config.gshareEntries),
                 static_cast<size_t>(config.bimodalEntries),
                 static_cast<size_t>(config.selectorEntries),
                 static_cast<size_t>(config.btbEntries),
                 static_cast<unsigned>(config.btbAssoc)),
      mem_(config.memory),
      fus_(core::FuPoolConfig{8, 4, 4, 4, config.scheme.distributedFus,
                              config.scheme.numIntQueues,
                              config.scheme.numFpQueues}),
      scoreboard_(config.numIntPhysRegs + config.numFpPhysRegs),
      renamer_(config.numIntPhysRegs, config.numFpPhysRegs),
      lsq_(static_cast<size_t>(config.robSize)),
      scheme_(core::makeScheme(config.scheme)),
      fetchQueue_(static_cast<size_t>(config.fetchQueueSize)),
      rob_(static_cast<size_t>(config.robSize)),
      eventRing_(EventRingSlots)
{
    slab_.resize(static_cast<size_t>(config.robSize));
    freeList_.reserve(slab_.size());
    for (auto &inst : slab_)
        freeList_.push_back(&inst);
    issuedBuf_.reserve(32);
    memReturns_.reserve(32);
    // Slot vectors are cleared, not destroyed, each cycle; reserving
    // once removes the per-cycle growth reallocations of a cold ring.
    for (auto &slot : eventRing_)
        slot.reserve(16);
}

Cpu::~Cpu() = default;

core::IssueContext
Cpu::makeContext()
{
    core::IssueContext ctx;
    ctx.cycle = cycle_;
    ctx.scoreboard = &scoreboard_;
    ctx.fus = &fus_;
    ctx.counters = &stats_.counters;
    return ctx;
}

void
Cpu::schedule(uint64_t cycle, EventKind kind, core::DynInst *inst)
{
    assert(cycle > cycle_ && cycle - cycle_ < EventRingSlots);
    eventRing_[cycle % EventRingSlots].push_back({kind, inst});
}

core::DynInst *
Cpu::allocInst(const FetchedOp &f)
{
    assert(!freeList_.empty());
    core::DynInst *inst = freeList_.back();
    freeList_.pop_back();
    inst->reset(f.op, f.seq);
    inst->mispredicted = f.mispredicted;
    inst->fetchCycle = f.fetchCycle;
    return inst;
}

void
Cpu::freeInst(core::DynInst *inst)
{
    freeList_.push_back(inst);
}

uint64_t
Cpu::run(uint64_t num_insts)
{
    uint64_t target = stats_.committed + num_insts;
    uint64_t start_cycle = cycle_;
    uint64_t cap = cycle_ + num_insts * config_.maxCyclesPerInst + 100000;
    while (stats_.committed < target) {
        if (cycle_ >= cap || (traceExhausted_ && rob_.empty() &&
                              fetchQueue_.empty() && !pendingValid_)) {
            stats_.deadlocked = cycle_ >= cap;
            break;
        }
        stepCycle();
    }
    return cycle_ - start_cycle;
}

void
Cpu::resetStats()
{
    uint64_t keep_committed = 0; // measurement region starts fresh
    (void)keep_committed;
    stats_ = SimStats{};
}

void
Cpu::stepCycle()
{
    ++cycle_;
    ++stats_.cycles;
    portsFree_ = static_cast<int>(config_.memory.l1d.ports);

    commitStage();
    writebackStage();
    issueStage();
    lsqStage();
    dispatchStage();
    fetchStage();

    stats_.schemeOccupancySum += scheme_->occupancy();
    stats_.robOccupancySum += rob_.size();
}

void
Cpu::commitStage()
{
    int n = 0;
    while (n < config_.commitWidth && !rob_.empty()) {
        core::DynInst *inst = rob_.front();
        if (!inst->completed)
            break;
        if (inst->isStore() && portsFree_ <= 0)
            break; // the store's cache write needs a port
        if (inst->op.isMem()) {
            if (lsq_.commit(inst, mem_))
                --portsFree_;
        }
        renamer_.freeAtCommit(*inst);
        if (commitHook_)
            commitHook_(inst->op);
        rob_.popFront();
        freeInst(inst);
        ++stats_.committed;
        ++n;
    }
}

void
Cpu::writebackStage()
{
    auto &events = eventRing_[cycle_ % EventRingSlots];
    if (events.empty())
        return;
    core::IssueContext ctx = makeContext();
    for (const Event &ev : events) {
        core::DynInst *inst = ev.inst;
        switch (ev.kind) {
          case EventKind::ExecComplete:
            inst->completed = true;
            inst->completeCycle = cycle_;
            if (inst->hasDest())
                scheme_->onWakeup(inst->pdest, ctx);
            if (inst->isBranch() && inst->mispredicted) {
                // Redirect: the front-end may restart next cycle.
                fetchBlockedOnBranch_ = false;
                if (fetchResumeCycle_ < cycle_ + 1)
                    fetchResumeCycle_ = cycle_ + 1;
                scheme_->onBranchMispredict(ctx);
                stats_.counters.add(power::EventId::MispredDispWait,
                                    cycle_ - inst->dispatchCycle);
                stats_.counters.add(power::EventId::MispredFetchWait,
                                    cycle_ - inst->fetchCycle);
                stats_.counters.inc(power::EventId::MispredCount);
            }
            break;
          case EventKind::AddrReady:
            inst->addrReadyCycle = cycle_;
            lsq_.addressReady(inst);
            if (inst->isStore()) {
                // Stores are architecturally done once their address
                // (and data, required at issue) are known; the write
                // happens at commit.
                inst->completed = true;
                inst->completeCycle = cycle_;
            }
            break;
          case EventKind::DataReturn:
            inst->completed = true;
            inst->completeCycle = cycle_;
            if (inst->hasDest()) {
                scoreboard_.setReadyAt(inst->pdest, cycle_);
                scheme_->onWakeup(inst->pdest, ctx);
            }
            break;
        }
    }
    events.clear();
}

void
Cpu::issueStage()
{
    core::IssueContext ctx = makeContext();
    issuedBuf_.clear();
    scheme_->issue(ctx, issuedBuf_);
    stats_.counters.inc(power::issueWidthEvent(issuedBuf_.size()));
    for (core::DynInst *inst : issuedBuf_) {
        ++stats_.issuedOps;
        if (inst->op.isMem()) {
            schedule(cycle_ + trace::AddressLatency, EventKind::AddrReady,
                     inst);
            continue;
        }
        unsigned lat = static_cast<unsigned>(trace::opLatency(inst->op.op));
        if (inst->hasDest())
            scoreboard_.setReadyAt(inst->pdest, cycle_ + lat);
        schedule(cycle_ + lat, EventKind::ExecComplete, inst);
    }
}

void
Cpu::lsqStage()
{
    memReturns_.clear();
    lsq_.tick(cycle_, mem_, scoreboard_, portsFree_, memReturns_);
    for (const MemReturn &r : memReturns_) {
        uint64_t when = r.readyCycle > cycle_ ? r.readyCycle : cycle_ + 1;
        schedule(when, EventKind::DataReturn, r.inst);
    }
}

void
Cpu::dispatchStage()
{
    int n = 0;
    bool counted_scheme_stall = false;
    core::IssueContext ctx = makeContext();
    while (n < config_.dispatchWidth && !fetchQueue_.empty()) {
        FetchedOp &f = fetchQueue_.front();
        if (f.decodeReady > cycle_)
            break;
        if (rob_.full() || freeList_.empty() || !renamer_.canRename(f.op) ||
            (f.op.isMem() && lsq_.full())) {
            ++stats_.windowStallCycles;
            break;
        }

        // Steering decisions use architectural registers, so the
        // scheme is consulted before renaming.
        core::DynInst probe;
        probe.reset(f.op, f.seq);
        if (!scheme_->canDispatch(probe, ctx)) {
            if (!counted_scheme_stall) {
                ++stats_.dispatchStallCycles;
                counted_scheme_stall = true;
            }
            break;
        }

        core::DynInst *inst = allocInst(f);
        fetchQueue_.popFront();
        renamer_.rename(*inst);
        if (inst->hasDest())
            scoreboard_.markPending(inst->pdest);
        inst->dispatchCycle = cycle_;
        rob_.pushBack(inst);
        if (inst->op.isMem()) {
            lsq_.insert(inst);
            if (inst->isLoad())
                ++stats_.loads;
            else
                ++stats_.stores;
        }
        scheme_->dispatch(inst, ctx);
        ++stats_.dispatched;
        ++n;
    }
}

void
Cpu::fetchStage()
{
    if (fetchBlockedOnBranch_ || cycle_ < fetchResumeCycle_) {
        ++stats_.fetchStallCycles;
        return;
    }

    int n = 0;
    while (n < config_.fetchWidth && !fetchQueue_.full()) {
        if (!pendingValid_) {
            if (!trace_.next(pendingOp_)) {
                traceExhausted_ = true;
                break;
            }
            pendingValid_ = true;
        }

        // Instruction cache: one probe per line transition.
        uint64_t line =
            pendingOp_.pc / config_.memory.l1i.lineBytes;
        if (line != lastFetchLine_) {
            unsigned lat = mem_.fetchLatency(pendingOp_.pc);
            lastFetchLine_ = line;
            if (lat > config_.memory.l1i.hitLatency) {
                // Miss: refetch resumes after the fill.
                fetchResumeCycle_ = cycle_ + lat;
                break;
            }
        }

        FetchedOp f;
        f.op = pendingOp_;
        f.seq = nextSeq_++;
        f.fetchCycle = cycle_;
        f.decodeReady = cycle_ +
            static_cast<uint64_t>(config_.frontendDelay);
        pendingValid_ = false;

        bool stop = false;
        if (f.op.isBranch()) {
            ++stats_.branches;
            bool correct = predictor_.predictAndUpdate(
                f.op.pc, f.op.taken, f.op.target);
            if (!correct) {
                ++stats_.mispredicts;
                f.mispredicted = true;
                fetchBlockedOnBranch_ = true;
                stop = true;
            } else if (f.op.taken) {
                stop = true; // cannot fetch past a taken branch
            }
        }

        fetchQueue_.pushBack(f);
        ++stats_.fetched;
        ++n;
        if (stop)
            break;
    }
}

} // namespace diq::sim

/**
 * @file
 * Implementation of sim/pipeline.hh (docs/ARCHITECTURE.md §3, §10).
 */

#include "sim/pipeline.hh"

#include <bit>
#include <cassert>

namespace diq::sim
{

Cpu::Cpu(const ProcessorConfig &config, trace::TraceSource &trace)
    : config_(config), trace_(trace),
      predictor_(static_cast<size_t>(config.gshareEntries),
                 static_cast<size_t>(config.bimodalEntries),
                 static_cast<size_t>(config.selectorEntries),
                 static_cast<size_t>(config.btbEntries),
                 static_cast<unsigned>(config.btbAssoc)),
      mem_(config.memory),
      fus_(core::FuPoolConfig{8, 4, 4, 4, config.scheme.distributedFus,
                              config.scheme.numIntQueues,
                              config.scheme.numFpQueues}),
      scoreboard_(config.numIntPhysRegs + config.numFpPhysRegs),
      renamer_(config.numIntPhysRegs, config.numFpPhysRegs),
      lsq_(static_cast<size_t>(config.robSize)),
      scheme_(core::makeScheme(config.scheme)),
      fetchQueue_(static_cast<size_t>(config.fetchQueueSize)),
      rob_(static_cast<size_t>(config.robSize)),
      pool_(static_cast<uint32_t>(config.robSize)),
      eventRing_(EventRingSlots)
{
    scheme_->bindScoreboard(scoreboard_);
    unsigned lb = config_.memory.l1i.lineBytes;
    if (lb > 1 && (lb & (lb - 1)) == 0)
        fetchLineShift_ = static_cast<unsigned>(std::countr_zero(lb));
    issuedBuf_.reserve(32);
    memReturns_.reserve(32);
    // Slot vectors are cleared, not destroyed, each cycle; reserving
    // once removes the per-cycle growth reallocations of a cold ring.
    for (auto &slot : eventRing_)
        slot.reserve(16);
}

Cpu::~Cpu() = default;

core::IssueContext
Cpu::makeContext()
{
    core::IssueContext ctx;
    ctx.cycle = cycle_;
    ctx.scoreboard = &scoreboard_;
    ctx.fus = &fus_;
    ctx.counters = &stats_.counters;
    ctx.pool = &pool_;
    return ctx;
}

void
Cpu::schedule(uint64_t cycle, EventKind kind, core::InstIdx inst)
{
    assert(cycle > cycle_ && cycle - cycle_ < EventRingSlots);
    eventRing_[cycle % EventRingSlots].push_back({kind, inst});
}

core::InstIdx
Cpu::allocInst(const FetchedOp &f)
{
    core::InstIdx idx = pool_.alloc(f.op, f.seq);
    core::DynInst &inst = pool_.get(idx);
    inst.mispredicted = f.mispredicted;
    inst.fetchCycle = f.fetchCycle;
    return idx;
}

uint64_t
Cpu::run(uint64_t num_insts)
{
    uint64_t target = stats_.committed + num_insts;
    uint64_t start_cycle = cycle_;
    uint64_t cap = cycle_ + num_insts * config_.maxCyclesPerInst + 100000;
    while (stats_.committed < target) {
        if (cycle_ >= cap || (traceExhausted_ && rob_.empty() &&
                              fetchQueue_.empty() && !pendingValid_)) {
            stats_.deadlocked = cycle_ >= cap;
            break;
        }
        stepCycle();
    }
    return cycle_ - start_cycle;
}

void
Cpu::functionalAdvance(uint64_t num_ops)
{
    trace::MicroOp op;
    for (uint64_t i = 0; i < num_ops; ++i) {
        if (pendingValid_) {
            op = pendingOp_;
            pendingValid_ = false;
        } else if (trace_.next(op)) {
            ++opsConsumed_;
        } else {
            traceExhausted_ = true;
            break;
        }

        // Warm the I-cache once per line transition, mirroring the
        // detailed fetch stage's probe pattern.
        uint64_t line = fetchLineShift_
            ? op.pc >> fetchLineShift_
            : op.pc / config_.memory.l1i.lineBytes;
        if (line != lastFetchLine_) {
            mem_.fetchLatency(op.pc);
            lastFetchLine_ = line;
        }

        if (op.isBranch())
            predictor_.predictAndUpdate(op.pc, op.taken, op.target);
        else if (op.isLoad())
            mem_.loadLatency(op.memAddr);
        else if (op.isStore())
            mem_.storeLatency(op.memAddr);
    }
}

void
Cpu::resetStats()
{
    uint64_t keep_committed = 0; // measurement region starts fresh
    (void)keep_committed;
    stats_ = SimStats{};
}

void
Cpu::stepCycle()
{
    ++cycle_;
    ++stats_.cycles;
    portsFree_ = static_cast<int>(config_.memory.l1d.ports);
    scoreboard_.syncTo(cycle_);

    commitStage();
    writebackStage();
    issueStage();
    lsqStage();
    dispatchStage();
    fetchStage();

    stats_.schemeOccupancySum += scheme_->occupancy();
    stats_.robOccupancySum += rob_.size();
    if (tickHook_)
        tickHook_(*this);
}

void
Cpu::commitStage()
{
    int n = 0;
    while (n < config_.commitWidth && !rob_.empty()) {
        core::InstIdx idx = rob_.front();
        core::DynInst &inst = pool_.get(idx);
        if (!inst.completed)
            break;
        if (inst.isStore() && portsFree_ <= 0)
            break; // the store's cache write needs a port
        if (inst.op.isMem()) {
            if (lsq_.commit(idx, mem_))
                --portsFree_;
        }
        renamer_.freeAtCommit(inst);
        if (commitHook_)
            commitHook_(idx, inst.op);
        rob_.popFront();
        pool_.free(idx);
        ++stats_.committed;
        ++n;
    }
}

void
Cpu::writebackStage()
{
    auto &events = eventRing_[cycle_ % EventRingSlots];
    if (events.empty())
        return;
    core::IssueContext ctx = makeContext();
    for (const Event &ev : events) {
        core::DynInst &inst = pool_.get(ev.inst);
        switch (ev.kind) {
          case EventKind::ExecComplete:
            inst.completed = true;
            inst.completeCycle = cycle_;
            if (inst.hasDest())
                scheme_->onWakeup(inst.pdest, ctx);
            if (inst.isBranch() && inst.mispredicted) {
                // Redirect: the front-end may restart next cycle.
                fetchBlockedOnBranch_ = false;
                if (fetchResumeCycle_ < cycle_ + 1)
                    fetchResumeCycle_ = cycle_ + 1;
                scheme_->onBranchMispredict(ctx);
                stats_.counters.add(power::EventId::MispredDispWait,
                                    cycle_ - inst.dispatchCycle);
                stats_.counters.add(power::EventId::MispredFetchWait,
                                    cycle_ - inst.fetchCycle);
                stats_.counters.inc(power::EventId::MispredCount);
            }
            break;
          case EventKind::AddrReady:
            inst.addrReadyCycle = cycle_;
            lsq_.addressReady(ev.inst, pool_);
            if (inst.isStore()) {
                // Stores are architecturally done once their address
                // (and data, required at issue) are known; the write
                // happens at commit.
                inst.completed = true;
                inst.completeCycle = cycle_;
            }
            break;
          case EventKind::DataReturn:
            inst.completed = true;
            inst.completeCycle = cycle_;
            if (inst.hasDest()) {
                scoreboard_.setReadyAt(inst.pdest, cycle_);
                scheme_->onWakeup(inst.pdest, ctx);
            }
            break;
        }
    }
    events.clear();
}

void
Cpu::issueStage()
{
    core::IssueContext ctx = makeContext();
    issuedBuf_.clear();
    scheme_->issue(ctx, issuedBuf_);
    stats_.counters.inc(power::issueWidthEvent(issuedBuf_.size()));
    for (core::InstIdx idx : issuedBuf_) {
        core::DynInst &inst = pool_.get(idx);
        ++stats_.issuedOps;
        if (inst.op.isMem()) {
            schedule(cycle_ + trace::AddressLatency, EventKind::AddrReady,
                     idx);
            continue;
        }
        unsigned lat = static_cast<unsigned>(trace::opLatency(inst.op.op));
        if (inst.hasDest())
            scoreboard_.setReadyAt(inst.pdest, cycle_ + lat);
        schedule(cycle_ + lat, EventKind::ExecComplete, idx);
    }
}

void
Cpu::lsqStage()
{
    memReturns_.clear();
    lsq_.tick(cycle_, mem_, scoreboard_, pool_, portsFree_, memReturns_);
    for (const MemReturn &r : memReturns_) {
        uint64_t when = r.readyCycle > cycle_ ? r.readyCycle : cycle_ + 1;
        schedule(when, EventKind::DataReturn, r.inst);
    }
}

void
Cpu::dispatchStage()
{
    int n = 0;
    bool counted_scheme_stall = false;
    core::IssueContext ctx = makeContext();
    while (n < config_.dispatchWidth && !fetchQueue_.empty()) {
        FetchedOp &f = fetchQueue_.front();
        if (f.decodeReady > cycle_)
            break;
        if (rob_.full() || pool_.freeCount() == 0 ||
            !renamer_.canRename(f.op) ||
            (f.op.isMem() && lsq_.full())) {
            ++stats_.windowStallCycles;
            break;
        }

        // Steering decisions use architectural registers, so the
        // scheme is consulted before renaming. The probe is a
        // persistent default-state DynInst: canDispatch is const, so
        // only the fields it reads (op, seq) need refreshing.
        dispatchProbe_.op = f.op;
        dispatchProbe_.seq = f.seq;
        if (!scheme_->canDispatch(dispatchProbe_, ctx)) {
            if (!counted_scheme_stall) {
                ++stats_.dispatchStallCycles;
                counted_scheme_stall = true;
            }
            break;
        }

        core::InstIdx idx = allocInst(f);
        core::DynInst &inst = pool_.get(idx);
        fetchQueue_.popFront();
        renamer_.rename(inst);
        if (inst.hasDest())
            scoreboard_.markPending(inst.pdest);
        inst.dispatchCycle = cycle_;
        rob_.pushBack(idx);
        if (inst.op.isMem()) {
            lsq_.insert(idx, pool_);
            if (inst.isLoad())
                ++stats_.loads;
            else
                ++stats_.stores;
        }
        scheme_->dispatch(idx, ctx);
        ++stats_.dispatched;
        ++n;
    }
}

void
Cpu::fetchStage()
{
    if (fetchBlockedOnBranch_ || cycle_ < fetchResumeCycle_) {
        ++stats_.fetchStallCycles;
        return;
    }

    int n = 0;
    while (n < config_.fetchWidth && !fetchQueue_.full()) {
        if (!pendingValid_) {
            if (!trace_.next(pendingOp_)) {
                traceExhausted_ = true;
                break;
            }
            ++opsConsumed_;
            pendingValid_ = true;
        }

        // Instruction cache: one probe per line transition.
        uint64_t line = fetchLineShift_
            ? pendingOp_.pc >> fetchLineShift_
            : pendingOp_.pc / config_.memory.l1i.lineBytes;
        if (line != lastFetchLine_) {
            unsigned lat = mem_.fetchLatency(pendingOp_.pc);
            lastFetchLine_ = line;
            if (lat > config_.memory.l1i.hitLatency) {
                // Miss: refetch resumes after the fill.
                fetchResumeCycle_ = cycle_ + lat;
                break;
            }
        }

        // Build the queue entry in place (the loop condition holds a
        // free slot); every field is assigned, as emplaceBack requires.
        FetchedOp &f = *fetchQueue_.emplaceBack();
        f.op = pendingOp_;
        f.seq = nextSeq_++;
        f.fetchCycle = cycle_;
        f.decodeReady = cycle_ +
            static_cast<uint64_t>(config_.frontendDelay);
        f.mispredicted = false;
        pendingValid_ = false;

        bool stop = false;
        if (f.op.isBranch()) {
            ++stats_.branches;
            bool correct = predictor_.predictAndUpdate(
                f.op.pc, f.op.taken, f.op.target);
            if (!correct) {
                ++stats_.mispredicts;
                f.mispredicted = true;
                fetchBlockedOnBranch_ = true;
                stop = true;
            } else if (f.op.taken) {
                stop = true; // cannot fetch past a taken branch
            }
        }

        ++stats_.fetched;
        ++n;
        if (stop)
            break;
    }
}

} // namespace diq::sim

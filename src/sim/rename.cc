/**
 * @file
 * Implementation of sim/rename.hh (docs/ARCHITECTURE.md §3).
 */

#include "sim/rename.hh"

#include <cassert>

namespace diq::sim
{

RegisterRenamer::RegisterRenamer(int num_int_phys, int num_fp_phys)
    : numIntPhys_(num_int_phys), numFpPhys_(num_fp_phys)
{
    assert(numIntPhys_ >= trace::NumIntRegs);
    assert(numFpPhys_ >= trace::NumFpRegs);
    reset();
}

void
RegisterRenamer::reset()
{
    map_.assign(trace::NumLogicalRegs, -1);
    freeInt_.clear();
    freeFp_.clear();

    // Boot state: logical int reg r maps to physical r; logical FP reg
    // f (id 32+i) maps to physical numIntPhys_+i.
    for (int r = 0; r < trace::NumIntRegs; ++r)
        map_[static_cast<size_t>(r)] = r;
    for (int i = 0; i < trace::NumFpRegs; ++i)
        map_[static_cast<size_t>(trace::FpRegBase + i)] = numIntPhys_ + i;

    for (int p = numIntPhys_ - 1; p >= trace::NumIntRegs; --p)
        freeInt_.push_back(p);
    for (int p = numIntPhys_ + numFpPhys_ - 1;
         p >= numIntPhys_ + trace::NumFpRegs; --p) {
        freeFp_.push_back(p);
    }
}

bool
RegisterRenamer::canRename(const trace::MicroOp &op) const
{
    if (op.dest == trace::NoReg)
        return true;
    return trace::isFpReg(op.dest) ? !freeFp_.empty() : !freeInt_.empty();
}

void
RegisterRenamer::rename(core::DynInst &inst)
{
    const trace::MicroOp &op = inst.op;
    inst.psrc1 = mapping(op.src1);
    inst.psrc2 = mapping(op.src2);
    if (op.dest == trace::NoReg) {
        inst.pdest = core::NoPhysReg;
        inst.poldDest = core::NoPhysReg;
        return;
    }
    auto &pool = trace::isFpReg(op.dest) ? freeFp_ : freeInt_;
    assert(!pool.empty());
    int pdest = pool.back();
    pool.pop_back();
    inst.pdest = pdest;
    inst.poldDest = map_[static_cast<size_t>(op.dest)];
    map_[static_cast<size_t>(op.dest)] = pdest;
}

void
RegisterRenamer::freeAtCommit(const core::DynInst &inst)
{
    if (inst.poldDest == core::NoPhysReg)
        return;
    if (inst.poldDest < numIntPhys_)
        freeInt_.push_back(inst.poldDest);
    else
        freeFp_.push_back(inst.poldDest);
}

int
RegisterRenamer::mapping(int logical_reg) const
{
    if (logical_reg < 0 || logical_reg >= trace::NumLogicalRegs)
        return core::NoPhysReg;
    return map_[static_cast<size_t>(logical_reg)];
}

} // namespace diq::sim

/**
 * @file
 * The out-of-order processor model (Wattch/SimpleScalar-class
 * substrate, Table 1 configuration).
 *
 * Trace-driven, correct-path simulation: the workload supplies the
 * committed instruction stream; branch mispredictions block the
 * front-end until the branch resolves (plus redirect), rather than
 * injecting wrong-path work (docs/ARCHITECTURE.md §3).
 *
 * Stage order within a cycle is commit -> writeback events -> issue ->
 * LSQ -> rename/dispatch -> fetch, so values written back in cycle c
 * can feed issues in cycle c, and instructions dispatched in cycle c
 * can issue at c+1 at the earliest.
 *
 * In-flight instructions live in one core::InstPool slab sized to the
 * ROB; the ROB, LSQ, event ring and issue schemes all carry InstIdx
 * handles into it (docs/ARCHITECTURE.md §10).
 */

#ifndef DIQ_SIM_PIPELINE_HH
#define DIQ_SIM_PIPELINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "branch/predictors.hh"
#include "core/dyn_inst.hh"
#include "core/fu_pool.hh"
#include "core/inst_pool.hh"
#include "core/issue_scheme.hh"
#include "core/scoreboard.hh"
#include "mem/cache.hh"
#include "sim/config.hh"
#include "sim/lsq.hh"
#include "sim/rename.hh"
#include "sim/sim_stats.hh"
#include "trace/trace_source.hh"
#include "util/circular_buffer.hh"

namespace diq::ckpt
{
class Archive;
}

namespace diq::sim
{

/** The complete processor. */
class Cpu
{
  public:
    /** The trace must outlive the Cpu. */
    Cpu(const ProcessorConfig &config, trace::TraceSource &trace);
    ~Cpu();

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /**
     * Simulate until `num_insts` more instructions commit (or the
     * safety cycle cap fires, flagging stats().deadlocked).
     * @return cycles spent in this call.
     */
    uint64_t run(uint64_t num_insts);

    /**
     * Zero the measurement counters while keeping all warm
     * micro-architectural state (caches, predictors, in-flight work) —
     * the warm-up idiom: run(w); resetStats(); run(n).
     */
    void resetStats();

    /** Observer of every committed (retired) micro-op, in order. */
    using CommitHook =
        std::function<void(core::InstIdx, const trace::MicroOp &)>;

    /**
     * Install an observer called once per committed instruction with
     * its pool handle (still live during the call) and the retired
     * micro-op, in commit (program) order. The retired stream is the
     * cross-scheme ground truth the differential fuzz harness compares
     * (src/fuzz/differential.hh); pass an empty hook to detach. Purely
     * observational: no counter or timing changes whether a hook is
     * installed or not.
     */
    void setCommitHook(CommitHook hook) { commitHook_ = std::move(hook); }

    /** Observer of complete machine state at the end of each cycle. */
    using TickHook = std::function<void(const Cpu &)>;

    /**
     * Install an observer called at the end of every stepCycle with
     * the whole machine visible — the pool-invariant property suite
     * hangs its checks here (tests/test_pool_invariants.cc). Purely
     * observational, like the commit hook.
     */
    void setTickHook(TickHook hook) { tickHook_ = std::move(hook); }

    /**
     * Consume `num_ops` trace ops *functionally*: no cycles pass and
     * no pipeline state forms, but the branch predictor trains on
     * every branch and the caches are touched by every fetch line and
     * memory access — SMARTS-style functional warming. Used by the
     * warmup-seeded interval runner (src/ckpt/interval.hh) to
     * fast-forward to an interval head at trace-decode speed. Must be
     * called on a fresh machine (nothing in flight). Stops early if
     * the trace ends.
     */
    void functionalAdvance(uint64_t num_ops);

    /**
     * Serialize (Save mode) or overwrite (Load mode) the complete
     * persistent machine state — every structure that influences
     * future cycles: pipeline windows, pool, scoreboard, renamer,
     * LSQ, scheme, predictor, caches, FU pool, stats/counters and the
     * front-end cursor. Cycle-local scratch (issue buffers, steering
     * memos) is excluded: it is provably dead across stepCycle
     * boundaries. Restore-then-run is counter-dump byte-identical to
     * an uninterrupted run (pinned by tests/test_ckpt.cc); see
     * docs/CHECKPOINTS.md. Load requires a Cpu constructed from the
     * identical ProcessorConfig.
     */
    void serialize(ckpt::Archive &ar);

    /**
     * Trace ops consumed from the source so far (including a buffered
     * pending op not yet fetched) — the snapshot's trace cursor:
     * restore re-creates the workload and skips this many ops.
     */
    uint64_t opsConsumed() const { return opsConsumed_; }

    const SimStats &stats() const { return stats_; }
    SimStats &stats() { return stats_; }
    const ProcessorConfig &config() const { return config_; }
    const mem::MemoryHierarchy &memory() const { return mem_; }
    const branch::HybridPredictor &predictor() const { return predictor_; }
    core::IssueScheme &scheme() { return *scheme_; }
    const core::IssueScheme &scheme() const { return *scheme_; }
    const core::InstPool &pool() const { return pool_; }
    const core::Scoreboard &scoreboard() const { return scoreboard_; }
    uint64_t cycle() const { return cycle_; }

  private:
    struct FetchedOp
    {
        trace::MicroOp op;
        uint64_t seq = 0;
        uint64_t fetchCycle = 0;
        uint64_t decodeReady = 0; ///< earliest rename/dispatch cycle
        bool mispredicted = false;
    };

    enum class EventKind : uint8_t { ExecComplete, AddrReady, DataReturn };

    struct Event
    {
        EventKind kind;
        core::InstIdx inst;
    };

    static constexpr size_t EventRingSlots = 512;

    void stepCycle();
    void commitStage();
    void writebackStage();
    void issueStage();
    void lsqStage();
    void dispatchStage();
    void fetchStage();

    void schedule(uint64_t cycle, EventKind kind, core::InstIdx inst);

    core::InstIdx allocInst(const FetchedOp &f);

    core::IssueContext makeContext();

    ProcessorConfig config_;
    trace::TraceSource &trace_;

    // Substrates.
    branch::HybridPredictor predictor_;
    mem::MemoryHierarchy mem_;
    core::FuPool fus_;
    core::Scoreboard scoreboard_;
    RegisterRenamer renamer_;
    LoadStoreQueue lsq_;
    std::unique_ptr<core::IssueScheme> scheme_;

    // Window structures.
    util::CircularBuffer<FetchedOp> fetchQueue_;
    util::CircularBuffer<core::InstIdx> rob_;
    core::InstPool pool_;

    // Event wheel (bounded latencies).
    std::vector<std::vector<Event>> eventRing_;

    // Cycle-local scratch.
    std::vector<core::InstIdx> issuedBuf_;
    std::vector<MemReturn> memReturns_;
    /** Steering probe for canDispatch; stays in its default state
     *  apart from op/seq (canDispatch is const). */
    core::DynInst dispatchProbe_;
    int portsFree_ = 0;

    // Front-end state.
    bool fetchBlockedOnBranch_ = false;
    uint64_t fetchResumeCycle_ = 0;
    uint64_t lastFetchLine_ = ~uint64_t{0};
    /** log2(l1i.lineBytes) when a power of two, else 0 (divide). */
    unsigned fetchLineShift_ = 0;
    bool pendingValid_ = false;
    trace::MicroOp pendingOp_{};
    bool traceExhausted_ = false;

    uint64_t cycle_ = 0;
    uint64_t nextSeq_ = 1;
    /** Ops pulled from trace_ (fetch + functionalAdvance). */
    uint64_t opsConsumed_ = 0;

    CommitHook commitHook_;
    TickHook tickHook_;

    SimStats stats_;
};

} // namespace diq::sim

#endif // DIQ_SIM_PIPELINE_HH

/**
 * @file
 * Load/store queue with conservative store-address disambiguation.
 *
 * The paper (§3.1) splits memory operations into address computation
 * and memory access: a load's access may not begin until the addresses
 * of *all* older stores are known; matching older stores forward their
 * data. The LSQ tracks in-flight memory operations in program order,
 * starts eligible loads subject to the L1D port budget, and performs
 * store writes at commit.
 *
 * Entries carry InstIdx pool handles. Each memory op is stamped with a
 * monotone insertion ticket (DynInst::lsqTicket); because entries only
 * ever leave from the front, `ticket - headTicket` is the op's current
 * queue position, making addressReady() O(1) instead of a scan.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §3, §10.
 */

#ifndef DIQ_SIM_LSQ_HH
#define DIQ_SIM_LSQ_HH

#include <cstdint>
#include <vector>

#include "core/dyn_inst.hh"
#include "core/inst_pool.hh"
#include "core/scoreboard.hh"
#include "mem/cache.hh"
#include "util/circular_buffer.hh"

namespace diq::ckpt
{
class Archive;
}

namespace diq::sim
{

/** A load data return produced by LoadStoreQueue::tick. */
struct MemReturn
{
    core::InstIdx inst;
    uint64_t readyCycle;
    bool forwarded; ///< satisfied by store-to-load forwarding
};

/** Program-ordered memory-operation tracking. */
class LoadStoreQueue
{
  public:
    /**
     * @param capacity maximum in-flight memory ops (ROB-bounded)
     * @param forward_latency cycles for a store-to-load forward
     */
    explicit LoadStoreQueue(size_t capacity, unsigned forward_latency = 1);

    bool full() const { return queue_.full(); }
    size_t size() const { return queue_.size(); }

    /** Insert at dispatch (program order); stamps the ticket. */
    void insert(core::InstIdx idx, core::InstPool &pool);

    /** The op's effective address became known (issue + AddressLatency). */
    void addressReady(core::InstIdx idx, const core::InstPool &pool);

    /**
     * Start every eligible load this cycle, bounded by `ports_free`
     * L1D ports. Appends data-return events to `out` and decrements
     * `ports_free` for each cache access made. Forwarding from a store
     * whose data operand is still pending (per `sb`) defers the load.
     */
    void tick(uint64_t cycle, mem::MemoryHierarchy &mem,
              const core::Scoreboard &sb, core::InstPool &pool,
              int &ports_free, std::vector<MemReturn> &out);

    /**
     * Remove the oldest entry (must be `idx`); a store performs its
     * cache write here. @return true if a cache port was consumed.
     */
    bool commit(core::InstIdx idx, mem::MemoryHierarchy &mem);

    /** Loads that had to wait on unknown older store addresses. */
    uint64_t disambiguationStalls() const { return disambStalls_; }
    uint64_t forwards() const { return forwards_; }

    void clear();

    /** Snapshot codec hook (src/ckpt): queue entries oldest-first,
     *  tickets and occupancy summaries (ckpt/state_serialize.cc). */
    void serialize(ckpt::Archive &ar);

  private:
    struct Entry
    {
        core::InstIdx inst = core::NoInst;
        uint64_t granule = 0; ///< memAddr >> 3, cached at insert
        uint64_t memAddr = 0; ///< cached inst op.memAddr
        int dataReg = core::NoPhysReg; ///< store data operand (psrc2)
        bool isStore = false; ///< cached inst isStore()
        bool isLoad = false;  ///< cached inst isLoad()
        bool addrKnown = false;
        bool memStarted = false;
    };

    util::CircularBuffer<Entry> queue_;
    unsigned forwardLatency_;
    uint64_t disambStalls_ = 0;
    uint64_t forwards_ = 0;

    /** Ticket of the queue front; entries only leave from the front,
     *  so position = lsqTicket - headTicket_ (wrap-safe uint32). */
    uint32_t headTicket_ = 0;
    uint32_t nextTicket_ = 0;

    /**
     * Occupancy summaries that let tick() skip its program-order walks
     * on the (common) cycles where they could not do anything:
     * startableLoads_ counts loads with addrKnown && !memStarted, and
     * unknownStoreAddrs_ counts stores whose address is still unknown.
     */
    uint64_t startableLoads_ = 0;
    uint64_t unknownStoreAddrs_ = 0;
};

} // namespace diq::sim

#endif // DIQ_SIM_LSQ_HH

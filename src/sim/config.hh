/**
 * @file
 * Processor configuration (Table 1 of the paper).
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §3.
 */

#ifndef DIQ_SIM_CONFIG_HH
#define DIQ_SIM_CONFIG_HH

#include <string>

#include "core/issue_scheme.hh"
#include "mem/cache.hh"

namespace diq::sim
{

/** Full machine configuration; defaults reproduce Table 1. */
struct ProcessorConfig
{
    // Widths.
    int fetchWidth = 8;
    int dispatchWidth = 8; ///< decode/rename/dispatch per cycle
    int commitWidth = 8;

    // Window structures.
    int fetchQueueSize = 64;
    int robSize = 256;
    int numIntPhysRegs = 160;
    int numFpPhysRegs = 160;

    /**
     * Cycles between fetching an instruction and its earliest
     * rename/dispatch (decode depth). Together with branch resolution
     * this sets the mispredict penalty.
     */
    int frontendDelay = 3;

    // Branch predictor (Table 1: hybrid 2K gshare + 2K bimodal + 1K
    // selector; BTB 2048 entries 4-way).
    int gshareEntries = 2048;
    int bimodalEntries = 2048;
    int selectorEntries = 1024;
    int btbEntries = 2048;
    int btbAssoc = 4;

    // Memory hierarchy (Table 1 defaults inside).
    mem::MemoryHierarchy::Config memory{};

    // Issue logic under study.
    core::SchemeConfig scheme = core::SchemeConfig::iq6464();

    /** Hard cycle cap as a safety net against pathological stalls. */
    uint64_t maxCyclesPerInst = 1000;

    /** Render Table 1 plus the scheme, for bench_table1/README. */
    std::string table1String() const;

    /** Knob-wise equality (the spec layer round-trips on this). */
    bool operator==(const ProcessorConfig &) const = default;
};

} // namespace diq::sim

#endif // DIQ_SIM_CONFIG_HH

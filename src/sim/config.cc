/**
 * @file
 * Implementation of sim/config.hh (docs/ARCHITECTURE.md §3).
 */

#include "sim/config.hh"

#include <sstream>

namespace diq::sim
{

std::string
ProcessorConfig::table1String() const
{
    std::ostringstream os;
    os << "Parameter                     Configuration\n"
       << "----------------------------  ---------------------------------\n"
       << "Fetch/decode/commit width     " << fetchWidth << " instructions\n"
       << "Issue width                   8 integer + 8 FP instructions\n"
       << "Branch predictor              Hybrid: " << gshareEntries
       << "-entry gshare, " << bimodalEntries << "-entry bimodal, "
       << selectorEntries << "-entry selector\n"
       << "BTB                           " << btbEntries << " entries, "
       << btbAssoc << "-way set associative\n"
       << "L1 Icache                     " << memory.l1i.sizeBytes / 1024
       << "K, " << memory.l1i.assoc << "-way, " << memory.l1i.lineBytes
       << " byte/line, " << memory.l1i.hitLatency << " cycle\n"
       << "L1 Dcache                     " << memory.l1d.sizeBytes / 1024
       << "K, " << memory.l1d.assoc << "-way, " << memory.l1d.lineBytes
       << " byte/line, " << memory.l1d.hitLatency << " cycle, "
       << memory.l1d.ports << " R/W ports\n"
       << "L2 unified cache              " << memory.l2.sizeBytes / 1024
       << "K, " << memory.l2.assoc << "-way, " << memory.l2.lineBytes
       << " byte/line, " << memory.l2.hitLatency << " cycle\n"
       << "Main memory                   "
       << memory.memory.firstChunkLatency << " cycles first chunk, "
       << memory.memory.interChunkLatency << " cycles inter-chunk\n"
       << "Fetch queue                   " << fetchQueueSize << " entries\n"
       << "Reorder buffer                " << robSize << " entries\n"
       << "Registers                     " << numIntPhysRegs << " INT + "
       << numFpPhysRegs << " FP\n"
       << "INT functional units          8 ALU (1 cycle), 4 mult/div"
       << " (3-cycle mult, 20-cycle div)\n"
       << "FP functional units           4 ALU (2 cycles), 4 mult/div"
       << " (4-cycle mult, 12-cycle div)\n"
       << "Technology                    0.10 um\n"
       << "Issue queue organization      " << scheme.name() << "\n";
    return os.str();
}

} // namespace diq::sim

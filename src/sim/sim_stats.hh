/**
 * @file
 * Aggregate statistics of one simulation run (measurement region).
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §3.
 */

#ifndef DIQ_SIM_SIM_STATS_HH
#define DIQ_SIM_SIM_STATS_HH

#include <cstdint>

#include "power/event_counters.hh"

namespace diq::sim
{

/** Counters over the measured region (reset by Cpu::resetStats). */
struct SimStats
{
    uint64_t cycles = 0;
    uint64_t committed = 0;
    uint64_t fetched = 0;
    uint64_t dispatched = 0;
    uint64_t issuedOps = 0;

    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;

    /** Cycles where a decode-ready instruction could not dispatch
     *  because the issue scheme refused it. */
    uint64_t dispatchStallCycles = 0;
    /** Cycles where dispatch was blocked by ROB/registers/LSQ. */
    uint64_t windowStallCycles = 0;
    /** Cycles with the front-end blocked (mispredict or icache miss). */
    uint64_t fetchStallCycles = 0;

    /** Sum over cycles of scheme occupancy (avg = /cycles). */
    uint64_t schemeOccupancySum = 0;
    /** Sum over cycles of ROB occupancy. */
    uint64_t robOccupancySum = 0;

    /** True when the run aborted on the cycle cap (pipeline bug). */
    bool deadlocked = false;

    /** Micro-architectural energy events, densely indexed by
     *  power::EventId (see power/events.hh). */
    power::EventCounters counters;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committed) / cycles : 0.0;
    }

    double
    mispredictRate() const
    {
        return branches ? static_cast<double>(mispredicts) / branches : 0.0;
    }

    double
    avgSchemeOccupancy() const
    {
        return cycles ? static_cast<double>(schemeOccupancySum) / cycles
                      : 0.0;
    }
};

} // namespace diq::sim

#endif // DIQ_SIM_SIM_STATS_HH

/**
 * @file
 * Implementation of sim/lsq.hh (docs/ARCHITECTURE.md §3, §10).
 *
 * tick() is on the per-cycle hot path; its program-order walks are
 * gated on two occupancy counters (startable loads, unknown store
 * addresses) so the common no-eligible-work cycle costs O(1) instead
 * of O(queue). Entry caches the op class, access granule, address and
 * store data register to avoid re-deriving them from the instruction
 * on every walk, and addressReady() resolves its entry by ticket
 * arithmetic rather than scanning.
 */

#include "sim/lsq.hh"

#include <cassert>

namespace diq::sim
{

LoadStoreQueue::LoadStoreQueue(size_t capacity, unsigned forward_latency)
    : queue_(capacity), forwardLatency_(forward_latency)
{
}

void
LoadStoreQueue::insert(core::InstIdx idx, core::InstPool &pool)
{
    assert(!queue_.full());
    core::DynInst &inst = pool.get(idx);
    inst.lsqTicket = nextTicket_++;
    Entry e;
    e.inst = idx;
    e.granule = inst.op.memAddr >> 3;
    e.memAddr = inst.op.memAddr;
    e.dataReg = inst.psrc2;
    e.isStore = inst.isStore();
    e.isLoad = inst.isLoad();
    queue_.pushBack(e);
    if (e.isStore)
        ++unknownStoreAddrs_;
}

void
LoadStoreQueue::addressReady(core::InstIdx idx,
                             const core::InstPool &pool)
{
    uint32_t pos = pool.get(idx).lsqTicket - headTicket_;
    assert(pos < queue_.size() && "addressReady for op not in LSQ");
    Entry &e = queue_.at(pos);
    assert(e.inst == idx);
    if (!e.addrKnown) {
        e.addrKnown = true;
        if (e.isStore)
            --unknownStoreAddrs_;
        else if (e.isLoad && !e.memStarted)
            ++startableLoads_;
    }
}

void
LoadStoreQueue::tick(uint64_t cycle, mem::MemoryHierarchy &mem,
                     const core::Scoreboard &sb, core::InstPool &pool,
                     int &ports_free, std::vector<MemReturn> &out)
{
    // Walk from the head; all older stores up to the scan point have
    // known addresses, which is exactly the disambiguation frontier.
    // With no startable load the walk has no observable effect: skip.
    if (startableLoads_ != 0) {
        // `ahead` counts the startable loads not yet visited; once it
        // reaches zero the rest of the walk cannot start anything.
        uint64_t ahead = startableLoads_;
        for (size_t i = 0;
             i < queue_.size() && ports_free > 0 && ahead > 0; ++i) {
            Entry &e = queue_.at(i);
            if (e.isStore) {
                if (!e.addrKnown)
                    break; // unknown store address: younger loads wait
                continue;
            }
            if (!e.isLoad || e.memStarted || !e.addrKnown)
                continue;
            --ahead;

            // Forward from the youngest older store to the same granule.
            const Entry *fwd_store = nullptr;
            for (size_t j = i; j-- > 0;) {
                const Entry &s = queue_.at(j);
                if (!s.isStore)
                    continue;
                if (s.granule == e.granule) {
                    fwd_store = &s;
                    break;
                }
            }

            if (fwd_store) {
                // Forwarding needs the store's data operand; until it is
                // produced the load simply retries.
                int data_reg = fwd_store->dataReg;
                if (data_reg != core::NoPhysReg &&
                    !sb.isReady(data_reg, cycle)) {
                    continue;
                }
                e.memStarted = true;
                --startableLoads_;
                pool.get(e.inst).memStartCycle = cycle;
                ++forwards_;
                out.push_back({e.inst, cycle + forwardLatency_, true});
            } else {
                e.memStarted = true;
                --startableLoads_;
                pool.get(e.inst).memStartCycle = cycle;
                --ports_free;
                unsigned latency = mem.loadLatency(e.memAddr);
                out.push_back({e.inst, cycle + latency, false});
            }
        }
    }

    // Count cycles where some known-address load is blocked only by
    // disambiguation (for reporting). Needs an unknown-address store
    // with a startable load somewhere behind it; when either count is
    // zero the walk cannot find one.
    if (unknownStoreAddrs_ != 0 && startableLoads_ != 0) {
        bool frontier_hit = false;
        for (size_t i = 0; i < queue_.size(); ++i) {
            const Entry &e = queue_.at(i);
            if (e.isStore && !e.addrKnown) {
                frontier_hit = true;
                continue;
            }
            if (frontier_hit && e.isLoad && e.addrKnown && !e.memStarted) {
                ++disambStalls_;
                break;
            }
        }
    }
}

bool
LoadStoreQueue::commit(core::InstIdx idx, mem::MemoryHierarchy &mem)
{
    assert(!queue_.empty());
    Entry e = queue_.popFront();
    ++headTicket_;
    assert(e.inst == idx);
    (void)idx;
    // Committed memory ops have started (loads) / resolved their
    // address (stores); keep the summaries right even if not.
    if (e.isStore && !e.addrKnown)
        --unknownStoreAddrs_;
    if (e.isLoad && e.addrKnown && !e.memStarted)
        --startableLoads_;
    if (e.isStore) {
        // Write-allocate, write-back; latency is absorbed by the
        // write buffer, but the access perturbs cache state and uses
        // a port.
        mem.storeLatency(e.memAddr);
        return true;
    }
    return false;
}

void
LoadStoreQueue::clear()
{
    queue_.clear();
    disambStalls_ = 0;
    forwards_ = 0;
    startableLoads_ = 0;
    unknownStoreAddrs_ = 0;
    headTicket_ = nextTicket_;
}

} // namespace diq::sim

/**
 * @file
 * Implementation of sim/lsq.hh (docs/ARCHITECTURE.md §3).
 */

#include "sim/lsq.hh"

#include <cassert>

namespace diq::sim
{

LoadStoreQueue::LoadStoreQueue(size_t capacity, unsigned forward_latency)
    : queue_(capacity), forwardLatency_(forward_latency)
{
}

void
LoadStoreQueue::insert(core::DynInst *inst)
{
    assert(!queue_.full());
    Entry e;
    e.inst = inst;
    queue_.pushBack(e);
}

void
LoadStoreQueue::addressReady(core::DynInst *inst)
{
    // Entries are few and short-lived; a linear scan from the tail
    // finds the op quickly (it issued recently).
    for (size_t i = queue_.size(); i-- > 0;) {
        Entry &e = queue_.at(i);
        if (e.inst == inst) {
            e.addrKnown = true;
            return;
        }
    }
    assert(false && "addressReady for op not in LSQ");
}

void
LoadStoreQueue::tick(uint64_t cycle, mem::MemoryHierarchy &mem,
                     const core::Scoreboard &sb, int &ports_free,
                     std::vector<MemReturn> &out)
{
    // Walk from the head; all older stores up to the scan point have
    // known addresses, which is exactly the disambiguation frontier.
    for (size_t i = 0; i < queue_.size() && ports_free > 0; ++i) {
        Entry &e = queue_.at(i);
        if (e.inst->isStore()) {
            if (!e.addrKnown)
                break; // unknown store address: younger loads wait
            continue;
        }
        if (!e.inst->isLoad() || e.memStarted || !e.addrKnown)
            continue;

        // Forward from the youngest older store to the same granule.
        const Entry *fwd_store = nullptr;
        for (size_t j = i; j-- > 0;) {
            const Entry &s = queue_.at(j);
            if (!s.inst->isStore())
                continue;
            if ((s.inst->op.memAddr >> 3) == (e.inst->op.memAddr >> 3)) {
                fwd_store = &s;
                break;
            }
        }

        if (fwd_store) {
            // Forwarding needs the store's data operand; until it is
            // produced the load simply retries.
            int data_reg = fwd_store->inst->psrc2;
            if (data_reg != core::NoPhysReg &&
                !sb.isReady(data_reg, cycle)) {
                continue;
            }
            e.memStarted = true;
            e.inst->memStartCycle = cycle;
            ++forwards_;
            out.push_back({e.inst, cycle + forwardLatency_, true});
        } else {
            e.memStarted = true;
            e.inst->memStartCycle = cycle;
            --ports_free;
            unsigned latency = mem.loadLatency(e.inst->op.memAddr);
            out.push_back({e.inst, cycle + latency, false});
        }
    }

    // Count cycles where some known-address load is blocked only by
    // disambiguation (for reporting).
    bool frontier_hit = false;
    for (size_t i = 0; i < queue_.size(); ++i) {
        const Entry &e = queue_.at(i);
        if (e.inst->isStore() && !e.addrKnown) {
            frontier_hit = true;
            continue;
        }
        if (frontier_hit && e.inst->isLoad() && e.addrKnown &&
            !e.memStarted) {
            ++disambStalls_;
            break;
        }
    }
}

bool
LoadStoreQueue::commit(core::DynInst *inst, mem::MemoryHierarchy &mem)
{
    assert(!queue_.empty());
    Entry e = queue_.popFront();
    assert(e.inst == inst);
    (void)inst;
    if (e.inst->isStore()) {
        // Write-allocate, write-back; latency is absorbed by the
        // write buffer, but the access perturbs cache state and uses
        // a port.
        mem.storeLatency(e.inst->op.memAddr);
        return true;
    }
    return false;
}

void
LoadStoreQueue::clear()
{
    queue_.clear();
    disambStalls_ = 0;
    forwards_ = 0;
}

} // namespace diq::sim

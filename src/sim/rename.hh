/**
 * @file
 * Register renaming: logical -> physical mapping with free lists.
 *
 * Table 1: 160 INT + 160 FP physical registers. Physical register ids
 * are global (INT pool first, FP pool after) so one scoreboard covers
 * both files. The previous mapping of an instruction's destination is
 * freed when the instruction commits.
 *
 * Paper ↔ code map: docs/ARCHITECTURE.md §3.
 */

#ifndef DIQ_SIM_RENAME_HH
#define DIQ_SIM_RENAME_HH

#include <vector>

#include "core/dyn_inst.hh"
#include "trace/isa.hh"

namespace diq::ckpt
{
class Archive;
}

namespace diq::sim
{

/** Map tables + free lists for both register files. */
class RegisterRenamer
{
  public:
    RegisterRenamer(int num_int_phys, int num_fp_phys);

    /** Total physical registers (scoreboard size). */
    int numPhysRegs() const { return numIntPhys_ + numFpPhys_; }

    /** Can `inst`'s destination (if any) be renamed right now? */
    bool canRename(const trace::MicroOp &op) const;

    /**
     * Fill psrc1/psrc2/pdest/poldDest of `inst` and update the map.
     * Requires canRename().
     */
    void rename(core::DynInst &inst);

    /** Commit-time release of the overwritten mapping. */
    void freeAtCommit(const core::DynInst &inst);

    /** Current physical mapping of a logical register (-1: none). */
    int mapping(int logical_reg) const;

    int freeIntRegs() const
    {
        return static_cast<int>(freeInt_.size());
    }
    int freeFpRegs() const { return static_cast<int>(freeFp_.size()); }

    /** Restore the boot mapping and full free lists. */
    void reset();

    /** Snapshot codec hook (src/ckpt): map table + both free stacks
     *  in LIFO order (ckpt/state_serialize.cc). */
    void serialize(ckpt::Archive &ar);

  private:
    int numIntPhys_;
    int numFpPhys_;
    std::vector<int> map_;     ///< logical -> physical
    std::vector<int> freeInt_; ///< stack of free INT physical regs
    std::vector<int> freeFp_;  ///< stack of free FP physical regs
};

} // namespace diq::sim

#endif // DIQ_SIM_RENAME_HH

/**
 * @file
 * Implementation of store/result_store.hh (docs/ARCHITECTURE.md §11).
 */

#include "store/result_store.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <fstream>
#include <system_error>

#ifndef _WIN32
#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#endif

namespace diq::store
{

namespace fs = std::filesystem;

namespace
{

constexpr char kStoreMagic[4] = {'D', 'I', 'Q', 'R'};
constexpr uint16_t kStoreFormatVersion = 1;

/** Result schema tag: the event-bank size. Growing power::EventId
 *  changes the counter payload, so old entries must fail loudly as
 *  "schema skew", not misdecode. */
constexpr uint16_t kStoreSchemaVersion =
    static_cast<uint16_t>(power::NumEvents);

constexpr size_t kHeaderBytes = 4 + 2 + 2 + 8 + 8;

/** Hash-collision probe slots per key; far beyond plausible need. */
constexpr unsigned kMaxProbes = 8;

/** Cap on decoded string/vector lengths: anything larger in an entry
 *  that passed the checksum is a constructed hostile input, not data. */
constexpr uint64_t kMaxFieldLength = 1 << 20;

// --- Little-endian primitives ---------------------------------------

void
putU16(std::string &out, uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>(v >> 8));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putVarint(std::string &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

void
putStr(std::string &out, const std::string &s)
{
    putVarint(out, s.size());
    out.append(s);
}

void
putF64(std::string &out, double v)
{
    putU64(out, std::bit_cast<uint64_t>(v));
}

/** Bounds-checked payload reader; any overrun latches `bad`. */
struct Reader
{
    const char *p;
    size_t n;
    size_t at = 0;
    bool bad = false;

    uint8_t
    byte()
    {
        if (at >= n) {
            bad = true;
            return 0;
        }
        return static_cast<uint8_t>(p[at++]);
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(byte()) << (8 * i);
        return v;
    }

    uint64_t
    varint()
    {
        uint64_t out = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            uint8_t b = byte();
            if (shift == 63 && (b & 0x7e)) {
                bad = true;
                return 0;
            }
            out |= static_cast<uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return out;
        }
        bad = true;
        return 0;
    }

    std::string
    str()
    {
        uint64_t len = varint();
        if (bad || len > kMaxFieldLength || at + len > n) {
            bad = true;
            return {};
        }
        std::string s(p + at, len);
        at += len;
        return s;
    }

    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }
};

std::string
hex16(uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i, v >>= 4)
        s[static_cast<size_t>(i)] = digits[v & 0xf];
    return s;
}

/**
 * Write `data` to `path` and flush it to stable storage before
 * returning (POSIX fsync; plain stream flush elsewhere).
 * @throws StoreError on any I/O failure.
 */
void
writeFileDurably(const fs::path &path, const std::string &data)
{
#ifndef _WIN32
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw StoreError("cannot create '" + path.string() + "'");
    size_t done = 0;
    while (done < data.size()) {
        ssize_t w = ::write(fd, data.data() + done, data.size() - done);
        if (w < 0) {
            ::close(fd);
            throw StoreError("short write to '" + path.string() + "'");
        }
        done += static_cast<size_t>(w);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        throw StoreError("fsync failed for '" + path.string() + "'");
    }
    if (::close(fd) != 0)
        throw StoreError("close failed for '" + path.string() + "'");
#else
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
    os.flush();
    if (!os)
        throw StoreError("cannot write '" + path.string() + "'");
#endif
}

/** Flush a directory's metadata (the rename) to stable storage. */
void
fsyncDirectory(const fs::path &dir)
{
#ifndef _WIN32
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#else
    (void)dir;
#endif
}

/** Whole-file read; nullopt when the file cannot be opened. */
std::optional<std::string>
slurp(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    if (is.bad())
        return std::nullopt;
    return bytes;
}

/** Unique-per-call temp suffix: pid + process-wide counter, so
 *  concurrent writers (threads or processes) never share a file. */
std::string
tmpSuffix()
{
    static std::atomic<uint64_t> seq{0};
#ifndef _WIN32
    uint64_t pid = static_cast<uint64_t>(::getpid());
#else
    uint64_t pid = 0;
#endif
    return ".tmp." + std::to_string(pid) + "." +
        std::to_string(seq.fetch_add(1));
}

bool
isTmpFile(const std::string &name)
{
    return name.find(".tmp.") != std::string::npos;
}

} // namespace

// --- Codec ----------------------------------------------------------

uint64_t
fnv1a64(const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

const char *
entryStatusName(EntryStatus s)
{
    switch (s) {
      case EntryStatus::Valid:            return "valid";
      case EntryStatus::Empty:            return "empty";
      case EntryStatus::BadMagic:         return "bad_magic";
      case EntryStatus::VersionSkew:      return "version_skew";
      case EntryStatus::SchemaSkew:       return "schema_skew";
      case EntryStatus::Truncated:        return "truncated";
      case EntryStatus::ChecksumMismatch: return "checksum_mismatch";
      case EntryStatus::CorruptField:     return "corrupt_field";
      case EntryStatus::TrailingGarbage:  return "trailing_garbage";
    }
    return "unknown";
}

std::string
encodeEntry(const std::string &key, const runner::SimResult &result)
{
    std::string payload;
    putStr(payload, key);
    putStr(payload, result.benchmark);
    putStr(payload, result.scheme);
    putF64(payload, result.ipc);

    const sim::SimStats &s = result.stats;
    for (uint64_t v : {s.cycles, s.committed, s.fetched, s.dispatched,
                       s.issuedOps, s.branches, s.mispredicts, s.loads,
                       s.stores, s.dispatchStallCycles,
                       s.windowStallCycles, s.fetchStallCycles,
                       s.schemeOccupancySum, s.robOccupancySum})
        putU64(payload, v);
    payload.push_back(s.deadlocked ? 1 : 0);

    putVarint(payload, power::NumEvents);
    for (size_t i = 0; i < power::NumEvents; ++i)
        putU64(payload,
               s.counters.get(static_cast<power::EventId>(i)));

    putVarint(payload, result.energy.components.size());
    for (const auto &[name, pj] : result.energy.components) {
        putStr(payload, name);
        putF64(payload, pj);
    }

    std::string out;
    out.reserve(kHeaderBytes + payload.size());
    out.append(kStoreMagic, sizeof kStoreMagic);
    putU16(out, kStoreFormatVersion);
    putU16(out, kStoreSchemaVersion);
    putU64(out, payload.size());
    putU64(out, fnv1a64(payload.data(), payload.size()));
    out.append(payload);
    return out;
}

EntryStatus
decodeEntry(const std::string &bytes, std::string &key,
            runner::SimResult &result)
{
    if (bytes.empty())
        return EntryStatus::Empty;
    if (std::memcmp(bytes.data(), kStoreMagic,
                    std::min(bytes.size(), sizeof kStoreMagic)) != 0)
        return EntryStatus::BadMagic;
    if (bytes.size() < kHeaderBytes)
        return EntryStatus::Truncated;

    Reader h{bytes.data() + 4, bytes.size() - 4};
    uint16_t format = static_cast<uint16_t>(h.byte());
    format |= static_cast<uint16_t>(h.byte()) << 8;
    uint16_t schema = static_cast<uint16_t>(h.byte());
    schema |= static_cast<uint16_t>(h.byte()) << 8;
    uint64_t payloadLen = h.u64();
    uint64_t checksum = h.u64();
    if (format != kStoreFormatVersion)
        return EntryStatus::VersionSkew;
    if (schema != kStoreSchemaVersion)
        return EntryStatus::SchemaSkew;
    if (kHeaderBytes + payloadLen > bytes.size())
        return EntryStatus::Truncated;
    if (kHeaderBytes + payloadLen < bytes.size())
        return EntryStatus::TrailingGarbage;

    const char *payload = bytes.data() + kHeaderBytes;
    if (fnv1a64(payload, payloadLen) != checksum)
        return EntryStatus::ChecksumMismatch;

    Reader r{payload, static_cast<size_t>(payloadLen)};
    std::string k = r.str();
    runner::SimResult out;
    out.benchmark = r.str();
    out.scheme = r.str();
    out.ipc = r.f64();

    sim::SimStats &s = out.stats;
    for (uint64_t *f : {&s.cycles, &s.committed, &s.fetched,
                        &s.dispatched, &s.issuedOps, &s.branches,
                        &s.mispredicts, &s.loads, &s.stores,
                        &s.dispatchStallCycles, &s.windowStallCycles,
                        &s.fetchStallCycles, &s.schemeOccupancySum,
                        &s.robOccupancySum})
        *f = r.u64();
    s.deadlocked = r.byte() != 0;

    uint64_t nCounters = r.varint();
    if (r.bad || nCounters != power::NumEvents)
        return EntryStatus::CorruptField;
    for (size_t i = 0; i < power::NumEvents; ++i)
        s.counters.add(static_cast<power::EventId>(i), r.u64());

    uint64_t nComponents = r.varint();
    if (r.bad || nComponents > 1024)
        return EntryStatus::CorruptField;
    for (uint64_t i = 0; i < nComponents; ++i) {
        std::string name = r.str();
        double pj = r.f64();
        out.energy.components.emplace_back(std::move(name), pj);
    }

    if (r.bad || r.at != r.n || k.empty())
        return EntryStatus::CorruptField;

    key = std::move(k);
    result = std::move(out);
    return EntryStatus::Valid;
}

// --- StoreLock ------------------------------------------------------

namespace
{

/** True when `pid` names a process that is still alive (or one we
 *  lack permission to signal — alive either way). A zombie counts as
 *  dead: a SIGKILLed lock holder whose parent never reaps it would
 *  otherwise pin the lock forever. */
bool
pidAlive(long pid)
{
#ifndef _WIN32
    if (pid <= 0)
        return false;
    if (::kill(static_cast<pid_t>(pid), 0) != 0 && errno != EPERM)
        return false;
#ifdef __linux__
    // kill(pid, 0) succeeds on zombies; check the /proc state field.
    // Field 3 of /proc/<pid>/stat follows the parenthesised comm,
    // which may itself contain spaces or parens — scan past the LAST
    // ')' rather than tokenising from the front.
    std::ifstream stat("/proc/" + std::to_string(pid) + "/stat");
    std::string line;
    if (stat && std::getline(stat, line)) {
        size_t close = line.rfind(')');
        if (close != std::string::npos) {
            size_t state = line.find_first_not_of(' ', close + 1);
            if (state != std::string::npos && line[state] == 'Z')
                return false;
        }
    }
#endif
    return true;
#else
    (void)pid;
    return false;
#endif
}

} // namespace

long
StoreLock::holderPid(const fs::path &root)
{
    auto bytes = slurp(root / "LOCK");
    if (!bytes)
        return 0;
    try {
        return std::stol(*bytes);
    } catch (const std::exception &) {
        return 0;
    }
}

StoreLock::StoreLock(const fs::path &root) : path_(root / "LOCK")
{
    std::error_code ec;
    fs::create_directories(root, ec);
    if (ec)
        throw StoreError("cannot create store at '" + root.string() +
                         "': " + ec.message());
#ifndef _WIN32
    // Bounded retry: each pass either acquires the lock, proves a
    // live holder, or removes one stale file. Two writers racing for
    // a stale lock both unlink-and-retry; O_EXCL arbitrates.
    for (int attempt = 0; attempt < 16; ++attempt) {
        int fd = ::open(path_.c_str(),
                        O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
        if (fd >= 0) {
            std::string pid = std::to_string(::getpid()) + "\n";
            ssize_t w = ::write(fd, pid.data(), pid.size());
            ::fsync(fd);
            ::close(fd);
            if (w != static_cast<ssize_t>(pid.size())) {
                ::unlink(path_.c_str());
                throw StoreError("cannot write store lock '" +
                                 path_.string() + "'");
            }
            owned_ = true;
            return;
        }
        if (errno != EEXIST)
            throw StoreError("cannot create store lock '" +
                             path_.string() + "'");
        long holder = holderPid(root);
        if (pidAlive(holder))
            throw StoreError(
                "store '" + root.string() +
                "' is locked by running process " +
                std::to_string(holder) +
                " (a diq serve/sweep writer; stop it or use another "
                "--store)");
        // Stale (holder dead or LOCK garbled): take over.
        ::unlink(path_.c_str());
    }
    throw StoreError("cannot acquire store lock '" + path_.string() +
                     "' (livelocked on stale-lock takeover)");
#else
    // Non-POSIX fallback: no pid liveness probe; best-effort marker.
    std::ofstream os(path_, std::ios::trunc);
    os << 0 << "\n";
    owned_ = static_cast<bool>(os);
#endif
}

StoreLock::~StoreLock()
{
    if (!owned_)
        return;
    std::error_code ec;
    fs::remove(path_, ec);
}

// --- ResultStore ----------------------------------------------------

std::string
ResultStore::fileNameFor(const std::string &key, unsigned probe)
{
    return "h" + hex16(fnv1a64(key.data(), key.size())) + "-" +
        std::to_string(probe) + ".diqr";
}

ResultStore::ResultStore(fs::path root, fault::FaultPlan *faults)
    : root_(std::move(root)), entriesDir_(root_ / "entries"),
      quarantineDir_(root_ / "quarantine"), faults_(faults)
{
    std::error_code ec;
    fs::create_directories(entriesDir_, ec);
    if (!ec)
        fs::create_directories(quarantineDir_, ec);
    if (ec)
        throw StoreError("cannot create store at '" + root_.string() +
                         "': " + ec.message());
}

fs::path
ResultStore::entryPath(const std::string &key, unsigned probe) const
{
    return entriesDir_ / fileNameFor(key, probe);
}

void
ResultStore::quarantine(const fs::path &path, EntryStatus why)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string base =
        path.filename().string() + "." + entryStatusName(why);
    std::error_code ec;
    for (unsigned n = 0; n < 1000; ++n) {
        fs::path dest = quarantineDir_ /
            (n == 0 ? base : base + "." + std::to_string(n));
        if (fs::exists(dest, ec))
            continue;
        fs::rename(path, dest, ec);
        if (!ec) {
            ++corrupt_;
            return;
        }
    }
    // Quarantine itself failed (e.g. the file vanished under a
    // concurrent verify): never serve it; removing is the fallback.
    fs::remove(path, ec);
    ++corrupt_;
}

std::optional<runner::SimResult>
ResultStore::load(const std::string &key)
{
    for (unsigned probe = 0; probe < kMaxProbes; ++probe) {
        fs::path path = entryPath(key, probe);
        auto bytes = slurp(path);
        if (!bytes)
            continue; // missing slot: keep probing (holes are legal)
        std::string stored_key;
        runner::SimResult result;
        EntryStatus status = decodeEntry(*bytes, stored_key, result);
        if (status == EntryStatus::Valid) {
            if (stored_key != key)
                continue; // hash collision: not our entry
            ++hits_;
            return result;
        }
        quarantine(path, status);
    }
    ++misses_;
    return std::nullopt;
}

void
ResultStore::save(const std::string &key,
                  const runner::SimResult &result)
{
    // Pick the slot: first missing file, or the one already holding
    // this key (overwrite), or a corrupt one (replace it).
    unsigned slot = kMaxProbes;
    for (unsigned probe = 0; probe < kMaxProbes; ++probe) {
        auto bytes = slurp(entryPath(key, probe));
        if (!bytes) {
            slot = std::min(slot, probe);
            continue;
        }
        std::string stored_key;
        runner::SimResult ignored;
        EntryStatus status = decodeEntry(*bytes, stored_key, ignored);
        if (status != EntryStatus::Valid || stored_key == key) {
            slot = probe;
            break;
        }
    }
    if (slot >= kMaxProbes)
        throw StoreError("no free entry slot for key '" + key +
                         "' (" + std::to_string(kMaxProbes) +
                         " hash collisions?)");

    fs::path final_path = entryPath(key, slot);
    fs::path tmp_path = entriesDir_ /
        ("." + final_path.filename().string() + tmpSuffix());

    writeFileDurably(tmp_path, encodeEntry(key, result));

    if (faults_)
        faults_->atCommit(key, fault::CommitPoint::BeforeRename);

    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        fs::remove(tmp_path, ec);
        throw StoreError("cannot commit entry '" +
                         final_path.string() + "'");
    }
    fsyncDirectory(entriesDir_);

    if (faults_) {
        faults_->atCommit(key, fault::CommitPoint::AfterRename);
        if (auto off = faults_->corruptOffset(key)) {
            // Injected post-commit corruption: XOR one byte in place.
            std::fstream f(final_path, std::ios::binary |
                               std::ios::in | std::ios::out);
            auto size = static_cast<int64_t>(
                fs::file_size(final_path, ec));
            if (f && size > 0) {
                int64_t at = *off < 0 ? size + *off : *off;
                at = std::clamp<int64_t>(at, 0, size - 1);
                f.seekg(at);
                char c = static_cast<char>(f.get());
                f.seekp(at);
                f.put(static_cast<char>(c ^ 0x01));
            }
        }
    }
}

std::vector<EntryInfo>
ResultStore::list() const
{
    std::vector<EntryInfo> out;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(entriesDir_, ec)) {
        std::string name = de.path().filename().string();
        if (de.path().extension() != ".diqr" || isTmpFile(name))
            continue;
        EntryInfo info;
        info.file = name;
        info.bytes = fs::file_size(de.path(), ec);
        auto bytes = slurp(de.path());
        if (!bytes) {
            info.status = EntryStatus::Truncated;
        } else {
            runner::SimResult r;
            info.status = decodeEntry(*bytes, info.key, r);
            if (info.status == EntryStatus::Valid) {
                info.benchmark = r.benchmark;
                info.scheme = r.scheme;
                info.ipc = r.ipc;
            }
        }
        out.push_back(std::move(info));
    }
    std::sort(out.begin(), out.end(),
              [](const EntryInfo &a, const EntryInfo &b) {
                  return a.file < b.file;
              });
    return out;
}

ResultStore::VerifyReport
ResultStore::verify()
{
    VerifyReport report;
    report.entries = list();
    for (const EntryInfo &e : report.entries) {
        if (e.status == EntryStatus::Valid) {
            ++report.valid;
            continue;
        }
        ++report.corrupt;
        quarantine(entriesDir_ / e.file, e.status);
    }
    return report;
}

ResultStore::Stats
ResultStore::stats() const
{
    Stats s;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(entriesDir_, ec)) {
        std::string name = de.path().filename().string();
        if (isTmpFile(name)) {
            ++s.orphanTmp;
            continue;
        }
        if (de.path().extension() != ".diqr")
            continue;
        ++s.entries;
        s.entryBytes += fs::file_size(de.path(), ec);
    }
    for (const auto &de : fs::directory_iterator(quarantineDir_, ec)) {
        ++s.quarantined;
        s.quarantineBytes += fs::file_size(de.path(), ec);
    }
    return s;
}

ResultStore::GcReport
ResultStore::gc()
{
    GcReport report;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(quarantineDir_, ec)) {
        report.bytes += fs::file_size(de.path(), ec);
        if (fs::remove(de.path(), ec))
            ++report.quarantined;
    }
    for (const auto &de : fs::directory_iterator(entriesDir_, ec)) {
        if (!isTmpFile(de.path().filename().string()))
            continue;
        report.bytes += fs::file_size(de.path(), ec);
        if (fs::remove(de.path(), ec))
            ++report.orphanTmp;
    }
    return report;
}

} // namespace diq::store

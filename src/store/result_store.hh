/**
 * @file
 * Disk-backed, crash-safe result store (docs/ARCHITECTURE.md §11).
 *
 * Persists runner::SimResult values keyed by the experiment's
 * canonical spec line (spec::ExperimentSpec::canonicalLine — the same
 * string the in-memory ResultCache keys on), so a warm store survives
 * the process: re-running a sweep replays completed points from disk
 * byte-identically instead of recomputing them. This is the storage
 * substrate the `diq serve` ROADMAP item sits on.
 *
 * Durability discipline:
 *
 *  - every entry is a single file written via temp file + fsync +
 *    atomic rename, so a reader never observes a torn entry: a crash
 *    at any instant leaves either the complete old state or the
 *    complete new state (plus, at worst, an orphan temp file that
 *    gc() removes);
 *  - every entry carries a checksum, a format version and a result
 *    schema tag, all validated at open time;
 *  - any validation failure (bad magic, version skew, checksum
 *    mismatch, truncation, trailing garbage) quarantines the file to
 *    `<root>/quarantine/` — it is never served, never silently
 *    deleted, and the caller transparently recomputes.
 *
 * Entry format (version 1, little-endian):
 *
 *   header  := magic "DIQR" | format-version u16 | schema-version u16
 *            | payload-length u64 | payload-checksum u64 (FNV-1a 64)
 *   payload := key str | benchmark str | scheme str | ipc f64bits
 *            | 14 x u64 stats fields | deadlocked u8
 *            | counter-count varint | counter u64 ...
 *            | component-count varint | (name str | f64bits) ...
 *   str     := length varint | bytes
 *
 * Doubles are stored as raw IEEE-754 bit patterns (f64bits), so a
 * result loaded from the store renders byte-identically to the run
 * that produced it — the property `diq sweep --resume` relies on. The
 * schema version packs power::NumEvents, so growing the event bank
 * invalidates old entries explicitly as "schema skew" instead of
 * misdecoding them.
 *
 * File naming: entries live at `entries/h<fnv64(key)>-<p>.diqr` with
 * probe suffix p = 0..7 resolving (astronomically unlikely) hash
 * collisions; the key inside the entry is authoritative.
 */

#ifndef DIQ_STORE_RESULT_STORE_HH
#define DIQ_STORE_RESULT_STORE_HH

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "runner/sim_job.hh"

namespace diq::store
{

/** Store-level failure that is NOT entry corruption: unusable root
 *  directory, unwritable temp file, rename failure. Corrupt entries
 *  never throw — they quarantine. */
class StoreError : public std::runtime_error
{
  public:
    explicit StoreError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Outcome of validating one entry file at open time. */
enum class EntryStatus
{
    Valid,
    Empty,            ///< zero-length file
    BadMagic,         ///< first bytes are not "DIQR"
    VersionSkew,      ///< format version != kStoreFormatVersion
    SchemaSkew,       ///< result schema (event bank) changed
    Truncated,        ///< file shorter than the declared payload
    ChecksumMismatch, ///< payload bytes do not hash to the header sum
    CorruptField,     ///< payload decodes to an impossible value
    TrailingGarbage,  ///< bytes beyond the declared payload
};

/** Stable lowercase name, used in quarantine suffixes and reports. */
const char *entryStatusName(EntryStatus s);

/**
 * Exclusive writer lock on a store directory: `<root>/LOCK`, created
 * with O_CREAT|O_EXCL and holding the owner's pid, so one server and
 * a concurrent `diq sweep --store` on the same directory cannot
 * interleave temp-file commits. A LOCK whose recorded pid is no
 * longer alive (a SIGKILLed owner) is stale and taken over. RAII:
 * the destructor releases the lock. Readers (`diq cache list|stats`)
 * take a lock-free shared read path — entry files are only ever
 * observed whole thanks to the atomic-rename commit; mutating verbs
 * (`diq cache verify|gc`) and every writer take this lock.
 */
class StoreLock
{
  public:
    /** Acquire or throw StoreError naming the live holder pid. The
     *  root directory is created when missing. */
    explicit StoreLock(const std::filesystem::path &root);
    ~StoreLock();

    StoreLock(const StoreLock &) = delete;
    StoreLock &operator=(const StoreLock &) = delete;

    const std::filesystem::path &path() const { return path_; }

    /** Pid recorded in an existing LOCK; 0 when absent or garbled. */
    static long holderPid(const std::filesystem::path &root);

  private:
    std::filesystem::path path_;
    bool owned_ = false;
};

/** One entry as seen by list()/verify(). */
struct EntryInfo
{
    std::string file;   ///< file name under entries/
    EntryStatus status = EntryStatus::Valid;
    std::string key;    ///< canonical spec line ("" when unreadable)
    uintmax_t bytes = 0;
    std::string benchmark, scheme;
    double ipc = 0.0;
};

/**
 * The disk store. Thread-safe: save/load may race across threads and
 * processes; atomic rename makes concurrent writers last-wins with
 * both versions complete.
 */
class ResultStore
{
  public:
    /**
     * Open (creating directories as needed) a store rooted at `root`.
     * `faults`, when given, is consulted at the commit probe points
     * (crash-before/after-rename, corrupt-entry-byte); it must
     * outlive the store.
     * @throws StoreError when the root cannot be created.
     */
    explicit ResultStore(std::filesystem::path root,
                         fault::FaultPlan *faults = nullptr);

    const std::filesystem::path &root() const { return root_; }

    /**
     * Look up a result by canonical spec line. A corrupt entry is
     * quarantined and reported as a miss (the caller recomputes — a
     * corrupted result is never served). Missing entries are misses.
     */
    std::optional<runner::SimResult> load(const std::string &key);

    /**
     * Persist a result: encode, write `entries/.<name>.tmp.<pid>`,
     * fsync, atomically rename onto the entry path, fsync the
     * directory. Overwrites any previous entry for the key.
     * @throws StoreError on I/O failure.
     */
    void save(const std::string &key, const runner::SimResult &result);

    /** Scan entries/ and validate each file (read-only: corrupt
     *  entries are reported but left in place). Sorted by file name. */
    std::vector<EntryInfo> list() const;

    struct VerifyReport
    {
        size_t valid = 0;
        size_t corrupt = 0; ///< quarantined by this verify pass
        std::vector<EntryInfo> entries;
    };

    /** list() + quarantine every corrupt entry found. */
    VerifyReport verify();

    struct GcReport
    {
        size_t quarantined = 0; ///< quarantine files removed
        size_t orphanTmp = 0;   ///< abandoned temp files removed
        uintmax_t bytes = 0;    ///< total bytes reclaimed
    };

    /** Remove quarantined entries and orphan temp files (the debris
     *  crashes leave behind). Valid entries are never touched. */
    GcReport gc();

    struct Stats
    {
        size_t entries = 0;        ///< committed entry files
        uintmax_t entryBytes = 0;
        size_t quarantined = 0;    ///< files under quarantine/
        uintmax_t quarantineBytes = 0;
        size_t orphanTmp = 0;      ///< abandoned temp files
    };

    /** Size the store on disk (read-only; `diq cache stats`). */
    Stats stats() const;

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    /** Entries quarantined by this instance (load + verify). */
    uint64_t corrupt() const { return corrupt_; }

    /** Entry file name for a key at probe slot `probe` (exposed so
     *  tests and smokes can corrupt a specific file). */
    static std::string fileNameFor(const std::string &key,
                                   unsigned probe);

  private:
    std::filesystem::path entryPath(const std::string &key,
                                    unsigned probe) const;
    void quarantine(const std::filesystem::path &path, EntryStatus why);

    std::filesystem::path root_;
    std::filesystem::path entriesDir_;
    std::filesystem::path quarantineDir_;
    fault::FaultPlan *faults_ = nullptr;
    std::mutex mu_; ///< serializes quarantine renames
    uint64_t hits_ = 0, misses_ = 0, corrupt_ = 0;
};

// --- Entry codec (exposed for the corruption-contract tests) --------

/** Encode key + result into one entry image (header + payload). */
std::string encodeEntry(const std::string &key,
                        const runner::SimResult &result);

/**
 * Validate + decode a whole entry image. On Valid, `key` and `result`
 * are filled; on anything else they are untouched.
 */
EntryStatus decodeEntry(const std::string &bytes, std::string &key,
                        runner::SimResult &result);

/** FNV-1a 64-bit hash (entry checksums and entry file names). */
uint64_t fnv1a64(const void *data, size_t n);

} // namespace diq::store

#endif // DIQ_STORE_RESULT_STORE_HH

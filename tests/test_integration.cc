/**
 * @file
 * Cross-module integration and paper-shape property tests: the
 * qualitative claims of the paper must hold on (reduced-size) runs —
 * these are the invariants the figure benches then quantify.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"
#include "power/metrics.hh"
#include "sim/pipeline.hh"
#include "trace/spec2000.hh"

namespace
{

using namespace diq;

struct SimRun
{
    double ipc;
    sim::SimStats stats;
};

SimRun
simulate(const core::SchemeConfig &scheme, const std::string &bench,
         uint64_t insts = 40000)
{
    auto w = trace::makeSpecWorkload(bench);
    sim::ProcessorConfig cfg;
    cfg.scheme = scheme;
    sim::Cpu cpu(cfg, *w);
    cpu.run(insts / 4);
    cpu.resetStats();
    cpu.run(insts);
    EXPECT_FALSE(cpu.stats().deadlocked);
    return {cpu.stats().ipc(), cpu.stats()};
}

TEST(PaperShape, FifoMatchesMixBuffOnPureIntegerCode)
{
    // Identical integer clusters => identical behaviour (Figure 7).
    for (const char *bench : {"gzip", "vpr"}) {
        SimRun f = simulate(core::SchemeConfig::ifDistr(), bench);
        SimRun m = simulate(core::SchemeConfig::mbDistr(), bench);
        EXPECT_NEAR(f.ipc, m.ipc, 0.02 * f.ipc) << bench;
    }
}

TEST(PaperShape, MixBuffBeatsIssueFifoOnFpCode)
{
    // The headline claim (Figure 8).
    for (const char *bench : {"galgel", "mgrid", "swim", "lucas"}) {
        SimRun f = simulate(core::SchemeConfig::ifDistr(), bench);
        SimRun m = simulate(core::SchemeConfig::mbDistr(), bench);
        EXPECT_GT(m.ipc, 1.05 * f.ipc) << bench;
    }
}

TEST(PaperShape, BaselineUpperBoundsDistributedSchemes)
{
    for (const char *bench : {"galgel", "gcc"}) {
        SimRun base = simulate(core::SchemeConfig::iq6464(), bench);
        SimRun f = simulate(core::SchemeConfig::ifDistr(), bench);
        SimRun m = simulate(core::SchemeConfig::mbDistr(), bench);
        EXPECT_GE(base.ipc * 1.02, f.ipc) << bench;
        EXPECT_GE(base.ipc * 1.02, m.ipc) << bench;
    }
}

TEST(PaperShape, MixBuffStaysCloseToBaselineOnFp)
{
    SimRun base = simulate(core::SchemeConfig::iq6464(), "galgel");
    SimRun m = simulate(core::SchemeConfig::mbDistr(), "galgel");
    EXPECT_GT(m.ipc, 0.88 * base.ipc)
        << "paper: MB_distr loses only ~7.6% on FP";
}

TEST(PaperShape, LatFifoBetweenIssueFifoAndMixBuff)
{
    // Section 3's progression on a wide FP workload.
    SimRun fifo =
        simulate(core::SchemeConfig::issueFifo(16, 16, 8, 16), "galgel");
    SimRun lat =
        simulate(core::SchemeConfig::latFifo(16, 16, 8, 16), "galgel");
    SimRun mix =
        simulate(core::SchemeConfig::mixBuff(16, 16, 8, 16, 0), "galgel");
    EXPECT_GE(lat.ipc, fifo.ipc * 0.98)
        << "LatFIFO should not be worse than IssueFIFO";
    EXPECT_GT(mix.ipc, fifo.ipc);
}

TEST(PaperShape, UnboundedBaselineGainsLittleOverIq6464)
{
    // §4.2: a bigger baseline buys very little.
    for (const char *bench : {"gcc", "apsi"}) {
        SimRun small = simulate(core::SchemeConfig::iq6464(), bench);
        SimRun big = simulate(core::SchemeConfig::unbounded(), bench);
        EXPECT_GE(big.ipc * 1.001, small.ipc) << bench;
        EXPECT_LT(big.ipc, 1.15 * small.ipc) << bench;
    }
}

TEST(PaperShape, DistributedIssueQueueEnergyFarBelowBaseline)
{
    // Figures 12/13 in miniature.
    for (const char *bench : {"gcc", "galgel"}) {
        SimRun base = simulate(core::SchemeConfig::iq6464(), bench);
        SimRun f = simulate(core::SchemeConfig::ifDistr(), bench);
        SimRun m = simulate(core::SchemeConfig::mbDistr(), bench);

        power::IssueEnergyModel model;
        double e_base = model.baseline(base.stats.counters).total();
        double e_f = model.issueFifo(f.stats.counters).total();
        double e_m = model.mixBuff(m.stats.counters).total();
        EXPECT_LT(e_f, 0.6 * e_base) << bench;
        EXPECT_LT(e_m, 0.7 * e_base) << bench;
    }
}

TEST(PaperShape, WakeupDominatesBaselineEnergy)
{
    SimRun base = simulate(core::SchemeConfig::iq6464(), "swim");
    power::IssueEnergyModel model;
    auto b = model.baseline(base.stats.counters);
    EXPECT_GT(b.share("wakeup"), 0.4);
    EXPECT_GT(b.share("buff"), 0.05);
}

TEST(PaperShape, DistributedMuxEnergyNegligible)
{
    SimRun f = simulate(core::SchemeConfig::ifDistr(), "swim");
    power::IssueEnergyModel model;
    auto b = model.issueFifo(f.stats.counters);
    double mux = b.get("MuxIntALU") + b.get("MuxIntMUL") +
        b.get("MuxFPALU") + b.get("MuxFPMUL");
    EXPECT_LT(mux / b.total(), 0.08)
        << "distributing the FUs kills the crossbar energy";
}

TEST(PaperShape, Ed2PrefersMixBuffOverIssueFifoOnFp)
{
    // Figure 15 in miniature on one wide FP benchmark.
    SimRun base = simulate(core::SchemeConfig::iq6464(), "galgel");
    SimRun f = simulate(core::SchemeConfig::ifDistr(), "galgel");
    SimRun m = simulate(core::SchemeConfig::mbDistr(), "galgel");

    power::IssueEnergyModel model;
    power::RunEnergy rb{model.baseline(base.stats.counters).total(),
                        base.stats.cycles, base.stats.committed};
    power::RunEnergy rf{model.issueFifo(f.stats.counters).total(),
                        f.stats.cycles, f.stats.committed};
    power::RunEnergy rm{model.mixBuff(m.stats.counters).total(),
                        m.stats.cycles, m.stats.committed};
    auto nf = power::normalizedEfficiency(rf, rb);
    auto nm = power::normalizedEfficiency(rm, rb);
    EXPECT_LT(nm.chipEd2, nf.chipEd2)
        << "MB_distr must win the ED^2 comparison on FP";
}

TEST(PaperShape, FifoLossMuchLargerOnFpThanInt)
{
    // The observation that motivates the whole paper (Figures 2 vs 3).
    SimRun ib = simulate(core::SchemeConfig::unbounded(), "twolf");
    SimRun if_int =
        simulate(core::SchemeConfig::issueFifo(8, 8, 16, 16), "twolf");
    double int_loss = 1.0 - if_int.ipc / ib.ipc;

    SimRun fb = simulate(core::SchemeConfig::unbounded(), "galgel");
    SimRun if_fp =
        simulate(core::SchemeConfig::issueFifo(16, 16, 8, 8), "galgel");
    double fp_loss = 1.0 - if_fp.ipc / fb.ipc;

    EXPECT_GT(fp_loss, int_loss + 0.08)
        << "FIFO queues fit integer DDGs but not FP ones";
}

TEST(PaperShape, MoreChainsPerQueueNeverHurts)
{
    for (int chains : {2, 4, 8}) {
        SimRun a = simulate(core::SchemeConfig::mixBuff(8, 8, 8, 16, chains),
                         "mgrid");
        SimRun b = simulate(
            core::SchemeConfig::mixBuff(8, 8, 8, 16, chains * 2),
            "mgrid");
        EXPECT_GE(b.ipc * 1.03, a.ipc) << chains;
    }
}

TEST(PaperShape, EonHasFpComponent)
{
    // Figure 7: eon is the one SPECint program where IF_distr and
    // MB_distr can differ (it has FP work).
    SimRun f = simulate(core::SchemeConfig::ifDistr(), "eon");
    SimRun m = simulate(core::SchemeConfig::mbDistr(), "eon");
    EXPECT_GE(m.ipc * 1.05, f.ipc);
}

} // namespace

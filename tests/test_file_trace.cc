/**
 * @file
 * Tests for the `.diqt` trace format (trace/file_trace.hh): lossless
 * field-level round-trips, the recording tee, encoding density, and —
 * crucially — precise errors for every class of malformed input
 * (truncated header, bad magic, version skew, mid-record EOF, empty
 * file, empty trace, corrupt fields). The corruption tests byte-edit
 * real recordings so they track the actual encoder output.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/file_trace.hh"
#include "trace/spec2000.hh"
#include "trace/trace_source.hh"
#include "trace_test_util.hh"

namespace
{

using namespace diq;
using namespace diq::trace;
using trace::test::expectSameOp;
using trace::test::sampleOps;
using trace::test::tempPath;

/** Write `ops` to a fresh .diqt file and return its path. */
std::string
writeTrace(const std::vector<MicroOp> &ops, const std::string &file,
           const std::string &name = "test")
{
    std::string path = tempPath(file);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    TraceWriter w(os, name);
    for (const auto &op : ops)
        w.append(op);
    w.finalize();
    return path;
}

/** EXPECT that opening/draining `path` throws mentioning `needle`. */
void
expectTraceError(const std::string &path, const std::string &needle)
{
    try {
        FileTrace t(path);
        MicroOp op;
        while (t.next(op)) {
        }
        FAIL() << "no TraceError for " << path << " (wanted '"
               << needle << "')";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message '" << e.what() << "' lacks '" << needle << "'";
        // Every error names the offending file.
        EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
            << e.what();
    }
}

/** The raw bytes of a file. */
std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return std::string(std::istreambuf_iterator<char>(is), {});
}

std::string
writeBytes(const std::string &file, const std::string &bytes)
{
    std::string path = tempPath(file);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
}

// --- Round-trips ----------------------------------------------------

TEST(FileTrace, RoundTripPreservesEveryField)
{
    // swim exercises FP chains, strided mem and loop branches; gcc
    // adds data-dependent branches and random addresses.
    for (const char *bench : {"swim", "gcc", "mcf"}) {
        auto ops = sampleOps(bench, 5000);
        std::string path =
            writeTrace(ops, std::string("rt_") + bench + ".diqt", bench);

        FileTrace t(path);
        EXPECT_EQ(t.name(), bench);
        EXPECT_EQ(t.opCount(), ops.size());
        MicroOp op;
        for (size_t i = 0; i < ops.size(); ++i) {
            ASSERT_TRUE(t.next(op)) << i;
            expectSameOp(ops[i], op, i);
        }
        EXPECT_FALSE(t.next(op)) << "stream must end at opCount";
    }
}

TEST(FileTrace, DeltaCodingKeepsRecordsDense)
{
    // The varint-delta encoding is the point of the format: a raw
    // MicroOp is 40+ bytes, a .diqt record must average well under 8.
    auto ops = sampleOps("swim", 10000);
    std::string path = writeTrace(ops, "dense.diqt", "swim");
    std::string bytes = slurp(path);
    EXPECT_LT(bytes.size() / ops.size(), 8u)
        << bytes.size() << " bytes for " << ops.size() << " ops";
}

TEST(FileTrace, ResetReplaysTheIdenticalStream)
{
    auto ops = sampleOps("gcc", 600);
    FileTrace t(writeTrace(ops, "reset.diqt"));
    MicroOp op;
    for (int i = 0; i < 200; ++i)
        ASSERT_TRUE(t.next(op));
    t.reset();
    for (size_t i = 0; i < ops.size(); ++i) {
        ASSERT_TRUE(t.next(op)) << i;
        expectSameOp(ops[i], op, i);
    }
    // Reset also works after full exhaustion.
    EXPECT_FALSE(t.next(op));
    t.reset();
    ASSERT_TRUE(t.next(op));
    expectSameOp(ops[0], op, 0);
}

// --- TraceRecorder --------------------------------------------------

TEST(TraceRecorder, TeesTransparentlyAndReplaysExactly)
{
    auto expected = sampleOps("mgrid", 800);
    auto live = makeSpecWorkload("mgrid");
    std::string path = tempPath("tee.diqt");
    {
        TraceRecorder rec(*live, path);
        EXPECT_EQ(rec.name(), "mgrid");
        MicroOp op;
        for (size_t i = 0; i < expected.size(); ++i) {
            ASSERT_TRUE(rec.next(op));
            expectSameOp(expected[i], op, i); // the tee is transparent
        }
        EXPECT_EQ(rec.recordedOps(), expected.size());
        rec.finalize();
    }
    FileTrace t(path);
    EXPECT_EQ(t.opCount(), expected.size());
    MicroOp op;
    for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_TRUE(t.next(op));
        expectSameOp(expected[i], op, i);
    }
}

TEST(TraceRecorder, FinalizesOnDestructionWithoutExplicitCall)
{
    auto live = makeSpecWorkload("swim");
    std::string path = tempPath("raii.diqt");
    {
        TraceRecorder rec(*live, path);
        MicroOp op;
        for (int i = 0; i < 50; ++i)
            ASSERT_TRUE(rec.next(op));
    } // destructor finalizes
    FileTrace t(path);
    EXPECT_EQ(t.opCount(), 50u);
}

TEST(TraceRecorder, ResetRestartsTheRecordingFromScratch)
{
    // After a reset, the file must hold exactly the ops handed out
    // since the reset — not the pre-reset prefix.
    auto expected = sampleOps("applu", 120);
    auto live = makeSpecWorkload("applu");
    std::string path = tempPath("rec_reset.diqt");
    TraceRecorder rec(*live, path);
    MicroOp op;
    for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(rec.next(op));
    rec.reset();
    EXPECT_EQ(rec.recordedOps(), 0u);
    for (int i = 0; i < 120; ++i)
        ASSERT_TRUE(rec.next(op));
    rec.finalize();

    FileTrace t(path);
    ASSERT_EQ(t.opCount(), 120u);
    for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_TRUE(t.next(op));
        expectSameOp(expected[i], op, i);
    }
}

TEST(TraceRecorder, ResetTruncatesAtTheByteLevel)
{
    // A post-reset recording SHORTER than the pre-reset one must not
    // leave stale record bytes behind: the file is the exact byte
    // image of the recording, so two recordings of the same prefix
    // are byte-identical however the recorder got there.
    auto live = makeSpecWorkload("swim");
    std::string reset_path = tempPath("trunc_reset.diqt");
    {
        TraceRecorder rec(*live, reset_path);
        MicroOp op;
        for (int i = 0; i < 500; ++i)
            ASSERT_TRUE(rec.next(op));
        rec.reset();
        for (int i = 0; i < 100; ++i)
            ASSERT_TRUE(rec.next(op));
        rec.finalize();
    }
    auto fresh = makeSpecWorkload("swim");
    std::string fresh_path = tempPath("trunc_fresh.diqt");
    recordTrace(*fresh, fresh_path, 100);
    EXPECT_EQ(slurp(reset_path), slurp(fresh_path));
}

TEST(TraceRecorder, UnwritablePathFailsLoudly)
{
    auto live = makeSpecWorkload("swim");
    EXPECT_THROW(TraceRecorder(*live, "/nonexistent-dir/x.diqt"),
                 TraceError);
}

TEST(TraceRecorder, RecordingIsInvisibleUntilFinalize)
{
    // Crash-safety contract: the recorder accumulates in `<path>.tmp`
    // and only finalize (explicit or via the destructor) publishes
    // `<path>` by atomic rename. A crash mid-recording must leave any
    // previous file at the path byte-for-byte intact.
    std::string path = tempPath("invisible.diqt");
    {
        auto first = makeSpecWorkload("swim");
        recordTrace(*first, path, 60);
    }
    std::string original = slurp(path);

    auto live = makeSpecWorkload("gcc");
    {
        TraceRecorder rec(*live, path);
        MicroOp op;
        for (int i = 0; i < 200; ++i)
            ASSERT_TRUE(rec.next(op));
        // Mid-recording: the old file is untouched, the work-in-
        // progress lives next to it under the .tmp suffix.
        EXPECT_EQ(slurp(path), original);
        EXPECT_TRUE(std::ifstream(path + ".tmp").good());
        rec.finalize();
    }
    EXPECT_NE(slurp(path), original) << "finalize published the rerecording";
    EXPECT_FALSE(std::ifstream(path + ".tmp").good())
        << "commit must consume the temp file";
    FileTrace t(path);
    EXPECT_EQ(t.opCount(), 200u);
    EXPECT_EQ(t.name(), "gcc");
}

TEST(RecordTrace, HelperRecordsAndStopsAtEos)
{
    VectorTrace finite(sampleOps("swim", 40), "short");
    std::string path = tempPath("helper.diqt");
    EXPECT_EQ(recordTrace(finite, path, 1000), 40u) << "stops at EOS";
    FileTrace t(path);
    EXPECT_EQ(t.opCount(), 40u);
    EXPECT_EQ(t.name(), "short");
}

// --- Malformed inputs (the sanitizer-fuzzed surface) ----------------

TEST(FileTraceErrors, MissingFile)
{
    expectTraceError(tempPath("nope.diqt"), "cannot open file");
}

TEST(FileTraceErrors, EmptyFile)
{
    expectTraceError(writeBytes("empty.diqt", ""), "empty file");
}

TEST(FileTraceErrors, BadMagic)
{
    std::string bytes = slurp(writeTrace(sampleOps("swim", 20),
                                         "magic_src.diqt"));
    bytes[0] = 'X';
    expectTraceError(writeBytes("magic.diqt", bytes), "bad magic");
    // A non-trace file (e.g. text) is also just bad magic.
    expectTraceError(writeBytes("text.diqt", "hello world\n"),
                     "bad magic");
}

TEST(FileTraceErrors, TruncatedHeader)
{
    std::string bytes = slurp(writeTrace(sampleOps("swim", 20),
                                         "hdr_src.diqt"));
    // Cut inside the fixed header (magic is 4 bytes, versions 4
    // more, then name and count).
    expectTraceError(writeBytes("hdr2.diqt", bytes.substr(0, 2)),
                     "truncated header");
    expectTraceError(writeBytes("hdr5.diqt", bytes.substr(0, 5)),
                     "truncated header");
    expectTraceError(writeBytes("hdr9.diqt", bytes.substr(0, 9)),
                     "truncated header");
    expectTraceError(writeBytes("hdr12.diqt", bytes.substr(0, 12)),
                     "truncated header");
}

TEST(FileTraceErrors, FormatVersionSkew)
{
    std::string bytes = slurp(writeTrace(sampleOps("swim", 20),
                                         "fmt_src.diqt"));
    bytes[4] = 99; // format version low byte
    expectTraceError(writeBytes("fmt.diqt", bytes),
                     "unsupported format version 99");
}

TEST(FileTraceErrors, IsaVersionSkew)
{
    std::string bytes = slurp(writeTrace(sampleOps("swim", 20),
                                         "isa_src.diqt"));
    bytes[6] = static_cast<char>(kTraceIsaVersion + 1); // ISA low byte
    expectTraceError(writeBytes("isa.diqt", bytes),
                     "ISA version skew");
}

TEST(FileTraceErrors, MidRecordEof)
{
    std::string bytes = slurp(writeTrace(sampleOps("swim", 200),
                                         "eof_src.diqt"));
    // Chop inside the last records: several cut points so the EOF
    // lands in different record fields.
    for (size_t cut : {bytes.size() - 1, bytes.size() - 3,
                       bytes.size() - 7, bytes.size() - 40}) {
        expectTraceError(
            writeBytes("eof_" + std::to_string(cut) + ".diqt",
                       bytes.substr(0, cut)),
            "truncated record");
    }
}

TEST(FileTraceErrors, HeaderCountBeyondRecordsIsTruncation)
{
    // A header op count larger than the records present must read as
    // truncation, not silent end-of-stream.
    auto ops = sampleOps("swim", 50);
    std::string path = tempPath("overcount.diqt");
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        TraceWriter w(os, "overcount");
        for (size_t i = 0; i + 1 < ops.size(); ++i)
            w.append(ops[i]);
        w.finalize();
    }
    std::string bytes = slurp(path);
    // Patch the count (little-endian u64 right after the name) up.
    size_t countPos = 4 + 2 + 2 + 1 + std::string("overcount").size();
    bytes[countPos] = 50;
    expectTraceError(writeBytes("overcount2.diqt", bytes),
                     "truncated record");
}

TEST(FileTraceErrors, EmptyTraceIsRejected)
{
    std::string path = tempPath("zero.diqt");
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        TraceWriter w(os, "zero");
        w.finalize(); // no ops appended
    }
    expectTraceError(path, "empty trace");
}

TEST(FileTraceErrors, CorruptOpClass)
{
    auto ops = sampleOps("swim", 5);
    std::string bytes = slurp(writeTrace(ops, "opc_src.diqt", "x"));
    size_t firstRecord = 4 + 2 + 2 + 1 + 1 + 8;
    bytes[firstRecord] = 0x1f; // op class 31
    expectTraceError(writeBytes("opc.diqt", bytes), "op class");
}

TEST(FileTraceErrors, CorruptRegisterId)
{
    auto ops = sampleOps("swim", 5);
    std::string bytes = slurp(writeTrace(ops, "reg_src.diqt", "x"));
    size_t firstRecord = 4 + 2 + 2 + 1 + 1 + 8;
    bytes[firstRecord + 1] = static_cast<char>(100); // src1 = 100
    expectTraceError(writeBytes("reg.diqt", bytes),
                     "register id out of range");
}

TEST(FileTraceErrors, VarintOverflowBitsAreCorruptNotDiscarded)
{
    // A 10-byte varint whose final byte carries payload above bit 63
    // must error, not silently decode to a truncated value.
    std::string bytes;
    bytes.append(kTraceMagic, sizeof kTraceMagic);
    bytes.push_back(static_cast<char>(kTraceFormatVersion & 0xff));
    bytes.push_back(static_cast<char>(kTraceFormatVersion >> 8));
    bytes.push_back(static_cast<char>(kTraceIsaVersion & 0xff));
    bytes.push_back(static_cast<char>(kTraceIsaVersion >> 8));
    for (int i = 0; i < 9; ++i) // name-length varint, 9 continuations
        bytes.push_back(static_cast<char>(0x80));
    bytes.push_back(0x02); // payload bit at shift 64: overflow
    expectTraceError(writeBytes("varint_ovf.diqt", bytes),
                     "corrupt varint");
}

TEST(TraceWriterErrors, RejectsNamesLongerThanTheReaderAccepts)
{
    // Reachable from the CLI: a phased: token with enough parts makes
    // an arbitrarily long workload name. Recording must fail up
    // front, not succeed and leave an unreplayable file behind.
    std::ostringstream os;
    try {
        TraceWriter w(os, std::string(5000, 'x'));
        FAIL() << "oversized workload name accepted";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("exceeds"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceWriterErrors, RejectsOpsTheReaderWouldRejectAsCorrupt)
{
    // Writer and reader enforce the same invariants: a recording must
    // never succeed and then fail replay as "corrupt record".
    auto tryAppend = [](MicroOp op, const std::string &needle) {
        std::ostringstream os;
        TraceWriter w(os, "bad");
        try {
            w.append(op);
            FAIL() << "append accepted an op the reader rejects ("
                   << needle << ")";
        } catch (const TraceError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };
    MicroOp op;

    op.op = OpClass::NumOpClasses;
    tryAppend(op, "invalid op class");

    op = MicroOp{};
    op.op = OpClass::IntAlu;
    op.src1 = 64; // one past the last logical register
    tryAppend(op, "register id out of range");

    op = MicroOp{};
    op.op = OpClass::Load;
    op.memSize = 0;
    tryAppend(op, "mem size 0");

    op = MicroOp{};
    op.op = OpClass::IntAlu;
    op.taken = true;
    tryAppend(op, "taken flag on a non-branch");
}

TEST(FileTraceErrors, AbsurdNameLengthIsCorruptNotAllocation)
{
    // Header with a multi-gigabyte name length must error out, not
    // try to allocate.
    std::string bytes;
    bytes.append(kTraceMagic, sizeof kTraceMagic);
    bytes.push_back(static_cast<char>(kTraceFormatVersion & 0xff));
    bytes.push_back(static_cast<char>(kTraceFormatVersion >> 8));
    bytes.push_back(static_cast<char>(kTraceIsaVersion & 0xff));
    bytes.push_back(static_cast<char>(kTraceIsaVersion >> 8));
    for (int i = 0; i < 5; ++i) // varint ~34 GB
        bytes.push_back(static_cast<char>(0xff));
    bytes.push_back(0x01);
    expectTraceError(writeBytes("name.diqt", bytes), "name length");
}

} // namespace

/**
 * @file
 * Tests for the declarative experiment API (docs/ARCHITECTURE.md §8):
 * round-trip property tests over every named preset and over
 * randomized knob assignments, precise parse-error reporting, preset
 * resolution with per-key overrides, and the textual sweep-grid form.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "runner/sweep_spec.hh"
#include "spec/experiment_spec.hh"
#include "spec/presets.hh"
#include "trace/scenarios.hh"
#include "trace/spec2000.hh"
#include "util/rng.hh"

namespace
{

using namespace diq;
using spec::ExperimentSpec;

// --- Round-trip properties ------------------------------------------

TEST(SpecRoundTrip, DefaultSpecSurvivesToTextParse)
{
    ExperimentSpec s;
    EXPECT_EQ(ExperimentSpec::parse(s.toText()), s);
    EXPECT_EQ(ExperimentSpec::parse(s.canonicalLine()), s);
}

TEST(SpecRoundTrip, EveryNamedPresetSurvivesToTextParse)
{
    for (const auto &p : spec::presets()) {
        ExperimentSpec s;
        s.processor.scheme = p.scheme;
        EXPECT_EQ(ExperimentSpec::parse(s.toText()), s) << p.name;
        // The bare preset name parses to the same scheme config.
        EXPECT_EQ(ExperimentSpec::parse(p.name).processor.scheme,
                  p.scheme)
            << p.name;
    }
}

/** Draw a valid random value for a key from its declared domain. */
std::string
randomValue(const spec::KeyInfo &k, util::Rng &rng)
{
    if (k.kind == spec::KeyInfo::Kind::Int)
        return std::to_string(rng.nextRange(k.lo, k.hi));
    return k.choices[rng.nextBounded(k.choices.size())];
}

TEST(SpecRoundTrip, RandomizedKnobAssignmentsSurviveToTextParse)
{
    util::Rng rng(util::Rng::hashString("spec-roundtrip"));
    for (int trial = 0; trial < 100; ++trial) {
        ExperimentSpec s;
        for (const auto &k : spec::keyRegistry())
            if (rng.nextBool(0.5))
                k.set(s, randomValue(k, rng));

        ExperimentSpec reparsed = ExperimentSpec::parse(s.toText());
        EXPECT_EQ(reparsed, s) << "trial " << trial << "\n"
                               << s.toText();
        EXPECT_EQ(reparsed.canonicalLine(), s.canonicalLine());
    }
}

TEST(SpecRoundTrip, EveryKnobIsReachableAndSerialized)
{
    // Every ProcessorConfig/SchemeConfig knob is reachable by name:
    // setting any registry key to a non-default value must change the
    // canonical serialization (i.e. no write-only or ignored keys).
    ExperimentSpec base;
    for (const auto &k : spec::keyRegistry()) {
        ExperimentSpec s;
        std::string current = k.get(s);
        std::string changed;
        if (k.kind == spec::KeyInfo::Kind::Int) {
            int64_t cur = std::stoll(current);
            changed = std::to_string(cur > k.lo ? cur - 1 : cur + 1);
        } else {
            for (const auto &c : k.choices)
                if (c != current)
                    changed = c;
        }
        ASSERT_FALSE(changed.empty()) << k.name;
        s.set(k.name, changed);
        EXPECT_NE(s, base) << k.name;
        EXPECT_NE(s.canonicalLine(), base.canonicalLine()) << k.name;
        EXPECT_EQ(k.get(s), changed) << k.name;
    }
}

TEST(SpecRoundTrip, AliasesResolveToTheSameKey)
{
    ExperimentSpec s;
    s.set("chains", "3");
    EXPECT_EQ(s.processor.scheme.chainsPerQueue, 3);
    s.set("insts", "777");
    EXPECT_EQ(s.measureInsts, 777u);
    s.set("warmup", "11");
    EXPECT_EQ(s.warmupInsts, 11u);
    s.set("benchmark", "gcc");
    EXPECT_EQ(s.benchmark, "gcc");
}

// --- Presets and overrides ------------------------------------------

TEST(SpecPresets, PresetWithPerKeyOverrides)
{
    ExperimentSpec s =
        ExperimentSpec::parse("mb_distr chains_per_queue=4 rob_size=512");
    EXPECT_EQ(s.processor.scheme.kind,
              core::SchemeConfig::Kind::MixBuff);
    EXPECT_TRUE(s.processor.scheme.distributedFus);
    EXPECT_EQ(s.processor.scheme.chainsPerQueue, 4);
    EXPECT_EQ(s.processor.robSize, 512);

    // Order matters: the preset resets the whole scheme config.
    ExperimentSpec clobbered =
        ExperimentSpec::parse("chains_per_queue=4 mb_distr");
    EXPECT_EQ(clobbered.processor.scheme.chainsPerQueue, 8);
}

TEST(SpecPresets, SchemeKeyAcceptsKindsAndPresets)
{
    EXPECT_EQ(ExperimentSpec::parse("scheme=lat_fifo")
                  .processor.scheme.kind,
              core::SchemeConfig::Kind::LatFifo);
    // A preset name as the value sets the full configuration.
    ExperimentSpec s = ExperimentSpec::parse("scheme=if_distr");
    EXPECT_EQ(s.processor.scheme, core::SchemeConfig::ifDistr());
}

TEST(SpecPresets, MatchTheHardcodedFactories)
{
    EXPECT_EQ(spec::findPreset("iq6464")->scheme,
              core::SchemeConfig::iq6464());
    EXPECT_EQ(spec::findPreset("unbounded")->scheme,
              core::SchemeConfig::unbounded());
    EXPECT_EQ(spec::findPreset("latfifo_8x8_8x16")->scheme,
              core::SchemeConfig::latFifo(8, 8, 8, 16));
    EXPECT_EQ(spec::findPreset("if_distr")->scheme,
              core::SchemeConfig::ifDistr());
    EXPECT_EQ(spec::findPreset("mb_distr")->scheme,
              core::SchemeConfig::mbDistr());
    EXPECT_EQ(spec::findPreset("no_such_preset"), nullptr);
}

TEST(SpecPresets, CommentsAndBlankLinesIgnored)
{
    ExperimentSpec s = ExperimentSpec::parse(
        "# a comment line\n"
        "mb_distr   # trailing comment\n"
        "\n"
        "rob_size=128\n");
    EXPECT_EQ(s.processor.scheme, core::SchemeConfig::mbDistr());
    EXPECT_EQ(s.processor.robSize, 128);
}

// --- Error reporting ------------------------------------------------

/** EXPECT that parsing `text` throws mentioning `needle`. */
void
expectParseError(const std::string &text, const std::string &needle)
{
    try {
        ExperimentSpec::parse(text);
        FAIL() << "no ParseError for: " << text;
    } catch (const spec::ParseError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message '" << e.what() << "' lacks '" << needle << "'";
    }
}

TEST(SpecErrors, UnknownKey)
{
    expectParseError("bogus_key=3", "unknown key 'bogus_key'");
}

TEST(SpecErrors, UnknownPreset)
{
    expectParseError("warp_drive", "unknown preset 'warp_drive'");
}

TEST(SpecErrors, MalformedValues)
{
    expectParseError("rob_size=banana", "bad value 'banana'");
    expectParseError("rob_size=", "bad value ''");
    expectParseError("rob_size=12x", "bad value '12x'");
    expectParseError("distributed_fus=maybe", "bad value 'maybe'");
    expectParseError("scheme=hyperscalar", "bad value 'hyperscalar'");
    expectParseError("bench=spec2077", "bad value 'spec2077'");
    expectParseError("=5", "missing key");
}

// --- Workload tokens (scenario:/trace:) ------------------------------

TEST(SpecWorkloadTokens, ScenarioAndTraceTokensRoundTrip)
{
    for (const char *bench :
         {"scenario:chain_storm", "scenario:bursty",
          "scenario:phased:gcc+swim@5000", "trace:/tmp/t.diqt"}) {
        ExperimentSpec s;
        s.set("bench", bench);
        EXPECT_EQ(s.benchmark, bench);
        EXPECT_EQ(ExperimentSpec::parse(s.toText()), s) << bench;
        EXPECT_EQ(ExperimentSpec::parse(s.canonicalLine()), s) << bench;
    }
}

TEST(SpecWorkloadTokens, EveryRegistryScenarioIsABenchChoice)
{
    // The bench key's declared domain covers the scenario catalog, so
    // the randomized round-trip tests and `diq list keys` see them.
    const spec::KeyInfo *k = spec::findKey("bench");
    ASSERT_NE(k, nullptr);
    for (const auto &s : trace::scenarioRegistry()) {
        std::string token = "scenario:" + s.name;
        EXPECT_NE(std::find(k->choices.begin(), k->choices.end(),
                            token),
                  k->choices.end())
            << token;
    }
}

TEST(SpecWorkloadTokens, BadTokensFailAtParseTimeWithPreciseErrors)
{
    expectParseError("bench=scenario:doom3", "unknown scenario");
    expectParseError("bench=scenario:phased:gcc+swim",
                     "missing '@");
    expectParseError("bench=scenario:phased:gcc+swim@0",
                     "must be positive");
    expectParseError("bench=scenario:phased:gcc+doom3@100",
                     "unknown phase 'doom3'");
    expectParseError("bench=trace:", "empty trace path");
    // A whitespace path could never survive the whitespace-tokenized
    // canonical line, so it is rejected at set time rather than
    // breaking parse(toText(s)) == s later.
    {
        ExperimentSpec s;
        try {
            s.set("bench", "trace:/tmp/my trace.diqt");
            FAIL() << "whitespace trace path accepted";
        } catch (const spec::ParseError &e) {
            EXPECT_NE(std::string(e.what()).find("whitespace"),
                      std::string::npos)
                << e.what();
        }
    }
    // A trace path is validated when the file is opened, not at
    // parse time (it may be recorded later) — parsing succeeds.
    EXPECT_EQ(ExperimentSpec::parse("bench=trace:not/yet.diqt")
                  .benchmark,
              "trace:not/yet.diqt");
}

TEST(SpecErrors, OutOfRangeGeometry)
{
    expectParseError("rob_size=0", "out of range");
    expectParseError("int_queues=0", "out of range");
    expectParseError("int_queues=65", "out of range");
    expectParseError("fp_queue_size=-3", "out of range");
    expectParseError("cam_int_entries=100000", "out of range");
    expectParseError("chains_per_queue=-1", "out of range");
    expectParseError("measure_insts=0", "out of range");
}

// --- Textual sweep grids --------------------------------------------

TEST(SweepGrid, CrossProductInTokenOrder)
{
    auto grid = runner::SweepSpec::fromText(
        "scheme=mb_distr,if_distr bench=swim,gcc chains=2,4,8");
    ASSERT_EQ(grid.size(), 12u);

    // Leftmost axis outermost: scheme-major, then bench, then chains.
    const auto &points = grid.points();
    EXPECT_EQ(points[0].first.processor.scheme.kind,
              core::SchemeConfig::Kind::MixBuff);
    EXPECT_EQ(points[0].second.name, "swim");
    EXPECT_EQ(points[0].first.processor.scheme.chainsPerQueue, 2);
    EXPECT_EQ(points[1].first.processor.scheme.chainsPerQueue, 4);
    EXPECT_EQ(points[2].first.processor.scheme.chainsPerQueue, 8);
    EXPECT_EQ(points[3].second.name, "gcc");
    EXPECT_EQ(points[6].first.processor.scheme.kind,
              core::SchemeConfig::Kind::IssueFifo);

    // All twelve specs are distinct experiments.
    std::set<std::string> keys;
    for (const auto &[exp, profile] : points)
        keys.insert(exp.canonicalLine());
    EXPECT_EQ(keys.size(), 12u);
}

TEST(SweepGrid, BenchSuiteAliasesExpand)
{
    auto grid = runner::SweepSpec::fromText("iq6464 bench=int");
    EXPECT_EQ(grid.size(), trace::specIntProfiles().size());
    auto all = runner::SweepSpec::fromText("iq6464 bench=all");
    EXPECT_EQ(all.size(), trace::allSpecProfiles().size());
}

TEST(SweepGrid, ScenarioAxesSweep)
{
    // Explicit scenario tokens form a bench axis like any workload.
    auto grid = runner::SweepSpec::fromText(
        "scheme=mb_distr,if_distr "
        "bench=scenario:chain_storm,scenario:bursty,swim");
    ASSERT_EQ(grid.size(), 6u);
    EXPECT_EQ(grid.points()[0].second.name, "scenario:chain_storm");
    EXPECT_EQ(grid.points()[2].second.name, "swim");

    // The `scenarios` alias expands to the whole catalog.
    auto all = runner::SweepSpec::fromText("iq6464 bench=scenarios");
    EXPECT_EQ(all.size(), trace::scenarioRegistry().size());
    for (const auto &[exp, profile] : all.points())
        EXPECT_EQ(profile.name.rfind("scenario:", 0), 0u)
            << profile.name;

    // Unknown scenarios are rejected at grid-build time.
    EXPECT_THROW(
        runner::SweepSpec::fromText("iq6464 bench=scenario:doom3"),
        spec::ParseError);
}

TEST(SweepGrid, AxisValuesAreDeduped)
{
    // Overlapping suite aliases and repeated values would otherwise
    // produce duplicate grid rows.
    EXPECT_EQ(runner::SweepSpec::fromText("iq6464 bench=fp,all").size(),
              trace::allSpecProfiles().size());
    EXPECT_EQ(runner::SweepSpec::fromText("iq6464 bench=swim,fp").size(),
              trace::specFpProfiles().size());
    EXPECT_EQ(runner::SweepSpec::fromText("iq6464 chains=2,2,4").size(),
              2u);
}

TEST(SweepGrid, ErrorsPropagateWithPreciseMessages)
{
    EXPECT_THROW(runner::SweepSpec::fromText("nope=1"),
                 spec::ParseError);
    EXPECT_THROW(runner::SweepSpec::fromText("rob_size=0"),
                 spec::ParseError);
    EXPECT_THROW(runner::SweepSpec::fromText("bench=nonesuch"),
                 spec::ParseError);
    EXPECT_TRUE(runner::SweepSpec::fromText("").empty());
}

TEST(SweepGrid, DuplicateAxesAreRejectedNotSilentlyOverwritten)
{
    // With a repeated key the last token would win in every
    // combination, degenerating the earlier axis into duplicate rows.
    for (const char *text :
         {"iq6464 chains=2,4 chains=8", "scheme=cam scheme=mixbuff",
          "mb_distr scheme=cam", "bench=swim benchmark=gcc"}) {
        try {
            runner::SweepSpec::fromText(text);
            FAIL() << "no ParseError for: " << text;
        } catch (const spec::ParseError &e) {
            EXPECT_NE(std::string(e.what()).find("duplicate axis"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(SweepGrid, PresetAfterSchemeKnobAxisIsRejected)
{
    // A preset value resets the whole scheme config, so placed after
    // a scheme-knob axis it would clobber that axis per combination.
    for (const char *text :
         {"chains=2,4 mb_distr bench=swim",
          "distributed_fus=0,1 scheme=if_distr,iq6464"}) {
        try {
            runner::SweepSpec::fromText(text);
            FAIL() << "no ParseError for: " << text;
        } catch (const spec::ParseError &e) {
            EXPECT_NE(std::string(e.what())
                          .find("must come before scheme knob axes"),
                      std::string::npos)
                << e.what();
        }
    }

    // Preset first, then knob axes: the intended idiom still works,
    // and non-scheme axes may precede the preset freely.
    EXPECT_EQ(runner::SweepSpec::fromText("mb_distr chains=2,4").size(),
              2u);
    EXPECT_EQ(runner::SweepSpec::fromText("bench=swim,gcc mb_distr")
                  .size(),
              2u);
    // Kind values never clobber sibling knobs, so order is free.
    EXPECT_EQ(runner::SweepSpec::fromText(
                  "chains=2,4 scheme=mixbuff,lat_fifo bench=swim")
                  .size(),
              4u);
}

TEST(SweepGrid, BudgetAxesAreRejectedNotSilentlyIgnored)
{
    // The runner owns the budgets, so a swept budget axis would
    // produce duplicate rows that all ran at the same budget.
    for (const char *text :
         {"iq6464 insts=1000,50000", "iq6464 measure_insts=1000",
          "iq6464 warmup=5", "iq6464 warmup_insts=5,10"}) {
        try {
            runner::SweepSpec::fromText(text);
            FAIL() << "no ParseError for: " << text;
        } catch (const spec::ParseError &e) {
            EXPECT_NE(std::string(e.what()).find("cannot be swept"),
                      std::string::npos)
                << e.what();
        }
    }
}

} // namespace

/**
 * @file
 * Tests for src/sim: register renaming, the load/store queue and
 * whole-pipeline behaviour on hand-built traces.
 */

#include <gtest/gtest.h>

#include "sim/lsq.hh"
#include "sim/pipeline.hh"
#include "sim/rename.hh"
#include "trace/spec2000.hh"
#include "trace/trace_source.hh"
#include "util/rng.hh"

namespace
{

using namespace diq;
using namespace diq::sim;
using trace::MicroOp;
using trace::OpClass;

// --- RegisterRenamer ---------------------------------------------------------

TEST(Renamer, BootMappingIsIdentity)
{
    RegisterRenamer r(160, 160);
    EXPECT_EQ(r.mapping(0), 0);
    EXPECT_EQ(r.mapping(31), 31);
    EXPECT_EQ(r.mapping(trace::FpRegBase), 160);
    EXPECT_EQ(r.freeIntRegs(), 128);
    EXPECT_EQ(r.freeFpRegs(), 128);
}

TEST(Renamer, RenameAllocatesAndRemembersOldMapping)
{
    RegisterRenamer r(160, 160);
    core::DynInst inst;
    MicroOp op;
    op.op = OpClass::IntAlu;
    op.dest = 5;
    op.src1 = 5;
    inst.reset(op, 1);
    r.rename(inst);
    EXPECT_EQ(inst.psrc1, 5) << "source read before overwrite";
    EXPECT_NE(inst.pdest, 5);
    EXPECT_EQ(inst.poldDest, 5);
    EXPECT_EQ(r.mapping(5), inst.pdest);
    EXPECT_EQ(r.freeIntRegs(), 127);
    r.freeAtCommit(inst);
    EXPECT_EQ(r.freeIntRegs(), 128);
}

TEST(Renamer, SeparatePools)
{
    RegisterRenamer r(160, 160);
    core::DynInst inst;
    MicroOp op;
    op.op = OpClass::FpAdd;
    op.dest = trace::FpRegBase + 3;
    inst.reset(op, 1);
    r.rename(inst);
    EXPECT_GE(inst.pdest, 160) << "FP dest from the FP pool";
    EXPECT_EQ(r.freeIntRegs(), 128);
    EXPECT_EQ(r.freeFpRegs(), 127);
}

TEST(Renamer, ExhaustionBlocksRename)
{
    RegisterRenamer r(40, 40); // only 8 free per pool
    MicroOp op;
    op.op = OpClass::IntAlu;
    op.dest = 1;
    for (int i = 0; i < 8; ++i) {
        core::DynInst inst;
        inst.reset(op, static_cast<uint64_t>(i));
        ASSERT_TRUE(r.canRename(op));
        r.rename(inst);
    }
    EXPECT_FALSE(r.canRename(op));
    op.dest = trace::NoReg;
    EXPECT_TRUE(r.canRename(op)) << "destination-less ops always rename";
}

// --- LoadStoreQueue ------------------------------------------------------------

struct LsqFixture : ::testing::Test
{
    mem::MemoryHierarchy mem;
    core::Scoreboard sb{320};
    core::InstPool pool{64};
    LoadStoreQueue lsq{32};

    core::InstIdx
    makeMem(OpClass op_class, uint64_t addr, uint64_t seq,
            int data_reg = core::NoPhysReg)
    {
        MicroOp op;
        op.op = op_class;
        op.memAddr = addr;
        op.src1 = 1;
        op.src2 = static_cast<int8_t>(data_reg);
        core::InstIdx idx = pool.alloc(op, seq);
        pool.get(idx).psrc2 = data_reg;
        return idx;
    }

    std::vector<MemReturn>
    tick(uint64_t cycle, int ports = 4)
    {
        std::vector<MemReturn> out;
        lsq.tick(cycle, mem, sb, pool, ports, out);
        return out;
    }
};

TEST_F(LsqFixture, LoadWaitsForOlderStoreAddress)
{
    auto store = makeMem(OpClass::Store, 0x1000, 1);
    auto load = makeMem(OpClass::Load, 0x2000, 2);
    lsq.insert(store, pool);
    lsq.insert(load, pool);
    lsq.addressReady(load, pool);
    EXPECT_TRUE(tick(10).empty())
        << "conservative disambiguation: unknown store blocks";
    lsq.addressReady(store, pool);
    auto out = tick(11);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, load);
    EXPECT_FALSE(out[0].forwarded);
}

TEST_F(LsqFixture, ForwardingFromMatchingStore)
{
    auto store = makeMem(OpClass::Store, 0x1000, 1, /*data_reg=*/7);
    auto load = makeMem(OpClass::Load, 0x1004, 2); // same 8B granule
    lsq.insert(store, pool);
    lsq.insert(load, pool);
    lsq.addressReady(store, pool);
    lsq.addressReady(load, pool);
    auto out = tick(10);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].forwarded);
    EXPECT_EQ(out[0].readyCycle, 11u) << "forward latency is 1 cycle";
}

TEST_F(LsqFixture, ForwardDefersUntilStoreDataReady)
{
    auto store = makeMem(OpClass::Store, 0x1000, 1, /*data_reg=*/7);
    auto load = makeMem(OpClass::Load, 0x1000, 2);
    sb.markPending(7);
    lsq.insert(store, pool);
    lsq.insert(load, pool);
    lsq.addressReady(store, pool);
    lsq.addressReady(load, pool);
    EXPECT_TRUE(tick(10).empty()) << "store data still pending";
    sb.setReadyAt(7, 11);
    auto out = tick(11);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].forwarded);
}

TEST_F(LsqFixture, PortLimitThrottlesLoads)
{
    for (uint64_t i = 0; i < 6; ++i) {
        auto ld = makeMem(OpClass::Load, 0x10000 + i * 4096, i + 1);
        lsq.insert(ld, pool);
        lsq.addressReady(ld, pool);
    }
    EXPECT_EQ(tick(10, /*ports=*/4).size(), 4u);
    EXPECT_EQ(tick(11, /*ports=*/4).size(), 2u);
}

TEST_F(LsqFixture, ForwardsDontConsumePorts)
{
    auto store = makeMem(OpClass::Store, 0x1000, 1, 7);
    lsq.insert(store, pool);
    lsq.addressReady(store, pool);
    for (uint64_t i = 0; i < 5; ++i) {
        auto ld = makeMem(OpClass::Load,
                           i == 0 ? 0x1000 : 0x20000 + i * 4096, i + 2);
        lsq.insert(ld, pool);
        lsq.addressReady(ld, pool);
    }
    // 1 forward + 4 cache loads all start with only 4 ports.
    EXPECT_EQ(tick(10, 4).size(), 5u);
}

TEST_F(LsqFixture, CommitStoreWritesCache)
{
    auto store = makeMem(OpClass::Store, 0x3000, 1, 7);
    lsq.insert(store, pool);
    lsq.addressReady(store, pool);
    EXPECT_TRUE(lsq.commit(store, mem));
    EXPECT_TRUE(mem.l1d().probe(0x3000));

    auto load = makeMem(OpClass::Load, 0x4000, 2);
    lsq.insert(load, pool);
    EXPECT_FALSE(lsq.commit(load, mem)) << "loads don't write at commit";
}

TEST_F(LsqFixture, AddressReadyResolvesByTicketAfterCommits)
{
    // Regression for the ticket-indexed lookup: once older entries have
    // committed, an op's queue position is lsqTicket - headTicket, not
    // its insertion index. Deliver addresses out of order after a
    // commit has shifted the queue.
    auto s1 = makeMem(OpClass::Store, 0x1000, 1, 7);
    auto l2 = makeMem(OpClass::Load, 0x2000, 2);
    auto l3 = makeMem(OpClass::Load, 0x3000, 3);
    lsq.insert(s1, pool);
    lsq.insert(l2, pool);
    lsq.insert(l3, pool);
    lsq.addressReady(s1, pool);
    lsq.commit(s1, mem); // head advances under the younger loads
    lsq.addressReady(l3, pool);
    auto out = tick(10);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, l3);
    lsq.addressReady(l2, pool);
    out = tick(11);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, l2);
}

// --- Pipeline on hand-built traces ---------------------------------------------

std::vector<MicroOp>
serialChain(int n)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < n; ++i) {
        MicroOp op;
        op.pc = 0x400000 + static_cast<uint64_t>(i) * 4;
        op.op = OpClass::IntAlu;
        op.dest = 1;
        op.src1 = 1;
        ops.push_back(op);
    }
    return ops;
}

TEST(Pipeline, SerialChainRunsAtIpcOne)
{
    trace::VectorTrace t(serialChain(4000), "serial", true);
    ProcessorConfig cfg;
    Cpu cpu(cfg, t);
    cpu.run(6000); // cover a full pass so the loop code is I-cached
    cpu.resetStats();
    cpu.run(2000);
    EXPECT_FALSE(cpu.stats().deadlocked);
    EXPECT_NEAR(cpu.stats().ipc(), 1.0, 0.05)
        << "a self-dependent 1-cycle chain commits one op per cycle";
}

TEST(Pipeline, IndependentOpsReachIssueWidth)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 4000; ++i) {
        MicroOp op;
        op.pc = 0x400000 + static_cast<uint64_t>(i % 512) * 4;
        op.op = OpClass::IntAlu;
        op.dest = static_cast<int8_t>(1 + (i % 24));
        ops.push_back(op);
    }
    trace::VectorTrace t(std::move(ops), "wide", true);
    ProcessorConfig cfg;
    Cpu cpu(cfg, t);
    cpu.run(2000);
    cpu.resetStats();
    cpu.run(8000);
    EXPECT_GT(cpu.stats().ipc(), 6.0)
        << "8 independent ALUs per cycle minus fetch effects";
}

TEST(Pipeline, MispredictsCostCycles)
{
    auto make = [](double bias) {
        std::vector<MicroOp> ops;
        util::Rng rng(1);
        for (int i = 0; i < 8000; ++i) {
            MicroOp op;
            op.pc = 0x400000 + static_cast<uint64_t>(i % 64) * 4;
            if (i % 8 == 7) {
                op.op = OpClass::Branch;
                op.taken = rng.nextBool(bias);
                op.target = op.pc + 16;
            } else {
                op.op = OpClass::IntAlu;
                op.dest = static_cast<int8_t>(1 + (i % 8));
            }
            ops.push_back(op);
        }
        return trace::VectorTrace(std::move(ops), "branchy", true);
    };
    ProcessorConfig cfg;
    auto predictable = make(1.0);
    Cpu cpu_p(cfg, predictable);
    cpu_p.run(2000);
    cpu_p.resetStats();
    cpu_p.run(8000);

    auto random = make(0.5);
    Cpu cpu_r(cfg, random);
    cpu_r.run(2000);
    cpu_r.resetStats();
    cpu_r.run(8000);

    EXPECT_GT(cpu_p.stats().ipc(), 1.5 * cpu_r.stats().ipc());
    EXPECT_GT(cpu_r.stats().mispredictRate(), 0.2);
    EXPECT_LT(cpu_p.stats().mispredictRate(), 0.05);
}

TEST(Pipeline, LoadLatencyVisibleInIpc)
{
    // load -> dependent add, repeated over an L1-resident array vs a
    // pointer-random large array.
    auto make = [](uint64_t span) {
        std::vector<MicroOp> ops;
        util::Rng rng(2);
        for (int i = 0; i < 4000; ++i) {
            MicroOp op;
            op.pc = 0x400000 + static_cast<uint64_t>(i % 8) * 4;
            if (i % 2 == 0) {
                op.op = OpClass::Load;
                op.dest = 1;
                op.src1 = 2;
                op.memAddr = 0x10000000 + rng.nextBounded(span / 8) * 8;
            } else {
                op.op = OpClass::IntAlu;
                op.dest = 3;
                op.src1 = 1;
            }
            ops.push_back(op);
        }
        return trace::VectorTrace(std::move(ops), "loads", true);
    };
    ProcessorConfig cfg;
    auto near = make(8 * 1024);
    Cpu cpu_near(cfg, near);
    cpu_near.run(1000);
    cpu_near.resetStats();
    cpu_near.run(4000);

    auto far = make(64 * 1024 * 1024);
    Cpu cpu_far(cfg, far);
    cpu_far.run(1000);
    cpu_far.resetStats();
    cpu_far.run(4000);

    EXPECT_GT(cpu_near.stats().ipc(), 2.0 * cpu_far.stats().ipc());
}

TEST(Pipeline, StatsResetKeepsWarmState)
{
    auto w = trace::makeSpecWorkload("gzip");
    ProcessorConfig cfg;
    Cpu cpu(cfg, *w);
    cpu.run(20000);
    uint64_t cycle_before = cpu.cycle();
    cpu.resetStats();
    EXPECT_EQ(cpu.stats().committed, 0u);
    EXPECT_EQ(cpu.stats().cycles, 0u);
    cpu.run(1000);
    EXPECT_GT(cpu.cycle(), cycle_before);
    // Commit is up to 8-wide, so the run may overshoot by a cycle's
    // worth of commits.
    EXPECT_GE(cpu.stats().committed, 1000u);
    EXPECT_LT(cpu.stats().committed, 1008u);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    for (const char *bench : {"gcc", "swim"}) {
        auto w1 = trace::makeSpecWorkload(bench);
        auto w2 = trace::makeSpecWorkload(bench);
        ProcessorConfig cfg;
        cfg.scheme = core::SchemeConfig::mbDistr();
        Cpu a(cfg, *w1), b(cfg, *w2);
        a.run(30000);
        b.run(30000);
        EXPECT_EQ(a.cycle(), b.cycle()) << bench;
        EXPECT_EQ(a.stats().mispredicts, b.stats().mispredicts);
    }
}

TEST(Pipeline, TraceExhaustionDrainsCleanly)
{
    trace::VectorTrace t(serialChain(100), "short", false);
    ProcessorConfig cfg;
    Cpu cpu(cfg, t);
    cpu.run(1000); // asks for more than exists
    EXPECT_EQ(cpu.stats().committed, 100u);
    EXPECT_FALSE(cpu.stats().deadlocked);
}

// --- Every scheme x a few benchmarks: progress and sanity ------------------------

struct SchemeCase
{
    const char *label;
    core::SchemeConfig config;
};

class EverySchemeTest : public ::testing::TestWithParam<SchemeCase>
{
};

TEST_P(EverySchemeTest, MakesProgressOnIntAndFp)
{
    for (const char *bench : {"gzip", "swim"}) {
        auto w = trace::makeSpecWorkload(bench);
        ProcessorConfig cfg;
        cfg.scheme = GetParam().config;
        Cpu cpu(cfg, *w);
        cpu.run(20000);
        EXPECT_FALSE(cpu.stats().deadlocked) << bench;
        EXPECT_GE(cpu.stats().committed, 20000u) << bench;
        EXPECT_LT(cpu.stats().committed, 20008u) << bench;
        EXPECT_GT(cpu.stats().ipc(), 0.05) << bench;
        EXPECT_LT(cpu.stats().ipc(), 8.0) << bench;
    }
}

TEST_P(EverySchemeTest, CommitsExactlyWhatWasAsked)
{
    auto w = trace::makeSpecWorkload("apsi");
    ProcessorConfig cfg;
    cfg.scheme = GetParam().config;
    Cpu cpu(cfg, *w);
    cpu.run(5000);
    cpu.resetStats();
    uint64_t cycles = cpu.run(7000);
    EXPECT_GE(cpu.stats().committed, 7000u);
    EXPECT_LT(cpu.stats().committed, 7008u);
    EXPECT_EQ(cpu.stats().cycles, cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, EverySchemeTest,
    ::testing::Values(
        SchemeCase{"cam", core::SchemeConfig::iq6464()},
        SchemeCase{"unbounded", core::SchemeConfig::unbounded()},
        SchemeCase{"fifo", core::SchemeConfig::issueFifo(8, 8, 8, 16)},
        SchemeCase{"latfifo", core::SchemeConfig::latFifo(16, 16, 8, 16)},
        SchemeCase{"mixbuff", core::SchemeConfig::mixBuff(8, 8, 8, 16, 8)},
        SchemeCase{"ifdistr", core::SchemeConfig::ifDistr()},
        SchemeCase{"mbdistr", core::SchemeConfig::mbDistr()}),
    [](const ::testing::TestParamInfo<SchemeCase> &info) {
        return info.param.label;
    });

} // namespace

/**
 * @file
 * Unit tests for src/util: RNG determinism and distributions,
 * statistics helpers, saturating counters, circular buffer, table
 * printing and flag parsing.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/circular_buffer.hh"
#include "util/flags.hh"
#include "util/rng.hh"
#include "util/saturating_counter.hh"
#include "util/stats.hh"
#include "util/table_printer.hh"

namespace
{

using namespace diq::util;

// --- Rng ---------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, StreamsAreIndependent)
{
    Rng a(7, 0), b(7, 1);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
    EXPECT_EQ(r.nextRange(5, 5), 5);
    EXPECT_EQ(r.nextRange(7, 3), 7); // degenerate: lo wins
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(15);
    EXPECT_FALSE(r.nextBool(0.0));
    EXPECT_TRUE(r.nextBool(1.0));
    EXPECT_FALSE(r.nextBool(-1.0));
    EXPECT_TRUE(r.nextBool(2.0));
}

TEST(Rng, HashStringStableAndDistinct)
{
    EXPECT_EQ(Rng::hashString("swim"), Rng::hashString("swim"));
    EXPECT_NE(Rng::hashString("swim"), Rng::hashString("mgrid"));
    EXPECT_NE(Rng::hashString(""), Rng::hashString("a"));
}

TEST(Rng, GeometricMeanMatches)
{
    Rng r(17);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.nextGeometric(0.5, 100);
    EXPECT_NEAR(sum / n, 1.0, 0.05); // mean of Geo(0.5) failures = 1
}

// --- stats --------------------------------------------------------------

TEST(Stats, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}

TEST(Stats, HarmonicMeanMatchesHand)
{
    // HM(1,2) = 2/(1+0.5) = 4/3.
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 0.0}), 0.0);
}

TEST(Stats, HarmonicLeArithmetic)
{
    std::vector<double> v{0.5, 1.7, 2.4, 3.3};
    EXPECT_LE(harmonicMean(v), mean(v));
    EXPECT_LE(geometricMean(v), mean(v));
    EXPECT_LE(harmonicMean(v), geometricMean(v));
}

TEST(Stats, StddevKnownValue)
{
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.0,
                1e-12);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Stats, RunningStat)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(1.0);
    s.add(3.0);
    s.add(-2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(s.min(), -2.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, HistogramBasics)
{
    Histogram h(0, 10);
    h.add(3);
    h.add(3);
    h.add(7);
    h.add(100); // clamps to 10
    h.add(-5);  // clamps to 0
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(10), 1u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(999), 0u);
}

TEST(Stats, HistogramPercentile)
{
    Histogram h(0, 100);
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_EQ(h.percentile(0.5), 50);
    EXPECT_EQ(h.percentile(1.0), 100);
    EXPECT_EQ(h.percentile(0.01), 1);
}

TEST(Stats, CounterSet)
{
    CounterSet c;
    EXPECT_EQ(c.get("x"), 0u);
    EXPECT_FALSE(c.has("x"));
    c.add("x", 5);
    c["x"] += 2;
    EXPECT_EQ(c.get("x"), 7u);
    EXPECT_TRUE(c.has("x"));
    c.clear();
    EXPECT_EQ(c.get("x"), 0u);
}

// --- saturating counters --------------------------------------------------

TEST(SaturatingCounter, SaturatesBothEnds)
{
    SaturatingCounter c(2, 0);
    EXPECT_EQ(c.max(), 3u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
}

TEST(SaturatingCounter, MsbThreshold)
{
    SaturatingCounter c(2, 1);
    EXPECT_FALSE(c.isSet()); // 1 of 3
    c.increment();
    EXPECT_TRUE(c.isSet()); // 2 of 3
}

TEST(SaturatingCounter, UpdateDirection)
{
    SaturatingCounter c(2, 2);
    c.update(false);
    EXPECT_EQ(c.value(), 1u);
    c.update(true);
    EXPECT_EQ(c.value(), 2u);
}

TEST(SaturatingDownCounter, LoadClampstoMax)
{
    SaturatingDownCounter c(31);
    c.load(100);
    EXPECT_EQ(c.value(), 31u);
}

TEST(SaturatingDownCounter, TicksToZeroAndStays)
{
    SaturatingDownCounter c(31);
    c.load(3);
    c.tick();
    c.tick();
    EXPECT_EQ(c.value(), 1u);
    c.tick();
    EXPECT_TRUE(c.zero());
    c.tick();
    EXPECT_TRUE(c.zero());
}

// --- circular buffer -------------------------------------------------------

TEST(CircularBuffer, FifoOrder)
{
    CircularBuffer<int> b(4);
    EXPECT_TRUE(b.empty());
    EXPECT_TRUE(b.pushBack(1));
    EXPECT_TRUE(b.pushBack(2));
    EXPECT_TRUE(b.pushBack(3));
    EXPECT_EQ(b.front(), 1);
    EXPECT_EQ(b.back(), 3);
    EXPECT_EQ(b.popFront(), 1);
    EXPECT_EQ(b.popFront(), 2);
    EXPECT_EQ(b.size(), 1u);
}

TEST(CircularBuffer, FullRejectsPush)
{
    CircularBuffer<int> b(2);
    EXPECT_TRUE(b.pushBack(1));
    EXPECT_TRUE(b.pushBack(2));
    EXPECT_TRUE(b.full());
    EXPECT_FALSE(b.pushBack(3));
}

TEST(CircularBuffer, WrapsCorrectly)
{
    CircularBuffer<int> b(3);
    for (int round = 0; round < 10; ++round) {
        EXPECT_TRUE(b.pushBack(round));
        EXPECT_EQ(b.popFront(), round);
    }
    EXPECT_TRUE(b.empty());
}

TEST(CircularBuffer, IndexedAccessOldestFirst)
{
    CircularBuffer<int> b(4);
    b.pushBack(10);
    b.pushBack(20);
    b.popFront();
    b.pushBack(30);
    b.pushBack(40);
    b.pushBack(50);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b.at(0), 20);
    EXPECT_EQ(b.at(3), 50);
}

TEST(CircularBuffer, PopBack)
{
    CircularBuffer<int> b(3);
    b.pushBack(1);
    b.pushBack(2);
    EXPECT_EQ(b.popBack(), 2);
    EXPECT_EQ(b.back(), 1);
}

// --- table printer ---------------------------------------------------------

TEST(TablePrinter, RendersAlignedColumns)
{
    TablePrinter t({"name", "ipc"});
    t.addRow({"swim", "3.300"});
    std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("swim"), std::string::npos);
    EXPECT_NE(s.find("3.300"), std::string::npos);
}

TEST(TablePrinter, CsvRoundtrip)
{
    TablePrinter t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

TEST(TablePrinter, FormatHelpers)
{
    EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::pct(0.123, 1), "12.3%");
}

// --- flags ------------------------------------------------------------------

TEST(Flags, ParsesAllForms)
{
    const char *argv[] = {"prog", "--a=1", "--b", "2", "pos", "--c"};
    Flags f(6, argv);
    EXPECT_EQ(f.getInt("a", 0), 1);
    EXPECT_EQ(f.getInt("b", 0), 2);
    EXPECT_TRUE(f.getBool("c", false));
    ASSERT_EQ(f.positional().size(), 1u);
    EXPECT_EQ(f.positional()[0], "pos");
}

TEST(Flags, DefaultsWhenAbsent)
{
    const char *argv[] = {"prog"};
    Flags f(1, argv);
    EXPECT_EQ(f.getInt("missing", 7), 7);
    EXPECT_EQ(f.getString("missing", "d"), "d");
    EXPECT_FALSE(f.getBool("missing", false));
    EXPECT_DOUBLE_EQ(f.getDouble("missing", 2.5), 2.5);
}

TEST(Flags, EnvFallback)
{
    setenv("DIQ_TEST_FLAG", "99", 1);
    const char *argv[] = {"prog"};
    Flags f(1, argv);
    EXPECT_EQ(f.getInt("x", 0, "DIQ_TEST_FLAG"), 99);
    unsetenv("DIQ_TEST_FLAG");
}

TEST(Flags, CommandLineBeatsEnv)
{
    setenv("DIQ_TEST_FLAG2", "99", 1);
    const char *argv[] = {"prog", "--x=5"};
    Flags f(2, argv);
    EXPECT_EQ(f.getInt("x", 0, "DIQ_TEST_FLAG2"), 5);
    unsetenv("DIQ_TEST_FLAG2");
}

} // namespace

/**
 * @file
 * Tests for the `diq serve` subsystem (docs/ARCHITECTURE.md §12):
 * the length-prefixed frame protocol, the join-the-idle-queue
 * dispatcher (store-first serving, in-flight dedupe, bounded-backlog
 * admission control, exactly-once compute under concurrency), and
 * the server + client pair end to end over a real Unix-domain socket
 * — including concurrent clients, warm resubmission, version
 * rejection, the shutdown verb, and crash-recovery of journaled
 * campaigns.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fault/fault_plan.hh"
#include "runner/sim_job.hh"
#include "runner/sweep_spec.hh"
#include "serve/client.hh"
#include "serve/dispatcher.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "spec/experiment_spec.hh"
#include "store/result_store.hh"

namespace
{

using namespace diq;
namespace fs = std::filesystem;

constexpr uint64_t kWarmup = 200;
constexpr uint64_t kInsts = 2000;

/** A job under the tiny test budgets, from spec text. */
runner::SimJob
jobFor(const std::string &text)
{
    spec::ExperimentSpec exp;
    exp.applyText(text);
    exp.warmupInsts = kWarmup;
    exp.measureInsts = kInsts;
    return runner::makeJob(exp);
}

/** Spin until `n` workers have registered on the idle list (makes
 *  admission outcomes deterministic in the dispatcher tests). */
void
awaitIdle(serve::Dispatcher &d, size_t n)
{
    while (d.idleCount() < n)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

/** Blocks until the expected number of replies arrived. */
struct ReplyCollector
{
    std::mutex mu;
    std::condition_variable cv;
    std::vector<serve::JobReply> replies;

    serve::Dispatcher::Callback
    callback()
    {
        return [this](const serve::JobReply &r) {
            std::lock_guard<std::mutex> lock(mu);
            replies.push_back(r);
            cv.notify_all();
        };
    }

    void
    await(size_t n)
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return replies.size() >= n; });
    }
};

class ServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
            (std::string("diq_serve_") + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        // sun_path is ~108 bytes; keep the socket name short.
        socket_ = (dir_ / "s.sock").string();
        ASSERT_LT(socket_.size(), size_t{100}) << socket_;
    }

    void
    TearDown() override
    {
        stopServer();
        fs::remove_all(dir_);
    }

    serve::ServerOptions
    baseOptions()
    {
        serve::ServerOptions o;
        o.socketPath = socket_;
        o.storeDir = (dir_ / "store").string();
        o.workers = 2;
        return o;
    }

    void
    startServer(serve::ServerOptions o)
    {
        server_ = std::make_unique<serve::Server>(std::move(o));
        thread_ = std::thread([this] { server_->run(); });
    }

    void
    stopServer()
    {
        if (server_)
            server_->requestStop();
        if (thread_.joinable())
            thread_.join();
        server_.reset();
    }

    fs::path dir_;
    std::string socket_;
    std::unique_ptr<serve::Server> server_;
    std::thread thread_;
};

// --- Protocol -------------------------------------------------------

TEST(ServeProtocol, SplitFieldsKeepsBinaryTailIntact)
{
    std::string payload = "row\t3\tAB\tCD\x00X";
    payload += '\t'; // tabs and NULs inside the final field survive
    auto f = serve::splitFields(payload, 3);
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f[0], "row");
    EXPECT_EQ(f[1], "3");
    EXPECT_EQ(f[2], payload.substr(6));
}

TEST(ServeProtocol, FrameRoundTripOverSocketpair)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    std::string payload("binary\t\0\x7f payload", 17);
    serve::writeFrame(fds[0], payload);
    auto got = serve::readFrame(fds[1]);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);

    // Empty frames are legal.
    serve::writeFrame(fds[0], "");
    got = serve::readFrame(fds[1]);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->empty());

    // Clean close at a frame boundary is EOF, not an error.
    ::close(fds[0]);
    EXPECT_FALSE(serve::readFrame(fds[1]).has_value());
    ::close(fds[1]);
}

TEST(ServeProtocol, TornFrameThrows)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // A length prefix announcing 100 bytes, then close: mid-frame EOF.
    char prefix[4] = {100, 0, 0, 0};
    ASSERT_EQ(::send(fds[0], prefix, 4, 0), 4);
    ::close(fds[0]);
    EXPECT_THROW(serve::readFrame(fds[1]), serve::ProtocolError);
    ::close(fds[1]);
}

TEST(ServeProtocol, HelloHandshakeAcceptsAndRejects)
{
    EXPECT_TRUE(serve::checkHello(serve::helloLine()).empty());

    std::string mismatch = serve::checkHello("hello\tdiq-serve\t999");
    EXPECT_NE(mismatch.find("version mismatch"), std::string::npos)
        << mismatch;

    std::string alien = serve::checkHello("GET / HTTP/1.1");
    EXPECT_EQ(alien.rfind("error\t", 0), 0u) << alien;
}

// --- Dispatcher -----------------------------------------------------

TEST_F(ServeTest, DispatcherServesWarmKeyFromStoreWithoutWorker)
{
    runner::SimJob job = jobFor("iq6464 bench=swim");
    store::ResultStore st((dir_ / "store").string());
    st.save(job.key(), runner::executeJob(job));

    serve::DispatcherOptions o;
    o.workers = 1;
    o.store = &st;
    serve::Dispatcher d(o);

    ReplyCollector got;
    EXPECT_EQ(d.submit(job, got.callback()),
              serve::Admission::StoreHit);
    // StoreHit callbacks run synchronously on the submitting thread.
    ASSERT_EQ(got.replies.size(), 1u);
    EXPECT_TRUE(got.replies[0].fromStore);
    ASSERT_TRUE(got.replies[0].result.has_value());
    EXPECT_EQ(got.replies[0].attempts, 0u);

    auto c = d.counters();
    EXPECT_EQ(c.storeHits, 1u);
    EXPECT_EQ(c.computed, 0u);
    d.shutdown();
}

TEST_F(ServeTest, DispatcherDedupesIdenticalInFlightSubmits)
{
    // One worker, and every job sleeps, so the backlog is observable.
    fault::FaultPlan slow = fault::FaultPlan::parse("delay_job=:100");
    serve::DispatcherOptions o;
    o.workers = 1;
    o.faults = &slow;
    serve::Dispatcher d(o);

    runner::SimJob a = jobFor("iq6464 bench=swim");
    runner::SimJob b = jobFor("iq6464 bench=gcc");

    ReplyCollector got;
    serve::Admission first = d.submit(a, got.callback());
    EXPECT_TRUE(first == serve::Admission::Dispatched ||
                first == serve::Admission::Queued);
    serve::Admission second = d.submit(b, got.callback());
    // b waits behind a (or on the second... there is only 1 worker).
    EXPECT_TRUE(second == serve::Admission::Dispatched ||
                second == serve::Admission::Queued);
    // An identical submit while b is in flight attaches — it never
    // computes twice.
    EXPECT_EQ(d.submit(b, got.callback()), serve::Admission::Attached);

    got.await(3);
    d.shutdown();

    auto c = d.counters();
    EXPECT_EQ(c.computed, 2u);
    EXPECT_EQ(c.dedupeAttached, 1u);

    // Both waiters on b saw the same result object values.
    std::vector<const serve::JobReply *> bs;
    for (const auto &r : got.replies)
        if (r.key == b.key())
            bs.push_back(&r);
    ASSERT_EQ(bs.size(), 2u);
    ASSERT_TRUE(bs[0]->result && bs[1]->result);
    EXPECT_EQ(bs[0]->result->ipc, bs[1]->result->ipc);
    EXPECT_EQ(bs[0]->result->stats.cycles, bs[1]->result->stats.cycles);
}

TEST_F(ServeTest, DispatcherRejectsWhenBacklogFull)
{
    fault::FaultPlan slow = fault::FaultPlan::parse("delay_job=:200");
    serve::DispatcherOptions o;
    o.workers = 1;
    o.pendingMax = 1;
    o.faults = &slow;
    serve::Dispatcher d(o);
    awaitIdle(d, 1);

    ReplyCollector got;
    EXPECT_EQ(d.submit(jobFor("iq6464 bench=swim"), got.callback()),
              serve::Admission::Dispatched);
    EXPECT_EQ(d.submit(jobFor("iq6464 bench=gcc"), got.callback()),
              serve::Admission::Queued);
    EXPECT_EQ(d.submit(jobFor("iq6464 bench=mcf"), got.callback()),
              serve::Admission::Busy);

    got.await(2); // the rejected submit's callback never runs
    d.shutdown();
    auto c = d.counters();
    EXPECT_EQ(c.rejectedBusy, 1u);
    EXPECT_EQ(c.computed, 2u);
    EXPECT_EQ(got.replies.size(), 2u);
}

TEST_F(ServeTest, DispatcherComputesEachKeyOnceUnderConcurrency)
{
    serve::DispatcherOptions o;
    o.workers = 4;
    serve::Dispatcher d(o);

    runner::SimJob job = jobFor("mb_distr bench=swim");
    constexpr int kThreads = 8;
    ReplyCollector got;
    std::vector<std::thread> threads;
    std::atomic<int> busy{0};
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&] {
            if (d.submit(job, got.callback()) ==
                serve::Admission::Busy)
                busy.fetch_add(1);
        });
    for (auto &t : threads)
        t.join();

    got.await(static_cast<size_t>(kThreads) -
              static_cast<size_t>(busy.load()));
    d.shutdown();

    auto c = d.counters();
    EXPECT_EQ(busy.load(), 0);
    EXPECT_EQ(c.computed + c.storeHits, 1u)
        << "identical concurrent submits must compute exactly once";
    EXPECT_EQ(c.dedupeAttached + c.computed + c.storeHits,
              static_cast<uint64_t>(kThreads));
}

TEST_F(ServeTest, DispatcherShutdownFailsUnreachedFlights)
{
    fault::FaultPlan slow = fault::FaultPlan::parse("delay_job=:500");
    serve::DispatcherOptions o;
    o.workers = 1;
    o.pendingMax = 8;
    o.faults = &slow;
    serve::Dispatcher d(o);

    ReplyCollector got;
    d.submit(jobFor("iq6464 bench=swim"), got.callback());
    d.submit(jobFor("iq6464 bench=gcc"), got.callback());
    d.submit(jobFor("iq6464 bench=mcf"), got.callback());
    d.shutdown();

    // Every waiter got a terminal reply: computed or an explicit
    // shutdown failure — never silence.
    EXPECT_EQ(got.replies.size(), 3u);
    for (const auto &r : got.replies) {
        if (!r.result) {
            EXPECT_NE(r.error.find("shutting down"),
                      std::string::npos);
        }
    }
}

// --- Server + client end to end -------------------------------------

TEST_F(ServeTest, SubmitComputesColdThenServesWarmFromStore)
{
    startServer(baseOptions());
    const std::string grid = "scheme=iq6464,mb_distr bench=swim,gcc";

    serve::ServeClient cold(socket_);
    std::vector<serve::RowOutcome> rows;
    serve::SubmitSummary s1 = cold.submit(
        kWarmup, kInsts, grid,
        [&](const serve::RowOutcome &r) { rows.push_back(r); });
    EXPECT_EQ(s1.points, 4u);
    EXPECT_EQ(s1.computed, 4u);
    EXPECT_EQ(s1.storeHits, 0u);
    EXPECT_EQ(s1.failed, 0u);
    ASSERT_EQ(rows.size(), 4u);
    for (const auto &r : rows)
        EXPECT_TRUE(r.result.has_value()) << r.error;

    // Same grid again: pure store hits, no new compute.
    serve::ServeClient warm(socket_);
    serve::SubmitSummary s2 =
        warm.submit(kWarmup, kInsts, grid, nullptr);
    EXPECT_EQ(s2.storeHits, 4u);
    EXPECT_EQ(s2.computed, 0u);
    EXPECT_EQ(server_->dispatcher().counters().computed, 4u);
}

TEST_F(ServeTest, RowsDecodeToTheResultsAServerlessRunComputes)
{
    startServer(baseOptions());
    const std::string grid = "scheme=iq6464 bench=swim,gcc";

    serve::ServeClient client(socket_);
    std::vector<serve::RowOutcome> rows(2);
    client.submit(kWarmup, kInsts, grid,
                  [&](const serve::RowOutcome &r) {
                      ASSERT_LT(r.index, rows.size());
                      rows[r.index] = r;
                  });

    runner::SweepSpec spec = runner::SweepSpec::fromText(grid);
    for (size_t i = 0; i < spec.size(); ++i) {
        runner::SimJob job;
        job.exp = spec.points()[i].first;
        job.exp.benchmark = spec.points()[i].second.name;
        job.exp.warmupInsts = kWarmup;
        job.exp.measureInsts = kInsts;
        job.profile = spec.points()[i].second;

        runner::SimResult local = runner::executeJob(job);
        ASSERT_TRUE(rows[i].result.has_value());
        EXPECT_EQ(rows[i].key, job.key());
        // Bit-exact equality — the f64 codec round-trips exactly, so
        // a served row renders byte-identically to a local run.
        EXPECT_EQ(rows[i].result->ipc, local.ipc);
        EXPECT_EQ(rows[i].result->stats.cycles, local.stats.cycles);
        EXPECT_EQ(rows[i].result->stats.committed,
                  local.stats.committed);
        EXPECT_EQ(rows[i].result->energy.total(),
                  local.energy.total());
    }
}

TEST_F(ServeTest, ConcurrentClientsOnOneGridComputeEachPointOnce)
{
    serve::ServerOptions o = baseOptions();
    o.workers = 4;
    startServer(std::move(o));
    // The acceptance grid: 8 points, submitted by two clients at once.
    const std::string grid =
        "scheme=iq6464,mb_distr bench=swim,gcc,mcf,equake";

    auto runClient = [&](std::vector<double> &ipcs,
                         serve::SubmitSummary &summary) {
        serve::ServeClient client(socket_);
        ipcs.assign(8, 0.0);
        summary = client.submit(kWarmup, kInsts, grid,
                                [&](const serve::RowOutcome &r) {
                                    ASSERT_TRUE(r.result) << r.error;
                                    ASSERT_LT(r.index, ipcs.size());
                                    ipcs[r.index] = r.result->ipc;
                                });
    };

    std::vector<double> ipcsA, ipcsB;
    serve::SubmitSummary sa, sb;
    std::thread ta([&] { runClient(ipcsA, sa); });
    std::thread tb([&] { runClient(ipcsB, sb); });
    ta.join();
    tb.join();

    // ≤ 8 simulations for 16 submitted points: every overlap was a
    // store hit or a dedupe attach, never a second compute.
    EXPECT_EQ(server_->dispatcher().counters().computed, 8u);
    EXPECT_EQ(sa.points, 8u);
    EXPECT_EQ(sb.points, 8u);
    EXPECT_EQ(sa.failed + sb.failed, 0u);
    // Identical rows for both clients.
    EXPECT_EQ(ipcsA, ipcsB);
}

TEST_F(ServeTest, BadGridGetsErrorFrameAndConnectionSurvives)
{
    startServer(baseOptions());
    serve::ServeClient client(socket_);
    EXPECT_THROW(
        client.submit(kWarmup, kInsts, "no_such_key=1", nullptr),
        serve::ClientError);
    // The error was request-scoped: the same connection still serves.
    EXPECT_NO_THROW(client.status());
}

TEST_F(ServeTest, StatusReportsCountersAndStoreSize)
{
    startServer(baseOptions());
    serve::ServeClient client(socket_);
    client.submit(kWarmup, kInsts, "scheme=iq6464 bench=swim",
                  nullptr);

    auto pairs = client.status();
    std::map<std::string, std::string> kv(pairs.begin(), pairs.end());
    EXPECT_EQ(kv.at("computed"), "1");
    EXPECT_EQ(kv.at("store_entries"), "1");
    EXPECT_EQ(kv.at("workers"), "2");
    EXPECT_EQ(kv.at("rejected_busy"), "0");
    EXPECT_EQ(kv.at("pid"),
              std::to_string(static_cast<long>(::getpid())));
}

TEST_F(ServeTest, WrongProtocolVersionIsRejected)
{
    startServer(baseOptions());

    // Raw client speaking a future protocol version.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s",
                  socket_.c_str());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    serve::writeFrame(fd, "hello\tdiq-serve\t999");
    auto reply = serve::readFrame(fd);
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(reply->find("version mismatch"), std::string::npos)
        << *reply;
    ::close(fd);

    // And the typed client sees it as a handshake failure.
    EXPECT_TRUE(serve::ServeClient::ping(socket_));
}

TEST_F(ServeTest, ShutdownVerbStopsTheServer)
{
    startServer(baseOptions());
    {
        serve::ServeClient client(socket_);
        client.shutdown();
    }
    thread_.join(); // run() returns without requestStop() from us
    server_.reset();
    EXPECT_FALSE(serve::ServeClient::ping(socket_));
}

TEST_F(ServeTest, SecondServerOnTheSameStoreIsRefused)
{
    startServer(baseOptions());
    serve::ServerOptions o = baseOptions();
    o.socketPath = (dir_ / "s2.sock").string();
    EXPECT_THROW(serve::Server second(std::move(o)),
                 store::StoreError);
}

TEST_F(ServeTest, BusyServerRejectsSubmitWithTypedError)
{
    fault::FaultPlan slow = fault::FaultPlan::parse("delay_job=:300");
    serve::ServerOptions o = baseOptions();
    o.workers = 1;
    o.pendingMax = 1;
    o.faults = &slow;
    startServer(std::move(o));

    serve::ServeClient client(socket_);
    try {
        client.submit(kWarmup, kInsts,
                      "scheme=iq6464 bench=swim,gcc,mcf,equake",
                      nullptr);
        FAIL() << "expected ServerBusy";
    } catch (const serve::ServerBusy &e) {
        EXPECT_EQ(e.limit, 1u);
    }

    // The fault plan must outlive the server (ServerOptions::faults
    // is borrowed): stop before `slow` leaves scope, not in TearDown.
    stopServer();
}

TEST_F(ServeTest, KilledServerRecoversJournaledCampaignOnRestart)
{
    const std::string grid = "scheme=iq6464 bench=swim,gcc";
    const fs::path storeDir = dir_ / "store";

    // Simulate a server that journaled `begin` and was then SIGKILLed
    // before finishing: the journal has no matching `end`, and the
    // store holds only one of the two points.
    {
        store::ResultStore st(storeDir);
        runner::SimJob done = jobFor("iq6464 bench=swim");
        st.save(done.key(), runner::executeJob(done));
        std::ofstream journal(storeDir / "serve.journal");
        journal << "diq-serve-journal v1\n"
                << "begin\thdeadbeef\t" << kWarmup << "\t" << kInsts
                << "\t" << grid << "\n";
    }

    startServer(baseOptions());
    EXPECT_EQ(server_->recoveredCampaigns(), 1u);
    // Recovery completed the campaign: both points are in the store,
    // and only the missing one was computed.
    EXPECT_EQ(server_->store().stats().entries, 2u);
    auto c = server_->dispatcher().counters();
    EXPECT_EQ(c.computed, 1u);
    EXPECT_EQ(c.storeHits, 1u);

    // A resubmitting client finds a fully warm store.
    serve::ServeClient client(socket_);
    serve::SubmitSummary s =
        client.submit(kWarmup, kInsts, grid, nullptr);
    EXPECT_EQ(s.storeHits, 2u);
    EXPECT_EQ(s.computed, 0u);

    // The journal was compacted: recovered campaigns do not replay
    // again on the next restart.
    stopServer();
    startServer(baseOptions());
    EXPECT_EQ(server_->recoveredCampaigns(), 0u);
}

} // namespace

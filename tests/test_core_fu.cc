/**
 * @file
 * Tests for the functional-unit pool: class mapping, pipelining,
 * divider blocking, and distributed binding (paper §3.3).
 */

#include <gtest/gtest.h>

#include "core/fu_pool.hh"

namespace
{

using namespace diq;
using namespace diq::core;
using trace::OpClass;

TEST(FuClass, OpMapping)
{
    EXPECT_EQ(fuClassFor(OpClass::IntAlu), FuClass::IntAlu);
    EXPECT_EQ(fuClassFor(OpClass::IntMult), FuClass::IntMul);
    EXPECT_EQ(fuClassFor(OpClass::IntDiv), FuClass::IntMul);
    EXPECT_EQ(fuClassFor(OpClass::FpAdd), FuClass::FpAlu);
    EXPECT_EQ(fuClassFor(OpClass::FpMult), FuClass::FpMul);
    EXPECT_EQ(fuClassFor(OpClass::FpDiv), FuClass::FpMul);
    EXPECT_EQ(fuClassFor(OpClass::Load), FuClass::IntAlu);
    EXPECT_EQ(fuClassFor(OpClass::Store), FuClass::IntAlu);
    EXPECT_EQ(fuClassFor(OpClass::Branch), FuClass::IntAlu);
}

TEST(FuClass, OnlyDividesBlockTheirUnit)
{
    EXPECT_EQ(FuPool::occupancyFor(OpClass::IntAlu), 1u);
    EXPECT_EQ(FuPool::occupancyFor(OpClass::IntMult), 1u);
    EXPECT_EQ(FuPool::occupancyFor(OpClass::FpMult), 1u);
    EXPECT_EQ(FuPool::occupancyFor(OpClass::IntDiv), 20u);
    EXPECT_EQ(FuPool::occupancyFor(OpClass::FpDiv), 12u);
}

TEST(FuPool, Table1UnitCounts)
{
    FuPool pool{FuPoolConfig{}};
    EXPECT_EQ(pool.numUnits(FuClass::IntAlu), 8);
    EXPECT_EQ(pool.numUnits(FuClass::IntMul), 4);
    EXPECT_EQ(pool.numUnits(FuClass::FpAlu), 4);
    EXPECT_EQ(pool.numUnits(FuClass::FpMul), 4);
}

TEST(FuPool, CentralizedWidthLimit)
{
    FuPool pool{FuPoolConfig{}};
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(pool.canIssue(FuClass::IntAlu, -1, 1));
        pool.markIssued(FuClass::IntAlu, -1, 1, 1);
    }
    EXPECT_FALSE(pool.canIssue(FuClass::IntAlu, -1, 1));
    EXPECT_TRUE(pool.canIssue(FuClass::IntAlu, -1, 2)); // pipelined
}

TEST(FuPool, DividerBlocksItsUnit)
{
    FuPoolConfig cfg;
    cfg.intMul = 1;
    FuPool pool(cfg);
    ASSERT_TRUE(pool.canIssue(FuClass::IntMul, -1, 1));
    pool.markIssued(FuClass::IntMul, -1, 1, 20); // IntDiv occupancy
    EXPECT_FALSE(pool.canIssue(FuClass::IntMul, -1, 10));
    EXPECT_FALSE(pool.canIssue(FuClass::IntMul, -1, 20));
    EXPECT_TRUE(pool.canIssue(FuClass::IntMul, -1, 21));
}

TEST(FuPool, DistributedAluPerQueue)
{
    FuPoolConfig cfg;
    cfg.distributed = true; // 8 ALUs over 8 int queues: one each
    FuPool pool(cfg);
    pool.markIssued(FuClass::IntAlu, 0, 1, 1);
    EXPECT_FALSE(pool.canIssue(FuClass::IntAlu, 0, 1))
        << "queue 0's ALU is busy";
    EXPECT_TRUE(pool.canIssue(FuClass::IntAlu, 1, 1))
        << "queue 1 owns a different ALU";
}

TEST(FuPool, DistributedMulSharedPerPair)
{
    FuPoolConfig cfg;
    cfg.distributed = true; // 4 mult/div over 8 queues: one per pair
    FuPool pool(cfg);
    pool.markIssued(FuClass::IntMul, 0, 1, 1);
    EXPECT_FALSE(pool.canIssue(FuClass::IntMul, 1, 1))
        << "queues 0 and 1 share a multiplier";
    EXPECT_TRUE(pool.canIssue(FuClass::IntMul, 2, 1));
}

TEST(FuPool, DistributedFpPairing)
{
    FuPoolConfig cfg;
    cfg.distributed = true; // 4 FP ALU + 4 FP mul over 8 FP queues
    FuPool pool(cfg);
    pool.markIssued(FuClass::FpAlu, 6, 1, 1);
    EXPECT_FALSE(pool.canIssue(FuClass::FpAlu, 7, 1));
    EXPECT_TRUE(pool.canIssue(FuClass::FpAlu, 5, 1));
    pool.markIssued(FuClass::FpMul, 0, 1, 1);
    EXPECT_FALSE(pool.canIssue(FuClass::FpMul, 1, 1));
}

TEST(FuPool, CentralizedCallerOnDistributedPoolSeesEverything)
{
    FuPoolConfig cfg;
    cfg.distributed = true;
    FuPool pool(cfg);
    for (int q = 0; q < 8; ++q)
        pool.markIssued(FuClass::IntAlu, q, 1, 1);
    EXPECT_FALSE(pool.canIssue(FuClass::IntAlu, -1, 1));
}

TEST(FuPool, ResetFreesUnits)
{
    FuPool pool{FuPoolConfig{}};
    for (int i = 0; i < 8; ++i)
        pool.markIssued(FuClass::IntAlu, -1, 1, 100);
    pool.reset();
    EXPECT_TRUE(pool.canIssue(FuClass::IntAlu, -1, 1));
}

} // namespace

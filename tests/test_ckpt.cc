/**
 * @file
 * Checkpoint contract tests (src/ckpt, docs/CHECKPOINTS.md):
 *
 *  - Archive primitive round-trips and bounds checks.
 *  - Restore-then-run counter-dump byte-identity against the
 *    uninterrupted run, for all four scheme families on fuzz:7 — the
 *    property that makes exact interval simulation exact.
 *  - Damage classification: every torn/corrupt snapshot shape maps to
 *    the store's EntryStatus taxonomy, never to a misdecode.
 *  - planIntervals arithmetic and runIntervals equivalence: exact
 *    mode (serial pass AND parallel replay) is byte-identical to the
 *    monolithic run for N in {1, 2, 4, 8}; warmup mode lands within
 *    the documented tolerance.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "ckpt/archive.hh"
#include "ckpt/interval.hh"
#include "ckpt/snapshot.hh"
#include "runner/sim_job.hh"
#include "sim/pipeline.hh"
#include "spec/experiment_spec.hh"
#include "store/result_store.hh"
#include "trace_test_util.hh"

namespace
{

using namespace diq;
using store::EntryStatus;
using trace::test::tempPath;

/** Full counter dump + headline stats as one comparable string (the
 *  same shape test_replay.cc pins for record→replay). */
std::string
dumpOf(const sim::SimStats &s, const core::SchemeConfig &scheme)
{
    return "cycles=" + std::to_string(s.cycles) +
           " committed=" + std::to_string(s.committed) + " energy=" +
           std::to_string(runner::energyFor(scheme, s.counters).total()) +
           "\n" + s.counters.toString();
}

std::string
dumpOf(const runner::SimResult &r)
{
    return "cycles=" + std::to_string(r.stats.cycles) +
           " committed=" + std::to_string(r.stats.committed) +
           " energy=" + std::to_string(r.energy.total()) + "\n" +
           r.stats.counters.toString();
}

/** Run to an absolute committed target within the measured region. */
void
runTo(sim::Cpu &cpu, uint64_t target)
{
    uint64_t at = cpu.stats().committed;
    cpu.run(target > at ? target - at : 0);
}

// --- Archive primitives ---------------------------------------------

TEST(Archive, IntegerBoolDoubleStringRoundTrip)
{
    ckpt::Archive save = ckpt::Archive::forSave();
    uint64_t a = 0xDEADBEEFCAFEF00Dull;
    int32_t b = -12345;
    bool c = true;
    double d = 3.25;
    std::string s = "mb_distr bench=swim";
    save.integer(a);
    save.integer(b);
    save.boolean(c);
    save.f64(d);
    save.str(s);

    ckpt::Archive load = ckpt::Archive::forLoad(save.bytes());
    uint64_t a2 = 0;
    int32_t b2 = 0;
    bool c2 = false;
    double d2 = 0;
    std::string s2;
    load.integer(a2);
    load.integer(b2);
    load.boolean(c2);
    load.f64(d2);
    load.str(s2);
    EXPECT_EQ(a, a2);
    EXPECT_EQ(b, b2);
    EXPECT_EQ(c, c2);
    EXPECT_EQ(d, d2);
    EXPECT_EQ(s, s2);
    EXPECT_TRUE(load.exhausted());
}

TEST(Archive, TruncatedInputThrows)
{
    ckpt::Archive save = ckpt::Archive::forSave();
    uint64_t v = 42;
    save.integer(v);
    std::string bytes = save.bytes();
    ckpt::Archive load =
        ckpt::Archive::forLoad(bytes.substr(0, bytes.size() - 1));
    uint64_t out = 0;
    EXPECT_THROW(load.integer(out), ckpt::ArchiveError);
}

TEST(Archive, VectorRoundTripAndRing)
{
    ckpt::Archive save = ckpt::Archive::forSave();
    std::vector<int32_t> xs = {-1, 0, 7, 1 << 20};
    std::vector<uint64_t> grow = {9, 8, 7};
    save.intVecExact(xs);
    save.intVecResize(grow, 100);

    ckpt::Archive load = ckpt::Archive::forLoad(save.bytes());
    std::vector<int32_t> xs2(4);
    std::vector<uint64_t> grow2;
    load.intVecExact(xs2);
    load.intVecResize(grow2, 100);
    EXPECT_EQ(xs, xs2);
    EXPECT_EQ(grow, grow2);
    EXPECT_TRUE(load.exhausted());
}

// --- Restore-then-run byte-identity, all four scheme families -------

/**
 * Warm up, run 3/8 of the measured region, snapshot, finish the run
 * uninterrupted; then restore the snapshot into a fresh machine and
 * finish from there. Both finishes must dump byte-identically, and
 * the uninterrupted finish must match executeJob's monolithic run.
 */
void
expectRestoreIdentity(const std::string &specText)
{
    spec::ExperimentSpec exp = spec::ExperimentSpec::parse(specText);
    runner::SimJob job = runner::makeJob(exp);

    auto workload = runner::makeJobWorkload(job);
    sim::Cpu cpu(exp.processor, *workload);
    cpu.run(exp.warmupInsts);
    cpu.resetStats();
    runTo(cpu, exp.measureInsts * 3 / 8);
    std::string image = ckpt::encodeSnapshot(exp.canonicalLine(), cpu);
    runTo(cpu, exp.measureInsts);
    std::string uninterrupted = dumpOf(cpu.stats(), exp.processor.scheme);

    // The chunked pass above is the monolithic run: absolute targets.
    runner::SimResult mono = runner::executeJob(job);
    EXPECT_EQ(uninterrupted, dumpOf(mono)) << specText;

    ckpt::RestoredRun restored = ckpt::restoreRunFromImage(image);
    EXPECT_EQ(restored.info.specLine, exp.canonicalLine());
    runTo(*restored.cpu, exp.measureInsts);
    EXPECT_EQ(uninterrupted,
              dumpOf(restored.cpu->stats(), exp.processor.scheme))
        << specText;
}

TEST(SnapshotRestore, CamBaselineFuzz7)
{
    expectRestoreIdentity(
        "iq6464 bench=fuzz:7 warmup_insts=2000 measure_insts=8000");
}

TEST(SnapshotRestore, IssueFifoDistrFuzz7)
{
    expectRestoreIdentity(
        "if_distr bench=fuzz:7 warmup_insts=2000 measure_insts=8000");
}

TEST(SnapshotRestore, LatFifoFuzz7)
{
    expectRestoreIdentity("latfifo_8x8_8x16 bench=fuzz:7 "
                          "warmup_insts=2000 measure_insts=8000");
}

TEST(SnapshotRestore, MixBuffDistrFuzz7)
{
    expectRestoreIdentity(
        "mb_distr bench=fuzz:7 warmup_insts=2000 measure_insts=8000");
}

// --- Damage classification ------------------------------------------

class SnapshotDamage : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        spec::ExperimentSpec exp = spec::ExperimentSpec::parse(
            "iq6464 bench=fuzz:7 warmup_insts=500 measure_insts=2000");
        job_ = runner::makeJob(exp);
        workload_ = runner::makeJobWorkload(job_);
        cpu_ = std::make_unique<sim::Cpu>(exp.processor, *workload_);
        cpu_->run(exp.warmupInsts);
        cpu_->resetStats();
        image_ = ckpt::encodeSnapshot(exp.canonicalLine(), *cpu_);
    }

    EntryStatus statusOf(const std::string &bytes)
    {
        ckpt::SnapshotInfo info;
        return ckpt::decodeSnapshotInfo(bytes, info);
    }

    EntryStatus restoreStatusOf(const std::string &bytes)
    {
        try {
            ckpt::restoreRunFromImage(bytes);
            return EntryStatus::Valid;
        } catch (const ckpt::SnapshotError &e) {
            return e.status();
        }
    }

    /** Recompute the header checksum over a (tampered) payload. */
    std::string resealed(std::string bytes)
    {
        uint64_t sum =
            store::fnv1a64(bytes.data() + 24, bytes.size() - 24);
        for (int i = 0; i < 8; ++i)
            bytes[16 + static_cast<size_t>(i)] =
                static_cast<char>((sum >> (8 * i)) & 0xFF);
        return bytes;
    }

    runner::SimJob job_;
    std::unique_ptr<trace::TraceSource> workload_;
    std::unique_ptr<sim::Cpu> cpu_;
    std::string image_;
};

TEST_F(SnapshotDamage, IntactImageIsValidAndRestores)
{
    EXPECT_EQ(statusOf(image_), EntryStatus::Valid);
    EXPECT_EQ(restoreStatusOf(image_), EntryStatus::Valid);
}

TEST_F(SnapshotDamage, EmptyImage)
{
    EXPECT_EQ(statusOf(""), EntryStatus::Empty);
}

TEST_F(SnapshotDamage, BadMagic)
{
    std::string bytes = image_;
    bytes[0] = 'X';
    EXPECT_EQ(statusOf(bytes), EntryStatus::BadMagic);
}

TEST_F(SnapshotDamage, TruncatedHeader)
{
    EXPECT_EQ(statusOf(image_.substr(0, 10)), EntryStatus::Truncated);
}

TEST_F(SnapshotDamage, TruncatedPayload)
{
    EXPECT_EQ(statusOf(image_.substr(0, image_.size() - 1)),
              EntryStatus::Truncated);
}

TEST_F(SnapshotDamage, VersionSkew)
{
    std::string bytes = image_;
    bytes[4] = static_cast<char>(ckpt::kSnapshotFormatVersion + 1);
    EXPECT_EQ(statusOf(bytes), EntryStatus::VersionSkew);
}

TEST_F(SnapshotDamage, SchemaSkew)
{
    std::string bytes = image_;
    bytes[6] = static_cast<char>(
        (ckpt::snapshotSchemaVersion() + 1) & 0xFF);
    bytes[7] = static_cast<char>(
        ((ckpt::snapshotSchemaVersion() + 1) >> 8) & 0xFF);
    EXPECT_EQ(statusOf(bytes), EntryStatus::SchemaSkew);
}

TEST_F(SnapshotDamage, TrailingGarbage)
{
    EXPECT_EQ(statusOf(image_ + "zz"), EntryStatus::TrailingGarbage);
}

TEST_F(SnapshotDamage, BitFlipInPayloadIsChecksumMismatch)
{
    std::string bytes = image_;
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
    EXPECT_EQ(statusOf(bytes), EntryStatus::ChecksumMismatch);
}

TEST_F(SnapshotDamage, ResealedImpossibleFieldIsCorruptField)
{
    // Blow up the spec-line length prefix (first payload field), then
    // recompute the checksum so only field validation can object.
    std::string bytes = image_;
    bytes[24 + 3] = '\x7F';
    bytes = resealed(bytes);
    EXPECT_EQ(statusOf(bytes), EntryStatus::CorruptField);
    EXPECT_EQ(restoreStatusOf(bytes), EntryStatus::CorruptField);
}

TEST_F(SnapshotDamage, ResealedShortPayloadIsCorruptField)
{
    // Drop the payload's tail and fix up length + checksum: metadata
    // still decodes, the machine state runs out of bytes.
    std::string bytes = image_.substr(0, image_.size() - 200);
    uint64_t len = bytes.size() - 24;
    for (int i = 0; i < 8; ++i)
        bytes[8 + static_cast<size_t>(i)] =
            static_cast<char>((len >> (8 * i)) & 0xFF);
    bytes = resealed(bytes);
    EXPECT_EQ(statusOf(bytes), EntryStatus::Valid)
        << "metadata alone still decodes";
    EXPECT_EQ(restoreStatusOf(bytes), EntryStatus::CorruptField);
}

TEST_F(SnapshotDamage, ResealedOversizedPayloadIsCorruptField)
{
    // Extra checksummed bytes after a full decode: geometry mismatch,
    // not trailing garbage (which is unchecksummed file tail).
    std::string bytes = image_ + std::string(16, '\x00');
    uint64_t len = bytes.size() - 24;
    for (int i = 0; i < 8; ++i)
        bytes[8 + static_cast<size_t>(i)] =
            static_cast<char>((len >> (8 * i)) & 0xFF);
    bytes = resealed(bytes);
    EXPECT_EQ(restoreStatusOf(bytes), EntryStatus::CorruptField);
}

TEST_F(SnapshotDamage, SnapshotInfoThrowsWithStatusOnTornFile)
{
    std::string path = tempPath("torn.diqs");
    std::ofstream os(path, std::ios::binary);
    os.write(image_.data(),
             static_cast<std::streamsize>(image_.size() / 3));
    os.close();
    try {
        ckpt::snapshotInfo(path);
        FAIL() << "torn snapshot accepted";
    } catch (const ckpt::SnapshotError &e) {
        EXPECT_EQ(e.status(), EntryStatus::Truncated);
    }
    std::filesystem::remove(path);
}

TEST_F(SnapshotDamage, FileRoundTripLeavesNoTempFiles)
{
    std::filesystem::path dir = tempPath("ckpt_dir");
    std::filesystem::path p = dir / "snap.diqs";
    ckpt::writeSnapshotFile(p, image_);
    EXPECT_EQ(ckpt::readSnapshotFile(p), image_);
    size_t entries = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u) << "temp files must not survive a commit";
    std::filesystem::remove_all(dir);
}

// --- Interval planning ----------------------------------------------

TEST(IntervalPlan, SplitsExactlyAndFrontLoadsRemainder)
{
    ckpt::IntervalPlan p = ckpt::planIntervals(10, 4);
    EXPECT_EQ(p.sizes, (std::vector<uint64_t>{3, 3, 2, 2}));
    EXPECT_EQ(p.starts, (std::vector<uint64_t>{0, 3, 6, 8}));
}

TEST(IntervalPlan, ClampsDegenerateCounts)
{
    EXPECT_EQ(ckpt::planIntervals(100, 0).sizes.size(), 1u);
    EXPECT_EQ(ckpt::planIntervals(3, 8).sizes.size(), 3u);
    EXPECT_EQ(ckpt::planIntervals(0, 8).sizes.size(), 1u);
}

TEST(IntervalPlan, FileNamesSeparateSpecAndShape)
{
    std::string a = ckpt::snapshotFileName("spec-a", 4, 0);
    EXPECT_NE(a, ckpt::snapshotFileName("spec-b", 4, 0));
    EXPECT_NE(a, ckpt::snapshotFileName("spec-a", 8, 0));
    EXPECT_NE(a, ckpt::snapshotFileName("spec-a", 4, 1));
}

// --- Interval runner equivalence ------------------------------------

TEST(IntervalRun, ExactModeIsByteIdenticalForEveryShardCount)
{
    spec::ExperimentSpec exp = spec::ExperimentSpec::parse(
        "mb_distr bench=fuzz:7 warmup_insts=1000 measure_insts=6000");
    std::string mono = dumpOf(runner::executeJob(runner::makeJob(exp)));

    for (unsigned n : {1u, 2u, 4u, 8u}) {
        std::filesystem::path dir =
            tempPath("ival_" + std::to_string(n));
        exp.intervals = n;

        // First call: no snapshot set yet — the serial saving pass.
        ckpt::IntervalOutcome first = ckpt::runIntervals(
            exp, n, 2, ckpt::IntervalMode::Exact, dir);
        EXPECT_FALSE(first.replayed);
        EXPECT_EQ(first.intervals, n);
        EXPECT_EQ(dumpOf(first.result), mono) << "serial, N=" << n;

        // Second call: complete set on disk — the parallel replay.
        ckpt::IntervalOutcome second = ckpt::runIntervals(
            exp, n, 4, ckpt::IntervalMode::Exact, dir);
        EXPECT_TRUE(second.replayed);
        EXPECT_EQ(dumpOf(second.result), mono) << "replay, N=" << n;
        EXPECT_EQ(second.intervalCycles, first.intervalCycles);

        std::filesystem::remove_all(dir);
    }
}

TEST(IntervalRun, ReplayRejectsForeignSnapshotSets)
{
    spec::ExperimentSpec exp = spec::ExperimentSpec::parse(
        "iq6464 bench=fuzz:7 warmup_insts=500 measure_insts=4000");
    std::filesystem::path dir = tempPath("ival_foreign");
    ckpt::runIntervals(exp, 2, 2, ckpt::IntervalMode::Exact, dir);

    // A different machine must not pick up this set: its key differs,
    // so it runs its own serial pass rather than replaying.
    spec::ExperimentSpec other = spec::ExperimentSpec::parse(
        "mb_distr bench=fuzz:7 warmup_insts=500 measure_insts=4000");
    ckpt::IntervalOutcome out = ckpt::runIntervals(
        other, 2, 2, ckpt::IntervalMode::Exact, dir);
    EXPECT_FALSE(out.replayed);
    std::filesystem::remove_all(dir);
}

TEST(IntervalRun, WarmupModeLandsWithinDocumentedTolerance)
{
    spec::ExperimentSpec exp = spec::ExperimentSpec::parse(
        "mb_distr bench=fuzz:7 warmup_insts=1000 measure_insts=6000 "
        "interval_warmup=2000");
    runner::SimResult mono = runner::executeJob(runner::makeJob(exp));

    ckpt::IntervalOutcome out = ckpt::runIntervals(
        exp, 4, 4, ckpt::IntervalMode::Warmup, ".");
    // Stitched committed covers the whole measured region (plus at
    // most commit-width overshoot per interval).
    EXPECT_GE(out.result.stats.committed, exp.measureInsts);
    EXPECT_LT(out.result.stats.committed, exp.measureInsts + 4 * 64);
    // IPC within the documented warmup-seeding tolerance.
    EXPECT_NEAR(out.result.ipc, mono.ipc, mono.ipc * 0.05)
        << "warmup-seeded IPC drifted beyond 5% of monolithic";
}

} // namespace
